package faults

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// RoundTripper wraps an http.RoundTripper with fault injection. Each
// request consults the injector at a per-request site name (default
// "http:<host>", override with Site — e.g. donor clients use
// "donor:<host>" so a plan can corrupt snapshot bodies without
// touching event streams).
//
// Semantics per action:
//
//	Drop    — the request is never sent; a transient InjectedError is
//	          returned (safe to retry: nothing reached the server).
//	Delay   — sleep, then send.
//	Error   — the request is never sent; a synthesized response with
//	          the rule's status (Retry-After: 1 on 429/503) is
//	          returned, exercising the caller's status handling.
//	Corrupt — the request is sent; the response body is wrapped in a
//	          deterministically corrupting reader.
type RoundTripper struct {
	Base   http.RoundTripper
	Inject *Injector
	// Site maps a request to its injection site; nil means
	// "http:" + host.
	Site func(*http.Request) string
}

func (rt *RoundTripper) base() http.RoundTripper {
	if rt.Base != nil {
		return rt.Base
	}
	return http.DefaultTransport
}

func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	site := ""
	if rt.Site != nil {
		site = rt.Site(req)
	}
	if site == "" {
		site = "http:" + req.URL.Host
	}
	d := rt.Inject.Decide(site)
	switch d.Act {
	case Drop:
		return nil, &InjectedError{Site: site}
	case Delay:
		select {
		case <-time.After(d.Sleep):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	case Error:
		return synthesized(req, d.Status), nil
	}
	resp, err := rt.base().RoundTrip(req)
	if err == nil && d.Act == Corrupt && resp.Body != nil {
		resp.Body = &corruptingBody{rc: resp.Body, pattern: d.Pattern}
	}
	return resp, err
}

// synthesized fabricates an error response as if the server had
// refused the request, without the request ever leaving the client.
func synthesized(req *http.Request, status int) *http.Response {
	header := http.Header{"Content-Type": []string{"application/json"}}
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		header.Set("Retry-After", "1")
	}
	body := fmt.Sprintf("{\"error\":\"faults: injected %d\"}", status)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        header,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// corruptingBody applies CorruptBytes' flip pattern as a stream:
// always the first byte of the body, plus the sparse scatter at the
// same absolute offsets CorruptBytes would hit.
type corruptingBody struct {
	rc      io.ReadCloser
	pattern uint64
	off     uint64
}

func (b *corruptingBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	mask := byte(b.pattern>>8) | 1
	for i := 0; i < n; i++ {
		off := b.off + uint64(i)
		if off == 0 || (off*2654435761+b.pattern)%257 == 0 {
			p[i] ^= mask
		}
	}
	b.off += uint64(n)
	return n, err
}

func (b *corruptingBody) Close() error { return b.rc.Close() }
