package service

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TestSchedulerSharesWarmDonors: a batch of distinct configurations
// over one workload and cache geometry warms a single donor; every
// simulated point receives a fork of it, and the batch status reports
// the sharing (one group, one build, the rest reuses).
func TestSchedulerSharesWarmDonors(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Workers: 2})
	var donors atomic.Int64
	inner := s.run
	s.run = func(spec sim.RunSpec, donor *mem.Hierarchy) (stats.Results, error) {
		if donor != nil {
			donors.Add(1)
		}
		return inner(spec, donor)
	}
	// Three distinct fingerprints (different windows), one snapshot
	// group (same recipe + geometry).
	jobs := []Job{testJob("a", 32), testJob("b", 64), testJob("c", 128)}
	b, err := s.Submit(jobs)
	if err != nil {
		t.Fatal(err)
	}
	st, err := b.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Errors) != 0 {
		t.Fatalf("errors: %v", st.Errors)
	}
	if donors.Load() != 3 {
		t.Fatalf("%d of 3 points ran with a warm donor", donors.Load())
	}
	if st.SnapshotGroups != 1 {
		t.Errorf("snapshot groups = %d, want 1", st.SnapshotGroups)
	}
	if st.WarmBuilds != 1 || st.WarmReuses != 2 {
		t.Errorf("warm builds/reuses = %d/%d, want 1/2", st.WarmBuilds, st.WarmReuses)
	}
}

// TestSchedulerForkedMatchesColdResults: results served through the
// warm-donor path are bit-identical to plain sim.Run — the fingerprint
// cache would otherwise serve subtly different results depending on
// which submission populated it.
func TestSchedulerForkedMatchesColdResults(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Workers: 2})
	job := testJob("x", 64)
	b, err := s.Submit([]Job{job})
	if err != nil {
		t.Fatal(err)
	}
	st, err := b.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := job.Trace.Materialise()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := sim.Run(sim.RunSpec{Name: job.label(), Config: job.Config, Trace: tr, Insts: job.Insts})
	if err != nil {
		t.Fatal(err)
	}
	var got stats.Results
	if err := json.Unmarshal(st.Results[0], &got); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(cold) {
		t.Fatalf("service result diverged from cold run:\n%+v\nvs\n%+v", got, cold)
	}
}

// TestBatchDoneLogLine: the per-batch completion line carries the cache
// and snapshot-sharing stats, and fires exactly once.
func TestBatchDoneLogLine(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	s := NewScheduler(SchedulerOptions{Workers: 2, Log: func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	b, err := s.Submit([]Job{testJob("a", 32), testJob("b", 64)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The done event publishes before the worker's logIfDone call; give
	// the log a moment.
	var got []string
	for deadline := time.Now().Add(5 * time.Second); ; {
		mu.Lock()
		got = append([]string(nil), lines...)
		mu.Unlock()
		if len(got) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(got) != 1 {
		t.Fatalf("logged %d lines, want 1: %v", len(got), got)
	}
	for _, want := range []string{"snapshot groups", "warm donors", "cache hits"} {
		if !strings.Contains(got[0], want) {
			t.Errorf("log line %q missing %q", got[0], want)
		}
	}
}

// TestProgramBatchColdThenWarm: a batch of program-recipe points runs
// cold (the server materialises each program by executing it), then an
// identical resubmission is served entirely from the content-addressed
// cache, byte-identical. This is the cross-client contract for program
// workloads: fingerprints cover the program recipe form, so a warm
// daemon answers program sweeps without re-executing anything.
func TestProgramBatchColdThenWarm(t *testing.T) {
	s, runs := countingScheduler(t, SchedulerOptions{Workers: 2}, 0)
	var jobs []Job
	for _, program := range []string{"isort", "chase"} {
		for _, iq := range []int{32, 64} {
			jobs = append(jobs, Job{
				Config: config.CheckpointDefault(iq, 512),
				Trace:  trace.Recipe{Kernel: trace.KernelProgram, Program: program, Input: 150, Seed: 42},
				Insts:  5000,
			})
		}
	}
	submitAndWait := func(jobs []Job) BatchStatus {
		t.Helper()
		b, err := s.Submit(jobs)
		if err != nil {
			t.Fatal(err)
		}
		st, err := b.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	cold := submitAndWait(jobs)
	if len(cold.Errors) != 0 {
		t.Fatalf("cold errors: %v", cold.Errors)
	}
	if cold.CacheHits != 0 {
		t.Fatalf("cold run claimed %d cache hits", cold.CacheHits)
	}
	coldRuns := runs.Load()
	if coldRuns != int64(len(jobs)) {
		t.Fatalf("cold run simulated %d of %d points", coldRuns, len(jobs))
	}

	warm := submitAndWait(jobs)
	if warm.CacheHits != len(jobs) {
		t.Fatalf("warm run hit %d of %d points", warm.CacheHits, len(jobs))
	}
	if runs.Load() != coldRuns {
		t.Fatalf("warm run simulated %d extra points", runs.Load()-coldRuns)
	}
	for i := range jobs {
		if string(warm.Results[i]) != string(cold.Results[i]) {
			t.Fatalf("point %d: warm result not byte-identical to cold:\n%s\nvs\n%s",
				i, warm.Results[i], cold.Results[i])
		}
		// Program results must surface the program-only counter blocks
		// through the service wire form.
		var r stats.Results
		if err := json.Unmarshal(cold.Results[i], &r); err != nil {
			t.Fatal(err)
		}
		if r.BTB == nil || r.BTB.Lookups == 0 || r.LSQ == nil || r.LSQ.Loads == 0 {
			t.Fatalf("point %d: program counters missing from wire results: %s", i, cold.Results[i])
		}
	}

	// Progress events label program points by program name.
	b, ok := s.Batch(cold.ID)
	if !ok {
		t.Fatal("cold batch not pollable")
	}
	first, ok, err := b.WaitEvent(context.Background(), 0)
	if err != nil || !ok {
		t.Fatalf("event: %v %v", ok, err)
	}
	if first.Name != "isort" && first.Name != "chase" {
		t.Errorf("program point labelled %q", first.Name)
	}
}

// TestSnapshotGroupKeySplits: geometry splits groups, timing does not.
func TestSnapshotGroupKeySplits(t *testing.T) {
	a := testJob("a", 32)
	b := testJob("b", 128)
	if snapshotGroupKey(a) != snapshotGroupKey(b) {
		t.Error("window-size differences must share a snapshot group")
	}
	c := a
	c.Config.L2.SizeBytes *= 2
	if snapshotGroupKey(a) == snapshotGroupKey(c) {
		t.Error("L2 geometry differences must split snapshot groups")
	}
	d := a
	d.Trace = trace.Recipe{Kernel: trace.KernelStencil, N: 6000}
	if snapshotGroupKey(a) == snapshotGroupKey(d) {
		t.Error("different workloads must split snapshot groups")
	}
	if countSnapshotGroups([]Job{a, b, c, d}) != 3 {
		t.Errorf("counted %d groups, want 3", countSnapshotGroups([]Job{a, b, c, d}))
	}
}
