package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/config"
)

// The ablation studies go beyond the paper's figures and probe the
// design choices DESIGN.md calls out — including the checkpoint-taking
// strategies the paper defers to future work ("we expect to analyze a
// whole set of different strategies as to when checkpoints should be
// taken").

// AblationResult holds one named sweep: label -> suite-average IPC.
type AblationResult struct {
	Title  string
	Labels []string
	IPC    map[string]float64
}

// String renders the sweep.
func (r AblationResult) String() string {
	header := []string{"variant", "IPC"}
	rows := make([][]string, 0, len(r.Labels))
	for _, l := range r.Labels {
		rows = append(rows, []string{l, f3(r.IPC[l])})
	}
	return renderTable("Ablation: "+r.Title, header, rows)
}

type variant = struct {
	label string
	cfg   config.Config
}

// sweep runs a set of labelled configurations over the synthetic suite
// in one engine submission.
func (o Options) sweep(ctx context.Context, title string, variants []variant) (AblationResult, error) {
	suite, err := o.suite()
	if err != nil {
		return AblationResult{}, err
	}
	return o.sweepSuite(ctx, title, variants, suite)
}

// sweepSuite is sweep over an already-built suite (the program
// ablations pass the program suite).
func (o Options) sweepSuite(ctx context.Context, title string, variants []variant, suite []suiteTrace) (AblationResult, error) {
	points := make([]point, len(variants))
	for i, v := range variants {
		points[i] = point{cfg: v.cfg}
	}
	groups, err := o.runPoints(ctx, points, suite)
	if err != nil {
		return AblationResult{}, err
	}
	res := AblationResult{Title: title, IPC: map[string]float64{}}
	for i, v := range variants {
		res.Labels = append(res.Labels, v.label)
		res.IPC[v.label] = meanIPC(groups[i])
	}
	return res, nil
}

// AblationCommitPolicies compares every registered commit policy on the
// figure-9 workload set: the conventional baseline at realisable (128)
// and unrealisable (4096) sizes, the paper's checkpointed commit, the
// adaptive-confidence variant, and the unbounded-window oracle limit.
// The ordering the sweep should reproduce is
// rob-128 < {checkpoint, adaptive} <= rob-4096 <= oracle.
// An optional mode list restricts the sweep (cmd/experiments -commit).
func AblationCommitPolicies(ctx context.Context, opt Options, modes ...config.CommitMode) (AblationResult, error) {
	opt = opt.withDefaults()
	all := []variant{
		{"rob-128", config.BaselineSized(128)},
		{"rob-4096", config.BaselineSized(4096)},
		{"checkpoint-128/2048", config.CheckpointDefault(128, 2048)},
		{"adaptive-128/2048", config.AdaptiveDefault(128, 2048)},
		{"oracle-unbounded", config.OracleDefault()},
	}
	vs := all
	if len(modes) > 0 {
		want := map[config.CommitMode]bool{}
		for _, m := range modes {
			want[m] = true
		}
		vs = nil
		for _, v := range all {
			if want[v.cfg.Commit] {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return AblationResult{}, fmt.Errorf("experiments: no commit-policy variant matches %v", modes)
		}
	}
	return opt.sweep(ctx, "commit policies (figure-9 workload set)", vs)
}

// AblationCheckpointStrategy compares checkpoint-taking policies at a
// fixed 8-entry table: the paper's branch-biased heuristic against
// purely periodic strategies of several grains, against taking at every
// opportunity. Coarser windows pack more instructions per checkpoint
// but pay more re-executed work per rollback.
func AblationCheckpointStrategy(ctx context.Context, opt Options) (AblationResult, error) {
	opt = opt.withDefaults()
	mk := func(branchInt, maxInt, maxStores int) config.Config {
		cfg := config.CheckpointDefault(128, 2048)
		cfg.CheckpointBranchInterval = branchInt
		cfg.CheckpointMaxInterval = maxInt
		cfg.CheckpointMaxStores = maxStores
		return cfg
	}
	periodic := func(n int) config.Config {
		cfg := config.CheckpointDefault(128, 2048)
		// A branch interval beyond the hard cap disables the branch
		// rule, leaving pure every-n-instructions checkpointing.
		cfg.CheckpointBranchInterval = n
		cfg.CheckpointMaxInterval = n
		cfg.CheckpointMaxStores = 64
		return cfg
	}
	return opt.sweep(ctx, "checkpoint-taking strategy (8 checkpoints)", []variant{
		{"paper (branch>=64, cap 512, 64 stores)", mk(64, 512, 64)},
		{"branch>=16, cap 512", mk(16, 512, 64)},
		{"branch>=256, cap 512", mk(256, 512, 64)},
		{"periodic 64", periodic(64)},
		{"periodic 256", periodic(256)},
		{"periodic 512", periodic(512)},
	})
}

// AblationWakeWidth sweeps the SLIQ re-insertion bandwidth: the paper
// fixes 4/cycle; this shows how little of it the mechanism needs.
func AblationWakeWidth(ctx context.Context, opt Options) (AblationResult, error) {
	opt = opt.withDefaults()
	var vs []variant
	for _, w := range []int{1, 2, 4, 8} {
		cfg := config.CheckpointDefault(64, 1024)
		cfg.SLIQWakeWidth = w
		vs = append(vs, variant{fmt.Sprintf("wake width %d/cycle", w), cfg})
	}
	return opt.sweep(ctx, "SLIQ wake bandwidth (IQ 64, SLIQ 1024)", vs)
}

// AblationMemoryPorts sweeps the per-cycle data-cache port count, the
// substrate limit the issue stage enforces.
func AblationMemoryPorts(ctx context.Context, opt Options) (AblationResult, error) {
	opt = opt.withDefaults()
	var vs []variant
	for _, p := range []int{1, 2, 4} {
		cfg := config.CheckpointDefault(128, 2048)
		cfg.MemoryPorts = p
		vs = append(vs, variant{fmt.Sprintf("%d ports", p), cfg})
	}
	return opt.sweep(ctx, "data-cache ports (COoO 128/2048)", vs)
}

// AblationBranchPrediction isolates the cost of speculation on the
// checkpointed machine: gshare (with both recovery paths live) against
// a perfect front end.
func AblationBranchPrediction(ctx context.Context, opt Options) (AblationResult, error) {
	opt = opt.withDefaults()
	gshare := config.CheckpointDefault(128, 2048)
	perfect := config.CheckpointDefault(128, 2048)
	perfect.PerfectBranchPrediction = true
	small := config.CheckpointDefault(32, 2048)
	smallPerfect := small
	smallPerfect.PerfectBranchPrediction = true
	return opt.sweep(ctx, "branch prediction (checkpointed commit)", []variant{
		{"gshare, pseudo-ROB 128", gshare},
		{"perfect, pseudo-ROB 128", perfect},
		{"gshare, pseudo-ROB 32", small},
		{"perfect, pseudo-ROB 32", smallPerfect},
	})
}

// AblationPrefetch tests the introduction's claim that prefetching
// "does not solve the problem completely": a next-line prefetcher on
// the 128-entry baseline against the kilo-instruction alternatives.
func AblationPrefetch(ctx context.Context, opt Options) (AblationResult, error) {
	opt = opt.withDefaults()
	base := func(deg int) config.Config {
		cfg := config.BaselineSized(128)
		cfg.PrefetchDegree = deg
		return cfg
	}
	cooo := config.CheckpointDefault(128, 2048)
	return opt.sweep(ctx, "prefetching vs large windows (1000-cycle memory)", []variant{
		{"baseline-128", base(0)},
		{"baseline-128 + prefetch 2", base(2)},
		{"baseline-128 + prefetch 8", base(8)},
		{"baseline-4096 (no prefetch)", config.BaselineSized(4096)},
		{"COoO-128/2048 (no prefetch)", cooo},
	})
}

// Ablations runs every sweep and renders them. An optional commit-mode
// list restricts the commit-policies sweep (the other sweeps are
// unaffected).
func Ablations(ctx context.Context, opt Options, commitModes ...config.CommitMode) (string, error) {
	var b strings.Builder
	for _, run := range []func(context.Context, Options) (AblationResult, error){
		func(ctx context.Context, opt Options) (AblationResult, error) {
			return AblationCommitPolicies(ctx, opt, commitModes...)
		},
		AblationCheckpointStrategy,
		AblationWakeWidth,
		AblationMemoryPorts,
		AblationBranchPrediction,
		AblationPrefetch,
	} {
		r, err := run(ctx, opt)
		if err != nil {
			return "", err
		}
		b.WriteString(r.String())
		b.WriteString("\n")
	}
	return b.String(), nil
}
