package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
)

// Batch states.
const (
	// StateRunning: points are still executing (or queued).
	StateRunning = "running"
	// StateDone: every point completed (check Errors for failures).
	StateDone = "done"
)

// Event is one entry in a batch's progress stream. The stream carries
// one "result" or "error" event per point (in completion order) and a
// final "done" event; subscribers joining late replay the full history,
// so the stream is complete from any starting moment.
type Event struct {
	// Type is "result", "error" or "done".
	Type string `json:"type"`
	// Index is the point's position in the submitted batch (-1 on the
	// final "done" event).
	Index int `json:"index"`
	// Name labels the point (Job.Name or the recipe kernel).
	Name string `json:"name,omitempty"`
	// Cached is true when this submission performed no simulation for
	// the point: a cache hit (at submission or in flight) or a
	// deduplication against a concurrent identical run.
	Cached bool `json:"cached,omitempty"`
	// Done and Total report batch completion: Done points (including
	// this one) out of Total.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Error carries the point's failure ("error" events only).
	Error string `json:"error,omitempty"`
	// Results is the point's marshalled stats.Results ("result" events
	// only), verbatim from the simulator or the cache.
	Results json.RawMessage `json:"results,omitempty"`
}

// BatchStatus is the poll-endpoint snapshot of a batch.
type BatchStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Total int    `json:"total"`
	Done  int    `json:"done"`
	// CacheHits counts points that needed no simulation from this
	// submission (cache hits plus deduplicated concurrent runs).
	CacheHits int `json:"cache_hits"`
	// SnapshotGroups counts the batch's distinct (trace recipe,
	// warm-relevant cache shape) groups: each group warms one donor
	// hierarchy that every member point forks (see the scheduler's
	// snapshot-fork sharing).
	SnapshotGroups int `json:"snapshot_groups"`
	// WarmBuilds and WarmReuses count this batch's simulated points
	// that warmed a fresh donor vs forked an already-warmed one
	// (cache-hit points touch no donor and appear in neither).
	WarmBuilds int `json:"warm_builds"`
	WarmReuses int `json:"warm_reuses"`
	// Errors lists failed points; empty means every completed point
	// succeeded.
	Errors []string `json:"errors,omitempty"`
	// Results holds the marshalled stats.Results per point, in
	// submission order; entries are null until the point completes (or
	// if it failed).
	Results []json.RawMessage `json:"results,omitempty"`
}

// Batch tracks one submitted job list through execution.
type Batch struct {
	id   string
	jobs []Job
	fps  []string

	mu         sync.Mutex
	state      string
	done       int
	hits       int
	groups     int
	warmBuilds int
	warmReuses int
	logged     bool
	journaled  bool
	jdone      bool
	// cycles and skipped aggregate the simulated-cycle and elided-cycle
	// totals across the batch's successful points (parsed from each
	// result), for the completion log line's skip-rate report.
	cycles  uint64
	skipped uint64
	errs    []string
	results []json.RawMessage
	events  []Event
	changed chan struct{} // closed-and-replaced on every event
}

// NewBatch builds a batch tracker for the given jobs and their
// fingerprints. The scheduler uses it for local batches; a fleet
// coordinator uses the same tracker so its HTTP surface (status,
// events, done line) is indistinguishable from a single node's.
func NewBatch(id string, jobs []Job, fps []string) *Batch {
	return &Batch{
		id:      id,
		jobs:    jobs,
		fps:     fps,
		groups:  countSnapshotGroups(jobs),
		state:   StateRunning,
		results: make([]json.RawMessage, len(jobs)),
		changed: make(chan struct{}),
	}
}

// ID returns the batch identifier.
func (b *Batch) ID() string { return b.id }

// Jobs returns the batch's job list (shared; do not mutate).
func (b *Batch) Jobs() []Job { return b.jobs }

// Fingerprints returns the per-job content addresses (shared; do not
// mutate).
func (b *Batch) Fingerprints() []string { return b.fps }

// Complete records one finished point and publishes its event (plus the
// final "done" event when it is the last). Exactly one Complete per
// point: callers completing from multiple sources (a fleet coordinator
// re-routing work off a dead node) must deduplicate before calling.
func (b *Batch) Complete(i int, raw json.RawMessage, cached bool, err error) {
	b.mu.Lock()
	defer func() {
		close(b.changed)
		b.changed = make(chan struct{})
		b.mu.Unlock()
	}()
	b.done++
	ev := Event{
		Index: i,
		Name:  b.jobs[i].label(),
		Done:  b.done,
		Total: len(b.jobs),
	}
	if err != nil {
		ev.Type = "error"
		ev.Error = err.Error()
		b.errs = append(b.errs, b.jobs[i].label()+": "+err.Error())
	} else {
		ev.Type = "result"
		ev.Cached = cached
		ev.Results = raw
		b.results[i] = raw
		if cached {
			b.hits++
		}
		// Pull the cycle totals for the done-line's skip-rate report; a
		// result that does not parse (or predates the counters) adds
		// nothing, which is the right degradation for a log line.
		var c struct {
			Cycles        uint64
			SkippedCycles uint64
		}
		if json.Unmarshal(raw, &c) == nil {
			b.cycles += c.Cycles
			b.skipped += c.SkippedCycles
		}
	}
	b.events = append(b.events, ev)
	if b.done == len(b.jobs) {
		b.state = StateDone
		b.events = append(b.events, Event{Type: "done", Index: -1, Done: b.done, Total: len(b.jobs)})
	}
}

// Status returns a snapshot of the batch.
func (b *Batch) Status() BatchStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BatchStatus{
		ID:             b.id,
		State:          b.state,
		Total:          len(b.jobs),
		Done:           b.done,
		CacheHits:      b.hits,
		SnapshotGroups: b.groups,
		WarmBuilds:     b.warmBuilds,
		WarmReuses:     b.warmReuses,
		Errors:         append([]string(nil), b.errs...),
		Results:        append([]json.RawMessage(nil), b.results...),
	}
	return st
}

// warmShared records one simulated point's donor usage: forked reports
// that a warm donor existed at all, reused that it was already warm.
func (b *Batch) warmShared(forked, reused bool) {
	if !forked {
		return
	}
	b.mu.Lock()
	if reused {
		b.warmReuses++
	} else {
		b.warmBuilds++
	}
	b.mu.Unlock()
}

// MarkJournaled records that a "batch" journal record was written for
// this batch, so completion knows to append the matching "batchdone".
func (b *Batch) MarkJournaled() {
	b.mu.Lock()
	b.journaled = true
	b.mu.Unlock()
}

// TakeJournalDone reports true exactly once, when a journaled batch has
// completed — the scheduler appends the "batchdone" record on it.
func (b *Batch) TakeJournalDone() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.journaled || b.jdone || b.state != StateDone {
		return false
	}
	b.jdone = true
	return true
}

// TakeDoneLine returns the batch's completion log line exactly once,
// after the last point lands.
func (b *Batch) TakeDoneLine() (string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != StateDone || b.logged {
		return "", false
	}
	b.logged = true
	line := fmt.Sprintf("batch %s done: %d points, %d cache hits, %d errors; %d snapshot groups, warm donors built=%d reused=%d",
		b.id, len(b.jobs), b.hits, len(b.errs), b.groups, b.warmBuilds, b.warmReuses)
	if b.cycles > 0 {
		line += fmt.Sprintf("; clock-skip elided %d/%d cycles (%.1f%%)",
			b.skipped, b.cycles, 100*float64(b.skipped)/float64(b.cycles))
	}
	return line, true
}

// WaitEvent blocks until event i exists and returns it. ok is false
// when the batch finished before producing an i'th event (the stream's
// end) — iterate i upward from 0 to consume the full stream, history
// and live tail alike.
func (b *Batch) WaitEvent(ctx context.Context, i int) (ev Event, ok bool, err error) {
	for {
		b.mu.Lock()
		if i < len(b.events) {
			ev := b.events[i]
			b.mu.Unlock()
			return ev, true, nil
		}
		if b.state != StateRunning {
			b.mu.Unlock()
			return Event{}, false, nil
		}
		ch := b.changed
		b.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return Event{}, false, ctx.Err()
		}
	}
}

// Wait blocks until every point completed (or ctx expires) and returns
// the final status.
func (b *Batch) Wait(ctx context.Context) (BatchStatus, error) {
	for i := 0; ; i++ {
		_, ok, err := b.WaitEvent(ctx, i)
		if err != nil {
			return BatchStatus{}, err
		}
		if !ok {
			return b.Status(), nil
		}
	}
}
