// Command experiments regenerates the paper's evaluation: every figure
// of "Out-of-Order Commit Processors" (HPCA 2004), computed on the
// synthetic SPEC2000fp-stand-in suite.
//
// Usage:
//
//	experiments [-figure all|table1|1|7|9|10|11|12|13|14] [-insts N] [-seed S] [-v]
//
// Figures 9 and 11 share their simulation runs, as in the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate (all, table1, 1, 7, 9, 10, 11, 12, 13, 14, ablations)")
	insts := flag.Uint64("insts", experiments.DefaultInsts, "committed instructions per configuration point")
	seed := flag.Uint64("seed", 42, "workload seed")
	verbose := flag.Bool("v", false, "print per-run progress")
	flag.Parse()

	opt := experiments.Options{Insts: *insts, Seed: *seed}
	if *verbose {
		opt.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figure, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	ran := false

	section := func(name string, fn func()) {
		if !all && !want[name] {
			return
		}
		ran = true
		start := time.Now()
		fn()
		fmt.Printf("(%s: %.1fs)\n\n", name, time.Since(start).Seconds())
	}

	section("table1", func() {
		fmt.Println("Table 1: architectural parameters")
		fmt.Println(experiments.Table1())
	})
	section("1", func() { fmt.Println(experiments.Figure1(opt)) })
	section("7", func() { fmt.Println(experiments.Figure7(opt)) })
	if all || want["9"] || want["11"] {
		ran = true
		start := time.Now()
		r := experiments.Figure9(opt)
		if all || want["9"] {
			fmt.Println(r)
		}
		if all || want["11"] {
			fmt.Println(r.Figure11String())
		}
		fmt.Printf("(9+11: %.1fs)\n\n", time.Since(start).Seconds())
	}
	section("10", func() { fmt.Println(experiments.Figure10(opt)) })
	section("12", func() { fmt.Println(experiments.Figure12(opt)) })
	section("13", func() { fmt.Println(experiments.Figure13(opt)) })
	section("14", func() { fmt.Println(experiments.Figure14(opt)) })
	if want["ablations"] {
		ran = true
		start := time.Now()
		fmt.Println(experiments.Ablations(opt))
		fmt.Printf("(ablations: %.1fs)\n\n", time.Since(start).Seconds())
	}

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *figure)
		flag.Usage()
		os.Exit(2)
	}
}
