package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// API wire types.
type submitRequest struct {
	Jobs []Job `json:"jobs"`
}

type apiError struct {
	Error string `json:"error"`
}

// BatchAPI is the submit/poll surface shared by a worker scheduler and
// a fleet coordinator: anything implementing it serves the same HTTP
// API, so clients cannot tell a coordinator from a single node.
type BatchAPI interface {
	Submit(jobs []Job) (*Batch, error)
	Batch(id string) (*Batch, bool)
}

// HandlerOptions adds the production endpoints around the batch API.
type HandlerOptions struct {
	// Metrics, when non-nil, serves GET /metrics in Prometheus text
	// exposition format.
	Metrics func(w io.Writer)
	// Ready, when non-nil, backs GET /readyz: nil return is 200, an
	// error is 503 with the reason in the body. /healthz stays pure
	// liveness either way.
	Ready func() error
	// StartDrain, when non-nil, backs POST /drainz: stop admitting,
	// finish in-flight, flip readiness. The process-level shutdown
	// (waiting out the queue, closing the listener) stays with the
	// daemon's signal handler; the endpoint only initiates.
	StartDrain func()
	// Donors, when non-nil, serves GET /v1/donors/{key} (warm-donor
	// snapshot shipping between fleet workers).
	Donors http.Handler
}

// NewAPIHandler returns the HTTP API over any BatchAPI:
//
//	POST /v1/batches             submit a batch ({"jobs":[...]}),
//	                             202 + BatchStatus (hits already done);
//	                             429 + Retry-After over the admission
//	                             bound, 503 + Retry-After while draining
//	GET  /v1/batches/{id}        poll a batch, 200 + BatchStatus
//	GET  /v1/batches/{id}/events NDJSON progress stream: full history
//	                             replayed, then live events, closed
//	                             after the final "done" event
//	GET  /healthz                liveness probe (always 200 while serving)
//	GET  /readyz                 readiness probe (see HandlerOptions.Ready)
//	POST /drainz                 start graceful drain (see StartDrain)
//	GET  /metrics                Prometheus text metrics (see Metrics)
//	GET  /v1/donors/{key}        warm-donor snapshot (workers only)
func NewAPIHandler(s BatchAPI, opt HandlerOptions) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if opt.Ready != nil {
			if err := opt.Ready(); err != nil {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, err.Error())
				return
			}
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})

	if opt.StartDrain != nil {
		mux.HandleFunc("POST /drainz", func(w http.ResponseWriter, r *http.Request) {
			opt.StartDrain()
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "draining")
		})
	}

	if opt.Metrics != nil {
		mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			opt.Metrics(w)
		})
	}

	if opt.Donors != nil {
		mux.Handle("GET /v1/donors/{key}", opt.Donors)
	}

	mux.HandleFunc("POST /v1/batches", func(w http.ResponseWriter, r *http.Request) {
		var req submitRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request body: " + err.Error()})
			return
		}
		b, err := s.Submit(req.Jobs)
		if err != nil {
			switch {
			case errors.Is(err, ErrOverloaded):
				// Backpressure, not failure: the client should retry
				// after the queue recedes.
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
			case errors.Is(err, ErrDraining):
				w.Header().Set("Retry-After", "5")
				writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
			default:
				writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
			}
			return
		}
		writeJSON(w, http.StatusAccepted, b.Status())
	})

	mux.HandleFunc("GET /v1/batches/{id}", func(w http.ResponseWriter, r *http.Request) {
		b, ok := s.Batch(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, apiError{Error: "no such batch"})
			return
		}
		writeJSON(w, http.StatusOK, b.Status())
	})

	mux.HandleFunc("GET /v1/batches/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		b, ok := s.Batch(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, apiError{Error: "no such batch"})
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		rc := http.NewResponseController(w)
		enc := json.NewEncoder(w)
		for i := 0; ; i++ {
			ev, ok, err := b.WaitEvent(r.Context(), i)
			if err != nil || !ok {
				return // client went away, or stream complete
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			rc.Flush()
		}
	})

	return mux
}

// NewHandler returns the worker daemon's full HTTP surface over a
// scheduler: the batch API plus metrics, readiness, drain and (when the
// scheduler has a donor exchange) the donor-shipping endpoint.
func NewHandler(s *Scheduler) http.Handler {
	opt := HandlerOptions{
		Metrics:    s.WriteMetrics,
		Ready:      s.Ready,
		StartDrain: s.StartDrain,
	}
	if dx := s.Donors(); dx != nil {
		opt.Donors = dx
	}
	return NewAPIHandler(s, opt)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
