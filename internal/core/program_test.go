package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// programTrace materialises a program-backed workload for core tests.
func programTrace(t *testing.T, name string, input int) *trace.Trace {
	t.Helper()
	r := trace.Recipe{Kernel: trace.KernelProgram, Program: name, Input: input, Seed: 42}
	tr, err := r.Materialise()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestProgramWorkloadCounters pins what the real-program frontend buys
// over the synthetic kernels: real fetch PCs give the BTB something to
// predict (hits on loop branches) and real effective addresses give the
// LSQ genuine store-to-load forwarding. Both counter blocks must be
// surfaced in the results — and absent for synthetic workloads, whose
// encodings must stay byte-identical.
func TestProgramWorkloadCounters(t *testing.T) {
	cfg := config.CheckpointDefault(64, 1024)
	for _, tc := range []struct {
		program  string
		input    int
		forwards bool // must observe store-to-load forwarding
	}{
		// Insertion sort shifts elements through memory: stores to a[j+1]
		// feed the next iteration's loads.
		{"isort", 150, true},
		// The pointer chase spills and reloads its payload accumulator
		// every step, a guaranteed forward.
		{"chase", 4000, true},
	} {
		t.Run(tc.program, func(t *testing.T) {
			tr := programTrace(t, tc.program, tc.input)
			n := uint64(tr.Len()) / 2
			res := mustRun(t, cfg, tr, n)
			if res.BTB == nil {
				t.Fatal("program run surfaced no BTB counters")
			}
			if res.BTB.Lookups == 0 || res.BTB.Hits == 0 {
				t.Fatalf("BTB never hit: %+v", *res.BTB)
			}
			if res.LSQ == nil {
				t.Fatal("program run surfaced no LSQ counters")
			}
			if res.LSQ.Loads == 0 || res.LSQ.Stores == 0 {
				t.Fatalf("LSQ saw no memory traffic: %+v", *res.LSQ)
			}
			if tc.forwards && res.LSQ.Forwards == 0 {
				t.Fatalf("no store-to-load forwarding observed: %+v", *res.LSQ)
			}
			t.Logf("%s: btb hit-rate %.2f, %d forwards over %d loads",
				tc.program, res.BTB.HitRate(), res.LSQ.Forwards, res.LSQ.Loads)
		})
	}

	// Synthetic control: the counter blocks must stay nil so cached
	// synthetic results keep their encodings.
	syn := mustRun(t, cfg, trace.FPMix(20000, 7), 10000)
	if syn.BTB != nil || syn.LSQ != nil {
		t.Fatalf("synthetic run surfaced program-only counters: BTB=%v LSQ=%v", syn.BTB, syn.LSQ)
	}
}

// TestProgramForkedWarmMatchesCold extends the snapshot-fork determinism
// contract to program-backed workloads under every commit-policy family:
// a forked-warm CPU must be bit-identical to a cold-started one through
// real-PC branch recovery (BTB mispredicts, checkpoint rollbacks).
func TestProgramForkedWarmMatchesCold(t *testing.T) {
	tr := programTrace(t, "isort", 150)
	n := uint64(tr.Len()) / 2
	for _, tc := range []struct {
		name string
		cfg  config.Config
	}{
		{"rob", config.BaselineSized(128)},
		{"checkpoint", config.CheckpointDefault(32, 1024)},
		{"adaptive", config.AdaptiveDefault(32, 1024)},
		{"oracle", config.OracleDefault()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(forked bool) stats.Results {
				var cpu *CPU
				var err error
				if forked {
					donor, derr := WarmDonor(mem.WarmKeyFor(tc.cfg), tr)
					if derr != nil {
						t.Fatal(derr)
					}
					cpu, err = NewForked(tc.cfg, tr, donor, NewArena())
				} else {
					cpu, err = New(tc.cfg, tr)
				}
				if err != nil {
					t.Fatal(err)
				}
				return cpu.Run(RunOptions{MaxInsts: n})
			}
			cold, fork := run(false), run(true)
			if tc.name != "oracle" && cold.Rollbacks+cold.PseudoROBRecoveries+cold.Branch.Mispredicts == 0 {
				t.Fatal("program must exercise branch recovery for the comparison to mean anything")
			}
			if !cold.Equal(fork) {
				t.Fatalf("forked-warm program run diverged from cold:\ncold: %+v\nfork: %+v", cold, fork)
			}
		})
	}
}

// TestProgramSkipEquivalence extends the clock skip's bit-equality
// contract to program-backed wrong paths: the wrong-path stream now
// comes from the real static image, so the skip's op-independence guard
// must hold for image ops (Nops skip rename; everything is bound for
// the integer queue).
func TestProgramSkipEquivalence(t *testing.T) {
	tr := programTrace(t, "chase", 6000)
	n := uint64(tr.Len()) * 3 / 4
	for _, tc := range []struct {
		name string
		cfg  config.Config
	}{
		{"rob", config.BaselineSized(128)},
		{"checkpoint", config.CheckpointDefault(32, 1024)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.MemoryLatency = 2000 // long stalls → real quiescent stretches
			tick, skip, skipped := runAB(t, cfg, tr, RunOptions{MaxInsts: n, CollectOccupancy: true}, nil)
			if !tick.Equal(skip) {
				t.Fatalf("skip run diverged on a program workload:\ntick: %+v\nskip: %+v", tick, skip)
			}
			if skipped == 0 {
				t.Fatal("clock skip never engaged; the equivalence check is vacuous")
			}
			t.Logf("%s: %d/%d cycles elided", tc.name, skipped, tick.Cycles)
		})
	}
}

// TestProgramCPUsShareTraceConcurrently: one materialised program trace
// (including its static image and lazily cached warm footprint) is
// shared read-only across concurrent CPUs. Run under -race in CI.
func TestProgramCPUsShareTraceConcurrently(t *testing.T) {
	tr := programTrace(t, "hashjoin", 1200)
	cfg := config.CheckpointDefault(64, 512)
	n := uint64(tr.Len()) / 2
	const workers = 4
	results := make([]stats.Results, workers)
	done := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			cpu, err := New(cfg, tr)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = cpu.Run(RunOptions{MaxInsts: n})
		}(i)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	serial := mustRun(t, cfg, tr, n)
	for i, r := range results {
		if !r.Equal(serial) {
			t.Fatalf("concurrent program CPU %d diverged from serial:\n%+v\nvs\n%+v", i, r, serial)
		}
	}
}
