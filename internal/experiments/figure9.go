package experiments

import (
	"context"
	"fmt"

	"repro/internal/config"
)

// Figure9IQs and Figure9SLIQs are the paper's sweep axes: pseudo-ROB and
// issue-queue size per group, SLIQ size across groups.
var (
	Figure9IQs   = []int{32, 64, 128}
	Figure9SLIQs = []int{512, 1024, 2048}
)

// Figure9Result holds the main performance comparison: COoO IPC per
// (SLIQ, IQ) cell plus the two baseline reference lines, along with the
// matching average in-flight instruction counts that Figure 11 plots
// for the same configurations.
type Figure9Result struct {
	// Suite labels a non-default workload set ("programs"); empty for
	// the synthetic suite, whose rendering — and therefore the pinned
	// golden file — is unchanged.
	Suite string
	SLIQs []int
	IQs   []int
	// IPC[sliq][iq] is the suite-average IPC of the COoO processor.
	IPC map[int]map[int]float64
	// Inflight[sliq][iq] is the suite-average mean in-flight count
	// (Figure 11's metric, same runs).
	Inflight map[int]map[int]float64
	// Baseline128 and Baseline4096 are the reference lines.
	Baseline128IPC       float64
	Baseline4096IPC      float64
	Baseline128Inflight  float64
	Baseline4096Inflight float64
}

// Figure9 runs the headline evaluation: the Commit Out-of-Order
// processor (8 checkpoints) across pseudo-ROB/IQ sizes 32/64/128 and
// SLIQ sizes 512/1024/2048, against conventional baselines with
// 128-entry and (unrealisable) 4096-entry ROB and queues. The same runs
// also produce Figure 11's average in-flight instruction counts.
func Figure9(ctx context.Context, opt Options) (Figure9Result, error) {
	opt = opt.withDefaults()
	suite, err := opt.suite()
	if err != nil {
		return Figure9Result{}, err
	}
	return figure9Over(ctx, opt, suite)
}

// figure9Over runs the figure-9 grid over an already-built suite; the
// program variant (Figure9Programs) shares it.
func figure9Over(ctx context.Context, opt Options, suite []suiteTrace) (Figure9Result, error) {
	var points []point
	for _, sliq := range Figure9SLIQs {
		for _, iq := range Figure9IQs {
			points = append(points, point{cfg: config.CheckpointDefault(iq, sliq)})
		}
	}
	points = append(points,
		point{cfg: config.BaselineSized(128)},
		point{cfg: config.BaselineSized(4096)},
	)
	groups, err := opt.runPoints(ctx, points, suite)
	if err != nil {
		return Figure9Result{}, err
	}

	res := Figure9Result{
		SLIQs:    Figure9SLIQs,
		IQs:      Figure9IQs,
		IPC:      map[int]map[int]float64{},
		Inflight: map[int]map[int]float64{},
	}
	k := 0
	for _, sliq := range Figure9SLIQs {
		res.IPC[sliq] = map[int]float64{}
		res.Inflight[sliq] = map[int]float64{}
		for _, iq := range Figure9IQs {
			res.IPC[sliq][iq] = meanIPC(groups[k])
			res.Inflight[sliq][iq] = meanInflight(groups[k])
			k++
		}
	}
	res.Baseline128IPC = meanIPC(groups[k])
	res.Baseline128Inflight = meanInflight(groups[k])
	k++
	res.Baseline4096IPC = meanIPC(groups[k])
	res.Baseline4096Inflight = meanInflight(groups[k])
	return res, nil
}

// suiteTag renders the non-default suite label into a figure title.
func (r Figure9Result) suiteTag() string {
	if r.Suite == "" {
		return ""
	}
	return ", " + r.Suite + " suite"
}

// String renders the IPC comparison (Figure 9).
func (r Figure9Result) String() string {
	header := []string{"SLIQ", "COoO 32", "COoO 64", "COoO 128", "Baseline 128", "Baseline 4096"}
	rows := make([][]string, 0, len(r.SLIQs)+1)
	for _, sliq := range r.SLIQs {
		rows = append(rows, []string{
			f0(float64(sliq)),
			f3(r.IPC[sliq][32]),
			f3(r.IPC[sliq][64]),
			f3(r.IPC[sliq][128]),
			f3(r.Baseline128IPC),
			f3(r.Baseline4096IPC),
		})
	}
	s := renderTable(fmt.Sprintf("Figure 9: main performance results (IPC, suite average%s)", r.suiteTag()), header, rows)
	best := r.IPC[2048][128]
	s += fmt.Sprintf("\nCOoO 128/2048 vs Baseline 128:  %+.0f%%  (paper: about +204%%)\n",
		100*(best/r.Baseline128IPC-1))
	s += fmt.Sprintf("COoO 128/2048 vs Baseline 4096: %+.0f%%  (paper: about -10%%)\n",
		100*(best/r.Baseline4096IPC-1))
	s += fmt.Sprintf("COoO 32/512   vs Baseline 128:  %+.0f%%  (paper: about +110%%)\n",
		100*(r.IPC[512][32]/r.Baseline128IPC-1))
	return s
}

// Figure11String renders the same runs' in-flight averages (Figure 11).
func (r Figure9Result) Figure11String() string {
	header := []string{"SLIQ", "COoO 32", "COoO 64", "COoO 128", "Baseline 128", "Baseline 4096"}
	rows := make([][]string, 0, len(r.SLIQs))
	for _, sliq := range r.SLIQs {
		rows = append(rows, []string{
			f0(float64(sliq)),
			f0(r.Inflight[sliq][32]),
			f0(r.Inflight[sliq][64]),
			f0(r.Inflight[sliq][128]),
			f0(r.Baseline128Inflight),
			f0(r.Baseline4096Inflight),
		})
	}
	return renderTable(fmt.Sprintf("Figure 11: average in-flight instructions (same configurations as Figure 9%s)", r.suiteTag()), header, rows)
}
