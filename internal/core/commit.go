package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/rename"
)

// commitStage retires architectural state: per-instruction in-order for
// the ROB baseline, whole windows at once for checkpoint commit.
func (c *CPU) commitStage() {
	switch c.cfg.Commit {
	case config.CommitROB:
		c.commitROB()
	case config.CommitCheckpoint:
		c.commitCheckpoints()
	}
}

// commitROB retires up to CommitWidth finished instructions from the
// reorder-buffer head, freeing superseded physical registers and
// draining stores, the conventional discipline the paper replaces.
func (c *CPU) commitROB() {
	c.reorder.Commit(c.cfg.CommitWidth,
		func(d *DynInst) bool { return d.Done },
		func(d *DynInst) {
			if d.WrongPath || d.Squashed {
				panic(fmt.Sprintf("core: committing dead instruction %v", d))
			}
			if d.PrevPhys != rename.PhysNone {
				c.rt.Free(d.PrevPhys)
				c.producer[d.PrevPhys] = nil
			}
			if d.lsqe != nil {
				c.lq.Retire(d.lsqe, c.hier.StoreCommit)
				d.lsqe = nil
			}
			c.committed++
			c.inflight--
			c.lastCommitCycle = c.now
			c.pool.release(d)
		})
}

// commitCheckpoints retires every committable checkpoint: the oldest
// window whose instructions have all finished commits as a unit — its
// deferred register frees are applied and its stores drain to memory.
// This is the paper's out-of-order commit: instructions "commit" (their
// resources are released) without any per-instruction in-order walk.
func (c *CPU) commitCheckpoints() {
	for c.ckpts.CanCommit() {
		_, futureFree, endSeq := c.ckpts.Commit()
		c.rt.CommitFutureFree(futureFree)
		c.lq.DrainStoresBefore(endSeq, c.hier.StoreCommit)
		c.retireWindow(endSeq)
		c.lastCommitCycle = c.now
	}

	// End-of-program drain: the final window has no younger checkpoint
	// to close it; retire it once every instruction has finished.
	if c.fetchExhausted() && c.ckpts.Len() == 1 &&
		c.ckpts.Oldest().Pending == 0 && c.master.len() > 0 {
		c.lq.DrainStoresBefore(c.nextSeq, c.hier.StoreCommit)
		c.retireWindow(c.nextSeq)
		c.lastCommitCycle = c.now
	}
}

// retireWindow removes committed instructions (Seq < endSeq) from the
// simulator's in-flight list. Records still resident in the pseudo-ROB
// stay alive (Retired) until extraction classifies them for Figure 12;
// everything else recycles now.
func (c *CPU) retireWindow(endSeq uint64) {
	for c.master.len() > 0 && c.master.front().Seq < endSeq {
		d := c.master.popFront()
		switch {
		case d.Squashed, d.WrongPath:
			panic(fmt.Sprintf("core: dead instruction in committed window: %v", d))
		case !d.Done:
			panic(fmt.Sprintf("core: unfinished instruction in committed window: %v", d))
		}
		d.lsqe = nil
		c.committed++
		c.inflight--
		if d.inProb {
			d.Retired = true
		} else {
			c.pool.release(d)
		}
	}
}
