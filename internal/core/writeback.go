package core

import (
	"repro/internal/isa"
	"repro/internal/rename"
)

// writebackStage retires completion events whose time has come: values
// are written to the register file, dependants are woken (issue queues
// and SLIQ), memory entries are marked executed, checkpoint counters are
// decremented, and mispredicted branches trigger recovery.
func (c *CPU) writebackStage() {
	if c.vt != nil {
		c.drainDeferredBinds()
	}
	for _, d := range c.completions.takeDue(c.now) {
		if d.Squashed {
			// An older event in this batch squashed it mid-drain; the
			// record is quarantined (not recycled) until the next
			// dispatch stage, so the flag is safely readable.
			continue
		}
		c.completeInst(d)
	}
}

// completeInst applies the virtual-register admission gate and then
// finishes the instruction. A value that cannot bind a physical register
// is deferred until a release (the Figure 14 pressure mechanism).
func (c *CPU) completeInst(d *DynInst) {
	if d.Done {
		panic("core: double completion of " + d.String())
	}
	if c.vt != nil && d.DestPhys != rename.PhysNone {
		// Release the superseded value first: early recycling means the
		// new value can take the register its redefinition frees (and
		// releasing after a failed bind would deadlock a full file).
		c.vregReleasePrev(d)
		if !c.vt.TryBind(d.fusedRelease) {
			c.deferredBind = append(c.deferredBind, d)
			return
		}
		d.boundPhys = !d.fusedRelease
	}
	c.finishCompletion(d)
}

// finishCompletion performs the writeback proper.
func (c *CPU) finishCompletion(d *DynInst) {
	d.Done = true
	d.DoneCycle = c.now

	if d.DestPhys != rename.PhysNone {
		c.regReady[d.DestPhys] = true
		c.longTaint[d.DestPhys] = false
		waiting := c.consumers[d.DestPhys]
		for _, ref := range waiting {
			// Stale refs beyond the truncation point are harmless: the
			// records are pool-owned (never garbage collected), so the
			// slots are not zeroed — that skips a write barrier per
			// wakeup on the hottest writeback loop.
			cons := ref.d
			if cons.Seq != ref.seq {
				// The record was recycled: the registering instruction
				// is gone (squashed and released).
				continue
			}
			switch {
			case cons.Squashed:
			case cons.Inst.Op == isa.Store:
				// LSQ-resident: the store executes once its last
				// source arrives.
				if !cons.Issued {
					cons.pendingSrcs--
					if cons.pendingSrcs == 0 {
						cons.Issued = true
						cons.DoneCycle = c.now + 1
						c.completions.push(cons)
					}
				}
			case cons.iqe.Resident():
				c.iqFor(cons.Inst.Op).Wake(&cons.iqe)
			}
		}
		c.consumers[d.DestPhys] = waiting[:0]
		if c.sliq != nil {
			c.sliq.TriggerReady(d.DestPhys, c.now)
		}
	}
	if d.lsqe != nil {
		c.lq.MarkExecuted(d.lsqe)
	}
	c.policy.Completed(d)

	if d.Inst.Op == isa.Branch && d.Mispredicted && c.divergedAt == d {
		c.resolveMispredict(d)
	}
	// Safe even if the recovery above squashed-and-released d: released
	// records are quarantined with their fields intact until the next
	// dispatch stage (see instPool).
	if d.ExceptAt && !d.Squashed {
		d.ExceptAt = false
		c.policy.RaiseException(d)
	}
}

// drainDeferredBinds retries writebacks stalled on physical-register
// exhaustion, in completion order, while registers are available.
func (c *CPU) drainDeferredBinds() {
	n := 0
	for ; n < len(c.deferredBind); n++ {
		d := c.deferredBind[n]
		if d.Squashed {
			// The squash already returned its tag.
			continue
		}
		c.vregReleasePrev(d)
		if !d.fusedRelease && !c.vt.CanBind() {
			break
		}
		if !c.vt.TryBind(d.fusedRelease) {
			panic("core: vreg bind failed after CanBind")
		}
		d.boundPhys = !d.fusedRelease
		c.finishCompletion(d)
	}
	if n > 0 {
		c.deferredBind = append(c.deferredBind[:0], c.deferredBind[n:]...)
	}
}

// vregReleasePrev releases the value this instruction redefines, per the
// ephemeral-register early-release rule: the replacement value now
// exists (or is being written), so the old one's register is recycled.
// Idempotent: deferred binds retry through here.
func (c *CPU) vregReleasePrev(d *DynInst) {
	if d.prevReleased {
		return
	}
	d.prevReleased = true
	prev := d.prevProd
	switch {
	case d.PrevPhys == rename.PhysNone:
		// No previous mapping: nothing to release.
	case prev == nil:
		// The previous value was architectural initial state; release
		// it exactly once even across rollback replays.
		if !c.archReleased[d.Inst.Dest] {
			c.archReleased[d.Inst.Dest] = true
			c.vt.Release()
		}
	case prev.Done:
		if prev.boundPhys {
			prev.boundPhys = false
			c.vt.Release()
		}
	default:
		// The previous producer has not completed yet; fuse its bind
		// with the release so it never consumes a register.
		prev.fusedRelease = true
	}
}
