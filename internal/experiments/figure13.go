package experiments

import (
	"context"

	"repro/internal/config"
)

// Figure13Checkpoints is the checkpoint-count sweep of Figure 13.
var Figure13Checkpoints = []int{4, 8, 16, 32, 64, 128}

// Figure13Result holds IPC versus the number of available checkpoints,
// plus the unfeasible 4096-entry-ROB limit.
type Figure13Result struct {
	Checkpoints []int
	IPC         map[int]float64
	LimitIPC    float64
}

// figure13Config is the paper's setup for this study: checkpoint commit
// with 2048-entry queues and 2048 physical registers, so the checkpoint
// count is the only binding resource.
func figure13Config(ckpts int) config.Config {
	cfg := config.CheckpointDefault(2048, 2048)
	cfg.Checkpoints = ckpts
	cfg.PhysRegs = 2048
	return cfg
}

// Figure13 measures sensitivity of out-of-order commit to the
// checkpoint-table size (the paper: 4 checkpoints cost ~20% vs the
// limit, 8 cost ~9%, 32 and beyond ~6%). The limit machine has the
// unfeasible 4096-entry ROB but shares the study's 2048-entry queues
// and 2048 physical registers, so the checkpoint count is the only
// variable.
func Figure13(ctx context.Context, opt Options) (Figure13Result, error) {
	opt = opt.withDefaults()
	suite, err := opt.suite()
	if err != nil {
		return Figure13Result{}, err
	}

	limit := config.BaselineSized(4096)
	limit.IntQueueEntries = 2048
	limit.FPQueueEntries = 2048
	limit.PhysRegs = 2048

	points := []point{{cfg: limit}}
	for _, k := range Figure13Checkpoints {
		points = append(points, point{cfg: figure13Config(k)})
	}
	groups, err := opt.runPoints(ctx, points, suite)
	if err != nil {
		return Figure13Result{}, err
	}

	res := Figure13Result{
		Checkpoints: Figure13Checkpoints,
		IPC:         map[int]float64{},
		LimitIPC:    meanIPC(groups[0]),
	}
	for i, k := range res.Checkpoints {
		res.IPC[k] = meanIPC(groups[i+1])
	}
	return res, nil
}

// Slowdown returns the relative IPC loss at k checkpoints versus the
// limit machine.
func (r Figure13Result) Slowdown(k int) float64 {
	return 1 - r.IPC[k]/r.LimitIPC
}

// String renders the sweep.
func (r Figure13Result) String() string {
	header := []string{"checkpoints", "IPC", "vs limit"}
	rows := [][]string{{"limit (4096 ROB)", f3(r.LimitIPC), "-"}}
	for _, k := range r.Checkpoints {
		rows = append(rows, []string{
			f0(float64(k)), f3(r.IPC[k]), "-" + f1(100*r.Slowdown(k)) + "%",
		})
	}
	return renderTable("Figure 13: sensitivity to the number of checkpoints (2048-entry IQ, 2048 physical registers)", header, rows)
}
