// Package core implements the simulated processors. The pipeline
// (fetch/dispatch/issue/writeback) is shared; retirement is a pluggable
// CommitPolicy selected by config.Commit: the conventional ROB-commit
// baseline, the paper's checkpointed out-of-order commit with
// pseudo-ROB and Slow Lane Instruction Queuing, the adaptive-confidence
// checkpointing variant, and the unbounded-window oracle limit. See
// DESIGN.md for the modelling contract and policy.go for the seam.
package core

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/queue"
	"repro/internal/rename"
)

// DynInst is the pipeline's record of one in-flight dynamic instruction.
// Fields are managed by the CPU; tests inspect them read-only.
//
// Ownership and recycling contract: records are acquired from a per-CPU
// free list at dispatch and returned to it when the instruction leaves
// the pipeline — at commit (ROB retire or checkpoint-window retirement)
// or at squash. After releaseInst, no component may hold a *DynInst it
// intends to dereference as that instruction: Seq is the only durable
// identity, so every structure that can outlive an instruction (the
// consumer lists, SLIQ residency, LSQ forward waiters, the SLIQ
// dependence-mask owners) stores the Seq alongside the pointer and
// treats a mismatch as "instruction is gone". The completion heap and
// the issue queues never hold released records (squash purges both
// eagerly). Released records are quarantined on a dead list until the
// next dispatch stage, so stale pointers created in the same cycle still
// observe Squashed==true; debug builds (debugPool, enabled by the test
// suite) additionally poison freed records to catch pool misuse.
type DynInst struct {
	// Seq is the dynamic sequence number: unique and monotonically
	// increasing across fetches, including wrong-path and replayed
	// instructions. All age comparisons — and all liveness checks
	// against possibly-recycled records — use Seq.
	Seq uint64
	// Pos is the trace position this instruction came from; -1 for
	// wrong-path instructions.
	Pos int64
	// Inst is the architectural instruction.
	Inst isa.Inst

	// Rename state.
	DestPhys rename.PhysReg
	PrevPhys rename.PhysReg // previous mapping of Inst.Dest
	SrcPhys  [2]rename.PhysReg
	NumSrcs  int

	// Execution state.
	Issued    bool
	Done      bool
	DoneCycle int64
	// MissedL2 marks loads that went to main memory.
	MissedL2 bool
	// Mispredicted marks branches whose fetch-time prediction was wrong.
	Mispredicted bool
	// WrongPath marks synthetic instructions fetched past an unresolved
	// mispredicted branch; they never commit.
	WrongPath bool
	// Squashed instructions are dead; late completion events ignore them.
	Squashed bool
	// LiveLong records the blocked-long/blocked-short classification
	// made at dispatch (Figure 7's live-instruction split); countedLive
	// marks that the instruction is in the live FP counters.
	LiveLong    bool
	countedLive bool
	// ExceptAt requests a precise exception when this instruction
	// completes (exception-replay tests inject it).
	ExceptAt bool
	// Replayed marks the second-pass execution of an instruction after
	// an exception rollback.
	Replayed bool
	// Retired marks an instruction whose window already committed while
	// it still sits in the pseudo-ROB; extraction classifies it (Figure
	// 12 counts committed work too) and then recycles the record.
	Retired bool

	// Structure handles. iqe is the embedded issue-queue entry (see
	// queue.IQEntry): queue residence costs no allocation, and
	// iqe.Resident() replaces the former nil-pointer check.
	iqe  queue.IQEntry[*DynInst]
	lsqe *lsq.Entry
	ckpt *checkpoint.Entry
	// inSLIQ marks residence in the slow lane; inProb marks residence
	// in the pseudo-ROB.
	inSLIQ bool
	inProb bool
	// heapIdx is this instruction's position in the completion heap.
	heapIdx int32

	// Virtual-register extension state (Figure 14). The free-list pool
	// is disabled in virtual-register mode: prevProd links may point at
	// instructions that committed long before their redefiner completes,
	// so records must outlive commit there.
	// prevProd is the producer of the value this instruction redefines.
	prevProd *DynInst
	// fusedRelease: the redefiner completed first, so binding this
	// value consumes no physical register (bind and release fuse).
	fusedRelease bool
	// boundPhys: this value's bind consumed a physical register.
	boundPhys bool
	// prevReleased: the superseded value has been released (release
	// precedes binding and must be idempotent across deferred retries).
	prevReleased bool
	// forwardWait: a load blocked on an older store's data.
	forwardWait bool
	// pendingSrcs counts unready sources for LSQ-resident stores,
	// which wait on the scoreboard instead of occupying an issue-queue
	// entry (the paper keeps stores in the Load/Store queue).
	pendingSrcs int
	// retireClass records the pseudo-ROB classification (debugging);
	// -1 before extraction.
	retireClass int8
}

// String renders a debug line.
func (d *DynInst) String() string {
	state := "waiting"
	switch {
	case d.Squashed:
		state = "squashed"
	case d.Done:
		state = "done"
	case d.Issued:
		state = "issued"
	case d.inSLIQ:
		state = "sliq"
	}
	return fmt.Sprintf("#%d pos=%d %v [%s]", d.Seq, d.Pos, d.Inst, state)
}

// instPool recycles DynInst records within one CPU. Fresh records come
// from block allocations (instBlockSize at a time); released records
// sit on the dead list until recycleDead folds them into the free list
// at the start of the next dispatch stage (the quarantine that keeps
// same-cycle stale pointers observing the squashed record, not a reused
// one). disabled turns the pool into a plain allocator (virtual-register
// mode, see DynInst).
type instPool struct {
	free     []*DynInst
	dead     []*DynInst
	block    []DynInst
	disabled bool
}

const instBlockSize = 256

// debugPool enables pool-misuse checks: released records are poisoned
// and acquisition verifies the poison. The core test suite switches it
// on (see TestMain); it stays off in production runs to keep the reset
// path minimal.
var debugPool = false

// poisonSeq marks a record resident in the free list.
const poisonSeq = ^uint64(0) - 0x5eed

// acquire returns a zeroed record with iqe.Payload bound. Free-list
// records were zeroed when recycleDead folded them in; fresh-block
// records are runtime-zeroed.
func (p *instPool) acquire() *DynInst {
	if n := len(p.free); n > 0 {
		d := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		if debugPool {
			if d.Seq != poisonSeq {
				panic(fmt.Sprintf("core: pool corruption: free-list record has seq %d", d.Seq))
			}
			d.Seq = 0
		}
		d.init()
		return d
	}
	if len(p.block) == 0 {
		p.block = make([]DynInst, instBlockSize)
	}
	d := &p.block[0]
	p.block = p.block[1:]
	d.init()
	return d
}

// init sets the non-zero defaults of a fresh record.
func (d *DynInst) init() {
	d.DestPhys = rename.PhysNone
	d.PrevPhys = rename.PhysNone
	d.heapIdx = eventNone
	d.iqe.Payload = d
}

// release quarantines a record that left the pipeline (committed or
// squashed); recycleDead makes it reusable one stage later.
func (p *instPool) release(d *DynInst) {
	if p.disabled {
		return
	}
	if debugPool {
		if d.Seq == poisonSeq {
			panic("core: double release of a pooled DynInst")
		}
		if d.iqe.Resident() {
			panic(fmt.Sprintf("core: releasing issue-queue-resident %v", d))
		}
		if d.heapIdx != eventNone {
			panic(fmt.Sprintf("core: releasing completion-scheduled %v", d))
		}
		if d.inSLIQ || d.inProb {
			panic(fmt.Sprintf("core: releasing queue-resident %v (sliq=%v prob=%v)", d, d.inSLIQ, d.inProb))
		}
	}
	p.dead = append(p.dead, d)
}

// recycleDead folds the quarantine into the free list, zeroing each
// record as it goes: the quarantine window (same-cycle stale pointers
// observing Squashed) has passed, and clean free-list records both drop
// every cross-structure reference — an arena-shared pool must not pin a
// finished CPU's structures — and make acquire a plain pop.
func (p *instPool) recycleDead() {
	if len(p.dead) == 0 {
		return
	}
	for i, d := range p.dead {
		p.dead[i] = nil
		*d = DynInst{}
		if debugPool {
			d.Seq = poisonSeq
		}
		p.free = append(p.free, d)
	}
	p.dead = p.dead[:0]
}

// eventNone marks a record with no scheduled completion. A scheduled
// record's heapIdx encodes where it lives: >= 0 is its position in the
// far heap, <= -2 encodes its calendar-wheel slot as -2-slot.
const eventNone int32 = -1

// eventWheel schedules completion events on a calendar ring indexed by
// cycle, spilling events beyond the ring horizon to a min-heap. Pop
// order is exactly the old completion heap's — (DoneCycle, Seq), a
// total order — so swapping the heap for the wheel is invisible to
// simulated state (TestFigure9Golden pins it); the win is O(1)
// push/remove against O(log n) heap churn when kilo-instruction
// windows keep hundreds of memory fills in flight at once.
type eventWheel struct {
	// buckets[t&mask] holds the (unsorted) events of cycle t for t in
	// [base, base+len(buckets)); each slot is drained before the ring
	// wraps back onto it, so slots are never shared between cycles.
	buckets [][]*DynInst
	mask    int64
	// base is the earliest cycle a push may target: takeDue(now) sets
	// it to now+1 before handing out the due batch, so mid-drain pushes
	// (and the late-push guard) land in a future slot, never the one
	// being drained.
	base int64
	n    int
	far  completionHeap
	due  []*DynInst
}

// newEventWheel sizes the ring to cover horizon cycles of schedule
// distance (rounded up to a power of two); longer latencies still work
// through the far heap, just slower.
func eventWheelSlots(horizon int) int {
	size := 64
	for size < horizon {
		size *= 2
	}
	return size
}

func newEventWheel(size int) eventWheel {
	w := eventWheel{buckets: make([][]*DynInst, size), mask: int64(size - 1)}
	// Carve every bucket's initial capacity out of one slab: buckets are
	// drained to length 0 and reused each lap, so steady state allocates
	// only when a single cycle completes more than bucketCap events (the
	// bucket then keeps its grown capacity for the rest of the run).
	const bucketCap = 8
	slab := make([]*DynInst, size*bucketCap)
	for i := range w.buckets {
		w.buckets[i] = slab[i*bucketCap : i*bucketCap : (i+1)*bucketCap]
	}
	return w
}

// Len returns the number of scheduled (not yet due) events.
func (w *eventWheel) Len() int { return w.n }

// recycle empties the wheel for reuse by another CPU (see Arena),
// keeping every backing array. Record pointers retained beyond the
// truncation points reference pool-owned memory, never garbage.
func (w *eventWheel) recycle() {
	for i := range w.buckets {
		w.buckets[i] = w.buckets[i][:0]
	}
	w.far.entries = w.far.entries[:0]
	w.due = w.due[:0]
	w.base, w.n = 0, 0
}

// push schedules d at d.DoneCycle.
func (w *eventWheel) push(d *DynInst) {
	w.n++
	t := d.DoneCycle
	if t < w.base {
		t = w.base // late push: fire at the next drain, as the heap did
	}
	if t < w.base+int64(len(w.buckets)) {
		s := t & w.mask
		d.heapIdx = -2 - int32(s)
		w.buckets[s] = append(w.buckets[s], d)
		return
	}
	w.far.push(d)
}

// remove unschedules a completion (squash); a no-op when d is not
// scheduled — in particular for records already handed out by takeDue,
// which the writeback drain skips via the Squashed flag instead.
func (w *eventWheel) remove(d *DynInst) {
	switch {
	case d.heapIdx == eventNone:
		return
	case d.heapIdx >= 0:
		w.far.remove(d)
	default:
		s := int64(-2 - d.heapIdx)
		b := w.buckets[s]
		for i, e := range b {
			if e == d {
				last := len(b) - 1
				b[i] = b[last]
				b[last] = nil
				w.buckets[s] = b[:last]
				d.heapIdx = eventNone
				w.n--
				return
			}
		}
		panic(fmt.Sprintf("core: event wheel desync for %v", d))
	}
	w.n--
}

// nextDue returns the cycle of the earliest scheduled event strictly
// below limit, or limit when none is due before it — the exact target
// for an event-driven clock jump. It is read-only: no event moves, so a
// subsequent takeDue at (or before) the returned cycle drains exactly
// what a cycle-by-cycle walk would have. Cost is one far-heap peek plus
// a ring scan bounded by the returned distance, so the work amortises
// to O(1) per skipped cycle.
func (w *eventWheel) nextDue(limit int64) int64 {
	if w.n == 0 {
		return limit
	}
	// The far heap is checked first: far entries never migrate into the
	// ring, so an entry just past base can be sitting in the heap even
	// though its cycle is within the ring horizon.
	if d := w.far.peek(); d != nil && d.DoneCycle < limit {
		limit = d.DoneCycle
	}
	hi := w.base + int64(len(w.buckets))
	if hi > limit {
		hi = limit
	}
	for t := w.base; t < hi; t++ {
		if len(w.buckets[t&w.mask]) > 0 {
			return t
		}
	}
	return limit
}

// takeDue unschedules and returns every event due at cycle now, in
// (DoneCycle, Seq) order. The returned slice is reused by the next
// call. The caller processes the batch with mutation in flight: events
// it squashes mid-batch stay readable (records are quarantined until
// the next dispatch stage) and are skipped via their Squashed flag, and
// events it pushes land at now+1 or later.
func (w *eventWheel) takeDue(now int64) []*DynInst {
	w.base = now + 1
	if w.n == 0 {
		return nil
	}
	// Swap the due bucket's backing with the previous batch's: the due
	// batch is handed out as-is and the old batch array becomes the
	// slot's fresh empty bucket, so draining moves no elements. Records
	// linger in the handed-out array until its next turn as a bucket,
	// which is fine — they are pool-owned and never garbage collected.
	s := now & w.mask
	due := w.buckets[s]
	w.buckets[s] = w.due[:0]
	w.due = due
	for _, d := range due {
		d.heapIdx = eventNone
	}
	for {
		d := w.far.peek()
		if d == nil || d.DoneCycle > now {
			break
		}
		w.far.pop()
		due = append(due, d)
		w.due = due
	}
	w.n -= len(due)
	// Insertion sort: due batches are a handful of events (about the
	// commit IPC), and bucket insertion order is arbitrary.
	for i := 1; i < len(due); i++ {
		d := due[i]
		j := i - 1
		for j >= 0 && (due[j].DoneCycle > d.DoneCycle ||
			(due[j].DoneCycle == d.DoneCycle && due[j].Seq > d.Seq)) {
			due[j+1] = due[j]
			j--
		}
		due[j+1] = d
	}
	return due
}

// completionHeap orders in-flight completions by DoneCycle (ties by Seq
// for determinism). It is a typed min-heap (no container/heap interface
// dispatch) with positional removal so squash can purge scheduled
// completions eagerly — a record in this heap is never a released one.
// It backs the eventWheel's far spillover.
type completionHeap struct {
	entries []*DynInst
}

func (h *completionHeap) Len() int { return len(h.entries) }

// less orders by (DoneCycle, Seq).
func (h *completionHeap) less(a, b *DynInst) bool {
	if a.DoneCycle != b.DoneCycle {
		return a.DoneCycle < b.DoneCycle
	}
	return a.Seq < b.Seq
}

// push schedules a completion.
func (h *completionHeap) push(d *DynInst) {
	d.heapIdx = int32(len(h.entries))
	h.entries = append(h.entries, d)
	h.up(len(h.entries) - 1)
}

// peek returns the earliest completion without removing it.
func (h *completionHeap) peek() *DynInst {
	if len(h.entries) == 0 {
		return nil
	}
	return h.entries[0]
}

// pop removes and returns the earliest completion.
func (h *completionHeap) pop() *DynInst {
	d := h.entries[0]
	h.removeAt(0)
	return d
}

// remove unschedules a completion (squash).
func (h *completionHeap) remove(d *DynInst) {
	if d.heapIdx < 0 {
		return
	}
	if h.entries[d.heapIdx] != d {
		panic(fmt.Sprintf("core: completion heap desync for %v", d))
	}
	h.removeAt(int(d.heapIdx))
}

func (h *completionHeap) removeAt(i int) {
	e := h.entries
	last := len(e) - 1
	d := e[i]
	if i != last {
		e[i] = e[last]
		e[i].heapIdx = int32(i)
	}
	e[last] = nil
	h.entries = e[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
	d.heapIdx = -1
}

func (h *completionHeap) up(i int) {
	e := h.entries
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(e[i], e[parent]) {
			break
		}
		e[parent], e[i] = e[i], e[parent]
		e[parent].heapIdx = int32(parent)
		e[i].heapIdx = int32(i)
		i = parent
	}
}

func (h *completionHeap) down(i int) {
	e := h.entries
	n := len(e)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && h.less(e[r], e[l]) {
			min = r
		}
		if !h.less(e[min], e[i]) {
			break
		}
		e[i], e[min] = e[min], e[i]
		e[i].heapIdx = int32(i)
		e[min].heapIdx = int32(min)
		i = min
	}
}
