package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"strconv"

	"repro/internal/config"
	"repro/internal/trace"
)

// FingerprintVersion tags every fingerprint with the simulator
// semantics that produced it. Bump it whenever a change alters what any
// configuration computes (timing model fixes, new default behaviour, a
// meaning-changing canonical-encoding change): old content-addressed
// cache entries then miss instead of serving stale results.
//
// v2: the commit-policy engine. Config gained the string-keyed policy
// registry and the adaptive parameter block, the canonical encoding
// grew new fields, and Default() no longer carries checkpoint
// parameters — results cached under v1 must never alias a v2 point.
//
// The real-program workload extension deliberately did NOT bump the
// version: program recipes render a canonical string form
// ("program/<name>/input=N/seed=S") that no synthetic recipe can
// produce, Config grew no new fields (BTB geometry is a package
// constant), and synthetic Results encodings are unchanged (the
// program-only counter blocks are omitempty pointers). Every v2
// synthetic cache entry therefore stays valid and program points
// address fresh, disjoint keys — see TestFingerprintPinned for the
// zero-drift guard.
//
// The sampled-simulation extension follows the same zero-drift rule:
// sampled points append "/sample/w=W/d=D/p=P" to the canonical recipe
// string (trace.PointString), a suffix no recipe can render, and
// non-sampled points hash exactly the bytes they always did. Sampled
// results additionally carry the omitempty Sampled block, so their
// cached encodings can never alias a full-detail point's either.
const FingerprintVersion = 2

// Fingerprint returns the content address of one simulation point: a
// hex SHA-256 over the canonical configuration encoding, the canonical
// trace-recipe string, the instruction budget, and the collection
// flags, prefixed with FingerprintVersion. Equal fingerprints imply
// equal Results (simulation is deterministic); the service's result
// cache and singleflight dedupe both key on it.
//
// The trace recipe is hashed instead of the materialised instruction
// stream so a fingerprint is computable without generating the trace —
// the whole point of a cache hit is to skip that work.
func Fingerprint(cfg config.Config, traceRecipe string, insts uint64, collectOccupancy bool) (string, error) {
	cj, err := cfg.CanonicalJSON()
	if err != nil {
		return "", fmt.Errorf("sim: fingerprint: %w", err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "ooosim-fp-v%d\x00", FingerprintVersion)
	h.Write(cj)
	fmt.Fprintf(h, "\x00%s\x00%d\x00%t", traceRecipe, insts, collectOccupancy)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ShardFor maps a fingerprint (or any hex content address) to one of n
// shards by its leading 64-bit prefix. Sharding on the fingerprint —
// the same key the content-addressed result cache uses — means every
// node of a fleet owns a stable, disjoint slice of the point space:
// identical points always land on the same node (cross-node
// singleflight comes for free) and each node's cache warms exactly its
// own shard. Non-hex input (never produced by Fingerprint) degrades to
// an FNV hash rather than an error: a shard function must be total.
func ShardFor(fp string, n int) int {
	if n <= 1 {
		return 0
	}
	prefix := fp
	if len(prefix) > 16 {
		prefix = prefix[:16]
	}
	v, err := strconv.ParseUint(prefix, 16, 64)
	if err != nil {
		h := fnv.New64a()
		h.Write([]byte(fp))
		v = h.Sum64()
	}
	return int(v % uint64(n))
}

// Fingerprint returns the spec's content address. It fails for specs
// whose trace has no generation recipe (custom trace.Mix weights):
// those run fine locally but cannot be identified without hashing the
// stream itself, so they are not cacheable.
func (s RunSpec) Fingerprint() (string, error) {
	if s.Trace == nil {
		return "", fmt.Errorf("sim: fingerprint: spec %q has no trace", s.Name)
	}
	r, ok := s.Trace.Recipe()
	if !ok {
		return "", fmt.Errorf("sim: fingerprint: trace %q has no generation recipe", s.Trace.Name())
	}
	return Fingerprint(s.Config, trace.PointString(r, s.Sample), s.Insts, s.CollectOccupancy)
}
