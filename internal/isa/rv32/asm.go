package rv32

import "fmt"

// ABI register names for assembler calls (x0..x31).
const (
	X0 = iota
	RA
	SP
	GP
	TP
	T0
	T1
	T2
	S0
	S1
	A0
	A1
	A2
	A3
	A4
	A5
	A6
	A7
	S2
	S3
	S4
	S5
	S6
	S7
	S8
	S9
	S10
	S11
	T3
	T4
	T5
	T6
)

// Asm assembles a text segment instruction by instruction. Branch and
// jump targets are symbolic labels resolved by Assemble; errors
// (unknown labels, out-of-range immediates, bad registers) are
// accumulated and reported once, so program builders stay unconditional
// straight-line Go code.
type Asm struct {
	code   []asmEntry
	labels map[string]int
	errs   []error
}

type asmEntry struct {
	d     Decoded
	label string // non-empty: resolve Imm as a byte offset to this label
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: map[string]int{}}
}

func (a *Asm) emit(d Decoded) { a.code = append(a.code, asmEntry{d: d}) }

func (a *Asm) emitLabel(d Decoded, label string) {
	a.code = append(a.code, asmEntry{d: d, label: label})
}

func (a *Asm) reg(r int) uint8 {
	if r < 0 || r > 31 {
		a.errs = append(a.errs, fmt.Errorf("rv32: asm: register x%d out of range", r))
		return 0
	}
	return uint8(r)
}

// Label binds name to the address of the next emitted instruction.
func (a *Asm) Label(name string) {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Errorf("rv32: asm: duplicate label %q", name))
		return
	}
	a.labels[name] = len(a.code)
}

// Assemble resolves labels and encodes the program text. Branch and
// jump offsets are relative, so the text can be laid out at any base.
func (a *Asm) Assemble() ([]uint32, error) {
	if len(a.errs) > 0 {
		return nil, a.errs[0]
	}
	words := make([]uint32, len(a.code))
	for i, e := range a.code {
		d := e.d
		if e.label != "" {
			at, ok := a.labels[e.label]
			if !ok {
				return nil, fmt.Errorf("rv32: asm: undefined label %q", e.label)
			}
			d.Imm = int32(at-i) * 4
		}
		w, err := d.Encode()
		if err != nil {
			return nil, fmt.Errorf("rv32: asm: instruction %d (%v): %w", i, d, err)
		}
		words[i] = w
	}
	return words, nil
}

// AddrOf returns the address label resolves to when the text is laid
// out at base; program builders use it to seed function-pointer tables.
func (a *Asm) AddrOf(label string, base uint32) (uint32, error) {
	at, ok := a.labels[label]
	if !ok {
		return 0, fmt.Errorf("rv32: asm: undefined label %q", label)
	}
	return base + uint32(at)*4, nil
}

// --- U/J-type ---

// Lui loads the upper 20 bits: rd = v with the low 12 bits cleared.
func (a *Asm) Lui(rd int, v int32) {
	a.emit(Decoded{Op: LUI, Rd: a.reg(rd), Imm: v &^ 0xFFF})
}

// Jal jumps to label, writing the return address to rd (X0 discards).
func (a *Asm) Jal(rd int, label string) {
	a.emitLabel(Decoded{Op: JAL, Rd: a.reg(rd)}, label)
}

// J is the unconditional-jump pseudo-instruction (jal x0).
func (a *Asm) J(label string) { a.Jal(X0, label) }

// Jalr jumps to rs1+imm, writing the return address to rd.
func (a *Asm) Jalr(rd, rs1 int, imm int32) {
	a.emit(Decoded{Op: JALR, Rd: a.reg(rd), Rs1: a.reg(rs1), Imm: imm})
}

// Ret returns to the address in ra (jalr x0, ra, 0).
func (a *Asm) Ret() { a.Jalr(X0, RA, 0) }

// --- branches ---

func (a *Asm) branch(op Op, rs1, rs2 int, label string) {
	a.emitLabel(Decoded{Op: op, Rs1: a.reg(rs1), Rs2: a.reg(rs2)}, label)
}

// Beq branches to label when rs1 == rs2.
func (a *Asm) Beq(rs1, rs2 int, label string) { a.branch(BEQ, rs1, rs2, label) }

// Bne branches to label when rs1 != rs2.
func (a *Asm) Bne(rs1, rs2 int, label string) { a.branch(BNE, rs1, rs2, label) }

// Blt branches to label when rs1 < rs2 (signed).
func (a *Asm) Blt(rs1, rs2 int, label string) { a.branch(BLT, rs1, rs2, label) }

// Bge branches to label when rs1 >= rs2 (signed).
func (a *Asm) Bge(rs1, rs2 int, label string) { a.branch(BGE, rs1, rs2, label) }

// Bltu branches to label when rs1 < rs2 (unsigned).
func (a *Asm) Bltu(rs1, rs2 int, label string) { a.branch(BLTU, rs1, rs2, label) }

// Bgeu branches to label when rs1 >= rs2 (unsigned).
func (a *Asm) Bgeu(rs1, rs2 int, label string) { a.branch(BGEU, rs1, rs2, label) }

// --- loads and stores ---

func (a *Asm) load(op Op, rd int, off int32, rs1 int) {
	a.emit(Decoded{Op: op, Rd: a.reg(rd), Rs1: a.reg(rs1), Imm: off})
}

// Lw loads a word: rd = mem32[rs1+off].
func (a *Asm) Lw(rd int, off int32, rs1 int) { a.load(LW, rd, off, rs1) }

// Lh loads a sign-extended halfword.
func (a *Asm) Lh(rd int, off int32, rs1 int) { a.load(LH, rd, off, rs1) }

// Lhu loads a zero-extended halfword.
func (a *Asm) Lhu(rd int, off int32, rs1 int) { a.load(LHU, rd, off, rs1) }

// Lb loads a sign-extended byte.
func (a *Asm) Lb(rd int, off int32, rs1 int) { a.load(LB, rd, off, rs1) }

// Lbu loads a zero-extended byte.
func (a *Asm) Lbu(rd int, off int32, rs1 int) { a.load(LBU, rd, off, rs1) }

func (a *Asm) store(op Op, rs2 int, off int32, rs1 int) {
	a.emit(Decoded{Op: op, Rs1: a.reg(rs1), Rs2: a.reg(rs2), Imm: off})
}

// Sw stores a word: mem32[rs1+off] = rs2.
func (a *Asm) Sw(rs2 int, off int32, rs1 int) { a.store(SW, rs2, off, rs1) }

// Sh stores a halfword.
func (a *Asm) Sh(rs2 int, off int32, rs1 int) { a.store(SH, rs2, off, rs1) }

// Sb stores a byte.
func (a *Asm) Sb(rs2 int, off int32, rs1 int) { a.store(SB, rs2, off, rs1) }

// --- immediate ALU ---

func (a *Asm) aluImm(op Op, rd, rs1 int, imm int32) {
	a.emit(Decoded{Op: op, Rd: a.reg(rd), Rs1: a.reg(rs1), Imm: imm})
}

// Addi computes rd = rs1 + imm.
func (a *Asm) Addi(rd, rs1 int, imm int32) { a.aluImm(ADDI, rd, rs1, imm) }

// Slti computes rd = (rs1 < imm), signed.
func (a *Asm) Slti(rd, rs1 int, imm int32) { a.aluImm(SLTI, rd, rs1, imm) }

// Sltiu computes rd = (rs1 < imm), unsigned.
func (a *Asm) Sltiu(rd, rs1 int, imm int32) { a.aluImm(SLTIU, rd, rs1, imm) }

// Xori computes rd = rs1 ^ imm.
func (a *Asm) Xori(rd, rs1 int, imm int32) { a.aluImm(XORI, rd, rs1, imm) }

// Ori computes rd = rs1 | imm.
func (a *Asm) Ori(rd, rs1 int, imm int32) { a.aluImm(ORI, rd, rs1, imm) }

// Andi computes rd = rs1 & imm.
func (a *Asm) Andi(rd, rs1 int, imm int32) { a.aluImm(ANDI, rd, rs1, imm) }

// Slli computes rd = rs1 << sh.
func (a *Asm) Slli(rd, rs1 int, sh int32) { a.aluImm(SLLI, rd, rs1, sh) }

// Srli computes rd = rs1 >> sh (logical).
func (a *Asm) Srli(rd, rs1 int, sh int32) { a.aluImm(SRLI, rd, rs1, sh) }

// Srai computes rd = rs1 >> sh (arithmetic).
func (a *Asm) Srai(rd, rs1 int, sh int32) { a.aluImm(SRAI, rd, rs1, sh) }

// Mv copies rs to rd (addi rd, rs, 0).
func (a *Asm) Mv(rd, rs int) { a.Addi(rd, rs, 0) }

// Nop emits the canonical no-op (addi x0, x0, 0).
func (a *Asm) Nop() { a.Addi(X0, X0, 0) }

// Li loads a 32-bit constant, emitting addi, lui, or lui+addi.
func (a *Asm) Li(rd int, v int32) {
	if v >= -2048 && v <= 2047 {
		a.Addi(rd, X0, v)
		return
	}
	lo := v << 20 >> 20 // sign-extended low 12 bits
	hi := v - lo        // low 12 bits zero by construction
	a.Lui(rd, hi)
	if lo != 0 {
		a.Addi(rd, rd, lo)
	}
}

// --- register ALU ---

func (a *Asm) aluReg(op Op, rd, rs1, rs2 int) {
	a.emit(Decoded{Op: op, Rd: a.reg(rd), Rs1: a.reg(rs1), Rs2: a.reg(rs2)})
}

// Add computes rd = rs1 + rs2.
func (a *Asm) Add(rd, rs1, rs2 int) { a.aluReg(ADD, rd, rs1, rs2) }

// Sub computes rd = rs1 - rs2.
func (a *Asm) Sub(rd, rs1, rs2 int) { a.aluReg(SUB, rd, rs1, rs2) }

// Sll computes rd = rs1 << rs2.
func (a *Asm) Sll(rd, rs1, rs2 int) { a.aluReg(SLL, rd, rs1, rs2) }

// Slt computes rd = (rs1 < rs2), signed.
func (a *Asm) Slt(rd, rs1, rs2 int) { a.aluReg(SLT, rd, rs1, rs2) }

// Sltu computes rd = (rs1 < rs2), unsigned.
func (a *Asm) Sltu(rd, rs1, rs2 int) { a.aluReg(SLTU, rd, rs1, rs2) }

// Xor computes rd = rs1 ^ rs2.
func (a *Asm) Xor(rd, rs1, rs2 int) { a.aluReg(XOR, rd, rs1, rs2) }

// Srl computes rd = rs1 >> rs2 (logical).
func (a *Asm) Srl(rd, rs1, rs2 int) { a.aluReg(SRL, rd, rs1, rs2) }

// Sra computes rd = rs1 >> rs2 (arithmetic).
func (a *Asm) Sra(rd, rs1, rs2 int) { a.aluReg(SRA, rd, rs1, rs2) }

// Or computes rd = rs1 | rs2.
func (a *Asm) Or(rd, rs1, rs2 int) { a.aluReg(OR, rd, rs1, rs2) }

// And computes rd = rs1 & rs2.
func (a *Asm) And(rd, rs1, rs2 int) { a.aluReg(AND, rd, rs1, rs2) }

// Mul computes rd = low32(rs1 * rs2).
func (a *Asm) Mul(rd, rs1, rs2 int) { a.aluReg(MUL, rd, rs1, rs2) }

// Mulhu computes rd = high32(rs1 * rs2), unsigned.
func (a *Asm) Mulhu(rd, rs1, rs2 int) { a.aluReg(MULHU, rd, rs1, rs2) }

// Div computes rd = rs1 / rs2, signed.
func (a *Asm) Div(rd, rs1, rs2 int) { a.aluReg(DIV, rd, rs1, rs2) }

// Divu computes rd = rs1 / rs2, unsigned.
func (a *Asm) Divu(rd, rs1, rs2 int) { a.aluReg(DIVU, rd, rs1, rs2) }

// Rem computes rd = rs1 % rs2, signed.
func (a *Asm) Rem(rd, rs1, rs2 int) { a.aluReg(REM, rd, rs1, rs2) }

// Remu computes rd = rs1 % rs2, unsigned.
func (a *Asm) Remu(rd, rs1, rs2 int) { a.aluReg(REMU, rd, rs1, rs2) }

// Ebreak halts the program.
func (a *Asm) Ebreak() { a.emit(Decoded{Op: EBREAK, Imm: 1}) }
