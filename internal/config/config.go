// Package config holds the architectural parameters of the simulated
// processor. Default() reproduces Table 1 of Cristal et al., HPCA 2004.
package config

import (
	"errors"
	"fmt"
	"strings"
)

// CommitMode names the retirement mechanism (the commit policy) of the
// simulated processor. It is the string key of the commit-policy
// registry: the wire form, the fingerprint component, and the -commit
// CLI value are all this name. See policy.go for the registered
// policies and their parameter-block contracts.
type CommitMode string

const (
	// CommitROB is the conventional baseline: a reorder buffer retires
	// instructions strictly in program order.
	CommitROB CommitMode = "rob"
	// CommitCheckpoint is the paper's proposal: no ROB; a small
	// checkpoint table commits whole checkpoints out of order with
	// respect to instruction completion (in order among checkpoints).
	CommitCheckpoint CommitMode = "checkpoint"
	// CommitAdaptive is checkpointed commit with confidence-driven
	// checkpoint placement: instead of the paper's fixed
	// instruction-interval heuristics, checkpoints are taken at branches
	// a small saturating-counter estimator marks as low-confidence, so
	// likely rollback targets are cheap to roll back to.
	CommitAdaptive CommitMode = "adaptive"
	// CommitOracle is the unbounded-window upper-bound baseline for
	// Figure 1-style limit studies: in-order retirement with no commit
	// structure limit at all (window growth is bounded only by the
	// register file, queues and LSQ).
	CommitOracle CommitMode = "oracle"
)

// String implements fmt.Stringer.
func (m CommitMode) String() string { return string(m) }

// Branch-target-buffer geometry, used for program workloads (real-PC
// traces; synthetic kernels carry no branch targets and never build a
// BTB). Deliberately package constants rather than Config fields: the
// canonical configuration encoding (CanonicalJSON) feeds every cache
// fingerprint, so adding a struct field would re-key every cached
// result — these are fixed microarchitectural parameters, like the
// cache line size embedded in the hierarchy.
const (
	// BTBSets is the number of BTB sets (power of two).
	BTBSets = 128
	// BTBWays is the BTB associativity (512 entries total).
	BTBWays = 4
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Assoc is the set associativity.
	Assoc int
	// LineBytes is the cache line size.
	LineBytes int
	// LatencyCycles is the access (hit) latency.
	LatencyCycles int
}

// Sets returns the number of sets implied by the geometry.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.Assoc * c.LineBytes) }

// Validate reports geometry errors.
func (c CacheConfig) Validate() error {
	switch {
	case c.SizeBytes <= 0, c.Assoc <= 0, c.LineBytes <= 0:
		return fmt.Errorf("config: cache geometry must be positive: %+v", c)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("config: line size %d not a power of two", c.LineBytes)
	case c.SizeBytes%(c.Assoc*c.LineBytes) != 0:
		return fmt.Errorf("config: size %d not divisible by assoc*line %d",
			c.SizeBytes, c.Assoc*c.LineBytes)
	case c.Sets()&(c.Sets()-1) != 0:
		return fmt.Errorf("config: set count %d not a power of two", c.Sets())
	case c.LatencyCycles < 1:
		return fmt.Errorf("config: cache latency %d < 1", c.LatencyCycles)
	}
	return nil
}

// FUConfig describes one functional-unit class: how many units exist and
// their latency/repeat (initiation interval) behaviour, as in Table 1.
type FUConfig struct {
	// Count is the number of identical units.
	Count int
	// Latency is the cycles from issue to result availability.
	Latency int
	// Repeat is the initiation interval; 1 means fully pipelined,
	// Repeat == Latency means unpipelined.
	Repeat int
}

// Validate reports parameter errors.
func (f FUConfig) Validate() error {
	if f.Count <= 0 || f.Latency <= 0 || f.Repeat <= 0 {
		return fmt.Errorf("config: functional unit fields must be positive: %+v", f)
	}
	if f.Repeat > f.Latency {
		return fmt.Errorf("config: repeat %d exceeds latency %d", f.Repeat, f.Latency)
	}
	return nil
}

// Config is the full architectural configuration. The zero value is not
// usable; start from Default() and override fields.
type Config struct {
	// FetchWidth is the number of instructions fetched and decoded per
	// cycle (and the pseudo-ROB extraction bandwidth).
	FetchWidth int
	// IssueWidth is the number of instructions issued to functional
	// units per cycle.
	IssueWidth int
	// CommitWidth is the number of instructions retired per cycle in
	// ROB mode. Checkpoint commit retires whole checkpoints and the
	// oracle has no retire bound, so every other policy requires this
	// to be 0 (the paper's point, enforced by Validate).
	CommitWidth int

	// BranchPredictorBits is log2 of the gshare table size (14 -> 16K
	// entries as in Table 1).
	BranchPredictorBits int
	// BranchMispredictPenalty is the front-end redirect penalty in
	// cycles after a mispredicted branch resolves.
	BranchMispredictPenalty int
	// PerfectBranchPrediction disables the gshare predictor and makes
	// every prediction correct (ablation aid).
	PerfectBranchPrediction bool

	// IL1, DL1 and L2 configure the cache hierarchy.
	IL1, DL1, L2 CacheConfig
	// MemoryLatency is the L2-miss to main-memory round trip in cycles.
	MemoryLatency int
	// MemoryPorts is the number of concurrent main-memory accesses.
	MemoryPorts int
	// PerfectL2 makes every L2 access hit (the "L2 Perfect" series of
	// Figure 1).
	PerfectL2 bool
	// PrefetchDegree enables a next-line prefetcher: every demand miss
	// to main memory also starts fills for the following N lines. The
	// paper's introduction argues prefetching alone cannot close the
	// latency gap; the prefetch ablation quantifies that claim. 0
	// disables (the paper's configuration).
	PrefetchDegree int

	// PhysRegs is the physical register file size (pseudo-perfect 4096
	// by default).
	PhysRegs int
	// LSQEntries is the load/store queue capacity (pseudo-perfect 4096
	// by default).
	LSQEntries int
	// IntQueueEntries and FPQueueEntries size the two general-purpose
	// instruction queues.
	IntQueueEntries int
	FPQueueEntries  int
	// ROBEntries is the reorder-buffer capacity (ROB mode only).
	ROBEntries int

	// Commit selects the commit policy. Each policy reads its own
	// parameter block below; Validate rejects non-zero parameters the
	// selected policy ignores, so configurations describing the same
	// simulation always fingerprint identically.
	Commit CommitMode

	// Checkpoints is the checkpoint-table capacity (checkpoint family).
	Checkpoints int
	// CheckpointBranchInterval is the instruction count after which the
	// next branch forces a checkpoint (64 in the paper). The adaptive
	// policy replaces this rule with the confidence estimator and
	// requires it to be 0.
	CheckpointBranchInterval int
	// CheckpointMaxInterval unconditionally forces a checkpoint after
	// this many instructions (512 in the paper).
	CheckpointMaxInterval int
	// CheckpointMaxStores forces a checkpoint after this many stores
	// to bound LSQ occupancy (64 in the paper).
	CheckpointMaxStores int

	// AdaptiveConfidenceBits is log2 of the branch-confidence estimator
	// table (adaptive policy only).
	AdaptiveConfidenceBits int
	// AdaptiveConfidenceMax is the saturating-counter ceiling of the
	// estimator (15 = 4-bit counters).
	AdaptiveConfidenceMax int
	// AdaptiveConfidenceThreshold classifies a branch as low-confidence
	// (and worth a checkpoint) while its counter is below this value.
	AdaptiveConfidenceThreshold int

	// PseudoROBEntries sizes the pseudo-ROB FIFO (checkpoint mode).
	// The paper always sizes it equal to the instruction queues.
	PseudoROBEntries int
	// SLIQEntries sizes the Slow Lane Instruction Queue; 0 disables the
	// SLIQ (long-latency dependents then stay in the issue queues).
	SLIQEntries int
	// SLIQWakeDelay is the start-up penalty, in cycles, between the
	// triggering register write and the first re-insertion (4 in the
	// paper; Figure 10 sweeps 1..12).
	SLIQWakeDelay int
	// SLIQWakeWidth is the number of instructions re-inserted per cycle
	// once a wake is in progress (4 in the paper).
	SLIQWakeWidth int

	// IntAlu, IntMul, IntDiv and FPAlu configure the functional units.
	// IntMul and IntDiv share the same physical units (Table 1's
	// "Integer Mult/DIV Units"); Count must agree between the two.
	IntAlu, IntMul, IntDiv, FPAlu FUConfig

	// VirtualRegisters enables the ephemeral-register extension used in
	// Figure 14: renaming allocates virtual tags and physical registers
	// are bound late (at writeback) and released early.
	VirtualRegisters bool
	// VirtualTags is the virtual tag space size when VirtualRegisters
	// is enabled.
	VirtualTags int
}

// Default returns the baseline configuration of Table 1.
func Default() Config {
	return Config{
		FetchWidth:  4,
		IssueWidth:  4,
		CommitWidth: 4,

		BranchPredictorBits:     14, // 16K-entry gshare
		BranchMispredictPenalty: 10,

		IL1:           CacheConfig{SizeBytes: 32 << 10, Assoc: 4, LineBytes: 32, LatencyCycles: 2},
		DL1:           CacheConfig{SizeBytes: 32 << 10, Assoc: 4, LineBytes: 32, LatencyCycles: 2},
		L2:            CacheConfig{SizeBytes: 512 << 10, Assoc: 4, LineBytes: 64, LatencyCycles: 10},
		MemoryLatency: 1000,
		MemoryPorts:   2,

		PhysRegs:        4096,
		LSQEntries:      4096,
		IntQueueEntries: 4096,
		FPQueueEntries:  4096,
		ROBEntries:      4096,

		// Default is the ROB baseline; the checkpoint-family parameter
		// blocks stay zero (Validate rejects parameters the selected
		// policy ignores — see policy.go). CheckpointDefault and
		// AdaptiveDefault fill in the paper's checkpoint parameters.
		Commit: CommitROB,

		IntAlu: FUConfig{Count: 4, Latency: 1, Repeat: 1},
		IntMul: FUConfig{Count: 2, Latency: 3, Repeat: 1},
		IntDiv: FUConfig{Count: 2, Latency: 20, Repeat: 20},
		FPAlu:  FUConfig{Count: 4, Latency: 2, Repeat: 1},

		VirtualRegisters: false,
		VirtualTags:      0,
	}
}

// CheckpointDefault returns the paper's Commit Out-of-Order processor
// configuration: checkpoint commit, 8 checkpoints with the paper's
// taking heuristics (branch>=64, cap 512, 64 stores), pseudo-ROB and
// issue queues of iqEntries, and a SLIQ of sliqEntries (0 disables the
// SLIQ and its wake parameters).
func CheckpointDefault(iqEntries, sliqEntries int) Config {
	c := Default()
	c.Commit = CommitCheckpoint
	c.ROBEntries = 0
	c.CommitWidth = 0 // checkpoint commit retires whole windows, not N/cycle
	c.Checkpoints = 8
	c.CheckpointBranchInterval = 64
	c.CheckpointMaxInterval = 512
	c.CheckpointMaxStores = 64
	c.IntQueueEntries = iqEntries
	c.FPQueueEntries = iqEntries
	c.PseudoROBEntries = iqEntries
	c.SLIQEntries = sliqEntries
	if sliqEntries > 0 {
		c.SLIQWakeDelay = 4
		c.SLIQWakeWidth = 4
	}
	return c
}

// AdaptiveDefault returns the adaptive-confidence checkpointing
// configuration: the checkpointed processor with the fixed
// branch-interval rule replaced by a 4K-entry, 4-bit saturating-counter
// confidence estimator (checkpoints are placed at low-confidence
// branches; the max-interval and max-stores safety rules remain).
func AdaptiveDefault(iqEntries, sliqEntries int) Config {
	c := CheckpointDefault(iqEntries, sliqEntries)
	c.Commit = CommitAdaptive
	c.CheckpointBranchInterval = 0 // replaced by the confidence rule
	c.AdaptiveConfidenceBits = 12
	c.AdaptiveConfidenceMax = 15
	c.AdaptiveConfidenceThreshold = 8
	return c
}

// OracleDefault returns the unbounded-window limit configuration: in
// order retirement with no commit-structure bound at all, over the
// pseudo-perfect substrate of Table 1 (4096-entry queues, LSQ and
// register file). It is the upper-bound reference of Figure 1-style
// limit studies.
func OracleDefault() Config {
	c := Default()
	c.Commit = CommitOracle
	c.ROBEntries = 0
	c.CommitWidth = 0 // oracle retirement is unbounded
	return c
}

// BaselineSized returns the conventional baseline with ROB and both
// instruction queues scaled to n entries (the reference lines of
// Figures 9 and 11).
func BaselineSized(n int) Config {
	c := Default()
	c.ROBEntries = n
	c.IntQueueEntries = n
	c.FPQueueEntries = n
	return c
}

// Validate checks the configuration for inconsistencies.
func (c Config) Validate() error {
	var errs []string
	add := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	if c.FetchWidth < 1 {
		add("fetch width %d < 1", c.FetchWidth)
	}
	if c.IssueWidth < 1 {
		add("issue width %d < 1", c.IssueWidth)
	}
	if c.BranchPredictorBits < 1 || c.BranchPredictorBits > 30 {
		add("branch predictor bits %d out of range [1,30]", c.BranchPredictorBits)
	}
	if c.BranchMispredictPenalty < 0 {
		add("negative mispredict penalty %d", c.BranchMispredictPenalty)
	}
	for name, cc := range map[string]CacheConfig{"IL1": c.IL1, "DL1": c.DL1, "L2": c.L2} {
		if err := cc.Validate(); err != nil {
			add("%s: %v", name, err)
		}
	}
	if c.MemoryLatency < 1 {
		add("memory latency %d < 1", c.MemoryLatency)
	}
	if c.MemoryPorts < 1 {
		add("memory ports %d < 1", c.MemoryPorts)
	}
	if c.PrefetchDegree < 0 || c.PrefetchDegree > 16 {
		add("prefetch degree %d outside [0,16]", c.PrefetchDegree)
	}
	if c.PhysRegs < 64 {
		add("physical registers %d < 64 (needs at least one per logical register)", c.PhysRegs)
	}
	if c.LSQEntries < 1 {
		add("LSQ entries %d < 1", c.LSQEntries)
	}
	if c.IntQueueEntries < 1 || c.FPQueueEntries < 1 {
		add("instruction queues must have at least one entry (int %d, fp %d)",
			c.IntQueueEntries, c.FPQueueEntries)
	}
	// Per-policy validation: the registered commit policy checks its own
	// parameter block and rejects the blocks it ignores (see policy.go).
	if spec, ok := commitPolicySpecs[c.Commit]; ok {
		spec.validate(c, add)
	} else {
		add("unknown commit policy %q (valid: %s)", string(c.Commit), commitModeList())
	}
	for name, fc := range map[string]FUConfig{
		"IntAlu": c.IntAlu, "IntMul": c.IntMul, "IntDiv": c.IntDiv, "FPAlu": c.FPAlu,
	} {
		if err := fc.Validate(); err != nil {
			add("%s: %v", name, err)
		}
	}
	if c.IntMul.Count != c.IntDiv.Count {
		add("IntMul and IntDiv share units; counts differ (%d vs %d)",
			c.IntMul.Count, c.IntDiv.Count)
	}

	if len(errs) == 0 {
		return nil
	}
	return errors.New("config: " + strings.Join(errs, "; "))
}

// Summary renders a short one-line description of the configuration.
func (c Config) Summary() string {
	mem := fmt.Sprintf("mem=%d", c.MemoryLatency)
	if c.PerfectL2 {
		mem = "mem=perfectL2"
	}
	switch c.Commit {
	case CommitCheckpoint:
		s := fmt.Sprintf("cooo iq=%d sliq=%d ckpts=%d %s",
			c.IntQueueEntries, c.SLIQEntries, c.Checkpoints, mem)
		if c.VirtualRegisters {
			s += fmt.Sprintf(" vtags=%d phys=%d", c.VirtualTags, c.PhysRegs)
		}
		return s
	case CommitAdaptive:
		s := fmt.Sprintf("adaptive iq=%d sliq=%d ckpts=%d conf<%d %s",
			c.IntQueueEntries, c.SLIQEntries, c.Checkpoints,
			c.AdaptiveConfidenceThreshold, mem)
		if c.VirtualRegisters {
			s += fmt.Sprintf(" vtags=%d phys=%d", c.VirtualTags, c.PhysRegs)
		}
		return s
	case CommitOracle:
		return fmt.Sprintf("oracle window=unbounded %s", mem)
	default:
		return fmt.Sprintf("baseline rob=%d iq=%d %s", c.ROBEntries, c.IntQueueEntries, mem)
	}
}

// String renders the configuration in the style of the paper's Table 1.
func (c Config) String() string {
	var b strings.Builder
	row := func(k, v string) { fmt.Fprintf(&b, "%-28s %s\n", k, v) }
	row("Issue policy", "Out-of-order")
	row("Fetch/Commit width", fmt.Sprintf("%d insns/cycle", c.FetchWidth))
	row("Branch predictor", fmt.Sprintf("%dK history gshare", 1<<(c.BranchPredictorBits-10)))
	row("Branch predictor penalty", fmt.Sprintf("%d cycles", c.BranchMispredictPenalty))
	cache := func(cc CacheConfig) string {
		return fmt.Sprintf("%d KB %d-way, %d byte line, %d cycles",
			cc.SizeBytes>>10, cc.Assoc, cc.LineBytes, cc.LatencyCycles)
	}
	row("I-L1", cache(c.IL1))
	row("D-L1", cache(c.DL1))
	if c.PerfectL2 {
		row("L2", "perfect")
	} else {
		row("L2", cache(c.L2))
	}
	row("Memory latency", fmt.Sprintf("%d cycles", c.MemoryLatency))
	row("Memory ports", fmt.Sprintf("%d", c.MemoryPorts))
	row("Physical registers", fmt.Sprintf("%d entries", c.PhysRegs))
	row("Load/Store queue", fmt.Sprintf("%d entries", c.LSQEntries))
	row("Integer queue", fmt.Sprintf("%d entries", c.IntQueueEntries))
	row("FP queue", fmt.Sprintf("%d entries", c.FPQueueEntries))
	switch c.Commit {
	case CommitROB:
		row("Reorder buffer", fmt.Sprintf("%d entries", c.ROBEntries))
	case CommitCheckpoint, CommitAdaptive:
		if c.Commit == CommitAdaptive {
			row("Commit", "out-of-order (adaptive confidence)")
			row("Confidence estimator", fmt.Sprintf("%d entries, counters 0..%d, low < %d",
				1<<c.AdaptiveConfidenceBits, c.AdaptiveConfidenceMax, c.AdaptiveConfidenceThreshold))
		} else {
			row("Commit", "out-of-order (checkpointed)")
		}
		row("Checkpoint table", fmt.Sprintf("%d entries", c.Checkpoints))
		row("Pseudo-ROB", fmt.Sprintf("%d entries", c.PseudoROBEntries))
		row("SLIQ", fmt.Sprintf("%d entries (wake delay %d, width %d)",
			c.SLIQEntries, c.SLIQWakeDelay, c.SLIQWakeWidth))
	case CommitOracle:
		row("Commit", "in-order, unbounded window (oracle limit)")
	}
	fu := func(f FUConfig) string {
		return fmt.Sprintf("%d (lat/rep %d/%d)", f.Count, f.Latency, f.Repeat)
	}
	row("Integer general units", fu(c.IntAlu))
	row("Integer mult units", fu(c.IntMul))
	row("Integer div units", fu(c.IntDiv))
	row("FP functional units", fu(c.FPAlu))
	if c.VirtualRegisters {
		row("Virtual tags", fmt.Sprintf("%d", c.VirtualTags))
	}
	return b.String()
}
