package mem

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/config"
)

// replayAccesses drives an identical access mix through a hierarchy.
func replayAccesses(h *Hierarchy, seed int64, n int) {
	r := rand.New(rand.NewSource(seed))
	now := int64(0)
	for i := 0; i < n; i++ {
		now += int64(r.Intn(5))
		addr := uint64(r.Intn(1 << 22))
		switch r.Intn(4) {
		case 0:
			h.FetchLatency(now, addr)
		case 1:
			h.StoreCommit(addr)
		default:
			h.Load(now, addr)
		}
	}
}

// TestHierarchyCloneIndependent: a clone replays identically to its
// original and mutations of one never leak into the other.
func TestHierarchyCloneIndependent(t *testing.T) {
	h := NewHierarchy(config.Default())
	replayAccesses(h, 1, 4000)

	clone := h.Clone()
	if h.Stats() != clone.Stats() {
		t.Fatalf("clone stats diverge: %+v vs %+v", h.Stats(), clone.Stats())
	}

	// Identical continuations must stay identical...
	replayAccesses(h, 2, 4000)
	replayAccesses(clone, 2, 4000)
	if h.Stats() != clone.Stats() {
		t.Fatalf("identical continuations diverged: %+v vs %+v", h.Stats(), clone.Stats())
	}
	// ...and divergent traffic on the clone must not touch the original.
	before := h.Stats()
	replayAccesses(clone, 3, 4000)
	if h.Stats() != before {
		t.Fatal("clone traffic mutated the original")
	}
}

// TestForkAdoptsWarmState: a fork of a warmed donor answers exactly
// like a hierarchy that replayed the warm-up itself, for every
// warm-compatible configuration (different latencies and prefetch).
func TestForkAdoptsWarmState(t *testing.T) {
	warm := func(h *Hierarchy) {
		for a := uint64(0); a < 1<<16; a += 8 {
			h.WarmData(a)
		}
		for pc := uint64(0); pc < 1<<12; pc += 32 {
			h.PrimeFetch(pc)
		}
	}

	donorCfg := config.Default()
	donor := NewHierarchy(donorCfg)
	warm(donor)

	member := config.Default()
	member.MemoryLatency = 400
	member.DL1.LatencyCycles = 3
	member.PrefetchDegree = 2
	forked, err := donor.Fork(member)
	if err != nil {
		t.Fatal(err)
	}
	if got := forked.Stats(); got != (HierarchyStats{}) {
		t.Fatalf("fork must start with zero stats, got %+v", got)
	}

	cold := NewHierarchy(member)
	warm(cold)
	replayAccesses(forked, 7, 6000)
	replayAccesses(cold, 7, 6000)
	if forked.Stats() != cold.Stats() {
		t.Fatalf("forked warm state diverges from cold warm-up:\n fork: %+v\n cold: %+v",
			forked.Stats(), cold.Stats())
	}
}

// TestForkRejectsGeometryMismatch: adopting cache contents across
// geometries would be silently wrong, so Fork must refuse.
func TestForkRejectsGeometryMismatch(t *testing.T) {
	donor := NewHierarchy(config.Default())
	bad := config.Default()
	bad.DL1.SizeBytes *= 2
	if _, err := donor.Fork(bad); err == nil {
		t.Fatal("fork across DL1 geometries must fail")
	}
	badL2 := config.Default()
	badL2.PerfectL2 = true
	if _, err := donor.Fork(badL2); err == nil {
		t.Fatal("fork across PerfectL2 settings must fail")
	}
}

// TestWarmKeyIgnoresTiming: latency, memory timing and prefetch degree
// never affect warm-up contents, so they must not split groups.
func TestWarmKeyIgnoresTiming(t *testing.T) {
	a := config.Default()
	b := config.Default()
	b.MemoryLatency = 100
	b.PrefetchDegree = 4
	b.IL1.LatencyCycles = 1
	b.L2.LatencyCycles = 20
	if WarmKeyFor(a) != WarmKeyFor(b) {
		t.Fatal("timing-only differences must share a WarmKey")
	}
	c := config.Default()
	c.L2.Assoc = 8
	if WarmKeyFor(a) == WarmKeyFor(c) {
		t.Fatal("geometry differences must split WarmKeys")
	}
}

// TestWarmKeyDonorServesFork: the Donor built from a WarmKey alone is
// warm-compatible with every configuration sharing that key.
func TestWarmKeyDonorServesFork(t *testing.T) {
	cfg := config.Default()
	cfg.MemoryLatency = 777
	donor, err := WarmKeyFor(cfg).Donor()
	if err != nil {
		t.Fatal(err)
	}
	donor.WarmData(0x1234)
	forked, err := donor.Fork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := forked.Load(0, 0x1234)
	if r.MissedL2 {
		t.Fatal("fork lost the donor's warmed line")
	}
}

// TestSnapshotRoundTripForksIdentically: serialise → deserialise →
// Fork must match an in-process Fork bit-for-bit. This is the
// warm-donor shipping contract: a node that adopts a peer's snapshot
// must simulate exactly like one that forked the peer's donor
// directly.
func TestSnapshotRoundTripForksIdentically(t *testing.T) {
	cfg := config.Default()
	donor, err := WarmKeyFor(cfg).Donor()
	if err != nil {
		t.Fatal(err)
	}
	// Warm through the quiet paths (what core.WarmDonor uses) plus
	// enough traffic to exercise eviction and LRU ordering in all tiers.
	for a := uint64(0); a < 1<<18; a += 24 {
		donor.WarmData(a)
	}
	for pc := uint64(0); pc < 1<<13; pc += 16 {
		donor.PrimeFetch(pc)
	}

	var buf bytes.Buffer
	if err := donor.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	member := cfg
	member.MemoryLatency = 600
	member.PrefetchDegree = 1
	fromDonor, err := donor.Fork(member)
	if err != nil {
		t.Fatal(err)
	}
	fromSnapshot, err := restored.Fork(member)
	if err != nil {
		t.Fatal(err)
	}
	// Bit-for-bit: the forked hierarchies must be indistinguishable at
	// the struct level (flat arrays, live counts, timing, zero stats)...
	if !reflect.DeepEqual(fromDonor, fromSnapshot) {
		t.Fatal("fork of restored snapshot differs structurally from in-process fork")
	}
	// ...and behaviourally under identical continuation traffic.
	replayAccesses(fromDonor, 13, 8000)
	replayAccesses(fromSnapshot, 13, 8000)
	if fromDonor.Stats() != fromSnapshot.Stats() {
		t.Fatalf("forks diverged after identical traffic:\n donor:    %+v\n snapshot: %+v",
			fromDonor.Stats(), fromSnapshot.Stats())
	}
}

// TestSnapshotRejectsCorruption: torn and hostile snapshots must fail
// loudly, never produce a donor with inconsistent invariants.
func TestSnapshotRejectsCorruption(t *testing.T) {
	donor, err := WarmKeyFor(config.Default()).Donor()
	if err != nil {
		t.Fatal(err)
	}
	donor.WarmData(0x1000)
	var buf bytes.Buffer
	if err := donor.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncations at every structural boundary.
	for _, n := range []int{0, 4, 8, 11, len(good) / 2, len(good) - 1} {
		if _, err := ReadSnapshot(bytes.NewReader(good[:n])); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
	// Bad magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Error("corrupt magic accepted")
	}
}

// TestMSHRModel compares the open-addressed in-flight table against a
// map reference under random put/get/del mixes (including the
// backward-shift deletion paths).
func TestMSHRModel(t *testing.T) {
	f := func(ops []uint16) bool {
		var m mshr
		ref := map[uint64]int64{}
		for i, op := range ops {
			line := uint64(op % 97) // force collisions
			switch op % 3 {
			case 0:
				m.put(line, int64(i))
				ref[line] = int64(i)
			case 1:
				m.del(line)
				delete(ref, line)
			default:
				v, ok := m.get(line)
				rv, rok := ref[line]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
		}
		if m.n != len(ref) {
			return false
		}
		for line, rv := range ref {
			if v, ok := m.get(line); !ok || v != rv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Error(err)
	}
}

// TestHierarchyResetReusesTables is the PR-5 satellite regression guard:
// Reset must reuse every backing array — the old implementation
// reallocated the in-flight map wholesale on every reset.
func TestHierarchyResetReusesTables(t *testing.T) {
	h := NewHierarchy(config.Default())
	// Populate all tiers and the in-flight tracker.
	replayAccesses(h, 11, 2000)
	r := rand.New(rand.NewSource(11))
	addrs := make([]uint64, 100)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1 << 22))
	}
	allocs := testing.AllocsPerRun(10, func() {
		for i, a := range addrs {
			h.Load(int64(i), a)
		}
		h.Reset()
	})
	if allocs > 0 {
		t.Errorf("Reset (plus steady-state traffic) allocates %.1f times per cycle, want 0", allocs)
	}
	// And Reset still means cold.
	if !h.Load(0, 0x42).MissedL2 {
		t.Error("Reset must cold the caches")
	}
}
