package service

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TestSweepRunnerMatchesLocalSweep: the remote runner is a drop-in for
// sim.Sweep — same results, same callback contract — which is what
// lets every figure run against a daemon unchanged.
func TestSweepRunnerMatchesLocalSweep(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewScheduler(SchedulerOptions{Workers: 2})))
	defer srv.Close()
	runner := (&Client{BaseURL: srv.URL}).SweepRunner()

	const insts = 1500
	n := trace.LenFor(insts)
	traces := []*trace.Trace{trace.Stream(n), trace.FPMix(n, 42)}
	var specs []sim.RunSpec
	for _, cfg := range []config.Config{
		config.BaselineSized(128),
		config.CheckpointDefault(64, 512),
		config.AdaptiveDefault(64, 512),
		config.OracleDefault(),
	} {
		for _, tr := range traces {
			specs = append(specs, sim.RunSpec{Name: tr.Name(), Config: cfg, Trace: tr, Insts: insts})
		}
	}
	ctx := context.Background()

	local, err := sim.Sweep(ctx, specs, sim.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	var lines, records int
	remote, err := runner(ctx, specs, sim.Options{
		Progress: func(done, total int, line string) {
			lines++
			if total != len(specs) || done < 1 || done > total {
				t.Errorf("progress (%d,%d) out of range", done, total)
			}
		},
		OnResult: func(spec sim.RunSpec, res stats.Results) { records++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if lines != len(specs) || records != len(specs) {
		t.Errorf("callbacks fired %d/%d times, want %d each", lines, records, len(specs))
	}
	if len(remote) != len(local) {
		t.Fatalf("remote returned %d results, want %d", len(remote), len(local))
	}
	for i := range local {
		if !remote[i].Equal(local[i]) {
			t.Errorf("spec %d (%s): remote results differ from local sweep", i, specs[i].Name)
		}
	}

	// A recipe-less trace cannot ship: the runner must refuse it.
	w := trace.DefaultWeights()
	w.Stream++
	anon := sim.RunSpec{Name: "anon", Config: config.BaselineSized(128), Trace: trace.Mix(n, 1, w), Insts: insts}
	if _, err := runner(ctx, []sim.RunSpec{anon}, sim.Options{}); err == nil ||
		!strings.Contains(err.Error(), "recipe") {
		t.Errorf("recipe-less spec error: %v", err)
	}
}
