// Package experiments regenerates every table and figure of the paper's
// evaluation (section 4). Each FigureN function sweeps the paper's
// parameters over the synthetic SPEC2000fp-stand-in suite and reports
// suite averages, mirroring the paper's "averaging over all the
// applications in the set". See DESIGN.md §5 for the experiment index
// and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Execution goes through the internal/sim worker-pool engine: every
// figure flattens its parameter grid into one []sim.RunSpec, submits it
// to sim.Sweep once, and post-processes the (spec-ordered) results, so
// the whole evaluation parallelises across Options.Workers without any
// figure-specific concurrency code.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options bounds every experiment run.
type Options struct {
	// Insts is the committed-instruction target per configuration
	// point. It must be large enough that each workload's touched
	// footprint exceeds the L2 capacity (see DESIGN.md §4); DefaultInsts
	// satisfies that with margin.
	Insts uint64
	// Seed parameterises the mixed workload.
	Seed uint64
	// Workers bounds the sweep worker pool; <= 0 uses GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives one line per completed run (in
	// completion order when Workers > 1) plus the sweep's completion
	// count — done runs out of total — so callers can render real
	// progress/ETA.
	Progress func(done, total int, line string)
	// Record, when non-nil, receives every completed run for machine
	// consumption (cmd/experiments -json). Calls are serialised.
	Record func(RunRecord)
	// Runner, when non-nil, replaces the in-process sweep engine for
	// every figure: cmd/experiments -server installs the simulation
	// service client's remote runner here, so the same figure code runs
	// against a warm remote cache. Nil means sim.Sweep.
	Runner func(ctx context.Context, specs []sim.RunSpec, opt sim.Options) ([]stats.Results, error)
	// DisableSkip forces cycle-by-cycle simulation on every point
	// (cmd/experiments -no-skip); results are bit-identical either way.
	DisableSkip bool
	// Sample, when enabled, runs every point under the SMARTS sampling
	// protocol (sim.RunSpec.Sample): fast-forward with functional
	// warming between detailed measurement windows. Sampled figures set
	// it themselves; leaving it zero keeps full-detail simulation.
	Sample trace.SampleSpec

	// cache, when set by WithTraceCache, shares generated suite traces
	// across figures.
	cache *suiteCache
}

// RunRecord is the machine-readable form of one completed run.
type RunRecord struct {
	Benchmark string        `json:"benchmark"`
	Config    string        `json:"config"`
	Results   stats.Results `json:"results"`
}

// DefaultInsts is the per-point instruction budget used by the paper
// reproduction runs (the paper used 300M-instruction SimPoint regions;
// our stationary kernels converge far faster).
const DefaultInsts = 300_000

// Defaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Insts == 0 {
		o.Insts = DefaultInsts
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// traceMargin is the extra trace length beyond the committed-instruction
// target so runs never exhaust the trace.
func traceMargin(insts uint64) int {
	return trace.LenFor(insts)
}

// Benchmark is one suite member: a named workload, available both as a
// materialised trace (Gen) and as its declarative identity (Recipe —
// what -server ships instead of megabytes of instruction stream).
type Benchmark struct {
	Name   string
	Gen    func(n int) *trace.Trace
	Recipe func(n int) trace.Recipe
}

// SuiteBenchmarks returns the evaluation suite, the synthetic stand-in
// for SPEC2000fp (DESIGN.md §4): two latency-wall streams, a moderately
// memory-bound stencil, an ILP-limited reduction, a cache-resident
// blocked kernel, and the mixed composite.
func SuiteBenchmarks(seed uint64) []Benchmark {
	return []Benchmark{
		{"stream", trace.Stream,
			func(n int) trace.Recipe { return trace.Recipe{Kernel: trace.KernelStream, N: n} }},
		{"strided", func(n int) *trace.Trace { return trace.StridedStream(n, 8) },
			func(n int) trace.Recipe { return trace.Recipe{Kernel: trace.KernelStrided, N: n, Stride: 8} }},
		{"stencil", trace.Stencil,
			func(n int) trace.Recipe { return trace.Recipe{Kernel: trace.KernelStencil, N: n} }},
		{"reduction", trace.Reduction,
			func(n int) trace.Recipe { return trace.Recipe{Kernel: trace.KernelReduction, N: n} }},
		{"blocked", trace.Blocked,
			func(n int) trace.Recipe { return trace.Recipe{Kernel: trace.KernelBlocked, N: n} }},
		{"fpmix", func(n int) *trace.Trace { return trace.FPMix(n, seed) },
			func(n int) trace.Recipe { return trace.Recipe{Kernel: trace.KernelFPMix, N: n, Seed: seed} }},
	}
}

// suiteCache memoises generated suite traces keyed by (insts, seed).
// Traces are immutable once built (guarded by a core test), so the
// cached set is shared read-only across figures and across every
// concurrent CPU inside a sweep.
type suiteCache struct {
	mu     sync.Mutex
	traces map[suiteKey][]suiteTrace
}

type suiteKey struct {
	insts, seed uint64
	// program distinguishes the real-program suite from the synthetic
	// one (both are cached under the same Options).
	program bool
}

// WithTraceCache returns Options that generate each suite trace set
// once and reuse it across figures (cmd/experiments -figure all shares
// one generation pass this way).
func (o Options) WithTraceCache() Options {
	o.cache = &suiteCache{traces: map[suiteKey][]suiteTrace{}}
	return o
}

// suite returns the benchmark traces. With an in-process runner they
// are materialised (once per experiment, or once per process under
// WithTraceCache); with a remote Runner only the recipes are needed —
// the server regenerates (and memoises) the workloads itself — so a
// warm remote rerun skips local generation entirely.
func (o Options) suite() ([]suiteTrace, error) {
	return o.someSuite(false, buildSuite)
}

// programSuite returns the real-program benchmark traces (see
// programs.go), with the same caching and remote recipe-only behaviour
// as the synthetic suite.
func (o Options) programSuite() ([]suiteTrace, error) {
	return o.someSuite(true, buildProgramSuite)
}

func (o Options) someSuite(program bool, build func(insts, seed uint64, recipeOnly bool) ([]suiteTrace, error)) ([]suiteTrace, error) {
	if o.Runner != nil {
		return build(o.Insts, o.Seed, true)
	}
	if o.cache != nil {
		o.cache.mu.Lock()
		defer o.cache.mu.Unlock()
		key := suiteKey{o.Insts, o.Seed, program}
		if ts, ok := o.cache.traces[key]; ok {
			return ts, nil
		}
		ts, err := build(o.Insts, o.Seed, false)
		if err != nil {
			return nil, err
		}
		o.cache.traces[key] = ts
		return ts, nil
	}
	return build(o.Insts, o.Seed, false)
}

func buildSuite(insts, seed uint64, recipeOnly bool) ([]suiteTrace, error) {
	bs := SuiteBenchmarks(seed)
	out := make([]suiteTrace, len(bs))
	n := traceMargin(insts)
	for i, b := range bs {
		if recipeOnly {
			tr, err := trace.RecipeOnly(b.Recipe(n))
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
			}
			out[i] = suiteTrace{name: b.Name, tr: tr}
		} else {
			out[i] = suiteTrace{name: b.Name, tr: b.Gen(n)}
		}
	}
	return out, nil
}

type suiteTrace struct {
	name string
	tr   *trace.Trace
}

// point is one labelled configuration evaluated over the whole suite.
type point struct {
	cfg        config.Config
	collectOcc bool
}

// runPoints expands every point over the suite into one flat RunSpec
// list, submits it to the sweep engine in a single call, and regroups
// the spec-ordered results per point (each group is in suite order).
func (o Options) runPoints(ctx context.Context, points []point, suite []suiteTrace) ([][]stats.Results, error) {
	specs := make([]sim.RunSpec, 0, len(points)*len(suite))
	for _, p := range points {
		for _, st := range suite {
			specs = append(specs, sim.RunSpec{
				Name:             st.name,
				Config:           p.cfg,
				Trace:            st.tr,
				Insts:            o.Insts,
				CollectOccupancy: p.collectOcc,
				DisableSkip:      o.DisableSkip,
				Sample:           o.Sample,
			})
		}
	}
	sopt := sim.Options{Workers: o.Workers, Progress: o.Progress}
	if o.Record != nil {
		sopt.OnResult = func(spec sim.RunSpec, res stats.Results) {
			o.Record(RunRecord{
				Benchmark: spec.Name,
				Config:    spec.Config.Summary(),
				Results:   res,
			})
		}
	}
	run := o.Runner
	if run == nil {
		run = sim.Sweep
	}
	flat, err := run(ctx, specs, sopt)
	if err != nil {
		return nil, err
	}
	groups := make([][]stats.Results, len(points))
	for i := range points {
		groups[i] = flat[i*len(suite) : (i+1)*len(suite)]
	}
	return groups, nil
}

// meanIPC returns the arithmetic-mean IPC of one point's suite results.
func meanIPC(rs []stats.Results) float64 {
	sum := 0.0
	for _, r := range rs {
		sum += r.IPC()
	}
	return sum / float64(len(rs))
}

// meanInflight returns the average of the per-run mean in-flight counts.
func meanInflight(rs []stats.Results) float64 {
	sum := 0.0
	for _, r := range rs {
		sum += r.MeanInflight
	}
	return sum / float64(len(rs))
}

// Table1 returns the baseline architectural parameters, rendered like
// the paper's Table 1.
func Table1() string {
	return config.Default().String()
}

// renderTable formats a simple aligned table.
func renderTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
