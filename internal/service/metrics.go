package service

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics is the worker daemon's counter set, exposed in Prometheus
// text format at /metrics. Everything here is either a monotonic
// counter (suffix _total) or an instantaneous gauge; all updates are
// atomic, so scrapes never block the simulation path.
type Metrics struct {
	// BatchesSubmitted / BatchesRejected count accepted batches and
	// those refused by admission control (draining or queue bound).
	BatchesSubmitted atomic.Uint64
	BatchesRejected  atomic.Uint64
	// Points counts every submitted point; CachedPoints those answered
	// without simulation by this node (submission hit, in-flight re-check
	// hit, or singleflight share); Simulations actual simulator runs;
	// PointErrors failed points.
	Points       atomic.Uint64
	CachedPoints atomic.Uint64
	Simulations  atomic.Uint64
	PointErrors  atomic.Uint64
	// QueueDepth gauges misses admitted but not yet finished; InFlight
	// gauges runs currently holding a worker slot.
	QueueDepth atomic.Int64
	InFlight   atomic.Int64
	// WarmBuilds / WarmReuses count snapshot-group donors warmed locally
	// vs forks of an already-available donor (see the scheduler's
	// snapshot-fork sharing).
	WarmBuilds atomic.Uint64
	WarmReuses atomic.Uint64
	// Cycles / SkippedCycles total the simulated-cycle and elided-cycle
	// counts over this node's simulator runs (PR 6's event-driven clock
	// skip); their ratio is the node's skip rate.
	Cycles        atomic.Uint64
	SkippedCycles atomic.Uint64
	// RecoveredBatches counts batches re-admitted from the recovery
	// journal after a restart.
	RecoveredBatches atomic.Uint64
}

// counter and gauge render one metric with a HELP/TYPE header.
func counter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func gauge(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

func boolGauge(w io.Writer, name, help string, b bool) {
	v := int64(0)
	if b {
		v = 1
	}
	gauge(w, name, help, v)
}

// WriteMetrics renders the scheduler's full metric surface (scheduler
// counters, cache occupancy, donor-exchange counters, drain/readiness
// state) in Prometheus text exposition format.
func (s *Scheduler) WriteMetrics(w io.Writer) {
	m := &s.metrics
	counter(w, "ooosim_batches_submitted_total", "Batches accepted by admission control.", m.BatchesSubmitted.Load())
	counter(w, "ooosim_batches_rejected_total", "Batches refused while draining or over the queue bound.", m.BatchesRejected.Load())
	counter(w, "ooosim_points_total", "Simulation points submitted.", m.Points.Load())
	counter(w, "ooosim_points_cached_total", "Points answered without simulation (cache hit or singleflight share).", m.CachedPoints.Load())
	counter(w, "ooosim_simulations_total", "Simulator runs actually executed.", m.Simulations.Load())
	counter(w, "ooosim_point_errors_total", "Points that failed.", m.PointErrors.Load())
	gauge(w, "ooosim_queue_depth", "Misses admitted but not yet finished.", m.QueueDepth.Load())
	gauge(w, "ooosim_inflight_simulations", "Runs currently holding a worker slot.", m.InFlight.Load())
	gauge(w, "ooosim_worker_slots", "Size of the simulation worker pool.", int64(cap(s.sem)))
	// With a donor exchange attached, local warm-ups are counted by the
	// exchange (adopted ones are not builds); otherwise by the scheduler.
	warmBuilds := m.WarmBuilds.Load()
	if s.donors != nil {
		warmBuilds += s.donors.built.Load()
	}
	counter(w, "ooosim_warm_builds_total", "Snapshot-group donors warmed on this node.", warmBuilds)
	counter(w, "ooosim_warm_reuses_total", "Forks of an already-available donor.", m.WarmReuses.Load())
	counter(w, "ooosim_cycles_simulated_total", "Cycles accounted across simulator runs.", m.Cycles.Load())
	counter(w, "ooosim_cycles_skipped_total", "Cycles elided by the event-driven clock skip.", m.SkippedCycles.Load())
	gauge(w, "ooosim_cache_mem_entries", "Results resident in the cache's memory tier.", int64(s.cache.MemLen()))
	counter(w, "ooosim_cache_quarantined_total", "Disk cache entries that failed checksum verification and were quarantined.", s.cache.Quarantined())
	counter(w, "ooosim_journal_recovered_batches_total", "Batches re-admitted from the recovery journal after a restart.", m.RecoveredBatches.Load())
	if s.donors != nil {
		s.donors.writeMetrics(w)
	}
	boolGauge(w, "ooosim_draining", "1 while the node is draining (no new batches admitted).", s.draining.Load())
	boolGauge(w, "ooosim_ready", "1 while the node admits new batches.", s.Ready() == nil)
}
