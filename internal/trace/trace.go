// Package trace generates the deterministic synthetic workloads that
// stand in for the paper's SPEC2000fp benchmarks (see DESIGN.md §3-4 for
// the substitution argument). A Trace is a materialised dynamic
// instruction stream: random access by position makes checkpoint
// rollback replay trivial and exact.
//
// Kernels model the behaviours the paper's mechanisms react to:
//
//   - Stream: unit-stride FP triad over arrays far larger than L2 — the
//     memory-latency-wall workload that motivates kilo-instruction
//     windows.
//   - Stencil: neighbouring loads with heavy line reuse — mostly cache
//     hits with periodic misses.
//   - Reduction: a serial FP accumulation chain — ILP-limited.
//   - Blocked: cache-resident matrix-vector product — high IPC.
//   - PointerChase: serial dependent misses (the paper's integer
//     "pointer chasing" contrast).
//   - FPMix: a weighted interleave of the FP kernels approximating the
//     SPEC2000fp average the paper reports.
package trace

import (
	"fmt"
	"sync"

	"repro/internal/isa"
)

// Trace is an immutable dynamic instruction stream.
type Trace struct {
	name  string
	insts []isa.Inst

	// recipe, when hasRecipe, is the declarative generation identity
	// (see Recipe): what a service ships and what fingerprints hash
	// instead of the materialised stream.
	recipe    Recipe
	hasRecipe bool

	// code is the static program image of a program-backed trace
	// (KernelProgram recipes); nil for synthetic kernels. See Code.
	code StaticCode

	// warmOnce/warmEvents lazily cache the cache warm-up footprint
	// (see WarmFootprint). Shared read-only across concurrent CPUs.
	warmOnce   sync.Once
	warmEvents []WarmEvent
}

// StaticCode is the static-code view of a program-backed trace: the
// program's text mapped instruction by instruction onto pipeline
// operation classes. The core's wrong-path model fetches from it past
// an unresolved mispredicted branch, so wrong paths run the real
// instructions at the mispredicted target instead of a synthetic mix.
// Implementations are immutable and shared read-only across CPUs.
type StaticCode interface {
	// Len returns the number of static instructions.
	Len() int
	// IndexOf returns the static index of pc, if it lies in the text.
	IndexOf(pc uint64) (int, bool)
	// At returns the static instruction at index i.
	At(i int) isa.Inst
}

// Code returns the static program image, or nil for synthetic traces.
func (t *Trace) Code() StaticCode { return t.code }

// Name returns the workload name.
func (t *Trace) Name() string { return t.name }

// Len returns the dynamic instruction count.
func (t *Trace) Len() int64 { return int64(len(t.insts)) }

// At returns the instruction at position pos. The simulator's fetch
// stage calls this; rollback is just re-reading from an older position.
func (t *Trace) At(pos int64) isa.Inst {
	return t.insts[pos]
}

// Validate checks every instruction; generator tests call it.
func (t *Trace) Validate() error {
	for i, in := range t.insts {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("trace %s @%d: %w", t.name, i, err)
		}
	}
	return nil
}

// WarmLineBytes is the instruction-cache line granularity of the warm-up
// footprint (the simulator's IL1 line size, Table 1).
const WarmLineBytes = 32

// WarmEvent is one step of a trace's cache warm-up replay: either the
// first-seen IL1 line of an instruction fetch (Fetch true) or one data
// access (Fetch false). Addr is the line-aligned PC for fetches and the
// effective byte address for data.
type WarmEvent struct {
	Addr  uint64
	Fetch bool
}

// WarmFootprint returns the trace's cache warm-up footprint: the exact
// interleaving of first-seen instruction lines and data accesses that a
// harness must replay through a cold hierarchy to reach the steady-state
// cache contents a long-running benchmark would have (the paper's
// 300M-instruction regions run warm).
//
// It is computed once per trace and cached: a parameter sweep builds one
// CPU per configuration point over the same trace, and rediscovering the
// footprint (an O(trace) pass with a dedup map) per point dominated CPU
// construction. The result is shared read-only; callers must not modify
// it.
func (t *Trace) WarmFootprint() []WarmEvent {
	t.warmOnce.Do(func() {
		seen := make(map[uint64]struct{})
		events := make([]WarmEvent, 0, len(t.insts)/2)
		for i := range t.insts {
			in := &t.insts[i]
			pc := in.PC &^ (WarmLineBytes - 1)
			if _, ok := seen[pc]; !ok {
				seen[pc] = struct{}{}
				events = append(events, WarmEvent{Addr: pc, Fetch: true})
			}
			if in.Op.IsMem() {
				events = append(events, WarmEvent{Addr: in.Addr})
			}
		}
		t.warmEvents = events
	})
	return t.warmEvents
}

// OpCounts returns a histogram of operation classes.
func (t *Trace) OpCounts() [isa.NumOps]int64 {
	var c [isa.NumOps]int64
	for _, in := range t.insts {
		c[in.Op]++
	}
	return c
}

// builder accumulates instructions for a trace.
type builder struct {
	insts []isa.Inst
}

func newBuilder(n int) *builder {
	return &builder{insts: make([]isa.Inst, 0, n)}
}

func (b *builder) emit(in isa.Inst) {
	b.insts = append(b.insts, in)
}

func (b *builder) len() int { return len(b.insts) }

func (b *builder) trace(name string) *Trace {
	return &Trace{name: name, insts: b.insts}
}

// regWindow hands a kernel instance a disjoint slice of the logical
// register space so interleaved kernels never alias each other's
// dependence chains.
type regWindow struct {
	intBase, intN int
	fpBase, fpN   int
}

func (w regWindow) r(i int) isa.Reg {
	if i < 0 || i >= w.intN {
		panic(fmt.Sprintf("trace: int register window index %d out of [0,%d)", i, w.intN))
	}
	return isa.IntReg(w.intBase + i)
}

func (w regWindow) f(i int) isa.Reg {
	if i < 0 || i >= w.fpN {
		panic(fmt.Sprintf("trace: fp register window index %d out of [0,%d)", i, w.fpN))
	}
	return isa.FPReg(w.fpBase + i)
}

// prng is a splitmix64 generator: deterministic, seedable, stdlib-free.
type prng struct{ state uint64 }

func newPRNG(seed uint64) *prng {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &prng{state: seed}
}

func (p *prng) next() uint64 {
	p.state += 0x9e3779b97f4a7c15
	z := p.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (p *prng) intn(n int) int {
	if n <= 0 {
		panic("trace: intn of non-positive bound")
	}
	return int(p.next() % uint64(n))
}

// float returns a value in [0, 1).
func (p *prng) float() float64 {
	return float64(p.next()>>11) / float64(1<<53)
}
