package trace

import (
	"testing"

	"repro/internal/isa/programs"
)

// streamTestRecipes is the equivalence corpus: every synthetic kernel
// plus every registered program, at sizes small enough to materialise
// quickly but large enough to cross many emission rounds.
func streamTestRecipes(t *testing.T) []Recipe {
	t.Helper()
	const n = 50_000
	rs := []Recipe{
		{Kernel: KernelStream, N: n},
		{Kernel: KernelStrided, N: n, Stride: 8},
		{Kernel: KernelStencil, N: n},
		{Kernel: KernelReduction, N: n},
		{Kernel: KernelBlocked, N: n},
		{Kernel: KernelPointerChase, N: n},
		{Kernel: KernelFPMix, N: n, Seed: 42},
	}
	for _, name := range programs.Names() {
		spec, ok := programs.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		rs = append(rs, Recipe{
			Kernel:  KernelProgram,
			Program: name,
			Input:   spec.InputFor(20_000),
			Seed:    7,
		})
	}
	return rs
}

// TestStreamedMatchesMaterialised enforces the stream prefix contract:
// for every recipe, the segment stream's elements equal the one-shot
// Materialise()'s element-for-element — under adversarially odd chunk
// sizes, so buffer compaction and round boundaries are both crossed.
// Program streams must additionally end at exactly the materialised
// length (the program halts at the same instruction either way).
func TestStreamedMatchesMaterialised(t *testing.T) {
	chunks := []int{1, 7, 113, 997, 4096, 10_000}
	for _, r := range streamTestRecipes(t) {
		r := r
		t.Run(r.String(), func(t *testing.T) {
			want, err := r.Materialise()
			if err != nil {
				t.Fatalf("Materialise: %v", err)
			}
			st, err := r.OpenStream()
			if err != nil {
				t.Fatalf("OpenStream: %v", err)
			}
			var pos int64
			ci := 0
			for pos < want.Len() {
				n := chunks[ci%len(chunks)]
				ci++
				if rem := want.Len() - pos; int64(n) > rem {
					n = int(rem)
				}
				got, err := st.Peek(n)
				if err != nil {
					t.Fatalf("Peek(%d) at %d: %v", n, pos, err)
				}
				if len(got) != n {
					t.Fatalf("Peek(%d) at %d returned %d insts (stream ended early)", n, pos, len(got))
				}
				for i := range got {
					if got[i] != want.At(pos+int64(i)) {
						t.Fatalf("stream diverges at %d: got %+v want %+v",
							pos+int64(i), got[i], want.At(pos+int64(i)))
					}
				}
				st.Skip(n)
				pos += int64(n)
			}
			if st.Pos() != want.Len() {
				t.Fatalf("Pos() = %d, want %d", st.Pos(), want.Len())
			}
			if r.Kernel == KernelProgram {
				// The program halted during materialisation, so the stream
				// must be exhausted at the same point.
				tail, err := st.Peek(1)
				if err != nil {
					t.Fatalf("Peek past end: %v", err)
				}
				if len(tail) != 0 {
					t.Fatalf("program stream continues past materialised length %d", want.Len())
				}
			}
		})
	}
}

// TestStreamWindowWarmFootprint checks the other half of the stream's
// fidelity: a Window over the whole stream yields a trace whose
// WarmFootprint — the exact interleaving warm donors replay — agrees
// with the materialised trace's, and whose static code matches.
func TestStreamWindowWarmFootprint(t *testing.T) {
	for _, r := range streamTestRecipes(t) {
		r := r
		t.Run(r.String(), func(t *testing.T) {
			want, err := r.Materialise()
			if err != nil {
				t.Fatalf("Materialise: %v", err)
			}
			st, err := r.OpenStream()
			if err != nil {
				t.Fatalf("OpenStream: %v", err)
			}
			win, err := st.Window(int(want.Len()))
			if err != nil {
				t.Fatalf("Window: %v", err)
			}
			if win.Len() != want.Len() {
				t.Fatalf("window length %d, want %d", win.Len(), want.Len())
			}
			if (win.Code() == nil) != (want.Code() == nil) {
				t.Fatalf("window code presence %v, want %v", win.Code() != nil, want.Code() != nil)
			}
			got, wantFp := win.WarmFootprint(), want.WarmFootprint()
			if len(got) != len(wantFp) {
				t.Fatalf("footprint length %d, want %d", len(got), len(wantFp))
			}
			for i := range got {
				if got[i] != wantFp[i] {
					t.Fatalf("footprint diverges at %d: got %+v want %+v", i, got[i], wantFp[i])
				}
			}
		})
	}
}

// TestStreamOnlyLiftsCap checks the streamed validation path accepts
// synthetic sizes the materialisation cap rejects — the point of
// streaming — while still bounding runaway requests.
func TestStreamOnlyLiftsCap(t *testing.T) {
	big := Recipe{Kernel: KernelStream, N: MaxRecipeInsts + 1}
	if _, err := big.Materialise(); err == nil {
		t.Fatal("Materialise accepted N beyond MaxRecipeInsts")
	}
	if _, err := StreamOnly(big); err != nil {
		t.Fatalf("StreamOnly rejected streamable N: %v", err)
	}
	absurd := Recipe{Kernel: KernelStream, N: MaxStreamInsts + 1}
	if _, err := StreamOnly(absurd); err == nil {
		t.Fatal("StreamOnly accepted N beyond MaxStreamInsts")
	}
}
