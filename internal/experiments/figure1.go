package experiments

import (
	"context"

	"repro/internal/config"
)

// Figure1Windows and Figure1Latencies are the paper's sweep axes.
var (
	Figure1Windows   = []int{128, 256, 512, 1024, 2048, 4096}
	Figure1Latencies = []int{100, 500, 1000} // plus the perfect-L2 series
)

// Figure1Result holds IPC (suite average) per window size and memory
// configuration: the "IPC relative to the number of in-flight
// instructions and the latency to memory" landscape of Figure 1.
type Figure1Result struct {
	Windows []int
	// PerfectL2[i] is the IPC with window Windows[i] and a perfect L2.
	PerfectL2 []float64
	// ByLatency[lat][i] is the IPC at memory latency lat.
	ByLatency map[int][]float64
}

// Figure1 sweeps window size against memory latency on the scaled
// baseline processor (ROB, queues and LSQ all sized to the window, as
// the paper's caption notes).
func Figure1(ctx context.Context, opt Options) (Figure1Result, error) {
	opt = opt.withDefaults()
	suite, err := opt.suite()
	if err != nil {
		return Figure1Result{}, err
	}

	var points []point
	for _, w := range Figure1Windows {
		cfg := config.BaselineSized(w)
		cfg.PerfectL2 = true
		points = append(points, point{cfg: cfg})
		for _, lat := range Figure1Latencies {
			cfg := config.BaselineSized(w)
			cfg.MemoryLatency = lat
			points = append(points, point{cfg: cfg})
		}
	}
	groups, err := opt.runPoints(ctx, points, suite)
	if err != nil {
		return Figure1Result{}, err
	}

	res := Figure1Result{
		Windows:   Figure1Windows,
		PerfectL2: make([]float64, len(Figure1Windows)),
		ByLatency: make(map[int][]float64, len(Figure1Latencies)),
	}
	for _, lat := range Figure1Latencies {
		res.ByLatency[lat] = make([]float64, len(Figure1Windows))
	}
	k := 0
	for i := range Figure1Windows {
		res.PerfectL2[i] = meanIPC(groups[k])
		k++
		for _, lat := range Figure1Latencies {
			res.ByLatency[lat][i] = meanIPC(groups[k])
			k++
		}
	}
	return res, nil
}

// String renders the figure as a table: one row per window size.
func (r Figure1Result) String() string {
	header := []string{"in-flight", "L2 Perfect", "100", "500", "1000"}
	rows := make([][]string, len(r.Windows))
	for i, w := range r.Windows {
		rows[i] = []string{
			f0(float64(w)),
			f3(r.PerfectL2[i]),
			f3(r.ByLatency[100][i]),
			f3(r.ByLatency[500][i]),
			f3(r.ByLatency[1000][i]),
		}
	}
	return renderTable("Figure 1: IPC vs in-flight instructions and memory latency (baseline, scaled)", header, rows)
}
