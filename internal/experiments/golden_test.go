package experiments

import (
	"context"
	"os"
	"strings"
	"testing"
)

// goldenOpts is the short figure-9 configuration pinned by the golden
// file: small enough to run in well under a second, large enough that
// every mechanism under study (SLIQ moves, rollbacks, kilo-instruction
// windows) is exercised.
var goldenOpts = Options{Insts: 3000, Seed: 42, Workers: 1}

func renderFigure9(t *testing.T) string {
	t.Helper()
	r, err := Figure9(context.Background(), goldenOpts)
	if err != nil {
		t.Fatal(err)
	}
	return r.String() + r.Figure11String()
}

// TestFigure9Golden pins a short figure-9 run byte-for-byte against
// testdata/figure9_golden.txt, which was recorded before the PR-3
// hot-path overhaul (DynInst pooling, intrusive issue queues, indexed
// LSQ disambiguation, precomputed warm-up footprints): the optimised
// simulator must remain bit-equal to the original, not merely close.
// Regenerate with GEN_GOLDEN=1 only for a change that is *supposed* to
// alter simulated behaviour, and say so in the commit.
func TestFigure9Golden(t *testing.T) {
	const path = "testdata/figure9_golden.txt"
	if os.Getenv("GEN_GOLDEN") != "" {
		got := renderFigure9(t)
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got := renderFigure9(t)
	if got == string(want) {
		return
	}
	// Pinpoint the first divergent line for a readable failure.
	gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
	for i := 0; i < len(gl) || i < len(wl); i++ {
		g, w := "", ""
		if i < len(gl) {
			g = gl[i]
		}
		if i < len(wl) {
			w = wl[i]
		}
		if g != w {
			t.Fatalf("figure 9 output diverged from the pre-pooling golden at line %d:\n got: %q\nwant: %q",
				i+1, g, w)
		}
	}
	t.Fatal("figure 9 output diverged from the golden (length only?)")
}

// TestFigure9GoldenParallelWorkers reruns the pinned configuration with
// a parallel worker pool: results must match the golden byte-for-byte
// regardless of scheduling, proving the per-CPU record pools and the
// shared warm-up footprint do not leak across concurrent points.
func TestFigure9GoldenParallelWorkers(t *testing.T) {
	want, err := os.ReadFile("testdata/figure9_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	opt := goldenOpts
	opt.Workers = 8
	r, err := Figure9(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.String() + r.Figure11String(); got != string(want) {
		t.Fatalf("parallel sweep diverged from the golden:\n%s", got)
	}
}
