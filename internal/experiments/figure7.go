package experiments

import (
	"context"

	"repro/internal/config"
	"repro/internal/stats"
)

// Figure7Percentiles are the cumulative-distribution points the paper
// reports.
var Figure7Percentiles = []float64{0.10, 0.25, 0.50, 0.75, 0.90}

// Figure7Point is one percentile of the occupancy distribution.
type Figure7Point struct {
	Percentile float64
	// Inflight is the occupancy value at this percentile ("25% of the
	// time the ROB had less than N instructions").
	Inflight int
	// BlockedLong and BlockedShort are the average live (not yet
	// issued) floating-point instruction counts over cycles at or
	// below this percentile, split by whether they transitively wait
	// on an L2-missing load.
	BlockedLong  float64
	BlockedShort float64
}

// Figure7Result is the distribution of live FP instructions with
// respect to the number of in-flight instructions (2048-entry window,
// 500-cycle memory).
type Figure7Result struct {
	Points []Figure7Point
	// PerBenchmark keeps each workload's occupancy for inspection.
	PerBenchmark map[string]*stats.Occupancy
}

// Figure7 reproduces the live-instruction distribution study that
// motivates the SLIQ: most in-flight instructions have finished but
// cannot commit, and the live minority splits into blocked-long and
// blocked-short.
func Figure7(ctx context.Context, opt Options) (Figure7Result, error) {
	opt = opt.withDefaults()
	suite, err := opt.suite()
	if err != nil {
		return Figure7Result{}, err
	}

	cfg := config.BaselineSized(2048)
	cfg.MemoryLatency = 500

	groups, err := opt.runPoints(ctx, []point{{cfg: cfg, collectOcc: true}}, suite)
	if err != nil {
		return Figure7Result{}, err
	}

	// The paper averages the distribution across SPEC2000fp; we merge
	// the per-benchmark histograms by summing them.
	merged := stats.NewOccupancy(cfg.ROBEntries)
	per := make(map[string]*stats.Occupancy, len(suite))
	for i, st := range suite {
		res := groups[0][i]
		per[st.name] = res.Occ
		res.Occ.MergeInto(merged)
	}

	out := Figure7Result{PerBenchmark: per}
	for _, p := range Figure7Percentiles {
		long, short := merged.LiveAtPercentile(p)
		out.Points = append(out.Points, Figure7Point{
			Percentile:   p,
			Inflight:     merged.Percentile(p),
			BlockedLong:  long,
			BlockedShort: short,
		})
	}
	return out, nil
}

// String renders the percentile table plus per-benchmark occupancy
// medians. The synthetic kernels are stationary, so unlike SPEC2000fp's
// phased applications the merged distribution concentrates near the
// window capacity; the figure's split (blocked-long dominating a small
// live minority) is the reproduction target.
func (r Figure7Result) String() string {
	header := []string{"percentile", "in-flight", "blocked-long", "blocked-short", "live total"}
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{
			f0(100 * p.Percentile),
			f0(float64(p.Inflight)),
			f1(p.BlockedLong),
			f1(p.BlockedShort),
			f1(p.BlockedLong + p.BlockedShort),
		}
	}
	s := renderTable("Figure 7: live FP instructions vs in-flight instructions (2048 window, 500-cycle memory)", header, rows)
	header = []string{"benchmark", "p50 in-flight", "mean in-flight"}
	var per [][]string
	for _, b := range []string{"stream", "strided", "stencil", "reduction", "blocked", "fpmix"} {
		occ := r.PerBenchmark[b]
		if occ == nil {
			continue
		}
		per = append(per, []string{b, f0(float64(occ.Percentile(0.5))), f0(occ.Mean())})
	}
	s += "\n" + renderTable("Per-benchmark occupancy", header, per)
	return s
}
