package programs

import (
	"fmt"
	"math"

	"repro/internal/isa/rv32"
)

// The five shipped kernels. Each picks a distinct microarchitectural
// stress: isort is branchy with tight store-to-load shift chains, chase
// is a serial pointer dependence, hashjoin mixes multiplies with
// data-dependent probe loops, dhry is a call-heavy integer mix
// (JAL/JALR return-target pressure on the BTB), and memcpy is a
// streaming copy. All parameter passing is bare-metal style: pointers
// and counts arrive in registers via Program.Init, data layouts are
// seeded segments.

func init() {
	register(Spec{
		Name:     "isort",
		Desc:     "insertion sort over a seeded int array (branchy, store-to-load heavy)",
		MaxInput: 2000,
		InputFor: func(budget uint64) int {
			// Dynamic length is dominated by the ~1.5*n^2 shift work of
			// a random permutation.
			return clampInput(int(math.Sqrt(float64(budget)/1.5)), 2000)
		},
		Build: buildISort,
	})
	register(Spec{
		Name:     "chase",
		Desc:     "pointer chase over a seeded cyclic linked list with an accumulator spill",
		MaxInput: 1_000_000,
		InputFor: func(budget uint64) int {
			return clampInput(int(budget/7), 1_000_000) // 7 instructions per step
		},
		Build: buildChase,
	})
	register(Spec{
		Name:     "hashjoin",
		Desc:     "open-addressing hash build + probe with multiplicative hashing",
		MaxInput: 100_000,
		InputFor: func(budget uint64) int {
			return clampInput(int(budget/32), 100_000) // ~32 instructions per key
		},
		Build: buildHashJoin,
	})
	register(Spec{
		Name:     "dhry",
		Desc:     "dhrystone-style integer mix: indirect calls, byte copies, arithmetic",
		MaxInput: 60_000,
		InputFor: func(budget uint64) int {
			return clampInput(int(budget/120), 60_000) // ~120 instructions per iteration
		},
		Build: buildDhry,
	})
	register(Spec{
		Name:     "memcpy",
		Desc:     "word-wise memory copy with a byte tail (streaming loads and stores)",
		MaxInput: 1_000_000,
		InputFor: func(budget uint64) int {
			return clampInput(int(budget*4/7), 1_000_000) // ~7 instructions per 4 bytes
		},
		Build: buildMemcpy,
	})
}

func checkInput(name string, input, max int) error {
	if input < 1 || input > max {
		return fmt.Errorf("programs: %s input %d out of range [1, %d]", name, input, max)
	}
	return nil
}

// buildISort sorts input seeded words in place at DataBase.
func buildISort(input int, seed uint64) (*rv32.Program, error) {
	if err := checkInput("isort", input, 2000); err != nil {
		return nil, err
	}
	rng := splitmix64(seed)
	arr := make([]uint32, input)
	for i := range arr {
		arr[i] = uint32(rng.next())
	}
	a := rv32.NewAsm()
	a.Li(rv32.T0, 1) // i = 1
	a.Label("outer")
	a.Bge(rv32.T0, rv32.A1, "done")
	a.Slli(rv32.T1, rv32.T0, 2)
	a.Add(rv32.T1, rv32.A0, rv32.T1) // &a[i]
	a.Lw(rv32.T2, 0, rv32.T1)        // key = a[i]
	a.Mv(rv32.T3, rv32.T1)           // insertion cursor: &a[j+1]
	a.Label("inner")
	a.Beq(rv32.T3, rv32.A0, "place") // j < 0
	a.Lw(rv32.T4, -4, rv32.T3)       // a[j]
	a.Bge(rv32.T2, rv32.T4, "place") // key >= a[j]: stop shifting
	a.Sw(rv32.T4, 0, rv32.T3)        // a[j+1] = a[j]
	a.Addi(rv32.T3, rv32.T3, -4)
	a.J("inner")
	a.Label("place")
	a.Sw(rv32.T2, 0, rv32.T3) // a[j+1] = key
	a.Addi(rv32.T0, rv32.T0, 1)
	a.J("outer")
	a.Label("done")
	a.Ebreak()
	text, err := a.Assemble()
	if err != nil {
		return nil, err
	}
	return &rv32.Program{
		Name: "isort",
		Text: text,
		Data: []rv32.Segment{words32(rv32.DataBase, arr)},
		Init: map[int]uint32{
			rv32.A0: rv32.DataBase,
			rv32.A1: uint32(input),
			rv32.SP: rv32.StackTop,
		},
	}, nil
}

// buildChase walks input steps of a seeded cyclic linked list (8-byte
// nodes: next pointer, payload), spilling and reloading the running sum
// each step — the register-spill idiom that makes the LSQ forward.
func buildChase(input int, seed uint64) (*rv32.Program, error) {
	if err := checkInput("chase", input, 1_000_000); err != nil {
		return nil, err
	}
	nodes := clampInput(input/4, 8192)
	if nodes < 16 && input >= 16 {
		nodes = 16
	}
	rng := splitmix64(seed)
	// A full Fisher-Yates shuffle of the visit order yields one cycle
	// covering every node.
	order := make([]int, nodes)
	for i := range order {
		order[i] = i
	}
	for i := nodes - 1; i > 0; i-- {
		j := int(rng.next() % uint64(i+1))
		order[i], order[j] = order[j], order[i]
	}
	const nodeBase = uint32(0x100000)
	mem := make([]uint32, 2*nodes)
	for k, n := range order {
		next := order[(k+1)%nodes]
		mem[2*n] = nodeBase + uint32(8*next)
		mem[2*n+1] = uint32(rng.next() & 0xFFFF)
	}
	a := rv32.NewAsm()
	a.Li(rv32.A2, 0) // running sum
	a.Label("loop")
	a.Sw(rv32.A2, 0, rv32.SP) // spill the accumulator
	a.Lw(rv32.T0, 4, rv32.A0) // payload
	a.Lw(rv32.A0, 0, rv32.A0) // next (the serial dependence)
	a.Lw(rv32.A2, 0, rv32.SP) // reload: forwards from the spill
	a.Add(rv32.A2, rv32.A2, rv32.T0)
	a.Addi(rv32.A1, rv32.A1, -1)
	a.Bne(rv32.A1, rv32.X0, "loop")
	a.Sw(rv32.A2, 0, rv32.SP)
	a.Ebreak()
	text, err := a.Assemble()
	if err != nil {
		return nil, err
	}
	return &rv32.Program{
		Name: "chase",
		Text: text,
		Data: []rv32.Segment{words32(nodeBase, mem)},
		Init: map[int]uint32{
			rv32.A0: nodeBase + uint32(8*order[0]),
			rv32.A1: uint32(input),
			rv32.SP: rv32.StackTop,
		},
	}, nil
}

// buildHashJoin inserts input seeded keys into an open-addressing table
// (load factor <= 0.5), then probes it with input keys — half present,
// half random — counting matches.
func buildHashJoin(input int, seed uint64) (*rv32.Program, error) {
	if err := checkInput("hashjoin", input, 100_000); err != nil {
		return nil, err
	}
	slots := 16
	for slots < 2*input {
		slots *= 2
	}
	shift := int32(32)
	for s := slots; s > 1; s /= 2 {
		shift--
	}
	rng := splitmix64(seed)
	keys := make([]uint32, input)
	for i := range keys {
		keys[i] = uint32(rng.next()) | 1 // nonzero: zero marks an empty slot
	}
	probes := make([]uint32, input)
	for i := range probes {
		if i%2 == 0 {
			probes[i] = keys[int(rng.next()%uint64(input))]
		} else {
			probes[i] = uint32(rng.next()) | 1
		}
	}
	const (
		keyBase   = uint32(0x100000)
		probeBase = uint32(0x200000)
		tableBase = uint32(0x300000)
	)
	a := rv32.NewAsm()
	a.Mv(rv32.T0, rv32.X0) // i
	a.Label("build")
	a.Bge(rv32.T0, rv32.A1, "psetup")
	a.Slli(rv32.T1, rv32.T0, 2)
	a.Add(rv32.T1, rv32.A0, rv32.T1)
	a.Lw(rv32.T2, 0, rv32.T1) // key
	a.Mul(rv32.T3, rv32.T2, rv32.T6)
	a.Srli(rv32.T3, rv32.T3, shift)
	a.And(rv32.T3, rv32.T3, rv32.A3)
	a.Label("slot")
	a.Slli(rv32.T4, rv32.T3, 2)
	a.Add(rv32.T4, rv32.A2, rv32.T4)
	a.Lw(rv32.T5, 0, rv32.T4)
	a.Beq(rv32.T5, rv32.X0, "insert")
	a.Addi(rv32.T3, rv32.T3, 1)
	a.And(rv32.T3, rv32.T3, rv32.A3)
	a.J("slot")
	a.Label("insert")
	a.Sw(rv32.T2, 0, rv32.T4)
	a.Addi(rv32.T0, rv32.T0, 1)
	a.J("build")
	a.Label("psetup")
	a.Mv(rv32.T0, rv32.X0)
	a.Mv(rv32.S1, rv32.X0) // match count
	a.Label("probe")
	a.Bge(rv32.T0, rv32.A1, "done")
	a.Slli(rv32.T1, rv32.T0, 2)
	a.Add(rv32.T1, rv32.A4, rv32.T1)
	a.Lw(rv32.T2, 0, rv32.T1)
	a.Mul(rv32.T3, rv32.T2, rv32.T6)
	a.Srli(rv32.T3, rv32.T3, shift)
	a.And(rv32.T3, rv32.T3, rv32.A3)
	a.Label("pslot")
	a.Slli(rv32.T4, rv32.T3, 2)
	a.Add(rv32.T4, rv32.A2, rv32.T4)
	a.Lw(rv32.T5, 0, rv32.T4)
	a.Beq(rv32.T5, rv32.X0, "miss")
	a.Beq(rv32.T5, rv32.T2, "hit")
	a.Addi(rv32.T3, rv32.T3, 1)
	a.And(rv32.T3, rv32.T3, rv32.A3)
	a.J("pslot")
	a.Label("hit")
	a.Addi(rv32.S1, rv32.S1, 1)
	a.Label("miss")
	a.Addi(rv32.T0, rv32.T0, 1)
	a.J("probe")
	a.Label("done")
	a.Sw(rv32.S1, 0, rv32.SP)
	a.Ebreak()
	text, err := a.Assemble()
	if err != nil {
		return nil, err
	}
	return &rv32.Program{
		Name: "hashjoin",
		Text: text,
		Data: []rv32.Segment{
			words32(keyBase, keys),
			words32(probeBase, probes),
		},
		Init: map[int]uint32{
			rv32.A0: keyBase,
			rv32.A1: uint32(input),
			rv32.A2: tableBase,
			rv32.A3: uint32(slots - 1),
			rv32.A4: probeBase,
			rv32.T6: 2654435761, // Knuth's multiplicative hash constant
			rv32.SP: rv32.StackTop,
		},
	}, nil
}

// buildDhry runs input iterations of a dhrystone-style mix: an indirect
// call through a two-entry function-pointer table (JALR with an
// alternating target), a 16-byte byte-wise copy called from two
// alternating sites (return-address pressure), and checksum arithmetic.
func buildDhry(input int, seed uint64) (*rv32.Program, error) {
	if err := checkInput("dhry", input, 60_000); err != nil {
		return nil, err
	}
	a := rv32.NewAsm()
	a.Mv(rv32.S0, rv32.X0) // i
	a.Li(rv32.S1, 0)       // checksum
	a.Label("main")
	a.Bge(rv32.S0, rv32.A0, "done")
	a.Andi(rv32.T0, rv32.S0, 1)
	a.Slli(rv32.T0, rv32.T0, 2)
	a.Add(rv32.T0, rv32.A1, rv32.T0)
	a.Lw(rv32.T1, 0, rv32.T0) // function pointer: g1 or g2
	a.Jalr(rv32.RA, rv32.T1, 0)
	a.Add(rv32.S1, rv32.S1, rv32.A4)
	a.Andi(rv32.T0, rv32.S0, 1)
	a.Bne(rv32.T0, rv32.X0, "site2")
	a.Jal(rv32.RA, "copy16")
	a.J("after")
	a.Label("site2")
	a.Jal(rv32.RA, "copy16")
	a.Label("after")
	a.Addi(rv32.S0, rv32.S0, 1)
	a.J("main")
	a.Label("done")
	a.Sw(rv32.S1, 0, rv32.SP)
	a.Ebreak()
	a.Label("g1") // a4 = 3*i + 7
	a.Slli(rv32.A4, rv32.S0, 1)
	a.Add(rv32.A4, rv32.A4, rv32.S0)
	a.Addi(rv32.A4, rv32.A4, 7)
	a.Ret()
	a.Label("g2") // a4 = ((i ^ sum) >> 3) + 1
	a.Xor(rv32.A4, rv32.S0, rv32.S1)
	a.Srli(rv32.A4, rv32.A4, 3)
	a.Addi(rv32.A4, rv32.A4, 1)
	a.Ret()
	a.Label("copy16") // buf2[0:16] = buf1[0:16], byte-wise
	a.Mv(rv32.T2, rv32.A2)
	a.Mv(rv32.T3, rv32.A3)
	a.Li(rv32.T4, 16)
	a.Label("cl")
	a.Lbu(rv32.T5, 0, rv32.T2)
	a.Sb(rv32.T5, 0, rv32.T3)
	a.Addi(rv32.T2, rv32.T2, 1)
	a.Addi(rv32.T3, rv32.T3, 1)
	a.Addi(rv32.T4, rv32.T4, -1)
	a.Bne(rv32.T4, rv32.X0, "cl")
	a.Ret()
	text, err := a.Assemble()
	if err != nil {
		return nil, err
	}
	g1, err := a.AddrOf("g1", rv32.TextBase)
	if err != nil {
		return nil, err
	}
	g2, err := a.AddrOf("g2", rv32.TextBase)
	if err != nil {
		return nil, err
	}
	rng := splitmix64(seed)
	buf1 := make([]byte, 16)
	for i := range buf1 {
		buf1[i] = byte(rng.next())
	}
	const (
		tableBase = rv32.DataBase
		buf1Base  = rv32.DataBase + 0x100
		buf2Base  = rv32.DataBase + 0x200
	)
	return &rv32.Program{
		Name: "dhry",
		Text: text,
		Data: []rv32.Segment{
			words32(tableBase, []uint32{g1, g2}),
			{Addr: buf1Base, Data: buf1},
		},
		Init: map[int]uint32{
			rv32.A0: uint32(input),
			rv32.A1: tableBase,
			rv32.A2: buf1Base,
			rv32.A3: buf2Base,
			rv32.SP: rv32.StackTop,
		},
	}, nil
}

// buildMemcpy copies input seeded bytes with a word loop and a byte
// tail.
func buildMemcpy(input int, seed uint64) (*rv32.Program, error) {
	if err := checkInput("memcpy", input, 1_000_000); err != nil {
		return nil, err
	}
	rng := splitmix64(seed)
	src := make([]byte, input)
	for i := 0; i+8 <= input; i += 8 {
		v := rng.next()
		for k := 0; k < 8; k++ {
			src[i+k] = byte(v >> (8 * k))
		}
	}
	for i := input &^ 7; i < input; i++ {
		src[i] = byte(rng.next())
	}
	const (
		srcBase = uint32(0x100000)
		dstBase = uint32(0x200000)
	)
	a := rv32.NewAsm()
	a.Srli(rv32.T0, rv32.A2, 2) // word count
	a.Andi(rv32.T1, rv32.A2, 3) // tail bytes
	a.Mv(rv32.T2, rv32.A1)      // src cursor
	a.Mv(rv32.T3, rv32.A0)      // dst cursor
	a.Label("wl")
	a.Beq(rv32.T0, rv32.X0, "tail")
	a.Lw(rv32.T4, 0, rv32.T2)
	a.Sw(rv32.T4, 0, rv32.T3)
	a.Addi(rv32.T2, rv32.T2, 4)
	a.Addi(rv32.T3, rv32.T3, 4)
	a.Addi(rv32.T0, rv32.T0, -1)
	a.J("wl")
	a.Label("tail")
	a.Beq(rv32.T1, rv32.X0, "fin")
	a.Lbu(rv32.T4, 0, rv32.T2)
	a.Sb(rv32.T4, 0, rv32.T3)
	a.Addi(rv32.T2, rv32.T2, 1)
	a.Addi(rv32.T3, rv32.T3, 1)
	a.Addi(rv32.T1, rv32.T1, -1)
	a.J("tail")
	a.Label("fin")
	a.Ebreak()
	text, err := a.Assemble()
	if err != nil {
		return nil, err
	}
	return &rv32.Program{
		Name: "memcpy",
		Text: text,
		Data: []rv32.Segment{{Addr: srcBase, Data: src}},
		Init: map[int]uint32{
			rv32.A0: dstBase,
			rv32.A1: srcBase,
			rv32.A2: uint32(input),
			rv32.SP: rv32.StackTop,
		},
	}, nil
}
