// Package queue implements the instruction-buffering structures of the
// simulated processor: the general-purpose issue queues (with
// event-driven wakeup and oldest-first select), a generic deque used for
// the pseudo-ROB, and the Slow Lane Instruction Queue (SLIQ) of the
// paper's section 3.
package queue

import (
	"container/heap"
	"fmt"
)

// IQEntry is one instruction resident in an issue queue. The pipeline
// allocates entries via Insert and keeps the pointer for wakeup and
// removal; all fields are managed by the queue.
type IQEntry struct {
	// Seq is the dynamic sequence number, used for oldest-first select.
	Seq uint64
	// Payload is an opaque handle back to the pipeline's record.
	Payload any

	pending  int // unready source operands
	heapIdx  int // index in the ready heap, or -1
	resident bool
	q        *IQ
}

// Pending returns the number of source operands still awaited.
func (e *IQEntry) Pending() int { return e.pending }

// Ready reports whether the entry is in the ready set.
func (e *IQEntry) Ready() bool { return e.resident && e.pending == 0 }

// IQ is a fixed-capacity issue queue. Entries wait until their pending
// source count reaches zero, then become selectable oldest-first.
// Select bandwidth and functional-unit availability are enforced by the
// caller (the pipeline's issue stage).
type IQ struct {
	capacity int
	occupied int
	ready    readyHeap
	stats    IQStats
}

// IQStats counts queue activity.
type IQStats struct {
	Inserted uint64
	Issued   uint64
	Removed  uint64
	// FullStalls counts rejected insertions.
	FullStalls uint64
}

// NewIQ builds an issue queue with the given capacity.
func NewIQ(capacity int) *IQ {
	if capacity < 1 {
		panic(fmt.Sprintf("queue: IQ capacity %d < 1", capacity))
	}
	return &IQ{capacity: capacity}
}

// Cap returns the queue capacity.
func (q *IQ) Cap() int { return q.capacity }

// Len returns the number of resident entries.
func (q *IQ) Len() int { return q.occupied }

// Free returns the number of available entries.
func (q *IQ) Free() int { return q.capacity - q.occupied }

// Full reports whether the queue has no free entry.
func (q *IQ) Full() bool { return q.occupied >= q.capacity }

// ReadyCount returns the number of selectable entries.
func (q *IQ) ReadyCount() int { return q.ready.Len() }

// Insert adds an instruction with the given number of not-yet-ready
// sources. It returns nil when the queue is full.
func (q *IQ) Insert(seq uint64, pendingSources int, payload any) *IQEntry {
	if q.Full() {
		q.stats.FullStalls++
		return nil
	}
	if pendingSources < 0 {
		panic(fmt.Sprintf("queue: negative pending count %d", pendingSources))
	}
	e := &IQEntry{Seq: seq, Payload: payload, pending: pendingSources, heapIdx: -1, resident: true, q: q}
	q.occupied++
	q.stats.Inserted++
	if e.pending == 0 {
		heap.Push(&q.ready, e)
	}
	return e
}

// Wake signals that one of e's source operands became ready. When the
// last source arrives the entry joins the ready set.
func (q *IQ) Wake(e *IQEntry) {
	if !e.resident || e.q != q {
		panic("queue: Wake on non-resident entry")
	}
	if e.pending <= 0 {
		panic(fmt.Sprintf("queue: wake underflow on seq %d", e.Seq))
	}
	e.pending--
	if e.pending == 0 {
		heap.Push(&q.ready, e)
	}
}

// PopReady removes and returns the oldest ready entry, or nil when no
// entry is selectable. The entry leaves the queue (its slot is freed);
// the caller has committed to issuing it.
func (q *IQ) PopReady() *IQEntry {
	if q.ready.Len() == 0 {
		return nil
	}
	e := heap.Pop(&q.ready).(*IQEntry)
	e.resident = false
	q.occupied--
	q.stats.Issued++
	return e
}

// PeekReady returns the oldest ready entry without removing it.
func (q *IQ) PeekReady() *IQEntry {
	if q.ready.Len() == 0 {
		return nil
	}
	return q.ready.entries[0]
}

// Unissue reinserts an entry popped by PopReady back into the ready set,
// used when issue fails on a structural hazard (all functional units
// busy) and the instruction must retry next cycle.
func (q *IQ) Unissue(e *IQEntry) {
	if e.resident {
		panic("queue: Unissue of resident entry")
	}
	e.resident = true
	q.occupied++
	q.stats.Issued--
	heap.Push(&q.ready, e)
}

// Remove deletes a resident entry regardless of readiness (squash, or a
// move to the SLIQ). It is a no-op for entries already gone.
func (q *IQ) Remove(e *IQEntry) {
	if !e.resident || e.q != q {
		return
	}
	if e.heapIdx >= 0 {
		heap.Remove(&q.ready, e.heapIdx)
	}
	e.resident = false
	q.occupied--
	q.stats.Removed++
}

// Resident reports whether e currently occupies a slot of this queue.
func (q *IQ) Resident(e *IQEntry) bool { return e != nil && e.resident && e.q == q }

// Stats returns a copy of the counters.
func (q *IQ) Stats() IQStats { return q.stats }

// readyHeap is a min-heap of ready entries ordered by Seq.
type readyHeap struct {
	entries []*IQEntry
}

func (h *readyHeap) Len() int { return len(h.entries) }
func (h *readyHeap) Less(i, j int) bool {
	return h.entries[i].Seq < h.entries[j].Seq
}
func (h *readyHeap) Swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.entries[i].heapIdx = i
	h.entries[j].heapIdx = j
}
func (h *readyHeap) Push(x any) {
	e := x.(*IQEntry)
	e.heapIdx = len(h.entries)
	h.entries = append(h.entries, e)
}
func (h *readyHeap) Pop() any {
	n := len(h.entries)
	e := h.entries[n-1]
	h.entries[n-1] = nil
	h.entries = h.entries[:n-1]
	e.heapIdx = -1
	return e
}
