package trace

import "fmt"

// MixWeights sets the iteration-level interleave ratio of the FP mix
// kernels. Each weight is the number of iterations of that kernel per
// scheduling round.
type MixWeights struct {
	Stream    int // unit-stride triad
	Strided   int // stride-8 triad (every load misses L2)
	Stencil   int
	Reduction int
	Blocked   int
	Cond      int // data-dependent branches off the fast index chain
	CondSlow  int // data-dependent branches off a loaded value
}

// DefaultWeights approximates the SPEC2000fp average the paper reports:
// ~35% loads of which roughly a quarter miss L2 (≈10% of all
// instructions, Figure 12's "Long Lat. Loads" band), ~9% stores, ~30% FP
// arithmetic, and a low branch misprediction rate.
func DefaultWeights() MixWeights {
	return MixWeights{Stream: 3, Strided: 2, Stencil: 2, Reduction: 2, Blocked: 2, Cond: 12, CondSlow: 4}
}

// Validate reports nonsensical weights.
func (w MixWeights) Validate() error {
	total := w.Stream + w.Strided + w.Stencil + w.Reduction + w.Blocked + w.Cond + w.CondSlow
	if total <= 0 {
		return fmt.Errorf("trace: mix weights sum to %d", total)
	}
	for _, v := range []int{w.Stream, w.Strided, w.Stencil, w.Reduction, w.Blocked, w.Cond, w.CondSlow} {
		if v < 0 {
			return fmt.Errorf("trace: negative mix weight in %+v", w)
		}
	}
	return nil
}

// FPMix generates the paper's headline workload: a deterministic
// weighted interleave of the FP kernels with DefaultWeights.
func FPMix(n int, seed uint64) *Trace {
	return Mix(n, seed, DefaultWeights())
}

// Mix generates a weighted interleave of the FP kernels. Each kernel
// instance owns a disjoint register window and address region, so
// interleaving changes scheduling pressure without creating false
// cross-kernel dependences.
func Mix(n int, seed uint64, w MixWeights) *Trace {
	round, err := mixRound(seed, w)
	if err != nil {
		panic(err)
	}
	b := newBuilder(n)
	for b.len() < n {
		for _, src := range round {
			src.emitIter(b)
			if b.len() >= n {
				break
			}
		}
	}
	b.insts = b.insts[:n]
	tr := b.trace("fpmix")
	// Only the default mix has a declarative recipe; custom weights
	// produce an anonymous (unfingerprintable) trace.
	if w == DefaultWeights() {
		tr = tr.withRecipe(Recipe{Kernel: KernelFPMix, N: n, Seed: seed})
	}
	return tr
}

// mixRound builds the kernel instances and the one scheduling round Mix
// and the streaming generator share. All instances draw from one PRNG in
// round emission order, so replaying whole rounds reproduces the exact
// materialised sequence (truncation in Mix only drops a suffix).
func mixRound(seed uint64, w MixWeights) ([]iterSource, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	rng := newPRNG(seed)

	// Disjoint register windows: 4 integer registers per instance, and
	// FP budgets matching each kernel's needs (reduction uses 8).
	win := func(i, fpBase, fpN int) regWindow {
		return regWindow{intBase: 4 * i, intN: 4, fpBase: fpBase, fpN: fpN}
	}
	stream := newStreamKernel(win(0, 0, 6), 0, 0x1000, 1, rng)
	strided := newStreamKernel(win(1, 6, 6), 1, 0x2000, 8, rng)
	stencil := newStencilKernel(win(2, 12, 7), 2, 0x3000)
	reduction := newReductionKernel(win(3, 19, 7), 3, 0x4000)
	blocked := newBlockedKernel(win(4, 26, 5), 4, 0x5000)
	cond := newCondKernel(win(5, 0, 1), 5, 0x6000, 0.9, false, rng)
	condSlow := newCondKernel(win(6, 0, 1), 6, 0x7000, 0.9, true, rng)

	type slot struct {
		src    iterSource
		weight int
	}
	slots := []slot{
		{stream, w.Stream},
		{strided, w.Strided},
		{stencil, w.Stencil},
		{reduction, w.Reduction},
		{blocked, w.Blocked},
		{cond, w.Cond},
		{condSlow, w.CondSlow},
	}

	// Build one scheduling round: weight[i] iterations of kernel i,
	// interleaved by largest-remaining-credit so the round mixes finely
	// instead of running each kernel in a burst.
	var round []iterSource
	credits := make([]int, len(slots))
	remaining := 0
	for i, s := range slots {
		credits[i] = s.weight
		remaining += s.weight
	}
	deficit := make([]int, len(slots))
	for remaining > 0 {
		best := -1
		for i := range slots {
			if credits[i] == 0 {
				continue
			}
			deficit[i] += slots[i].weight
			if best < 0 || deficit[i] > deficit[best] {
				best = i
			}
		}
		deficit[best] = 0
		credits[best]--
		remaining--
		round = append(round, slots[best].src)
	}
	return round, nil
}
