// Package mem models the memory hierarchy of the simulated processor:
// set-associative LRU caches, an MSHR-style miss tracker that merges
// requests to in-flight lines, and the main-memory latency model.
//
// Timing contract: all methods take and return absolute cycle numbers.
// The hierarchy is a passive timing oracle — the pipeline asks "if this
// load starts now, when is its value ready, and did it miss in L2?" and
// the hierarchy updates its replacement state as a side effect.
package mem

import (
	"fmt"

	"repro/internal/config"
)

// CacheStats counts accesses for one cache level.
type CacheStats struct {
	Accesses uint64
	Misses   uint64
}

// Hits returns the number of hits.
func (s CacheStats) Hits() uint64 { return s.Accesses - s.Misses }

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative cache with true-LRU replacement. It tracks
// only tags (the simulator never needs data values from memory).
type Cache struct {
	lineShift uint
	setMask   uint64
	latency   int
	assoc     int
	// ways holds every set's resident tags in one flat backing array:
	// set s occupies ways[s*assoc : s*assoc+live[s]] in LRU order
	// (index 0 is the most recently used way). A flat array keeps the
	// per-access lookup a single indexed load and makes Clone a pair of
	// copy calls instead of a per-set allocation walk.
	ways []uint64
	// live[s] is the number of resident ways in set s.
	live  []int32
	stats CacheStats
}

// NewCache builds a cache from its configuration. It panics on invalid
// geometry; validate configurations with config.CacheConfig.Validate first.
func NewCache(cc config.CacheConfig) *Cache {
	if err := cc.Validate(); err != nil {
		panic(err)
	}
	sets := cc.Sets()
	return &Cache{
		lineShift: uint(log2(cc.LineBytes)),
		setMask:   uint64(sets - 1),
		latency:   cc.LatencyCycles,
		assoc:     cc.Assoc,
		ways:      make([]uint64, sets*cc.Assoc),
		live:      make([]int32, sets),
	}
}

func log2(v int) int {
	n := 0
	for 1<<n < v {
		n++
	}
	if 1<<n != v {
		panic(fmt.Sprintf("mem: %d is not a power of two", v))
	}
	return n
}

// Latency returns the hit latency in cycles.
func (c *Cache) Latency() int { return c.latency }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift << c.lineShift }

// Access looks up addr, updates LRU state and statistics, and reports
// whether it hit. On a miss the line is allocated (fetch-on-miss,
// write-allocate) evicting the LRU way if needed.
func (c *Cache) Access(addr uint64) bool {
	c.stats.Accesses++
	if c.touch(addr >> c.lineShift) {
		return true
	}
	c.stats.Misses++
	return false
}

// accessQuiet performs a full access (LRU promotion on hit, allocation
// on miss) without counting statistics; warm-up replay uses it.
func (c *Cache) accessQuiet(addr uint64) {
	c.touch(addr >> c.lineShift)
}

// touch looks up tag, promoting it to MRU on hit; on a miss it
// allocates the line (evicting LRU if needed) and reports false.
func (c *Cache) touch(tag uint64) bool {
	si := int(tag & c.setMask)
	base := si * c.assoc
	n := int(c.live[si])
	set := c.ways[base : base+n]
	for i, t := range set {
		if t == tag {
			// Move to front (most recently used). Hand-rolled shift:
			// sets are a handful of ways, below memmove's call cost.
			for k := i; k > 0; k-- {
				set[k] = set[k-1]
			}
			set[0] = tag
			return true
		}
	}
	if n < c.assoc {
		n++
		c.live[si] = int32(n)
		set = c.ways[base : base+n]
	}
	for k := n - 1; k > 0; k-- {
		set[k] = set[k-1]
	}
	set[0] = tag
	return false
}

// Probe reports whether addr is resident without updating LRU state or
// statistics. Tests and invariant checks use it.
func (c *Cache) Probe(addr uint64) bool {
	tag := addr >> c.lineShift
	si := int(tag & c.setMask)
	base := si * c.assoc
	for _, t := range c.ways[base : base+int(c.live[si])] {
		if t == tag {
			return true
		}
	}
	return false
}

// prime allocates addr's line as the MRU way if it is absent, without
// touching LRU order when it is already resident and without counting
// statistics; the instruction-path warm-up uses it.
func (c *Cache) prime(addr uint64) {
	if !c.Probe(addr) {
		c.insert(addr >> c.lineShift)
	}
}

// insert allocates tag as the MRU way of its set, evicting LRU if full.
func (c *Cache) insert(tag uint64) {
	si := int(tag & c.setMask)
	base := si * c.assoc
	n := int(c.live[si])
	if n < c.assoc {
		n++
		c.live[si] = int32(n)
	}
	set := c.ways[base : base+n]
	for k := n - 1; k > 0; k-- {
		set[k] = set[k-1]
	}
	set[0] = tag
}

// Clone returns a deep copy sharing no mutable state with c.
func (c *Cache) Clone() *Cache {
	nc := *c
	nc.ways = make([]uint64, len(c.ways))
	copy(nc.ways, c.ways)
	nc.live = make([]int32, len(c.live))
	copy(nc.live, c.live)
	return &nc
}

// adoptState copies donor's resident lines and LRU order into c,
// leaving c's own latency and statistics untouched. Geometry must match
// (Hierarchy.Fork checks it via WarmKey equality before calling).
func (c *Cache) adoptState(donor *Cache) {
	copy(c.ways, donor.ways)
	copy(c.live, donor.live)
}

// Stats returns a copy of the access counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Reset empties the cache and zeroes its statistics, reusing the
// backing arrays.
func (c *Cache) Reset() {
	clear(c.live)
	c.stats = CacheStats{}
}
