package fleet

import (
	"net/http"

	"repro/internal/service"
)

// NewHandler returns the coordinator's full HTTP surface: the batch API
// (identical to a single worker's, by construction — both are
// service.NewAPIHandler over a service.BatchAPI) plus coordinator
// metrics, readiness and drain.
func NewHandler(c *Coordinator) http.Handler {
	return service.NewAPIHandler(c, service.HandlerOptions{
		Metrics:    c.WriteMetrics,
		Ready:      c.Ready,
		StartDrain: c.StartDrain,
	})
}
