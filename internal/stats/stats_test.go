package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestRetireClassNames(t *testing.T) {
	want := map[RetireClass]string{
		RetireMoved:        "Moved",
		RetireFinished:     "Finished",
		RetireShortLat:     "Short Lat.",
		RetireFinishedLoad: "Finished Loads",
		RetireLongLatLoad:  "Long Lat. Loads",
		RetireStore:        "Stores",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), s)
		}
	}
}

func TestBreakdown(t *testing.T) {
	var b Breakdown
	b[RetireMoved] = 30
	b[RetireStore] = 10
	b[RetireFinished] = 60
	if b.Total() != 100 {
		t.Fatalf("total = %d", b.Total())
	}
	if got := b.Fraction(RetireMoved); got != 0.3 {
		t.Fatalf("fraction = %v", got)
	}
	if (Breakdown{}).Fraction(RetireMoved) != 0 {
		t.Fatal("empty breakdown must report 0")
	}
	if s := b.String(); !strings.Contains(s, "Moved 30.0%") {
		t.Fatalf("rendering: %q", s)
	}
}

func TestOccupancyPercentiles(t *testing.T) {
	o := NewOccupancy(100)
	// 100 samples: occupancy i at cycle i.
	for i := 0; i <= 99; i++ {
		o.Sample(i, i/10, i/20)
	}
	if o.Samples() != 100 {
		t.Fatalf("samples = %d", o.Samples())
	}
	if got := o.Percentile(0.25); got != 24 {
		t.Errorf("p25 = %d, want 24", got)
	}
	if got := o.Percentile(0.50); got != 49 {
		t.Errorf("p50 = %d, want 49", got)
	}
	if got := o.Percentile(1.0); got != 99 {
		t.Errorf("p100 = %d, want 99", got)
	}
	if got := o.Mean(); got != 49.5 {
		t.Errorf("mean = %v, want 49.5", got)
	}
	if got := o.Max(); got != 99 {
		t.Errorf("max = %d", got)
	}
}

func TestOccupancyLiveAtPercentile(t *testing.T) {
	o := NewOccupancy(10)
	o.Sample(1, 4, 2)
	o.Sample(2, 8, 4)
	o.Sample(10, 100, 100)
	long, short := o.LiveAtPercentile(0.67)
	// Cycles with occupancy <= p67 (=2): averages of (4,8) and (2,4).
	if long != 6 || short != 3 {
		t.Fatalf("live = (%v, %v), want (6, 3)", long, short)
	}
}

func TestOccupancyClamping(t *testing.T) {
	o := NewOccupancy(4)
	o.Sample(100, 0, 0) // clamps to the top bucket
	o.Sample(-5, 0, 0)  // clamps to zero
	if o.Percentile(1.0) != 4 {
		t.Fatal("overflow sample must clamp to capacity")
	}
	if o.Samples() != 2 {
		t.Fatal("both samples must count")
	}
}

func TestOccupancyMerge(t *testing.T) {
	a, b := NewOccupancy(10), NewOccupancy(10)
	a.Sample(1, 1, 0)
	b.Sample(3, 0, 1)
	b.MergeInto(a)
	if a.Samples() != 2 {
		t.Fatal("merge must add samples")
	}
	if a.Percentile(1.0) != 3 {
		t.Fatal("merged distribution wrong")
	}
}

func TestOccupancyEmpty(t *testing.T) {
	o := NewOccupancy(10)
	if o.Percentile(0.5) != 0 || o.Mean() != 0 {
		t.Fatal("empty tracker must report zeros")
	}
	long, short := o.LiveAtPercentile(0.5)
	if long != 0 || short != 0 {
		t.Fatal("empty tracker live counts must be zero")
	}
}

// Percentile is monotonic in p.
func TestQuickPercentileMonotonic(t *testing.T) {
	f := func(samples []uint8, p1, p2 uint8) bool {
		o := NewOccupancy(256)
		for _, s := range samples {
			o.Sample(int(s), 0, 0)
		}
		a, b := float64(p1%101)/100, float64(p2%101)/100
		if a > b {
			a, b = b, a
		}
		return o.Percentile(a) <= o.Percentile(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOccupancyJSONRoundTrip(t *testing.T) {
	o := NewOccupancy(16)
	o.Sample(3, 2, 1)
	o.Sample(7, 5, 0)
	o.Sample(7, 1, 1)
	data, err := json.Marshal(o)
	if err != nil {
		t.Fatal(err)
	}
	back := &Occupancy{}
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if back.Samples() != o.Samples() || back.Mean() != o.Mean() || back.Max() != o.Max() {
		t.Fatalf("derived fields lost: samples %d/%d mean %v/%v max %d/%d",
			back.Samples(), o.Samples(), back.Mean(), o.Mean(), back.Max(), o.Max())
	}
	if back.Percentile(0.5) != o.Percentile(0.5) {
		t.Fatal("percentiles differ after round trip")
	}
	long, short := back.LiveAtPercentile(0.9)
	wlong, wshort := o.LiveAtPercentile(0.9)
	if long != wlong || short != wshort {
		t.Fatal("live counts differ after round trip")
	}
}

func TestOccupancyJSONMalformed(t *testing.T) {
	back := &Occupancy{}
	if err := json.Unmarshal([]byte(`{"count":[1,2],"sum_long":[1],"sum_short":[1,2]}`), back); err == nil {
		t.Fatal("mismatched histogram lengths must fail")
	}
}

func TestResultsJSONRoundTrip(t *testing.T) {
	o := NewOccupancy(8)
	o.Sample(2, 1, 0)
	r := Results{
		Name: "checkpoint/fpmix", Cycles: 1000, Committed: 2500,
		Fetched: 3000, Issued: 2600, Rollbacks: 3, SLIQMoved: 40,
		Occ: o,
	}
	r.Retire[RetireMoved] = 7
	r.Branch.Predictions = 100
	r.Branch.Mispredicts = 4
	r.Mem.L2.Accesses = 50
	r.Mem.L2.Misses = 10

	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Results
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.IPC() != r.IPC() || back.Branch.MispredictRate() != r.Branch.MispredictRate() {
		t.Fatal("derived metrics differ after round trip")
	}
	if back.Occ == nil || back.Occ.Samples() != 1 {
		t.Fatal("occupancy lost in round trip")
	}
	back.Occ, r.Occ = nil, nil
	if !reflect.DeepEqual(back, r) {
		t.Fatalf("round trip changed results:\n%+v\n%+v", back, r)
	}
}

func TestResultsMerge(t *testing.T) {
	oa := NewOccupancy(8)
	oa.Sample(2, 1, 0)
	a := Results{Name: "a", Cycles: 100, Committed: 200, MeanInflight: 10, MaxInflight: 20, Occ: oa}
	a.Retire[RetireStore] = 5
	a.Branch.Predictions = 10

	ob := NewOccupancy(16)
	ob.Sample(12, 0, 1)
	b := Results{Name: "b", Cycles: 300, Committed: 300, MeanInflight: 30, MaxInflight: 25, Occ: ob}
	b.Retire[RetireStore] = 7
	b.Branch.Predictions = 30

	a.Merge(b)
	if a.Name != "a" {
		t.Errorf("merge must keep the receiver's name, got %q", a.Name)
	}
	if a.Cycles != 400 || a.Committed != 500 {
		t.Errorf("counters: cycles=%d committed=%d", a.Cycles, a.Committed)
	}
	if a.IPC() != 500.0/400.0 {
		t.Errorf("merged IPC = %v", a.IPC())
	}
	// Cycle-weighted mean: (10*100 + 30*300) / 400 = 25.
	if math.Abs(a.MeanInflight-25) > 1e-9 {
		t.Errorf("weighted mean in-flight = %v, want 25", a.MeanInflight)
	}
	if a.MaxInflight != 25 {
		t.Errorf("max in-flight = %d, want 25", a.MaxInflight)
	}
	if a.Retire[RetireStore] != 12 || a.Branch.Predictions != 40 {
		t.Error("breakdown or branch counters not summed")
	}
	// The occupancy grows to the larger histogram and holds both samples.
	if a.Occ.Samples() != 2 || a.Occ.Max() != 12 {
		t.Errorf("merged occupancy: samples=%d max=%d", a.Occ.Samples(), a.Occ.Max())
	}

	// Merging into a result without occupancy adopts the other's.
	c := Results{Cycles: 50, Committed: 10}
	c.Merge(a)
	if c.Occ == nil || c.Occ.Samples() != 2 {
		t.Error("merge must adopt occupancy when the receiver has none")
	}
	if c.Name != "a" {
		t.Errorf("empty name must adopt the other's, got %q", c.Name)
	}
}

// TestResultsMergeExhaustive guards Merge against new fields: every
// numeric field of Results (recursively) must be aggregated, so a
// counter added later without a Merge clause fails here instead of
// silently dropping out of suite aggregates. Fields that are not plain
// sums are listed explicitly.
func TestResultsMergeExhaustive(t *testing.T) {
	// Expected merged value when both inputs have every numeric field
	// set to 1: sums become 2; max stays 1; the cycle-weighted mean of
	// two equal values stays 1.
	special := map[string]float64{
		"MaxInflight":  1,
		"MeanInflight": 1,
		"LongestSkip":  1, // max across shards, not a sum
	}

	setOnes := func(r *Results) {
		var walk func(v reflect.Value)
		walk = func(v reflect.Value) {
			for i := 0; i < v.NumField(); i++ {
				f := v.Field(i)
				switch f.Kind() {
				case reflect.Struct:
					walk(f)
				case reflect.Array:
					for j := 0; j < f.Len(); j++ {
						f.Index(j).SetUint(1)
					}
				case reflect.Uint64:
					f.SetUint(1)
				case reflect.Int64, reflect.Int:
					f.SetInt(1)
				case reflect.Float64:
					f.SetFloat(1)
				}
			}
		}
		walk(reflect.ValueOf(r).Elem())
	}

	var a, b Results
	setOnes(&a)
	setOnes(&b)
	a.Merge(b)

	var check func(v reflect.Value, path string)
	check = func(v reflect.Value, path string) {
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			name := v.Type().Field(i).Name
			p := path + name
			want := 2.0
			if w, ok := special[p]; ok {
				want = w
			}
			switch f.Kind() {
			case reflect.Struct:
				check(f, p+".")
			case reflect.Array:
				for j := 0; j < f.Len(); j++ {
					if got := float64(f.Index(j).Uint()); got != want {
						t.Errorf("%s[%d] = %v after Merge, want %v (not aggregated?)", p, j, got, want)
					}
				}
			case reflect.Uint64:
				if got := float64(f.Uint()); got != want {
					t.Errorf("%s = %v after Merge, want %v (not aggregated?)", p, got, want)
				}
			case reflect.Int64, reflect.Int:
				if got := float64(f.Int()); got != want {
					t.Errorf("%s = %v after Merge, want %v (not aggregated?)", p, got, want)
				}
			case reflect.Float64:
				if got := f.Float(); got != want {
					t.Errorf("%s = %v after Merge, want %v (not aggregated?)", p, got, want)
				}
			}
		}
	}
	check(reflect.ValueOf(a), "")
}

func TestResultsDerived(t *testing.T) {
	r := Results{Cycles: 1000, Committed: 2500, Replayed: 250}
	if r.IPC() != 2.5 {
		t.Fatalf("IPC = %v", r.IPC())
	}
	if r.ReplayRate() != 0.1 {
		t.Fatalf("replay rate = %v", r.ReplayRate())
	}
	var zero Results
	if zero.IPC() != 0 || zero.ReplayRate() != 0 {
		t.Fatal("zero results must not divide by zero")
	}
	r.Name = "test"
	if s := r.String(); !strings.Contains(s, "IPC=2.500") {
		t.Fatalf("rendering: %q", s)
	}
}

func TestPolicyCountersJSONAndMerge(t *testing.T) {
	a := Results{Cycles: 10, Policy: map[string]uint64{"adaptive.low_confidence_branches": 3}}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Results
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Policy["adaptive.low_confidence_branches"] != 3 {
		t.Fatalf("policy counters lost in round trip: %+v", back.Policy)
	}
	// A nil map must be omitted entirely: results from policies without
	// extra counters keep their old wire shape.
	plain, err := json.Marshal(Results{Cycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(plain, []byte("Policy")) {
		t.Fatalf("nil policy map must be omitted: %s", plain)
	}

	// Merge sums per key (materialising the receiver's map on demand),
	// except max_-style metrics, which take the maximum: summing two
	// peak values would fabricate a burst no run ever observed.
	var c Results
	c.Merge(a)
	c.Merge(Results{Policy: map[string]uint64{
		"adaptive.low_confidence_branches": 2,
		"oracle.max_retire_burst":          40,
	}})
	c.Merge(Results{Policy: map[string]uint64{"oracle.max_retire_burst": 25}})
	if c.Policy["adaptive.low_confidence_branches"] != 5 {
		t.Fatalf("summed policy counter wrong: %+v", c.Policy)
	}
	if c.Policy["oracle.max_retire_burst"] != 40 {
		t.Fatalf("max-style policy counter must merge by maximum: %+v", c.Policy)
	}
}

// TestOccupancySampleN pins the clock skip's weighted sampling: n
// identical samples recorded at once must leave the histogram
// bit-identical to n Sample calls, including clamping and max tracking.
func TestOccupancySampleN(t *testing.T) {
	a, b := NewOccupancy(8), NewOccupancy(8)
	record := func(o *Occupancy, n uint64, inflight, long, short int) {
		for i := uint64(0); i < n; i++ {
			o.Sample(inflight, long, short)
		}
	}
	for _, s := range []struct {
		n                     uint64
		inflight, long, short int
	}{
		{3, 2, 1, 0},
		{0, 5, 0, 0},  // n=0 must record nothing
		{4, 12, 2, 3}, // clamps to the top bucket
		{1, -1, 0, 0}, // clamps below
		{2, 2, 0, 4},
	} {
		record(a, s.n, s.inflight, s.long, s.short)
		b.SampleN(s.n, s.inflight, s.long, s.short)
	}
	if a.Samples() != b.Samples() {
		t.Fatalf("samples: %d vs %d", a.Samples(), b.Samples())
	}
	if am, bm := a.Mean(), b.Mean(); am != bm {
		t.Fatalf("mean: %v vs %v", am, bm)
	}
	for _, p := range []float64{0.25, 0.5, 0.75, 0.95, 1} {
		if ap, bp := a.Percentile(p), b.Percentile(p); ap != bp {
			t.Fatalf("p%v: %d vs %d", p, ap, bp)
		}
	}
}

// TestSkipCountersOmittedWhenZero guards the cache-compatibility
// contract: a run that never skipped must serialise byte-identically to
// results recorded before the skip counters existed, so the daemon's
// content-addressed cache keeps validating old entries.
func TestSkipCountersOmittedWhenZero(t *testing.T) {
	var r Results
	r.Name = "x"
	r.Cycles = 10
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"SkippedCycles", "SkipEvents", "LongestSkip"} {
		if bytes.Contains(raw, []byte(field)) {
			t.Fatalf("zero %s must be omitted from JSON: %s", field, raw)
		}
	}
	r.SkippedCycles, r.SkipEvents, r.LongestSkip = 7, 2, 5
	raw, err = json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"SkippedCycles", "SkipEvents", "LongestSkip"} {
		if !bytes.Contains(raw, []byte(field)) {
			t.Fatalf("non-zero %s missing from JSON: %s", field, raw)
		}
	}
}

// TestSkipRate covers the derived metric.
func TestSkipRate(t *testing.T) {
	if got := (Results{}).SkipRate(); got != 0 {
		t.Fatalf("empty SkipRate = %v, want 0", got)
	}
	r := Results{Cycles: 200, SkippedCycles: 150}
	if got := r.SkipRate(); got != 0.75 {
		t.Fatalf("SkipRate = %v, want 0.75", got)
	}
}
