package faults

import (
	"sync"
	"time"
)

// Breaker is a circuit breaker with a probation-style half-open state:
//
//	closed     — operations flow; consecutive failures are counted.
//	open       — Threshold consecutive failures trip the breaker;
//	             Allow refuses everything until Cooldown elapses.
//	half-open  — after Cooldown, Allow admits traffic again on
//	             probation: the first failure re-opens (fresh
//	             cooldown), the first success closes.
//
// Unlike token-based half-open designs, Allow has no side effects — it
// can be called from metrics rendering and readiness probes without
// consuming a probe slot. The cost is that several operations may race
// into the half-open window; callers here bound that with their own
// retry budgets.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the
	// breaker. <=0 means 3.
	Threshold int
	// Cooldown is how long the breaker stays open before probation.
	// <=0 means 5s.
	Cooldown time.Duration

	mu        sync.Mutex
	fails     int
	open      bool
	openUntil time.Time
	now       func() time.Time // test seam; nil means time.Now
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold <= 0 {
		return 3
	}
	return b.Threshold
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 5 * time.Second
	}
	return b.Cooldown
}

// Allow reports whether an operation may proceed: true when closed or
// when the open cooldown has elapsed (half-open probation). It never
// mutates state.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.open || !b.clock().Before(b.openUntil)
}

// Success records a successful operation: the breaker closes and the
// failure count resets, whatever state it was in.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.open = false
	b.fails = 0
}

// Failure records a failed operation and returns true exactly when
// this failure transitions the breaker from closed to open — callers
// use the transition to count "node failed" events once per outage
// rather than once per request. Failures while open (including
// half-open probation) refresh the cooldown.
func (b *Breaker) Failure() (opened bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.open {
		b.openUntil = b.clock().Add(b.cooldown())
		return false
	}
	if b.fails >= b.threshold() {
		b.open = true
		b.openUntil = b.clock().Add(b.cooldown())
		return true
	}
	return false
}

// State names the current state for logs and metrics: "closed",
// "open", or "half-open".
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case !b.open:
		return "closed"
	case b.clock().Before(b.openUntil):
		return "open"
	default:
		return "half-open"
	}
}
