package service

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
)

// DefaultCacheEntries is the in-memory tier's default capacity.
const DefaultCacheEntries = 4096

// Disk entries are sealed with a checksum trailer so bit rot (or a
// chaos injector) can never serve damaged result bytes as a hit:
//
//	<result JSON>\nooosum1:<64 hex chars of sha256(result JSON)>\n
//
// The trailer rides the same file (not a sidecar) so the
// temp-and-rename write keeps payload and checksum atomic together.
const (
	sumMagic   = "\nooosum1:"
	sumLen     = len(sumMagic) + sha256.Size*2 + 1 // + trailing newline
	sumDirName = "quarantine"
)

// sealEntry appends the checksum trailer to a copy of raw.
func sealEntry(raw []byte) []byte {
	sum := sha256.Sum256(raw)
	out := make([]byte, 0, len(raw)+sumLen)
	out = append(out, raw...)
	out = append(out, sumMagic...)
	out = append(out, hex.EncodeToString(sum[:])...)
	return append(out, '\n')
}

// openEntry verifies and strips the trailer, returning the payload.
// Anything that fails verification — including legacy trailer-less
// files — reports !ok.
func openEntry(entry []byte) (payload []byte, ok bool) {
	if len(entry) < sumLen || entry[len(entry)-1] != '\n' {
		return nil, false
	}
	cut := len(entry) - sumLen
	if !bytes.Equal(entry[cut:cut+len(sumMagic)], []byte(sumMagic)) {
		return nil, false
	}
	payload = entry[:cut]
	want := string(entry[cut+len(sumMagic) : len(entry)-1])
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != want {
		return nil, false
	}
	return payload, true
}

// Cache is the two-tier content-addressed result store: an in-memory
// LRU over the marshalled stats.Results of recently touched points, and
// an optional on-disk JSON store holding every point ever computed.
// Keys are sim.Fingerprint addresses, so a hit is exactly "this point
// was simulated before, under identical semantics" — simulation is
// deterministic, and the cache returns the stored bytes verbatim, so a
// hit is byte-identical to recomputation.
//
// Values are raw JSON messages rather than decoded structs: the HTTP
// layer streams them without re-encoding, and byte-identity is trivial
// to preserve. Callers must treat returned messages as immutable.
//
// Disk layout under dir (see NewCache): one file per point at
// <dir>/<fp[:2]>/<fp>.json, sharded by fingerprint prefix so no single
// directory grows unboundedly. Files are written via temp-and-rename,
// so a crashed daemon never leaves a torn entry behind, and sealed
// with a checksum trailer verified on every disk read. An entry that
// fails verification is never served: it is moved to
// <dir>/quarantine/<fp>.json for post-mortem, the quarantined counter
// (exported as ooosim_cache_quarantined_total) is bumped, and the read
// reports a miss so the point recomputes.
type Cache struct {
	dir  string
	fsys faults.FS

	quarantined atomic.Uint64

	mu    sync.Mutex
	cap   int
	lru   *list.List // of *cacheItem; front = most recently used
	items map[string]*list.Element
}

type cacheItem struct {
	key string
	raw json.RawMessage
}

// NewCache builds a cache whose memory tier holds up to memEntries
// results (<= 0 uses DefaultCacheEntries). dir is the disk tier's root;
// empty disables the disk tier (memory-only, evicted results are
// recomputed on next miss).
func NewCache(memEntries int, dir string) (*Cache, error) {
	return NewCacheFS(memEntries, dir, faults.OSFS{})
}

// NewCacheFS is NewCache with the disk tier's filesystem injectable —
// chaos runs pass a faults.ChaosFS so reads and writes can be failed
// or corrupted on a deterministic schedule.
func NewCacheFS(memEntries int, dir string, fsys faults.FS) (*Cache, error) {
	if memEntries <= 0 {
		memEntries = DefaultCacheEntries
	}
	if fsys == nil {
		fsys = faults.OSFS{}
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
	}
	return &Cache{
		dir:   dir,
		fsys:  fsys,
		cap:   memEntries,
		lru:   list.New(),
		items: map[string]*list.Element{},
	}, nil
}

// Get returns the stored result bytes for the fingerprint, promoting a
// disk hit into the memory tier. Disk entries failing checksum
// verification are quarantined and reported as misses.
func (c *Cache) Get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	if e, ok := c.items[key]; ok {
		c.lru.MoveToFront(e)
		raw := e.Value.(*cacheItem).raw
		c.mu.Unlock()
		return raw, true
	}
	c.mu.Unlock()

	if c.dir == "" {
		return nil, false
	}
	entry, err := c.fsys.ReadFile(c.path(key))
	if err != nil {
		// A missing file is the common miss; a read error degrades to a
		// miss too — the point just recomputes.
		return nil, false
	}
	raw, ok := openEntry(entry)
	if !ok {
		c.quarantine(key)
		return nil, false
	}
	c.putMem(key, raw)
	return raw, true
}

// quarantine moves a verification-failed entry out of the serving tree
// and counts it. The move is best-effort: even if it fails, the entry
// was already refused, and the eventual recompute's Put overwrites it.
func (c *Cache) quarantine(key string) {
	c.quarantined.Add(1)
	qdir := filepath.Join(c.dir, sumDirName)
	if err := c.fsys.MkdirAll(qdir, 0o755); err != nil {
		return
	}
	c.fsys.Rename(c.path(key), filepath.Join(qdir, key+".json"))
}

// Quarantined returns how many disk entries failed checksum
// verification and were pulled from the serving tree.
func (c *Cache) Quarantined() uint64 { return c.quarantined.Load() }

// Put stores a computed result under its fingerprint in both tiers.
func (c *Cache) Put(key string, raw json.RawMessage) error {
	c.putMem(key, raw)
	if c.dir == "" {
		return nil
	}
	path := c.path(key)
	if err := c.fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("service: cache put: %w", err)
	}
	if err := c.fsys.WriteFile(path, sealEntry(raw), 0o644); err != nil {
		return fmt.Errorf("service: cache put: %w", err)
	}
	return nil
}

// MemLen returns the number of entries resident in the memory tier.
func (c *Cache) MemLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

func (c *Cache) putMem(key string, raw json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		c.lru.MoveToFront(e)
		e.Value.(*cacheItem).raw = raw
		return
	}
	c.items[key] = c.lru.PushFront(&cacheItem{key: key, raw: raw})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheItem).key)
	}
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}
