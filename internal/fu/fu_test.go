package fu

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
)

func pool() *Pool { return NewPool(config.Default()) }

func TestClassFor(t *testing.T) {
	cases := map[isa.Op]Class{
		isa.IntAlu: ClassIntAlu,
		isa.IntMul: ClassIntMulDiv,
		isa.IntDiv: ClassIntMulDiv,
		isa.FPAlu:  ClassFP,
		isa.Load:   ClassIntAlu,
		isa.Store:  ClassIntAlu,
		isa.Branch: ClassIntAlu,
		isa.Nop:    ClassIntAlu,
	}
	for op, want := range cases {
		if got := ClassFor(op); got != want {
			t.Errorf("ClassFor(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestLatencies(t *testing.T) {
	p := pool()
	cases := map[isa.Op]int64{
		isa.IntAlu: 1, isa.IntMul: 3, isa.IntDiv: 20, isa.FPAlu: 2,
	}
	for op, want := range cases {
		if got := p.Latency(op); got != want {
			t.Errorf("Latency(%v) = %d, want %d", op, got, want)
		}
	}
}

func TestPipelinedIssue(t *testing.T) {
	p := pool()
	// 4 FP units, repeat 1: four issues per cycle succeed, the fifth
	// fails (structural hazard).
	for i := 0; i < 4; i++ {
		done, ok := p.TryIssue(isa.FPAlu, 10)
		if !ok || done != 12 {
			t.Fatalf("fp issue %d: done=%d ok=%v", i, done, ok)
		}
	}
	if _, ok := p.TryIssue(isa.FPAlu, 10); ok {
		t.Fatal("fifth FP issue in one cycle must fail")
	}
	// Next cycle all units are free again (fully pipelined).
	if _, ok := p.TryIssue(isa.FPAlu, 11); !ok {
		t.Fatal("pipelined unit must accept next cycle")
	}
	st := p.Stats()
	if st.Issued[ClassFP] != 5 || st.StructHaz[ClassFP] != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestUnpipelinedDivide(t *testing.T) {
	p := pool()
	// 2 divide units, latency/repeat 20/20.
	if done, ok := p.TryIssue(isa.IntDiv, 0); !ok || done != 20 {
		t.Fatalf("div 1: done=%d ok=%v", done, ok)
	}
	if done, ok := p.TryIssue(isa.IntDiv, 0); !ok || done != 20 {
		t.Fatalf("div 2: done=%d ok=%v", done, ok)
	}
	if _, ok := p.TryIssue(isa.IntDiv, 5); ok {
		t.Fatal("both dividers busy: issue must fail")
	}
	if _, ok := p.TryIssue(isa.IntDiv, 19); ok {
		t.Fatal("dividers still busy at cycle 19")
	}
	if _, ok := p.TryIssue(isa.IntDiv, 20); !ok {
		t.Fatal("dividers free at cycle 20")
	}
}

func TestMulDivShareUnits(t *testing.T) {
	p := pool()
	// A divide occupies the shared unit; multiplies contend with it.
	p.TryIssue(isa.IntDiv, 0)
	p.TryIssue(isa.IntDiv, 0)
	if _, ok := p.TryIssue(isa.IntMul, 1); ok {
		t.Fatal("multiply must contend with in-flight divides")
	}
	if done, ok := p.TryIssue(isa.IntMul, 20); !ok || done != 23 {
		t.Fatalf("multiply after divides: done=%d ok=%v", done, ok)
	}
}

func TestFlush(t *testing.T) {
	p := pool()
	p.TryIssue(isa.IntDiv, 0)
	p.TryIssue(isa.IntDiv, 0)
	p.Flush(3)
	if _, ok := p.TryIssue(isa.IntDiv, 3); !ok {
		t.Fatal("flush must release busy units")
	}
}

func TestUnits(t *testing.T) {
	p := pool()
	if p.Units(ClassIntAlu) != 4 || p.Units(ClassIntMulDiv) != 2 || p.Units(ClassFP) != 4 {
		t.Error("unit counts do not match Table 1")
	}
}

func TestClassString(t *testing.T) {
	if ClassIntAlu.String() != "intalu" || ClassFP.String() != "fp" {
		t.Error("class names wrong")
	}
	if Class(9).String() == "" {
		t.Error("unknown class must render")
	}
}
