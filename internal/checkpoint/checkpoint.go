// Package checkpoint implements the checkpoint table that replaces the
// reorder buffer in the paper's out-of-order commit processor (section 2).
//
// A checkpoint is taken immediately before an instruction chosen by the
// paper's heuristics (first branch after 64 instructions, unconditionally
// after 512 instructions, or after 64 stores). Every dispatched
// instruction is associated with the youngest checkpoint and counted in
// its pending counter; the counter is decremented as instructions finish.
// A checkpoint commits when its counter reaches zero, it is the oldest
// checkpoint, and its window has been closed by a younger checkpoint —
// "commit" then retires the whole window at once: deferred register
// frees are applied and the window's stores drain to memory.
package checkpoint

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/isa"
	"repro/internal/rename"
)

// Entry is one live checkpoint.
type Entry struct {
	// ID is a unique, monotonically increasing checkpoint identifier.
	ID uint64
	// StartSeq is the dynamic sequence number of the first instruction
	// of this checkpoint's window (the instruction the checkpoint was
	// taken before).
	StartSeq uint64
	// FetchPos is the trace position to resume fetching from after a
	// rollback to this checkpoint.
	FetchPos int64
	// Snap is the rename-table snapshot taken with this checkpoint. Its
	// captured Future Free set belongs to the *previous* window and is
	// released when the previous checkpoint commits.
	Snap rename.Snapshot
	// History is the branch-predictor global history at take time.
	History uint64
	// Pending counts associated instructions that have not finished.
	Pending int
	// Insts counts all instructions ever associated (statistics).
	Insts int
	// Stores counts associated store instructions.
	Stores int
}

// Stats counts checkpoint-table activity.
type Stats struct {
	Taken     uint64
	Committed uint64
	Rollbacks uint64
	// FullStalls counts take attempts rejected because the table was
	// full (fetch stalls until the oldest checkpoint commits).
	FullStalls uint64
}

// Policy holds the take-a-checkpoint heuristics of the paper.
type Policy struct {
	// BranchInterval: take at the first branch once this many
	// instructions have been associated with the youngest checkpoint.
	BranchInterval int
	// MaxInterval: take unconditionally after this many instructions.
	MaxInterval int
	// MaxStores: take after this many stores (LSQ deadlock avoidance).
	MaxStores int
}

// Table is the checkpoint table. Entries are ordered oldest first.
type Table struct {
	capacity int
	policy   Policy
	entries  []*Entry
	nextID   uint64
	stats    Stats

	// OnDiscard, when non-nil, receives every entry Rollback discards
	// (youngest first), after it has been unlinked: the owner recycles
	// the entry's snapshot backing there. Committed entries are returned
	// from Commit instead, so the caller releases those directly.
	OnDiscard func(*Entry)
}

// NewTable builds a checkpoint table with the given capacity and policy.
func NewTable(capacity int, policy Policy) *Table {
	if capacity < 1 {
		panic(fmt.Sprintf("checkpoint: capacity %d < 1", capacity))
	}
	if policy.BranchInterval < 1 || policy.MaxInterval < 1 || policy.MaxStores < 1 {
		panic(fmt.Sprintf("checkpoint: invalid policy %+v", policy))
	}
	return &Table{
		capacity: capacity,
		policy:   policy,
		entries:  make([]*Entry, 0, capacity),
	}
}

// Len returns the number of live checkpoints.
func (t *Table) Len() int { return len(t.entries) }

// Cap returns the table capacity.
func (t *Table) Cap() int { return t.capacity }

// Full reports whether no further checkpoint can be taken.
func (t *Table) Full() bool { return len(t.entries) >= t.capacity }

// Empty reports whether the table holds no checkpoint (only before the
// first instruction or after a total pipeline flush).
func (t *Table) Empty() bool { return len(t.entries) == 0 }

// Oldest returns the oldest live checkpoint, or nil.
func (t *Table) Oldest() *Entry {
	if len(t.entries) == 0 {
		return nil
	}
	return t.entries[0]
}

// Youngest returns the youngest live checkpoint (the one accumulating
// new instructions), or nil.
func (t *Table) Youngest() *Entry {
	if len(t.entries) == 0 {
		return nil
	}
	return t.entries[len(t.entries)-1]
}

// Entries returns the live checkpoints, oldest first. The returned slice
// must not be modified.
func (t *Table) Entries() []*Entry { return t.entries }

// ShouldTake applies the paper's heuristics to the instruction about to
// be dispatched and reports whether a checkpoint must be taken before
// it. It must be called before Associate for that instruction. An empty
// table always requires a checkpoint ("there must always exist a
// checkpoint for our mechanism to work").
func (t *Table) ShouldTake(op isa.Op) bool {
	y := t.Youngest()
	if y == nil {
		return true
	}
	switch {
	case y.Insts >= t.policy.MaxInterval:
		return true
	case op == isa.Branch && y.Insts >= t.policy.BranchInterval:
		return true
	case op == isa.Store && y.Stores >= t.policy.MaxStores:
		return true
	}
	return false
}

// Take creates a new (youngest) checkpoint. It returns nil and counts a
// full-stall when the table is at capacity; fetch must stall and retry.
func (t *Table) Take(startSeq uint64, fetchPos int64, snap rename.Snapshot, history uint64) *Entry {
	if t.Full() {
		t.stats.FullStalls++
		return nil
	}
	e := &Entry{
		ID:       t.nextID,
		StartSeq: startSeq,
		FetchPos: fetchPos,
		Snap:     snap,
		History:  history,
	}
	t.nextID++
	t.entries = append(t.entries, e)
	t.stats.Taken++
	return e
}

// Associate counts a newly dispatched instruction against checkpoint e.
func (t *Table) Associate(e *Entry, op isa.Op) {
	e.Pending++
	e.Insts++
	if op == isa.Store {
		e.Stores++
	}
}

// Finished records that an instruction associated with e has completed
// execution.
func (t *Table) Finished(e *Entry) {
	if e.Pending <= 0 {
		panic(fmt.Sprintf("checkpoint: pending counter underflow on checkpoint %d", e.ID))
	}
	e.Pending--
}

// Squashed removes a still-pending instruction from e's accounting
// during a partial squash (pseudo-ROB branch recovery removes younger
// instructions without discarding their checkpoint).
func (t *Table) Squashed(e *Entry, op isa.Op) {
	t.Finished(e)
	e.Insts--
	if op == isa.Store {
		e.Stores--
	}
}

// SquashedDone removes an already-finished instruction from e's
// accounting during a squash (its pending count was decremented when it
// completed).
func (t *Table) SquashedDone(e *Entry, op isa.Op) {
	e.Insts--
	if e.Insts < 0 {
		panic(fmt.Sprintf("checkpoint: instruction count underflow on checkpoint %d", e.ID))
	}
	if op == isa.Store {
		e.Stores--
	}
}

// CanCommit reports whether the oldest checkpoint is ready to commit:
// all of its window's instructions have finished and the window has been
// closed by a younger checkpoint.
func (t *Table) CanCommit() bool {
	return len(t.entries) >= 2 && t.entries[0].Pending == 0
}

// Commit retires the oldest checkpoint and returns it together with the
// Future Free set to release (captured by the next checkpoint's
// snapshot) and the window-end sequence number (the next checkpoint's
// StartSeq), which bounds the stores to drain. It panics if CanCommit is
// false.
func (t *Table) Commit() (e *Entry, futureFree *bitset.Set, endSeq uint64) {
	if !t.CanCommit() {
		panic("checkpoint: Commit called while not committable")
	}
	e = t.entries[0]
	next := t.entries[1]
	copy(t.entries, t.entries[1:])
	t.entries[len(t.entries)-1] = nil
	t.entries = t.entries[:len(t.entries)-1]
	t.stats.Committed++
	return e, next.Snap.FutureFree(), next.StartSeq
}

// Rollback discards every checkpoint younger than target and reopens
// target's window (its counters reset: the whole window is squashed and
// will be re-fetched). It returns the captured Future Free sets of the
// still-live checkpoints younger than the oldest (the pending deferred
// frees rename.Table.Rollback needs to reconstruct the free list).
// Target must be live.
func (t *Table) Rollback(target *Entry) (pendingFree []*bitset.Set) {
	idx := -1
	for i, e := range t.entries {
		if e == target {
			idx = i
			break
		}
	}
	if idx < 0 {
		panic(fmt.Sprintf("checkpoint: rollback target %d not live", target.ID))
	}
	for i := len(t.entries) - 1; i > idx; i-- {
		if t.OnDiscard != nil {
			t.OnDiscard(t.entries[i])
		}
		t.entries[i] = nil
	}
	t.entries = t.entries[:idx+1]
	target.Pending = 0
	target.Insts = 0
	target.Stores = 0
	t.stats.Rollbacks++

	for i := 1; i <= idx; i++ {
		pendingFree = append(pendingFree, t.entries[i].Snap.FutureFree())
	}
	return pendingFree
}

// PendingFrees returns the captured Future Free sets of all live
// checkpoints except the oldest (deferred frees not yet applied).
func (t *Table) PendingFrees() []*bitset.Set {
	var out []*bitset.Set
	for i := 1; i < len(t.entries); i++ {
		out = append(out, t.entries[i].Snap.FutureFree())
	}
	return out
}

// Stats returns a copy of the activity counters.
func (t *Table) Stats() Stats { return t.stats }

// CheckInvariants validates internal consistency for tests.
func (t *Table) CheckInvariants() error {
	if len(t.entries) > t.capacity {
		return fmt.Errorf("checkpoint: %d entries exceed capacity %d", len(t.entries), t.capacity)
	}
	for i := 1; i < len(t.entries); i++ {
		prev, cur := t.entries[i-1], t.entries[i]
		if cur.ID <= prev.ID {
			return fmt.Errorf("checkpoint: IDs not increasing (%d then %d)", prev.ID, cur.ID)
		}
		if cur.StartSeq < prev.StartSeq {
			return fmt.Errorf("checkpoint: StartSeq not monotonic (%d then %d)", prev.StartSeq, cur.StartSeq)
		}
	}
	for _, e := range t.entries {
		if e.Pending < 0 || e.Pending > e.Insts {
			return fmt.Errorf("checkpoint %d: pending %d out of range [0,%d]", e.ID, e.Pending, e.Insts)
		}
	}
	return nil
}
