package stats

import (
	"fmt"
	"math"
)

// Sampled summarises a SMARTS-style sampled run: how much of the
// dynamic stream was measured in detail, how much was functionally
// fast-forwarded, and the spread of the per-window IPC observations
// that turns the sampled mean into an error bar. The per-window sums
// (rather than a slice of window IPCs) keep the block mergeable: two
// shards' sums add, and the CLT interval of the union falls out.
type Sampled struct {
	// Windows counts measured detail windows.
	Windows uint64 `json:"windows"`
	// SampledInsts counts instructions committed inside measured detail
	// portions (what the run's Committed/Cycles counters cover).
	SampledInsts uint64 `json:"sampled_insts"`
	// WarmupInsts counts detailed-but-discarded warmup instructions.
	WarmupInsts uint64 `json:"warmup_insts"`
	// FastForwardInsts counts functionally fast-forwarded instructions.
	FastForwardInsts uint64 `json:"fast_forward_insts"`
	// TotalInsts is the total dynamic stream length covered (fast-forward
	// + warmup + measured).
	TotalInsts uint64 `json:"total_insts"`
	// SumIPC and SumIPC2 accumulate per-window IPC and its square, from
	// which the mean, variance and confidence interval derive.
	SumIPC  float64 `json:"sum_ipc"`
	SumIPC2 float64 `json:"sum_ipc2"`
}

// merge folds another sampled block's tallies into s.
func (s *Sampled) merge(o Sampled) {
	s.Windows += o.Windows
	s.SampledInsts += o.SampledInsts
	s.WarmupInsts += o.WarmupInsts
	s.FastForwardInsts += o.FastForwardInsts
	s.TotalInsts += o.TotalInsts
	s.SumIPC += o.SumIPC
	s.SumIPC2 += o.SumIPC2
}

// AddWindow records one measured window's IPC observation.
func (s *Sampled) AddWindow(ipc float64) {
	s.Windows++
	s.SumIPC += ipc
	s.SumIPC2 += ipc * ipc
}

// IPCMean returns the unweighted mean of the per-window IPCs (the
// SMARTS estimator; windows are equal-sized by construction, so this
// tracks the instruction-weighted Committed/Cycles closely).
func (s *Sampled) IPCMean() float64 {
	if s.Windows == 0 {
		return 0
	}
	return s.SumIPC / float64(s.Windows)
}

// IPCVariance returns the sample variance of the per-window IPCs
// (n-1 denominator; 0 with fewer than two windows).
func (s *Sampled) IPCVariance() float64 {
	n := float64(s.Windows)
	if s.Windows < 2 {
		return 0
	}
	v := (s.SumIPC2 - s.SumIPC*s.SumIPC/n) / (n - 1)
	if v < 0 {
		return 0 // floating-point cancellation on near-constant windows
	}
	return v
}

// IPCCI95 returns the half-width of the 95% interval on the mean
// per-window IPC: the CLT term 1.96 * sqrt(variance / windows), floored
// at 1.5% of the mean. The floor is the protocol's non-sampling-bias
// allowance: window variance only measures how much the windows
// disagree with each other, not how much the whole protocol disagrees
// with full detail (warmup truncation, functional fast-forward eliding
// wrong-path cache traffic), and SMARTS-class samplers validate that
// systematic error at around a percent. On a perfectly homogeneous
// workload every window reports the same IPC and the CLT term collapses
// toward zero — an interval claiming four-digit precision the protocol
// does not have; the floor keeps the reported interval honest there.
func (s *Sampled) IPCCI95() float64 {
	if s.Windows < 2 {
		return 0
	}
	ci := 1.96 * math.Sqrt(s.IPCVariance()/float64(s.Windows))
	if floor := 0.015 * math.Abs(s.IPCMean()); ci < floor {
		ci = floor
	}
	return ci
}

// DetailFraction returns the share of the covered stream simulated in
// detail (measured + warmup), the knob that trades accuracy for speed.
func (s *Sampled) DetailFraction() float64 {
	if s.TotalInsts == 0 {
		return 0
	}
	return float64(s.SampledInsts+s.WarmupInsts) / float64(s.TotalInsts)
}

// String renders a one-line summary.
func (s *Sampled) String() string {
	return fmt.Sprintf("windows=%d sampled=%d warmup=%d ff=%d total=%d ipc=%.3f±%.3f",
		s.Windows, s.SampledInsts, s.WarmupInsts, s.FastForwardInsts, s.TotalInsts,
		s.IPCMean(), s.IPCCI95())
}

// Sub returns the difference full − warm between two Results snapshots
// of the same CPU, where warm was captured at an earlier commit point
// of the same run. It isolates the interval between the snapshots —
// how sampled runs discard each window's warmup (and, because the
// persistent predictor/BTB/cache substrate accumulates across windows,
// everything before the window too). Cumulative counters subtract;
// extremes (MaxInflight, LongestSkip, "max_" policy keys) keep full's
// value, the interval's observation being unrecoverable; MeanInflight
// un-weights the cycle-weighted means. Occupancy histograms are not
// subtractable and sampled runs never collect them.
func (r Results) Sub(warm Results) Results {
	d := r
	d.Cycles = r.Cycles - warm.Cycles
	d.Committed = r.Committed - warm.Committed
	d.Fetched = r.Fetched - warm.Fetched
	d.Dispatched = r.Dispatched - warm.Dispatched
	d.Issued = r.Issued - warm.Issued
	d.Replayed = r.Replayed - warm.Replayed
	d.Rollbacks = r.Rollbacks - warm.Rollbacks
	d.PseudoROBRecoveries = r.PseudoROBRecoveries - warm.PseudoROBRecoveries
	d.CheckpointsTaken = r.CheckpointsTaken - warm.CheckpointsTaken
	d.CheckpointsCommitted = r.CheckpointsCommitted - warm.CheckpointsCommitted
	d.CheckpointStallCycles = r.CheckpointStallCycles - warm.CheckpointStallCycles
	d.SLIQMoved = r.SLIQMoved - warm.SLIQMoved
	d.SLIQWoken = r.SLIQWoken - warm.SLIQWoken
	d.SkippedCycles = r.SkippedCycles - warm.SkippedCycles
	d.SkipEvents = r.SkipEvents - warm.SkipEvents

	d.Branch.Predictions = r.Branch.Predictions - warm.Branch.Predictions
	d.Branch.Mispredicts = r.Branch.Mispredicts - warm.Branch.Mispredicts

	if r.BTB != nil {
		b := *r.BTB
		if warm.BTB != nil {
			b.Lookups -= warm.BTB.Lookups
			b.Hits -= warm.BTB.Hits
			b.BadTargets -= warm.BTB.BadTargets
		}
		d.BTB = &b
	}
	if r.LSQ != nil {
		q := *r.LSQ
		if warm.LSQ != nil {
			q.Loads -= warm.LSQ.Loads
			q.Stores -= warm.LSQ.Stores
			q.Forwards -= warm.LSQ.Forwards
			q.ForwardStalls -= warm.LSQ.ForwardStalls
			q.StoresDrained -= warm.LSQ.StoresDrained
			q.FullStalls -= warm.LSQ.FullStalls
		}
		d.LSQ = &q
	}

	d.Mem.IL1.Accesses = r.Mem.IL1.Accesses - warm.Mem.IL1.Accesses
	d.Mem.IL1.Misses = r.Mem.IL1.Misses - warm.Mem.IL1.Misses
	d.Mem.DL1.Accesses = r.Mem.DL1.Accesses - warm.Mem.DL1.Accesses
	d.Mem.DL1.Misses = r.Mem.DL1.Misses - warm.Mem.DL1.Misses
	d.Mem.L2.Accesses = r.Mem.L2.Accesses - warm.Mem.L2.Accesses
	d.Mem.L2.Misses = r.Mem.L2.Misses - warm.Mem.L2.Misses
	d.Mem.MemAccesses = r.Mem.MemAccesses - warm.Mem.MemAccesses
	d.Mem.MergedMisses = r.Mem.MergedMisses - warm.Mem.MergedMisses
	d.Mem.StoreWrites = r.Mem.StoreWrites - warm.Mem.StoreWrites
	d.Mem.Prefetches = r.Mem.Prefetches - warm.Mem.Prefetches

	for c := range d.Retire {
		d.Retire[c] = r.Retire[c] - warm.Retire[c]
	}
	if len(r.Policy) > 0 {
		d.Policy = make(map[string]uint64, len(r.Policy))
		for k, v := range r.Policy {
			if policyCounterIsMax(k) {
				d.Policy[k] = v
			} else {
				d.Policy[k] = v - warm.Policy[k]
			}
		}
	}
	if d.Cycles > 0 {
		d.MeanInflight = (r.MeanInflight*float64(r.Cycles) - warm.MeanInflight*float64(warm.Cycles)) / float64(d.Cycles)
	} else {
		d.MeanInflight = 0
	}
	d.Occ = nil
	return d
}
