// Checkpointing demonstrates the out-of-order commit machinery in
// isolation: how windows form under the paper's take-a-checkpoint
// heuristics, what rollbacks cost, and the two-pass precise-exception
// protocol.
//
//	go run ./examples/checkpointing
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	const insts = 100_000
	workload := trace.FPMix(insts+30_000, 7)

	// Sweep the checkpoint-table size: with one checkpoint the machine
	// serialises on windows; with a handful it covers thousands of
	// in-flight instructions (the paper's Figure 13 in miniature).
	fmt.Println("Checkpoint-table size vs performance (fpmix, 1000-cycle memory)")
	for _, ckpts := range []int{2, 4, 8, 16} {
		cfg := config.CheckpointDefault(128, 2048)
		cfg.Checkpoints = ckpts
		cpu, err := core.New(cfg, workload)
		if err != nil {
			log.Fatal(err)
		}
		res := cpu.Run(core.RunOptions{MaxInsts: insts})
		fmt.Printf("  checkpoints=%-3d IPC=%.3f  in-flight=%-5.0f windows committed=%d  ckpt-full stalls=%d cycles\n",
			ckpts, res.IPC(), res.MeanInflight, res.CheckpointsCommitted, res.CheckpointStallCycles)
	}

	// Precise exceptions without a ROB: the excepting instruction rolls
	// the machine back to its checkpoint, re-executes with a checkpoint
	// placed immediately before it, and delivers precisely.
	fmt.Println("\nPrecise exception replay")
	cfg := config.CheckpointDefault(128, 2048)
	cpu, err := core.New(cfg, workload)
	if err != nil {
		log.Fatal(err)
	}
	for _, pos := range []int64{10_000, 25_000, 60_000} {
		cpu.InjectExceptionAt(pos)
	}
	res := cpu.Run(core.RunOptions{MaxInsts: insts})
	fmt.Printf("  injected=3 delivered=%d rollbacks=%d replayed=%d instructions  IPC=%.3f\n",
		cpu.Exceptions(), res.Rollbacks, res.Replayed, res.IPC())
	fmt.Println("  (each exception costs one rollback plus re-execution of its window prefix)")
}
