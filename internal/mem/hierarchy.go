package mem

import "repro/internal/config"

// AccessResult describes the outcome of a data access.
type AccessResult struct {
	// Done is the absolute cycle at which the loaded value is available.
	Done int64
	// MissedL2 reports that the access had to go to main memory (or
	// merged with an in-flight main-memory request). The pipeline uses
	// it as the paper's "long latency load" classification.
	MissedL2 bool
}

// HierarchyStats aggregates counters across the hierarchy.
type HierarchyStats struct {
	IL1, DL1, L2 CacheStats
	// MemAccesses counts main-memory line fetches actually started
	// (merged requests are not double counted).
	MemAccesses uint64
	// MergedMisses counts L2 misses that merged with an in-flight line.
	MergedMisses uint64
	// StoreWrites counts committed stores drained to the hierarchy.
	StoreWrites uint64
	// Prefetches counts next-line fills started by the prefetcher.
	Prefetches uint64
}

// Hierarchy is the full memory system: IL1 + DL1 backed by a unified L2
// backed by main memory. Misses to the same L2 line merge MSHR-style.
//
// Bandwidth model: the Table 1 "Memory ports: 2" limit is enforced by the
// pipeline as a per-cycle data-cache access limit (see core); beyond that,
// memory-level parallelism is unconstrained, matching the paper's
// pseudo-perfect treatment of everything except the structures under study.
type Hierarchy struct {
	il1, dl1, l2 *Cache
	perfectL2    bool
	memLatency   int64
	prefetch     int

	// inflight maps an L2 line address to the cycle its fill completes.
	inflight map[uint64]int64
	stats    HierarchyStats
}

// NewHierarchy builds the memory system from the architectural config.
func NewHierarchy(cfg config.Config) *Hierarchy {
	return &Hierarchy{
		il1:        NewCache(cfg.IL1),
		dl1:        NewCache(cfg.DL1),
		l2:         NewCache(cfg.L2),
		perfectL2:  cfg.PerfectL2,
		memLatency: int64(cfg.MemoryLatency),
		prefetch:   cfg.PrefetchDegree,
		inflight:   make(map[uint64]int64),
	}
}

// Load models a data load issued at cycle now.
func (h *Hierarchy) Load(now int64, addr uint64) AccessResult {
	// An in-flight fill of this line absorbs the request (MSHR merge).
	line := h.l2.LineAddr(addr)
	if ready, ok := h.inflight[line]; ok {
		if ready > now {
			h.stats.MergedMisses++
			h.stats.DL1.Accesses++
			h.stats.DL1.Misses++
			return AccessResult{Done: ready, MissedL2: true}
		}
		delete(h.inflight, line)
	}

	done := now + int64(h.dl1.Latency())
	if h.dl1.Access(addr) {
		h.stats.DL1 = h.dl1.Stats()
		return AccessResult{Done: done}
	}
	h.stats.DL1 = h.dl1.Stats()

	done += int64(h.l2.Latency())
	if h.perfectL2 {
		return AccessResult{Done: done}
	}
	if h.l2.Access(addr) {
		h.stats.L2 = h.l2.Stats()
		return AccessResult{Done: done}
	}
	h.stats.L2 = h.l2.Stats()

	// Main memory. The line is resident (for replacement purposes) from
	// now on, but consumers must wait for the fill via the MSHR map.
	done += h.memLatency
	h.inflight[line] = done
	h.stats.MemAccesses++
	h.prefetchAfter(line, done)
	return AccessResult{Done: done, MissedL2: true}
}

// prefetchAfter starts next-line fills behind a demand miss. Prefetched
// lines become visible to the replacement state and arrive one cycle
// after the demand line per degree step (a simple streaming engine).
func (h *Hierarchy) prefetchAfter(line uint64, done int64) {
	for i := 1; i <= h.prefetch; i++ {
		next := line + uint64(i)*uint64(1)<<h.l2.lineShift
		if h.l2.Probe(next) {
			continue
		}
		if _, busy := h.inflight[next]; busy {
			continue
		}
		h.l2.insert(next >> h.l2.lineShift)
		h.inflight[next] = done + int64(i)
		h.stats.Prefetches++
	}
}

// FetchLatency models an instruction fetch of pc at cycle now and returns
// the cycle the fetch group is available. Instruction fetches that miss
// IL1 go to L2 and, if needed, memory, reusing the same line tracker.
func (h *Hierarchy) FetchLatency(now int64, pc uint64) int64 {
	line := h.l2.LineAddr(pc)
	if ready, ok := h.inflight[line]; ok {
		if ready > now {
			return ready
		}
		delete(h.inflight, line)
	}
	done := now + int64(h.il1.Latency())
	if h.il1.Access(pc) {
		h.stats.IL1 = h.il1.Stats()
		return done
	}
	h.stats.IL1 = h.il1.Stats()
	done += int64(h.l2.Latency())
	if h.perfectL2 || h.l2.Access(pc) {
		h.stats.L2 = h.l2.Stats()
		return done
	}
	h.stats.L2 = h.l2.Stats()
	done += h.memLatency
	h.inflight[line] = done
	h.stats.MemAccesses++
	return done
}

// StoreCommit drains a committed store into the hierarchy, updating
// replacement state. Commit is never blocked by stores (ideal write
// buffer), so no completion time is returned.
func (h *Hierarchy) StoreCommit(addr uint64) {
	h.stats.StoreWrites++
	if h.dl1.Access(addr) {
		h.stats.DL1 = h.dl1.Stats()
		return
	}
	h.stats.DL1 = h.dl1.Stats()
	if !h.perfectL2 {
		h.l2.Access(addr)
		h.stats.L2 = h.l2.Stats()
	}
}

// PrimeFetch preloads the line containing pc into IL1 and L2 without
// touching statistics. Harnesses use it to warm the instruction path:
// the paper's 300M-instruction SimPoints amortise cold code misses to
// nothing, which short simulations must emulate explicitly.
func (h *Hierarchy) PrimeFetch(pc uint64) {
	if !h.il1.Probe(pc) {
		h.il1.Access(pc)
		h.il1.stats.Accesses--
		h.il1.stats.Misses--
	}
	if !h.perfectL2 && !h.l2.Probe(pc) {
		h.l2.Access(pc)
		h.l2.stats.Accesses--
		h.l2.stats.Misses--
	}
}

// WarmData replays one data access through DL1 and L2 without counting
// statistics. Harnesses run the whole trace through it once before
// simulating, emulating the warm caches a long-running benchmark would
// have: resident working sets stay, streaming footprints evict
// themselves back to their steady state.
func (h *Hierarchy) WarmData(addr uint64) {
	preDL1 := h.dl1.stats
	h.dl1.Access(addr)
	h.dl1.stats = preDL1
	if !h.perfectL2 {
		preL2 := h.l2.stats
		h.l2.Access(addr)
		h.l2.stats = preL2
	}
}

// WouldMissL2 reports whether a load of addr issued now would go to main
// memory, without changing any state. The pipeline uses it for
// classification previews in tests.
func (h *Hierarchy) WouldMissL2(now int64, addr uint64) bool {
	if h.perfectL2 {
		return false
	}
	line := h.l2.LineAddr(addr)
	if ready, ok := h.inflight[line]; ok && ready > now {
		return true
	}
	return !h.dl1.Probe(addr) && !h.l2.Probe(addr)
}

// Stats returns a copy of the aggregate counters.
func (h *Hierarchy) Stats() HierarchyStats {
	s := h.stats
	s.IL1 = h.il1.Stats()
	s.DL1 = h.dl1.Stats()
	s.L2 = h.l2.Stats()
	return s
}

// Reset restores the hierarchy to cold-cache state.
func (h *Hierarchy) Reset() {
	h.il1.Reset()
	h.dl1.Reset()
	h.l2.Reset()
	h.inflight = make(map[uint64]int64)
	h.stats = HierarchyStats{}
}
