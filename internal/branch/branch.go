// Package branch implements the branch predictors of the simulated
// processor: the 16K-history gshare predictor from Table 1 of the paper,
// plus perfect and static predictors used for ablation studies.
//
// Predictors are speculative state machines: Predict is called at fetch
// with the current speculative history, Update is called at branch
// resolution with the true outcome. Because the simulator fetches down
// the correct path (wrong-path fetch is modelled as a stall, see
// DESIGN.md), speculative history equals committed history except across
// rollbacks, which restore it via HistorySnapshot/RestoreHistory.
package branch

import "fmt"

// Predictor is the interface the fetch stage uses.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the resolved outcome and
	// advances the global history.
	Update(pc uint64, taken bool)
	// HistorySnapshot returns the current global-history register so a
	// checkpoint can restore the fetch-time context after a rollback.
	HistorySnapshot() uint64
	// RestoreHistory rewinds the global history to a snapshot.
	RestoreHistory(h uint64)
	// Stats returns prediction counters.
	Stats() Stats
}

// Stats counts predictor performance.
type Stats struct {
	Predictions uint64
	Mispredicts uint64
}

// MispredictRate returns mispredicts/predictions, or 0 if unused.
func (s Stats) MispredictRate() float64 {
	if s.Predictions == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Predictions)
}

// Gshare is the classic gshare predictor: a table of 2-bit saturating
// counters indexed by PC XOR global history.
type Gshare struct {
	table   []uint8
	mask    uint64
	history uint64
	stats   Stats
}

// NewGshare builds a gshare predictor with a 2^bits-entry counter table
// (bits=14 gives the paper's 16K-history configuration). Counters start
// weakly taken, which suits loop-dominated numerical codes.
func NewGshare(bits int) *Gshare {
	if bits < 1 || bits > 30 {
		panic(fmt.Sprintf("branch: gshare bits %d out of range", bits))
	}
	g := &Gshare{
		table: make([]uint8, 1<<bits),
		mask:  (1 << bits) - 1,
	}
	for i := range g.table {
		g.table[i] = 2 // weakly taken
	}
	return g
}

func (g *Gshare) index(pc uint64) uint64 {
	// Drop the low two bits: instructions are 4-byte aligned.
	return ((pc >> 2) ^ g.history) & g.mask
}

// Predict implements Predictor.
func (g *Gshare) Predict(pc uint64) bool {
	return g.table[g.index(pc)] >= 2
}

// Update implements Predictor. It counts a misprediction when the
// prediction at the current history disagrees with the outcome, trains
// the counter, and shifts the outcome into the global history.
func (g *Gshare) Update(pc uint64, taken bool) {
	idx := g.index(pc)
	g.stats.Predictions++
	pred := g.table[idx] >= 2
	if pred != taken {
		g.stats.Mispredicts++
	}
	if taken {
		if g.table[idx] < 3 {
			g.table[idx]++
		}
	} else if g.table[idx] > 0 {
		g.table[idx]--
	}
	g.history = (g.history<<1 | boolBit(taken)) & g.mask
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// HistorySnapshot implements Predictor.
func (g *Gshare) HistorySnapshot() uint64 { return g.history }

// RestoreHistory implements Predictor.
func (g *Gshare) RestoreHistory(h uint64) { g.history = h & g.mask }

// Stats implements Predictor.
func (g *Gshare) Stats() Stats { return g.stats }

// Perfect always predicts correctly. The simulator special-cases it by
// never charging misprediction penalties; Predict's return value is
// therefore irrelevant and fixed to taken.
type Perfect struct{ stats Stats }

// NewPerfect returns a perfect predictor.
func NewPerfect() *Perfect { return &Perfect{} }

// Predict implements Predictor.
func (p *Perfect) Predict(uint64) bool { return true }

// Update implements Predictor.
func (p *Perfect) Update(uint64, bool) { p.stats.Predictions++ }

// HistorySnapshot implements Predictor.
func (p *Perfect) HistorySnapshot() uint64 { return 0 }

// RestoreHistory implements Predictor.
func (p *Perfect) RestoreHistory(uint64) {}

// Stats implements Predictor.
func (p *Perfect) Stats() Stats { return p.stats }

// Confidence is a branch-confidence estimator in the style of
// Jacobsen, Rotenberg and Smith: a table of saturating counters indexed
// by PC, incremented on every correct prediction and reset on every
// misprediction. A counter below the caller's threshold means the
// branch has mispredicted recently and is likely to do so again — the
// adaptive commit policy places a checkpoint immediately before such
// branches so the eventual rollback is cheap.
//
// Counters start at the ceiling ("confident until proven otherwise"):
// a cold workload behaves exactly like one without the estimator until
// the first misprediction, instead of checkpointing at every branch
// while the table warms up.
type Confidence struct {
	table []uint8
	mask  uint64
	max   uint8
}

// NewConfidence builds an estimator with a 2^bits-entry table of
// counters saturating at max (1..255).
func NewConfidence(bits, max int) *Confidence {
	if bits < 1 || bits > 30 {
		panic(fmt.Sprintf("branch: confidence bits %d out of range", bits))
	}
	if max < 1 || max > 255 {
		panic(fmt.Sprintf("branch: confidence counter max %d out of range", max))
	}
	e := &Confidence{
		table: make([]uint8, 1<<bits),
		mask:  (1 << bits) - 1,
		max:   uint8(max),
	}
	for i := range e.table {
		e.table[i] = e.max
	}
	return e
}

func (e *Confidence) index(pc uint64) uint64 {
	// Drop the low two bits: instructions are 4-byte aligned.
	return (pc >> 2) & e.mask
}

// Value returns the current counter for the branch at pc.
func (e *Confidence) Value(pc uint64) uint8 { return e.table[e.index(pc)] }

// Update trains the estimator with one resolved prediction: correct
// predictions saturate the counter upward, a misprediction resets it to
// zero (the JRS "resetting counter" scheme).
func (e *Confidence) Update(pc uint64, correct bool) {
	i := e.index(pc)
	if !correct {
		e.table[i] = 0
		return
	}
	if e.table[i] < e.max {
		e.table[i]++
	}
}

// Static predicts a fixed direction (taken by default), the classic
// not-taken/taken baseline predictor.
type Static struct {
	taken bool
	stats Stats
}

// NewStatic returns a static predictor with the given fixed direction.
func NewStatic(taken bool) *Static { return &Static{taken: taken} }

// Predict implements Predictor.
func (s *Static) Predict(uint64) bool { return s.taken }

// Update implements Predictor.
func (s *Static) Update(_ uint64, taken bool) {
	s.stats.Predictions++
	if taken != s.taken {
		s.stats.Mispredicts++
	}
}

// HistorySnapshot implements Predictor.
func (s *Static) HistorySnapshot() uint64 { return 0 }

// RestoreHistory implements Predictor.
func (s *Static) RestoreHistory(uint64) {}

// Stats implements Predictor.
func (s *Static) Stats() Stats { return s.stats }
