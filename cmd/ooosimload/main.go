// Command ooosimload is the fleet load generator: it drives batch
// traffic at a daemon or coordinator and reports throughput, tail
// latency and backpressure behaviour.
//
// Usage:
//
//	ooosimload [-url URL | -inprocess N] [-duration D] [-concurrency N]
//	           [-batch-size N] [-distinct N] [-insts N] [-seed N]
//
// With -url it targets a running ooosimd or ooosimfleet. With
// -inprocess N it boots a self-contained fleet first — N workers with
// donor shipping wired plus a coordinator, all on loopback — which is
// the one-command way to measure fleet behaviour (and what the CI
// fleet-e2e job uses).
//
// Each of -concurrency clients loops for -duration: draw -batch-size
// points from a space of -distinct distinct simulation points (the
// ratio of the two sets the cache-hit rate), submit, stream to
// completion, record the submit-to-done latency. A 429 (admission
// control) is counted, honoured by sleeping the server's Retry-After,
// and retried — backpressure is a result here, not an error.
//
// The report: batches, points, point errors, 429s, points/s, and
// latency p50/p90/p99.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/fleet"
	"repro/internal/isa/programs"
	"repro/internal/service"
	"repro/internal/trace"
)

func main() {
	url := flag.String("url", "", "target daemon or coordinator base URL")
	inprocess := flag.Int("inprocess", 0, "boot an in-process fleet with this many workers (alternative to -url)")
	duration := flag.Duration("duration", 10*time.Second, "how long to generate load")
	concurrency := flag.Int("concurrency", 4, "concurrent client loops")
	batchSize := flag.Int("batch-size", 8, "points per batch")
	distinct := flag.Int("distinct", 64, "distinct points to draw batches from")
	insts := flag.Uint64("insts", 1500, "instructions per point")
	seed := flag.Int64("seed", 1, "workload draw seed")
	maxQueue := flag.Int("max-queue", 256, "admission bound for the in-process fleet's coordinator")
	flag.Parse()

	if (*url == "") == (*inprocess == 0) {
		log.Fatalf("ooosimload: exactly one of -url or -inprocess is required")
	}
	target := *url
	if *inprocess > 0 {
		var stop func()
		var err error
		target, stop, err = bootFleet(*inprocess, *maxQueue)
		if err != nil {
			log.Fatalf("ooosimload: %v", err)
		}
		defer stop()
		log.Printf("ooosimload: booted %d-worker in-process fleet at %s", *inprocess, target)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	client := &service.Client{BaseURL: target}
	if err := client.AwaitReady(ctx); err != nil {
		log.Fatalf("ooosimload: target never became ready: %v", err)
	}

	points := makePoints(*distinct, *insts)
	deadline := time.Now().Add(*duration)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		batches   atomic.Uint64
		npoints   atomic.Uint64
		rejected  atomic.Uint64
		failures  atomic.Uint64
	)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			for time.Now().Before(deadline) && ctx.Err() == nil {
				jobs := make([]service.Job, *batchSize)
				for i := range jobs {
					jobs[i] = points[rng.Intn(len(points))]
				}
				start := time.Now()
				_, err := client.Run(ctx, jobs, nil)
				if err != nil {
					var se *service.StatusError
					if errors.As(err, &se) && se.Code == http.StatusTooManyRequests {
						// Admission control working as designed: back off
						// for the advertised interval and try again.
						rejected.Add(1)
						select {
						case <-time.After(time.Second):
						case <-ctx.Done():
						}
						continue
					}
					if ctx.Err() != nil {
						return
					}
					failures.Add(1)
					log.Printf("ooosimload: batch failed: %v", err)
					continue
				}
				batches.Add(1)
				npoints.Add(uint64(len(jobs)))
				mu.Lock()
				latencies = append(latencies, time.Since(start))
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	elapsed := *duration
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	fmt.Printf("target:      %s\n", target)
	fmt.Printf("duration:    %s  concurrency: %d  batch-size: %d  distinct: %d\n",
		elapsed, *concurrency, *batchSize, *distinct)
	fmt.Printf("batches:     %d (%d failed, %d rejected with 429)\n",
		batches.Load(), failures.Load(), rejected.Load())
	fmt.Printf("points:      %d (%.1f points/s)\n",
		npoints.Load(), float64(npoints.Load())/elapsed.Seconds())
	if len(latencies) > 0 {
		fmt.Printf("latency:     p50=%s p90=%s p99=%s max=%s\n",
			percentile(latencies, 50), percentile(latencies, 90),
			percentile(latencies, 99), latencies[len(latencies)-1])
	}
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// percentile reads the p'th percentile from sorted latencies.
func percentile(sorted []time.Duration, p int) time.Duration {
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// makePoints enumerates n distinct simulation points spanning the four
// commit policies, the benchmark kernels, the real RV32 programs and a
// range of queue sizes — a miniature of the paper's sweep space. When
// the per-point budget permits, every fifth point runs under SMARTS
// sampling, so load tests also exercise the streamed sampled path
// through the service (distinct fingerprints, no donor warming).
func makePoints(n int, insts uint64) []service.Job {
	tlen := trace.LenFor(insts)
	recipes := []trace.Recipe{
		{Kernel: trace.KernelStream, N: tlen},
		{Kernel: trace.KernelStrided, N: tlen, Stride: 8},
		{Kernel: trace.KernelStencil, N: tlen},
		{Kernel: trace.KernelReduction, N: tlen},
		{Kernel: trace.KernelBlocked, N: tlen},
		{Kernel: trace.KernelFPMix, N: tlen, Seed: 42},
	}
	for _, name := range programs.Names() {
		spec, _ := programs.Lookup(name)
		recipes = append(recipes, trace.Recipe{
			Kernel:  trace.KernelProgram,
			Program: name,
			Input:   spec.InputFor(insts),
			Seed:    42,
		})
	}
	var sample trace.SampleSpec
	if p := insts / 2; p >= 260 {
		sample = trace.SampleSpec{Warmup: p / 8, Detail: p / 4, Period: p}
	}
	var cfgs []config.Config
	for _, sliq := range []int{512, 1024, 2048} {
		for _, iq := range []int{32, 48, 64, 96, 128} {
			cfgs = append(cfgs, config.CheckpointDefault(iq, sliq))
			cfgs = append(cfgs, config.AdaptiveDefault(iq, sliq))
		}
	}
	cfgs = append(cfgs, config.OracleDefault(), config.BaselineSized(128), config.BaselineSized(4096))

	var out []service.Job
	for i := 0; len(out) < n; i++ {
		cfg := cfgs[i%len(cfgs)]
		r := recipes[(i/len(cfgs))%len(recipes)]
		// Wrap-around past cfgs x recipes would repeat points; vary the
		// instruction budget instead to stay distinct.
		job := service.Job{
			Name:   fmt.Sprintf("load-%d", i),
			Config: cfg,
			Trace:  r,
			Insts:  insts + uint64(i/(len(cfgs)*len(recipes))),
		}
		if sample.Enabled() && i%5 == 4 {
			job.Sample = sample
		}
		out = append(out, job)
	}
	return out
}

// bootFleet starts workers+coordinator on loopback listeners and
// returns the coordinator URL and a shutdown func.
func bootFleet(workers, maxQueue int) (string, func(), error) {
	urls := make([]string, workers)
	lns := make([]net.Listener, workers)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	var stops []func()
	stop := func() {
		for _, s := range stops {
			s()
		}
	}
	slots := runtime.GOMAXPROCS(0)/workers + 1
	for i := range lns {
		sched := service.NewScheduler(service.SchedulerOptions{
			Workers: slots,
			Donors:  service.NewDonorExchange(urls[i], urls),
		})
		srv := &http.Server{Handler: service.NewHandler(sched)}
		go srv.Serve(lns[i])
		stops = append(stops, func() { srv.Close() })
	}

	coord, err := fleet.New(fleet.Options{
		Workers:      urls,
		MaxQueue:     maxQueue,
		PingInterval: 500 * time.Millisecond,
	})
	if err != nil {
		stop()
		return "", nil, err
	}
	stops = append(stops, coord.Close)
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		stop()
		return "", nil, err
	}
	fsrv := &http.Server{Handler: fleet.NewHandler(coord)}
	go fsrv.Serve(fln)
	stops = append(stops, func() { fsrv.Close() })
	return "http://" + fln.Addr().String(), stop, nil
}
