package sim

import (
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// TestFingerprintDiscriminates: every input dimension must change the
// address, and identical inputs must agree across calls.
func TestFingerprintDiscriminates(t *testing.T) {
	base := func() (config.Config, string, uint64, bool) {
		return config.CheckpointDefault(64, 1024), "fpmix/n=360000/seed=42/stride=0", 300_000, false
	}

	cfg, recipe, insts, occ := base()
	ref, err := Fingerprint(cfg, recipe, insts, occ)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Fingerprint(cfg, recipe, insts, occ)
	if err != nil {
		t.Fatal(err)
	}
	if ref != again {
		t.Fatalf("identical inputs produced different fingerprints: %s vs %s", ref, again)
	}
	if len(ref) != 64 {
		t.Fatalf("fingerprint %q is not hex sha256", ref)
	}

	variants := map[string]string{}
	add := func(name string, cfg config.Config, recipe string, insts uint64, occ bool) {
		fp, err := Fingerprint(cfg, recipe, insts, occ)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fp == ref {
			t.Errorf("%s: fingerprint did not change", name)
		}
		if prev, dup := variants[fp]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		variants[fp] = name
	}

	cfg2, _, _, _ := base()
	cfg2.MemoryLatency = 500
	add("config change", cfg2, recipe, insts, occ)
	add("recipe change", cfg, "stream/n=360000/seed=0/stride=0", insts, occ)
	add("insts change", cfg, recipe, insts+1, occ)
	add("occupancy flag", cfg, recipe, insts, true)
}

// TestFingerprintRejectsInvalid: no canonical form, no address.
func TestFingerprintRejectsInvalid(t *testing.T) {
	if _, err := Fingerprint(config.Config{}, "stream/n=1/seed=0/stride=0", 1, false); err == nil {
		t.Error("invalid config fingerprinted")
	}
}

// TestRunSpecFingerprint covers the spec-level hook, including the
// recipe-less and trace-less failure paths.
func TestRunSpecFingerprint(t *testing.T) {
	tr := trace.Stream(2000)
	spec := RunSpec{Name: "stream", Config: config.BaselineSized(128), Trace: tr, Insts: 1000}
	fp, err := spec.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	r, _ := tr.Recipe()
	direct, err := Fingerprint(spec.Config, r.String(), spec.Insts, false)
	if err != nil {
		t.Fatal(err)
	}
	if fp != direct {
		t.Errorf("spec fingerprint %s != direct fingerprint %s", fp, direct)
	}

	w := trace.DefaultWeights()
	w.Blocked++
	spec.Trace = trace.Mix(2000, 1, w)
	if _, err := spec.Fingerprint(); err == nil {
		t.Error("recipe-less trace fingerprinted")
	}
	spec.Trace = nil
	if _, err := spec.Fingerprint(); err == nil {
		t.Error("nil trace fingerprinted")
	}
}

// TestShardFor: stable, in-range, total (even for non-hex input), and
// reasonably balanced over real fingerprints.
func TestShardFor(t *testing.T) {
	fp, err := Fingerprint(config.Default(), "stream/n=2000/seed=0/stride=0", 1000, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 2, 3, 7, 16} {
		s := ShardFor(fp, n)
		if s != ShardFor(fp, n) {
			t.Fatalf("ShardFor not stable at n=%d", n)
		}
		bound := n
		if bound < 1 {
			bound = 1
		}
		if s < 0 || s >= bound {
			t.Fatalf("ShardFor(%q, %d) = %d out of range", fp, n, s)
		}
	}
	if ShardFor("not hex at all", 4) < 0 {
		t.Fatal("non-hex input must still shard")
	}

	// Balance: the figure-9 grid's fingerprints must not collapse onto
	// one shard (prefix sharding over sha256 is uniform; this guards
	// against a parsing bug that zeroes the prefix).
	counts := make([]int, 3)
	for _, lat := range []int{100, 200, 500, 1000} {
		for _, iq := range []int{32, 64, 128} {
			cfg := config.CheckpointDefault(iq, 1024)
			cfg.MemoryLatency = lat
			fp, err := Fingerprint(cfg, "fpmix/n=48000/seed=42/stride=0", 40000, false)
			if err != nil {
				t.Fatal(err)
			}
			counts[ShardFor(fp, 3)]++
		}
	}
	for s, c := range counts {
		if c == 0 {
			t.Errorf("shard %d received no points from a 12-point grid: %v", s, counts)
		}
	}
}

// TestFingerprintPinned is the zero-drift guard for the content-
// addressed cache: a representative synthetic point must keep the exact
// address it had before the program-workload extension (so every
// existing cache entry stays valid), and a program point must address
// deterministically under the same unbumped version. If either constant
// changes, either bump FingerprintVersion deliberately or find the
// accidental encoding drift.
func TestFingerprintPinned(t *testing.T) {
	for _, tc := range []struct {
		name   string
		recipe string
		want   string
	}{
		{"synthetic", "fpmix/n=360000/seed=42/stride=0",
			"1186eb90ac29cc63d67aaaf018ab8fa4a70d85a2e6c03a6e4501e9e8b63894c2"},
		{"program", "program/isort/input=400/seed=42",
			"1c77423c4cda8f75a0e0c4e90abccaa3fffa365561976bc78947b978a75f4024"},
	} {
		insts := uint64(300_000)
		if tc.name == "program" {
			insts = 100_000
		}
		fp, err := Fingerprint(config.CheckpointDefault(64, 1024), tc.recipe, insts, false)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if fp != tc.want {
			t.Errorf("%s fingerprint drifted:\n got %s\nwant %s", tc.name, fp, tc.want)
		}
	}
}

// TestProgramRecipeFingerprints: program points must address cleanly —
// distinct per program, input and seed, computable through the RunSpec
// hook from a recipe-only trace (the service path never materialises
// just to fingerprint), and disjoint from every synthetic point by
// construction of the canonical string.
func TestProgramRecipeFingerprints(t *testing.T) {
	cfg := config.CheckpointDefault(64, 1024)
	seen := map[string]string{}
	for _, r := range []trace.Recipe{
		{Kernel: trace.KernelProgram, Program: "isort", Input: 400, Seed: 42},
		{Kernel: trace.KernelProgram, Program: "isort", Input: 401, Seed: 42},
		{Kernel: trace.KernelProgram, Program: "isort", Input: 400, Seed: 43},
		{Kernel: trace.KernelProgram, Program: "chase", Input: 400, Seed: 42},
		{Kernel: trace.KernelFPMix, N: 400, Seed: 42},
	} {
		tr, err := trace.RecipeOnly(r)
		if err != nil {
			t.Fatal(err)
		}
		spec := RunSpec{Name: r.WorkloadName(), Config: cfg, Trace: tr, Insts: 100_000}
		fp, err := spec.Fingerprint()
		if err != nil {
			t.Fatalf("%s: %v", r, err)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", r, prev)
		}
		seen[fp] = r.String()
	}
}

// TestFingerprintDistinctPerCommitPolicy: the same workload under each
// registered commit policy must content-address differently — the
// commit-policies ablation relies on the service cache never aliasing
// results across policies.
func TestFingerprintDistinctPerCommitPolicy(t *testing.T) {
	const recipe = "fpmix/n=360000/seed=42/stride=0"
	seen := map[string]string{}
	for _, cfg := range []config.Config{
		config.BaselineSized(128),
		config.CheckpointDefault(128, 2048),
		config.AdaptiveDefault(128, 2048),
		config.OracleDefault(),
	} {
		fp, err := Fingerprint(cfg, recipe, 300_000, false)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Commit, err)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", cfg.Commit, prev)
		}
		seen[fp] = string(cfg.Commit)
	}
}
