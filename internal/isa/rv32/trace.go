package rv32

import (
	"fmt"

	"repro/internal/isa"
)

// This file is the bridge between the architectural tier and the timing
// tier: BuildTrace functionally executes a Program and maps every
// retired RV32 instruction onto the pipeline's operation classes with
// real PCs, branch outcomes and targets, and effective addresses.
//
// The mapping:
//
//   - ALU, LUI, AUIPC and the shift/compare group -> IntAlu
//   - MUL/MULH/MULHSU/MULHU -> IntMul; DIV/DIVU/REM/REMU -> IntDiv
//   - loads -> Load, stores -> Store (Src1 base, Src2 data), with the
//     executed effective address
//   - conditional branches -> Branch with the architectural outcome and
//     the would-be-taken target
//   - JAL/JALR -> Branch (always taken, with the real target; JALR's
//     target dependence on rs1 is kept as Src1), preceded by an IntAlu
//     writing the link register when rd != x0 — one RV32 jump-and-link
//     becomes two pipeline micro-ops at the same PC
//   - writes to x0 are architectural no-ops and map to Nop; x0 as a
//     source maps to integer register 0, which no mapped instruction
//     ever writes, so it behaves as the always-ready zero register
//
// Loads targeting x0 have no destination to rename and are rejected:
// programs must not use them (none of the shipped ones do).

// reg maps an RV32 register number onto the pipeline's integer class.
func reg(n uint8) isa.Reg { return isa.IntReg(int(n)) }

// aluClass maps a computational RV32 op onto its functional-unit class.
func aluClass(op Op) isa.Op {
	switch op {
	case MUL, MULH, MULHSU, MULHU:
		return isa.IntMul
	case DIV, DIVU, REM, REMU:
		return isa.IntDiv
	default:
		return isa.IntAlu
	}
}

// appendMapped appends the pipeline instruction(s) for one retired RV32
// instruction.
func appendMapped(out []isa.Inst, r Retired) ([]isa.Inst, error) {
	pc := uint64(r.PC)
	d := r.D
	nop := isa.Inst{Op: isa.Nop, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, PC: pc}
	switch d.Op {
	case LUI, AUIPC:
		if d.Rd == 0 {
			return append(out, nop), nil
		}
		return append(out, isa.Inst{
			Op: isa.IntAlu, Dest: reg(d.Rd), Src1: isa.RegNone, Src2: isa.RegNone, PC: pc,
		}), nil
	case ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI:
		if d.Rd == 0 {
			return append(out, nop), nil
		}
		return append(out, isa.Inst{
			Op: isa.IntAlu, Dest: reg(d.Rd), Src1: reg(d.Rs1), Src2: isa.RegNone, PC: pc,
		}), nil
	case ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
		MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU:
		if d.Rd == 0 {
			return append(out, nop), nil
		}
		return append(out, isa.Inst{
			Op: aluClass(d.Op), Dest: reg(d.Rd), Src1: reg(d.Rs1), Src2: reg(d.Rs2), PC: pc,
		}), nil
	case LB, LH, LW, LBU, LHU:
		if d.Rd == 0 {
			return nil, fmt.Errorf("rv32: pc=%#x: load into x0 cannot be mapped", r.PC)
		}
		return append(out, isa.Inst{
			Op: isa.Load, Dest: reg(d.Rd), Src1: reg(d.Rs1), Src2: isa.RegNone,
			Addr: uint64(r.Addr), PC: pc,
		}), nil
	case SB, SH, SW:
		return append(out, isa.Inst{
			Op: isa.Store, Dest: isa.RegNone, Src1: reg(d.Rs1), Src2: reg(d.Rs2),
			Addr: uint64(r.Addr), PC: pc,
		}), nil
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return append(out, isa.Inst{
			Op: isa.Branch, Dest: isa.RegNone, Src1: reg(d.Rs1), Src2: reg(d.Rs2),
			PC: pc, Taken: r.Taken, Target: uint64(r.Target),
		}), nil
	case JAL, JALR:
		if d.Rd != 0 {
			out = append(out, isa.Inst{
				Op: isa.IntAlu, Dest: reg(d.Rd), Src1: isa.RegNone, Src2: isa.RegNone, PC: pc,
			})
		}
		src := isa.RegNone
		if d.Op == JALR {
			src = reg(d.Rs1)
		}
		return append(out, isa.Inst{
			Op: isa.Branch, Dest: isa.RegNone, Src1: src, Src2: isa.RegNone,
			PC: pc, Taken: true, Target: uint64(r.Target),
		}), nil
	case EBREAK:
		return out, nil // the halt itself does not enter the pipeline
	default:
		return nil, fmt.Errorf("rv32: pc=%#x: unmappable op %v", r.PC, d.Op)
	}
}

// BuildTrace functionally executes p to completion and returns its
// dynamic pipeline-instruction stream together with the static code
// Image used by the wrong-path fetch model. The program must halt
// within maxInsts mapped instructions — the dynamic length is a
// property of the program, not a caller-supplied budget.
func BuildTrace(p *Program, maxInsts int) ([]isa.Inst, *Image, error) {
	m, err := NewMachine(p)
	if err != nil {
		return nil, nil, err
	}
	out := make([]isa.Inst, 0, 4096)
	for !m.halted {
		if len(out) >= maxInsts {
			return nil, nil, fmt.Errorf("rv32: %q exceeds %d dynamic instructions without halting", p.Name, maxInsts)
		}
		r, err := m.Step()
		if err != nil {
			return nil, nil, err
		}
		if out, err = appendMapped(out, r); err != nil {
			return nil, nil, fmt.Errorf("rv32: %q: %w", p.Name, err)
		}
	}
	if len(out) == 0 {
		return nil, nil, fmt.Errorf("rv32: %q produced an empty stream", p.Name)
	}
	img, err := NewImage(p)
	if err != nil {
		return nil, nil, err
	}
	return out, img, nil
}

// Image is the static pipeline view of a program's text, one mapped
// instruction per word. The core fetches from it past an unresolved
// mispredicted branch: wrong-path instructions get the real PCs and
// register dependences of the code at the predicted (wrong) target,
// while side-effecting classes are neutralised — stores, branches and
// jumps become Nops (a wrong-path store must not drain, and a
// wrong-path branch must not redirect fetch), and load addresses are
// left for the core's wrong-path address model to fill in.
type Image struct {
	base uint64
	code []isa.Inst
}

// NewImage builds the static image of p's text.
func NewImage(p *Program) (*Image, error) {
	if len(p.Text) == 0 {
		return nil, fmt.Errorf("rv32: program %q has no text", p.Name)
	}
	img := &Image{base: uint64(TextBase), code: make([]isa.Inst, len(p.Text))}
	for i, w := range p.Text {
		pc := img.base + uint64(i)*4
		nop := isa.Inst{Op: isa.Nop, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone, PC: pc}
		d, err := Decode(w)
		if err != nil {
			img.code[i] = nop
			continue
		}
		switch d.Op {
		case LUI, AUIPC:
			if d.Rd == 0 {
				img.code[i] = nop
				break
			}
			img.code[i] = isa.Inst{Op: isa.IntAlu, Dest: reg(d.Rd), Src1: isa.RegNone, Src2: isa.RegNone, PC: pc}
		case ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI:
			if d.Rd == 0 {
				img.code[i] = nop
				break
			}
			img.code[i] = isa.Inst{Op: isa.IntAlu, Dest: reg(d.Rd), Src1: reg(d.Rs1), Src2: isa.RegNone, PC: pc}
		case ADD, SUB, SLL, SLT, SLTU, XOR, SRL, SRA, OR, AND,
			MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU:
			if d.Rd == 0 {
				img.code[i] = nop
				break
			}
			img.code[i] = isa.Inst{Op: aluClass(d.Op), Dest: reg(d.Rd), Src1: reg(d.Rs1), Src2: reg(d.Rs2), PC: pc}
		case LB, LH, LW, LBU, LHU:
			if d.Rd == 0 {
				img.code[i] = nop
				break
			}
			img.code[i] = isa.Inst{Op: isa.Load, Dest: reg(d.Rd), Src1: reg(d.Rs1), Src2: isa.RegNone, PC: pc}
		default:
			img.code[i] = nop
		}
	}
	return img, nil
}

// Len returns the number of static instructions.
func (im *Image) Len() int { return len(im.code) }

// IndexOf returns the static index of pc, if it lies inside the text.
func (im *Image) IndexOf(pc uint64) (int, bool) {
	if pc < im.base || (pc-im.base)%4 != 0 {
		return 0, false
	}
	i := int((pc - im.base) / 4)
	if i >= len(im.code) {
		return 0, false
	}
	return i, true
}

// At returns the static instruction at index i.
func (im *Image) At(i int) isa.Inst { return im.code[i] }
