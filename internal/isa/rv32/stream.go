package rv32

import (
	"fmt"

	"repro/internal/isa"
)

// Streamer is the incremental form of BuildTrace: it functionally
// executes a program chunk by chunk, emitting the same mapped pipeline
// stream element-for-element without ever materialising it whole. It is
// the program-side producer of the trace layer's segment streams, which
// is what lifts the materialisation cap for sampled runs.
type Streamer struct {
	m       *Machine
	name    string
	emitted int
}

// NewStreamer prepares p for incremental execution.
func NewStreamer(p *Program) (*Streamer, error) {
	m, err := NewMachine(p)
	if err != nil {
		return nil, err
	}
	return &Streamer{m: m, name: p.Name}, nil
}

// Halted reports whether the program has run to completion; Emit
// appends nothing once it has.
func (s *Streamer) Halted() bool { return s.m.halted }

// Emit appends the mapped pipeline instructions of up to one execution
// chunk (a few thousand retired RV32 instructions) to dst and returns
// the extended slice. Looping Emit to halt yields exactly BuildTrace's
// stream: both drive Machine.Step through appendMapped in retirement
// order.
func (s *Streamer) Emit(dst []isa.Inst) ([]isa.Inst, error) {
	const chunk = 4096
	before := len(dst)
	for len(dst)-before < chunk && !s.m.halted {
		r, err := s.m.Step()
		if err != nil {
			return dst, err
		}
		if dst, err = appendMapped(dst, r); err != nil {
			return dst, fmt.Errorf("rv32: %q: %w", s.name, err)
		}
	}
	s.emitted += len(dst) - before
	if s.m.halted && s.emitted == 0 {
		return dst, fmt.Errorf("rv32: %q produced an empty stream", s.name)
	}
	return dst, nil
}
