package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/service"
	"repro/internal/trace"
)

// policyBatch builds a small figure-9-shaped batch covering all four
// commit policies (rob baseline, checkpoint, adaptive, oracle) over
// several workloads — the byte-identity surface the fleet must
// preserve.
func policyBatch(insts uint64) []service.Job {
	n := trace.LenFor(insts)
	recipes := []trace.Recipe{
		{Kernel: trace.KernelStream, N: n},
		{Kernel: trace.KernelStrided, N: n, Stride: 8},
		{Kernel: trace.KernelFPMix, N: n, Seed: 42},
	}
	cfgs := []config.Config{
		config.BaselineSized(128),
		config.CheckpointDefault(32, 512),
		config.CheckpointDefault(64, 512),
		config.AdaptiveDefault(64, 512),
		config.OracleDefault(),
	}
	var jobs []service.Job
	for _, cfg := range cfgs {
		for _, r := range recipes {
			jobs = append(jobs, service.Job{Name: r.Kernel + "/" + string(cfg.Commit), Config: cfg, Trace: r, Insts: insts})
		}
	}
	return jobs
}

// singleNodeBytes runs jobs on one plain scheduler and returns the raw
// result bytes per point — the reference every fleet topology must
// reproduce exactly.
func singleNodeBytes(t *testing.T, jobs []service.Job) []json.RawMessage {
	t.Helper()
	s := service.NewScheduler(service.SchedulerOptions{})
	b, err := s.Submit(jobs)
	if err != nil {
		t.Fatalf("single-node submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := b.Wait(ctx)
	if err != nil {
		t.Fatalf("single-node wait: %v", err)
	}
	if len(st.Errors) > 0 {
		t.Fatalf("single-node errors: %v", st.Errors)
	}
	return st.Results
}

// bootWorkers starts n in-process workers wired as a fleet (shared
// canonical peer list, donor exchanges) on real listeners, returning
// their URLs, schedulers and a per-worker shutdown func.
func bootWorkers(t *testing.T, n int) (urls []string, scheds []*service.Scheduler, kill []func()) {
	t.Helper()
	handlers := make([]http.Handler, n)
	lns := make([]net.Listener, n)
	servers := make([]*http.Server, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		urls = append(urls, "http://"+ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		i := i
		s := service.NewScheduler(service.SchedulerOptions{
			Workers: 1, // serialise per node: widens the mid-batch kill window
			Donors:  service.NewDonorExchange(urls[i], urls),
		})
		scheds = append(scheds, s)
		handlers[i] = service.NewHandler(s)
		srv := &http.Server{Handler: handlers[i]}
		servers[i] = srv
		go srv.Serve(lns[i])
		kill = append(kill, func() { srv.Close() }) // severs active connections
	}
	t.Cleanup(func() {
		for _, k := range kill {
			k()
		}
	})
	return urls, scheds, kill
}

// TestFleetByteIdenticalToSingleNode is the PR's acceptance test: a
// three-worker fleet behind a coordinator answers a full four-policy
// batch with bytes identical to one plain scheduler, while warm donors
// ship between workers (fewer builds than nodes x groups, at least one
// adoption).
func TestFleetByteIdenticalToSingleNode(t *testing.T) {
	jobs := policyBatch(1500)
	want := singleNodeBytes(t, jobs)

	urls, scheds, _ := bootWorkers(t, 3)
	coord, err := New(Options{Workers: urls, PingInterval: 100 * time.Millisecond})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	front := httptest.NewServer(NewHandler(coord))
	defer front.Close()

	// Through the front door: the coordinator's HTTP surface is the
	// worker API, so the plain service client drives it unchanged.
	client := &service.Client{BaseURL: front.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	got := make([]json.RawMessage, len(jobs))
	st, err := client.Submit(ctx, jobs)
	if err != nil {
		t.Fatalf("fleet submit: %v", err)
	}
	err = client.Stream(ctx, st.ID, func(ev service.Event) error {
		if ev.Type == "error" {
			return fmt.Errorf("point %d (%s): %s", ev.Index, ev.Name, ev.Error)
		}
		if ev.Type == "result" {
			got[ev.Index] = append(json.RawMessage(nil), ev.Results...)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("fleet stream: %v", err)
	}
	for i := range want {
		if string(want[i]) != string(got[i]) {
			t.Errorf("point %d (%s): fleet bytes differ from single node", i, jobs[i].Name)
		}
	}

	// Donor shipping engaged: the fleet warmed each snapshot group once
	// (one home build each), not once per node, and at least one worker
	// adopted a peer's donor instead of re-warming.
	groups := service.NewBatch("probe", jobs, make([]string, len(jobs))).Status().SnapshotGroups
	var adopted, built uint64
	for i, s := range scheds {
		a, b, sh, f := s.Donors().Stats()
		t.Logf("worker %d: adopted=%d built=%d shipped=%d fetchFails=%d", i, a, b, sh, f)
		adopted += a
		built += b
		if f != 0 {
			t.Errorf("worker %d had %d donor fetch failures", i, f)
		}
	}
	if adopted == 0 {
		t.Errorf("no worker adopted a donor from a peer")
	}
	if built >= uint64(len(scheds)*groups) {
		t.Errorf("fleet built %d donors for %d groups on %d nodes — shipping saved nothing", built, groups, len(scheds))
	}
}

// TestFleetReroutesAroundDeadNode kills a worker mid-batch and asserts
// the coordinator routes its unfinished points to the survivor with the
// final batch still byte-identical to a single node, across all four
// commit policies.
func TestFleetReroutesAroundDeadNode(t *testing.T) {
	jobs := policyBatch(30000) // ~10-30ms per point: a wide kill window
	want := singleNodeBytes(t, jobs)

	urls, _, kill := bootWorkers(t, 2)
	coord, err := New(Options{Workers: urls, PingInterval: time.Hour, Log: t.Logf})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()

	b, err := coord.Submit(jobs)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Let the batch get rolling, then kill one worker while both still
	// hold pending points (each worker is single-threaded and owns ~half
	// the batch, so at one completion the victim has work outstanding).
	deadline := time.Now().Add(30 * time.Second)
	for b.Status().Done < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("batch never started completing")
		}
		time.Sleep(2 * time.Millisecond)
	}
	kill[1]()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	st, err := b.Wait(ctx)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if len(st.Errors) > 0 {
		t.Fatalf("batch errors after node kill: %v", st.Errors)
	}
	for i := range want {
		if string(want[i]) != string(st.Results[i]) {
			t.Errorf("point %d (%s): bytes differ after re-route", i, jobs[i].Name)
		}
	}
	if coord.metrics.NodeFailures.Load() == 0 {
		t.Errorf("coordinator never marked the killed node down")
	}
	if coord.metrics.Reroutes.Load() == 0 {
		t.Errorf("coordinator never re-routed a point")
	}
}

// fakeWorker implements service.BatchAPI with externally released
// completions, for deterministic coordinator-logic tests without real
// simulations. Results are synthesised from the job name.
type fakeWorker struct {
	mu      sync.Mutex
	batches map[string]*service.Batch
	nextID  int
	points  atomic.Int64 // points ever submitted to this worker
	release chan struct{}
}

func newFakeWorker() *fakeWorker {
	return &fakeWorker{batches: map[string]*service.Batch{}, release: make(chan struct{})}
}

func (f *fakeWorker) Submit(jobs []service.Job) (*service.Batch, error) {
	fps := make([]string, len(jobs))
	for i, j := range jobs {
		fp, err := j.Fingerprint()
		if err != nil {
			return nil, err
		}
		fps[i] = fp
	}
	f.mu.Lock()
	f.nextID++
	b := service.NewBatch(fmt.Sprintf("fake%d", f.nextID), jobs, fps)
	f.batches[b.ID()] = b
	f.mu.Unlock()
	f.points.Add(int64(len(jobs)))
	go func() {
		<-f.release
		for i, j := range jobs {
			b.Complete(i, json.RawMessage(fmt.Sprintf(`{"name":%q}`, j.Name)), false, nil)
		}
	}()
	return b, nil
}

func (f *fakeWorker) Batch(id string) (*service.Batch, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b, ok := f.batches[id]
	return b, ok
}

// TestFleetSingleflightAcrossBatches: two concurrent batches sharing a
// fingerprint submit it downstream once; the follower adopts the
// leader's bytes and reports cached.
func TestFleetSingleflightAcrossBatches(t *testing.T) {
	fake := newFakeWorker()
	srv := httptest.NewServer(service.NewAPIHandler(fake, service.HandlerOptions{}))
	defer srv.Close()

	coord, err := New(Options{Workers: []string{srv.URL}, PingInterval: time.Hour})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()

	job := service.Job{
		Name:   "shared",
		Config: config.CheckpointDefault(64, 512),
		Trace:  trace.Recipe{Kernel: trace.KernelStream, N: 6000},
		Insts:  1500,
	}
	b1, err := coord.Submit([]service.Job{job})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	// The leader's point must be downstream before the follower joins.
	waitFor(t, func() bool { return fake.points.Load() == 1 })
	b2, err := coord.Submit([]service.Job{job})
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}

	close(fake.release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st1, err := b1.Wait(ctx)
	if err != nil {
		t.Fatalf("wait 1: %v", err)
	}
	st2, err := b2.Wait(ctx)
	if err != nil {
		t.Fatalf("wait 2: %v", err)
	}

	if got := fake.points.Load(); got != 1 {
		t.Errorf("worker saw %d points, want 1 (cross-batch singleflight)", got)
	}
	if string(st1.Results[0]) != string(st2.Results[0]) {
		t.Errorf("follower bytes differ from leader")
	}
	if st2.CacheHits != 1 {
		t.Errorf("follower batch reported %d cache hits, want 1", st2.CacheHits)
	}
	if coord.metrics.PointsDeduped.Load() != 1 {
		t.Errorf("PointsDeduped = %d, want 1", coord.metrics.PointsDeduped.Load())
	}
}

// TestFleetAdmissionAndDrain mirrors the worker plumbing tests at the
// coordinator: queue bound rejects with ErrOverloaded, drain rejects
// with ErrDraining and runs the queue dry.
func TestFleetAdmissionAndDrain(t *testing.T) {
	fake := newFakeWorker()
	srv := httptest.NewServer(service.NewAPIHandler(fake, service.HandlerOptions{}))
	defer srv.Close()

	coord, err := New(Options{Workers: []string{srv.URL}, MaxQueue: 1, PingInterval: time.Hour})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()

	job := service.Job{
		Name:   "q",
		Config: config.CheckpointDefault(64, 512),
		Trace:  trace.Recipe{Kernel: trace.KernelStream, N: 6000},
		Insts:  1500,
	}
	b, err := coord.Submit([]service.Job{job})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := coord.Ready(); !errors.Is(err, service.ErrOverloaded) {
		t.Fatalf("Ready at bound = %v, want ErrOverloaded", err)
	}
	job2 := job
	job2.Insts = 3000
	if _, err := coord.Submit([]service.Job{job2}); !errors.Is(err, service.ErrOverloaded) {
		t.Fatalf("submit over bound = %v, want ErrOverloaded", err)
	}

	coord.StartDrain()
	if _, err := coord.Submit([]service.Job{job2}); !errors.Is(err, service.ErrDraining) {
		t.Fatalf("submit while draining = %v, want ErrDraining", err)
	}
	close(fake.release)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := b.Status(); st.State != service.StateDone {
		t.Fatalf("batch state after drain = %s, want done", st.State)
	}
}

// TestFleetBreakerOpensOnProbeFailures: failed health probes trip a
// node's breaker at the threshold, surface in the per-node probe
// metric, and probation (half-open) re-admits the node after cooldown.
func TestFleetBreakerOpensOnProbeFailures(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close() // probes now fail fast with connection refused

	coord, err := New(Options{
		Workers:          []string{dead},
		PingInterval:     time.Hour, // probe manually via pingOnce
		PingTimeout:      500 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  80 * time.Millisecond,
		Log:              t.Logf,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	n := coord.nodes[0]

	coord.pingOnce()
	if !n.breaker.Allow() {
		t.Fatalf("one probe failure opened a threshold-2 breaker")
	}
	coord.pingOnce()
	if n.breaker.Allow() {
		t.Fatalf("breaker still closed after %d probe failures", 2)
	}
	if got := n.probeFails.Load(); got != 2 {
		t.Errorf("probeFails = %d, want 2", got)
	}
	if got := coord.metrics.BreakerTrips.Load(); got != 1 {
		t.Errorf("BreakerTrips = %d, want 1", got)
	}
	if err := coord.Ready(); err == nil {
		t.Errorf("Ready() = nil with every breaker open")
	}
	var buf bytes.Buffer
	coord.WriteMetrics(&buf)
	if want := fmt.Sprintf("ooosim_fleet_node_probe_failures_total{node=%q} 2", dead); !strings.Contains(buf.String(), want) {
		t.Errorf("metrics missing %q:\n%s", want, buf.String())
	}
	if want := fmt.Sprintf("ooosim_fleet_node_up{node=%q} 0", dead); !strings.Contains(buf.String(), want) {
		t.Errorf("metrics missing %q:\n%s", want, buf.String())
	}

	// Cooldown elapses: probation routes one try at the node again.
	waitFor(t, func() bool { return n.breaker.Allow() })
	if st := n.breaker.State(); st != "half-open" {
		t.Errorf("post-cooldown breaker state = %s, want half-open", st)
	}
}

// TestFleetBreakerClosesOnProbeRecovery: a dispatch-opened breaker
// closes the moment a health probe reaches the worker again — no
// cooldown wait, no operator action.
func TestFleetBreakerClosesOnProbeRecovery(t *testing.T) {
	fake := newFakeWorker()
	srv := httptest.NewServer(service.NewAPIHandler(fake, service.HandlerOptions{}))
	defer srv.Close()

	coord, err := New(Options{
		Workers:          []string{srv.URL},
		PingInterval:     time.Hour,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour, // recovery must come from the probe, not the cooldown
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()
	n := coord.nodes[0]

	coord.markDown(n, errors.New("synthetic dispatch failure"))
	if n.breaker.Allow() {
		t.Fatalf("threshold-1 breaker stayed closed after a dispatch failure")
	}
	if len(coord.readyNodes()) != 0 {
		t.Fatalf("open-breaker node still in the routing set")
	}

	coord.pingOnce()
	if st := n.breaker.State(); st != "closed" {
		t.Fatalf("breaker state after live probe = %s, want closed", st)
	}
	if len(coord.readyNodes()) != 1 {
		t.Fatalf("recovered node missing from the routing set")
	}
}

// TestFleetRetryBudgetExhausted: with every dispatch failing and a
// budget of one node failure per point, the batch completes with
// routing errors instead of hanging, and the exhaustion metric counts
// each point.
func TestFleetRetryBudgetExhausted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	dead := "http://" + ln.Addr().String()
	ln.Close()

	coord, err := New(Options{
		Workers:      []string{dead},
		PingInterval: time.Hour,
		RetryBudget:  1,
		NoNodesGrace: 100 * time.Millisecond,
		Log:          t.Logf,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	defer coord.Close()

	jobs := []service.Job{
		{Name: "a", Config: config.CheckpointDefault(64, 512), Trace: trace.Recipe{Kernel: trace.KernelStream, N: 6000}, Insts: 1500},
		{Name: "b", Config: config.CheckpointDefault(32, 512), Trace: trace.Recipe{Kernel: trace.KernelStream, N: 6000}, Insts: 1500},
	}
	b, err := coord.Submit(jobs)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := b.Wait(ctx)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if len(st.Errors) != len(jobs) {
		t.Fatalf("errors = %v, want one per point", st.Errors)
	}
	for _, e := range st.Errors {
		if !strings.Contains(e, "retry budget") {
			t.Errorf("error %q does not mention the retry budget", e)
		}
	}
	if got := coord.metrics.RetryExhausted.Load(); got != uint64(len(jobs)) {
		t.Errorf("RetryExhausted = %d, want %d", got, len(jobs))
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
