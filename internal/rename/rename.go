// Package rename implements the CAM-style register mapping of the paper
// (section 2, figures 3-6): one entry per physical register holding the
// logical register it renames, a Valid bit, and the paper's new Future
// Free bit, plus a free list.
//
// Two freeing disciplines are supported, matching the two processors
// under study:
//
//   - ROB mode: AllocateROB returns the previous mapping; the caller
//     frees it when the redefining instruction commits (conventional).
//   - Checkpoint mode: Allocate marks the previous mapping's Future Free
//     bit; all such registers are freed together when the checkpoint
//     owning their window commits (the paper's deferred release).
//
// Snapshot/Rollback implement the checkpointing of figure 3: a snapshot
// conceptually costs two bits per physical register (Valid + Future
// Free); the free list and the logical map are derivable in hardware and
// are kept outside the snapshot (Rollback re-derives them).
//
// The free list is a LIFO stack, so allocation is a pop instead of a
// lowest-free bitmap scan (the scan was a visible slice of the dispatch
// profile at 4096 registers). Which free register an allocation picks
// is architecturally irrelevant — renaming is a bijection and no timing
// in the pipeline depends on the numeric index — and the stack order is
// fully deterministic, so simulated results are unchanged (pinned by
// the figure-9 golden).
package rename

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/isa"
)

// PhysReg indexes the physical register file. PhysNone means "none".
type PhysReg int32

// PhysNone marks the absence of a physical register.
const PhysNone PhysReg = -1

// Table is the CAM register map. Not safe for concurrent use.
type Table struct {
	n int
	// logical[p] is the logical register that physical p renames. Only
	// meaningful while p is valid or awaiting a deferred free.
	logical []isa.Reg
	// valid marks current mappings (at most one per logical register).
	valid *bitset.Set
	// futureFree marks old mappings superseded since the last
	// checkpoint; they are freed when that window's checkpoint commits.
	futureFree *bitset.Set
	// freeStack holds the allocatable physical registers (allocate pops,
	// free pushes); inFree mirrors membership for the double-free and
	// invariant checks.
	freeStack []PhysReg
	inFree    []bool
	// scratch is the rollback work set for re-deriving the free list.
	scratch *bitset.Set
	// rmap is the logical->physical inverse of the CAM's associative
	// lookup.
	rmap [isa.NumLogical]PhysReg

	// snapPool recycles snapshot backing sets (see ReleaseSnapshot):
	// checkpoint-heavy runs take one snapshot per window, and the bitset
	// clones per take dominated the simulator's allocation profile
	// before pooling.
	snapPool []Snapshot
}

// Snapshot is the checkpoint record of the rename state at one point in
// the program. See the package comment for the hardware-cost argument.
type Snapshot struct {
	valid      *bitset.Set
	futureFree *bitset.Set
	rmap       [isa.NumLogical]PhysReg
}

// FutureFree returns the snapshot's captured Future Free set: the
// registers superseded during the *previous* checkpoint's window, to be
// freed when that previous checkpoint commits.
func (s *Snapshot) FutureFree() *bitset.Set { return s.futureFree }

// New builds a rename table with nPhys physical registers and allocates
// an initial mapping for every logical register (architectural state
// must always be mapped).
func New(nPhys int) *Table {
	if nPhys < isa.NumLogical {
		panic(fmt.Sprintf("rename: %d physical registers < %d logical", nPhys, isa.NumLogical))
	}
	t := &Table{
		n:          nPhys,
		logical:    make([]isa.Reg, nPhys),
		valid:      bitset.New(nPhys),
		futureFree: bitset.New(nPhys),
		freeStack:  make([]PhysReg, 0, nPhys),
		inFree:     make([]bool, nPhys),
		scratch:    bitset.New(nPhys),
	}
	// Push high to low so the first pops hand out the lowest indices,
	// matching the initial mappings below.
	for p := nPhys - 1; p >= isa.NumLogical; p-- {
		t.logical[p] = isa.RegNone
		t.freeStack = append(t.freeStack, PhysReg(p))
		t.inFree[p] = true
	}
	for l := 0; l < isa.NumLogical; l++ {
		p := PhysReg(l)
		t.valid.Set(int(p))
		t.logical[p] = isa.Reg(l)
		t.rmap[l] = p
	}
	return t
}

// NumPhys returns the physical register file size.
func (t *Table) NumPhys() int { return t.n }

// FreeCount returns the number of allocatable physical registers.
func (t *Table) FreeCount() int { return len(t.freeStack) }

// Lookup returns the current physical mapping of logical register l.
func (t *Table) Lookup(l isa.Reg) PhysReg {
	if !l.Valid() {
		return PhysNone
	}
	return t.rmap[l]
}

// pushFree returns p to the free stack.
func (t *Table) pushFree(p PhysReg) {
	t.freeStack = append(t.freeStack, p)
	t.inFree[p] = true
}

// allocate takes a register from the free stack and installs the new
// mapping, returning the new and previous physical registers.
func (t *Table) allocate(dest isa.Reg) (newP, prevP PhysReg, ok bool) {
	if !dest.Valid() {
		panic(fmt.Sprintf("rename: allocate for invalid register %v", dest))
	}
	top := len(t.freeStack) - 1
	if top < 0 {
		return PhysNone, PhysNone, false
	}
	newP = t.freeStack[top]
	t.freeStack = t.freeStack[:top]
	t.inFree[newP] = false
	prevP = t.rmap[dest]
	t.valid.Set(int(newP))
	t.logical[newP] = dest
	t.rmap[dest] = newP
	if prevP != PhysNone {
		t.valid.Clear(int(prevP))
	}
	return newP, prevP, true
}

// Allocate renames dest in checkpoint mode: the previous mapping's
// Future Free bit is set so it is released when the current window's
// checkpoint commits (figures 4-5 of the paper). It returns the new and
// previous physical registers, or ok=false when the free list is empty.
func (t *Table) Allocate(dest isa.Reg) (newP, prevP PhysReg, ok bool) {
	newP, prevP, ok = t.allocate(dest)
	if !ok {
		return PhysNone, PhysNone, false
	}
	if prevP != PhysNone {
		t.futureFree.Set(int(prevP))
	}
	return newP, prevP, true
}

// UnwindCheckpointed reverses a single checkpoint-mode allocation during
// a pseudo-ROB branch recovery. It is only valid when no checkpoint was
// taken after the allocation (the caller guarantees it — otherwise the
// Future Free bit to restore lives in a snapshot, and a full rollback is
// required). Unwinding must proceed in reverse program order.
func (t *Table) UnwindCheckpointed(dest isa.Reg, newP, prevP PhysReg) {
	if t.rmap[dest] != newP {
		panic(fmt.Sprintf("rename: checkpointed unwind of %v expects p%d, table has p%d",
			dest, newP, t.rmap[dest]))
	}
	t.valid.Clear(int(newP))
	t.logical[newP] = isa.RegNone
	t.pushFree(newP)
	t.rmap[dest] = prevP
	if prevP != PhysNone {
		t.valid.Set(int(prevP))
		t.futureFree.Clear(int(prevP))
	}
}

// AllocateROB renames dest in conventional mode, returning both the new
// mapping and the previous one; the caller must Free the previous
// mapping when the renaming instruction commits.
func (t *Table) AllocateROB(dest isa.Reg) (newP, prevP PhysReg, ok bool) {
	return t.allocate(dest)
}

// Free returns p to the free list (ROB-mode commit, or rollback cleanup).
func (t *Table) Free(p PhysReg) {
	if p == PhysNone {
		return
	}
	i := int(p)
	if t.inFree[i] {
		panic(fmt.Sprintf("rename: double free of p%d", p))
	}
	if t.valid.Get(i) {
		panic(fmt.Sprintf("rename: freeing valid mapping p%d (%v)", p, t.logical[i]))
	}
	t.futureFree.Clear(i)
	t.logical[i] = isa.RegNone
	t.pushFree(p)
}

// UnwindROB reverses a single ROB-mode allocation during a squash walk:
// the youngest definition of a logical register is removed, restoring
// prevP as the current mapping. Squashes must unwind in reverse program
// order.
func (t *Table) UnwindROB(dest isa.Reg, newP, prevP PhysReg) {
	if t.rmap[dest] != newP {
		panic(fmt.Sprintf("rename: unwind of %v expects p%d, table has p%d",
			dest, newP, t.rmap[dest]))
	}
	t.valid.Clear(int(newP))
	t.logical[newP] = isa.RegNone
	t.pushFree(newP)
	t.rmap[dest] = prevP
	if prevP != PhysNone {
		t.valid.Set(int(prevP))
	}
}

// TakeSnapshot implements taking a checkpoint (figure 6): it captures
// the Valid and Future Free bits (plus the logical map for the
// simulator's benefit) and clears the live Future Free bits so the next
// window starts accumulating afresh. The free list is not captured —
// Rollback re-derives it, as the hardware would.
func (t *Table) TakeSnapshot() Snapshot {
	var s Snapshot
	if n := len(t.snapPool); n > 0 {
		s = t.snapPool[n-1]
		t.snapPool[n-1] = Snapshot{}
		t.snapPool = t.snapPool[:n-1]
		s.valid.CopyFrom(t.valid)
		s.futureFree.CopyFrom(t.futureFree)
	} else {
		s = Snapshot{
			valid:      t.valid.Clone(),
			futureFree: t.futureFree.Clone(),
		}
	}
	s.rmap = t.rmap
	t.futureFree.Reset()
	return s
}

// ReleaseSnapshot returns a snapshot's backing sets to the table's
// internal pool for reuse by a future TakeSnapshot. The caller must
// drop every reference into the snapshot (including its FutureFree set)
// before releasing; the owning checkpoint's commit or rollback-discard
// is the natural point. Releasing the zero Snapshot is a no-op.
func (t *Table) ReleaseSnapshot(s Snapshot) {
	if s.valid == nil {
		return
	}
	t.snapPool = append(t.snapPool, s)
}

// CommitFutureFree releases every register in ff (a snapshot's captured
// Future Free set) back to the free list. Called when the checkpoint
// owning that window commits.
func (t *Table) CommitFutureFree(ff *bitset.Set) {
	ff.ForEach(func(i int) {
		if t.valid.Get(i) {
			panic(fmt.Sprintf("rename: future-free register p%d still valid", i))
		}
		if !t.inFree[i] {
			t.logical[i] = isa.RegNone
			t.pushFree(PhysReg(i))
		}
	})
}

// Rollback restores the rename state to snapshot s, taken at the
// checkpoint being rolled back to. Because older checkpoints may have
// committed (and freed registers) since s was captured, the free list is
// recomputed as "everything not valid and not pending a deferred free",
// where pendingFree is the union of the captured Future Free sets of all
// still-live older checkpoints. The live Future Free accumulator
// restarts empty, exactly the post-TakeSnapshot state.
func (t *Table) Rollback(s Snapshot, pendingFree []*bitset.Set) {
	t.valid.CopyFrom(s.valid)
	t.rmap = s.rmap
	t.futureFree.Reset()

	// free = ~(valid | union(pendingFree)), rebuilt in ascending index
	// order (deterministic; subsequent pops take the highest index
	// first, which is as arbitrary — and as architecturally invisible —
	// as any other order).
	t.scratch.SetAll()
	t.scratch.AndNotWith(t.valid)
	for _, pf := range pendingFree {
		t.scratch.AndNotWith(pf)
	}
	t.freeStack = t.freeStack[:0]
	clear(t.inFree)
	// Rebuild the logical fields of valid entries from the snapshot map
	// (hardware keeps them in the CAM; the simulator re-derives them).
	for l := 0; l < isa.NumLogical; l++ {
		p := t.rmap[l]
		if p != PhysNone {
			t.logical[p] = isa.Reg(l)
		}
	}
	t.scratch.ForEach(func(i int) {
		t.logical[i] = isa.RegNone
		t.freeStack = append(t.freeStack, PhysReg(i))
		t.inFree[i] = true
	})
}

// Logical returns the logical register physical p currently renames, or
// isa.RegNone.
func (t *Table) Logical(p PhysReg) isa.Reg {
	if p == PhysNone {
		return isa.RegNone
	}
	return t.logical[p]
}

// Valid reports whether p holds the current mapping of its logical
// register.
func (t *Table) Valid(p PhysReg) bool { return p != PhysNone && t.valid.Get(int(p)) }

// FutureFreePending reports whether p is marked for deferred freeing in
// the live window.
func (t *Table) FutureFreePending(p PhysReg) bool {
	return p != PhysNone && t.futureFree.Get(int(p))
}

// CheckInvariants verifies structural consistency; tests call it after
// every operation sequence. It returns a descriptive error on violation.
func (t *Table) CheckInvariants() error {
	// Every logical register maps to exactly one valid physical entry.
	seen := make(map[PhysReg]isa.Reg)
	for l := 0; l < isa.NumLogical; l++ {
		p := t.rmap[l]
		if p == PhysNone {
			return fmt.Errorf("rename: logical %v unmapped", isa.Reg(l))
		}
		if !t.valid.Get(int(p)) {
			return fmt.Errorf("rename: logical %v maps to invalid p%d", isa.Reg(l), p)
		}
		if t.logical[p] != isa.Reg(l) {
			return fmt.Errorf("rename: p%d records %v, rmap says %v", p, t.logical[p], isa.Reg(l))
		}
		if prev, dup := seen[p]; dup {
			return fmt.Errorf("rename: p%d mapped by both %v and %v", p, prev, isa.Reg(l))
		}
		seen[p] = isa.Reg(l)
	}
	// Valid count equals the logical register count.
	if got := t.valid.Count(); got != isa.NumLogical {
		return fmt.Errorf("rename: %d valid bits, want %d", got, isa.NumLogical)
	}
	// The stack and the membership mirror agree.
	count := 0
	for _, free := range t.inFree {
		if free {
			count++
		}
	}
	if count != len(t.freeStack) {
		return fmt.Errorf("rename: freeStack has %d entries, membership says %d", len(t.freeStack), count)
	}
	for _, p := range t.freeStack {
		if !t.inFree[p] {
			return fmt.Errorf("rename: p%d stacked but not marked free", p)
		}
	}
	// Free, valid and future-free are disjoint.
	for i := 0; i < t.n; i++ {
		free, valid, ff := t.inFree[i], t.valid.Get(i), t.futureFree.Get(i)
		if free && (valid || ff) {
			return fmt.Errorf("rename: p%d free but valid=%v futureFree=%v", i, valid, ff)
		}
		if valid && ff {
			return fmt.Errorf("rename: p%d both valid and future-free", i)
		}
	}
	return nil
}
