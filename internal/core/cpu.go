package core

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/fu"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/mem"
	"repro/internal/queue"
	"repro/internal/rename"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vreg"
)

// consumerRef is one wakeup registration: a waiting instruction plus the
// Seq it had when it registered. Records recycle (see DynInst), so the
// Seq is re-checked at wake time — a mismatch means the slot was reused
// by a younger instruction and the registration is stale.
type consumerRef struct {
	d   *DynInst
	seq uint64
}

// CPU is one simulated processor instance bound to a workload trace.
// Construct with New; drive with Run. A CPU is single-use per Run — the
// harness builds a fresh CPU per configuration point.
type CPU struct {
	cfg  config.Config
	tr   *trace.Trace
	hier *mem.Hierarchy
	pred branch.Predictor
	fus  *fu.Pool
	rt   *rename.Table
	intQ *queue.IQ[*DynInst]
	fpQ  *queue.IQ[*DynInst]
	lq   *lsq.LSQ

	// policy is the retirement engine selected by cfg.Commit; it owns
	// the commit-side structures (ROB, checkpoint table, pseudo-ROB,
	// oracle window) behind the CommitPolicy seam.
	policy CommitPolicy

	// sliq is the slow lane of the issue-queue hierarchy: built by the
	// checkpoint-family policies, nil elsewhere. It stays on the CPU
	// because the shared wakeup paths (writeback, squash, drain) thread
	// through it.
	sliq *queue.SLIQ[*DynInst]

	// pool recycles DynInst records (see the contract on DynInst).
	pool instPool

	// Virtual-register extension (Figure 14); nil when disabled.
	vt           *vreg.Tracker
	deferredBind []*DynInst
	// archReleased makes the release of each logical register's
	// architectural initial value idempotent across rollback replays.
	archReleased [isa.NumLogical]bool

	// Time and fetch state.
	now           int64
	fetchPos      int64
	nextSeq       uint64
	fetchResumeAt int64
	divergedAt    *DynInst // unresolved mispredicted branch (wrong path active)
	wpCounter     uint64
	lastLoadAddr  uint64

	// Scoreboard.
	regReady  []bool
	longTaint []bool
	consumers [][]consumerRef
	producer  []*DynInst

	completions completionHeap

	// Exception injection, indexed by trace position (lazily allocated
	// on the first InjectExceptionAt — the hot path then skips it with
	// one nil check instead of the former per-dispatch map lookups):
	// 1 = armed, raises on completion; 2 = replay, checkpoint and
	// deliver precisely.
	exceptArm  []uint8
	exceptions uint64
	// knownBranch marks trace positions of branches whose misprediction
	// caused a checkpoint rollback; on replay their resolved direction
	// is known to the recovery hardware. Lazily allocated on the first
	// rollback (ROB mode never pays for it).
	knownBranch []bool

	// Counters.
	inflight          int
	liveFPLong        int
	liveFPShort       int
	sumInflight       uint64
	maxInflight       int
	committed         uint64
	fetched           uint64
	dispatched        uint64
	issued            uint64
	replayed          uint64
	rollbacks         uint64
	probRecoveries    uint64
	ckptStallCycles   uint64
	renameStallCycles uint64
	retire            stats.Breakdown
	occ               *stats.Occupancy
	stalls            dispatchStalls

	portsUsed int // data-cache ports consumed this cycle
	// resourceStalled marks a dispatch rejection on a resource that
	// only recycles at checkpoint commit (registers, tags, LSQ); the
	// front end then takes an emergency checkpoint to close the window
	// (deadlock avoidance, see dispatchStage).
	resourceStalled bool

	// issueRetry is the issue stage's scratch list of entries popped
	// but not issued this cycle (structural hazards); kept on the CPU
	// so the per-cycle loop never allocates it.
	issueRetry []*queue.IQEntry[*DynInst]
	// sliqAccept is the bound SLIQ drain callback, built once so the
	// per-cycle drain doesn't allocate a closure.
	sliqAccept func(seq uint64, d *DynInst) bool

	lastCommitCycle int64
}

// dispatchStalls breaks down why dispatch groups ended early (counted
// per rejected instruction attempt).
type dispatchStalls struct {
	ROB, IQ, LSQ, Rename, Ckpt, VTag uint64
	FetchGate                        uint64 // cycles the front end was redirected/stalled
}

// New builds a CPU for the given configuration and workload.
func New(cfg config.Config, tr *trace.Trace) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}

	physSpace := cfg.PhysRegs
	if cfg.VirtualRegisters {
		// In virtual-register mode real register pressure is enforced
		// by the vreg tracker; the rename table is only the simulator's
		// dependence-tracking namespace. Its entries recycle at
		// checkpoint commit (later than tag release), so size it far
		// beyond any reachable in-flight count.
		physSpace = 8192 + 2*cfg.VirtualTags
	}

	c := &CPU{
		cfg:       cfg,
		tr:        tr,
		hier:      mem.NewHierarchy(cfg),
		fus:       fu.NewPool(cfg),
		rt:        rename.New(physSpace),
		intQ:      queue.NewIQ[*DynInst](cfg.IntQueueEntries),
		fpQ:       queue.NewIQ[*DynInst](cfg.FPQueueEntries),
		lq:        lsq.New(cfg.LSQEntries),
		regReady:  make([]bool, physSpace),
		longTaint: make([]bool, physSpace),
		consumers: make([][]consumerRef, physSpace),
		producer:  make([]*DynInst, physSpace),
	}
	for l := 0; l < isa.NumLogical; l++ {
		c.regReady[c.rt.Lookup(isa.Reg(l))] = true
	}
	if cfg.PerfectBranchPrediction {
		c.pred = branch.NewPerfect()
	} else {
		c.pred = branch.NewGshare(cfg.BranchPredictorBits)
	}

	build, ok := commitPolicyFactories[cfg.Commit]
	if !ok {
		// Validate already guards this; a policy registered in config
		// but not in core is a wiring bug worth a clear error.
		return nil, fmt.Errorf("core: no commit policy registered for %q", cfg.Commit)
	}
	c.policy = build(c)
	if cfg.VirtualRegisters {
		c.vt = vreg.New(cfg.VirtualTags, cfg.PhysRegs, isa.NumLogical)
		// prevProd links outlive commit in this mode; records must not
		// recycle (see DynInst).
		c.pool.disabled = true
	}
	c.lastLoadAddr = 1 << 20
	if c.sliq != nil {
		c.sliqAccept = c.acceptFromSLIQ
	}

	// Warm the instruction path and the data caches: cold misses are an
	// artefact of short runs (see mem.Hierarchy.PrimeFetch). The
	// footprint — first-seen IL1 lines interleaved with the data stream
	// — is precomputed once per trace and shared across every CPU built
	// over it (trace.WarmFootprint).
	for _, ev := range tr.WarmFootprint() {
		if ev.Fetch {
			c.hier.PrimeFetch(ev.Addr)
		} else {
			c.hier.WarmData(ev.Addr)
		}
	}
	for pc := uint64(0xF0000000); pc < 0xF0000000+64*4; pc += 32 {
		c.hier.PrimeFetch(pc) // wrong-path region
	}
	return c, nil
}

// RunOptions bounds a simulation.
type RunOptions struct {
	// MaxInsts stops the run after committing this many instructions
	// (0 means the full trace).
	MaxInsts uint64
	// MaxCycles is a hard cycle bound (0 means 100M).
	MaxCycles int64
	// CollectOccupancy enables the full occupancy distribution needed
	// by Figure 7 (slightly more memory; negligible time).
	CollectOccupancy bool
	// WatchdogCycles panics if no instruction commits for this many
	// cycles (0 means 2M); it exists to catch simulator deadlocks.
	WatchdogCycles int64
}

// InjectExceptionAt arms a precise exception at the given trace
// position: the instruction raises when it first completes, the
// processor rolls back to its checkpoint and re-executes with a
// checkpoint placed exactly before it (the paper's two-pass protocol).
// Checkpoint-family policies only (a no-op under rob and oracle, which
// model no replay mechanism); must be called before Run.
func (c *CPU) InjectExceptionAt(pos int64) {
	if c.exceptArm == nil {
		c.exceptArm = make([]uint8, c.tr.Len())
	}
	c.exceptArm[pos] = 1
}

// exceptPhase returns the exception protocol phase armed at pos (0 when
// none).
func (c *CPU) exceptPhase(pos int64) uint8 {
	if c.exceptArm == nil || pos < 0 {
		return 0
	}
	return c.exceptArm[pos]
}

// branchKnown reports whether the branch at pos replays with a known
// resolution after a checkpoint rollback.
func (c *CPU) branchKnown(pos int64) bool {
	return c.knownBranch != nil && c.knownBranch[pos]
}

// markBranchKnown records a rollback-resolved branch position.
func (c *CPU) markBranchKnown(pos int64) {
	if c.knownBranch == nil {
		c.knownBranch = make([]bool, c.tr.Len())
	}
	c.knownBranch[pos] = true
}

// Exceptions returns the number of precisely delivered exceptions.
func (c *CPU) Exceptions() uint64 { return c.exceptions }

// Run simulates until the instruction target, trace exhaustion, or the
// cycle bound, and returns the collected results.
func (c *CPU) Run(opt RunOptions) stats.Results {
	target := opt.MaxInsts
	if target == 0 || target > uint64(c.tr.Len()) {
		target = uint64(c.tr.Len())
	}
	maxCycles := opt.MaxCycles
	if maxCycles == 0 {
		maxCycles = 100_000_000
	}
	watchdog := opt.WatchdogCycles
	if watchdog == 0 {
		watchdog = 2_000_000
	}
	if opt.CollectOccupancy {
		bound := c.policy.OccupancyBound()
		if bound < 1 {
			bound = 1
		}
		c.occ = stats.NewOccupancy(bound)
	}

	for c.committed < target && c.now < maxCycles {
		c.portsUsed = 0
		c.policy.Commit()
		c.writebackStage()
		c.issueStage()
		c.dispatchStage()

		c.sumInflight += uint64(c.inflight)
		if c.inflight > c.maxInflight {
			c.maxInflight = c.inflight
		}
		if c.occ != nil {
			c.occ.Sample(c.inflight, c.liveFPLong, c.liveFPShort)
		}
		c.now++

		if c.committed > 0 || c.inflight > 0 {
			if c.now-c.lastCommitCycle > watchdog {
				panic(fmt.Sprintf("core: no commit progress for %d cycles at cycle %d (%s)",
					watchdog, c.now, c.debugState()))
			}
		}
		if c.fetchExhausted() && c.inflight == 0 && c.completions.Len() == 0 {
			break
		}
	}
	return c.results()
}

// fetchExhausted reports that no further correct-path instruction can be
// fetched.
func (c *CPU) fetchExhausted() bool {
	return c.divergedAt == nil && c.fetchPos >= c.tr.Len()
}

// iqFor returns the instruction queue for an operation class: FP
// arithmetic uses the floating-point queue, everything else (including
// memory and control) the integer queue, as in the paper.
func (c *CPU) iqFor(op isa.Op) *queue.IQ[*DynInst] {
	if op == isa.FPAlu {
		return c.fpQ
	}
	return c.intQ
}

// results assembles the run's statistics.
func (c *CPU) results() stats.Results {
	r := stats.Results{
		Name:                fmt.Sprintf("%s/%s", c.cfg.Commit, c.tr.Name()),
		Cycles:              c.now,
		Committed:           c.committed,
		Fetched:             c.fetched,
		Dispatched:          c.dispatched,
		Issued:              c.issued,
		Replayed:            c.replayed,
		Rollbacks:           c.rollbacks,
		PseudoROBRecoveries: c.probRecoveries,
		Branch:              c.pred.Stats(),
		Mem:                 c.hier.Stats(),
		Retire:              c.retire,
		MaxInflight:         c.maxInflight,
		Occ:                 c.occ,
	}
	if c.now > 0 {
		r.MeanInflight = float64(c.sumInflight) / float64(c.now)
	}
	c.policy.AddStats(&r)
	if c.sliq != nil {
		ss := c.sliq.Stats()
		r.SLIQMoved = ss.Inserted
		r.SLIQWoken = ss.Woken
	}
	return r
}

// debugState renders a short pipeline summary for watchdog panics.
func (c *CPU) debugState() string {
	s := fmt.Sprintf("committed=%d inflight=%d fetchPos=%d intQ=%d/%d fpQ=%d/%d lsq=%d completions=%d",
		c.committed, c.inflight, c.fetchPos,
		c.intQ.Len(), c.intQ.Cap(), c.fpQ.Len(), c.fpQ.Cap(), c.lq.Len(), c.completions.Len())
	s += c.policy.DebugState()
	if c.divergedAt != nil {
		s += fmt.Sprintf(" diverged@%d", c.divergedAt.Seq)
	}
	return s
}
