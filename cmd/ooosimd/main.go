// Command ooosimd is the simulation daemon: an HTTP service that
// executes batches of simulation points on a shared bounded worker
// pool behind a content-addressed result cache, so any point computed
// before — by any client, in any earlier process — is returned without
// simulation.
//
// Usage:
//
//	ooosimd [-addr HOST:PORT] [-cache-dir DIR] [-cache-entries N]
//	        [-workers N] [-v]
//
// API (see internal/service):
//
//	POST /v1/batches             submit {"jobs":[...]}
//	GET  /v1/batches/{id}        poll status and results
//	GET  /v1/batches/{id}/events NDJSON progress stream
//	GET  /healthz                liveness
//
// Point cmd/experiments -server at the daemon to regenerate figures
// against the warm cache.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8321", "listen address")
	cacheDir := flag.String("cache-dir", "", "disk tier of the result cache (empty: memory only)")
	cacheEntries := flag.Int("cache-entries", service.DefaultCacheEntries, "memory tier capacity, in results")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker-pool size (shared across batches)")
	verbose := flag.Bool("v", false, "log every request")
	flag.Parse()

	cache, err := service.NewCache(*cacheEntries, *cacheDir)
	if err != nil {
		log.Fatalf("ooosimd: %v", err)
	}
	// Every finished batch logs its cache hit/miss split alongside the
	// snapshot-sharing stats (group count, warm-donor reuse rate), so
	// operators can see the snapshot-fork sharing actually engage.
	sched := service.NewScheduler(service.SchedulerOptions{
		Workers: *workers,
		Cache:   cache,
		Log:     log.Printf,
	})
	handler := service.NewHandler(sched)
	if *verbose {
		inner := handler
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			inner.ServeHTTP(w, r)
			log.Printf("%s %s (%.1fms)", r.Method, r.URL.Path, float64(time.Since(start).Microseconds())/1000)
		})
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// A client that stalls mid-headers or parks an idle connection
		// must not wedge the daemon (the default is no timeout at all).
		// WriteTimeout and ReadTimeout stay 0 on purpose:
		// /v1/batches/{id}/events streams NDJSON for as long as a batch
		// runs, and either deadline would sever live streams (ReadTimeout
		// trips the server's background read mid-handler). Slow-loris
		// headers are bounded by ReadHeaderTimeout and parked keep-alive
		// connections by IdleTimeout.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		// In-flight simulations are not interruptible; give handlers a
		// moment to flush, then exit.
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(sctx)
	}()

	where := *cacheDir
	if where == "" {
		where = "memory only"
	}
	log.Printf("ooosimd: listening on %s (workers=%d, cache=%s)", *addr, *workers, where)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ooosimd: %v", err)
	}
}
