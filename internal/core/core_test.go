package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

func mustRun(t *testing.T, cfg config.Config, tr *trace.Trace, n uint64) stats.Results {
	t.Helper()
	cpu, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	res := cpu.Run(RunOptions{MaxInsts: n})
	if res.Committed < n {
		t.Fatalf("committed %d < %d (%s)", res.Committed, n, cpu.debugState())
	}
	return res
}

func TestDeterminism(t *testing.T) {
	tr := trace.FPMix(40000, 5)
	for _, cfg := range []config.Config{
		config.BaselineSized(256),
		config.CheckpointDefault(64, 1024),
	} {
		cfg.MemoryLatency = 200
		a := mustRun(t, cfg, tr, 30000)
		b := mustRun(t, cfg, tr, 30000)
		if a.Cycles != b.Cycles || a.Committed != b.Committed || a.Fetched != b.Fetched {
			t.Errorf("%v: non-deterministic: %+v vs %+v", cfg.Commit, a, b)
		}
	}
}

func TestWindowScalingMonotonic(t *testing.T) {
	// Figure 1's premise: on a memory-bound workload, larger windows
	// never hurt. (Strided: still missing L2 at test scale.)
	tr := trace.StridedStream(90000, 8)
	prev := -1.0
	for _, w := range []int{64, 128, 512, 2048} {
		cfg := config.BaselineSized(w)
		cfg.MemoryLatency = 500
		ipc := mustRun(t, cfg, tr, 60000).IPC()
		if ipc < prev*0.98 { // small tolerance for noise
			t.Fatalf("window %d: IPC %.3f regressed from %.3f", w, ipc, prev)
		}
		prev = ipc
	}
}

func TestCheckpointCountMonotonic(t *testing.T) {
	// Figure 13's premise: more checkpoints never hurt.
	tr := trace.FPMix(90000, 9)
	prev := -1.0
	for _, k := range []int{2, 4, 8, 16} {
		cfg := config.CheckpointDefault(128, 2048)
		cfg.Checkpoints = k
		ipc := mustRun(t, cfg, tr, 60000).IPC()
		if ipc < prev*0.98 {
			t.Fatalf("checkpoints %d: IPC %.3f regressed from %.3f", k, ipc, prev)
		}
		prev = ipc
	}
}

func TestSLIQHelpsSmallQueues(t *testing.T) {
	// Section 3's premise: with a tiny issue queue, moving long-latency
	// dependants to the slow lane is a large win.
	tr := trace.FPMix(90000, 3)
	without := config.CheckpointDefault(32, 0) // no SLIQ
	with := config.CheckpointDefault(32, 1024)
	ipcWithout := mustRun(t, without, tr, 50000).IPC()
	ipcWith := mustRun(t, with, tr, 50000).IPC()
	if ipcWith < 1.5*ipcWithout {
		t.Fatalf("SLIQ should be a big win at IQ=32: %.3f vs %.3f", ipcWith, ipcWithout)
	}
}

func TestPerfectPredictionNoRecoveries(t *testing.T) {
	tr := trace.FPMix(60000, 4)
	cfg := config.CheckpointDefault(64, 1024)
	cfg.PerfectBranchPrediction = true
	res := mustRun(t, cfg, tr, 40000)
	if res.Rollbacks != 0 || res.PseudoROBRecoveries != 0 {
		t.Fatalf("perfect prediction must avoid all recoveries: %+v", res)
	}
	if res.Branch.Mispredicts != 0 {
		t.Fatal("perfect predictor mispredicted")
	}
}

// rollbackHeavyTrace builds a mix dominated by branches whose direction
// hangs off loads while streams thrash the caches, so mispredicted
// branches regularly resolve long after leaving the pseudo-ROB.
func rollbackHeavyTrace(n int) *trace.Trace {
	return trace.Mix(n, 42, trace.MixWeights{Strided: 4, Stream: 1, CondSlow: 40})
}

func TestMispredictsCauseRecoveries(t *testing.T) {
	tr := rollbackHeavyTrace(120000)
	cfg := config.CheckpointDefault(32, 1024)
	res := mustRun(t, cfg, tr, 80000)
	if res.Branch.Mispredicts == 0 {
		t.Fatal("the mix should mispredict sometimes")
	}
	if res.PseudoROBRecoveries+res.Rollbacks == 0 {
		t.Fatal("mispredicts must trigger one of the recovery paths")
	}
	// With a 32-entry pseudo-ROB and load-dependent branches, some
	// mispredicts resolve after leaving the pseudo-ROB: rollbacks.
	if res.Rollbacks == 0 {
		t.Fatal("expected checkpoint rollbacks with a small pseudo-ROB")
	}
	if res.Replayed == 0 {
		t.Fatal("rollbacks re-execute correct-path instructions")
	}
}

func TestPseudoROBRecoveryPath(t *testing.T) {
	// Branches resolving inside the pseudo-ROB recover without touching
	// a checkpoint; the mix's fast index-chain branches exercise it.
	tr := trace.FPMix(120000, 42)
	res := mustRun(t, config.CheckpointDefault(128, 1024), tr, 80000)
	if res.PseudoROBRecoveries == 0 {
		t.Fatal("fast-resolving mispredicts should recover from the pseudo-ROB")
	}
}

func TestExceptionProtocol(t *testing.T) {
	tr := trace.FPMix(60000, 6)
	cfg := config.CheckpointDefault(64, 1024)
	cpu, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	positions := []int64{5000, 20000}
	for _, p := range positions {
		cpu.InjectExceptionAt(p)
	}
	res := cpu.Run(RunOptions{MaxInsts: 40000})
	if got := cpu.Exceptions(); got != uint64(len(positions)) {
		t.Fatalf("delivered %d exceptions, want %d", got, len(positions))
	}
	if res.Rollbacks < uint64(len(positions)) {
		t.Fatalf("each exception needs a rollback, got %d", res.Rollbacks)
	}
	if res.Committed < 40000 {
		t.Fatal("execution must complete after exceptions")
	}
}

func TestOccupancyCollection(t *testing.T) {
	tr := trace.FPMix(60000, 2)
	cfg := config.BaselineSized(512)
	cfg.MemoryLatency = 500
	cpu, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	res := cpu.Run(RunOptions{MaxInsts: 40000, CollectOccupancy: true})
	if res.Occ == nil {
		t.Fatal("occupancy not collected")
	}
	if res.Occ.Max() > 512 {
		t.Fatalf("occupancy %d exceeds the window bound", res.Occ.Max())
	}
	if res.Occ.Samples() != uint64(res.Cycles) {
		t.Fatal("one sample per cycle expected")
	}
	// The distribution's mean must agree with the incremental mean.
	if diff := res.Occ.Mean() - res.MeanInflight; diff > 1 || diff < -1 {
		t.Fatalf("mean mismatch: %.1f vs %.1f", res.Occ.Mean(), res.MeanInflight)
	}
}

func TestBaselineWindowBound(t *testing.T) {
	tr := trace.StridedStream(60000, 8)
	cfg := config.BaselineSized(128)
	cfg.MemoryLatency = 500
	res := mustRun(t, cfg, tr, 40000)
	if res.MaxInflight > 128 {
		t.Fatalf("in-flight %d exceeds the ROB size", res.MaxInflight)
	}
}

func TestCheckpointModeExceedsROBBound(t *testing.T) {
	// The whole point: thousands in flight with an 8-entry checkpoint
	// table and a 128-entry pseudo-ROB. The strided stream keeps
	// missing L2 even at test scale (its touched footprint exceeds L2).
	tr := trace.StridedStream(120000, 8)
	cfg := config.CheckpointDefault(128, 2048)
	res := mustRun(t, cfg, tr, 80000)
	if res.MeanInflight < 1000 {
		t.Fatalf("checkpointed commit should sustain a kilo-instruction window, got %.0f",
			res.MeanInflight)
	}
	if res.CheckpointsTaken == 0 || res.CheckpointsCommitted == 0 {
		t.Fatal("checkpoint machinery unused")
	}
}

func TestRetireBreakdownConsistent(t *testing.T) {
	tr := trace.FPMix(90000, 8)
	cfg := config.CheckpointDefault(64, 1024)
	cpu, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	res := cpu.Run(RunOptions{MaxInsts: 60000})
	total := res.Retire.Total()
	if total == 0 {
		t.Fatal("no extractions classified")
	}
	// Every class should occur on the mix.
	for c := stats.RetireClass(0); c < stats.NumRetireClasses; c++ {
		if res.Retire[c] == 0 {
			t.Errorf("class %v never observed", c)
		}
	}
	if res.SLIQMoved != res.Retire[stats.RetireMoved] {
		t.Errorf("moved count mismatch: SLIQ %d vs breakdown %d",
			res.SLIQMoved, res.Retire[stats.RetireMoved])
	}
}

func TestVirtualRegistersPressure(t *testing.T) {
	tr := trace.FPMix(90000, 11)
	run := func(vtags, phys int) float64 {
		cfg := config.CheckpointDefault(128, 2048)
		cfg.VirtualRegisters = true
		cfg.VirtualTags = vtags
		cfg.PhysRegs = phys
		return mustRun(t, cfg, tr, 50000).IPC()
	}
	small := run(256, 256)
	large := run(2048, 512)
	if large <= small {
		t.Fatalf("more tags and registers must help: %.3f vs %.3f", large, small)
	}
}

func TestMemoryLatencySensitivity(t *testing.T) {
	// Sanity: a small window suffers roughly in proportion to latency.
	tr := trace.StridedStream(90000, 8)
	cfg := config.BaselineSized(128)
	cfg.MemoryLatency = 100
	fast := mustRun(t, cfg, tr, 40000).IPC()
	cfg.MemoryLatency = 1000
	slow := mustRun(t, cfg, tr, 40000).IPC()
	if fast < 3*slow {
		t.Fatalf("10x latency should crush a 128-entry window: %.3f vs %.3f", fast, slow)
	}
}

func TestPerfectL2RemovesLatencySensitivity(t *testing.T) {
	tr := trace.Stream(90000)
	mk := func(lat int) float64 {
		cfg := config.BaselineSized(128)
		cfg.PerfectL2 = true
		cfg.MemoryLatency = lat
		return mustRun(t, cfg, tr, 40000).IPC()
	}
	if a, b := mk(100), mk(1000); a != b {
		t.Fatalf("perfect L2 must hide memory latency entirely: %.3f vs %.3f", a, b)
	}
}

func TestRunStopsAtMaxCycles(t *testing.T) {
	tr := trace.Stream(60000)
	cfg := config.BaselineSized(128)
	cpu, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	res := cpu.Run(RunOptions{MaxInsts: 50000, MaxCycles: 1000})
	if res.Cycles > 1000 {
		t.Fatalf("cycle bound ignored: %d", res.Cycles)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(config.Config{}, trace.Stream(100)); err == nil {
		t.Error("invalid config must be rejected")
	}
	if _, err := New(config.Default(), nil); err == nil {
		t.Error("nil trace must be rejected")
	}
}

func TestTraceExhaustionDrains(t *testing.T) {
	// Run the whole trace: the final checkpoint window must drain.
	tr := trace.FPMix(20000, 13)
	cfg := config.CheckpointDefault(64, 1024)
	cfg.MemoryLatency = 100
	cpu, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	res := cpu.Run(RunOptions{MaxInsts: 0}) // full trace
	if res.Committed != uint64(tr.Len()) {
		t.Fatalf("committed %d of %d", res.Committed, tr.Len())
	}
}

func TestMemoryPortsThrottleLoads(t *testing.T) {
	// Table 1's "Memory ports: 2" is enforced at issue; on a load-heavy
	// workload, halving the ports must cost throughput.
	tr := trace.StridedStream(90000, 8)
	run := func(ports int) float64 {
		cfg := config.CheckpointDefault(128, 2048)
		cfg.MemoryPorts = ports
		cfg.MemoryLatency = 100
		return mustRun(t, cfg, tr, 50000).IPC()
	}
	one, two := run(1), run(2)
	if two <= one {
		t.Fatalf("two ports (%.3f) should beat one (%.3f)", two, one)
	}
}

func TestSLIQWakeDelayInsensitive(t *testing.T) {
	// Figure 10 as an invariant: 1 vs 12 cycles of wake delay is noise.
	tr := trace.FPMix(90000, 21)
	run := func(delay int) float64 {
		cfg := config.CheckpointDefault(64, 1024)
		cfg.SLIQWakeDelay = delay
		return mustRun(t, cfg, tr, 50000).IPC()
	}
	fast, slow := run(1), run(12)
	diff := (fast - slow) / fast
	if diff > 0.05 || diff < -0.05 {
		t.Fatalf("wake delay sensitivity too high: %.3f vs %.3f", fast, slow)
	}
}

func TestWrongPathWorkIsAccounted(t *testing.T) {
	// Wrong-path instructions consume fetch/dispatch bandwidth but must
	// never commit; Fetched - Committed - (still in flight) reflects them.
	tr := rollbackHeavyTrace(120000)
	cfg := config.CheckpointDefault(32, 1024)
	res := mustRun(t, cfg, tr, 60000)
	if res.Fetched <= res.Committed {
		t.Fatalf("expected wrong-path fetches beyond commits: fetched=%d committed=%d",
			res.Fetched, res.Committed)
	}
}

func TestCommittedMatchesTraceOrder(t *testing.T) {
	// The checkpointed machine must retire exactly the trace's
	// instructions despite out-of-order commit: cross-check committed
	// counts per opcode against the trace prefix.
	n := uint64(30000)
	tr := trace.FPMix(40000, 31)
	cfg := config.CheckpointDefault(64, 1024)
	cfg.MemoryLatency = 100
	cpu, err := New(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	res := cpu.Run(RunOptions{MaxInsts: n})
	// Committed count may exceed n by the tail of the final window.
	if res.Committed < n || res.Committed > n+uint64(cfg.CheckpointMaxInterval)+uint64(cfg.PseudoROBEntries) {
		t.Fatalf("committed %d outside [%d, %d+window]", res.Committed, n, n)
	}
}
