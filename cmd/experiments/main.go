// Command experiments regenerates the paper's evaluation: every figure
// of "Out-of-Order Commit Processors" (HPCA 2004), computed on the
// synthetic SPEC2000fp-stand-in suite.
//
// Usage:
//
//	experiments [-figure all|table1|1|7|9|10|11|12|13|14|ablations]
//	            [-insts N] [-seed S] [-parallel N] [-json FILE]
//	            [-server URL] [-v]
//
// Figures 9 and 11 share their simulation runs, as in the paper. Every
// figure executes through the internal/sim worker pool: -parallel N
// bounds the pool (default GOMAXPROCS), and the rendered tables are
// identical for every worker count because results are ordered by spec,
// not by completion. -json FILE additionally dumps every run's raw
// results for machine consumption.
//
// -server URL routes every simulation point to an ooosimd daemon
// instead of the in-process pool: previously computed points return
// from the daemon's content-addressed cache without simulation, so a
// warm rerun of a figure costs trace generation plus network only.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/service"
)

// jsonRecord is one run in the -json dump, labelled with the figure
// whose sweep produced it.
type jsonRecord struct {
	Figure    string `json:"figure"`
	Benchmark string `json:"benchmark"`
	Config    string `json:"config"`
	Results   any    `json:"results"`
}

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate (all, table1, 1, 7, 9, 10, 11, 12, 13, 14, ablations)")
	insts := flag.Uint64("insts", experiments.DefaultInsts, "committed instructions per configuration point")
	seed := flag.Uint64("seed", 42, "workload seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "simulation worker-pool size")
	server := flag.String("server", "", "run every point against an ooosimd daemon at URL")
	jsonOut := flag.String("json", "", "write every run's raw results as JSON to FILE")
	verbose := flag.Bool("v", false, "print per-run progress")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opt := experiments.Options{Insts: *insts, Seed: *seed, Workers: *parallel}.WithTraceCache()
	if *server != "" {
		opt.Runner = (&service.Client{BaseURL: *server}).SweepRunner()
	}
	if *verbose {
		opt.Progress = func(done, total int, line string) {
			fmt.Fprintf(os.Stderr, "[%*d/%d]%s\n", len(fmt.Sprint(total)), done, total, line)
		}
	}

	records := []jsonRecord{}
	currentFigure := ""
	if *jsonOut != "" {
		// Record is invoked serially by the engine; currentFigure is
		// only written between sweeps.
		opt.Record = func(r experiments.RunRecord) {
			records = append(records, jsonRecord{
				Figure:    currentFigure,
				Benchmark: r.Benchmark,
				Config:    r.Config,
				Results:   r.Results,
			})
		}
	}

	writeJSON := func() error {
		if *jsonOut == "" {
			return nil
		}
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d run records to %s\n", len(records), *jsonOut)
		return nil
	}

	fail := func(name string, err error) {
		// Flush whatever completed before the failure (or interrupt):
		// partial sweep output is still hours of simulation.
		if jerr := writeJSON(); jerr != nil {
			fmt.Fprintf(os.Stderr, "experiments: -json: %v\n", jerr)
		}
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
		os.Exit(1)
	}

	// Validate every requested figure name before running anything: a
	// typo in a comma-separated list must not silently vanish next to
	// valid names ("-figure 9,typo" used to run figure 9 and say
	// nothing about "typo").
	known := map[string]bool{
		"all": true, "table1": true, "1": true, "7": true, "9": true, "10": true,
		"11": true, "12": true, "13": true, "14": true, "ablations": true,
	}
	want := map[string]bool{}
	bad := []string{}
	for _, f := range strings.Split(*figure, ",") {
		name := strings.TrimSpace(f)
		if name == "" {
			continue // tolerate trailing/doubled commas
		}
		if !known[name] {
			bad = append(bad, fmt.Sprintf("%q", name))
			continue
		}
		want[name] = true
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "unknown figure %s (valid: all, table1, 1, 7, 9, 10, 11, 12, 13, 14, ablations)\n",
			strings.Join(bad, ", "))
		flag.Usage()
		os.Exit(2)
	}
	if len(want) == 0 {
		fmt.Fprintln(os.Stderr, "no figure requested")
		flag.Usage()
		os.Exit(2)
	}
	all := want["all"]

	section := func(name string, fn func() error) {
		if !all && !want[name] {
			return
		}
		currentFigure = name
		start := time.Now()
		if err := fn(); err != nil {
			fail("figure "+name, err)
		}
		fmt.Printf("(%s: %.1fs, %d workers)\n\n", name, time.Since(start).Seconds(), *parallel)
	}

	section("table1", func() error {
		fmt.Println("Table 1: architectural parameters")
		fmt.Println(experiments.Table1())
		return nil
	})
	section("1", func() error {
		r, err := experiments.Figure1(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	section("7", func() error {
		r, err := experiments.Figure7(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	if all || want["9"] || want["11"] {
		// The two figures share one sweep; label its records by what
		// was actually requested ("-figure 11 -json" must not file
		// results under a figure the user never asked for).
		switch {
		case all || (want["9"] && want["11"]):
			currentFigure = "9+11"
		case want["11"]:
			currentFigure = "11"
		default:
			currentFigure = "9"
		}
		start := time.Now()
		r, err := experiments.Figure9(ctx, opt)
		if err != nil {
			fail("figure "+currentFigure, err)
		}
		if all || want["9"] {
			fmt.Println(r)
		}
		if all || want["11"] {
			fmt.Println(r.Figure11String())
		}
		fmt.Printf("(%s: %.1fs, %d workers)\n\n", currentFigure, time.Since(start).Seconds(), *parallel)
	}
	section("10", func() error {
		r, err := experiments.Figure10(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	section("12", func() error {
		r, err := experiments.Figure12(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	section("13", func() error {
		r, err := experiments.Figure13(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	section("14", func() error {
		r, err := experiments.Figure14(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	// The usage string has always advertised ablations as part of
	// "all"; honour it (it used to be silently skipped).
	section("ablations", func() error {
		s, err := experiments.Ablations(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Println(s)
		return nil
	})

	if err := writeJSON(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: -json: %v\n", err)
		os.Exit(1)
	}
}
