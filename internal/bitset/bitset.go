// Package bitset provides a dense fixed-capacity bit set used for the
// rename table's Valid/Future-Free vectors and the checkpoint snapshots
// built from them. The paper's cost argument for checkpoints (two bits
// per physical register) is exactly the size of two of these.
package bitset

import "math/bits"

// Set is a fixed-capacity bit set. The zero value of the struct is not
// usable; create Sets with New.
type Set struct {
	words []uint64
	n     int
}

// New returns a Set holding n bits, all clear.
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Get reports whether bit i is set.
func (s *Set) Get(i int) bool {
	return s.words[i>>6]&(1<<uint(i&63)) != 0
}

// Set sets bit i.
func (s *Set) Set(i int) {
	s.words[i>>6] |= 1 << uint(i&63)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.words[i>>6] &^= 1 << uint(i&63)
}

// SetTo sets bit i to v.
func (s *Set) SetTo(i int, v bool) {
	if v {
		s.Set(i)
	} else {
		s.Clear(i)
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// SetAll sets every bit in the capacity (rollback free-list rebuilds
// start from the full set; a word fill beats n Set calls).
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	if tail := uint(s.n & 63); tail != 0 {
		s.words[len(s.words)-1] = 1<<tail - 1
	}
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// CopyFrom overwrites s with the contents of src. Both sets must have
// the same capacity.
func (s *Set) CopyFrom(src *Set) {
	if s.n != src.n {
		panic("bitset: size mismatch in CopyFrom")
	}
	copy(s.words, src.words)
}

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := New(s.n)
	copy(c.words, s.words)
	return c
}

// OrWith sets s |= other.
func (s *Set) OrWith(other *Set) {
	if s.n != other.n {
		panic("bitset: size mismatch in OrWith")
	}
	for i := range s.words {
		s.words[i] |= other.words[i]
	}
}

// AndNotWith sets s &^= other.
func (s *Set) AndNotWith(other *Set) {
	if s.n != other.n {
		panic("bitset: size mismatch in AndNotWith")
	}
	for i := range s.words {
		s.words[i] &^= other.words[i]
	}
}

// FirstSet returns the index of the lowest set bit, or -1 when the set
// is empty.
func (s *Set) FirstSet() int {
	for wi, w := range s.words {
		if w != 0 {
			return wi<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// FirstClear returns the index of the lowest clear bit, or -1 when every
// bit in the capacity is set.
func (s *Set) FirstClear() int {
	for wi, w := range s.words {
		if w != ^uint64(0) {
			i := wi<<6 + bits.TrailingZeros64(^w)
			if i < s.n {
				return i
			}
			return -1
		}
	}
	return -1
}

// ForEach calls fn for every set bit in ascending order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &^= 1 << uint(b)
		}
	}
}

// Equal reports whether the two sets have identical contents and size.
func (s *Set) Equal(other *Set) bool {
	if s.n != other.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != other.words[i] {
			return false
		}
	}
	return true
}
