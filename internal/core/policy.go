package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/rename"
	"repro/internal/stats"
)

// CommitPolicy is the retirement engine of a CPU: everything that used
// to be a commit-mode switch in the pipeline is a method here. The CPU
// owns the shared machinery (fetch, rename scoreboard, issue queues,
// LSQ, caches, the DynInst pool); the policy owns the commit-side
// structures (ROB, checkpoint table, pseudo-ROB, oracle window) and is
// hooked at dispatch admission, completion, per-cycle retirement,
// branch/exception recovery and stats extraction.
//
// Lifetime contract: policies operate on pooled DynInst records (see
// the ownership contract on DynInst). A policy must release records it
// retires (c.pool.release) and must never hold a *DynInst past the
// instruction's release except alongside its Seq; the pseudo-ROB's
// Retired handshake in the checkpoint family is the worked example.
type CommitPolicy interface {
	// Admit is called at the top of every dispatch attempt, before any
	// shared resource check. It performs the policy's pre-instruction
	// work (checkpoint taking, ROB-full gating) and returns false to
	// stall the front end this cycle. It may run several times for the
	// same instruction across stall cycles, so repeated calls must
	// converge (a checkpoint taken on an earlier attempt must not force
	// a second one).
	Admit(inst isa.Inst, pos int64) bool
	// MakeRoom runs after every shared structural check has passed,
	// immediately before the record is built: the checkpoint family
	// extracts the oldest pseudo-ROB entry here when the FIFO is full.
	MakeRoom()
	// AllocateDest renames the destination register under the policy's
	// freeing discipline (deferred Future Free vs. free-at-commit).
	AllocateDest(dest isa.Reg) (phys, prev rename.PhysReg, ok bool)
	// UnwindDest reverses AllocateDest for one squashed instruction
	// during a per-instruction recovery walk (reverse program order).
	UnwindDest(d *DynInst)
	// Dispatched records a successfully dispatched instruction into the
	// retirement structure. It runs after branch resolution bookkeeping,
	// so d.Mispredicted is already final.
	Dispatched(d *DynInst)
	// Completed is notified when d finishes execution (writeback).
	Completed(d *DynInst)
	// Squashed removes d from the policy's retirement accounting; the
	// caller (squashInst) handles every shared structure.
	Squashed(d *DynInst)
	// Commit is the per-cycle retirement stage.
	Commit()
	// DispatchStalled runs at the end of a dispatch cycle that admitted
	// nothing — the checkpoint family's pressure-extraction and
	// emergency-checkpoint window (deadlock avoidance).
	DispatchStalled()
	// ResolveMispredict recovers from mispredicted branch b at its
	// resolution. The CPU has already cleared divergedAt and applies the
	// front-end redirect penalty afterwards.
	ResolveMispredict(b *DynInst)
	// RaiseException delivers a precise exception at d. Policies
	// without a replay mechanism ignore it (matching the former
	// checkpoint-mode-only behaviour).
	RaiseException(d *DynInst)
	// NextRetireEvent reports the earliest cycle >= now at which Commit
	// could retire (or otherwise make progress) given the policy's
	// current state, or -1 when no retirement is schedulable before some
	// new completion event arrives. The event-driven clock skip consults
	// it on quiescent cycles: a stalled checkpoint table or full
	// pseudo-ROB is quiescent only if no retirement can free it. A
	// policy may be conservative (returning now disables the skip, which
	// is always correct) but must never place the event later than it
	// could really fire.
	NextRetireEvent(now int64) int64
	// OccupancyBound sizes the occupancy histogram for this policy's
	// reachable window.
	OccupancyBound() int
	// AddStats folds the policy's counters into the run results.
	AddStats(r *stats.Results)
	// DebugState renders the policy's structures for watchdog panics.
	DebugState() string
}

// commitPolicyFactories is the core half of the commit-policy registry
// (the config half validates parameter blocks — config.CommitPolicies).
// Factories run at the end of CPU construction: the shared machinery is
// built, the policy adds its own.
var commitPolicyFactories = map[config.CommitMode]func(*CPU) CommitPolicy{}

// RegisterCommitPolicy installs a policy factory under its config mode.
// Built-in policies register from init; an external experiment can
// register its own before building CPUs.
func RegisterCommitPolicy(mode config.CommitMode, build func(*CPU) CommitPolicy) {
	if _, dup := commitPolicyFactories[mode]; dup {
		panic(fmt.Sprintf("core: commit policy %q registered twice", mode))
	}
	commitPolicyFactories[mode] = build
}

// RegisteredCommitPolicies returns the modes with a core factory (test
// cross-check against the config registry).
func RegisteredCommitPolicies() []config.CommitMode {
	out := make([]config.CommitMode, 0, len(commitPolicyFactories))
	for m := range commitPolicyFactories {
		out = append(out, m)
	}
	return out
}

// masterList is a grow-only, seq-ordered list of in-flight instructions
// with amortised O(1) front/back removal. The checkpoint family uses it
// as the simulator-side record of the in-flight window (the hardware
// has no such structure; the simulator needs it to find squash victims
// and retire windows); the oracle policy uses it as the unbounded
// window itself.
type masterList struct {
	items []*DynInst
	head  int
}

func (m *masterList) push(d *DynInst) { m.items = append(m.items, d) }
func (m *masterList) len() int        { return len(m.items) - m.head }
func (m *masterList) front() *DynInst {
	if m.len() == 0 {
		return nil
	}
	return m.items[m.head]
}
func (m *masterList) back() *DynInst {
	if m.len() == 0 {
		return nil
	}
	return m.items[len(m.items)-1]
}
func (m *masterList) popFront() *DynInst {
	d := m.items[m.head]
	m.items[m.head] = nil
	m.head++
	if m.head > 4096 && m.head*2 > len(m.items) {
		m.items = append(m.items[:0], m.items[m.head:]...)
		m.head = 0
	}
	return d
}
func (m *masterList) popBack() *DynInst {
	d := m.items[len(m.items)-1]
	m.items[len(m.items)-1] = nil
	m.items = m.items[:len(m.items)-1]
	return d
}
