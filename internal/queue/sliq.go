package queue

import (
	"container/heap"
	"fmt"

	"repro/internal/rename"
)

// SLIQ is the Slow Lane Instruction Queue of the paper's section 3: a
// large, cheap, in-order secondary buffer holding instructions that
// depend on long-latency loads. It needs no wakeup CAM — each entry is
// tagged with the destination register of the long-latency load it
// transitively depends on (its trigger). When the trigger register is
// written, a wake process begins: after a configurable start-up delay,
// entries re-enter the issue queue at a configurable width per cycle,
// oldest first ("linearly from one point", as the paper puts it).
type SLIQ struct {
	capacity int
	delay    int64
	width    int

	occupied int
	// waiting maps a trigger register to its not-yet-woken entries.
	waiting map[rename.PhysReg][]*sliqEntry
	// wakeable orders woken entries by sequence number.
	wakeable sliqHeap

	stats SLIQStats
}

// SLIQStats counts slow-lane activity.
type SLIQStats struct {
	Inserted   uint64
	Woken      uint64 // re-inserted into the issue queue
	Squashed   uint64
	FullStalls uint64
	WakeStarts uint64 // wake processes begun (one per trigger write)
}

type sliqEntry struct {
	seq        uint64
	trigger    rename.PhysReg
	payload    any
	eligibleAt int64 // cycle from which it may re-enter the IQ; -1 = waiting
	squashed   bool
	heapIdx    int
}

// NewSLIQ builds a slow lane queue. capacity is the entry count; delay
// is the start-up penalty in cycles between the trigger register write
// and the first re-insertion (the paper uses 4 and shows insensitivity
// from 1 to 12 in Figure 10); width is the re-insertion bandwidth per
// cycle (4 in the paper).
func NewSLIQ(capacity int, delay, width int) *SLIQ {
	if capacity < 1 {
		panic(fmt.Sprintf("queue: SLIQ capacity %d < 1", capacity))
	}
	if delay < 0 || width < 1 {
		panic(fmt.Sprintf("queue: SLIQ delay %d / width %d invalid", delay, width))
	}
	return &SLIQ{
		capacity: capacity,
		delay:    int64(delay),
		width:    width,
		waiting:  make(map[rename.PhysReg][]*sliqEntry),
	}
}

// Cap returns the capacity.
func (s *SLIQ) Cap() int { return s.capacity }

// Len returns the number of resident entries.
func (s *SLIQ) Len() int { return s.occupied }

// Full reports whether no entry can be inserted.
func (s *SLIQ) Full() bool { return s.occupied >= s.capacity }

// Insert moves an instruction into the slow lane, tagged with the
// physical register of the long-latency load it waits on. It returns
// false when the SLIQ is full (the instruction then stays in the issue
// queue, consuming a precious entry — the caller's fallback).
func (s *SLIQ) Insert(seq uint64, trigger rename.PhysReg, payload any) bool {
	if s.Full() {
		s.stats.FullStalls++
		return false
	}
	e := &sliqEntry{seq: seq, trigger: trigger, payload: payload, eligibleAt: -1, heapIdx: -1}
	s.waiting[trigger] = append(s.waiting[trigger], e)
	s.occupied++
	s.stats.Inserted++
	return true
}

// TriggerReady starts the wake process for every entry waiting on reg:
// they become eligible for re-insertion delay cycles after now.
func (s *SLIQ) TriggerReady(reg rename.PhysReg, now int64) {
	entries, ok := s.waiting[reg]
	if !ok {
		return
	}
	delete(s.waiting, reg)
	started := false
	for _, e := range entries {
		if e.squashed {
			continue
		}
		e.eligibleAt = now + s.delay
		heap.Push(&s.wakeable, e)
		started = true
	}
	if started {
		s.stats.WakeStarts++
	}
}

// Drain offers eligible entries to the pipeline oldest-first, up to the
// configured width per cycle. accept re-inserts the instruction into its
// issue queue (or issues it directly) and returns true; returning false
// retains the entry at the head and stops this cycle's pump — the walk
// is strictly in order, as in the paper.
func (s *SLIQ) Drain(now int64, accept func(seq uint64, payload any) bool) int {
	drained := 0
	for drained < s.width && s.wakeable.Len() > 0 {
		e := s.wakeable.entries[0]
		if e.squashed {
			heap.Pop(&s.wakeable)
			continue
		}
		if e.eligibleAt > now {
			// The oldest wakeable entry is still in its start-up
			// delay; the pump walks in order, so younger entries
			// wait behind it (matches the paper's sequential walk).
			break
		}
		if !accept(e.seq, e.payload) {
			break
		}
		heap.Pop(&s.wakeable)
		s.occupied--
		s.stats.Woken++
		drained++
	}
	return drained
}

// SquashYounger removes every entry with sequence number >= seq,
// calling onSquash for each removed payload.
func (s *SLIQ) SquashYounger(seq uint64, onSquash func(payload any)) {
	for trigger, entries := range s.waiting {
		kept := entries[:0]
		for _, e := range entries {
			if e.seq >= seq {
				e.squashed = true
				s.occupied--
				s.stats.Squashed++
				onSquash(e.payload)
			} else {
				kept = append(kept, e)
			}
		}
		if len(kept) == 0 {
			delete(s.waiting, trigger)
		} else {
			s.waiting[trigger] = kept
		}
	}
	// Wakeable entries are lazily discarded in Drain; account for them
	// now so Len stays exact.
	for _, e := range s.wakeable.entries {
		if !e.squashed && e.seq >= seq {
			e.squashed = true
			s.occupied--
			s.stats.Squashed++
			onSquash(e.payload)
		}
	}
}

// Clear empties the queue (total flush), invoking onSquash per entry.
func (s *SLIQ) Clear(onSquash func(payload any)) {
	s.SquashYounger(0, onSquash)
	s.waiting = make(map[rename.PhysReg][]*sliqEntry)
	s.wakeable.entries = s.wakeable.entries[:0]
}

// WaitingOn returns the number of entries not yet triggered.
func (s *SLIQ) WaitingOn() int {
	n := 0
	for _, entries := range s.waiting {
		for _, e := range entries {
			if !e.squashed {
				n++
			}
		}
	}
	return n
}

// Stats returns a copy of the counters.
func (s *SLIQ) Stats() SLIQStats { return s.stats }

// sliqHeap is a min-heap of wakeable entries by seq.
type sliqHeap struct {
	entries []*sliqEntry
}

func (h *sliqHeap) Len() int { return len(h.entries) }
func (h *sliqHeap) Less(i, j int) bool {
	return h.entries[i].seq < h.entries[j].seq
}
func (h *sliqHeap) Swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.entries[i].heapIdx = i
	h.entries[j].heapIdx = j
}
func (h *sliqHeap) Push(x any) {
	e := x.(*sliqEntry)
	e.heapIdx = len(h.entries)
	h.entries = append(h.entries, e)
}
func (h *sliqHeap) Pop() any {
	n := len(h.entries)
	e := h.entries[n-1]
	h.entries[n-1] = nil
	h.entries = h.entries[:n-1]
	e.heapIdx = -1
	return e
}
