// Package fleet shards simulation batches across a set of ooosimd
// workers behind the single-node batch API.
//
// The coordinator fronts N workers with exactly the HTTP surface one
// worker exposes (service.BatchAPI), so clients — the CLI, the sweep
// runner, the load generator — cannot tell a fleet from a node. Inside,
// each point routes to the worker owning its fingerprint's shard
// (sim.ShardFor over the currently-ready node list), which makes the
// fleet's caches partition cleanly: identical points always land on
// the same node, so no result is computed or stored twice.
//
// Three mechanisms keep that guarantee under churn:
//
//   - Coordinator singleflight: concurrent batches sharing a
//     fingerprint elect one leader submission per point; followers
//     adopt the leader's bytes and report cached, so not even the
//     routing layer sends a duplicate downstream.
//   - Health routing: every worker sits behind a circuit breaker
//     (closed → open after consecutive failures → half-open probation
//     after a cooldown). Dispatch failures and failed health probes
//     feed the breaker; successes close it. A routing pass excludes
//     nodes whose breaker is open plus nodes that already failed
//     during this batch's routing, and unfinished points re-bucket
//     over the survivors under a bounded per-point retry budget; the
//     simulation is deterministic, so a re-routed point's bytes match
//     what the dead node would have produced.
//   - Admission and drain mirror the worker semantics: a bounded
//     point queue rejects with service.ErrOverloaded (HTTP 429), and
//     drain stops admission while in-flight batches run dry.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/service"
	"repro/internal/sim"
)

// Options configures a Coordinator.
type Options struct {
	// Workers lists the worker base URLs (e.g. "http://127.0.0.1:8321").
	// At least one is required.
	Workers []string
	// MaxQueue bounds admitted-but-unfinished points across all batches;
	// <= 0 admits everything.
	MaxQueue int
	// PingInterval spaces the health pinger's /readyz probes; <= 0 uses
	// one second.
	PingInterval time.Duration
	// PingTimeout bounds each probe round; <= 0 uses two seconds.
	PingTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// worker's circuit breaker; <= 0 uses 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses the worker
	// before half-open probation; <= 0 uses 5s.
	BreakerCooldown time.Duration
	// RetryBudget bounds how many node failures a single point may
	// survive before it completes with a routing error; <= 0 uses
	// BreakerThreshold + 3.
	RetryBudget int
	// NoNodesGrace is how long a routing pass waits for any worker to
	// become routable (a breaker half-opening, a ping recovering one)
	// before abandoning the points; <= 0 uses 10s.
	NoNodesGrace time.Duration
	// MaxBatches bounds how many finished batches stay pollable; <= 0
	// uses 256.
	MaxBatches int
	// HTTPClient overrides the default worker transport (tests,
	// timeouts).
	HTTPClient *http.Client
	// Log, when non-nil, receives routing events: node mark-downs,
	// re-route passes, batch completion lines.
	Log func(format string, args ...any)
}

// node is one worker and its health state.
type node struct {
	url     string
	client  *service.Client
	breaker *faults.Breaker
	// probeOK tracks the last health-probe outcome, for transition logs.
	probeOK atomic.Bool
	// probeFails counts failed health probes (the per-node
	// node_probe_failures_total metric).
	probeFails atomic.Uint64
}

// Coordinator shards batches over a worker fleet. It implements
// service.BatchAPI; serve it with service.NewAPIHandler (or
// fleet.NewHandler for the full production surface).
type Coordinator struct {
	nodes       []*node
	maxQueue    int
	log         func(format string, args ...any)
	pingTimeout time.Duration
	retryBudget int
	grace       time.Duration

	metrics  metrics
	draining atomic.Bool

	// flight deduplicates in-flight points across batches by
	// fingerprint: one leader submission per point fleet-wide.
	flightMu sync.Mutex
	flight   map[string]*flightEntry

	mu         sync.Mutex
	batches    map[string]*service.Batch
	order      []string
	nextID     int
	maxBatches int

	pingStop chan struct{}
	pingDone chan struct{}
}

type flightEntry struct {
	done   chan struct{}
	raw    json.RawMessage
	cached bool
	err    error
}

// New builds a coordinator and starts its health pinger. Call Close to
// stop the pinger.
func New(opt Options) (*Coordinator, error) {
	if len(opt.Workers) == 0 {
		return nil, fmt.Errorf("fleet: no workers configured")
	}
	maxBatches := opt.MaxBatches
	if maxBatches <= 0 {
		maxBatches = 256
	}
	interval := opt.PingInterval
	if interval <= 0 {
		interval = time.Second
	}
	pingTimeout := opt.PingTimeout
	if pingTimeout <= 0 {
		pingTimeout = 2 * time.Second
	}
	threshold := opt.BreakerThreshold
	if threshold <= 0 {
		threshold = 3
	}
	cooldown := opt.BreakerCooldown
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	budget := opt.RetryBudget
	if budget <= 0 {
		budget = threshold + 3
	}
	grace := opt.NoNodesGrace
	if grace <= 0 {
		grace = 10 * time.Second
	}
	c := &Coordinator{
		maxQueue:    opt.MaxQueue,
		log:         opt.Log,
		pingTimeout: pingTimeout,
		retryBudget: budget,
		grace:       grace,
		flight:      map[string]*flightEntry{},
		batches:     map[string]*service.Batch{},
		maxBatches:  maxBatches,
		pingStop:    make(chan struct{}),
		pingDone:    make(chan struct{}),
	}
	for _, u := range opt.Workers {
		n := &node{
			url:     u,
			client:  &service.Client{BaseURL: u, HTTPClient: opt.HTTPClient},
			breaker: &faults.Breaker{Threshold: threshold, Cooldown: cooldown},
		}
		// Optimistic start: a fresh breaker is closed, so nodes are
		// routable until a probe or a dispatch failure says otherwise and
		// the first batch never waits for a ping cycle.
		n.probeOK.Store(true)
		c.nodes = append(c.nodes, n)
	}
	go c.pingLoop(interval)
	return c, nil
}

// Close stops the health pinger. In-flight batches keep running.
func (c *Coordinator) Close() {
	select {
	case <-c.pingStop:
	default:
		close(c.pingStop)
	}
	<-c.pingDone
}

// pingLoop probes every worker's readiness on a fixed cadence. Probe
// outcomes feed each node's circuit breaker in both directions: a
// recovered (restarted or drained-and-returned) worker closes its
// breaker and rejoins the routing set without operator action.
func (c *Coordinator) pingLoop(interval time.Duration) {
	defer close(c.pingDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.pingStop:
			return
		case <-ticker.C:
			c.pingOnce()
		}
	}
}

// pingOnce probes every node once (also a test seam). Probes ignore the
// breaker state on purpose: an open node keeps being probed so the
// breaker closes the moment the worker answers again.
func (c *Coordinator) pingOnce() {
	ctx, cancel := context.WithTimeout(context.Background(), c.pingTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, n := range c.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			ready := n.client.Ready(ctx) == nil
			if ready {
				n.breaker.Success()
			} else {
				n.probeFails.Add(1)
				c.metrics.ProbeFailures.Add(1)
				if n.breaker.Failure() {
					c.metrics.BreakerTrips.Add(1)
				}
			}
			if n.probeOK.Swap(ready) != ready && c.log != nil {
				state := "down"
				if ready {
					state = "up"
				}
				c.log("fleet: node %s probe: %s (breaker %s)", n.url, state, n.breaker.State())
			}
		}(n)
	}
	wg.Wait()
}

// readyNodes returns the nodes currently accepting work: breaker closed,
// or open long enough that probation (half-open) allows one try.
func (c *Coordinator) readyNodes() []*node {
	var out []*node
	for _, n := range c.nodes {
		if n.breaker.Allow() {
			out = append(out, n)
		}
	}
	return out
}

// StartDrain stops admitting new batches. Idempotent.
func (c *Coordinator) StartDrain() { c.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (c *Coordinator) Draining() bool { return c.draining.Load() }

// Drain starts draining and blocks until every admitted point finished
// (or ctx expires).
func (c *Coordinator) Drain(ctx context.Context) error {
	c.StartDrain()
	for c.metrics.QueueDepth.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
	return nil
}

// Ready reports why the coordinator should not receive new work:
// draining, queue over the bound, or no live workers.
func (c *Coordinator) Ready() error {
	if c.draining.Load() {
		return service.ErrDraining
	}
	if q := c.metrics.QueueDepth.Load(); c.maxQueue > 0 && q >= int64(c.maxQueue) {
		return fmt.Errorf("%w: %d queued >= bound %d", service.ErrOverloaded, q, c.maxQueue)
	}
	if len(c.readyNodes()) == 0 {
		return errors.New("fleet: no workers ready")
	}
	return nil
}

// Submit validates and fingerprints the batch, admits it against the
// queue bound, and dispatches it across the fleet asynchronously.
func (c *Coordinator) Submit(jobs []service.Job) (*service.Batch, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("fleet: empty batch")
	}
	if c.draining.Load() {
		c.metrics.BatchesRejected.Add(1)
		return nil, service.ErrDraining
	}
	fps := make([]string, len(jobs))
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: job %d: %w", i, err)
		}
		fp, err := j.Fingerprint()
		if err != nil {
			return nil, fmt.Errorf("fleet: job %d: %w", i, err)
		}
		fps[i] = fp
	}
	if c.maxQueue > 0 {
		if q := c.metrics.QueueDepth.Load(); q+int64(len(jobs)) > int64(c.maxQueue) {
			c.metrics.BatchesRejected.Add(1)
			return nil, fmt.Errorf("%w: %d queued + %d new points > bound %d",
				service.ErrOverloaded, q, len(jobs), c.maxQueue)
		}
	}
	c.metrics.BatchesSubmitted.Add(1)
	c.metrics.Points.Add(uint64(len(jobs)))
	c.metrics.QueueDepth.Add(int64(len(jobs)))

	c.mu.Lock()
	c.nextID++
	b := service.NewBatch(fmt.Sprintf("f%d", c.nextID), append([]service.Job(nil), jobs...), fps)
	c.batches[b.ID()] = b
	c.order = append(c.order, b.ID())
	for len(c.order) > c.maxBatches {
		victim := c.batches[c.order[0]]
		if victim != nil && victim.Status().State == service.StateRunning {
			break
		}
		delete(c.batches, c.order[0])
		c.order = c.order[1:]
	}
	c.mu.Unlock()

	go c.dispatch(b)
	return b, nil
}

// Batch returns a previously submitted batch by ID.
func (c *Coordinator) Batch(id string) (*service.Batch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.batches[id]
	return b, ok
}

// pointResult is one point's outcome arriving at the dispatch loop.
type pointResult struct {
	i      int
	raw    json.RawMessage
	cached bool
	err    error
}

// dispatch routes a batch's points across the fleet until every point
// completes, re-routing around node failures. It is the only completer
// of b, so the exactly-once Complete contract holds by construction:
// results from every source (worker streams, flight followers, terminal
// errors) funnel through one loop that drops duplicates.
func (c *Coordinator) dispatch(b *service.Batch) {
	jobs, fps := b.Jobs(), b.Fingerprints()
	results := make(chan pointResult, len(jobs))

	// Split points into flight leaders (we submit them) and followers
	// (an earlier batch is already computing the same fingerprint; adopt
	// its bytes when it lands). Duplicate fingerprints within this batch
	// follow their first occurrence the same way.
	var lead []int
	leaders := map[string]bool{}
	for i, fp := range fps {
		c.flightMu.Lock()
		e, inFlight := c.flight[fp]
		if !inFlight {
			e = &flightEntry{done: make(chan struct{})}
			c.flight[fp] = e
		}
		c.flightMu.Unlock()
		if !inFlight && !leaders[fp] {
			leaders[fp] = true
			lead = append(lead, i)
			continue
		}
		c.metrics.PointsDeduped.Add(1)
		go func(i int, e *flightEntry) {
			<-e.done
			// A shared result is cached by definition: this submission
			// ran nothing for it.
			results <- pointResult{i: i, raw: e.raw, cached: e.err == nil, err: e.err}
		}(i, e)
	}

	go c.route(b, lead, results)

	done := make([]bool, len(jobs))
	for range jobs {
		r := <-results
		if done[r.i] {
			continue
		}
		done[r.i] = true
		if leaders[fps[r.i]] {
			c.resolveFlight(fps[r.i], r)
			leaders[fps[r.i]] = false // resolve once per fingerprint
		}
		if r.err != nil {
			c.metrics.PointErrors.Add(1)
		}
		b.Complete(r.i, r.raw, r.cached, r.err)
		c.metrics.QueueDepth.Add(-1)
	}
	if c.log != nil {
		if line, ok := b.TakeDoneLine(); ok {
			c.log("%s", line)
		}
	}
}

// resolveFlight publishes a leader point's outcome to its followers.
func (c *Coordinator) resolveFlight(fp string, r pointResult) {
	c.flightMu.Lock()
	e := c.flight[fp]
	delete(c.flight, fp)
	c.flightMu.Unlock()
	if e == nil {
		return
	}
	e.raw, e.cached, e.err = r.raw, r.cached, r.err
	close(e.done)
}

// gracePoll spaces the no-ready-nodes waits inside route.
const gracePoll = 50 * time.Millisecond

// route drives the leader points to completion: shard over the routable
// nodes, run the per-node sub-batches, re-bucket whatever a failed node
// left unfinished. Each pass excludes nodes that already failed during
// this batch's routing; when no node is routable the loop waits up to
// the grace window for a breaker to half-open or a ping to recover one,
// and each point carries a retry budget so the loop terminates even
// under sustained churn. Budget-exhausted or stranded points complete
// with a routing error rather than hanging the batch.
func (c *Coordinator) route(b *service.Batch, lead []int, results chan<- pointResult) {
	jobs, fps := b.Jobs(), b.Fingerprints()
	pending := lead
	attempts := make(map[int]int)
	failed := map[*node]bool{}
	routedOnce := false
	var waited time.Duration
	for len(pending) > 0 {
		var usable []*node
		for _, n := range c.readyNodes() {
			if !failed[n] {
				usable = append(usable, n)
			}
		}
		if len(usable) == 0 {
			if waited >= c.grace {
				break
			}
			// Wait for a breaker to half-open or a probe to recover a
			// node; retrying previously-failed nodes is the point of the
			// wait, so forget this batch's failure set.
			time.Sleep(gracePoll)
			waited += gracePoll
			failed = map[*node]bool{}
			continue
		}
		waited = 0
		if routedOnce {
			c.metrics.Reroutes.Add(uint64(len(pending)))
			if c.log != nil {
				c.log("fleet: re-routing %d point(s) over %d node(s)", len(pending), len(usable))
			}
		}
		routedOnce = true
		// Shard by fingerprint over the usable nodes: identical points
		// land on identical nodes, so per-node caches stay partitioned.
		buckets := make([][]int, len(usable))
		for _, i := range pending {
			s := sim.ShardFor(fps[i], len(usable))
			buckets[s] = append(buckets[s], i)
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var unfinished []int
		for s, idxs := range buckets {
			if len(idxs) == 0 {
				continue
			}
			wg.Add(1)
			go func(n *node, idxs []int) {
				defer wg.Done()
				left := c.runOn(n, jobs, idxs, results)
				if len(left) > 0 {
					mu.Lock()
					unfinished = append(unfinished, left...)
					failed[n] = true
					mu.Unlock()
				}
			}(usable[s], idxs)
		}
		wg.Wait()
		pending = pending[:0]
		for _, i := range unfinished {
			attempts[i]++
			if attempts[i] >= c.retryBudget {
				c.metrics.RetryExhausted.Add(1)
				results <- pointResult{i: i, err: fmt.Errorf(
					"fleet: point exceeded its retry budget (%d node failures)", attempts[i])}
				continue
			}
			pending = append(pending, i)
		}
	}
	for _, i := range pending {
		results <- pointResult{i: i, err: errors.New("fleet: no workers available to run this point")}
	}
}

// runOn submits idxs' jobs to one worker and streams completions into
// results. On worker failure it marks the node down and returns the
// points that did not complete, for the caller to re-route. Per-point
// simulation errors are final (the simulator is deterministic; another
// node would fail identically) and do not count as unfinished.
func (c *Coordinator) runOn(n *node, jobs []service.Job, idxs []int, results chan<- pointResult) (unfinished []int) {
	sub := make([]service.Job, len(idxs))
	for k, i := range idxs {
		sub[k] = jobs[i]
	}
	got := make([]bool, len(idxs))
	defer func() {
		for k, ok := range got {
			if !ok {
				unfinished = append(unfinished, idxs[k])
			}
		}
	}()

	// A batch is open-ended work; the only timeout that makes sense is
	// per-connection (the client's transport), not end-to-end.
	ctx := context.Background()
	st, err := n.client.Submit(ctx, sub)
	if err != nil {
		c.markDown(n, err)
		return
	}
	err = n.client.Stream(ctx, st.ID, func(ev service.Event) error {
		switch ev.Type {
		case "result":
			if ev.Index >= 0 && ev.Index < len(idxs) {
				got[ev.Index] = true
				results <- pointResult{i: idxs[ev.Index], raw: ev.Results, cached: ev.Cached}
			}
		case "error":
			if ev.Index >= 0 && ev.Index < len(idxs) {
				got[ev.Index] = true
				results <- pointResult{i: idxs[ev.Index], err: errors.New(ev.Error)}
			}
		}
		return nil
	})
	if err != nil {
		c.markDown(n, err)
		return
	}
	// A cleanly-finished sub-batch closes the node's breaker.
	n.breaker.Success()
	return
}

// markDown records a dispatch-time worker failure in the node's circuit
// breaker. Enough consecutive failures open the breaker; a successful
// dispatch or health probe closes it again.
func (c *Coordinator) markDown(n *node, err error) {
	c.metrics.NodeFailures.Add(1)
	opened := n.breaker.Failure()
	if opened {
		c.metrics.BreakerTrips.Add(1)
	}
	if c.log != nil {
		if opened {
			c.log("fleet: node %s breaker opened: %v", n.url, err)
		} else {
			c.log("fleet: node %s dispatch failure (breaker %s): %v", n.url, n.breaker.State(), err)
		}
	}
}
