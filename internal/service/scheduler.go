package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// SchedulerOptions tunes a Scheduler.
type SchedulerOptions struct {
	// Workers bounds the simulation pool shared across every in-flight
	// batch; <= 0 uses GOMAXPROCS. Cache lookups and event delivery
	// never occupy a worker slot — only actual simulation does.
	Workers int
	// Cache is the result store; nil builds a memory-only cache with
	// DefaultCacheEntries.
	Cache *Cache
	// MaxBatches bounds how many finished batches stay pollable before
	// the oldest are forgotten; <= 0 uses 256.
	MaxBatches int
	// MaxQueue is the admission bound: a batch whose misses would push
	// the number of queued-but-unfinished misses past it is rejected
	// with ErrOverloaded (HTTP 429 + Retry-After), and readiness flips
	// false while the queue is over the bound. <= 0 admits everything.
	MaxQueue int
	// Donors, when non-nil, is the fleet's warm-donor shipping fabric:
	// snapshot-group donors are adopted from their home peer instead of
	// warmed locally, and this node serves its own donors to peers. The
	// scheduler wires its trace memo into the exchange.
	Donors *DonorExchange
	// Log, when non-nil, receives one line per completed batch with the
	// batch's cache and snapshot-sharing statistics (cmd/ooosimd wires
	// log.Printf here so operators can see the sharing engage).
	Log func(format string, args ...any)
	// Journal, when non-nil, is the batch recovery log: admitted batches
	// with misses and completed fingerprints are appended so a restarted
	// daemon can re-admit in-flight work (see Scheduler.Recover). Append
	// failures degrade recovery, never the running daemon.
	Journal *Journal
}

// ErrDraining rejects submissions while the scheduler is draining.
var ErrDraining = errors.New("service: draining, not admitting new batches")

// ErrOverloaded rejects submissions that would push the miss queue past
// the admission bound. The HTTP layer maps it to 429 with Retry-After.
var ErrOverloaded = errors.New("service: queue full")

// Scheduler executes batches of Jobs. Submission splits each batch into
// cache hits (answered immediately, no simulation) and misses; misses
// run through the simulator on the shared bounded pool, deduplicated by
// fingerprint so concurrent identical submissions — within one batch or
// across batches — simulate once and share the result.
type Scheduler struct {
	cache    *Cache
	sem      chan struct{}
	flight   flightGroup
	traces   traceCache
	warms    warmCache
	donors   *DonorExchange
	log      func(format string, args ...any)
	journal  *Journal
	maxQueue int
	metrics  Metrics
	draining atomic.Bool

	// run executes one materialised point; donor is the point's shared
	// warm-state donor hierarchy (nil runs the cold path). Production
	// wires sim.RunForked/sim.Run; tests substitute counting wrappers.
	run func(sim.RunSpec, *mem.Hierarchy) (stats.Results, error)

	mu         sync.Mutex
	batches    map[string]*Batch
	order      []string // submission order, for bounded retention
	nextID     int
	maxBatches int
}

// NewScheduler builds a scheduler.
func NewScheduler(opt SchedulerOptions) *Scheduler {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache := opt.Cache
	if cache == nil {
		cache, _ = NewCache(0, "") // memory-only construction cannot fail
	}
	maxBatches := opt.MaxBatches
	if maxBatches <= 0 {
		maxBatches = 256
	}
	s := &Scheduler{
		cache:    cache,
		sem:      make(chan struct{}, workers),
		donors:   opt.Donors,
		log:      opt.Log,
		journal:  opt.Journal,
		maxQueue: opt.MaxQueue,
		run: func(spec sim.RunSpec, donor *mem.Hierarchy) (stats.Results, error) {
			if donor == nil {
				return sim.Run(spec)
			}
			return sim.RunForked(spec, donor)
		},
		batches:    map[string]*Batch{},
		maxBatches: maxBatches,
	}
	if s.donors != nil {
		// On-demand donor builds (a peer asking before any local point
		// touched the group) regenerate the trace through the same memo
		// the simulation path uses.
		s.donors.materialise = s.traces.get
	}
	return s
}

// StartDrain flips the scheduler into drain mode: new submissions are
// rejected with ErrDraining, readiness goes false, and in-flight work
// runs to completion. Idempotent.
func (s *Scheduler) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Scheduler) Draining() bool { return s.draining.Load() }

// Drain starts draining and blocks until every admitted miss has
// finished (or ctx expires). The poll interval is coarse; drain is a
// shutdown path, not a hot one.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.StartDrain()
	for s.metrics.QueueDepth.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
	return nil
}

// Ready reports why the node should not receive new work (draining, or
// queue over the admission bound); nil means ready. The /readyz
// endpoint and fleet coordinators route on it.
func (s *Scheduler) Ready() error {
	if s.draining.Load() {
		return ErrDraining
	}
	if q := s.metrics.QueueDepth.Load(); s.maxQueue > 0 && q >= int64(s.maxQueue) {
		return fmt.Errorf("%w: %d queued >= bound %d", ErrOverloaded, q, s.maxQueue)
	}
	return nil
}

// Donors returns the scheduler's donor exchange (nil outside a fleet).
func (s *Scheduler) Donors() *DonorExchange { return s.donors }

// Submit validates and fingerprints every job, registers the batch, and
// returns it with cache hits already completed; misses execute
// asynchronously on the shared pool. An invalid job rejects the whole
// batch (nothing runs). Admission control also rejects atomically: a
// draining scheduler admits nothing (ErrDraining), and a batch whose
// misses would push the queue past MaxQueue is refused (ErrOverloaded)
// before anything is registered — cache hits alone never trip the
// bound, since they cost no simulation.
func (s *Scheduler) Submit(jobs []Job) (*Batch, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("service: empty batch")
	}
	if s.draining.Load() {
		s.metrics.BatchesRejected.Add(1)
		return nil, ErrDraining
	}
	fps := make([]string, len(jobs))
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("service: job %d (%s): %w", i, j.label(), err)
		}
		fp, err := j.Fingerprint()
		if err != nil {
			return nil, fmt.Errorf("service: job %d (%s): %w", i, j.label(), err)
		}
		fps[i] = fp
	}

	// Split hits from misses before admission: only misses queue work.
	hit := make([]json.RawMessage, len(jobs))
	nMisses := 0
	for i := range jobs {
		if raw, ok := s.cache.Get(fps[i]); ok {
			hit[i] = raw
		} else {
			nMisses++
		}
	}
	if s.maxQueue > 0 && nMisses > 0 {
		if q := s.metrics.QueueDepth.Load(); q+int64(nMisses) > int64(s.maxQueue) {
			s.metrics.BatchesRejected.Add(1)
			return nil, fmt.Errorf("%w: %d queued + %d new misses > bound %d",
				ErrOverloaded, q, nMisses, s.maxQueue)
		}
	}
	s.metrics.BatchesSubmitted.Add(1)
	s.metrics.Points.Add(uint64(len(jobs)))
	s.metrics.QueueDepth.Add(int64(nMisses))

	s.mu.Lock()
	s.nextID++
	b := NewBatch(fmt.Sprintf("b%d", s.nextID), append([]Job(nil), jobs...), fps)
	s.batches[b.id] = b
	s.order = append(s.order, b.id)
	for len(s.order) > s.maxBatches {
		// Only retire finished batches; a pathological flood of
		// still-running batches stays addressable.
		victim := s.batches[s.order[0]]
		if victim != nil && victim.Status().State == StateRunning {
			break
		}
		delete(s.batches, s.order[0])
		s.order = s.order[1:]
	}
	s.mu.Unlock()

	// Complete the hits, then launch the misses clustered by snapshot
	// group — (trace recipe, warm-relevant cache shape) — so jobs that
	// fork the same warm donor tend to run near each other (best-effort:
	// the shared pool admits them in arrival order).
	var misses []int
	groupKeys := make([]string, len(b.jobs))
	for i := range b.jobs {
		if hit[i] != nil {
			s.metrics.CachedPoints.Add(1)
			b.Complete(i, hit[i], true, nil)
		} else {
			misses = append(misses, i)
			groupKeys[i] = snapshotGroupKey(b.jobs[i])
		}
	}
	sort.SliceStable(misses, func(x, y int) bool {
		return groupKeys[misses[x]] < groupKeys[misses[y]]
	})
	// Journal the batch before any miss launches: once admitted, a crash
	// must be able to re-admit it. All-hit batches completed above and
	// need no recovery.
	if s.journal != nil && len(misses) > 0 {
		if err := s.journal.AppendBatch(b.id, b.jobs); err == nil {
			b.MarkJournaled()
		} else if s.log != nil {
			s.log("journal append failed for batch %s: %v", b.id, err)
		}
	}
	for _, i := range misses {
		go s.runJob(b, i)
	}
	s.logIfDone(b)
	return b, nil
}

// Recover replays the journal, truncates it, and re-admits every batch
// that was in flight at the last shutdown. Re-admission goes through
// the normal Submit path, so points whose results reached the disk
// cache before the crash come back as hits and only the missing ones
// re-simulate — determinism makes the resumed batch byte-identical to
// what the original would have produced. Returns how many batches were
// re-admitted. A batch Submit refuses (validation drift, admission
// pressure) is re-journaled so the work survives to the next attempt.
func (s *Scheduler) Recover() (requeued int, err error) {
	if s.journal == nil {
		return 0, nil
	}
	pending, completed, err := s.journal.Replay()
	if err != nil {
		return 0, err
	}
	if err := s.journal.Reset(); err != nil {
		return 0, fmt.Errorf("service: journal reset: %w", err)
	}
	for _, rb := range pending {
		if _, err := s.Submit(rb.Jobs); err != nil {
			s.journal.AppendBatch(rb.ID, rb.Jobs)
			if s.log != nil {
				s.log("journal recovery: batch %s not re-admitted: %v", rb.ID, err)
			}
			continue
		}
		requeued++
	}
	s.metrics.RecoveredBatches.Add(uint64(requeued))
	if s.log != nil && (requeued > 0 || len(pending) > 0) {
		s.log("journal recovery: re-admitted %d/%d batch(es), %d point(s) already cached",
			requeued, len(pending), len(completed))
	}
	return requeued, nil
}

// snapshotGroupKey renders a job's snapshot-sharing identity: jobs with
// equal keys fork the same warmed donor hierarchy.
func snapshotGroupKey(j Job) string {
	return fmt.Sprintf("%s\x00%+v", j.Trace.String(), mem.WarmKeyFor(j.Config))
}

// countSnapshotGroups counts the distinct snapshot groups in a batch.
func countSnapshotGroups(jobs []Job) int {
	seen := map[string]struct{}{}
	for _, j := range jobs {
		seen[snapshotGroupKey(j)] = struct{}{}
	}
	return len(seen)
}

// logIfDone emits the per-batch completion line once.
func (s *Scheduler) logIfDone(b *Batch) {
	if s.log == nil {
		return
	}
	if line, ok := b.TakeDoneLine(); ok {
		s.log("%s", line)
	}
}

// Batch returns a previously submitted batch by ID.
func (s *Scheduler) Batch(id string) (*Batch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[id]
	return b, ok
}

// runJob executes one cache miss: singleflight by fingerprint, then a
// worker slot, then trace materialisation and simulation, then cache
// fill. The result lands in the batch whatever the path. A point that
// avoided simulation after all — the in-flight cache re-check hit, or
// the flight deduplicated us against another submission's run — still
// reports as cached.
func (s *Scheduler) runJob(b *Batch, i int) {
	defer s.metrics.QueueDepth.Add(-1)
	job, fp := b.jobs[i], b.fps[i]
	lateHit := false
	raw, shared, err := s.flight.Do(fp, func() (json.RawMessage, error) {
		// Re-check under the flight: another submission may have
		// finished (and cached) this point between our Get and here.
		if raw, ok := s.cache.Get(fp); ok {
			lateHit = true
			return raw, nil
		}
		s.sem <- struct{}{}
		s.metrics.InFlight.Add(1)
		defer func() { s.metrics.InFlight.Add(-1); <-s.sem }()
		var tr *trace.Trace
		var donor *mem.Hierarchy
		if job.Sample.Enabled() {
			// Sampled jobs stream: the recipe is handed through as a
			// recipe-only trace handle (never materialised, so the
			// streamed budget cap applies instead of MaxRecipeInsts) and
			// no warm donor is built — the sampled run warms its own
			// persistent substrate by fast-forwarding the stream.
			var err error
			if tr, err = trace.StreamOnly(job.Trace); err != nil {
				return nil, err
			}
		} else {
			var err error
			if tr, err = s.traces.get(job.Trace); err != nil {
				return nil, err
			}
			// Fork the job's snapshot group's warmed donor instead of
			// replaying the warm-up per point; a donor failure degrades to
			// the cold path (never fails the job).
			var reused bool
			donor, reused = s.warms.get(s, job, tr)
			b.warmShared(donor != nil, reused)
			if donor != nil && reused {
				s.metrics.WarmReuses.Add(1)
			}
		}
		s.metrics.Simulations.Add(1)
		res, err := s.run(sim.RunSpec{
			Name:             job.label(),
			Config:           job.Config,
			Trace:            tr,
			Insts:            job.Insts,
			CollectOccupancy: job.CollectOccupancy,
			Sample:           job.Sample,
		}, donor)
		if err != nil {
			return nil, err
		}
		s.metrics.Cycles.Add(uint64(res.Cycles))
		s.metrics.SkippedCycles.Add(uint64(res.SkippedCycles))
		raw, err := json.Marshal(res)
		if err != nil {
			return nil, err
		}
		if err := s.cache.Put(fp, raw); err != nil {
			// A cache-fill failure (disk full, permissions) must not
			// fail the run: the result is in hand.
			return raw, nil
		}
		return raw, nil
	})
	cached := err == nil && (shared || lateHit)
	if cached {
		s.metrics.CachedPoints.Add(1)
	}
	if err != nil {
		s.metrics.PointErrors.Add(1)
	}
	if s.journal != nil && err == nil && !shared && !lateHit {
		// This flight actually simulated and filled the cache: record the
		// fingerprint so recovery knows the point is durable.
		s.journal.AppendPoint(fp)
	}
	b.Complete(i, raw, cached, err)
	if s.journal != nil && b.TakeJournalDone() {
		s.journal.AppendBatchDone(b.id)
	}
	s.logIfDone(b)
}

// warmCache memoises warmed donor hierarchies by snapshot group so a
// batch sweeping many configurations over few workloads replays each
// workload's cache warm-up once per geometry (the service-side half of
// the snapshot-fork kernel; sim.Sweep does the same for local runs).
// Like traceCache, the memo is dropped wholesale past a bound.
type warmCache struct {
	mu sync.Mutex
	m  map[string]*warmEntry
}

type warmEntry struct {
	once  sync.Once
	donor *mem.Hierarchy
}

// warmCacheLimit bounds the memo; donors are a few hundred KB each.
const warmCacheLimit = 128

// get returns the group's warmed donor (nil when warming failed) and
// whether an already-available donor was reused. With a donor exchange
// attached the donor may be adopted from the group's home peer instead
// of warmed here; without one the warm-up replays locally.
func (wc *warmCache) get(s *Scheduler, j Job, tr *trace.Trace) (donor *mem.Hierarchy, reused bool) {
	key := snapshotGroupKey(j)
	wc.mu.Lock()
	if wc.m == nil {
		wc.m = map[string]*warmEntry{}
	}
	e, ok := wc.m[key]
	if !ok {
		if len(wc.m) >= warmCacheLimit {
			wc.m = map[string]*warmEntry{}
		}
		e = &warmEntry{}
		wc.m[key] = e
	}
	wc.mu.Unlock()
	built := false
	e.once.Do(func() {
		built = true
		// A failed donor (e.g. unwarmable geometry) stays nil: the
		// group's jobs run cold, preserving the pre-fork behaviour.
		warm := mem.WarmKeyFor(j.Config)
		if s.donors != nil {
			e.donor, _ = s.donors.Acquire(j.Trace, warm, tr)
		} else {
			e.donor, _ = core.WarmDonor(warm, tr)
			if e.donor != nil {
				s.metrics.WarmBuilds.Add(1)
			}
		}
	})
	return e.donor, ok && !built
}

// traceCache memoises materialised traces by canonical recipe string so
// a batch sweeping many configurations over few workloads generates
// each workload once. Generation is deduplicated per recipe; the memo
// is dropped wholesale when it grows past a bound (distinct recipes are
// few in practice — a figure uses six).
type traceCache struct {
	mu sync.Mutex
	m  map[string]*traceEntry
}

type traceEntry struct {
	once sync.Once
	tr   *trace.Trace
	err  error
}

// traceCacheLimit bounds the memo; 64 recipes at figure sizes is a few
// hundred MB, the most a daemon should pin for workload reuse.
const traceCacheLimit = 64

func (tc *traceCache) get(r trace.Recipe) (*trace.Trace, error) {
	key := r.String()
	tc.mu.Lock()
	if tc.m == nil {
		tc.m = map[string]*traceEntry{}
	}
	e, ok := tc.m[key]
	if !ok {
		if len(tc.m) >= traceCacheLimit {
			tc.m = map[string]*traceEntry{}
		}
		e = &traceEntry{}
		tc.m[key] = e
	}
	tc.mu.Unlock()
	e.once.Do(func() { e.tr, e.err = r.Materialise() })
	return e.tr, e.err
}
