package trace

import (
	"encoding/json"
	"testing"
)

// TestProgramRecipeValidate covers the program extension's rejection
// paths. Program recipes carry no N (lengths come from execution), no
// stride, and must name a registered program with an in-range input;
// symmetrically, program parameters on a synthetic kernel are rejected
// so no synthetic recipe can alias a program one.
func TestProgramRecipeValidate(t *testing.T) {
	for _, bad := range []Recipe{
		{Kernel: KernelProgram, Program: "quicksort", Input: 100},
		{Kernel: KernelProgram, Program: "isort", Input: 100, N: 5000},
		{Kernel: KernelProgram, Program: "isort", Input: 100, Stride: 8},
		{Kernel: KernelProgram, Program: "isort", Input: 0},
		{Kernel: KernelProgram, Program: "isort", Input: 1 << 30},
		{Kernel: KernelProgram, Input: 100},
		{Kernel: KernelStream, N: 100, Program: "isort"},
		{Kernel: KernelStream, N: 100, Input: 64},
	} {
		if bad.Validate() == nil {
			t.Errorf("recipe %+v validated", bad)
		}
		if _, err := bad.Materialise(); err == nil {
			t.Errorf("recipe %+v materialised", bad)
		}
	}

	good := Recipe{Kernel: KernelProgram, Program: "isort", Input: 64, Seed: 7}
	if err := good.Validate(); err != nil {
		t.Errorf("recipe %+v rejected: %v", good, err)
	}
}

// TestProgramRecipeMaterialiseDeterministic: the fleet's caching story
// rests on program materialisation being a pure function of the recipe.
// Two materialisations must agree instruction for instruction, carry the
// recipe back, expose a static image, and pass stream validation.
func TestProgramRecipeMaterialiseDeterministic(t *testing.T) {
	r := Recipe{Kernel: KernelProgram, Program: "hashjoin", Input: 500, Seed: 42}
	a, err := r.Materialise()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Materialise()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 || a.Len() != b.Len() {
		t.Fatalf("lengths %d vs %d", a.Len(), b.Len())
	}
	for i := int64(0); i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("materialisations diverge at %d: %+v vs %+v", i, a.At(i), b.At(i))
		}
	}
	if got, ok := a.Recipe(); !ok || got != r {
		t.Fatalf("materialised trace recipe %+v, want %+v", got, r)
	}
	if a.Name() != "hashjoin" {
		t.Errorf("trace name %q, want the program name", a.Name())
	}
	if a.Code() == nil || a.Code().Len() == 0 {
		t.Fatal("program trace exposes no static code image")
	}

	// The warm footprint must be non-trivial (fetch lines + data
	// accesses) and identical across materialisations.
	wa, wb := a.WarmFootprint(), b.WarmFootprint()
	if len(wa) == 0 || len(wa) != len(wb) {
		t.Fatalf("warm footprints %d vs %d events", len(wa), len(wb))
	}
	var fetches, datas int
	for i := range wa {
		if wa[i] != wb[i] {
			t.Fatalf("warm footprints diverge at %d", i)
		}
		if wa[i].Fetch {
			fetches++
		} else {
			datas++
		}
	}
	if fetches == 0 || datas == 0 {
		t.Fatalf("warm footprint degenerate: %d fetch lines, %d data accesses", fetches, datas)
	}
}

// TestProgramRecipeCanonicalString pins the program wire and fingerprint
// forms. The canonical string is hashed into sim fingerprints — changing
// it invalidates every cached program result — and the JSON form is what
// service clients ship; both must stay stable.
func TestProgramRecipeCanonicalString(t *testing.T) {
	r := Recipe{Kernel: KernelProgram, Program: "chase", Input: 4000, Seed: 42}
	const want = "program/chase/input=4000/seed=42"
	if got := r.String(); got != want {
		t.Errorf("canonical recipe string %q, want %q", got, want)
	}

	wire, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	const wantJSON = `{"kernel":"program","seed":42,"program":"chase","input":4000}`
	if string(wire) != wantJSON {
		t.Errorf("wire form %s, want %s", wire, wantJSON)
	}
	var back Recipe
	if err := json.Unmarshal(wire, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Errorf("wire round trip %+v, want %+v", back, r)
	}

	// Synthetic recipes must not grow new JSON fields from the program
	// extension: their wire form (and thus every existing cache key
	// derived from it) is unchanged.
	syn, err := json.Marshal(Recipe{Kernel: KernelFPMix, N: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if string(syn) != `{"kernel":"fpmix","n":3000,"seed":7}` {
		t.Errorf("synthetic wire form drifted: %s", syn)
	}
}

// TestProgramRecipeOnly: program recipes ship by identity too.
func TestProgramRecipeOnly(t *testing.T) {
	r := Recipe{Kernel: KernelProgram, Program: "memcpy", Input: 4096, Seed: 1}
	tr, err := RecipeOnly(r)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Errorf("recipe-only trace has %d instructions", tr.Len())
	}
	if tr.Name() != "memcpy" {
		t.Errorf("recipe-only trace name %q, want the program name", tr.Name())
	}
	if got, ok := tr.Recipe(); !ok || got != r {
		t.Errorf("recipe-only trace recipe %+v, want %+v", got, r)
	}
	if r.WorkloadName() != "memcpy" {
		t.Errorf("WorkloadName %q", r.WorkloadName())
	}
	if (Recipe{Kernel: KernelFPMix, N: 10, Seed: 3}).WorkloadName() != "fpmix" {
		t.Error("synthetic WorkloadName should be the kernel")
	}
}
