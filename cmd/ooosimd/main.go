// Command ooosimd is the simulation daemon: an HTTP service that
// executes batches of simulation points on a shared bounded worker
// pool behind a content-addressed result cache, so any point computed
// before — by any client, in any earlier process — is returned without
// simulation.
//
// Usage:
//
//	ooosimd [-addr HOST:PORT] [-cache-dir DIR] [-cache-entries N]
//	        [-workers N] [-max-queue N] [-drain-timeout D]
//	        [-journal PATH|auto|off]
//	        [-peers URL,URL,...] [-advertise URL] [-v]
//
// API (see internal/service):
//
//	POST /v1/batches             submit {"jobs":[...]} (429/503 under
//	                             admission control or drain)
//	GET  /v1/batches/{id}        poll status and results
//	GET  /v1/batches/{id}/events NDJSON progress stream
//	GET  /healthz                liveness
//	GET  /readyz                 readiness (503 while draining or full)
//	POST /drainz                 start graceful drain
//	GET  /metrics                Prometheus text metrics
//	GET  /v1/donors/{key}        warm-donor snapshot (fleet mode)
//
// Fleet mode: start several daemons with the same -peers list (every
// worker's URL, identical order everywhere) and each node's own URL in
// -advertise, then front them with cmd/ooosimfleet. Workers ship warmed
// donor snapshots to each other so each snapshot group is warmed once
// fleet-wide.
//
// Crash recovery: with a cache dir configured, the daemon keeps an
// append-only batch journal (default <cache-dir>/journal.ndjson) and on
// boot re-admits batches that were in flight when the previous process
// died. Already-journaled points hit the disk cache, so only the truly
// missing points re-simulate — byte-identically, since the simulator is
// deterministic.
//
// SIGINT or SIGTERM triggers a graceful drain: stop admitting, finish
// the queue (up to -drain-timeout), then exit.
//
// Point cmd/experiments -server at the daemon (or the fleet
// coordinator) to regenerate figures against the warm cache.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8321", "listen address")
	cacheDir := flag.String("cache-dir", "", "disk tier of the result cache (empty: memory only)")
	cacheEntries := flag.Int("cache-entries", service.DefaultCacheEntries, "memory tier capacity, in results")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker-pool size (shared across batches)")
	maxQueue := flag.Int("max-queue", 0, "admission bound on queued misses; 0 admits everything")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "how long a signal-triggered drain waits for the queue")
	journalPath := flag.String("journal", "auto", "batch recovery journal: a path, 'auto' (<cache-dir>/journal.ndjson), or 'off'")
	peers := flag.String("peers", "", "comma-separated fleet worker URLs (same list on every node); empty disables donor shipping")
	advertise := flag.String("advertise", "", "this node's own URL in -peers (enables adopting donors from peers)")
	verbose := flag.Bool("v", false, "log every request")
	flag.Parse()

	cache, err := service.NewCache(*cacheEntries, *cacheDir)
	if err != nil {
		log.Fatalf("ooosimd: %v", err)
	}
	var donors *service.DonorExchange
	if *peers != "" {
		var list []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		donors = service.NewDonorExchange(*advertise, list)
	}
	var journal *service.Journal
	switch *journalPath {
	case "off", "":
	case "auto":
		if *cacheDir != "" {
			journal, err = service.OpenJournal(filepath.Join(*cacheDir, "journal.ndjson"))
		}
	default:
		journal, err = service.OpenJournal(*journalPath)
	}
	if err != nil {
		log.Fatalf("ooosimd: journal: %v", err)
	}
	// Every finished batch logs its cache hit/miss split alongside the
	// snapshot-sharing stats (group count, warm-donor reuse rate), so
	// operators can see the snapshot-fork sharing actually engage.
	sched := service.NewScheduler(service.SchedulerOptions{
		Workers:  *workers,
		Cache:    cache,
		MaxQueue: *maxQueue,
		Donors:   donors,
		Journal:  journal,
		Log:      log.Printf,
	})
	if journal != nil {
		// Re-admit batches the previous process left in flight: journaled
		// points hit the disk cache, so only the missing ones re-simulate.
		if requeued, err := sched.Recover(); err != nil {
			log.Printf("ooosimd: journal recovery: %v", err)
		} else if requeued > 0 {
			log.Printf("ooosimd: recovered %d in-flight batch(es) from the journal", requeued)
		}
	}
	handler := service.NewHandler(sched)
	if *verbose {
		inner := handler
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			inner.ServeHTTP(w, r)
			log.Printf("%s %s (%.1fms)", r.Method, r.URL.Path, float64(time.Since(start).Microseconds())/1000)
		})
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// A client that stalls mid-headers or parks an idle connection
		// must not wedge the daemon (the default is no timeout at all).
		// WriteTimeout and ReadTimeout stay 0 on purpose:
		// /v1/batches/{id}/events streams NDJSON for as long as a batch
		// runs, and either deadline would sever live streams (ReadTimeout
		// trips the server's background read mid-handler). Slow-loris
		// headers are bounded by ReadHeaderTimeout and parked keep-alive
		// connections by IdleTimeout.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// SIGTERM is what orchestrators send; SIGINT is what operators send.
	// Either starts a graceful drain: readiness flips false (the fleet
	// coordinator stops routing here), the queue runs dry, then the
	// listener closes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("ooosimd: signal received, draining (timeout %s)", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := sched.Drain(dctx); err != nil {
			log.Printf("ooosimd: drain incomplete: %v", err)
		}
		// In-flight streams flush during Shutdown's grace window.
		sctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		srv.Shutdown(sctx)
	}()

	where := *cacheDir
	if where == "" {
		where = "memory only"
	}
	log.Printf("ooosimd: listening on %s (workers=%d, cache=%s)", *addr, *workers, where)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ooosimd: %v", err)
	}
	log.Printf("ooosimd: drained, exiting")
}
