// Package sim is the run engine underneath the experiment harness: it
// executes declarative simulation points over a bounded worker pool and
// returns results in submission order with real error propagation.
//
// Every figure of the paper's evaluation is a grid of (mechanism ×
// window size × L2 latency × workload) points; each figure flattens its
// grid into a []RunSpec and submits it to Sweep once. Traces are
// immutable (core.CPU.Run never writes to its *trace.Trace, guarded by
// a test), so a single generated trace is shared read-only by every
// concurrently running CPU that sweeps over it.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// RunSpec is one declarative simulation point: a configuration bound to
// a workload trace and an instruction budget.
type RunSpec struct {
	// Name labels the workload (progress lines and run records).
	Name string
	// Config is the processor configuration; validated by core.New.
	Config config.Config
	// Trace is the workload. It is shared read-only across concurrent
	// runs — generate once, submit many.
	Trace *trace.Trace
	// Insts is the committed-instruction target (0 runs the full trace).
	Insts uint64
	// CollectOccupancy enables the full occupancy distribution
	// (Figure 7).
	CollectOccupancy bool
}

// Options tunes a Sweep.
type Options struct {
	// Workers bounds the worker pool; <= 0 uses GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives one line per completed run
	// together with the sweep's completion count: done runs out of
	// total (done counts this run). Calls are serialised but arrive in
	// completion order, not spec order.
	Progress func(done, total int, line string)
	// OnResult, when non-nil, receives every completed run. Calls are
	// serialised; order follows completion, not spec order.
	OnResult func(spec RunSpec, res stats.Results)
}

// ProgressLine renders the one-line completion report for a finished
// spec. The local sweep and the remote service client both use it, so
// -server progress output matches in-process output byte for byte.
func ProgressLine(spec RunSpec, res stats.Results) string {
	return fmt.Sprintf("  %-10s %-34s IPC=%.3f", spec.Name, spec.Config.Summary(), res.IPC())
}

// Run executes a single spec synchronously. Construction failures and
// simulator panics (e.g. the commit watchdog) come back as errors
// labelled with the spec, never as process-killing panics — a worker
// pool must survive one bad point.
func Run(spec RunSpec) (res stats.Results, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: %s (%s): panic: %v", spec.Name, spec.Config.Summary(), r)
		}
	}()
	cpu, nerr := core.New(spec.Config, spec.Trace)
	if nerr != nil {
		return stats.Results{}, fmt.Errorf("sim: %s (%s): %w", spec.Name, spec.Config.Summary(), nerr)
	}
	return cpu.Run(core.RunOptions{
		MaxInsts:         spec.Insts,
		CollectOccupancy: spec.CollectOccupancy,
	}), nil
}

// Sweep executes every spec over a bounded worker pool and returns the
// results in spec order: results[i] belongs to specs[i] regardless of
// which worker finished it when, so sweep output is deterministic for
// any worker count. The first failing spec cancels the remaining work
// and its error is returned; ctx cancellation stops the sweep early
// with ctx's error.
func Sweep(ctx context.Context, specs []RunSpec, opt Options) ([]stats.Results, error) {
	if len(specs) == 0 {
		return nil, ctx.Err()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]stats.Results, len(specs))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain remaining indices after cancellation
				}
				res, err := Run(specs[i])
				if err != nil {
					fail(err)
					continue
				}
				results[i] = res
				if opt.Progress != nil || opt.OnResult != nil {
					mu.Lock()
					done++
					if opt.Progress != nil {
						opt.Progress(done, len(specs), ProgressLine(specs[i], res))
					}
					if opt.OnResult != nil {
						opt.OnResult(specs[i], res)
					}
					mu.Unlock()
				}
			}
		}()
	}

feed:
	for i := range specs {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
