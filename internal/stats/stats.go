// Package stats collects and summarises simulation measurements: IPC,
// window-occupancy distributions (Figures 7 and 11 of the paper),
// pseudo-ROB retirement breakdowns (Figure 12), and the usual cache and
// branch-predictor counters.
package stats

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/branch"
	"repro/internal/lsq"
	"repro/internal/mem"
)

// RetireClass classifies an instruction at the moment it is retired from
// the pseudo-ROB, matching the six sections of Figure 12 (bottom to top).
type RetireClass int

// Retirement classes.
const (
	// RetireMoved: not yet issued and dependent on a long-latency load;
	// moved from the issue queue into the SLIQ.
	RetireMoved RetireClass = iota
	// RetireFinished: execution already complete.
	RetireFinished
	// RetireShortLat: not yet executed but short-latency (stays in IQ).
	RetireShortLat
	// RetireFinishedLoad: a load that finished or hit in L1/L2.
	RetireFinishedLoad
	// RetireLongLatLoad: a load that missed in L2 (the problem makers).
	RetireLongLatLoad
	// RetireStore: a store instruction.
	RetireStore

	NumRetireClasses
)

var retireNames = [NumRetireClasses]string{
	"Moved", "Finished", "Short Lat.", "Finished Loads", "Long Lat. Loads", "Stores",
}

// String implements fmt.Stringer.
func (c RetireClass) String() string {
	if c >= 0 && c < NumRetireClasses {
		return retireNames[c]
	}
	return fmt.Sprintf("retire(%d)", int(c))
}

// Breakdown counts pseudo-ROB retirements per class.
type Breakdown [NumRetireClasses]uint64

// Total returns the number of classified retirements.
func (b Breakdown) Total() uint64 {
	var t uint64
	for _, v := range b {
		t += v
	}
	return t
}

// Fraction returns the share of class c, or 0 for an empty breakdown.
func (b Breakdown) Fraction(c RetireClass) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b[c]) / float64(t)
}

// String renders percentages in Figure 12's order.
func (b Breakdown) String() string {
	var sb strings.Builder
	for c := RetireClass(0); c < NumRetireClasses; c++ {
		if c > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%s %.1f%%", c, 100*b.Fraction(c))
	}
	return sb.String()
}

// Occupancy accumulates a per-cycle histogram of window occupancy
// ("in-flight instructions") together with the live floating-point
// instruction counts split into blocked-long and blocked-short, exactly
// the data behind Figure 7. The histogram form makes percentile queries
// exact while keeping the per-cycle cost to three array increments.
type Occupancy struct {
	count    []uint64 // samples with this in-flight count
	sumLong  []uint64 // total blocked-long live FP insts at this count
	sumShort []uint64
	samples  uint64
	sumInfl  uint64
	max      int
}

// NewOccupancy builds a tracker for in-flight counts up to maxInflight.
func NewOccupancy(maxInflight int) *Occupancy {
	if maxInflight < 1 {
		panic(fmt.Sprintf("stats: maxInflight %d < 1", maxInflight))
	}
	n := maxInflight + 1
	return &Occupancy{
		count:    make([]uint64, n),
		sumLong:  make([]uint64, n),
		sumShort: make([]uint64, n),
	}
}

// Sample records one cycle's occupancy. Counts beyond the tracker's
// capacity are clamped to the top bucket.
func (o *Occupancy) Sample(inflight, liveLong, liveShort int) {
	if inflight < 0 {
		inflight = 0
	}
	if inflight >= len(o.count) {
		inflight = len(o.count) - 1
	}
	o.count[inflight]++
	o.sumLong[inflight] += uint64(liveLong)
	o.sumShort[inflight] += uint64(liveShort)
	o.samples++
	o.sumInfl += uint64(inflight)
	if inflight > o.max {
		o.max = inflight
	}
}

// SampleN records n cycles that all observed the same occupancy, as if
// Sample had been called n times: the event-driven clock skip replays
// the quiescent cycle's constant sample for every cycle it elides, so
// the histogram is bit-identical to the cycle-by-cycle run.
func (o *Occupancy) SampleN(n uint64, inflight, liveLong, liveShort int) {
	if n == 0 {
		return
	}
	if inflight < 0 {
		inflight = 0
	}
	if inflight >= len(o.count) {
		inflight = len(o.count) - 1
	}
	o.count[inflight] += n
	o.sumLong[inflight] += n * uint64(liveLong)
	o.sumShort[inflight] += n * uint64(liveShort)
	o.samples += n
	o.sumInfl += n * uint64(inflight)
	if inflight > o.max {
		o.max = inflight
	}
}

// Samples returns the number of recorded cycles.
func (o *Occupancy) Samples() uint64 { return o.samples }

// Mean returns the average in-flight instruction count (Figure 11's
// metric).
func (o *Occupancy) Mean() float64 {
	if o.samples == 0 {
		return 0
	}
	return float64(o.sumInfl) / float64(o.samples)
}

// Max returns the largest observed in-flight count.
func (o *Occupancy) Max() int { return o.max }

// MergeInto adds this tracker's histogram into dst (suite averaging).
// dst must have capacity at least as large as o's.
func (o *Occupancy) MergeInto(dst *Occupancy) {
	if len(dst.count) < len(o.count) {
		panic("stats: MergeInto destination too small")
	}
	for i := range o.count {
		dst.count[i] += o.count[i]
		dst.sumLong[i] += o.sumLong[i]
		dst.sumShort[i] += o.sumShort[i]
	}
	dst.samples += o.samples
	dst.sumInfl += o.sumInfl
	if o.max > dst.max {
		dst.max = o.max
	}
}

// occupancyJSON is the wire form of Occupancy: the three histograms
// fully determine the derived fields (samples, mean, max).
type occupancyJSON struct {
	Count    []uint64 `json:"count"`
	SumLong  []uint64 `json:"sum_long"`
	SumShort []uint64 `json:"sum_short"`
}

// MarshalJSON implements json.Marshaler.
func (o *Occupancy) MarshalJSON() ([]byte, error) {
	return json.Marshal(occupancyJSON{Count: o.count, SumLong: o.sumLong, SumShort: o.sumShort})
}

// UnmarshalJSON implements json.Unmarshaler, recomputing the derived
// fields from the histograms.
func (o *Occupancy) UnmarshalJSON(data []byte) error {
	var w occupancyJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if len(w.Count) == 0 || len(w.SumLong) != len(w.Count) || len(w.SumShort) != len(w.Count) {
		return fmt.Errorf("stats: malformed occupancy histogram (%d/%d/%d buckets)",
			len(w.Count), len(w.SumLong), len(w.SumShort))
	}
	o.count, o.sumLong, o.sumShort = w.Count, w.SumLong, w.SumShort
	o.samples, o.sumInfl, o.max = 0, 0, 0
	for i, c := range w.Count {
		o.samples += c
		o.sumInfl += c * uint64(i)
		if c > 0 {
			o.max = i
		}
	}
	return nil
}

// mergeOcc returns a fresh tracker holding a+b, sized to the larger of
// the two.
func mergeOcc(a, b *Occupancy) *Occupancy {
	n := len(a.count)
	if len(b.count) > n {
		n = len(b.count)
	}
	out := NewOccupancy(n - 1)
	a.MergeInto(out)
	b.MergeInto(out)
	return out
}

// Percentile returns the smallest in-flight count x such that at least
// p (0 < p <= 1) of the sampled cycles had occupancy <= x. This is the
// "25% of the time the ROB had less than N instructions" statistic of
// Figure 7.
func (o *Occupancy) Percentile(p float64) int {
	if o.samples == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	need := uint64(p * float64(o.samples))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for i, c := range o.count {
		cum += c
		if cum >= need {
			return i
		}
	}
	return len(o.count) - 1
}

// LiveAtPercentile returns the average blocked-long and blocked-short
// live FP instruction counts over the cycles whose occupancy falls at or
// below the p'th percentile, which is how Figure 7 stacks its bars.
func (o *Occupancy) LiveAtPercentile(p float64) (long, short float64) {
	cut := o.Percentile(p)
	var n, sl, ss uint64
	for i := 0; i <= cut; i++ {
		n += o.count[i]
		sl += o.sumLong[i]
		ss += o.sumShort[i]
	}
	if n == 0 {
		return 0, 0
	}
	return float64(sl) / float64(n), float64(ss) / float64(n)
}

// Results aggregates everything a single simulation run produces.
type Results struct {
	// Name labels the configuration (for reports).
	Name string

	// Cycles is the simulated cycle count.
	Cycles int64
	// Committed is the number of architecturally retired instructions.
	Committed uint64
	// Fetched counts all fetched instructions, including re-fetches
	// after rollbacks.
	Fetched uint64
	// Dispatched and Issued count pipeline activity.
	Dispatched uint64
	Issued     uint64
	// Replayed counts instructions squashed by checkpoint rollbacks and
	// later re-executed (pure overhead of coarse recovery).
	Replayed uint64

	// Rollbacks counts checkpoint rollbacks (mispredicted branches that
	// had already left the pseudo-ROB, plus exceptions).
	Rollbacks uint64
	// PseudoROBRecoveries counts branch mispredictions recovered from
	// the pseudo-ROB without a checkpoint rollback.
	PseudoROBRecoveries uint64
	// CheckpointsTaken and CheckpointsCommitted count checkpoint-table
	// activity.
	CheckpointsTaken     uint64
	CheckpointsCommitted uint64
	// CheckpointStallCycles counts cycles fetch was stalled because the
	// checkpoint table was full.
	CheckpointStallCycles uint64

	// SLIQMoved counts instructions moved from the issue queues into
	// the SLIQ; SLIQWoken counts re-insertions back into the queues.
	SLIQMoved uint64
	SLIQWoken uint64

	// SkippedCycles, SkipEvents and LongestSkip measure the event-driven
	// clock skip (a simulator-speed diagnostic, not a model quantity:
	// every other counter is bit-identical with skipping disabled).
	// SkippedCycles counts cycles elided by clock jumps — they are
	// included in Cycles — SkipEvents counts the jumps, and LongestSkip
	// is the largest single jump. All three are omitted from the JSON
	// encoding when zero, so runs that never skip (and cached results
	// recorded before the counters existed) keep their encodings
	// byte-identical.
	SkippedCycles uint64 `json:",omitempty"`
	SkipEvents    uint64 `json:",omitempty"`
	LongestSkip   uint64 `json:",omitempty"`

	// Branch and Mem expose substrate counters.
	Branch branch.Stats
	Mem    mem.HierarchyStats

	// BTB carries branch-target-buffer counters and LSQ the load/store
	// queue counters. Both are populated only for program-backed
	// workloads (synthetic traces have no real PCs for a BTB to key on,
	// and their results predate these fields); nil pointers are omitted
	// from JSON so synthetic encodings — and every cached result — stay
	// byte-identical.
	BTB *branch.BTBStats `json:",omitempty"`
	LSQ *lsq.Stats       `json:",omitempty"`

	// Retire is the pseudo-ROB retirement breakdown (checkpoint family).
	Retire Breakdown

	// Policy carries commit-policy-specific counters, keyed
	// "<policy>.<metric>" (e.g. "adaptive.low_confidence_branches").
	// Policies that define no extra counters leave it nil. Merge
	// aggregates per key: metrics whose name starts with "max_" (after
	// the policy prefix) take the maximum, everything else sums. JSON
	// encodes maps with sorted keys, so the canonical encoding (and
	// Results.Equal) stays deterministic.
	Policy map[string]uint64 `json:",omitempty"`

	// MeanInflight and MaxInflight summarise window occupancy.
	MeanInflight float64
	MaxInflight  int
	// Occ carries the full occupancy distribution when the run was
	// configured to collect it (Figure 7); nil otherwise.
	Occ *Occupancy

	// Sampled summarises the sampling protocol of a sampled run (nil —
	// and omitted from JSON, keeping full-detail encodings byte-identical
	// — for full-detail runs). When present, every other counter in
	// Results covers only the measured detail windows.
	Sampled *Sampled `json:",omitempty"`
}

// Merge folds another run's measurements into r, producing suite-level
// aggregates: counters sum, the occupancy histograms merge, MaxInflight
// takes the maximum and MeanInflight becomes the cycle-weighted mean,
// so the merged IPC is total committed over total cycles. Name is kept
// unless r's is empty. Merge and the JSON round-trip together make
// sweep output machine-consumable: per-benchmark Results serialise,
// ship, and aggregate downstream.
func (r *Results) Merge(o Results) {
	if r.Name == "" {
		r.Name = o.Name
	}
	total := r.Cycles + o.Cycles
	if total > 0 {
		r.MeanInflight = (r.MeanInflight*float64(r.Cycles) + o.MeanInflight*float64(o.Cycles)) / float64(total)
	}
	r.Cycles = total
	r.Committed += o.Committed
	r.Fetched += o.Fetched
	r.Dispatched += o.Dispatched
	r.Issued += o.Issued
	r.Replayed += o.Replayed
	r.Rollbacks += o.Rollbacks
	r.PseudoROBRecoveries += o.PseudoROBRecoveries
	r.CheckpointsTaken += o.CheckpointsTaken
	r.CheckpointsCommitted += o.CheckpointsCommitted
	r.CheckpointStallCycles += o.CheckpointStallCycles
	r.SLIQMoved += o.SLIQMoved
	r.SLIQWoken += o.SLIQWoken
	r.SkippedCycles += o.SkippedCycles
	r.SkipEvents += o.SkipEvents
	if o.LongestSkip > r.LongestSkip {
		r.LongestSkip = o.LongestSkip
	}

	r.Branch.Predictions += o.Branch.Predictions
	r.Branch.Mispredicts += o.Branch.Mispredicts

	if o.BTB != nil {
		if r.BTB == nil {
			r.BTB = &branch.BTBStats{}
		}
		r.BTB.Lookups += o.BTB.Lookups
		r.BTB.Hits += o.BTB.Hits
		r.BTB.BadTargets += o.BTB.BadTargets
	}
	if o.LSQ != nil {
		if r.LSQ == nil {
			r.LSQ = &lsq.Stats{}
		}
		r.LSQ.Loads += o.LSQ.Loads
		r.LSQ.Stores += o.LSQ.Stores
		r.LSQ.Forwards += o.LSQ.Forwards
		r.LSQ.ForwardStalls += o.LSQ.ForwardStalls
		r.LSQ.StoresDrained += o.LSQ.StoresDrained
		r.LSQ.FullStalls += o.LSQ.FullStalls
	}

	r.Mem.IL1.Accesses += o.Mem.IL1.Accesses
	r.Mem.IL1.Misses += o.Mem.IL1.Misses
	r.Mem.DL1.Accesses += o.Mem.DL1.Accesses
	r.Mem.DL1.Misses += o.Mem.DL1.Misses
	r.Mem.L2.Accesses += o.Mem.L2.Accesses
	r.Mem.L2.Misses += o.Mem.L2.Misses
	r.Mem.MemAccesses += o.Mem.MemAccesses
	r.Mem.MergedMisses += o.Mem.MergedMisses
	r.Mem.StoreWrites += o.Mem.StoreWrites
	r.Mem.Prefetches += o.Mem.Prefetches

	for c := range r.Retire {
		r.Retire[c] += o.Retire[c]
	}
	if len(o.Policy) > 0 {
		if r.Policy == nil {
			r.Policy = make(map[string]uint64, len(o.Policy))
		}
		for k, v := range o.Policy {
			if policyCounterIsMax(k) {
				if v > r.Policy[k] {
					r.Policy[k] = v
				}
			} else {
				r.Policy[k] += v
			}
		}
	}
	if o.MaxInflight > r.MaxInflight {
		r.MaxInflight = o.MaxInflight
	}
	if o.Occ != nil {
		if r.Occ == nil {
			r.Occ = mergeOcc(NewOccupancy(1), o.Occ)
		} else {
			r.Occ = mergeOcc(r.Occ, o.Occ)
		}
	}
	if o.Sampled != nil {
		if r.Sampled == nil {
			r.Sampled = &Sampled{}
		}
		r.Sampled.merge(*o.Sampled)
	}
}

// policyCounterIsMax reports whether a Policy key names a maximum-style
// metric ("<policy>.max_<metric>", e.g. "oracle.max_retire_burst"):
// summing two maxima would fabricate a value no run ever observed.
func policyCounterIsMax(key string) bool {
	if i := strings.IndexByte(key, '.'); i >= 0 {
		key = key[i+1:]
	}
	return strings.HasPrefix(key, "max_")
}

// Equal reports whether two result sets are identical. Comparison goes
// through the canonical JSON encoding, which covers the occupancy
// histogram a plain struct compare cannot (Occ is a pointer) and is
// exactly the equality the content-addressed result cache promises:
// a cache hit returns results byte-identical to recomputation.
func (r Results) Equal(o Results) bool {
	a, aerr := json.Marshal(r)
	b, berr := json.Marshal(o)
	return aerr == nil && berr == nil && bytes.Equal(a, b)
}

// IPC returns committed instructions per cycle.
func (r Results) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// SkipRate returns the fraction of simulated cycles elided by the
// event-driven clock skip (0 when skipping never engaged).
func (r Results) SkipRate() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.SkippedCycles) / float64(r.Cycles)
}

// ReplayRate returns replayed (thrown-away) instructions per committed
// instruction, a measure of rollback overhead.
func (r Results) ReplayRate() float64 {
	if r.Committed == 0 {
		return 0
	}
	return float64(r.Replayed) / float64(r.Committed)
}

// String renders a one-line summary.
func (r Results) String() string {
	return fmt.Sprintf("%s: IPC=%.3f cycles=%d committed=%d inflight(avg)=%.0f mispred=%.2f%% L2miss=%.1f%%",
		r.Name, r.IPC(), r.Cycles, r.Committed, r.MeanInflight,
		100*r.Branch.MispredictRate(), 100*r.Mem.L2.MissRate())
}
