package service

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/config"
	"repro/internal/isa/programs"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// sampledBatch builds a small sampled batch: every registered program
// plus one beyond-the-materialisation-cap synthetic stream, under the
// two headline configurations.
func sampledBatch(t *testing.T) []Job {
	t.Helper()
	const budget = 60_000
	sample := trace.SampleSpec{Warmup: 500, Detail: 1500, Period: 10_000}
	var recipes []trace.Recipe
	for _, name := range programs.Names() {
		spec, ok := programs.Lookup(name)
		if !ok {
			t.Fatalf("Lookup(%q) failed", name)
		}
		recipes = append(recipes, trace.Recipe{
			Kernel: trace.KernelProgram, Program: name,
			Input: spec.InputFor(budget), Seed: 42,
		})
	}
	// A synthetic stream sized beyond MaxRecipeInsts: only the sampled
	// path can run it at all, so its presence proves the scheduler
	// routes sampled points through StreamOnly, never Materialise.
	recipes = append(recipes, trace.Recipe{Kernel: trace.KernelStream, N: trace.MaxRecipeInsts + 1})

	var jobs []Job
	for _, cfg := range []config.Config{config.BaselineSized(128), config.CheckpointDefault(128, 2048)} {
		for _, r := range recipes {
			jobs = append(jobs, Job{
				Name: r.Kernel, Config: cfg, Trace: r,
				Insts: budget, Sample: sample,
			})
		}
	}
	return jobs
}

// TestSampledBatchColdThenWarm is the sampled points' service
// citizenship test: a sampled batch submitted twice through the daemon
// must replay entirely from the result cache — byte-identical raw wire
// results, zero simulator calls — and the sample spec must be visible
// in the job's wire form (it is part of the point's identity).
func TestSampledBatchColdThenWarm(t *testing.T) {
	cache, err := NewCache(0, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sched := NewScheduler(SchedulerOptions{Workers: 4, Cache: cache})
	var runs atomic.Int64
	sched.run = func(spec sim.RunSpec, donor *mem.Hierarchy) (stats.Results, error) {
		runs.Add(1)
		if !spec.Sample.Enabled() {
			t.Error("sampled job reached the runner without its sample spec")
		}
		return sim.Run(spec)
	}
	srv := httptest.NewServer(NewHandler(sched))
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}
	ctx := context.Background()

	jobs := sampledBatch(t)

	// Wire form: the sample spec must round-trip through JSON, and a
	// non-sampled job must not grow a "sample" key (zero-drift).
	wire, err := json.Marshal(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(wire), `"sample"`) {
		t.Errorf("sampled job wire form lacks the sample spec: %s", wire)
	}
	plain := jobs[0]
	plain.Sample = trace.SampleSpec{}
	if wire, err = json.Marshal(plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(wire), `"sample"`) {
		t.Errorf("non-sampled job wire form grew a sample key: %s", wire)
	}

	coldByIndex := make([]string, len(jobs))
	coldResults, err := client.Run(ctx, jobs, func(ev Event, _ *stats.Results) {
		if ev.Type == "result" {
			coldByIndex[ev.Index] = string(ev.Results)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != int64(len(jobs)) {
		t.Fatalf("cold run simulated %d points, want %d", got, len(jobs))
	}
	for i, res := range coldResults {
		if res.Sampled == nil {
			t.Fatalf("point %d returned no Sampled block", i)
		}
		if res.Sampled.Windows == 0 || res.Sampled.SampledInsts == 0 {
			t.Fatalf("point %d sampled degenerately: %+v", i, *res.Sampled)
		}
	}

	hits := 0
	warmByIndex := make([]string, len(jobs))
	if _, err = client.Run(ctx, jobs, func(ev Event, _ *stats.Results) {
		if ev.Type == "result" {
			warmByIndex[ev.Index] = string(ev.Results)
			if ev.Cached {
				hits++
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if hits != len(jobs) {
		t.Errorf("warm run had %d/%d cache hits, want all", hits, len(jobs))
	}
	if got := runs.Load(); got != int64(len(jobs)) {
		t.Errorf("warm run performed %d extra simulator calls", got-int64(len(jobs)))
	}
	for i := range jobs {
		if coldByIndex[i] == "" || coldByIndex[i] != warmByIndex[i] {
			t.Errorf("point %d: warm results not byte-identical to cold", i)
		}
	}
}

// TestSampledFingerprintDistinct pins the identity rule: a sampled
// point and its full-detail twin are different cache keys, while the
// non-sampled canonical string — and therefore every pre-existing
// fingerprint — is unchanged by the sampling extension.
func TestSampledFingerprintDistinct(t *testing.T) {
	r := trace.Recipe{Kernel: trace.KernelStream, N: 4096}
	full := Job{Config: config.Default(), Trace: r, Insts: 2000}
	sampled := full
	sampled.Sample = trace.SampleSpec{Warmup: 100, Detail: 400, Period: 1000}

	ffp, err := full.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	sfp, err := sampled.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if ffp == sfp {
		t.Fatal("sampled point aliases its full-detail twin")
	}
	if got := trace.PointString(r, trace.SampleSpec{}); got != r.String() {
		t.Fatalf("non-sampled PointString drifted: %q != %q", got, r.String())
	}
	want := r.String() + "/sample/w=100/d=400/p=1000"
	if got := trace.PointString(r, sampled.Sample); got != want {
		t.Fatalf("sampled PointString = %q, want %q", got, want)
	}
}
