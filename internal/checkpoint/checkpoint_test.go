package checkpoint

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/rename"
)

func paperPolicy() Policy {
	return Policy{BranchInterval: 64, MaxInterval: 512, MaxStores: 64}
}

func newTableWithRename(t *testing.T) (*Table, *rename.Table) {
	t.Helper()
	return NewTable(8, paperPolicy()), rename.New(128)
}

// take creates a checkpoint, failing the test if the table is full.
func take(t *testing.T, ct *Table, rt *rename.Table, seq uint64, pos int64) *Entry {
	t.Helper()
	e := ct.Take(seq, pos, rt.TakeSnapshot(), 0)
	if e == nil {
		t.Fatal("unexpected checkpoint-table full")
	}
	return e
}

func TestEmptyTableAlwaysTakes(t *testing.T) {
	ct, _ := newTableWithRename(t)
	if !ct.ShouldTake(isa.IntAlu) {
		t.Fatal("empty table must force a checkpoint")
	}
}

func TestBranchHeuristic(t *testing.T) {
	ct, rt := newTableWithRename(t)
	e := take(t, ct, rt, 0, 0)
	for i := 0; i < 63; i++ {
		ct.Associate(e, isa.IntAlu)
	}
	if ct.ShouldTake(isa.Branch) {
		t.Fatal("63 instructions: branch must not trigger yet")
	}
	ct.Associate(e, isa.IntAlu)
	if !ct.ShouldTake(isa.Branch) {
		t.Fatal("first branch after 64 instructions must trigger")
	}
	if ct.ShouldTake(isa.IntAlu) {
		t.Fatal("non-branches must not trigger the branch rule")
	}
}

func TestMaxIntervalHeuristic(t *testing.T) {
	ct, rt := newTableWithRename(t)
	e := take(t, ct, rt, 0, 0)
	for i := 0; i < 512; i++ {
		ct.Associate(e, isa.FPAlu)
	}
	if !ct.ShouldTake(isa.FPAlu) {
		t.Fatal("512 instructions must force a checkpoint at any op")
	}
}

func TestStoreHeuristic(t *testing.T) {
	ct, rt := newTableWithRename(t)
	e := take(t, ct, rt, 0, 0)
	for i := 0; i < 64; i++ {
		ct.Associate(e, isa.Store)
	}
	if !ct.ShouldTake(isa.Store) {
		t.Fatal("64 stores must force a checkpoint at the next store")
	}
	if ct.ShouldTake(isa.FPAlu) {
		t.Fatal("the store rule only fires at stores")
	}
}

func TestTakeFullStall(t *testing.T) {
	ct, rt := newTableWithRename(t)
	for i := uint64(0); i < 8; i++ {
		take(t, ct, rt, i*100, int64(i*100))
	}
	if !ct.Full() {
		t.Fatal("table should be full")
	}
	if e := ct.Take(900, 900, rt.TakeSnapshot(), 0); e != nil {
		t.Fatal("take on a full table must fail")
	}
	if ct.Stats().FullStalls != 1 {
		t.Fatal("full stall not counted")
	}
}

func TestCommitFlow(t *testing.T) {
	ct, rt := newTableWithRename(t)
	e0 := take(t, ct, rt, 0, 0)
	ct.Associate(e0, isa.IntAlu)
	ct.Associate(e0, isa.Store)

	if ct.CanCommit() {
		t.Fatal("open window (no younger checkpoint) must not commit")
	}
	rt.Allocate(isa.IntReg(1)) // superseded mapping captured by e1
	e1 := take(t, ct, rt, 10, 10)
	if ct.CanCommit() {
		t.Fatal("window with pending instructions must not commit")
	}
	ct.Finished(e0)
	ct.Finished(e0)
	if !ct.CanCommit() {
		t.Fatal("closed, finished window must commit")
	}
	got, ff, endSeq := ct.Commit()
	if got != e0 {
		t.Fatal("commit must retire the oldest")
	}
	if endSeq != 10 {
		t.Fatalf("endSeq = %d, want e1.StartSeq", endSeq)
	}
	if ff.Count() != 1 {
		t.Fatalf("future-free count = %d, want 1 (the superseded mapping)", ff.Count())
	}
	if ct.Oldest() != e1 {
		t.Fatal("e1 should now be oldest")
	}
}

func TestCommitPanicsWhenNotReady(t *testing.T) {
	ct, rt := newTableWithRename(t)
	e := take(t, ct, rt, 0, 0)
	ct.Associate(e, isa.IntAlu)
	take(t, ct, rt, 5, 5)
	defer func() {
		if recover() == nil {
			t.Error("commit with pending instructions must panic")
		}
	}()
	ct.Commit()
}

func TestFinishedUnderflowPanics(t *testing.T) {
	ct, rt := newTableWithRename(t)
	e := take(t, ct, rt, 0, 0)
	defer func() {
		if recover() == nil {
			t.Error("finishing more than associated must panic")
		}
	}()
	ct.Finished(e)
}

func TestSquashAccounting(t *testing.T) {
	ct, rt := newTableWithRename(t)
	e := take(t, ct, rt, 0, 0)
	ct.Associate(e, isa.Store)
	ct.Associate(e, isa.IntAlu)
	ct.Finished(e) // the store finished
	ct.Squashed(e, isa.IntAlu)
	ct.SquashedDone(e, isa.Store)
	if e.Pending != 0 || e.Insts != 0 || e.Stores != 0 {
		t.Fatalf("accounting after squash: %+v", e)
	}
}

func TestRollback(t *testing.T) {
	ct, rt := newTableWithRename(t)
	e0 := take(t, ct, rt, 0, 0)
	ct.Associate(e0, isa.IntAlu)
	rt.Allocate(isa.IntReg(1))
	e1 := take(t, ct, rt, 100, 100)
	ct.Associate(e1, isa.FPAlu)
	rt.Allocate(isa.FPReg(2))
	e2 := take(t, ct, rt, 200, 200)
	ct.Associate(e2, isa.FPAlu)

	pending := ct.Rollback(e1)
	if ct.Len() != 2 {
		t.Fatalf("live checkpoints = %d, want 2", ct.Len())
	}
	if ct.Youngest() != e1 {
		t.Fatal("rollback target must become youngest")
	}
	if e1.Pending != 0 || e1.Insts != 0 {
		t.Fatal("target window must reset")
	}
	// Pending frees: e1's captured set (owed to e0's commit).
	if len(pending) != 1 {
		t.Fatalf("pending frees = %d, want 1", len(pending))
	}
	if e0.Insts != 1 {
		t.Fatal("older window must be untouched")
	}
	if ct.Stats().Rollbacks != 1 {
		t.Fatal("rollback not counted")
	}
	if err := ct.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackUnknownTargetPanics(t *testing.T) {
	ct, rt := newTableWithRename(t)
	take(t, ct, rt, 0, 0)
	stray := &Entry{ID: 99}
	defer func() {
		if recover() == nil {
			t.Error("rollback to a dead checkpoint must panic")
		}
	}()
	ct.Rollback(stray)
}

func TestPendingFrees(t *testing.T) {
	ct, rt := newTableWithRename(t)
	take(t, ct, rt, 0, 0)
	rt.Allocate(isa.IntReg(3))
	take(t, ct, rt, 10, 10)
	rt.Allocate(isa.IntReg(4))
	take(t, ct, rt, 20, 20)
	pf := ct.PendingFrees()
	if len(pf) != 2 {
		t.Fatalf("pending frees = %d, want 2 (all but the oldest)", len(pf))
	}
}

func TestEntriesOrderingInvariant(t *testing.T) {
	ct, rt := newTableWithRename(t)
	for i := uint64(0); i < 5; i++ {
		e := take(t, ct, rt, i*50, int64(i*50))
		ct.Associate(e, isa.IntAlu)
		ct.Finished(e)
	}
	if err := ct.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for ct.CanCommit() {
		ct.Commit()
	}
	if ct.Len() != 1 {
		t.Fatalf("after draining, one open window remains; got %d", ct.Len())
	}
}

func TestNewTablePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTable(0, paperPolicy()) },
		func() { NewTable(4, Policy{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
