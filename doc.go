// Package repro is a from-scratch Go reproduction of "Out-of-Order
// Commit Processors" (Cristal, Ortega, Llosa, Valero — HPCA 2004): a
// cycle-level superscalar processor simulator with four pluggable
// retirement mechanisms (a conventional reorder buffer, the paper's
// checkpoint-based out-of-order commit, adaptive-confidence
// checkpointing, and an unbounded-window oracle limit — see
// core.CommitPolicy), the pseudo-ROB + Slow Lane
// Instruction Queuing mechanism, the ephemeral/virtual register
// extension, a synthetic SPEC2000fp-stand-in workload suite, and a
// harness that regenerates every figure of the paper's evaluation
// through a parallel worker-pool run engine (internal/sim).
//
// Entry points:
//
//   - cmd/experiments regenerates the paper's figures (-parallel N
//     bounds the worker pool, -json FILE dumps raw run results,
//     -server URL runs against an ooosimd daemon).
//   - cmd/ooosimd serves simulation as a service: batch submission
//     over HTTP, a shared worker pool, and a content-addressed result
//     cache that answers previously computed points without
//     simulation (internal/service).
//   - cmd/ooosim runs a single configuration.
//   - examples/ holds runnable API walkthroughs.
//   - bench_test.go (this package) provides one benchmark per figure.
//
// See README.md for a quickstart, DESIGN.md for the modelling contract,
// and EXPERIMENTS.md for recorded paper-vs-measured results.
package repro
