package lsq

// storeIndex maps an effective address to its youngest resident store:
// a bounded open-addressed hash table replacing the map[uint64]*Entry
// that LookupForward probed on every issued load. Lookups are a linear
// probe over flat arrays, inserts and deletes allocate nothing once the
// table reaches its working size, and backward-shift deletion keeps
// probe chains dense without tombstones.
//
// Keys are stored biased by +1 so a zero slot means empty; address
// ^uint64(0) is therefore unrepresentable, which no generator emits.
//
// mem's mshr is this table's twin with an int64 value type; the two
// stay hand-specialised because lookups sit on the simulator's hottest
// paths and must inline. A fix to either table's probing or
// backward-shift deletion belongs in both.
type storeIndex struct {
	keys  []uint64 // addr+1; 0 marks an empty slot
	heads []*Entry
	n     int
	mask  uint64
	shift uint // 64 - log2(len(keys)), for Fibonacci hashing
}

const storeIndexMinSlots = 64

func (m *storeIndex) slot(key uint64) uint64 {
	return (key * 0x9e3779b97f4a7c15) >> m.shift
}

// get returns the youngest resident store at addr, or nil.
func (m *storeIndex) get(addr uint64) *Entry {
	if m.n == 0 {
		return nil
	}
	key := addr + 1
	for i := m.slot(key); ; i = (i + 1) & m.mask {
		switch m.keys[i] {
		case key:
			return m.heads[i]
		case 0:
			return nil
		}
	}
}

// put installs e as the chain head for addr (inserting or replacing).
func (m *storeIndex) put(addr uint64, e *Entry) {
	if 4*(m.n+1) > 3*len(m.keys) {
		m.grow()
	}
	key := addr + 1
	for i := m.slot(key); ; i = (i + 1) & m.mask {
		switch m.keys[i] {
		case 0:
			m.keys[i] = key
			m.heads[i] = e
			m.n++
			return
		case key:
			m.heads[i] = e
			return
		}
	}
}

// del removes addr's chain head (a no-op if absent) with backward-shift
// deletion.
func (m *storeIndex) del(addr uint64) {
	if m.n == 0 {
		return
	}
	key := addr + 1
	i := m.slot(key)
	for m.keys[i] != key {
		if m.keys[i] == 0 {
			return
		}
		i = (i + 1) & m.mask
	}
	m.n--
	for j := i; ; {
		j = (j + 1) & m.mask
		k := m.keys[j]
		if k == 0 {
			break
		}
		// k may slide back into slot i only if i still lies within its
		// probe chain (between its home slot and j, cyclically).
		if (j-m.slot(k))&m.mask >= (j-i)&m.mask {
			m.keys[i] = k
			m.heads[i] = m.heads[j]
			i = j
		}
	}
	m.keys[i] = 0
	m.heads[i] = nil
}

// grow (re)builds the table at double capacity.
func (m *storeIndex) grow() {
	size := storeIndexMinSlots
	if len(m.keys) > 0 {
		size = 2 * len(m.keys)
	}
	oldKeys, oldHeads := m.keys, m.heads
	m.keys = make([]uint64, size)
	m.heads = make([]*Entry, size)
	m.mask = uint64(size - 1)
	m.shift = 64 - uint(log2(size))
	m.n = 0
	for i, k := range oldKeys {
		if k != 0 {
			m.put(k-1, oldHeads[i])
		}
	}
}

// forEach visits every chain head (iteration order is arbitrary;
// CheckInvariants is the only caller).
func (m *storeIndex) forEach(fn func(addr uint64, head *Entry)) {
	for i, k := range m.keys {
		if k != 0 {
			fn(k-1, m.heads[i])
		}
	}
}

func log2(v int) uint {
	n := uint(0)
	for 1<<n < v {
		n++
	}
	return n
}
