// Package queue implements the instruction-buffering structures of the
// simulated processor: the general-purpose issue queues (with
// event-driven wakeup and oldest-first select), a generic deque used for
// the pseudo-ROB, and the Slow Lane Instruction Queue (SLIQ) of the
// paper's section 3.
//
// The issue queue and the SLIQ are on the simulator's innermost loop
// (one insert per dispatched instruction, one wake per produced value),
// so both are allocation-free in steady state: IQ entries are intrusive
// — the pipeline embeds IQEntry in its own instruction record and queue
// residence costs nothing — and SLIQ entries recycle through an internal
// free list. Both replace the former container/heap + `any` payloads
// with typed min-heaps.
package queue

import "fmt"

// IQEntry is one instruction's issue-queue residence state. The pipeline
// embeds it in its per-instruction record (intrusive design) and passes
// a pointer to the embedded entry to Insert; entering and leaving the
// queue therefore allocates nothing. Payload points back at the owning
// record; all other fields are managed by the queue.
type IQEntry[P any] struct {
	// Seq is the dynamic sequence number, used for oldest-first select.
	Seq uint64
	// Payload is the typed handle back to the pipeline's record.
	Payload P

	pending  int32 // unready source operands
	heapIdx  int32 // index in the ready heap, or -1
	resident bool
	q        *IQ[P]
}

// Pending returns the number of source operands still awaited.
func (e *IQEntry[P]) Pending() int { return int(e.pending) }

// Ready reports whether the entry is in the ready set.
func (e *IQEntry[P]) Ready() bool { return e.resident && e.pending == 0 }

// Resident reports whether the entry currently occupies a queue slot.
func (e *IQEntry[P]) Resident() bool { return e.resident }

// IQ is a fixed-capacity issue queue. Entries wait until their pending
// source count reaches zero, then become selectable oldest-first.
// Select bandwidth and functional-unit availability are enforced by the
// caller (the pipeline's issue stage).
type IQ[P any] struct {
	capacity int
	occupied int
	ready    []readyItem[P] // 4-ary min-heap by seq
	// fifo is the fast lane of the ready set: entries whose seq extends
	// the lane's monotone order (the common case — instructions ready
	// at dispatch arrive in program order) enqueue and pop in O(1),
	// bypassing the heap entirely. The selectable minimum is the
	// smaller of the two lanes' fronts, so select order is unchanged.
	// Removal marks lane items stale in place (seq mismatch or a
	// non-lane heapIdx); pops skip them.
	fifo     []readyItem[P]
	fifoHead int
	stats    IQStats
}

// fifoLane marks (in IQEntry.heapIdx) residence in the ready FIFO lane.
const fifoLane int32 = -2

// readyItem pairs an entry with a copy of its sequence number so the
// heap's comparisons walk the flat heap array instead of dereferencing
// every candidate entry (the pointer chase dominated sift-down).
type readyItem[P any] struct {
	seq uint64
	e   *IQEntry[P]
}

// IQStats counts queue activity.
type IQStats struct {
	Inserted uint64
	Issued   uint64
	Removed  uint64
	// FullStalls counts rejected insertions.
	FullStalls uint64
}

// NewIQ builds an issue queue with the given capacity.
func NewIQ[P any](capacity int) *IQ[P] {
	if capacity < 1 {
		panic(fmt.Sprintf("queue: IQ capacity %d < 1", capacity))
	}
	return &IQ[P]{capacity: capacity}
}

// Cap returns the queue capacity.
func (q *IQ[P]) Cap() int { return q.capacity }

// Len returns the number of resident entries.
func (q *IQ[P]) Len() int { return q.occupied }

// Free returns the number of available entries.
func (q *IQ[P]) Free() int { return q.capacity - q.occupied }

// Full reports whether the queue has no free entry.
func (q *IQ[P]) Full() bool { return q.occupied >= q.capacity }

// ReadyCount returns the number of selectable entries.
func (q *IQ[P]) ReadyCount() int {
	n := len(q.ready)
	for _, it := range q.fifo[q.fifoHead:] {
		if it.e.heapIdx == fifoLane && it.e.Seq == it.seq {
			n++
		}
	}
	return n
}

// readyPush enters e into the ready set: the FIFO lane when its seq
// extends the lane's order, the heap otherwise (SLIQ re-insertions and
// issue retries arrive out of order).
func (q *IQ[P]) readyPush(e *IQEntry[P]) {
	if n := len(q.fifo); n == q.fifoHead || e.Seq > q.fifo[n-1].seq {
		if q.fifoHead == len(q.fifo) && q.fifoHead > 0 {
			q.fifo = q.fifo[:0]
			q.fifoHead = 0
		}
		e.heapIdx = fifoLane
		q.fifo = append(q.fifo, readyItem[P]{seq: e.Seq, e: e})
		return
	}
	q.heapPush(e)
}

// fifoFront returns the lane's live front, skipping stale items.
func (q *IQ[P]) fifoFront() *readyItem[P] {
	for q.fifoHead < len(q.fifo) {
		it := &q.fifo[q.fifoHead]
		if it.e.heapIdx == fifoLane && it.e.Seq == it.seq {
			return it
		}
		q.fifo[q.fifoHead] = readyItem[P]{}
		q.fifoHead++
	}
	if q.fifoHead > 0 {
		q.fifo = q.fifo[:0]
		q.fifoHead = 0
	}
	return nil
}

// Insert adds an instruction with the given number of not-yet-ready
// sources. e is the caller-owned (typically embedded) entry; it must not
// be resident. Insert returns false when the queue is full.
func (q *IQ[P]) Insert(e *IQEntry[P], seq uint64, pendingSources int) bool {
	if q.Full() {
		q.stats.FullStalls++
		return false
	}
	if pendingSources < 0 {
		panic(fmt.Sprintf("queue: negative pending count %d", pendingSources))
	}
	if e.resident {
		panic(fmt.Sprintf("queue: double insert of seq %d", e.Seq))
	}
	e.Seq = seq
	e.pending = int32(pendingSources)
	e.heapIdx = -1
	e.resident = true
	e.q = q
	q.occupied++
	q.stats.Inserted++
	if e.pending == 0 {
		q.readyPush(e)
	}
	return true
}

// Wake signals that one of e's source operands became ready. When the
// last source arrives the entry joins the ready set.
func (q *IQ[P]) Wake(e *IQEntry[P]) {
	if !e.resident || e.q != q {
		panic("queue: Wake on non-resident entry")
	}
	if e.pending <= 0 {
		panic(fmt.Sprintf("queue: wake underflow on seq %d", e.Seq))
	}
	e.pending--
	if e.pending == 0 {
		q.heapPush(e)
	}
}

// PopReady removes and returns the oldest ready entry, or nil when no
// entry is selectable. The entry leaves the queue (its slot is freed);
// the caller has committed to issuing it.
func (q *IQ[P]) PopReady() *IQEntry[P] {
	var e *IQEntry[P]
	f := q.fifoFront()
	switch {
	case f == nil && len(q.ready) == 0:
		return nil
	case f == nil || (len(q.ready) > 0 && q.ready[0].seq < f.seq):
		e = q.heapPop()
	default:
		e = f.e
		q.fifo[q.fifoHead] = readyItem[P]{}
		q.fifoHead++
		e.heapIdx = -1
	}
	e.resident = false
	q.occupied--
	q.stats.Issued++
	return e
}

// PeekReady returns the oldest ready entry without removing it.
func (q *IQ[P]) PeekReady() *IQEntry[P] {
	f := q.fifoFront()
	switch {
	case f == nil && len(q.ready) == 0:
		return nil
	case f == nil || (len(q.ready) > 0 && q.ready[0].seq < f.seq):
		return q.ready[0].e
	default:
		return f.e
	}
}

// Unissue reinserts an entry popped by PopReady back into the ready set,
// used when issue fails on a structural hazard (all functional units
// busy) and the instruction must retry next cycle.
func (q *IQ[P]) Unissue(e *IQEntry[P]) {
	if e.resident {
		panic("queue: Unissue of resident entry")
	}
	e.resident = true
	q.occupied++
	q.stats.Issued--
	q.heapPush(e)
}

// Remove deletes a resident entry regardless of readiness (squash, or a
// move to the SLIQ). It is a no-op for entries already gone.
func (q *IQ[P]) Remove(e *IQEntry[P]) {
	if !e.resident || e.q != q {
		return
	}
	if e.heapIdx >= 0 {
		q.heapRemove(int(e.heapIdx))
	} else if e.heapIdx == fifoLane {
		e.heapIdx = -1 // the stale lane item is skipped at pop time
	}
	e.resident = false
	q.occupied--
	q.stats.Removed++
}

// Resident reports whether e currently occupies a slot of this queue.
func (q *IQ[P]) Resident(e *IQEntry[P]) bool { return e != nil && e.resident && e.q == q }

// Stats returns a copy of the counters.
func (q *IQ[P]) Stats() IQStats { return q.stats }

// The ready set is a hand-rolled 4-ary min-heap over Seq: a typed
// sibling of container/heap without the interface dispatch and `any`
// boxing that dominated the issue stage's profile. The 4-ary layout
// halves the levels a pop's sift-down walks (the hot operation — one
// per issued instruction) and keeps each level's children in one cache
// line of pointers; pop order is the strict Seq minimum either way, so
// the arity is invisible to simulated state.

func (q *IQ[P]) heapPush(e *IQEntry[P]) {
	e.heapIdx = int32(len(q.ready))
	q.ready = append(q.ready, readyItem[P]{seq: e.Seq, e: e})
	q.heapUp(len(q.ready) - 1)
}

func (q *IQ[P]) heapPop() *IQEntry[P] {
	h := q.ready
	e := h[0].e
	last := len(h) - 1
	h[0] = h[last]
	h[0].e.heapIdx = 0
	h[last] = readyItem[P]{}
	q.ready = h[:last]
	if last > 0 {
		q.heapDown(0)
	}
	e.heapIdx = -1
	return e
}

func (q *IQ[P]) heapRemove(i int) {
	h := q.ready
	last := len(h) - 1
	e := h[i].e
	if i != last {
		h[i] = h[last]
		h[i].e.heapIdx = int32(i)
	}
	h[last] = readyItem[P]{}
	q.ready = h[:last]
	if i < last {
		q.heapDown(i)
		q.heapUp(i)
	}
	e.heapIdx = -1
}

func (q *IQ[P]) heapUp(i int) {
	h := q.ready
	for i > 0 {
		parent := (i - 1) / 4
		if h[parent].seq <= h[i].seq {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		h[parent].e.heapIdx = int32(parent)
		h[i].e.heapIdx = int32(i)
		i = parent
	}
}

func (q *IQ[P]) heapDown(i int) {
	h := q.ready
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		min := first
		minSeq := h[first].seq
		for c := first + 1; c < last; c++ {
			if h[c].seq < minSeq {
				min, minSeq = c, h[c].seq
			}
		}
		if h[i].seq <= minSeq {
			break
		}
		h[i], h[min] = h[min], h[i]
		h[i].e.heapIdx = int32(i)
		h[min].e.heapIdx = int32(min)
		i = min
	}
}
