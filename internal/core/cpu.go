package core

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/fu"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/mem"
	"repro/internal/queue"
	"repro/internal/rename"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vreg"
)

// consumerRef is one wakeup registration: a waiting instruction plus the
// Seq it had when it registered. Records recycle (see DynInst), so the
// Seq is re-checked at wake time — a mismatch means the slot was reused
// by a younger instruction and the registration is stale.
type consumerRef struct {
	d   *DynInst
	seq uint64
}

// CPU is one simulated processor instance bound to a workload trace.
// Construct with New; drive with Run. A CPU is single-use per Run — the
// harness builds a fresh CPU per configuration point.
type CPU struct {
	cfg  config.Config
	tr   *trace.Trace
	hier *mem.Hierarchy
	pred branch.Predictor
	fus  *fu.Pool
	rt   *rename.Table
	intQ *queue.IQ[*DynInst]
	fpQ  *queue.IQ[*DynInst]
	lq   *lsq.LSQ

	// policy is the retirement engine selected by cfg.Commit; it owns
	// the commit-side structures (ROB, checkpoint table, pseudo-ROB,
	// oracle window) behind the CommitPolicy seam.
	policy CommitPolicy

	// sliq is the slow lane of the issue-queue hierarchy: built by the
	// checkpoint-family policies, nil elsewhere. It stays on the CPU
	// because the shared wakeup paths (writeback, squash, drain) thread
	// through it.
	sliq *queue.SLIQ[*DynInst]

	// pool recycles DynInst records (see the contract on DynInst). It
	// points into the caller's Arena when one was supplied (records then
	// survive across the sweep points a worker runs), or at a private
	// pool otherwise.
	pool *instPool

	// Virtual-register extension (Figure 14); nil when disabled.
	vt           *vreg.Tracker
	deferredBind []*DynInst
	// archReleased makes the release of each logical register's
	// architectural initial value idempotent across rollback replays.
	archReleased [isa.NumLogical]bool

	// Time and fetch state.
	now           int64
	fetchPos      int64
	nextSeq       uint64
	fetchResumeAt int64
	divergedAt    *DynInst // unresolved mispredicted branch (wrong path active)
	wpCounter     uint64
	lastLoadAddr  uint64

	// Scoreboard.
	regReady  []bool
	longTaint []bool
	consumers [][]consumerRef
	producer  []*DynInst

	completions eventWheel

	// Exception injection, indexed by trace position (lazily allocated
	// on the first InjectExceptionAt — the hot path then skips it with
	// one nil check instead of the former per-dispatch map lookups):
	// 1 = armed, raises on completion; 2 = replay, checkpoint and
	// deliver precisely.
	exceptArm  []uint8
	exceptions uint64
	// knownBranch marks trace positions of branches whose misprediction
	// caused a checkpoint rollback; on replay their resolved direction
	// is known to the recovery hardware. Lazily allocated on the first
	// rollback (ROB mode never pays for it).
	knownBranch []bool

	// Counters.
	inflight          int
	liveFPLong        int
	liveFPShort       int
	sumInflight       uint64
	maxInflight       int
	committed         uint64
	fetched           uint64
	dispatched        uint64
	issued            uint64
	replayed          uint64
	rollbacks         uint64
	probRecoveries    uint64
	ckptStallCycles   uint64
	renameStallCycles uint64
	retire            stats.Breakdown
	occ               *stats.Occupancy
	stalls            dispatchStalls

	portsUsed int // data-cache ports consumed this cycle
	// resourceStalled marks a dispatch rejection on a resource that
	// only recycles at checkpoint commit (registers, tags, LSQ); the
	// front end then takes an emergency checkpoint to close the window
	// (deadlock avoidance, see dispatchStage).
	resourceStalled bool

	// issueRetry is the issue stage's scratch list of entries popped
	// but not issued this cycle (structural hazards); kept on the CPU
	// so the per-cycle loop never allocates it.
	issueRetry []*queue.IQEntry[*DynInst]
	// sliqAccept is the bound SLIQ drain callback, built once so the
	// per-cycle drain doesn't allocate a closure.
	sliqAccept func(seq uint64, d *DynInst) bool

	lastCommitCycle int64
}

// dispatchStalls breaks down why dispatch groups ended early (counted
// per rejected instruction attempt).
type dispatchStalls struct {
	ROB, IQ, LSQ, Rename, Ckpt, VTag uint64
	FetchGate                        uint64 // cycles the front end was redirected/stalled
}

// New builds a CPU for the given configuration and workload, warming
// its memory hierarchy by replaying the trace's warm-up footprint.
func New(cfg config.Config, tr *trace.Trace) (*CPU, error) {
	return newCPU(cfg, tr, nil, nil)
}

// NewForked builds a CPU whose memory hierarchy starts from donor's
// warmed cache contents instead of replaying the trace's warm-up
// footprint: the fork half of the snapshot-fork sweep kernel. The donor
// must have been produced by WarmDonor (or equivalent warm-up replay)
// over the same trace and a configuration with the same mem.WarmKey;
// forked and cold-started CPUs are then bit-identical (pinned by
// TestForkedWarmMatchesCold). The donor itself is only read — one donor
// serves any number of concurrent forks. arena, when non-nil, supplies
// the CPU's record pool (see Arena); nil uses a private pool.
func NewForked(cfg config.Config, tr *trace.Trace, donor *mem.Hierarchy, arena *Arena) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hier, err := donor.Fork(cfg)
	if err != nil {
		return nil, err
	}
	return newCPU(cfg, tr, hier, arena)
}

// Arena owns a DynInst record pool that outlives a single CPU: a sweep
// worker hands the same Arena to every point it runs, so the record
// blocks grown for one point serve every later one instead of being
// re-allocated per point (construction churn was a visible slice of the
// sweep's profile). Records are zeroed on recycle, so nothing of a
// finished CPU leaks into — or stays pinned by — the next. An Arena is
// single-owner: never share one across concurrently running CPUs.
type Arena struct {
	pool    instPool
	chassis map[chassisKey]*chassis
}

// NewArena returns an empty record arena.
func NewArena() *Arena { return &Arena{} }

// chassis is a CPU's recyclable allocation skeleton: the scoreboard
// arrays and the completion wheel, whose per-point construction (and
// collection) was a measurable slice of sweep time. Recycle parks a
// finished CPU's skeleton in the Arena; newCPU adopts a parked one of
// the same shape and resets it.
type chassis struct {
	regReady   []bool
	longTaint  []bool
	consumers  [][]consumerRef
	producer   []*DynInst
	wheel      eventWheel
	issueRetry []*queue.IQEntry[*DynInst]
}

// chassisKey is the shape a chassis fits: the physical register space
// and the event ring size.
type chassisKey struct {
	phys, wheelSlots int
}

// takeChassis removes and resets a parked chassis of the given shape,
// or returns nil.
func (a *Arena) takeChassis(phys, wheelSlots int) *chassis {
	ch, ok := a.chassis[chassisKey{phys, wheelSlots}]
	if !ok {
		return nil
	}
	delete(a.chassis, chassisKey{phys, wheelSlots})
	clear(ch.regReady)
	clear(ch.longTaint)
	clear(ch.producer)
	for i := range ch.consumers {
		// Keep the grown backing arrays — re-registering consumers is
		// exactly what the next point will do. Stale refs beyond the
		// truncation point only reference pool-owned records.
		ch.consumers[i] = ch.consumers[i][:0]
	}
	ch.wheel.recycle()
	ch.issueRetry = ch.issueRetry[:0]
	return ch
}

// Recycle parks the CPU's allocation skeleton in the arena for the next
// point of the same shape. The CPU must not be used afterwards; callers
// that still need results must collect them first. No-op for nil arenas
// and virtual-register CPUs (their skeletons are shaped differently and
// their records are unpooled).
func (c *CPU) Recycle(a *Arena) {
	if a == nil || c.vt != nil {
		return
	}
	if a.chassis == nil {
		a.chassis = map[chassisKey]*chassis{}
	}
	key := chassisKey{len(c.regReady), len(c.completions.buckets)}
	a.chassis[key] = &chassis{
		regReady:   c.regReady,
		longTaint:  c.longTaint,
		consumers:  c.consumers,
		producer:   c.producer,
		wheel:      c.completions,
		issueRetry: c.issueRetry,
	}
	c.regReady, c.longTaint, c.consumers, c.producer = nil, nil, nil, nil
	c.completions = eventWheel{}
	c.issueRetry = nil
}

// WarmDonor builds a donor hierarchy for key and replays tr's warm-up
// footprint through it — exactly the warm state New gives a cold CPU of
// any configuration whose mem.WarmKeyFor matches key. Sweep engines
// call it once per (trace, warm shape) group and fork the result to
// every member point, so a sweep warms each trace once per cache
// geometry instead of once per point.
func WarmDonor(key mem.WarmKey, tr *trace.Trace) (*mem.Hierarchy, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	h, err := key.Donor()
	if err != nil {
		return nil, err
	}
	warmHierarchy(h, tr)
	return h, nil
}

// warmHierarchy replays the trace's cache warm-up footprint plus the
// wrong-path fetch region through h. Cold construction and donor
// warming share this exact sequence; determinism of the snapshot-fork
// kernel depends on it.
func warmHierarchy(h *mem.Hierarchy, tr *trace.Trace) {
	// Warm the instruction path and the data caches: cold misses are an
	// artefact of short runs (see mem.Hierarchy.PrimeFetch). The
	// footprint — first-seen IL1 lines interleaved with the data stream
	// — is precomputed once per trace and shared across every CPU built
	// over it (trace.WarmFootprint).
	for _, ev := range tr.WarmFootprint() {
		if ev.Fetch {
			h.PrimeFetch(ev.Addr)
		} else {
			h.WarmData(ev.Addr)
		}
	}
	for pc := uint64(0xF0000000); pc < 0xF0000000+64*4; pc += 32 {
		h.PrimeFetch(pc) // wrong-path region
	}
}

// newCPU builds the pipeline around hier; nil hier builds and warms a
// fresh hierarchy (the cold path). A non-nil hier is adopted as-is: the
// CPU takes sole ownership and mutates it for the rest of its life, so
// callers must hand each CPU its own Fork/Clone and never reuse it
// (the same single-owner contract as the pooled DynInst records).
func newCPU(cfg config.Config, tr *trace.Trace, hier *mem.Hierarchy, arena *Arena) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	if hier == nil {
		hier = mem.NewHierarchy(cfg)
		warmHierarchy(hier, tr)
	}

	physSpace := cfg.PhysRegs
	if cfg.VirtualRegisters {
		// In virtual-register mode real register pressure is enforced
		// by the vreg tracker; the rename table is only the simulator's
		// dependence-tracking namespace. Its entries recycle at
		// checkpoint commit (later than tag release), so size it far
		// beyond any reachable in-flight count.
		physSpace = 8192 + 2*cfg.VirtualTags
	}

	pool := &instPool{}
	if arena != nil && !cfg.VirtualRegisters {
		// Virtual-register mode disables pooling (see below); it must
		// not flip the shared arena's mode, so it keeps a private pool.
		pool = &arena.pool
	}
	c := &CPU{
		cfg:  cfg,
		tr:   tr,
		pool: pool,
		hier: hier,
		fus:  fu.NewPool(cfg),
		rt:   rename.New(physSpace),
		intQ: queue.NewIQ[*DynInst](cfg.IntQueueEntries),
		fpQ:  queue.NewIQ[*DynInst](cfg.FPQueueEntries),
		lq:   lsq.New(cfg.LSQEntries),
	}
	// Size the event ring to the longest schedulable completion distance
	// (a memory-missing load issued behind the slowest functional unit);
	// anything longer still works via the far-heap spillover.
	wheelSlots := eventWheelSlots(cfg.MemoryLatency + cfg.IL1.LatencyCycles +
		cfg.DL1.LatencyCycles + cfg.L2.LatencyCycles + cfg.IntDiv.Latency + 64)
	if arena != nil && !cfg.VirtualRegisters {
		if ch := arena.takeChassis(physSpace, wheelSlots); ch != nil {
			c.regReady, c.longTaint = ch.regReady, ch.longTaint
			c.consumers, c.producer = ch.consumers, ch.producer
			c.completions = ch.wheel
			c.issueRetry = ch.issueRetry
		}
	}
	if c.regReady == nil {
		c.regReady = make([]bool, physSpace)
		c.longTaint = make([]bool, physSpace)
		c.consumers = make([][]consumerRef, physSpace)
		c.producer = make([]*DynInst, physSpace)
		c.completions = newEventWheel(wheelSlots)
	}
	for l := 0; l < isa.NumLogical; l++ {
		c.regReady[c.rt.Lookup(isa.Reg(l))] = true
	}
	if cfg.PerfectBranchPrediction {
		c.pred = branch.NewPerfect()
	} else {
		c.pred = branch.NewGshare(cfg.BranchPredictorBits)
	}

	build, ok := commitPolicyFactories[cfg.Commit]
	if !ok {
		// Validate already guards this; a policy registered in config
		// but not in core is a wiring bug worth a clear error.
		return nil, fmt.Errorf("core: no commit policy registered for %q", cfg.Commit)
	}
	c.policy = build(c)
	if cfg.VirtualRegisters {
		c.vt = vreg.New(cfg.VirtualTags, cfg.PhysRegs, isa.NumLogical)
		// prevProd links outlive commit in this mode; records must not
		// recycle (see DynInst).
		c.pool.disabled = true
	}
	c.lastLoadAddr = 1 << 20
	if c.sliq != nil {
		c.sliqAccept = c.acceptFromSLIQ
	}
	return c, nil
}

// RunOptions bounds a simulation.
type RunOptions struct {
	// MaxInsts stops the run after committing this many instructions
	// (0 means the full trace).
	MaxInsts uint64
	// MaxCycles is a hard cycle bound (0 means 100M).
	MaxCycles int64
	// CollectOccupancy enables the full occupancy distribution needed
	// by Figure 7 (slightly more memory; negligible time).
	CollectOccupancy bool
	// WatchdogCycles panics if no instruction commits for this many
	// cycles (0 means 2M); it exists to catch simulator deadlocks.
	WatchdogCycles int64
}

// InjectExceptionAt arms a precise exception at the given trace
// position: the instruction raises when it first completes, the
// processor rolls back to its checkpoint and re-executes with a
// checkpoint placed exactly before it (the paper's two-pass protocol).
// Checkpoint-family policies only (a no-op under rob and oracle, which
// model no replay mechanism); must be called before Run.
func (c *CPU) InjectExceptionAt(pos int64) {
	if c.exceptArm == nil {
		c.exceptArm = make([]uint8, c.tr.Len())
	}
	c.exceptArm[pos] = 1
}

// exceptPhase returns the exception protocol phase armed at pos (0 when
// none).
func (c *CPU) exceptPhase(pos int64) uint8 {
	if c.exceptArm == nil || pos < 0 {
		return 0
	}
	return c.exceptArm[pos]
}

// branchKnown reports whether the branch at pos replays with a known
// resolution after a checkpoint rollback.
func (c *CPU) branchKnown(pos int64) bool {
	return c.knownBranch != nil && c.knownBranch[pos]
}

// markBranchKnown records a rollback-resolved branch position.
func (c *CPU) markBranchKnown(pos int64) {
	if c.knownBranch == nil {
		c.knownBranch = make([]bool, c.tr.Len())
	}
	c.knownBranch[pos] = true
}

// Exceptions returns the number of precisely delivered exceptions.
func (c *CPU) Exceptions() uint64 { return c.exceptions }

// Run simulates until the instruction target, trace exhaustion, or the
// cycle bound, and returns the collected results.
func (c *CPU) Run(opt RunOptions) stats.Results {
	target := opt.MaxInsts
	if target == 0 || target > uint64(c.tr.Len()) {
		target = uint64(c.tr.Len())
	}
	maxCycles := opt.MaxCycles
	if maxCycles == 0 {
		maxCycles = 100_000_000
	}
	watchdog := opt.WatchdogCycles
	if watchdog == 0 {
		watchdog = 2_000_000
	}
	if opt.CollectOccupancy {
		bound := c.policy.OccupancyBound()
		if bound < 1 {
			bound = 1
		}
		c.occ = stats.NewOccupancy(bound)
	}

	for c.committed < target && c.now < maxCycles {
		c.portsUsed = 0
		c.policy.Commit()
		c.writebackStage()
		c.issueStage()
		c.dispatchStage()

		c.sumInflight += uint64(c.inflight)
		if c.inflight > c.maxInflight {
			c.maxInflight = c.inflight
		}
		if c.occ != nil {
			c.occ.Sample(c.inflight, c.liveFPLong, c.liveFPShort)
		}
		c.now++

		if c.committed > 0 || c.inflight > 0 {
			if c.now-c.lastCommitCycle > watchdog {
				panic(fmt.Sprintf("core: no commit progress for %d cycles at cycle %d (%s)",
					watchdog, c.now, c.debugState()))
			}
		}
		if c.fetchExhausted() && c.inflight == 0 && c.completions.Len() == 0 {
			break
		}
	}
	return c.results()
}

// fetchExhausted reports that no further correct-path instruction can be
// fetched.
func (c *CPU) fetchExhausted() bool {
	return c.divergedAt == nil && c.fetchPos >= c.tr.Len()
}

// iqFor returns the instruction queue for an operation class: FP
// arithmetic uses the floating-point queue, everything else (including
// memory and control) the integer queue, as in the paper.
func (c *CPU) iqFor(op isa.Op) *queue.IQ[*DynInst] {
	if op == isa.FPAlu {
		return c.fpQ
	}
	return c.intQ
}

// results assembles the run's statistics.
func (c *CPU) results() stats.Results {
	r := stats.Results{
		Name:                fmt.Sprintf("%s/%s", c.cfg.Commit, c.tr.Name()),
		Cycles:              c.now,
		Committed:           c.committed,
		Fetched:             c.fetched,
		Dispatched:          c.dispatched,
		Issued:              c.issued,
		Replayed:            c.replayed,
		Rollbacks:           c.rollbacks,
		PseudoROBRecoveries: c.probRecoveries,
		Branch:              c.pred.Stats(),
		Mem:                 c.hier.Stats(),
		Retire:              c.retire,
		MaxInflight:         c.maxInflight,
		Occ:                 c.occ,
	}
	if c.now > 0 {
		r.MeanInflight = float64(c.sumInflight) / float64(c.now)
	}
	c.policy.AddStats(&r)
	if c.sliq != nil {
		ss := c.sliq.Stats()
		r.SLIQMoved = ss.Inserted
		r.SLIQWoken = ss.Woken
	}
	return r
}

// debugState renders a short pipeline summary for watchdog panics.
func (c *CPU) debugState() string {
	s := fmt.Sprintf("committed=%d inflight=%d fetchPos=%d intQ=%d/%d fpQ=%d/%d lsq=%d completions=%d",
		c.committed, c.inflight, c.fetchPos,
		c.intQ.Len(), c.intQ.Cap(), c.fpQ.Len(), c.fpQ.Cap(), c.lq.Len(), c.completions.Len())
	s += c.policy.DebugState()
	if c.divergedAt != nil {
		s += fmt.Sprintf(" diverged@%d", c.divergedAt.Seq)
	}
	return s
}
