package core

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/fu"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/mem"
	"repro/internal/queue"
	"repro/internal/rename"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vreg"
)

// consumerRef is one wakeup registration: a waiting instruction plus the
// Seq it had when it registered. Records recycle (see DynInst), so the
// Seq is re-checked at wake time — a mismatch means the slot was reused
// by a younger instruction and the registration is stale.
type consumerRef struct {
	d   *DynInst
	seq uint64
}

// CPU is one simulated processor instance bound to a workload trace.
// Construct with New; drive with Run. A CPU is single-use per Run — the
// harness builds a fresh CPU per configuration point.
type CPU struct {
	cfg  config.Config
	tr   *trace.Trace
	hier *mem.Hierarchy
	pred branch.Predictor
	fus  *fu.Pool
	rt   *rename.Table
	intQ *queue.IQ[*DynInst]
	fpQ  *queue.IQ[*DynInst]
	lq   *lsq.LSQ

	// policy is the retirement engine selected by cfg.Commit; it owns
	// the commit-side structures (ROB, checkpoint table, pseudo-ROB,
	// oracle window) behind the CommitPolicy seam.
	policy CommitPolicy

	// sliq is the slow lane of the issue-queue hierarchy: built by the
	// checkpoint-family policies, nil elsewhere. It stays on the CPU
	// because the shared wakeup paths (writeback, squash, drain) thread
	// through it.
	sliq *queue.SLIQ[*DynInst]

	// pool recycles DynInst records (see the contract on DynInst). It
	// points into the caller's Arena when one was supplied (records then
	// survive across the sweep points a worker runs), or at a private
	// pool otherwise.
	pool *instPool

	// Virtual-register extension (Figure 14); nil when disabled.
	vt           *vreg.Tracker
	deferredBind []*DynInst
	// archReleased makes the release of each logical register's
	// architectural initial value idempotent across rollback replays.
	archReleased [isa.NumLogical]bool

	// Program-backed workloads: code is the trace's static image (nil
	// for synthetic kernels) and btb the branch-target buffer keyed by
	// real fetch PCs (nil under perfect prediction, which needs no
	// target prediction). wpStart/wpBase locate the wrong-path fetch
	// stream inside the image: the static index fetch diverged to, and
	// the wpCounter value at divergence (see nextWrongPathInst).
	code    trace.StaticCode
	btb     *branch.BTB
	wpStart int
	wpBase  uint64

	// sampleConf is the persistent JRS confidence estimator a sampled
	// run's windows share (nil outside sampled runs); the adaptive
	// commit policy adopts it instead of building a fresh one, so
	// confidence training survives across windows like the predictor.
	sampleConf *branch.Confidence

	// Time and fetch state.
	now           int64
	fetchPos      int64
	nextSeq       uint64
	fetchResumeAt int64
	divergedAt    *DynInst // unresolved mispredicted branch (wrong path active)
	wpCounter     uint64
	lastLoadAddr  uint64

	// Scoreboard.
	regReady  []bool
	longTaint []bool
	consumers [][]consumerRef
	producer  []*DynInst

	completions eventWheel

	// Exception injection, indexed by trace position (lazily allocated
	// on the first InjectExceptionAt — the hot path then skips it with
	// one nil check instead of the former per-dispatch map lookups):
	// 1 = armed, raises on completion; 2 = replay, checkpoint and
	// deliver precisely.
	exceptArm  []uint8
	exceptions uint64
	// knownBranch marks trace positions of branches whose misprediction
	// caused a checkpoint rollback; on replay their resolved direction
	// is known to the recovery hardware. Lazily allocated on the first
	// rollback (ROB mode never pays for it).
	knownBranch []bool

	// Counters.
	inflight          int
	liveFPLong        int
	liveFPShort       int
	sumInflight       uint64
	maxInflight       int
	committed         uint64
	fetched           uint64
	dispatched        uint64
	issued            uint64
	replayed          uint64
	rollbacks         uint64
	probRecoveries    uint64
	ckptStallCycles   uint64
	renameStallCycles uint64
	retire            stats.Breakdown
	occ               *stats.Occupancy
	stalls            dispatchStalls
	// policyActivity counts commit-policy state changes that move no
	// other CPU counter (today: checkpoint takes). The clock skip's
	// quiescence probe watches it so two outwardly identical stall
	// cycles with different policy state can never be conflated.
	policyActivity uint64

	portsUsed int // data-cache ports consumed this cycle
	// resourceStalled marks a dispatch rejection on a resource that
	// only recycles at checkpoint commit (registers, tags, LSQ); the
	// front end then takes an emergency checkpoint to close the window
	// (deadlock avoidance, see dispatchStage).
	resourceStalled bool

	// issueRetry is the issue stage's scratch list of entries popped
	// but not issued this cycle (structural hazards); kept on the CPU
	// so the per-cycle loop never allocates it.
	issueRetry []*queue.IQEntry[*DynInst]
	// sliqAccept is the bound SLIQ drain callback, built once so the
	// per-cycle drain doesn't allocate a closure.
	sliqAccept func(seq uint64, d *DynInst) bool

	lastCommitCycle int64

	// Event-driven clock skip (see maybeSkip): the arm-probe state plus
	// the counters reported in stats.Results. The skip is a pure
	// simulator-speed optimisation — every simulated statistic is
	// bit-identical with it disabled (pinned by the skip equivalence
	// tests and TestFigure9Golden).
	skipPrevSig   uint64
	skipArmed     bool
	skipSnap      skipSnap
	skippedCycles uint64
	skipEvents    uint64
	longestSkip   uint64
}

// skipSnap is the end-of-cycle snapshot behind the clock skip's
// arm-probe protocol: taken when a cycle ends with the activity
// signature unchanged, diffed at the next cycle's end — the diff is
// then exactly that one cycle's footprint.
type skipSnap struct {
	fetched, dispatched, issued, committed        uint64
	replayed, rollbacks, probRecoveries           uint64
	exceptions, policyActivity, nextSeq           uint64
	wpCounter, renameStallCycles, ckptStallCycles uint64
	inflight, liveFPLong, liveFPShort             int
	lastCommitCycle, fetchResumeAt, fetchPos      int64
	wheelLen                                      int
	retire                                        stats.Breakdown
	stalls                                        dispatchStalls
	sliq                                          queue.SLIQStats
	mem                                           mem.HierarchyStats
}

// dispatchStalls breaks down why dispatch groups ended early (counted
// per rejected instruction attempt).
type dispatchStalls struct {
	ROB, IQ, LSQ, Rename, Ckpt, VTag uint64
	FetchGate                        uint64 // cycles the front end was redirected/stalled
}

// New builds a CPU for the given configuration and workload, warming
// its memory hierarchy by replaying the trace's warm-up footprint.
func New(cfg config.Config, tr *trace.Trace) (*CPU, error) {
	return newCPU(cfg, tr, nil, nil, nil)
}

// NewForked builds a CPU whose memory hierarchy starts from donor's
// warmed cache contents instead of replaying the trace's warm-up
// footprint: the fork half of the snapshot-fork sweep kernel. The donor
// must have been produced by WarmDonor (or equivalent warm-up replay)
// over the same trace and a configuration with the same mem.WarmKey;
// forked and cold-started CPUs are then bit-identical (pinned by
// TestForkedWarmMatchesCold). The donor itself is only read — one donor
// serves any number of concurrent forks. arena, when non-nil, supplies
// the CPU's record pool (see Arena); nil uses a private pool.
func NewForked(cfg config.Config, tr *trace.Trace, donor *mem.Hierarchy, arena *Arena) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hier, err := donor.Fork(cfg)
	if err != nil {
		return nil, err
	}
	return newCPU(cfg, tr, hier, arena, nil)
}

// Arena owns a DynInst record pool that outlives a single CPU: a sweep
// worker hands the same Arena to every point it runs, so the record
// blocks grown for one point serve every later one instead of being
// re-allocated per point (construction churn was a visible slice of the
// sweep's profile). Records are zeroed on recycle, so nothing of a
// finished CPU leaks into — or stays pinned by — the next. An Arena is
// single-owner: never share one across concurrently running CPUs.
type Arena struct {
	pool    instPool
	chassis map[chassisKey]*chassis
}

// NewArena returns an empty record arena.
func NewArena() *Arena { return &Arena{} }

// chassis is a CPU's recyclable allocation skeleton: the scoreboard
// arrays and the completion wheel, whose per-point construction (and
// collection) was a measurable slice of sweep time. Recycle parks a
// finished CPU's skeleton in the Arena; newCPU adopts a parked one of
// the same shape and resets it.
type chassis struct {
	regReady   []bool
	longTaint  []bool
	consumers  [][]consumerRef
	producer   []*DynInst
	wheel      eventWheel
	issueRetry []*queue.IQEntry[*DynInst]
}

// chassisKey is the shape a chassis fits: the physical register space
// and the event ring size.
type chassisKey struct {
	phys, wheelSlots int
}

// takeChassis removes and resets a parked chassis of the given shape,
// or returns nil.
func (a *Arena) takeChassis(phys, wheelSlots int) *chassis {
	ch, ok := a.chassis[chassisKey{phys, wheelSlots}]
	if !ok {
		return nil
	}
	delete(a.chassis, chassisKey{phys, wheelSlots})
	clear(ch.regReady)
	clear(ch.longTaint)
	clear(ch.producer)
	for i := range ch.consumers {
		// Keep the grown backing arrays — re-registering consumers is
		// exactly what the next point will do. Stale refs beyond the
		// truncation point only reference pool-owned records.
		ch.consumers[i] = ch.consumers[i][:0]
	}
	ch.wheel.recycle()
	ch.issueRetry = ch.issueRetry[:0]
	return ch
}

// Recycle parks the CPU's allocation skeleton in the arena for the next
// point of the same shape. The CPU must not be used afterwards; callers
// that still need results must collect them first. No-op for nil arenas
// and virtual-register CPUs (their skeletons are shaped differently and
// their records are unpooled).
func (c *CPU) Recycle(a *Arena) {
	if a == nil || c.vt != nil {
		return
	}
	if a.chassis == nil {
		a.chassis = map[chassisKey]*chassis{}
	}
	key := chassisKey{len(c.regReady), len(c.completions.buckets)}
	a.chassis[key] = &chassis{
		regReady:   c.regReady,
		longTaint:  c.longTaint,
		consumers:  c.consumers,
		producer:   c.producer,
		wheel:      c.completions,
		issueRetry: c.issueRetry,
	}
	c.regReady, c.longTaint, c.consumers, c.producer = nil, nil, nil, nil
	c.completions = eventWheel{}
	c.issueRetry = nil
}

// WarmDonor builds a donor hierarchy for key and replays tr's warm-up
// footprint through it — exactly the warm state New gives a cold CPU of
// any configuration whose mem.WarmKeyFor matches key. Sweep engines
// call it once per (trace, warm shape) group and fork the result to
// every member point, so a sweep warms each trace once per cache
// geometry instead of once per point.
func WarmDonor(key mem.WarmKey, tr *trace.Trace) (*mem.Hierarchy, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	h, err := key.Donor()
	if err != nil {
		return nil, err
	}
	warmHierarchy(h, tr)
	return h, nil
}

// warmHierarchy replays the trace's cache warm-up footprint plus the
// wrong-path fetch region through h. Cold construction and donor
// warming share this exact sequence; determinism of the snapshot-fork
// kernel depends on it.
func warmHierarchy(h *mem.Hierarchy, tr *trace.Trace) {
	// Warm the instruction path and the data caches: cold misses are an
	// artefact of short runs (see mem.Hierarchy.PrimeFetch). The
	// footprint — first-seen IL1 lines interleaved with the data stream
	// — is precomputed once per trace and shared across every CPU built
	// over it (trace.WarmFootprint).
	for _, ev := range tr.WarmFootprint() {
		if ev.Fetch {
			h.PrimeFetch(ev.Addr)
		} else {
			h.WarmData(ev.Addr)
		}
	}
	for pc := uint64(0xF0000000); pc < 0xF0000000+64*4; pc += 32 {
		h.PrimeFetch(pc) // wrong-path region
	}
}

// newCPU builds the pipeline around hier; nil hier builds and warms a
// fresh hierarchy (the cold path). A non-nil hier is adopted as-is: the
// CPU takes sole ownership and mutates it for the rest of its life, so
// callers must hand each CPU its own Fork/Clone and never reuse it
// (the same single-owner contract as the pooled DynInst records) —
// except under adopt, where the sampled-run driver deliberately threads
// one long-lived substrate through a strictly sequential series of
// window CPUs. A non-nil adopt substitutes the persistent predictor,
// BTB and confidence estimator for freshly built ones (hier must then
// be adopt's hierarchy).
func newCPU(cfg config.Config, tr *trace.Trace, hier *mem.Hierarchy, arena *Arena, adopt *sampleState) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("core: empty trace")
	}
	if hier == nil {
		hier = mem.NewHierarchy(cfg)
		warmHierarchy(hier, tr)
	}

	physSpace := cfg.PhysRegs
	if cfg.VirtualRegisters {
		// In virtual-register mode real register pressure is enforced
		// by the vreg tracker; the rename table is only the simulator's
		// dependence-tracking namespace. Its entries recycle at
		// checkpoint commit (later than tag release), so size it far
		// beyond any reachable in-flight count.
		physSpace = 8192 + 2*cfg.VirtualTags
	}

	pool := &instPool{}
	if arena != nil && !cfg.VirtualRegisters {
		// Virtual-register mode disables pooling (see below); it must
		// not flip the shared arena's mode, so it keeps a private pool.
		pool = &arena.pool
	}
	c := &CPU{
		cfg:  cfg,
		tr:   tr,
		pool: pool,
		hier: hier,
		fus:  fu.NewPool(cfg),
		rt:   rename.New(physSpace),
		intQ: queue.NewIQ[*DynInst](cfg.IntQueueEntries),
		fpQ:  queue.NewIQ[*DynInst](cfg.FPQueueEntries),
		lq:   lsq.New(cfg.LSQEntries),
	}
	// Size the event ring to the longest schedulable completion distance
	// (a memory-missing load issued behind the slowest functional unit);
	// anything longer still works via the far-heap spillover.
	wheelSlots := eventWheelSlots(cfg.MemoryLatency + cfg.IL1.LatencyCycles +
		cfg.DL1.LatencyCycles + cfg.L2.LatencyCycles + cfg.IntDiv.Latency + 64)
	if arena != nil && !cfg.VirtualRegisters {
		if ch := arena.takeChassis(physSpace, wheelSlots); ch != nil {
			c.regReady, c.longTaint = ch.regReady, ch.longTaint
			c.consumers, c.producer = ch.consumers, ch.producer
			c.completions = ch.wheel
			c.issueRetry = ch.issueRetry
		}
	}
	if c.regReady == nil {
		c.regReady = make([]bool, physSpace)
		c.longTaint = make([]bool, physSpace)
		c.consumers = make([][]consumerRef, physSpace)
		c.producer = make([]*DynInst, physSpace)
		c.completions = newEventWheel(wheelSlots)
	}
	for l := 0; l < isa.NumLogical; l++ {
		c.regReady[c.rt.Lookup(isa.Reg(l))] = true
	}
	c.code = tr.Code()
	if adopt != nil {
		c.pred = adopt.pred
		c.btb = adopt.btb
		c.sampleConf = adopt.conf
	} else {
		if cfg.PerfectBranchPrediction {
			c.pred = branch.NewPerfect()
		} else {
			c.pred = branch.NewGshare(cfg.BranchPredictorBits)
		}
		if c.code != nil && !cfg.PerfectBranchPrediction {
			c.btb = branch.NewBTB(config.BTBSets, config.BTBWays)
		}
	}

	build, ok := commitPolicyFactories[cfg.Commit]
	if !ok {
		// Validate already guards this; a policy registered in config
		// but not in core is a wiring bug worth a clear error.
		return nil, fmt.Errorf("core: no commit policy registered for %q", cfg.Commit)
	}
	c.policy = build(c)
	if cfg.VirtualRegisters {
		c.vt = vreg.New(cfg.VirtualTags, cfg.PhysRegs, isa.NumLogical)
		// prevProd links outlive commit in this mode; records must not
		// recycle (see DynInst).
		c.pool.disabled = true
	}
	c.lastLoadAddr = 1 << 20
	if c.sliq != nil {
		c.sliqAccept = c.acceptFromSLIQ
	}
	return c, nil
}

// RunOptions bounds a simulation.
type RunOptions struct {
	// MaxInsts stops the run after committing this many instructions
	// (0 means the full trace).
	MaxInsts uint64
	// MaxCycles is a hard cycle bound (0 means 100M).
	MaxCycles int64
	// CollectOccupancy enables the full occupancy distribution needed
	// by Figure 7 (slightly more memory; negligible time).
	CollectOccupancy bool
	// WatchdogCycles panics if no instruction commits for this many
	// cycles (0 means 2M); it exists to catch simulator deadlocks.
	WatchdogCycles int64
	// DisableSkip forces cycle-by-cycle execution, switching off the
	// event-driven clock skip. Results are bit-identical either way —
	// the knob exists for A/B debugging when a future change is
	// suspected of breaking skip equivalence, and therefore never
	// enters result fingerprints.
	DisableSkip bool
}

// InjectExceptionAt arms a precise exception at the given trace
// position: the instruction raises when it first completes, the
// processor rolls back to its checkpoint and re-executes with a
// checkpoint placed exactly before it (the paper's two-pass protocol).
// Checkpoint-family policies only (a no-op under rob and oracle, which
// model no replay mechanism); must be called before Run.
func (c *CPU) InjectExceptionAt(pos int64) {
	if c.exceptArm == nil {
		c.exceptArm = make([]uint8, c.tr.Len())
	}
	c.exceptArm[pos] = 1
}

// exceptPhase returns the exception protocol phase armed at pos (0 when
// none).
func (c *CPU) exceptPhase(pos int64) uint8 {
	if c.exceptArm == nil || pos < 0 {
		return 0
	}
	return c.exceptArm[pos]
}

// branchResolved reports whether the branch at trace position pos
// (fetch PC pc) replays with a known resolution after a checkpoint
// rollback. Program-backed traces carry the resolution in the BTB entry
// of the branch's fetch PC, with the positional table as the fallback
// for resolutions the BTB has since displaced; synthetic traces (whose
// branches have no real PCs) use the positional table alone.
func (c *CPU) branchResolved(pos int64, pc uint64) bool {
	if pos < 0 {
		return false
	}
	if c.btb != nil && c.btb.ResolvedAt(pc) == pos {
		return true
	}
	return c.knownBranch != nil && c.knownBranch[pos]
}

// knownAt records a rollback-resolved branch position in the positional
// table.
func (c *CPU) knownAt(pos int64) {
	if pos < 0 {
		return
	}
	if c.knownBranch == nil {
		c.knownBranch = make([]bool, c.tr.Len())
	}
	c.knownBranch[pos] = true
}

// markBranchKnown records that b's resolution is carried by the
// recovery hardware, so its replay will not mispredict. Program traces
// record it in b's BTB entry; any resolution knowledge the install
// displaces (a same-PC re-resolution or a set eviction) drops to the
// positional table, keeping resolution knowledge monotone — the
// forward-progress guarantee against mispredict livelock.
func (c *CPU) markBranchKnown(b *DynInst) {
	if b.Pos < 0 {
		return
	}
	if c.btb != nil {
		if displaced, ok := c.btb.MarkResolved(b.Inst.PC, b.Pos, b.Inst.Target); ok {
			c.knownAt(displaced)
		}
		return
	}
	c.knownAt(b.Pos)
}

// Exceptions returns the number of precisely delivered exceptions.
func (c *CPU) Exceptions() uint64 { return c.exceptions }

// Run simulates until the instruction target, trace exhaustion, or the
// cycle bound, and returns the collected results.
func (c *CPU) Run(opt RunOptions) stats.Results {
	target := opt.MaxInsts
	if target == 0 || target > uint64(c.tr.Len()) {
		target = uint64(c.tr.Len())
	}
	maxCycles := opt.MaxCycles
	if maxCycles == 0 {
		maxCycles = 100_000_000
	}
	watchdog := opt.WatchdogCycles
	if watchdog == 0 {
		watchdog = 2_000_000
	}
	if opt.CollectOccupancy {
		bound := c.policy.OccupancyBound()
		if bound < 1 {
			bound = 1
		}
		c.occ = stats.NewOccupancy(bound)
	}
	skipEnabled := !opt.DisableSkip && c.vt == nil

	for c.committed < target && c.now < maxCycles {
		c.portsUsed = 0
		c.policy.Commit()
		c.writebackStage()
		c.issueStage()
		c.dispatchStage()

		c.sumInflight += uint64(c.inflight)
		if c.inflight > c.maxInflight {
			c.maxInflight = c.inflight
		}
		if c.occ != nil {
			c.occ.Sample(c.inflight, c.liveFPLong, c.liveFPShort)
		}
		c.now++

		if c.committed > 0 || c.inflight > 0 {
			if c.now-c.lastCommitCycle > watchdog {
				panic(fmt.Sprintf("core: no commit progress for %d cycles at cycle %d (%s)",
					watchdog, c.now, c.debugState()))
			}
		}
		if c.fetchExhausted() && c.inflight == 0 && c.completions.Len() == 0 {
			break
		}

		// Event-driven clock skip, evaluated after every loop-exit
		// condition so a jump can never mask one. Virtual-register mode
		// stays cycle-by-cycle (its deferred-bind machinery is outside
		// the quiescence probe's footprint).
		if skipEnabled {
			sig := c.progressSig()
			if c.skipArmed {
				c.maybeSkip(maxCycles, watchdog)
			}
			if sig == c.skipPrevSig {
				// Two consecutive cycle ends with the same signature:
				// snapshot, making the next cycle a quiescence probe.
				// (A jump lands here too — its signature is unchanged by
				// construction, so the event cycle is probed and
				// naturally disqualifies itself.)
				c.snapSkip()
				c.skipArmed = true
			} else {
				c.skipArmed = false
				c.skipPrevSig = sig
			}
		}
	}
	return c.results()
}

// progressSig summarises the cycle's visible progress in one cheap sum:
// every component moves when (and only when) the pipeline does
// something a quiescent cycle cannot. Equality across two cycle ends is
// only an arming heuristic — a coincidental collision merely takes a
// snapshot that the probe diff then rejects — so the sum needs no
// collision resistance, just sensitivity to real progress.
func (c *CPU) progressSig() uint64 {
	return c.fetched + c.dispatched + c.issued + c.committed +
		c.replayed + c.rollbacks + c.probRecoveries + c.exceptions +
		c.policyActivity + c.nextSeq + uint64(c.lastCommitCycle) +
		uint64(c.completions.Len()) + uint64(c.fetchPos)
}

// snapSkip records the end-of-cycle state the next cycle is diffed
// against (see skipSnap).
func (c *CPU) snapSkip() {
	s := &c.skipSnap
	s.fetched, s.dispatched, s.issued, s.committed = c.fetched, c.dispatched, c.issued, c.committed
	s.replayed, s.rollbacks, s.probRecoveries = c.replayed, c.rollbacks, c.probRecoveries
	s.exceptions, s.policyActivity, s.nextSeq = c.exceptions, c.policyActivity, c.nextSeq
	s.wpCounter, s.renameStallCycles, s.ckptStallCycles = c.wpCounter, c.renameStallCycles, c.ckptStallCycles
	s.inflight, s.liveFPLong, s.liveFPShort = c.inflight, c.liveFPLong, c.liveFPShort
	s.lastCommitCycle, s.fetchResumeAt, s.fetchPos = c.lastCommitCycle, c.fetchResumeAt, c.fetchPos
	s.wheelLen = c.completions.Len()
	s.retire = c.retire
	s.stalls = c.stalls
	if c.sliq != nil {
		s.sliq = c.sliq.Stats()
	}
	s.mem = c.hier.Stats()
}

// maybeSkip runs at the end of an armed cycle — the probe. The diff
// against the snapshot is the probe's exact footprint; if it shows a
// quiescent machine (no fetch, dispatch, issue, completion, retirement
// or recovery — only stall bookkeeping and at most one IL1 fetch
// re-probe), and every way the machine could wake is bounded by a known
// future event, the clock jumps to the earliest such event. The elided
// cycles would each have repeated the probe bit for bit, so replaying
// the probe's footprint once per elided cycle keeps every statistic —
// and the watchdog and MaxCycles semantics — identical to the
// cycle-by-cycle run.
func (c *CPU) maybeSkip(maxCycles, watchdog int64) {
	s := &c.skipSnap

	// Quiescence: the probe moved nothing that distinguishes it from
	// the cycles about to be elided.
	if c.fetched != s.fetched || c.dispatched != s.dispatched ||
		c.issued != s.issued || c.committed != s.committed ||
		c.replayed != s.replayed || c.rollbacks != s.rollbacks ||
		c.probRecoveries != s.probRecoveries || c.exceptions != s.exceptions ||
		c.policyActivity != s.policyActivity || c.nextSeq != s.nextSeq ||
		c.inflight != s.inflight || c.liveFPLong != s.liveFPLong ||
		c.liveFPShort != s.liveFPShort || c.lastCommitCycle != s.lastCommitCycle ||
		c.fetchResumeAt != s.fetchResumeAt || c.fetchPos != s.fetchPos ||
		c.completions.Len() != s.wheelLen || c.retire != s.retire {
		return
	}
	if c.sliq != nil && c.sliq.Stats() != s.sliq {
		return
	}
	// Memory counters: a stalled-but-ungated front end re-probes its
	// resident IL1 line once per cycle; that is the only hierarchy
	// counter a quiescent cycle may move, and by at most one.
	m := c.hier.Stats()
	fetchProbes := m.IL1.Accesses - s.mem.IL1.Accesses
	if fetchProbes > 1 {
		return
	}
	mm := s.mem
	mm.IL1.Accesses += fetchProbes
	if m != mm {
		return
	}

	// Wake bounds. A ready issue-queue entry can issue as soon as a
	// functional unit frees — a resource outside the event wheel — so
	// its presence vetoes the skip outright.
	if c.intQ.PeekReady() != nil || c.fpQ.PeekReady() != nil {
		return
	}
	bound := maxCycles
	if c.committed > 0 || c.inflight > 0 {
		// The watchdog must fire on exactly the cycle it would have:
		// cap the jump so the panic cycle executes (and panics)
		// normally.
		if wd := c.lastCommitCycle + watchdog; wd < bound {
			bound = wd
		}
	}
	if ev := c.policy.NextRetireEvent(c.now); ev >= 0 {
		if ev <= c.now {
			return
		}
		if ev < bound {
			bound = ev
		}
	}
	if c.sliq != nil {
		if w := c.sliq.NextWake(); w >= 0 {
			if w < c.now {
				// An eligible head survived this cycle's drain: it is
				// blocked on queue space or a functional unit, neither
				// of which is event-bounded.
				return
			}
			if w < bound {
				bound = w
			}
		}
	}
	switch {
	case c.now-1 < c.fetchResumeAt:
		// Front end was gated during the probe cycle (the gate lifts
		// for the cycle numbered fetchResumeAt, which may be a plain
		// L2-hit latency with no in-flight fill to observe): it resumes
		// at a known cycle, and if that is the very next cycle nothing
		// can be elided.
		if c.fetchResumeAt <= c.now {
			return
		}
		if c.fetchResumeAt < bound {
			bound = c.fetchResumeAt
		}
	case c.divergedAt == nil:
		// Correct path: the same instruction re-attempts every cycle,
		// so the probe's rejection repeats verbatim — but a pending
		// fill for its line lands at a known cycle and un-stalls the
		// fetch, so it bounds the jump. The probe ran at cycle now-1:
		// ask from there so a fill landing exactly next cycle counts.
		if c.fetchPos < c.tr.Len() {
			if fill := c.hier.FetchFillReady(c.now-1, c.tr.At(c.fetchPos).PC); fill >= 0 && fill < bound {
				bound = fill
			}
		}
	default:
		// Wrong path: the stream varies its op cycle to cycle, so the
		// probe's rejection only repeats when it is op-independent.
		if c.code != nil {
			// Program image: branches and stores map to Nops, so the
			// op classes are IntAlu/IntMul/IntDiv/Load/Nop — all bound
			// for the integer queue. A checkpoint-table stall rejects
			// every op alike, and a full integer queue blocks every op
			// — but only while rename can still hand out a register,
			// because Nops skip the rename check and would otherwise
			// stall on a different counter than destination-carrying
			// ops.
			if c.stalls.Ckpt == s.stalls.Ckpt &&
				!(c.intQ.Full() && c.rt.FreeCount() > 0) {
				return
			}
			break
		}
		// Synthetic stream: a checkpoint-table stall (Admit rejects
		// every op alike), an empty rename free list (every synthetic
		// op carries a destination), or both issue queues full.
		if c.stalls.Ckpt == s.stalls.Ckpt && c.rt.FreeCount() > 0 &&
			!(c.intQ.Full() && c.fpQ.Full()) {
			return
		}
	}
	if bound <= c.now {
		return
	}

	target := c.completions.nextDue(bound)
	k := target - c.now
	if k < 1 {
		return
	}
	uk := uint64(k)

	// Replicate the probe's footprint once per elided cycle (deltas are
	// read into locals before the counters move).
	dWp := c.wpCounter - s.wpCounter
	dRename := c.renameStallCycles - s.renameStallCycles
	dCkpt := c.ckptStallCycles - s.ckptStallCycles
	d := dispatchStalls{
		ROB:       c.stalls.ROB - s.stalls.ROB,
		IQ:        c.stalls.IQ - s.stalls.IQ,
		LSQ:       c.stalls.LSQ - s.stalls.LSQ,
		Rename:    c.stalls.Rename - s.stalls.Rename,
		Ckpt:      c.stalls.Ckpt - s.stalls.Ckpt,
		VTag:      c.stalls.VTag - s.stalls.VTag,
		FetchGate: c.stalls.FetchGate - s.stalls.FetchGate,
	}
	c.wpCounter += uk * dWp
	c.renameStallCycles += uk * dRename
	c.ckptStallCycles += uk * dCkpt
	c.stalls.ROB += uk * d.ROB
	c.stalls.IQ += uk * d.IQ
	c.stalls.LSQ += uk * d.LSQ
	c.stalls.Rename += uk * d.Rename
	c.stalls.Ckpt += uk * d.Ckpt
	c.stalls.VTag += uk * d.VTag
	c.stalls.FetchGate += uk * d.FetchGate
	if fetchProbes > 0 {
		c.hier.ReplayFetchHits(uk * fetchProbes)
	}
	c.sumInflight += uk * uint64(c.inflight)
	if c.occ != nil {
		c.occ.SampleN(uk, c.inflight, c.liveFPLong, c.liveFPShort)
	}

	c.now = target
	c.skippedCycles += uk
	c.skipEvents++
	if uk > c.longestSkip {
		c.longestSkip = uk
	}
}

// fetchExhausted reports that no further correct-path instruction can be
// fetched.
func (c *CPU) fetchExhausted() bool {
	return c.divergedAt == nil && c.fetchPos >= c.tr.Len()
}

// iqFor returns the instruction queue for an operation class: FP
// arithmetic uses the floating-point queue, everything else (including
// memory and control) the integer queue, as in the paper.
func (c *CPU) iqFor(op isa.Op) *queue.IQ[*DynInst] {
	if op == isa.FPAlu {
		return c.fpQ
	}
	return c.intQ
}

// results assembles the run's statistics.
func (c *CPU) results() stats.Results {
	r := stats.Results{
		Name:                fmt.Sprintf("%s/%s", c.cfg.Commit, c.tr.Name()),
		Cycles:              c.now,
		Committed:           c.committed,
		Fetched:             c.fetched,
		Dispatched:          c.dispatched,
		Issued:              c.issued,
		Replayed:            c.replayed,
		Rollbacks:           c.rollbacks,
		PseudoROBRecoveries: c.probRecoveries,
		Branch:              c.pred.Stats(),
		Mem:                 c.hier.Stats(),
		Retire:              c.retire,
		MaxInflight:         c.maxInflight,
		Occ:                 c.occ,
		SkippedCycles:       c.skippedCycles,
		SkipEvents:          c.skipEvents,
		LongestSkip:         c.longestSkip,
	}
	if c.now > 0 {
		r.MeanInflight = float64(c.sumInflight) / float64(c.now)
	}
	c.policy.AddStats(&r)
	if c.sliq != nil {
		ss := c.sliq.Stats()
		r.SLIQMoved = ss.Inserted
		r.SLIQWoken = ss.Woken
	}
	// Program-backed workloads surface the LSQ and BTB counters their
	// real addresses make meaningful; synthetic results omit both so
	// their encodings (and every cached result) stay byte-identical.
	if c.code != nil {
		ls := c.lq.Stats()
		r.LSQ = &ls
		if c.btb != nil {
			bs := c.btb.Stats()
			r.BTB = &bs
		}
	}
	return r
}

// debugState renders a short pipeline summary for watchdog panics.
func (c *CPU) debugState() string {
	s := fmt.Sprintf("committed=%d inflight=%d fetchPos=%d intQ=%d/%d fpQ=%d/%d lsq=%d completions=%d",
		c.committed, c.inflight, c.fetchPos,
		c.intQ.Len(), c.intQ.Cap(), c.fpQ.Len(), c.fpQ.Cap(), c.lq.Len(), c.completions.Len())
	s += c.policy.DebugState()
	if c.divergedAt != nil {
		s += fmt.Sprintf(" diverged@%d", c.divergedAt.Seq)
	}
	return s
}
