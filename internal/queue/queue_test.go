package queue

import (
	"testing"

	"repro/internal/rename"
)

// ent builds a standalone entry for tests; the pipeline embeds entries
// in its instruction records instead.
func ent(payload string) *IQEntry[string] {
	e := &IQEntry[string]{}
	e.Payload = payload
	return e
}

func TestIQInsertPopOrder(t *testing.T) {
	q := NewIQ[string](8)
	// Ready entries pop oldest-first regardless of insertion order of
	// readiness.
	if !q.Insert(ent("c"), 3, 0) || !q.Insert(ent("a"), 1, 0) || !q.Insert(ent("b"), 2, 0) {
		t.Fatal("insert failed")
	}
	var got []uint64
	for {
		e := q.PopReady()
		if e == nil {
			break
		}
		got = append(got, e.Seq)
	}
	want := []uint64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
	if q.Len() != 0 {
		t.Fatal("popped entries must free their slots")
	}
}

func TestIQWakeup(t *testing.T) {
	q := NewIQ[string](4)
	e := ent("x")
	q.Insert(e, 1, 2)
	if e.Ready() || q.ReadyCount() != 0 {
		t.Fatal("entry with pending sources must not be ready")
	}
	q.Wake(e)
	if e.Ready() {
		t.Fatal("one of two sources is not enough")
	}
	q.Wake(e)
	if !e.Ready() || q.ReadyCount() != 1 {
		t.Fatal("entry should be ready after both wakes")
	}
	if got := q.PopReady(); got != e {
		t.Fatal("wrong entry popped")
	}
}

func TestIQWakePanics(t *testing.T) {
	q := NewIQ[string](4)
	e := ent("x")
	q.Insert(e, 1, 0)
	defer func() {
		if recover() == nil {
			t.Error("waking a ready entry must panic (underflow)")
		}
	}()
	q.Wake(e)
}

func TestIQCapacity(t *testing.T) {
	q := NewIQ[string](2)
	q.Insert(ent("a"), 1, 1)
	q.Insert(ent("b"), 2, 1)
	if !q.Full() || q.Free() != 0 {
		t.Fatal("queue should be full")
	}
	if q.Insert(ent("c"), 3, 1) {
		t.Fatal("insert into a full queue must fail")
	}
	if q.Stats().FullStalls != 1 {
		t.Fatal("stall not counted")
	}
}

func TestIQUnissue(t *testing.T) {
	q := NewIQ[string](4)
	q.Insert(ent("a"), 5, 0)
	e := q.PopReady()
	if q.Len() != 0 {
		t.Fatal("pop must free the slot")
	}
	q.Unissue(e)
	if q.Len() != 1 || q.ReadyCount() != 1 {
		t.Fatal("unissue must restore the entry")
	}
	if got := q.PopReady(); got != e {
		t.Fatal("unissued entry must be selectable again")
	}
}

func TestIQRemove(t *testing.T) {
	q := NewIQ[string](4)
	eWait := ent("w")
	eReady := ent("r")
	q.Insert(eWait, 1, 1)
	q.Insert(eReady, 2, 0)
	q.Remove(eWait)
	q.Remove(eReady)
	if q.Len() != 0 || q.ReadyCount() != 0 {
		t.Fatal("remove must handle both waiting and ready entries")
	}
	q.Remove(eWait) // double remove is a no-op
	if q.Stats().Removed != 2 {
		t.Fatal("remove count wrong")
	}
}

func TestIQReinsertAfterRemove(t *testing.T) {
	// An embedded entry cycles through insert/remove/insert (the
	// SLIQ-move-and-wake path); residence state must reset each time.
	q := NewIQ[string](4)
	e := ent("x")
	q.Insert(e, 1, 1)
	q.Remove(e)
	if e.Resident() {
		t.Fatal("removed entry must not be resident")
	}
	if !q.Insert(e, 7, 0) {
		t.Fatal("reinsert failed")
	}
	if got := q.PopReady(); got != e || got.Seq != 7 {
		t.Fatalf("reinserted entry wrong: %v", got)
	}
}

func TestIQDoubleInsertPanics(t *testing.T) {
	q := NewIQ[string](4)
	e := ent("x")
	q.Insert(e, 1, 0)
	defer func() {
		if recover() == nil {
			t.Error("double insert of a resident entry must panic")
		}
	}()
	q.Insert(e, 2, 0)
}

func TestIQResident(t *testing.T) {
	q := NewIQ[string](4)
	e := ent("x")
	q.Insert(e, 1, 0)
	if !q.Resident(e) {
		t.Fatal("inserted entry must be resident")
	}
	q.PopReady()
	if q.Resident(e) {
		t.Fatal("popped entry must not be resident")
	}
	if q.Resident(nil) {
		t.Fatal("nil entry is never resident")
	}
}

func TestDequeFIFO(t *testing.T) {
	d := NewDeque[int](3)
	if !d.Empty() || d.Cap() != 3 {
		t.Fatal("new deque state wrong")
	}
	d.PushBack(1)
	d.PushBack(2)
	d.PushBack(3)
	if !d.Full() || d.PushBack(4) {
		t.Fatal("full deque must reject pushes")
	}
	if v, _ := d.Front(); v != 1 {
		t.Fatal("front should be oldest")
	}
	if v, _ := d.Back(); v != 3 {
		t.Fatal("back should be youngest")
	}
	if v, ok := d.PopFront(); !ok || v != 1 {
		t.Fatal("pop front wrong")
	}
	if v, ok := d.PopBack(); !ok || v != 3 {
		t.Fatal("pop back wrong")
	}
	if d.Len() != 1 {
		t.Fatal("length wrong after pops")
	}
}

func TestDequeWraparound(t *testing.T) {
	d := NewDeque[int](4)
	for round := 0; round < 10; round++ {
		for i := 0; i < 4; i++ {
			if !d.PushBack(round*10 + i) {
				t.Fatal("push failed")
			}
		}
		for i := 0; i < 4; i++ {
			v, ok := d.PopFront()
			if !ok || v != round*10+i {
				t.Fatalf("round %d: got %d want %d", round, v, round*10+i)
			}
		}
	}
}

func TestDequeAtForEachClear(t *testing.T) {
	d := NewDeque[string](4)
	d.PushBack("a")
	d.PushBack("b")
	d.PopFront()
	d.PushBack("c")
	if d.At(0) != "b" || d.At(1) != "c" {
		t.Fatal("At indexing wrong")
	}
	var seen []string
	d.ForEach(func(s string) { seen = append(seen, s) })
	if len(seen) != 2 || seen[0] != "b" || seen[1] != "c" {
		t.Fatalf("ForEach order: %v", seen)
	}
	d.Clear()
	if !d.Empty() {
		t.Fatal("Clear failed")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("At out of range must panic")
			}
		}()
		d.At(0)
	}()
}

func TestDequeEmptyPops(t *testing.T) {
	d := NewDeque[int](2)
	if _, ok := d.PopFront(); ok {
		t.Error("empty pop front must fail")
	}
	if _, ok := d.PopBack(); ok {
		t.Error("empty pop back must fail")
	}
	if _, ok := d.Front(); ok {
		t.Error("empty front must fail")
	}
	if _, ok := d.Back(); ok {
		t.Error("empty back must fail")
	}
}

const sliqRegs = 64

func TestSLIQWakeFlow(t *testing.T) {
	s := NewSLIQ[int](16, 4, 4, sliqRegs)
	trig := rename.PhysReg(7)
	for i := uint64(0); i < 6; i++ {
		if !s.Insert(i, trig, int(i)) {
			t.Fatal("insert failed")
		}
	}
	if s.Len() != 6 || s.WaitingOn() != 6 {
		t.Fatalf("len=%d waiting=%d", s.Len(), s.WaitingOn())
	}
	// No drain before the trigger fires.
	if n := s.Drain(100, func(uint64, int) bool { return true }); n != 0 {
		t.Fatal("nothing should drain before the trigger")
	}
	s.TriggerReady(trig, 100)
	// Start-up delay: not eligible until cycle 104.
	if n := s.Drain(103, func(uint64, int) bool { return true }); n != 0 {
		t.Fatal("drain before the wake delay must yield nothing")
	}
	var got []uint64
	n := s.Drain(104, func(seq uint64, _ int) bool { got = append(got, seq); return true })
	if n != 4 {
		t.Fatalf("first pump cycle drained %d, want width=4", n)
	}
	for i, seq := range got {
		if seq != uint64(i) {
			t.Fatalf("drain order %v, want oldest-first", got)
		}
	}
	if n := s.Drain(105, func(uint64, int) bool { return true }); n != 2 {
		t.Fatalf("second pump cycle drained %d, want 2", n)
	}
	st := s.Stats()
	if st.Woken != 6 || st.WakeStarts != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSLIQDrainStopsWhenRejected(t *testing.T) {
	s := NewSLIQ[int](8, 0, 4, sliqRegs)
	s.Insert(1, 1, 0)
	s.Insert(2, 1, 0)
	s.TriggerReady(1, 10)
	n := s.Drain(10, func(seq uint64, _ int) bool { return seq == 1 })
	if n != 1 {
		t.Fatalf("drained %d, want 1 (head rejected stops the pump)", n)
	}
	// Entry 2 is retained and drains later.
	if n := s.Drain(11, func(uint64, int) bool { return true }); n != 1 {
		t.Fatal("retained entry must drain on a later cycle")
	}
}

func TestSLIQCapacity(t *testing.T) {
	s := NewSLIQ[int](2, 4, 4, sliqRegs)
	s.Insert(1, 1, 0)
	s.Insert(2, 1, 0)
	if s.Insert(3, 1, 0) {
		t.Fatal("full SLIQ must reject")
	}
	if s.Stats().FullStalls != 1 {
		t.Fatal("full stall not counted")
	}
}

func TestSLIQSquashYounger(t *testing.T) {
	s := NewSLIQ[int](8, 4, 4, sliqRegs)
	var squashed []int
	for i := uint64(0); i < 6; i++ {
		s.Insert(i, rename.PhysReg(i%2), int(i))
	}
	s.TriggerReady(0, 0) // seqs 0,2,4 become wakeable
	s.SquashYounger(3, func(p int) { squashed = append(squashed, p) })
	if len(squashed) != 3 { // 3,4,5
		t.Fatalf("squashed %v, want 3 entries", squashed)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want 3", s.Len())
	}
	// Only the surviving wakeable entries drain.
	var drained []uint64
	s.Drain(100, func(seq uint64, _ int) bool { drained = append(drained, seq); return true })
	if len(drained) != 2 || drained[0] != 0 || drained[1] != 2 {
		t.Fatalf("drained %v, want [0 2]", drained)
	}
}

func TestSLIQMultipleTriggers(t *testing.T) {
	s := NewSLIQ[string](8, 1, 4, sliqRegs)
	s.Insert(1, 10, "a")
	s.Insert(2, 20, "b")
	s.TriggerReady(20, 0)
	var got []uint64
	s.Drain(1, func(seq uint64, _ string) bool { got = append(got, seq); return true })
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("only trigger-20's entry should wake, got %v", got)
	}
	if s.WaitingOn() != 1 {
		t.Fatal("entry 1 should still wait")
	}
	s.TriggerReady(10, 5)
	got = nil
	s.Drain(6, func(seq uint64, _ string) bool { got = append(got, seq); return true })
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("trigger-10's entry should wake, got %v", got)
	}
}

func TestSLIQClear(t *testing.T) {
	s := NewSLIQ[int](8, 4, 4, sliqRegs)
	s.Insert(1, 1, 0)
	s.Insert(2, 2, 0)
	s.TriggerReady(1, 0)
	n := 0
	s.Clear(func(int) { n++ })
	if n != 2 || s.Len() != 0 {
		t.Fatalf("clear squashed %d, len %d", n, s.Len())
	}
}

// TestSLIQRecycling exercises the internal entry pool: entries squashed
// or drained must be reusable without cross-talk between generations.
func TestSLIQRecycling(t *testing.T) {
	s := NewSLIQ[int](8, 0, 8, sliqRegs)
	for round := 0; round < 5; round++ {
		base := uint64(round * 10)
		s.Insert(base+1, 3, round*10+1)
		s.Insert(base+2, 3, round*10+2)
		s.Insert(base+3, 4, round*10+3)
		// Squash one while waiting, wake and drain the others.
		s.SquashYounger(base+3, func(int) {})
		s.TriggerReady(3, int64(round))
		var got []int
		s.Drain(int64(round), func(_ uint64, p int) bool { got = append(got, p); return true })
		if len(got) != 2 || got[0] != round*10+1 || got[1] != round*10+2 {
			t.Fatalf("round %d drained %v", round, got)
		}
		if s.Len() != 0 {
			t.Fatalf("round %d: len = %d, want 0", round, s.Len())
		}
	}
	if st := s.Stats(); st.Inserted != 15 || st.Woken != 10 || st.Squashed != 5 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

func TestSLIQNextWake(t *testing.T) {
	s := NewSLIQ[int](8, 4, 4, sliqRegs)
	if got := s.NextWake(); got != -1 {
		t.Fatalf("empty SLIQ: NextWake = %d, want -1", got)
	}
	s.Insert(1, 3, 10)
	s.Insert(2, 3, 20)
	// Waiting entries are invisible: they wake only via TriggerReady.
	if got := s.NextWake(); got != -1 {
		t.Fatalf("waiting-only SLIQ: NextWake = %d, want -1", got)
	}
	s.TriggerReady(3, 100)
	// Both entries become eligible at 100 + delay.
	if got := s.NextWake(); got != 104 {
		t.Fatalf("NextWake = %d, want 104", got)
	}
	// Draining the head exposes the next entry's eligibility.
	if n := s.Drain(104, func(seq uint64, _ int) bool { return seq == 1 }); n != 1 {
		t.Fatal("head did not drain")
	}
	if got := s.NextWake(); got != 104 {
		t.Fatalf("after partial drain: NextWake = %d, want 104", got)
	}
	// A squashed head must report "no skip" (0), never a future cycle
	// that would let a clock jump sail past the dead entry's collection.
	s.SquashYounger(2, func(int) {})
	if got := s.NextWake(); got != 0 {
		t.Fatalf("squashed head: NextWake = %d, want 0", got)
	}
}
