package core

import (
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/queue"
	"repro/internal/rename"
)

// issueStage selects up to IssueWidth ready instructions across the two
// issue queues, oldest first, and starts them on functional units.
// Loads are additionally bounded by the per-cycle data-cache port count
// (Table 1's "Memory ports").
func (c *CPU) issueStage() {
	budget := c.cfg.IssueWidth
	failures := 0
	maxFailures := 2 * c.cfg.IssueWidth
	retry := c.issueRetry[:0]

	for budget > 0 && failures < maxFailures {
		e := c.popOldestReady()
		if e == nil {
			break
		}
		d := e.Payload
		if d.Squashed {
			continue
		}
		if d.Inst.Op == isa.Load && c.portsUsed >= c.cfg.MemoryPorts {
			retry = append(retry, e)
			failures++
			continue
		}
		aluDone, ok := c.fus.TryIssue(d.Inst.Op, c.now)
		if !ok {
			retry = append(retry, e)
			failures++
			continue
		}
		c.startExecution(d, aluDone)
		budget--
	}
	for i, e := range retry {
		c.iqFor(e.Payload.Inst.Op).Unissue(e)
		retry[i] = nil
	}
	c.issueRetry = retry[:0]
}

// propagateLongTaint marks a register as transitively dependent on an
// L2-missing load and reclassifies already-dispatched waiting consumers
// from blocked-short to blocked-long (Figure 7's split). Dispatch-time
// classification alone misses consumers dispatched in the window before
// the load's miss is discovered.
func (c *CPU) propagateLongTaint(p rename.PhysReg) {
	if c.longTaint[p] {
		return
	}
	c.longTaint[p] = true
	for _, ref := range c.consumers[p] {
		cons := ref.d
		if cons.Seq != ref.seq || cons.Squashed || cons.Done || cons.Issued {
			continue
		}
		if cons.countedLive && !cons.LiveLong {
			cons.LiveLong = true
			c.liveFPLong++
			c.liveFPShort--
		}
		if cons.DestPhys != rename.PhysNone {
			c.propagateLongTaint(cons.DestPhys)
		}
	}
}

// popOldestReady pops the globally oldest ready entry across both issue
// queues.
func (c *CPU) popOldestReady() *queue.IQEntry[*DynInst] {
	ei, ef := c.intQ.PeekReady(), c.fpQ.PeekReady()
	switch {
	case ei == nil && ef == nil:
		return nil
	case ei == nil:
		return c.fpQ.PopReady()
	case ef == nil:
		return c.intQ.PopReady()
	case ei.Seq < ef.Seq:
		return c.intQ.PopReady()
	default:
		return c.fpQ.PopReady()
	}
}

// startExecution marks d issued and schedules its completion. aluDone is
// the cycle the functional unit produces its result (address generation
// for memory operations).
func (c *CPU) startExecution(d *DynInst, aluDone int64) {
	d.Issued = true
	c.issued++
	if d.countedLive {
		// Leaving the issue queue ends the instruction's "live" phase
		// (Figure 7 counts instructions yet to be issued).
		d.countedLive = false
		if d.LiveLong {
			c.liveFPLong--
		} else {
			c.liveFPShort--
		}
	}

	switch d.Inst.Op {
	case isa.Load:
		c.portsUsed++
		c.lastLoadAddr = d.Inst.Addr
		res, store := c.lq.LookupForward(d.Seq, d.Inst.Addr)
		switch res {
		case lsq.ForwardReady:
			d.DoneCycle = aluDone + int64(c.cfg.DL1.LatencyCycles)
			c.completions.push(d)
		case lsq.ForwardWait:
			d.forwardWait = true
			// The blocking store executed; the load completes a cycle
			// later (forwarding bypass). The callback outlives the
			// load on squash, so it re-checks identity by Seq.
			seq := d.Seq
			c.lq.AddWaiter(store, func(uint64) {
				if d.Squashed || d.Seq != seq {
					return
				}
				d.forwardWait = false
				d.DoneCycle = c.now + 1
				c.completions.push(d)
			})
		case lsq.NoConflict:
			res := c.hier.Load(aluDone, d.Inst.Addr)
			d.DoneCycle = res.Done
			if res.MissedL2 {
				d.MissedL2 = true
				if d.DestPhys >= 0 {
					c.propagateLongTaint(d.DestPhys)
				}
			}
			c.completions.push(d)
		}
	default:
		d.DoneCycle = aluDone
		c.completions.push(d)
	}
}
