package vreg

import "testing"

func TestRenameTagLimit(t *testing.T) {
	tr := New(2, 64, 32)
	if !tr.TryRename() || !tr.TryRename() {
		t.Fatal("two tags should be available")
	}
	if tr.TryRename() {
		t.Fatal("tag space exhausted: rename must stall")
	}
	if tr.Stats().TagStalls != 1 {
		t.Fatal("tag stall not counted")
	}
	tr.UnRename()
	if !tr.TryRename() {
		t.Fatal("returned tag must be reusable")
	}
}

func TestBindReleasesTagTakesPhys(t *testing.T) {
	tr := New(8, 34, 32)
	tr.TryRename()
	if tr.TagsLive() != 1 || tr.PhysLive() != 32 {
		t.Fatalf("tags=%d phys=%d", tr.TagsLive(), tr.PhysLive())
	}
	if !tr.TryBind(false) {
		t.Fatal("bind should succeed")
	}
	if tr.TagsLive() != 0 || tr.PhysLive() != 33 {
		t.Fatalf("after bind: tags=%d phys=%d", tr.TagsLive(), tr.PhysLive())
	}
}

func TestBindStallsOnPhysExhaustion(t *testing.T) {
	tr := New(8, 33, 32) // one free physical register beyond initial state
	tr.TryRename()
	tr.TryRename()
	if !tr.TryBind(false) {
		t.Fatal("first bind should succeed")
	}
	if tr.TryBind(false) {
		t.Fatal("register file full: bind must defer")
	}
	if tr.Stats().BindStalls != 1 {
		t.Fatal("bind stall not counted")
	}
	if tr.CanBind() {
		t.Fatal("CanBind must report exhaustion")
	}
	tr.Release()
	if !tr.CanBind() || !tr.TryBind(false) {
		t.Fatal("released register must unblock the bind")
	}
}

func TestFusedBindConsumesNoRegister(t *testing.T) {
	tr := New(8, 33, 32)
	tr.TryRename()
	tr.TryRename()
	tr.TryBind(false) // fills the file
	if !tr.TryBind(true) {
		t.Fatal("fused bind must succeed even with a full register file")
	}
	if tr.PhysLive() != 33 {
		t.Fatal("fused bind must not consume a register")
	}
}

func TestEarlyReleaseCycle(t *testing.T) {
	// Model the paper's ephemeral-register lifecycle: produce, redefine,
	// release.
	tr := New(16, 40, 32)
	tr.TryRename()    // producer renamed
	tr.TryBind(false) // producer's value bound: 33 live
	tr.TryRename()    // redefiner renamed
	tr.TryBind(false) // redefiner's value bound: 34 live
	tr.Release()      // redefinition releases the old value: 33
	if tr.PhysLive() != 33 {
		t.Fatalf("phys live = %d, want 33", tr.PhysLive())
	}
	st := tr.Stats()
	if st.Binds != 2 || st.Releases != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSquashBound(t *testing.T) {
	tr := New(8, 40, 32)
	tr.TryRename()
	tr.TryBind(false)
	tr.SquashBound()
	if tr.PhysLive() != 32 {
		t.Fatal("squash of a bound value must release its register")
	}
}

func TestUnderflowPanics(t *testing.T) {
	for name, fn := range map[string]func(tr *Tracker){
		"UnRename": func(tr *Tracker) { tr.UnRename() },
		"Release":  func(tr *Tracker) { tr.Release(); tr.Release() }, // one too many
		"BindTags": func(tr *Tracker) { tr.TryBind(false) },
	} {
		func() {
			tr := New(8, 33, 1)
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn(tr)
		}()
	}
}

func TestNewPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 64, 32) },
		func() { New(8, 16, 32) }, // fewer registers than initial values
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
