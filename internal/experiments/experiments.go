// Package experiments regenerates every table and figure of the paper's
// evaluation (section 4). Each FigureN function sweeps the paper's
// parameters over the synthetic SPEC2000fp-stand-in suite and reports
// suite averages, mirroring the paper's "averaging over all the
// applications in the set". See DESIGN.md §5 for the experiment index
// and EXPERIMENTS.md for recorded paper-vs-measured results.
//
// Execution goes through the internal/sim worker-pool engine: every
// figure flattens its parameter grid into one []sim.RunSpec, submits it
// to sim.Sweep once, and post-processes the (spec-ordered) results, so
// the whole evaluation parallelises across Options.Workers without any
// figure-specific concurrency code.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options bounds every experiment run.
type Options struct {
	// Insts is the committed-instruction target per configuration
	// point. It must be large enough that each workload's touched
	// footprint exceeds the L2 capacity (see DESIGN.md §4); DefaultInsts
	// satisfies that with margin.
	Insts uint64
	// Seed parameterises the mixed workload.
	Seed uint64
	// Workers bounds the sweep worker pool; <= 0 uses GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives one line per completed run (in
	// completion order when Workers > 1).
	Progress func(line string)
	// Record, when non-nil, receives every completed run for machine
	// consumption (cmd/experiments -json). Calls are serialised.
	Record func(RunRecord)

	// cache, when set by WithTraceCache, shares generated suite traces
	// across figures.
	cache *suiteCache
}

// RunRecord is the machine-readable form of one completed run.
type RunRecord struct {
	Benchmark string        `json:"benchmark"`
	Config    string        `json:"config"`
	Results   stats.Results `json:"results"`
}

// DefaultInsts is the per-point instruction budget used by the paper
// reproduction runs (the paper used 300M-instruction SimPoint regions;
// our stationary kernels converge far faster).
const DefaultInsts = 300_000

// Defaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Insts == 0 {
		o.Insts = DefaultInsts
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// traceMargin is the extra trace length beyond the committed-instruction
// target so runs never exhaust the trace.
func traceMargin(insts uint64) int {
	return int(insts) + int(insts)/5 + 4096
}

// Benchmark is one suite member: a named workload generator.
type Benchmark struct {
	Name string
	Gen  func(n int) *trace.Trace
}

// SuiteBenchmarks returns the evaluation suite, the synthetic stand-in
// for SPEC2000fp (DESIGN.md §4): two latency-wall streams, a moderately
// memory-bound stencil, an ILP-limited reduction, a cache-resident
// blocked kernel, and the mixed composite.
func SuiteBenchmarks(seed uint64) []Benchmark {
	return []Benchmark{
		{"stream", trace.Stream},
		{"strided", func(n int) *trace.Trace { return trace.StridedStream(n, 8) }},
		{"stencil", trace.Stencil},
		{"reduction", trace.Reduction},
		{"blocked", trace.Blocked},
		{"fpmix", func(n int) *trace.Trace { return trace.FPMix(n, seed) }},
	}
}

// suiteCache memoises generated suite traces keyed by (insts, seed).
// Traces are immutable once built (guarded by a core test), so the
// cached set is shared read-only across figures and across every
// concurrent CPU inside a sweep.
type suiteCache struct {
	mu     sync.Mutex
	traces map[suiteKey][]suiteTrace
}

type suiteKey struct {
	insts, seed uint64
}

// WithTraceCache returns Options that generate each suite trace set
// once and reuse it across figures (cmd/experiments -figure all shares
// one generation pass this way).
func (o Options) WithTraceCache() Options {
	o.cache = &suiteCache{traces: map[suiteKey][]suiteTrace{}}
	return o
}

// suite materialises the benchmark traces (once per experiment, or once
// per process under WithTraceCache).
func (o Options) suite() []suiteTrace {
	if o.cache != nil {
		o.cache.mu.Lock()
		defer o.cache.mu.Unlock()
		key := suiteKey{o.Insts, o.Seed}
		if ts, ok := o.cache.traces[key]; ok {
			return ts
		}
		ts := buildSuite(o.Insts, o.Seed)
		o.cache.traces[key] = ts
		return ts
	}
	return buildSuite(o.Insts, o.Seed)
}

func buildSuite(insts, seed uint64) []suiteTrace {
	bs := SuiteBenchmarks(seed)
	out := make([]suiteTrace, len(bs))
	n := traceMargin(insts)
	for i, b := range bs {
		out[i] = suiteTrace{name: b.Name, tr: b.Gen(n)}
	}
	return out
}

type suiteTrace struct {
	name string
	tr   *trace.Trace
}

// point is one labelled configuration evaluated over the whole suite.
type point struct {
	cfg        config.Config
	collectOcc bool
}

// runPoints expands every point over the suite into one flat RunSpec
// list, submits it to the sweep engine in a single call, and regroups
// the spec-ordered results per point (each group is in suite order).
func (o Options) runPoints(ctx context.Context, points []point, suite []suiteTrace) ([][]stats.Results, error) {
	specs := make([]sim.RunSpec, 0, len(points)*len(suite))
	for _, p := range points {
		for _, st := range suite {
			specs = append(specs, sim.RunSpec{
				Name:             st.name,
				Config:           p.cfg,
				Trace:            st.tr,
				Insts:            o.Insts,
				CollectOccupancy: p.collectOcc,
			})
		}
	}
	sopt := sim.Options{Workers: o.Workers, Progress: o.Progress}
	if o.Record != nil {
		sopt.OnResult = func(spec sim.RunSpec, res stats.Results) {
			o.Record(RunRecord{
				Benchmark: spec.Name,
				Config:    spec.Config.Summary(),
				Results:   res,
			})
		}
	}
	flat, err := sim.Sweep(ctx, specs, sopt)
	if err != nil {
		return nil, err
	}
	groups := make([][]stats.Results, len(points))
	for i := range points {
		groups[i] = flat[i*len(suite) : (i+1)*len(suite)]
	}
	return groups, nil
}

// meanIPC returns the arithmetic-mean IPC of one point's suite results.
func meanIPC(rs []stats.Results) float64 {
	sum := 0.0
	for _, r := range rs {
		sum += r.IPC()
	}
	return sum / float64(len(rs))
}

// meanInflight returns the average of the per-run mean in-flight counts.
func meanInflight(rs []stats.Results) float64 {
	sum := 0.0
	for _, r := range rs {
		sum += r.MeanInflight
	}
	return sum / float64(len(rs))
}

// Table1 returns the baseline architectural parameters, rendered like
// the paper's Table 1.
func Table1() string {
	return config.Default().String()
}

// renderTable formats a simple aligned table.
func renderTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
