package mem

import (
	"fmt"

	"repro/internal/config"
)

// AccessResult describes the outcome of a data access.
type AccessResult struct {
	// Done is the absolute cycle at which the loaded value is available.
	Done int64
	// MissedL2 reports that the access had to go to main memory (or
	// merged with an in-flight main-memory request). The pipeline uses
	// it as the paper's "long latency load" classification.
	MissedL2 bool
}

// HierarchyStats aggregates counters across the hierarchy.
type HierarchyStats struct {
	IL1, DL1, L2 CacheStats
	// MemAccesses counts main-memory line fetches actually started
	// (merged requests are not double counted).
	MemAccesses uint64
	// MergedMisses counts L2 misses that merged with an in-flight line.
	MergedMisses uint64
	// StoreWrites counts committed stores drained to the hierarchy.
	StoreWrites uint64
	// Prefetches counts next-line fills started by the prefetcher.
	Prefetches uint64
}

// Hierarchy is the full memory system: IL1 + DL1 backed by a unified L2
// backed by main memory. Misses to the same L2 line merge MSHR-style.
//
// Bandwidth model: the Table 1 "Memory ports: 2" limit is enforced by the
// pipeline as a per-cycle data-cache access limit (see core); beyond that,
// memory-level parallelism is unconstrained, matching the paper's
// pseudo-perfect treatment of everything except the structures under study.
type Hierarchy struct {
	il1, dl1, l2 *Cache
	perfectL2    bool
	memLatency   int64
	prefetch     int
	warm         WarmKey

	// inflight tracks in-flight L2 line fills (fill-completion cycle per
	// line address, MSHR-style).
	inflight mshr
	stats    HierarchyStats
}

// NewHierarchy builds the memory system from the architectural config.
func NewHierarchy(cfg config.Config) *Hierarchy {
	h := &Hierarchy{
		il1:        NewCache(cfg.IL1),
		dl1:        NewCache(cfg.DL1),
		l2:         NewCache(cfg.L2),
		perfectL2:  cfg.PerfectL2,
		memLatency: int64(cfg.MemoryLatency),
		prefetch:   cfg.PrefetchDegree,
		warm:       WarmKeyFor(cfg),
	}
	h.inflight.init(mshrSizeFor(cfg.MemoryLatency))
	return h
}

// WarmKey identifies the warm-relevant shape of a hierarchy: two
// configurations with equal WarmKeys reach bit-identical cache contents
// from the same warm-up replay, whatever their hit latencies, memory
// latency or prefetch degree (none of which the warm-up paths touch).
// It is comparable, so sweep engines use it directly as a grouping key.
type WarmKey struct {
	// IL1, DL1 and L2 are the cache geometries with LatencyCycles
	// zeroed: latency shapes timing, never contents.
	IL1, DL1, L2 config.CacheConfig
	// PerfectL2 changes what the warm-up writes (a perfect L2 is never
	// touched), so it splits groups.
	PerfectL2 bool
}

// WarmKeyFor returns the warm-relevant shape of cfg.
func WarmKeyFor(cfg config.Config) WarmKey {
	k := WarmKey{IL1: cfg.IL1, DL1: cfg.DL1, L2: cfg.L2, PerfectL2: cfg.PerfectL2}
	k.IL1.LatencyCycles = 0
	k.DL1.LatencyCycles = 0
	k.L2.LatencyCycles = 0
	return k
}

// Donor builds a hierarchy with k's geometry and placeholder timing,
// usable only for warm-up replay and Fork: sweep engines warm one donor
// per (trace, WarmKey) group and fork it to every member, so the
// donor's latencies are never observed. Geometry errors come back as
// errors (not panics) because a sweep worker must survive a bad point.
func (k WarmKey) Donor() (*Hierarchy, error) {
	cfg := config.Config{IL1: k.IL1, DL1: k.DL1, L2: k.L2, PerfectL2: k.PerfectL2, MemoryLatency: 1}
	cfg.IL1.LatencyCycles = 1
	cfg.DL1.LatencyCycles = 1
	cfg.L2.LatencyCycles = 1
	for name, cc := range map[string]config.CacheConfig{"IL1": cfg.IL1, "DL1": cfg.DL1, "L2": cfg.L2} {
		if err := cc.Validate(); err != nil {
			return nil, fmt.Errorf("mem: warm donor %s: %w", name, err)
		}
	}
	// WarmKeyFor zeroes latencies, so the donor's own key equals k.
	return NewHierarchy(cfg), nil
}

// WarmKey returns the hierarchy's warm-relevant shape.
func (h *Hierarchy) WarmKey() WarmKey { return h.warm }

// Clone returns a deep copy sharing no mutable state with h: caches
// (flat tag arrays), the in-flight line tracker, and statistics are all
// copied. The clone and the original may then run on different
// goroutines.
func (h *Hierarchy) Clone() *Hierarchy {
	nh := *h
	nh.il1 = h.il1.Clone()
	nh.dl1 = h.dl1.Clone()
	nh.l2 = h.l2.Clone()
	nh.inflight = h.inflight.clone()
	return &nh
}

// Fork builds a fresh hierarchy for cfg that starts from h's current
// cache contents: the fork half of the snapshot-fork sweep kernel. The
// fork takes cfg's own latencies, prefetch degree and perfect-L2
// setting, zero statistics and an empty in-flight tracker; only the
// resident lines and their LRU order carry over (three flat copies).
// It fails if cfg's warm-relevant shape differs from h's — adopting
// cache state across geometries would be silently wrong.
func (h *Hierarchy) Fork(cfg config.Config) (*Hierarchy, error) {
	if k := WarmKeyFor(cfg); k != h.warm {
		return nil, fmt.Errorf("mem: fork geometry mismatch: donor %+v vs member %+v", h.warm, k)
	}
	nh := NewHierarchy(cfg)
	nh.il1.adoptState(h.il1)
	nh.dl1.adoptState(h.dl1)
	nh.l2.adoptState(h.l2)
	return nh, nil
}

// Load models a data load issued at cycle now.
func (h *Hierarchy) Load(now int64, addr uint64) AccessResult {
	// An in-flight fill of this line absorbs the request (MSHR merge).
	line := h.l2.LineAddr(addr)
	if ready, ok := h.inflight.get(line); ok {
		if ready > now {
			h.stats.MergedMisses++
			return AccessResult{Done: ready, MissedL2: true}
		}
		h.inflight.del(line)
	}

	done := now + int64(h.dl1.Latency())
	if h.dl1.Access(addr) {
		return AccessResult{Done: done}
	}

	done += int64(h.l2.Latency())
	if h.perfectL2 {
		return AccessResult{Done: done}
	}
	if h.l2.Access(addr) {
		return AccessResult{Done: done}
	}

	// Main memory. The line is resident (for replacement purposes) from
	// now on, but consumers must wait for the fill via the MSHR table.
	done += h.memLatency
	h.inflight.put(line, done)
	h.stats.MemAccesses++
	h.prefetchAfter(line, done)
	return AccessResult{Done: done, MissedL2: true}
}

// prefetchAfter starts next-line fills behind a demand miss. Prefetched
// lines become visible to the replacement state and arrive one cycle
// after the demand line per degree step (a simple streaming engine).
func (h *Hierarchy) prefetchAfter(line uint64, done int64) {
	for i := 1; i <= h.prefetch; i++ {
		next := line + uint64(i)*uint64(1)<<h.l2.lineShift
		if h.l2.Probe(next) {
			continue
		}
		if _, busy := h.inflight.get(next); busy {
			continue
		}
		h.l2.insert(next >> h.l2.lineShift)
		h.inflight.put(next, done+int64(i))
		h.stats.Prefetches++
	}
}

// FetchLatency models an instruction fetch of pc at cycle now and returns
// the cycle the fetch group is available. Instruction fetches that miss
// IL1 go to L2 and, if needed, memory, reusing the same line tracker.
func (h *Hierarchy) FetchLatency(now int64, pc uint64) int64 {
	line := h.l2.LineAddr(pc)
	if ready, ok := h.inflight.get(line); ok {
		if ready > now {
			return ready
		}
		h.inflight.del(line)
	}
	done := now + int64(h.il1.Latency())
	if h.il1.Access(pc) {
		return done
	}
	done += int64(h.l2.Latency())
	if h.perfectL2 || h.l2.Access(pc) {
		return done
	}
	done += h.memLatency
	h.inflight.put(line, done)
	h.stats.MemAccesses++
	return done
}

// FetchFillReady reports the cycle an in-flight miss covering pc's line
// will land, or -1 when no fill later than now is pending — a pure
// preview of the FetchLatency fast path. The event-driven clock skip
// uses it to bound a jump: while the fill is in flight FetchLatency
// keeps answering "ready", but the cycle it lands the front end can
// make progress, so the skip must stop there.
func (h *Hierarchy) FetchFillReady(now int64, pc uint64) int64 {
	if ready, ok := h.inflight.get(h.l2.LineAddr(pc)); ok && ready > now {
		return ready
	}
	return -1
}

// ReplayFetchHits replays n statistics-only IL1 fetch hits. A quiescent
// front end re-probing the same resident line every stall cycle counts
// one IL1 hit per cycle without changing any replacement state; the
// clock skip elides the probes and replays their counter deltas here so
// the statistics stay bit-identical to the cycle-by-cycle run.
func (h *Hierarchy) ReplayFetchHits(n uint64) {
	h.il1.stats.Accesses += n
}

// StoreCommit drains a committed store into the hierarchy, updating
// replacement state. Commit is never blocked by stores (ideal write
// buffer), so no completion time is returned.
func (h *Hierarchy) StoreCommit(addr uint64) {
	h.stats.StoreWrites++
	if h.dl1.Access(addr) {
		return
	}
	if !h.perfectL2 {
		h.l2.Access(addr)
	}
}

// PrimeFetch preloads the line containing pc into IL1 and L2 without
// touching statistics. Harnesses use it to warm the instruction path:
// the paper's 300M-instruction SimPoints amortise cold code misses to
// nothing, which short simulations must emulate explicitly.
func (h *Hierarchy) PrimeFetch(pc uint64) {
	h.il1.prime(pc)
	if !h.perfectL2 {
		h.l2.prime(pc)
	}
}

// WarmData replays one data access through DL1 and L2 without counting
// statistics. Harnesses run the whole trace through it once before
// simulating, emulating the warm caches a long-running benchmark would
// have: resident working sets stay, streaming footprints evict
// themselves back to their steady state.
func (h *Hierarchy) WarmData(addr uint64) {
	h.dl1.accessQuiet(addr)
	if !h.perfectL2 {
		h.l2.accessQuiet(addr)
	}
}

// WouldMissL2 reports whether a load of addr issued now would go to main
// memory, without changing any state. The pipeline uses it for
// classification previews in tests.
func (h *Hierarchy) WouldMissL2(now int64, addr uint64) bool {
	if h.perfectL2 {
		return false
	}
	line := h.l2.LineAddr(addr)
	if ready, ok := h.inflight.get(line); ok && ready > now {
		return true
	}
	return !h.dl1.Probe(addr) && !h.l2.Probe(addr)
}

// Stats returns a copy of the aggregate counters.
func (h *Hierarchy) Stats() HierarchyStats {
	s := h.stats
	s.IL1 = h.il1.Stats()
	s.DL1 = h.dl1.Stats()
	s.L2 = h.l2.Stats()
	return s
}

// Settle clears the in-flight fill tracker while keeping all cache
// contents. Sampled runs call it between detailed windows: fill
// completion times are absolute cycles of the window that issued them
// and would read as pending (or long past) on the next window's fresh
// clock, whereas the lines themselves are exactly the long-lived state
// functional warming preserves.
func (h *Hierarchy) Settle() { h.inflight.reset() }

// Reset restores the hierarchy to cold-cache state, reusing every
// backing array (no allocation).
func (h *Hierarchy) Reset() {
	h.il1.Reset()
	h.dl1.Reset()
	h.l2.Reset()
	h.inflight.reset()
	h.stats = HierarchyStats{}
}
