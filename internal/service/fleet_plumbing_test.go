package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// gate returns a run function that blocks until release is closed,
// for holding the queue at a known depth.
func gatedScheduler(t *testing.T, opt SchedulerOptions) (*Scheduler, chan struct{}) {
	t.Helper()
	s := NewScheduler(opt)
	release := make(chan struct{})
	inner := s.run
	s.run = func(spec sim.RunSpec, donor *mem.Hierarchy) (stats.Results, error) {
		<-release
		return inner(spec, donor)
	}
	return s, release
}

func TestAdmissionControl(t *testing.T) {
	s, release := gatedScheduler(t, SchedulerOptions{Workers: 1, MaxQueue: 2})

	b1, err := s.Submit([]Job{testJob("a", 32), testJob("b", 64)})
	if err != nil {
		t.Fatalf("submit within bound: %v", err)
	}
	// Queue now holds 2 unfinished misses: the node is at its bound.
	if err := s.Ready(); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Ready at bound = %v, want ErrOverloaded", err)
	}
	if _, err := s.Submit([]Job{testJob("c", 128)}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit over bound = %v, want ErrOverloaded", err)
	}
	if got := s.metrics.BatchesRejected.Load(); got != 1 {
		t.Fatalf("BatchesRejected = %d, want 1", got)
	}

	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := b1.Wait(ctx); err != nil {
		t.Fatalf("wait: %v", err)
	}
	// Drained queue: admission recovers without any reset call.
	waitUntil(t, func() bool { return s.Ready() == nil })
	if _, err := s.Submit([]Job{testJob("c", 128)}); err != nil {
		t.Fatalf("submit after drain-down: %v", err)
	}
}

// TestAdmissionIgnoresCacheHits: a batch of pure cache hits costs no
// simulation, so it is admitted even at the queue bound.
func TestAdmissionIgnoresCacheHits(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Workers: 1, MaxQueue: 1})
	b, err := s.Submit([]Job{testJob("h", 64)})
	if err != nil {
		t.Fatalf("seed submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := b.Wait(ctx); err != nil {
		t.Fatalf("seed wait: %v", err)
	}

	s2, release := gatedScheduler(t, SchedulerOptions{Workers: 1, MaxQueue: 1, Cache: s.cache})
	defer close(release)
	if _, err := s2.Submit([]Job{testJob("fill", 32)}); err != nil {
		t.Fatalf("fill submit: %v", err)
	}
	// Queue is at the bound; the all-hits batch must still pass.
	hb, err := s2.Submit([]Job{testJob("h", 64)})
	if err != nil {
		t.Fatalf("all-hits batch rejected at bound: %v", err)
	}
	if st := hb.Status(); st.State != StateDone || st.CacheHits != 1 {
		t.Fatalf("all-hits batch status = %+v, want done with 1 hit", st)
	}
}

func TestDrainRejectsAndCompletes(t *testing.T) {
	s, release := gatedScheduler(t, SchedulerOptions{Workers: 1})
	b, err := s.Submit([]Job{testJob("a", 32)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	s.StartDrain()
	if err := s.Ready(); !errors.Is(err, ErrDraining) {
		t.Fatalf("Ready while draining = %v, want ErrDraining", err)
	}
	if _, err := s.Submit([]Job{testJob("b", 64)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining = %v, want ErrDraining", err)
	}

	// Drain blocks until the in-flight point lands, then returns.
	done := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { done <- s.Drain(ctx) }()
	select {
	case err := <-done:
		t.Fatalf("Drain returned %v before in-flight work finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if st := b.Status(); st.State != StateDone {
		t.Fatalf("batch state after drain = %s, want done", st.State)
	}
}

// TestHTTPPlumbing drives the production endpoints over real HTTP:
// readiness flips with drain, /drainz initiates it, metrics render with
// live values, and admission errors map to 429/503 with Retry-After.
func TestHTTPPlumbing(t *testing.T) {
	s, release := gatedScheduler(t, SchedulerOptions{Workers: 1, MaxQueue: 1})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()
	client := &Client{BaseURL: srv.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if err := client.Ready(ctx); err != nil {
		t.Fatalf("Ready on idle node: %v", err)
	}
	if _, err := client.Submit(ctx, []Job{testJob("a", 32)}); err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Bound reached: submit → 429 + Retry-After, readiness → not ready.
	resp, err := http.Post(srv.URL+"/v1/batches", "application/json",
		strings.NewReader(`{"jobs":[{"name":"b","config":`+testJobConfigJSON(t, 64)+`,"trace":{"kernel":"stream","n":6000},"insts":1500}]}`))
	if err != nil {
		t.Fatalf("overload submit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 carried no Retry-After")
	}
	if err := client.Ready(ctx); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Ready over bound = %v, want ErrNotReady", err)
	}

	// Drain via the endpoint: readiness stays down even after the queue
	// empties, and submissions map to 503.
	dresp, err := http.Post(srv.URL+"/drainz", "", nil)
	if err != nil {
		t.Fatalf("drainz: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("drainz status = %d, want 200", dresp.StatusCode)
	}
	close(release)
	waitUntil(t, func() bool { return s.metrics.QueueDepth.Load() == 0 })
	if err := client.Ready(ctx); !errors.Is(err, ErrNotReady) {
		t.Fatalf("Ready while draining = %v, want ErrNotReady", err)
	}
	if _, err := client.Submit(ctx, []Job{testJob("c", 128)}); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("submit while draining = %v, want 503", err)
	}

	// Metrics reflect the node's history.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	body := buf.String()
	for _, want := range []string{
		"ooosim_batches_submitted_total 1",
		"ooosim_batches_rejected_total 2", // the 429 and the 503
		"ooosim_simulations_total 1",
		"ooosim_queue_depth 0",
		"ooosim_draining 1",
		"ooosim_ready 0",
		"ooosim_worker_slots 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q\n%s", want, body)
		}
	}

	// Liveness is not readiness: /healthz stays 200 throughout.
	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", hresp.StatusCode)
	}
}

// testJobConfigJSON marshals testJob's config for hand-built requests.
func testJobConfigJSON(t *testing.T, iq int) string {
	t.Helper()
	raw, err := json.Marshal(testJob("x", iq).Config)
	if err != nil {
		t.Fatalf("marshal config: %v", err)
	}
	return string(raw)
}

// TestDonorExchangeAdoptsFromHome boots two workers sharing a canonical
// peer list and runs the same snapshot group on both: exactly one node
// (the group's home) warms the donor, the other adopts it over HTTP,
// and both produce byte-identical results.
func TestDonorExchangeAdoptsFromHome(t *testing.T) {
	// Handlers are wired after the schedulers exist; the indirection
	// lets each exchange know both URLs up front.
	var handlers [2]http.Handler
	var servers [2]*httptest.Server
	for i := range servers {
		i := i
		servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handlers[i].ServeHTTP(w, r)
		}))
		defer servers[i].Close()
	}
	peers := []string{servers[0].URL, servers[1].URL}

	scheds := make([]*Scheduler, 2)
	for i := range scheds {
		scheds[i] = NewScheduler(SchedulerOptions{
			Workers: 2,
			Donors:  NewDonorExchange(peers[i], peers),
		})
		handlers[i] = NewHandler(scheds[i])
	}

	// Same group (same recipe + warm shape) on both nodes: three configs
	// differing only in IQ size share one donor.
	jobs := []Job{testJob("a", 32), testJob("b", 64), testJob("c", 128)}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	results := make([]BatchStatus, 2)
	for i, s := range scheds {
		b, err := s.Submit(jobs)
		if err != nil {
			t.Fatalf("node %d submit: %v", i, err)
		}
		st, err := b.Wait(ctx)
		if err != nil {
			t.Fatalf("node %d wait: %v", i, err)
		}
		if len(st.Errors) > 0 {
			t.Fatalf("node %d errors: %v", i, st.Errors)
		}
		results[i] = st
	}

	// Both nodes answered with byte-identical results: the adopted donor
	// forks exactly like the locally warmed one.
	for p := range jobs {
		if !bytes.Equal(results[0].Results[p], results[1].Results[p]) {
			t.Errorf("point %d differs between nodes", p)
		}
	}

	var adoptedTotal, builtTotal, shippedTotal uint64
	for i, s := range scheds {
		adopted, built, shipped, fails := s.Donors().Stats()
		t.Logf("node %d: adopted=%d built=%d shipped=%d fetchFails=%d", i, adopted, built, shipped, fails)
		if fails != 0 {
			t.Errorf("node %d had %d donor fetch failures", i, fails)
		}
		adoptedTotal += adopted
		builtTotal += built
		shippedTotal += shipped
	}
	// One group, two nodes: one build fleet-wide (on the home node,
	// possibly on demand), one adoption, one shipment.
	if builtTotal != 1 {
		t.Errorf("fleet built %d donors for 1 group, want exactly 1", builtTotal)
	}
	if adoptedTotal != 1 || shippedTotal != 1 {
		t.Errorf("adopted=%d shipped=%d, want 1 and 1", adoptedTotal, shippedTotal)
	}
}

// TestDonorEndpointContract covers the shipping endpoint directly:
// build-on-demand with a valid spec, 404 without one, and rejection of
// a spec that does not hash to the key.
func TestDonorEndpointContract(t *testing.T) {
	s := NewScheduler(SchedulerOptions{
		Donors: NewDonorExchange("", nil), // serve-only node
	})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	j := testJob("x", 64)
	spec := DonorSpec{Trace: j.Trace, Warm: mem.WarmKeyFor(j.Config)}
	key := DonorKey(spec.Trace, spec.Warm)

	// No spec, nothing warmed: 404.
	resp, err := http.Get(srv.URL + "/v1/donors/" + key)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unwarmed fetch = %d, want 404", resp.StatusCode)
	}

	// A spec that does not hash to the requested key is rejected before
	// any build (hand-built URL; the client always recomputes the key).
	otherSpec := DonorSpec{Trace: trace.Recipe{Kernel: trace.KernelStream, N: 4000}, Warm: spec.Warm}
	otherJSON, _ := json.Marshal(otherSpec)
	resp, err = http.Get(srv.URL + "/v1/donors/" + key + "?spec=" + base64.RawURLEncoding.EncodeToString(otherJSON))
	if err != nil {
		t.Fatalf("mismatched fetch: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mismatched spec/key fetch = %d, want 400", resp.StatusCode)
	}

	// With the right spec the endpoint builds on demand and ships a
	// snapshot that restores to the same warm key.
	dx := NewDonorExchange("", []string{srv.URL})
	donor, err := dx.fetch(srv.URL, spec)
	if err != nil {
		t.Fatalf("on-demand fetch: %v", err)
	}
	if donor.WarmKey() != spec.Warm {
		t.Fatalf("restored warm key %+v, want %+v", donor.WarmKey(), spec.Warm)
	}
	_, built, shipped, _ := s.Donors().Stats()
	if built != 1 || shipped != 1 {
		t.Fatalf("server built=%d shipped=%d, want 1 and 1", built, shipped)
	}
}

// waitUntil polls cond to true within a generous deadline.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition never became true")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
