package experiments

import (
	"context"

	"repro/internal/config"
)

// Figure10Delays are the SLIQ→IQ re-insertion delays the paper sweeps.
var Figure10Delays = []int{1, 4, 8, 12}

// Figure10Result holds IPC per (IQ size, re-insertion delay) with a
// 1024-entry SLIQ: the paper's demonstration that the slow lane can be
// a genuinely slow structure.
type Figure10Result struct {
	IQs    []int
	Delays []int
	// IPC[iq][delay].
	IPC map[int]map[int]float64
}

// Figure10 measures sensitivity to the wake start-up delay.
func Figure10(ctx context.Context, opt Options) (Figure10Result, error) {
	opt = opt.withDefaults()
	suite, err := opt.suite()
	if err != nil {
		return Figure10Result{}, err
	}

	var points []point
	for _, iq := range Figure9IQs {
		for _, d := range Figure10Delays {
			cfg := config.CheckpointDefault(iq, 1024)
			cfg.SLIQWakeDelay = d
			points = append(points, point{cfg: cfg})
		}
	}
	groups, err := opt.runPoints(ctx, points, suite)
	if err != nil {
		return Figure10Result{}, err
	}

	res := Figure10Result{
		IQs:    Figure9IQs,
		Delays: Figure10Delays,
		IPC:    map[int]map[int]float64{},
	}
	k := 0
	for _, iq := range res.IQs {
		res.IPC[iq] = map[int]float64{}
		for _, d := range res.Delays {
			res.IPC[iq][d] = meanIPC(groups[k])
			k++
		}
	}
	return res, nil
}

// MaxSlowdown returns the worst relative IPC loss of the largest delay
// versus the smallest, across IQ sizes (the paper reports ~1%).
func (r Figure10Result) MaxSlowdown() float64 {
	worst := 0.0
	first, last := r.Delays[0], r.Delays[len(r.Delays)-1]
	for _, iq := range r.IQs {
		slow := 1 - r.IPC[iq][last]/r.IPC[iq][first]
		if slow > worst {
			worst = slow
		}
	}
	return worst
}

// String renders the delay sensitivity table.
func (r Figure10Result) String() string {
	header := []string{"IQ"}
	for _, d := range r.Delays {
		header = append(header, f0(float64(d))+" cy")
	}
	rows := make([][]string, 0, len(r.IQs))
	for _, iq := range r.IQs {
		row := []string{f0(float64(iq))}
		for _, d := range r.Delays {
			row = append(row, f3(r.IPC[iq][d]))
		}
		rows = append(rows, row)
	}
	s := renderTable("Figure 10: sensitivity to SLIQ re-insertion delay (1024-entry SLIQ)", header, rows)
	s += f1(100*r.MaxSlowdown()) + "% worst-case slowdown from delay 1 to 12 (paper: ~1%)\n"
	return s
}
