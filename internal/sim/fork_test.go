package sim

import (
	"context"
	"testing"

	"repro/internal/config"
	"repro/internal/trace"
)

// TestSweepForkedMatchesColdAllPolicies is the sweep-level determinism
// contract of the snapshot-fork kernel: for every commit-policy family,
// the results a Sweep produces through forked warm donors (and shared
// worker arenas) are bit-equal to cold, standalone Run calls. Run under
// -race in CI, which also exercises concurrent donor sharing.
func TestSweepForkedMatchesColdAllPolicies(t *testing.T) {
	const insts = 8000
	n := trace.LenFor(insts)
	traces := []*trace.Trace{
		trace.Stream(n),
		trace.FPMix(n, 42),
	}
	cfgs := []config.Config{
		config.BaselineSized(128),
		config.CheckpointDefault(32, 512),
		config.AdaptiveDefault(32, 512),
		config.OracleDefault(),
	}
	var specs []RunSpec
	for _, cfg := range cfgs {
		for _, tr := range traces {
			specs = append(specs, RunSpec{Name: tr.Name(), Config: cfg, Trace: tr, Insts: insts})
		}
	}

	swept, err := Sweep(context.Background(), specs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		cold, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !swept[i].Equal(cold) {
			t.Fatalf("spec %d (%s / %s): forked sweep result diverged from cold run:\n%+v\nvs\n%+v",
				i, spec.Name, spec.Config.Summary(), swept[i], cold)
		}
	}
}

// TestGroupSpecsClustersByWarmShape: the sweep feed clusters specs by
// (trace, warm-relevant shape); timing-only differences share a group
// and geometry differences split one, while results indices stay
// untouched.
func TestGroupSpecsClustersByWarmShape(t *testing.T) {
	n := trace.LenFor(1000)
	trA, trB := trace.Stream(n), trace.Stencil(n)
	timing := config.BaselineSized(128)
	timing.MemoryLatency = 500 // timing only: same warm shape
	geom := config.BaselineSized(128)
	geom.L2.SizeBytes *= 2 // geometry: separate warm shape

	specs := []RunSpec{
		{Config: config.BaselineSized(128), Trace: trA},         // group 0
		{Config: config.BaselineSized(128), Trace: trB},         // group 1
		{Config: timing, Trace: trA},                            // group 0
		{Config: geom, Trace: trA},                              // group 2
		{Config: config.CheckpointDefault(64, 512), Trace: trA}, // group 0
	}
	bySpec, order := groupSpecs(specs)
	if bySpec[0] != bySpec[2] || bySpec[0] != bySpec[4] {
		t.Error("timing-only and policy-only differences must share a warm group")
	}
	if bySpec[0] == bySpec[1] {
		t.Error("different traces must split warm groups")
	}
	if bySpec[0] == bySpec[3] {
		t.Error("different cache geometries must split warm groups")
	}
	want := []int{0, 2, 4, 1, 3} // groups in first appearance order, members in spec order
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}
