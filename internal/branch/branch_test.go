package branch

import (
	"testing"
)

func TestGshareLearnsAlwaysTaken(t *testing.T) {
	g := NewGshare(10)
	pc := uint64(0x400)
	for i := 0; i < 100; i++ {
		g.Update(pc, true)
	}
	if !g.Predict(pc) {
		t.Error("always-taken branch should predict taken")
	}
	s := g.Stats()
	if s.Predictions != 100 {
		t.Fatalf("predictions = %d", s.Predictions)
	}
	// Counters start weakly taken, so an always-taken stream should
	// mispredict almost never.
	if s.Mispredicts > 2 {
		t.Errorf("too many mispredicts on a monotone stream: %d", s.Mispredicts)
	}
}

func TestGshareLearnsAlternating(t *testing.T) {
	g := NewGshare(12)
	pc := uint64(0x80)
	// Alternating pattern: with global history, gshare separates the
	// two contexts and should converge to near-perfect prediction.
	miss := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if g.Predict(pc) != taken {
			miss++
		}
		g.Update(pc, taken)
	}
	// Allow generous warmup; steady state must be learned.
	if miss > 200 {
		t.Errorf("alternating pattern not learned: %d misses of 2000", miss)
	}
}

func TestGshareHistorySnapshotRestore(t *testing.T) {
	g := NewGshare(10)
	for i := 0; i < 17; i++ {
		g.Update(uint64(i*4), i%3 == 0)
	}
	snap := g.HistorySnapshot()
	before := g.Predict(0x1234)
	g.Update(0x1234, true)
	g.Update(0x1238, false)
	if g.HistorySnapshot() == snap {
		t.Fatal("history should have advanced")
	}
	g.RestoreHistory(snap)
	if g.HistorySnapshot() != snap {
		t.Fatal("history not restored")
	}
	// Prediction at the restored history indexes the same counter
	// (which may have been trained meanwhile, but the index matches).
	_ = before
}

func TestGshareDistinguishesBranches(t *testing.T) {
	g := NewGshare(14)
	// Two branches with opposite biases at a fixed history.
	for i := 0; i < 500; i++ {
		g.RestoreHistory(0)
		g.Update(0x1000, true)
		g.RestoreHistory(0)
		g.Update(0x2000, false)
	}
	g.RestoreHistory(0)
	if !g.Predict(0x1000) {
		t.Error("biased-taken branch mispredicted")
	}
	g.RestoreHistory(0)
	if g.Predict(0x2000) {
		t.Error("biased-not-taken branch mispredicted")
	}
}

func TestGshareBitsPanics(t *testing.T) {
	for _, bits := range []int{0, 31} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bits=%d: expected panic", bits)
				}
			}()
			NewGshare(bits)
		}()
	}
}

func TestPerfect(t *testing.T) {
	p := NewPerfect()
	p.Update(0x40, true)
	p.Update(0x40, false)
	s := p.Stats()
	if s.Predictions != 2 || s.Mispredicts != 0 {
		t.Fatalf("perfect predictor stats: %+v", s)
	}
	if s.MispredictRate() != 0 {
		t.Error("perfect predictor never mispredicts")
	}
	p.RestoreHistory(p.HistorySnapshot()) // no-ops, must not panic
}

func TestStatic(t *testing.T) {
	s := NewStatic(true)
	s.Update(0x40, true)
	s.Update(0x40, false)
	st := s.Stats()
	if st.Predictions != 2 || st.Mispredicts != 1 {
		t.Fatalf("static stats: %+v", st)
	}
	if !s.Predict(0x99) {
		t.Error("static taken must predict taken")
	}
	nt := NewStatic(false)
	if nt.Predict(0x99) {
		t.Error("static not-taken must predict not-taken")
	}
}

func TestMispredictRateZeroOnUnused(t *testing.T) {
	var s Stats
	if s.MispredictRate() != 0 {
		t.Error("unused predictor must report rate 0")
	}
}

// The interface must be satisfied by all three predictors.
var (
	_ Predictor = (*Gshare)(nil)
	_ Predictor = (*Perfect)(nil)
	_ Predictor = (*Static)(nil)
)

func TestConfidenceStartsSaturated(t *testing.T) {
	e := NewConfidence(4, 15)
	if got := e.Value(0x40); got != 15 {
		t.Fatalf("cold counter = %d, want the ceiling (confident until proven otherwise)", got)
	}
}

func TestConfidenceResetsOnMispredictAndRebuilds(t *testing.T) {
	e := NewConfidence(4, 15)
	const pc = 0x80
	e.Update(pc, false)
	if got := e.Value(pc); got != 0 {
		t.Fatalf("after a misprediction counter = %d, want 0 (resetting scheme)", got)
	}
	for i := 1; i <= 20; i++ {
		e.Update(pc, true)
		want := uint8(i)
		if i > 15 {
			want = 15 // saturates at the ceiling
		}
		if got := e.Value(pc); got != want {
			t.Fatalf("after %d correct predictions counter = %d, want %d", i, got, want)
		}
	}
}

func TestConfidenceIndexesPerBranch(t *testing.T) {
	e := NewConfidence(4, 15)
	e.Update(0x100, false)
	if e.Value(0x104) != 15 {
		t.Error("a neighbouring branch must keep its own counter")
	}
	// PCs 2^(bits+2) apart alias to the same counter (the low two bits
	// are dropped: instructions are 4-byte aligned).
	if e.Value(0x100+16*4) != 0 {
		t.Error("aliasing PCs must share a counter")
	}
}

func TestConfidenceRejectsBadParameters(t *testing.T) {
	for _, f := range []func(){
		func() { NewConfidence(0, 15) },
		func() { NewConfidence(31, 15) },
		func() { NewConfidence(4, 0) },
		func() { NewConfidence(4, 256) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected a panic for invalid parameters")
				}
			}()
			f()
		}()
	}
}
