package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeKey fabricates a well-formed fingerprint (64 hex chars).
func fakeKey(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

func fakeVal(i int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"Cycles":%d}`, i))
}

// TestCacheLRUEviction: a memory-only cache holds exactly cap entries;
// the least recently used one falls out, and touching an entry
// protects it.
func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := c.Put(fakeKey(i), fakeVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 0 so key 1 is the LRU victim.
	if _, ok := c.Get(fakeKey(0)); !ok {
		t.Fatal("fresh entry missing")
	}
	if err := c.Put(fakeKey(2), fakeVal(2)); err != nil {
		t.Fatal(err)
	}
	if c.MemLen() != 2 {
		t.Errorf("memory tier holds %d entries, want 2", c.MemLen())
	}
	if _, ok := c.Get(fakeKey(1)); ok {
		t.Error("LRU entry survived eviction")
	}
	for _, i := range []int{0, 2} {
		raw, ok := c.Get(fakeKey(i))
		if !ok || !bytes.Equal(raw, fakeVal(i)) {
			t.Errorf("entry %d lost or corrupted: %s", i, raw)
		}
	}
}

// TestCacheDiskRoundTrip: entries survive process restart (a new Cache
// over the same dir), evicted entries re-load from disk, and a disk
// hit promotes back into the memory tier.
func TestCacheDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(fakeKey(0), fakeVal(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(fakeKey(1), fakeVal(1)); err != nil {
		t.Fatal(err) // evicts key 0 from memory; disk keeps it
	}
	if raw, ok := c.Get(fakeKey(0)); !ok || !bytes.Equal(raw, fakeVal(0)) {
		t.Errorf("evicted entry did not reload from disk: %s", raw)
	}

	// A fresh cache over the same directory sees every entry.
	c2, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		raw, ok := c2.Get(fakeKey(i))
		if !ok || !bytes.Equal(raw, fakeVal(i)) {
			t.Errorf("restart lost entry %d: %s", i, raw)
		}
	}
	if c2.MemLen() != 2 {
		t.Errorf("disk hits did not promote: memory tier holds %d, want 2", c2.MemLen())
	}

	// Layout: sharded by fingerprint prefix.
	want := filepath.Join(dir, fakeKey(0)[:2], fakeKey(0)+".json")
	if _, err := os.Stat(want); err != nil {
		t.Errorf("expected disk layout %s: %v", want, err)
	}
	// No stray temp files left behind.
	var stray []string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.Contains(filepath.Base(path), ".tmp") {
			stray = append(stray, path)
		}
		return nil
	})
	if len(stray) > 0 {
		t.Errorf("temp files left behind: %v", stray)
	}
}

// TestCacheCorruptDiskEntry: a torn or garbage file is a miss, not an
// error or a poisoned result.
func TestCacheCorruptDiskEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := fakeKey(0)
	if err := c.Put(key, fakeVal(0)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")
	if err := os.WriteFile(path, []byte(`{"Cycles":`), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key); ok {
		t.Error("corrupt disk entry served as a hit")
	}
}

// TestCacheMemoryOnly: without a dir, eviction is final.
func TestCacheMemoryOnly(t *testing.T) {
	c, err := NewCache(1, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put(fakeKey(0), fakeVal(0))
	c.Put(fakeKey(1), fakeVal(1))
	if _, ok := c.Get(fakeKey(0)); ok {
		t.Error("memory-only cache resurrected an evicted entry")
	}
}
