package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Client talks to an ooosimd daemon.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8321".
	BaseURL string
	// HTTPClient overrides http.DefaultClient (tests, timeouts).
	HTTPClient *http.Client
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// StatusError is a non-2xx server response, with the HTTP status code
// preserved so callers can react to backpressure (429) or drain (503)
// distinctly from hard failures.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("service: server: %s (HTTP %d)", e.Msg, e.Code)
	}
	return fmt.Sprintf("service: server returned HTTP %d", e.Code)
}

// decodeError surfaces the server's JSON error body.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var ae apiError
	json.Unmarshal(body, &ae)
	return &StatusError{Code: resp.StatusCode, Msg: ae.Error}
}

// Ready probes the daemon's readiness endpoint: nil means the node
// admits new batches; ErrNotReady (wrapping the server's reason) means
// it is alive but draining or over its admission bound. Transport
// errors return as-is — the node is not merely unready, it is gone.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/readyz"), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("%w: %s", ErrNotReady, strings.TrimSpace(string(body)))
}

// ErrNotReady reports a live node refusing new work (draining or over
// its admission bound); callers route elsewhere or back off.
var ErrNotReady = errors.New("service: node not ready")

// AwaitReady polls readiness until the node admits work or ctx expires.
// Transport errors keep polling (the node may still be booting).
func (c *Client) AwaitReady(ctx context.Context) error {
	for {
		if err := c.Ready(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("service: node %s never became ready: %w", c.BaseURL, ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Submit posts a batch and returns its submission-time status (cache
// hits are already complete in it).
func (c *Client) Submit(ctx context.Context, jobs []Job) (BatchStatus, error) {
	body, err := json.Marshal(submitRequest{Jobs: jobs})
	if err != nil {
		return BatchStatus{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/batches"), bytes.NewReader(body))
	if err != nil {
		return BatchStatus{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return BatchStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return BatchStatus{}, decodeError(resp)
	}
	var st BatchStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return BatchStatus{}, fmt.Errorf("service: decode submit response: %w", err)
	}
	return st, nil
}

// Status polls a batch.
func (c *Client) Status(ctx context.Context, id string) (BatchStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/batches/"+id), nil)
	if err != nil {
		return BatchStatus{}, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return BatchStatus{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return BatchStatus{}, decodeError(resp)
	}
	var st BatchStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return BatchStatus{}, fmt.Errorf("service: decode status: %w", err)
	}
	return st, nil
}

// Stream consumes a batch's NDJSON progress stream from the beginning
// (the server replays history), invoking fn per event until the final
// "done" event, a callback error, or ctx expiry.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/batches/"+id+"/events"), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20) // occupancy histograms are large
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("service: decode event: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
		if ev.Type == "done" {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("service: event stream: %w", err)
	}
	return fmt.Errorf("service: event stream ended before the batch finished")
}

// Run submits a batch, consumes its progress stream, and returns the
// decoded per-point results in submission order. onEvent, when
// non-nil, receives every event; for "result" events it also gets the
// decoded results (each point is decoded exactly once — occupancy
// histograms make Results expensive to re-parse). Any failed point
// fails the whole call.
func (c *Client) Run(ctx context.Context, jobs []Job, onEvent func(Event, *stats.Results)) ([]stats.Results, error) {
	st, err := c.Submit(ctx, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]stats.Results, len(jobs))
	got := make([]bool, len(jobs))
	var pointErrs []string
	err = c.Stream(ctx, st.ID, func(ev Event) error {
		var res *stats.Results
		switch ev.Type {
		case "result":
			if ev.Index >= 0 && ev.Index < len(out) {
				if err := json.Unmarshal(ev.Results, &out[ev.Index]); err != nil {
					return fmt.Errorf("service: batch %s: decode point %d: %w", st.ID, ev.Index, err)
				}
				got[ev.Index] = true
				res = &out[ev.Index]
			}
		case "error":
			pointErrs = append(pointErrs, fmt.Sprintf("%s: %s", ev.Name, ev.Error))
		}
		if onEvent != nil {
			onEvent(ev, res)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(pointErrs) > 0 {
		return nil, fmt.Errorf("service: batch %s: %d point(s) failed: %s",
			st.ID, len(pointErrs), strings.Join(pointErrs, "; "))
	}
	for i := range got {
		if !got[i] {
			return nil, fmt.Errorf("service: batch %s: point %d produced no result", st.ID, i)
		}
	}
	return out, nil
}

// SweepRunner adapts the client to the sweep-engine signature
// (experiments.Options.Runner): the same figure code then executes
// against the remote daemon's warm cache instead of the in-process
// pool. Progress and OnResult callbacks fire per streamed event, with
// cache hits marked in the progress line.
func (c *Client) SweepRunner() func(ctx context.Context, specs []sim.RunSpec, opt sim.Options) ([]stats.Results, error) {
	return func(ctx context.Context, specs []sim.RunSpec, opt sim.Options) ([]stats.Results, error) {
		// Route on readiness: a draining or backlogged daemon answers
		// /readyz with 503/429 semantics, and a sweep is interactive work
		// that should wait for admission rather than bounce off it.
		if err := c.AwaitReady(ctx); err != nil {
			return nil, err
		}
		jobs := make([]Job, len(specs))
		for i, spec := range specs {
			j, err := JobFromSpec(spec)
			if err != nil {
				return nil, err
			}
			jobs[i] = j
		}
		var onEvent func(Event, *stats.Results)
		if opt.Progress != nil || opt.OnResult != nil {
			onEvent = func(ev Event, res *stats.Results) {
				if res == nil {
					return // not a result event
				}
				spec := specs[ev.Index]
				if opt.Progress != nil {
					line := sim.ProgressLine(spec, *res)
					if ev.Cached {
						line += "  (cached)"
					}
					opt.Progress(ev.Done, ev.Total, line)
				}
				if opt.OnResult != nil {
					opt.OnResult(spec, *res)
				}
			}
		}
		return c.Run(ctx, jobs, onEvent)
	}
}
