// Command ooosimfleet is the fleet coordinator: it fronts N ooosimd
// workers with the same batch API one worker exposes, sharding each
// batch's points across the workers by result fingerprint.
//
// Usage:
//
//	ooosimfleet -worker URL [-worker URL ...]
//	            [-addr HOST:PORT] [-max-queue N]
//	            [-ping-interval D] [-ping-timeout D]
//	            [-breaker-threshold N] [-breaker-cooldown D]
//	            [-retry-budget N] [-drain-timeout D] [-v]
//
// Clients cannot tell the coordinator from a single daemon — the sweep
// runner, cmd/experiments -server, and cmd/ooosimload all work
// unchanged against it. Inside, identical points always route to the
// same worker (cross-node singleflight plus clean cache partitioning),
// concurrent batches sharing a point submit it downstream once, and a
// worker that dies mid-batch has its unfinished points re-routed to the
// survivors — results are byte-identical either way, because the
// simulator is deterministic.
//
// SIGINT or SIGTERM triggers a graceful drain, exactly like a worker.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
)

// workerList collects repeated -worker flags.
type workerList []string

func (w *workerList) String() string { return fmt.Sprint(*w) }
func (w *workerList) Set(v string) error {
	*w = append(*w, v)
	return nil
}

func main() {
	var workers workerList
	flag.Var(&workers, "worker", "worker base URL (repeat per worker)")
	addr := flag.String("addr", "127.0.0.1:8320", "listen address")
	maxQueue := flag.Int("max-queue", 0, "admission bound on queued points; 0 admits everything")
	pingInterval := flag.Duration("ping-interval", time.Second, "worker readiness probe interval")
	pingTimeout := flag.Duration("ping-timeout", 2*time.Second, "per-round readiness probe timeout")
	breakerThreshold := flag.Int("breaker-threshold", 3, "consecutive failures that open a worker's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "how long an open breaker refuses a worker before probation")
	retryBudget := flag.Int("retry-budget", 0, "node failures one point may survive before erroring; 0 = breaker-threshold+3")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "how long a signal-triggered drain waits for the queue")
	verbose := flag.Bool("v", false, "log every request")
	flag.Parse()

	coord, err := fleet.New(fleet.Options{
		Workers:          workers,
		MaxQueue:         *maxQueue,
		PingInterval:     *pingInterval,
		PingTimeout:      *pingTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		RetryBudget:      *retryBudget,
		Log:              log.Printf,
	})
	if err != nil {
		log.Fatalf("ooosimfleet: %v", err)
	}
	defer coord.Close()

	handler := fleet.NewHandler(coord)
	if *verbose {
		inner := handler
		handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			start := time.Now()
			inner.ServeHTTP(w, r)
			log.Printf("%s %s (%.1fms)", r.Method, r.URL.Path, float64(time.Since(start).Microseconds())/1000)
		})
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Same rationale as ooosimd: bound header reads and idle
		// connections, leave the streaming endpoints unbounded.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Printf("ooosimfleet: signal received, draining (timeout %s)", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := coord.Drain(dctx); err != nil {
			log.Printf("ooosimfleet: drain incomplete: %v", err)
		}
		sctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		srv.Shutdown(sctx)
	}()

	log.Printf("ooosimfleet: listening on %s, fronting %d worker(s)", *addr, len(workers))
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ooosimfleet: %v", err)
	}
	log.Printf("ooosimfleet: drained, exiting")
}
