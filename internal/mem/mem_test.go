package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func smallCache() *Cache {
	// 2 sets x 2 ways x 32-byte lines = 128 bytes.
	return NewCache(config.CacheConfig{SizeBytes: 128, Assoc: 2, LineBytes: 32, LatencyCycles: 2})
}

func TestCacheHitMiss(t *testing.T) {
	c := smallCache()
	if c.Access(0x1000) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access must hit")
	}
	if !c.Access(0x101F) {
		t.Fatal("same line must hit")
	}
	if c.Access(0x1020) {
		t.Fatal("next line must miss")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Misses != 2 || s.Hits() != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if got := s.MissRate(); got != 0.5 {
		t.Fatalf("miss rate %v, want 0.5", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := smallCache()
	// Three lines mapping to the same set (set index = bit 5).
	a, b, d := uint64(0x0000), uint64(0x0040), uint64(0x0080)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a becomes MRU
	c.Access(d) // evicts b (LRU)
	if !c.Probe(a) {
		t.Error("a should survive (MRU)")
	}
	if c.Probe(b) {
		t.Error("b should be evicted (LRU)")
	}
	if !c.Probe(d) {
		t.Error("d should be resident")
	}
}

func TestCacheProbeDoesNotTouch(t *testing.T) {
	c := smallCache()
	c.Access(0x0000)
	before := c.Stats()
	c.Probe(0x0000)
	c.Probe(0x9999)
	if c.Stats() != before {
		t.Error("Probe must not change statistics")
	}
}

func TestCacheReset(t *testing.T) {
	c := smallCache()
	c.Access(0x40)
	c.Reset()
	if c.Probe(0x40) {
		t.Error("Reset must empty the cache")
	}
	if c.Stats() != (CacheStats{}) {
		t.Error("Reset must clear stats")
	}
}

func TestLog2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two line")
		}
	}()
	NewCache(config.CacheConfig{SizeBytes: 96, Assoc: 1, LineBytes: 48, LatencyCycles: 1})
}

// TestCacheLRUModel compares the cache against a reference LRU model
// under random access streams.
func TestCacheLRUModel(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := smallCache()
		// Model: per set, slice of tags in MRU order, max 2 ways.
		model := map[uint64][]uint64{}
		for _, a16 := range addrs {
			addr := uint64(a16)
			tag := addr >> 5
			set := tag & 1
			tags := model[set]
			hit := false
			for i, tg := range tags {
				if tg == tag {
					copy(tags[1:i+1], tags[:i])
					tags[0] = tag
					hit = true
					break
				}
			}
			if !hit {
				tags = append([]uint64{tag}, tags...)
				if len(tags) > 2 {
					tags = tags[:2]
				}
				model[set] = tags
			}
			if got := c.Access(addr); got != hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Error(err)
	}
}

func defaultHierarchy() *Hierarchy {
	return NewHierarchy(config.Default())
}

func TestHierarchyLoadLatencies(t *testing.T) {
	h := defaultHierarchy()
	// Cold: DL1(2) + L2(10) + memory(1000).
	r := h.Load(0, 0x100000)
	if r.Done != 1012 || !r.MissedL2 {
		t.Fatalf("cold load: %+v, want done=1012 missedL2", r)
	}
	// While in flight, another load to the same line merges.
	r2 := h.Load(5, 0x100008)
	if r2.Done != 1012 || !r2.MissedL2 {
		t.Fatalf("merged load: %+v", r2)
	}
	// After the fill, the line hits in DL1.
	r3 := h.Load(2000, 0x100000)
	if r3.Done != 2002 || r3.MissedL2 {
		t.Fatalf("warm load: %+v, want done=2002 hit", r3)
	}
	st := h.Stats()
	if st.MemAccesses != 1 || st.MergedMisses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := defaultHierarchy()
	h.Load(0, 0x200000)
	// Evict from DL1 (32KB, 4-way, 32B lines: 256 sets) by loading many
	// lines mapping to the same DL1 set but different L2 sets.
	for i := 1; i <= 8; i++ {
		h.Load(2000+int64(i), 0x200000+uint64(i)<<13)
	}
	r := h.Load(60000, 0x200000)
	if r.MissedL2 {
		t.Fatal("line should still be in L2")
	}
	if r.Done != 60012 {
		t.Fatalf("L2 hit latency: done=%d, want 60012 (2+10)", r.Done)
	}
}

func TestHierarchyPerfectL2(t *testing.T) {
	cfg := config.Default()
	cfg.PerfectL2 = true
	h := NewHierarchy(cfg)
	r := h.Load(0, 0xABC000)
	if r.MissedL2 || r.Done != 12 {
		t.Fatalf("perfect L2 cold load: %+v, want done=12", r)
	}
	if h.WouldMissL2(0, 0xDEF000) {
		t.Error("perfect L2 never misses")
	}
}

func TestHierarchyStoreCommit(t *testing.T) {
	h := defaultHierarchy()
	h.StoreCommit(0x300000)
	if got := h.Stats().StoreWrites; got != 1 {
		t.Fatalf("store writes = %d", got)
	}
	// The stored line is now resident: loads hit.
	r := h.Load(100, 0x300000)
	if r.MissedL2 {
		t.Error("store should have allocated the line")
	}
}

func TestHierarchyFetch(t *testing.T) {
	h := defaultHierarchy()
	done := h.FetchLatency(0, 0x40)
	if done != 1012 {
		t.Fatalf("cold fetch done=%d, want 1012", done)
	}
	done = h.FetchLatency(2000, 0x40)
	if done != 2002 {
		t.Fatalf("warm fetch done=%d, want 2002", done)
	}
}

func TestPrimeFetch(t *testing.T) {
	h := defaultHierarchy()
	h.PrimeFetch(0x40)
	if got := h.FetchLatency(0, 0x40); got != 2 {
		t.Fatalf("primed fetch done=%d, want 2", got)
	}
	if h.Stats().IL1.Misses != 0 {
		t.Error("priming must not count misses")
	}
}

func TestWarmData(t *testing.T) {
	h := defaultHierarchy()
	h.WarmData(0x500000)
	if h.Stats().DL1.Accesses != 0 {
		t.Error("warmup must not count accesses")
	}
	r := h.Load(0, 0x500000)
	if r.MissedL2 || r.Done != 2 {
		t.Fatalf("warmed load: %+v, want DL1 hit", r)
	}
}

func TestWouldMissL2(t *testing.T) {
	h := defaultHierarchy()
	if !h.WouldMissL2(0, 0x600000) {
		t.Error("cold line should report a would-miss")
	}
	h.Load(0, 0x600000)
	if !h.WouldMissL2(5, 0x600000) {
		t.Error("in-flight line is still long-latency")
	}
	if h.WouldMissL2(5000, 0x600000) {
		t.Error("filled line should not miss")
	}
}

func TestHierarchyReset(t *testing.T) {
	h := defaultHierarchy()
	h.Load(0, 0x700000)
	h.Reset()
	if h.Stats().MemAccesses != 0 {
		t.Error("Reset must clear stats")
	}
	r := h.Load(0, 0x700000)
	if !r.MissedL2 {
		t.Error("Reset must cold the caches")
	}
}

// TestHierarchyMonotonicDone: completion times never precede issue.
func TestHierarchyMonotonicDone(t *testing.T) {
	h := defaultHierarchy()
	f := func(addrs []uint32, starts []uint16) bool {
		now := int64(0)
		for i, a := range addrs {
			if i < len(starts) {
				now += int64(starts[i] % 100)
			}
			r := h.Load(now, uint64(a))
			if r.Done < now+2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestPrefetcher(t *testing.T) {
	cfg := config.Default()
	cfg.PrefetchDegree = 2
	h := NewHierarchy(cfg)
	r := h.Load(0, 0x800000)
	if !r.MissedL2 {
		t.Fatal("demand miss expected")
	}
	if got := h.Stats().Prefetches; got != 2 {
		t.Fatalf("prefetches = %d, want 2", got)
	}
	// The next line arrives with the demand fill; after arrival it is
	// an L2 hit, not a memory access.
	r2 := h.Load(2000, 0x800040)
	if r2.MissedL2 {
		t.Fatal("prefetched line should hit after arrival")
	}
	if r2.Done != 2012 {
		t.Fatalf("prefetched hit done=%d, want L2 latency (2012)", r2.Done)
	}
	// A demand load racing the in-flight prefetch merges with it.
	h.Load(3000, 0x900000) // new miss prefetches 0x900040
	// Demand fill completes at 3000+2+10+1000 = 4012; the degree-1
	// prefetch lands one cycle later.
	r3 := h.Load(3001, 0x900040)
	if !r3.MissedL2 || r3.Done != 4013 {
		t.Fatalf("racing load should merge with the prefetch: %+v", r3)
	}
	if got := h.Stats().MemAccesses; got != 2 {
		t.Fatalf("memory accesses = %d, want 2 (prefetches not counted)", got)
	}
}

func TestPrefetcherDisabledByDefault(t *testing.T) {
	h := defaultHierarchy()
	h.Load(0, 0xA00000)
	if h.Stats().Prefetches != 0 {
		t.Fatal("prefetcher must be off in the paper's configuration")
	}
}
