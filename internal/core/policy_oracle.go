package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/rename"
	"repro/internal/stats"
)

// oraclePolicy is the unbounded-window limit baseline for Figure 1
// style studies: in-order retirement with no commit structure at all —
// the window list grows without bound and every finished head
// instruction retires the cycle it reaches the front, with no width
// limit. Throughput is then bounded only by the substrate the paper
// holds fixed (register file, issue queues, LSQ, memory ports — though
// instructions holding none of those, like issued branches, can occupy
// the window without limit), so the gap between this policy and any
// realisable one is exactly the cost of the commit mechanism.
type oraclePolicy struct {
	c *CPU
	// window holds the in-flight instructions in program order; the
	// masterList's amortised O(1) front/back removal makes in-order
	// retire and tail squash cheap at any occupancy.
	window masterList

	maxBurst uint64 // largest single-cycle retirement
}

func init() {
	RegisterCommitPolicy(config.CommitOracle, func(c *CPU) CommitPolicy {
		return &oraclePolicy{c: c}
	})
}

// Admit never stalls: the window is unbounded.
func (p *oraclePolicy) Admit(isa.Inst, int64) bool { return true }

// MakeRoom is a no-op.
func (p *oraclePolicy) MakeRoom() {}

// AllocateDest uses the conventional free-at-commit discipline, like
// the ROB baseline.
func (p *oraclePolicy) AllocateDest(dest isa.Reg) (rename.PhysReg, rename.PhysReg, bool) {
	return p.c.rt.AllocateROB(dest)
}

// UnwindDest reverses one conventional allocation.
func (p *oraclePolicy) UnwindDest(d *DynInst) {
	p.c.rt.UnwindROB(d.Inst.Dest, d.DestPhys, d.PrevPhys)
}

// Dispatched appends the instruction to the window.
func (p *oraclePolicy) Dispatched(d *DynInst) { p.window.push(d) }

// Completed is a no-op: Commit polls Done at the head.
func (p *oraclePolicy) Completed(*DynInst) {}

// Squashed is a no-op: ResolveMispredict removes victims from the
// window itself.
func (p *oraclePolicy) Squashed(*DynInst) {}

// Commit retires every finished instruction at the window head — the
// in-order walk of the ROB baseline with the width limit removed.
func (p *oraclePolicy) Commit() {
	c := p.c
	var burst uint64
	for p.window.len() > 0 && p.window.front().Done {
		d := p.window.popFront()
		if d.WrongPath || d.Squashed {
			panic(fmt.Sprintf("core: committing dead instruction %v", d))
		}
		if d.PrevPhys != rename.PhysNone {
			c.rt.Free(d.PrevPhys)
			c.producer[d.PrevPhys] = nil
		}
		if d.lsqe != nil {
			c.lq.Retire(d.lsqe, c.hier.StoreCommit)
			d.lsqe = nil
		}
		c.committed++
		c.inflight--
		c.lastCommitCycle = c.now
		c.pool.release(d)
		burst++
	}
	if burst > p.maxBurst {
		p.maxBurst = burst
	}
}

// DispatchStalled is a no-op: the oracle never creates a commit-side
// deadlock (the head always retires once finished).
func (p *oraclePolicy) DispatchStalled() {}

// NextRetireEvent reports "now" while the window head is finished
// (Commit would retire it this cycle) and -1 otherwise — identical to
// the ROB baseline with the width limit removed.
func (p *oraclePolicy) NextRetireEvent(now int64) int64 {
	if d := p.window.front(); d != nil && d.Done {
		return now
	}
	return -1
}

// ResolveMispredict squashes everything younger than the branch from
// the window tail (all wrong-path, since fetch diverged at the branch).
func (p *oraclePolicy) ResolveMispredict(b *DynInst) {
	c := p.c
	for p.window.len() > 0 && p.window.back().Seq > b.Seq {
		d := p.window.popBack()
		c.squashInst(d, true)
	}
	c.lq.SquashYounger(b.Seq + 1)
}

// RaiseException is a no-op, like the ROB baseline.
func (p *oraclePolicy) RaiseException(*DynInst) {}

// OccupancyBound: destination-less instructions (branches) hold neither
// a renameable register nor an LSQ slot once issued, so they can pile
// up in the window behind a slow head without structural limit — the
// only true bound on correct-path occupancy is the trace itself.
// Wrong-path occupancy is bounded by PhysRegs (every synthetic
// wrong-path op carries a destination).
func (p *oraclePolicy) OccupancyBound() int {
	return int(p.c.tr.Len()) + p.c.cfg.PhysRegs
}

// AddStats records the largest single-cycle retirement, the number a
// real commit port would have to sustain to match the limit.
func (p *oraclePolicy) AddStats(r *stats.Results) {
	if r.Policy == nil {
		r.Policy = make(map[string]uint64, 1)
	}
	r.Policy["oracle.max_retire_burst"] = p.maxBurst
}

// DebugState renders the window occupancy.
func (p *oraclePolicy) DebugState() string {
	return fmt.Sprintf(" window=%d", p.window.len())
}
