package core

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// sampleState is the long-lived microarchitectural substrate a sampled
// run threads through its detailed windows: the state that takes far
// longer than one window to converge (cache contents, branch-predictor
// tables, BTB targets, JRS confidence counters) and is therefore kept
// alive and functionally warmed across the fast-forward gaps, while
// short-lived pipeline state (queues, rename, in-flight misses) is
// rebuilt per window and re-converged by the discarded warmup portion.
type sampleState struct {
	hier *mem.Hierarchy
	pred branch.Predictor
	btb  *branch.BTB
	conf *branch.Confidence
}

// newSampleState builds the persistent substrate exactly as a cold CPU
// would: the hierarchy is warmed with the stream's whole footprint (see
// warmWhole; window CPUs adopt it and skip warming), the predictor
// machinery starts untrained.
func newSampleState(cfg config.Config, st *trace.InstStream) *sampleState {
	ss := &sampleState{hier: mem.NewHierarchy(cfg)}
	if cfg.PerfectBranchPrediction {
		ss.pred = branch.NewPerfect()
	} else {
		ss.pred = branch.NewGshare(cfg.BranchPredictorBits)
	}
	if st.Code() != nil && !cfg.PerfectBranchPrediction {
		ss.btb = branch.NewBTB(config.BTBSets, config.BTBWays)
	}
	if cfg.Commit == config.CommitAdaptive {
		ss.conf = branch.NewConfidence(cfg.AdaptiveConfidenceBits, cfg.AdaptiveConfidenceMax)
	}
	return ss
}

// warmWhole replays the whole stream's cache footprint through the
// hierarchy, reproducing warmHierarchy event-for-event: first-seen
// instruction lines (a global dedup, so a loop body's line is primed
// once at its first occurrence, exactly like trace.WarmFootprint)
// interleaved with every data access, then the wrong-path fetch
// region. This is what makes a sampled point comparable to its
// full-detail reference — both simulate over a hierarchy that saw the
// identical warm sequence, including the capacity evictions a
// footprint larger than the L2 inflicts on its own oldest lines. A
// just-in-time per-window warm would hide those evictions and read
// systematically fast. warm is a second stream over the same workload,
// consumed up to limit instructions (0 = until the stream ends, for
// programs, mirroring full detail warming the entire materialised
// trace regardless of the run budget).
func (ss *sampleState) warmWhole(warm *trace.InstStream, limit uint64) error {
	seen := make(map[uint64]struct{})
	var done uint64
	for limit == 0 || done < limit {
		chunk := 8192
		if limit > 0 && limit-done < uint64(chunk) {
			chunk = int(limit - done)
		}
		insts, err := warm.Peek(chunk)
		if err != nil {
			return err
		}
		if len(insts) == 0 {
			break
		}
		for i := range insts {
			in := &insts[i]
			line := in.PC &^ uint64(trace.WarmLineBytes-1)
			if _, ok := seen[line]; !ok {
				seen[line] = struct{}{}
				ss.hier.PrimeFetch(line)
			}
			if in.Op.IsMem() {
				ss.hier.WarmData(in.Addr)
			}
		}
		warm.Skip(len(insts))
		done += uint64(len(insts))
	}
	for pc := uint64(0xF0000000); pc < 0xF0000000+64*4; pc += 32 {
		ss.hier.PrimeFetch(pc) // wrong-path region
	}
	return nil
}

// settle clears the window-local residue the persistent substrate may
// carry between windows: in-flight fill timestamps (absolute cycles of
// the finished window's clock) and BTB resolution marks (positions into
// the finished window's trace).
func (ss *sampleState) settle() {
	ss.hier.Settle()
	if ss.btb != nil {
		ss.btb.ClearResolutions()
	}
}

// fastForward functionally executes up to n instructions from the
// stream: instruction-line and data accesses warm the caches quietly
// (no stats), branches train the predictor, confidence estimator and
// BTB. Returns how many instructions were consumed (< n only at end of
// stream). The predictor's Update counters do move here, but windows
// measure deltas between two snapshots taken inside the detailed
// portion, so fast-forward training never leaks into results.
func (ss *sampleState) fastForward(cfg config.Config, st *trace.InstStream, n uint64) (uint64, error) {
	var done uint64
	lastLine := ^uint64(0)
	for done < n {
		chunk := n - done
		if chunk > 8192 {
			chunk = 8192
		}
		insts, err := st.Peek(int(chunk))
		if err != nil {
			return done, err
		}
		if len(insts) == 0 {
			return done, nil
		}
		for i := range insts {
			in := &insts[i]
			if line := in.PC &^ uint64(trace.WarmLineBytes-1); line != lastLine {
				ss.hier.PrimeFetch(line)
				lastLine = line
			}
			if in.Op.IsMem() {
				ss.hier.WarmData(in.Addr)
			}
			if in.Op == isa.Branch {
				if !cfg.PerfectBranchPrediction {
					correct := ss.pred.Predict(in.PC) == in.Taken
					ss.pred.Update(in.PC, in.Taken)
					if ss.conf != nil {
						ss.conf.Update(in.PC, correct)
					}
				}
				if ss.btb != nil && in.Taken {
					ss.btb.Install(in.PC, in.Target)
				}
			}
		}
		st.Skip(len(insts))
		done += uint64(len(insts))
	}
	return done, nil
}

// RunSampled simulates the stream under the SMARTS sampling protocol:
// per period, simulate Warmup+Detail instructions in full pipeline
// detail on a fresh window CPU that adopts the persistent substrate,
// keeping only the post-warmup portion in the statistics (two
// snapshots of the same CPU, subtracted), then fast-forward the rest
// of the period with functional warming only. warm is a second,
// unconsumed stream over the same workload used for the one-time
// whole-footprint cache warm (see sampleState.warmWhole). opt.MaxInsts
// bounds the total stream coverage and must be set for synthetic
// workloads (their streams never end); program streams also stop when
// the program halts. The returned Results carry detail-window
// statistics only, plus the Sampled block with the per-window IPC
// spread.
func RunSampled(cfg config.Config, st, warm *trace.InstStream, sample trace.SampleSpec, opt RunOptions) (stats.Results, error) {
	if err := cfg.Validate(); err != nil {
		return stats.Results{}, err
	}
	if !sample.Enabled() {
		return stats.Results{}, fmt.Errorf("core: RunSampled without a sample spec")
	}
	if err := sample.Validate(); err != nil {
		return stats.Results{}, err
	}
	if opt.CollectOccupancy {
		return stats.Results{}, fmt.Errorf("core: occupancy collection is per-cycle state and cannot be sampled")
	}
	budget := opt.MaxInsts
	if budget == 0 && st.Code() == nil {
		return stats.Results{}, fmt.Errorf("core: sampled synthetic workload %q needs an instruction budget (the stream is unbounded)", st.Name())
	}
	if warm == nil {
		return stats.Results{}, fmt.Errorf("core: RunSampled needs a warm stream (a second stream over the same workload)")
	}

	ss := newSampleState(cfg, st)
	warmLimit := uint64(0) // programs: warm until the stream ends
	if st.Code() == nil {
		// Synthetic streams never end; warm what a materialised run of
		// this budget would have warmed.
		warmLimit = uint64(trace.LenFor(budget))
	}
	if err := ss.warmWhole(warm, warmLimit); err != nil {
		return stats.Results{}, err
	}
	arena := NewArena()
	ff := sample.Period - sample.Warmup - sample.Detail

	// Each period opens with its detailed window and fast-forwards the
	// remainder: the first window then starts at stream position zero,
	// so a program's startup phase is sampled in proportion like every
	// other phase instead of hiding inside the first gap. Gap lengths
	// are deterministically staggered around the nominal fast-forward
	// distance so windows cannot alias against periodic program phases
	// (systematic sampling with a fixed stride would measure the same
	// loop position every period and report a confidently wrong mean).
	var total stats.Results
	var samp stats.Sampled
	winIdx := uint64(0)
	for {
		remaining := ^uint64(0)
		if budget > 0 {
			pos := uint64(st.Pos())
			if pos >= budget {
				break
			}
			remaining = budget - pos
		}
		wd := sample.Warmup + sample.Detail
		if wd > remaining {
			wd = remaining
		}
		winLen := trace.LenFor(wd)
		win, err := st.Window(winLen)
		if err != nil {
			return stats.Results{}, err
		}
		if win.Len() == 0 {
			break
		}
		cpu, err := newCPU(cfg, win, ss.hier, arena, ss)
		if err != nil {
			return stats.Results{}, err
		}
		runOpt := RunOptions{
			MaxCycles:      opt.MaxCycles,
			WatchdogCycles: opt.WatchdogCycles,
			DisableSkip:    opt.DisableSkip,
		}
		var warmRes stats.Results
		warmTarget := sample.Warmup
		if winIdx == 0 {
			// The first window starts at stream position zero, where the
			// window CPU's state — cold pipeline, untrained predictor,
			// warmed caches — is identical to the full-detail reference's.
			// There is nothing stale to re-establish, and discarding a
			// warmup here would throw away the program's genuine startup
			// transient (predictor training, first wrong-path misses)
			// that full detail measures; window one is measured whole.
			warmTarget = 0
		}
		if warmTarget > wd {
			warmTarget = wd
		}
		if warmTarget > 0 {
			runOpt.MaxInsts = warmTarget
			warmRes = cpu.Run(runOpt)
		}
		runOpt.MaxInsts = wd
		fullRes := cpu.Run(runOpt)
		cpu.Recycle(arena)
		st.Skip(int(fullRes.Committed))

		measured := fullRes.Sub(warmRes)
		samp.WarmupInsts += warmRes.Committed
		if measured.Committed > 0 && measured.Cycles > 0 {
			samp.SampledInsts += measured.Committed
			samp.AddWindow(measured.IPC())
			total.Merge(measured)
		}
		ss.settle()
		if fullRes.Committed < wd {
			break // window ran out of stream: the program halted
		}

		remaining -= fullRes.Committed
		skip := ff
		if quarter := ff / 4; quarter > 0 {
			// Knuth multiplicative stagger: ff ± 25%, deterministic in
			// the window index so identical points replay identically.
			skip = ff - quarter + (winIdx*2654435761)%(2*quarter)
		}
		winIdx++
		if skip > remaining {
			skip = remaining
		}
		if skip == 0 {
			continue
		}
		skipped, err := ss.fastForward(cfg, st, skip)
		if err != nil {
			return stats.Results{}, err
		}
		samp.FastForwardInsts += skipped
		if skipped < skip {
			break // stream ended inside the gap
		}
	}
	samp.TotalInsts = uint64(st.Pos())
	total.Sampled = &samp
	if total.Name == "" {
		total.Name = fmt.Sprintf("%s/%s", cfg.Commit, st.Name())
	}
	return total, nil
}
