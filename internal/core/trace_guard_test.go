package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/trace"
)

// TestRunNeverMutatesTrace is the contract the parallel sweep engine
// (internal/sim) relies on: a Trace is shared read-only across
// concurrently running CPUs, so Run must never write through it. The
// test snapshots every instruction before the run and compares after.
func TestRunNeverMutatesTrace(t *testing.T) {
	const insts = 3_000
	n := trace.LenFor(insts)
	for _, tc := range []struct {
		name string
		cfg  config.Config
	}{
		{"rob", config.BaselineSized(128)},
		{"checkpoint", config.CheckpointDefault(64, 512)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr := trace.FPMix(n, 42)
			before := make([]isa.Inst, tr.Len())
			for i := int64(0); i < tr.Len(); i++ {
				before[i] = tr.At(i)
			}

			cpu, err := New(tc.cfg, tr)
			if err != nil {
				t.Fatal(err)
			}
			res := cpu.Run(RunOptions{MaxInsts: insts})
			if res.Committed == 0 {
				t.Fatal("run committed nothing; mutation check is vacuous")
			}

			for i := int64(0); i < tr.Len(); i++ {
				if tr.At(i) != before[i] {
					t.Fatalf("%s: Run mutated trace at %d: %v -> %v",
						tc.name, i, before[i], tr.At(i))
				}
			}
		})
	}
}
