package service

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// SchedulerOptions tunes a Scheduler.
type SchedulerOptions struct {
	// Workers bounds the simulation pool shared across every in-flight
	// batch; <= 0 uses GOMAXPROCS. Cache lookups and event delivery
	// never occupy a worker slot — only actual simulation does.
	Workers int
	// Cache is the result store; nil builds a memory-only cache with
	// DefaultCacheEntries.
	Cache *Cache
	// MaxBatches bounds how many finished batches stay pollable before
	// the oldest are forgotten; <= 0 uses 256.
	MaxBatches int
}

// Scheduler executes batches of Jobs. Submission splits each batch into
// cache hits (answered immediately, no simulation) and misses; misses
// run through the simulator on the shared bounded pool, deduplicated by
// fingerprint so concurrent identical submissions — within one batch or
// across batches — simulate once and share the result.
type Scheduler struct {
	cache  *Cache
	sem    chan struct{}
	flight flightGroup
	traces traceCache

	// run executes one materialised point; sim.Run in production, a
	// counting wrapper in tests.
	run func(sim.RunSpec) (stats.Results, error)

	mu         sync.Mutex
	batches    map[string]*Batch
	order      []string // submission order, for bounded retention
	nextID     int
	maxBatches int
}

// NewScheduler builds a scheduler.
func NewScheduler(opt SchedulerOptions) *Scheduler {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cache := opt.Cache
	if cache == nil {
		cache, _ = NewCache(0, "") // memory-only construction cannot fail
	}
	maxBatches := opt.MaxBatches
	if maxBatches <= 0 {
		maxBatches = 256
	}
	return &Scheduler{
		cache:      cache,
		sem:        make(chan struct{}, workers),
		run:        sim.Run,
		batches:    map[string]*Batch{},
		maxBatches: maxBatches,
	}
}

// Submit validates and fingerprints every job, registers the batch, and
// returns it with cache hits already completed; misses execute
// asynchronously on the shared pool. An invalid job rejects the whole
// batch (nothing runs).
func (s *Scheduler) Submit(jobs []Job) (*Batch, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("service: empty batch")
	}
	fps := make([]string, len(jobs))
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("service: job %d (%s): %w", i, j.label(), err)
		}
		fp, err := j.Fingerprint()
		if err != nil {
			return nil, fmt.Errorf("service: job %d (%s): %w", i, j.label(), err)
		}
		fps[i] = fp
	}

	s.mu.Lock()
	s.nextID++
	b := newBatch(fmt.Sprintf("b%d", s.nextID), append([]Job(nil), jobs...), fps)
	s.batches[b.id] = b
	s.order = append(s.order, b.id)
	for len(s.order) > s.maxBatches {
		// Only retire finished batches; a pathological flood of
		// still-running batches stays addressable.
		victim := s.batches[s.order[0]]
		if victim != nil && victim.Status().State == StateRunning {
			break
		}
		delete(s.batches, s.order[0])
		s.order = s.order[1:]
	}
	s.mu.Unlock()

	for i := range b.jobs {
		if raw, ok := s.cache.Get(fps[i]); ok {
			b.complete(i, raw, true, nil)
		} else {
			go s.runJob(b, i)
		}
	}
	return b, nil
}

// Batch returns a previously submitted batch by ID.
func (s *Scheduler) Batch(id string) (*Batch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.batches[id]
	return b, ok
}

// runJob executes one cache miss: singleflight by fingerprint, then a
// worker slot, then trace materialisation and simulation, then cache
// fill. The result lands in the batch whatever the path. A point that
// avoided simulation after all — the in-flight cache re-check hit, or
// the flight deduplicated us against another submission's run — still
// reports as cached.
func (s *Scheduler) runJob(b *Batch, i int) {
	job, fp := b.jobs[i], b.fps[i]
	lateHit := false
	raw, shared, err := s.flight.Do(fp, func() (json.RawMessage, error) {
		// Re-check under the flight: another submission may have
		// finished (and cached) this point between our Get and here.
		if raw, ok := s.cache.Get(fp); ok {
			lateHit = true
			return raw, nil
		}
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		tr, err := s.traces.get(job.Trace)
		if err != nil {
			return nil, err
		}
		res, err := s.run(sim.RunSpec{
			Name:             job.label(),
			Config:           job.Config,
			Trace:            tr,
			Insts:            job.Insts,
			CollectOccupancy: job.CollectOccupancy,
		})
		if err != nil {
			return nil, err
		}
		raw, err := json.Marshal(res)
		if err != nil {
			return nil, err
		}
		if err := s.cache.Put(fp, raw); err != nil {
			// A cache-fill failure (disk full, permissions) must not
			// fail the run: the result is in hand.
			return raw, nil
		}
		return raw, nil
	})
	b.complete(i, raw, err == nil && (shared || lateHit), err)
}

// traceCache memoises materialised traces by canonical recipe string so
// a batch sweeping many configurations over few workloads generates
// each workload once. Generation is deduplicated per recipe; the memo
// is dropped wholesale when it grows past a bound (distinct recipes are
// few in practice — a figure uses six).
type traceCache struct {
	mu sync.Mutex
	m  map[string]*traceEntry
}

type traceEntry struct {
	once sync.Once
	tr   *trace.Trace
	err  error
}

// traceCacheLimit bounds the memo; 64 recipes at figure sizes is a few
// hundred MB, the most a daemon should pin for workload reuse.
const traceCacheLimit = 64

func (tc *traceCache) get(r trace.Recipe) (*trace.Trace, error) {
	key := r.String()
	tc.mu.Lock()
	if tc.m == nil {
		tc.m = map[string]*traceEntry{}
	}
	e, ok := tc.m[key]
	if !ok {
		if len(tc.m) >= traceCacheLimit {
			tc.m = map[string]*traceEntry{}
		}
		e = &traceEntry{}
		tc.m[key] = e
	}
	tc.mu.Unlock()
	e.once.Do(func() { e.tr, e.err = r.Materialise() })
	return e.tr, e.err
}
