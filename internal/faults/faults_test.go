package faults

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// drainDecisions pulls n decisions for site from a fresh injector over
// plan.
func drainDecisions(plan Plan, site string, n int) []Decision {
	in := NewInjector(plan)
	out := make([]Decision, n)
	for i := range out {
		out[i] = in.Decide(site)
	}
	return out
}

func TestInjectorDeterministicPerSite(t *testing.T) {
	plan := AggressivePlan(42)
	a := drainDecisions(plan, "http:worker-1", 500)
	b := drainDecisions(plan, "http:worker-1", 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, a[i], b[i])
		}
	}
	// A site's sequence must not depend on traffic at other sites.
	in := NewInjector(plan)
	var c []Decision
	for i := 0; i < 500; i++ {
		in.Decide("donor:other")
		in.Decide("cachefs:read")
		c = append(c, in.Decide("http:worker-1"))
	}
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("decision %d perturbed by other sites: %+v vs %+v", i, a[i], c[i])
		}
	}
}

func TestInjectorSeedsDiffer(t *testing.T) {
	a := drainDecisions(AggressivePlan(1), "http:w", 200)
	b := drainDecisions(AggressivePlan(2), "http:w", 200)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("different seeds produced identical decision sequences")
	}
}

func TestInjectorRuleMatching(t *testing.T) {
	plan := Plan{Seed: 7, Rules: map[string]Rule{
		"http:":        {Drop: 1},
		"http:special": {Delay: 1, MaxDelay: time.Millisecond},
	}}
	in := NewInjector(plan)
	if d := in.Decide("http:worker"); d.Act != Drop {
		t.Fatalf("prefix rule not applied: %+v", d)
	}
	if d := in.Decide("http:special-node"); d.Act != Delay {
		t.Fatalf("longest prefix not preferred: %+v", d)
	}
	if d := in.Decide("unruled:site"); d.Act != None {
		t.Fatalf("unmatched site injected: %+v", d)
	}
}

func TestInjectorLimit(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Rules: map[string]Rule{"s": {Drop: 1, Limit: 2}}})
	got := 0
	for i := 0; i < 10; i++ {
		if in.Decide("s").Act == Drop {
			got++
		}
	}
	if got != 2 {
		t.Fatalf("Limit=2 injected %d faults", got)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if d := in.Decide("anything"); d.Act != None {
		t.Fatalf("nil injector decided %+v", d)
	}
	if st := in.Stats(); st != nil {
		t.Fatalf("nil injector stats = %v", st)
	}
}

func TestCorruptBytesAlwaysChanges(t *testing.T) {
	for _, n := range []int{1, 2, 7, 512, 100_000} {
		b := bytes.Repeat([]byte{0xAA}, n)
		c := CorruptBytes(99, b)
		if bytes.Equal(b, c) {
			t.Fatalf("len=%d: corruption was a no-op", n)
		}
		if len(c) != len(b) {
			t.Fatalf("len changed: %d -> %d", len(b), len(c))
		}
	}
}

type hintedError struct{ d time.Duration }

func (e *hintedError) Error() string                         { return "backpressure" }
func (e *hintedError) TransientFault() bool                  { return true }
func (e *hintedError) RetryAfterHint() (time.Duration, bool) { return e.d, true }

func TestRetrierAttemptsAndClassification(t *testing.T) {
	calls := 0
	err := (&Retrier{MaxAttempts: 4, BaseDelay: time.Microsecond}).Do(context.Background(), func() error {
		calls++
		return MarkTransient(errors.New("flaky"))
	})
	if err == nil || calls != 4 {
		t.Fatalf("want 4 attempts then failure, got calls=%d err=%v", calls, err)
	}

	calls = 0
	err = (&Retrier{MaxAttempts: 4, BaseDelay: time.Microsecond}).Do(context.Background(), func() error {
		calls++
		return errors.New("terminal")
	})
	if err == nil || calls != 1 {
		t.Fatalf("non-transient error retried: calls=%d err=%v", calls, err)
	}

	calls = 0
	err = (&Retrier{MaxAttempts: 4, BaseDelay: time.Microsecond}).Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return MarkTransient(errors.New("flaky"))
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("want success on attempt 3, got calls=%d err=%v", calls, err)
	}
}

func TestRetrierHonoursRetryAfter(t *testing.T) {
	hint := 30 * time.Millisecond
	var sleeps []time.Duration
	r := &Retrier{
		MaxAttempts: 2,
		BaseDelay:   time.Microsecond,
		OnRetry:     func(_ int, _ error, d time.Duration) { sleeps = append(sleeps, d) },
	}
	start := time.Now()
	_ = r.Do(context.Background(), func() error { return &hintedError{d: hint} })
	if len(sleeps) != 1 || sleeps[0] != hint {
		t.Fatalf("Retry-After hint not honoured: sleeps=%v", sleeps)
	}
	if elapsed := time.Since(start); elapsed < hint {
		t.Fatalf("slept %v, want >= %v", elapsed, hint)
	}
}

func TestRetrierContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	r := &Retrier{MaxAttempts: 10, BaseDelay: time.Hour}
	err := r.Do(ctx, func() error {
		calls++
		cancel()
		return MarkTransient(errors.New("flaky"))
	})
	if calls != 1 {
		t.Fatalf("retried across cancellation: calls=%d", calls)
	}
	if err == nil {
		t.Fatalf("want error after cancellation")
	}
}

func TestTransientClassification(t *testing.T) {
	if Transient(nil) {
		t.Fatal("nil transient")
	}
	if Transient(errors.New("boring")) {
		t.Fatal("plain error transient")
	}
	if Transient(context.Canceled) || Transient(context.DeadlineExceeded) {
		t.Fatal("context errors must not be transient")
	}
	if !Transient(io.ErrUnexpectedEOF) {
		t.Fatal("truncated read not transient")
	}
	if !Transient(MarkTransient(errors.New("x"))) {
		t.Fatal("marked error not transient")
	}
	if !Transient(fmt.Errorf("wrap: %w", &InjectedError{Site: "s"})) {
		t.Fatal("injected drop not transient")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clock := time.Unix(0, 0)
	b := &Breaker{Threshold: 2, Cooldown: time.Minute}
	b.now = func() time.Time { return clock }

	if !b.Allow() || b.State() != "closed" {
		t.Fatalf("new breaker not closed: allow=%v state=%s", b.Allow(), b.State())
	}
	if opened := b.Failure(); opened {
		t.Fatal("opened below threshold")
	}
	if opened := b.Failure(); !opened {
		t.Fatal("did not open at threshold")
	}
	if b.Allow() || b.State() != "open" {
		t.Fatalf("open breaker allowed traffic: state=%s", b.State())
	}
	// A failure while open must not re-report the transition.
	if opened := b.Failure(); opened {
		t.Fatal("open->open reported as a fresh transition")
	}

	clock = clock.Add(2 * time.Minute)
	if !b.Allow() || b.State() != "half-open" {
		t.Fatalf("cooldown did not half-open: state=%s", b.State())
	}
	// Probation failure re-opens with a fresh cooldown.
	b.Failure()
	if b.Allow() || b.State() != "open" {
		t.Fatalf("half-open failure did not re-open: state=%s", b.State())
	}

	clock = clock.Add(2 * time.Minute)
	b.Success()
	if !b.Allow() || b.State() != "closed" {
		t.Fatalf("success did not close: state=%s", b.State())
	}
	// Closing resets the consecutive-failure count.
	if opened := b.Failure(); opened {
		t.Fatal("stale failure count survived Success")
	}
}

func TestRoundTripperActions(t *testing.T) {
	var served int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		fmt.Fprint(w, "payload-payload-payload")
	}))
	defer srv.Close()

	get := func(rt http.RoundTripper) (*http.Response, []byte, error) {
		c := &http.Client{Transport: rt}
		resp, err := c.Get(srv.URL)
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp, b, err
	}

	// Drop: transient error, nothing served.
	served = 0
	rt := &RoundTripper{Inject: NewInjector(Plan{Seed: 1, Rules: map[string]Rule{"": {Drop: 1}}})}
	if _, _, err := get(rt); err == nil || !Transient(err) {
		t.Fatalf("drop: want transient error, got %v", err)
	}
	if served != 0 {
		t.Fatalf("dropped request reached the server")
	}

	// Error: synthesized status with Retry-After, nothing served.
	served = 0
	rt = &RoundTripper{Inject: NewInjector(Plan{Seed: 1, Rules: map[string]Rule{"": {Error: 1, ErrorStatus: 429}}})}
	resp, _, err := get(rt)
	if err != nil || resp.StatusCode != 429 {
		t.Fatalf("error: want synthesized 429, got resp=%v err=%v", resp, err)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("synthesized 429 missing Retry-After")
	}
	if served != 0 {
		t.Fatalf("error-injected request reached the server")
	}

	// Corrupt: body bytes flipped, request served.
	served = 0
	rt = &RoundTripper{Inject: NewInjector(Plan{Seed: 1, Rules: map[string]Rule{"": {Corrupt: 1}}})}
	_, body, err := get(rt)
	if err != nil || served != 1 {
		t.Fatalf("corrupt: served=%d err=%v", served, err)
	}
	if string(body) == "payload-payload-payload" {
		t.Fatalf("corrupt action left body intact")
	}

	// Custom site names route to their own rules.
	rt = &RoundTripper{
		Inject: NewInjector(Plan{Seed: 1, Rules: map[string]Rule{"donor:": {Drop: 1}}}),
		Site:   func(r *http.Request) string { return "donor:" + r.URL.Host },
	}
	if _, _, err := get(rt); err == nil {
		t.Fatalf("site-scoped rule not applied")
	}
}

func TestOSFSWriteFileAtomicAndReadable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.json")
	if err := (OSFS{}).WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := (OSFS{}).ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("round trip: %q %v", b, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp file leaked: %s", e.Name())
		}
	}
}

func TestChaosFSCorruptRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.json")
	if err := os.WriteFile(path, []byte("stable-bytes-here"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := ChaosFS{
		Base:   OSFS{},
		Inject: NewInjector(Plan{Seed: 3, Rules: map[string]Rule{"cachefs:read": {Corrupt: 1}}}),
		Site:   "cachefs",
	}
	b, err := fs.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) == "stable-bytes-here" {
		t.Fatalf("corrupt read returned intact bytes")
	}
	// The file on disk is untouched.
	raw, _ := os.ReadFile(path)
	if string(raw) != "stable-bytes-here" {
		t.Fatalf("corrupt read mutated the file")
	}
}

func TestChaosFSLostWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.json")
	fs := ChaosFS{
		Base:   OSFS{},
		Inject: NewInjector(Plan{Seed: 3, Rules: map[string]Rule{"cachefs:write": {Drop: 1}}}),
		Site:   "cachefs",
	}
	if err := fs.WriteFile(path, []byte("data"), 0o644); err != nil {
		t.Fatalf("lost write must report success, got %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("dropped write persisted")
	}
}

func TestRetrierConcurrent(t *testing.T) {
	r := &Retrier{MaxAttempts: 3, BaseDelay: time.Microsecond}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := 0
			_ = r.Do(context.Background(), func() error {
				n++
				if n < 2 {
					return MarkTransient(errors.New("x"))
				}
				return nil
			})
		}()
	}
	wg.Wait()
}
