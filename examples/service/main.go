// Service walkthrough: boot the simulation service in-process, submit
// a batch through the Go client, watch the progress stream, then
// resubmit and watch the content-addressed cache answer every point
// without simulation.
//
//	go run ./examples/service
//
// Against a long-running daemon the flow is identical — start
// `go run ./cmd/ooosimd -cache-dir /tmp/ooosim-cache` and point
// service.Client at it.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/config"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	// An in-process daemon: scheduler + HTTP handler on a loopback
	// port. The cache here is memory-only; cmd/ooosimd adds the disk
	// tier with -cache-dir.
	sched := service.NewScheduler(service.SchedulerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, service.NewHandler(sched))
	client := &service.Client{BaseURL: "http://" + ln.Addr().String()}
	ctx := context.Background()

	// A batch is declarative: configurations plus trace *recipes* —
	// the workload ships as a few bytes and is generated (once) on the
	// server. This one is a slice of the paper's Figure 9 grid.
	const insts = 20_000
	recipe := trace.Recipe{Kernel: trace.KernelFPMix, N: trace.LenFor(insts), Seed: 42}
	var jobs []service.Job
	for _, iq := range []int{32, 64, 128} {
		jobs = append(jobs, service.Job{
			Name:   fmt.Sprintf("cooo-%d", iq),
			Config: config.CheckpointDefault(iq, 1024),
			Trace:  recipe,
			Insts:  insts,
		})
	}
	jobs = append(jobs, service.Job{
		Name:   "baseline-128",
		Config: config.BaselineSized(128),
		Trace:  recipe,
		Insts:  insts,
	})

	run := func(label string) {
		start := time.Now()
		hits := 0
		results, err := client.Run(ctx, jobs, func(ev service.Event, _ *stats.Results) {
			if ev.Type != "result" {
				return
			}
			cached := ""
			if ev.Cached {
				cached = "  (cached)"
				hits++
			}
			fmt.Printf("  [%d/%d] %-12s done%s\n", ev.Done, ev.Total, ev.Name, cached)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d points, %d cache hits, %.2fs\n", label, len(results), hits, time.Since(start).Seconds())
		for i, res := range results {
			fmt.Printf("  %-12s IPC=%.3f\n", jobs[i].Name, res.IPC())
		}
		fmt.Println()
	}

	fmt.Println("cold submission (every point simulates):")
	run("cold")
	fmt.Println("warm submission (identical batch, content-addressed hits):")
	run("warm")
}
