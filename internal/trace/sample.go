package trace

import "fmt"

// SampleSpec declares SMARTS-style sampled simulation over a workload's
// dynamic stream: per period of Period instructions, the harness
// fast-forwards Period-Warmup-Detail instructions in functional-warming
// mode (caches, BTB, branch predictor and confidence estimator are
// trained, no pipeline timing), then simulates Warmup+Detail
// instructions in full detail and keeps only the Detail portion in the
// statistics. The zero value means "not sampled" and is omitted from
// every wire form, so non-sampled encodings are byte-identical to the
// pre-sampling ones.
type SampleSpec struct {
	// Warmup is the number of detailed instructions simulated before
	// each measured window to re-establish short-lived pipeline state
	// (queues, in-flight misses); their statistics are discarded.
	Warmup uint64 `json:"warmup,omitempty"`
	// Detail is the number of detailed instructions measured per window.
	Detail uint64 `json:"detail,omitempty"`
	// Period is the total instructions per sampling period (fast-forward
	// plus Warmup plus Detail).
	Period uint64 `json:"period,omitempty"`
}

// Enabled reports whether the spec requests sampling (zero value: no).
func (s SampleSpec) Enabled() bool { return s != SampleSpec{} }

// Validate reports a nonsensical sampling request.
func (s SampleSpec) Validate() error {
	if !s.Enabled() {
		return nil
	}
	if s.Detail < 1 {
		return fmt.Errorf("trace: sample %s: detail window must be >= 1", s)
	}
	if s.Warmup+s.Detail > s.Period {
		return fmt.Errorf("trace: sample %s: warmup+detail exceed the period", s)
	}
	return nil
}

// String renders the canonical form that extends a recipe's fingerprint
// identity (see PointString). Every field is always present so the
// encoding cannot drift with omission rules.
func (s SampleSpec) String() string {
	return fmt.Sprintf("sample/w=%d/d=%d/p=%d", s.Warmup, s.Detail, s.Period)
}

// DefaultSample is the sampling regime of the stock sampled experiments:
// 10% of each period in detail, half of it warmup (10k + 10k per 200k).
// The long warmup matters at kilo-cycle memory latencies, where a
// window must re-establish steady-state miss overlap and the cache
// pollution of speculative wrong paths before measuring; 2k-instruction
// warmups read measurably fast on the memory-bound programs. Holds
// per-program IPC error within the reported confidence interval on the
// program suite while cutting wall time by well over the 5x target.
func DefaultSample() SampleSpec {
	return SampleSpec{Warmup: 10_000, Detail: 10_000, Period: 200_000}
}

// PointString renders the canonical workload identity of a point: the
// recipe string alone for full-detail points (bit-compatible with every
// fingerprint ever issued), with the sample spec appended for sampled
// ones. No recipe can render the "/sample/" suffix itself, so sampled
// points occupy fresh, disjoint fingerprint keys — the same zero-drift
// extension rule the program kernel used (see sim.FingerprintVersion).
func PointString(r Recipe, s SampleSpec) string {
	if !s.Enabled() {
		return r.String()
	}
	return r.String() + "/" + s.String()
}
