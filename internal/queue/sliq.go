package queue

import (
	"fmt"

	"repro/internal/rename"
)

// SLIQ is the Slow Lane Instruction Queue of the paper's section 3: a
// large, cheap, in-order secondary buffer holding instructions that
// depend on long-latency loads. It needs no wakeup CAM — each entry is
// tagged with the destination register of the long-latency load it
// transitively depends on (its trigger). When the trigger register is
// written, a wake process begins: after a configurable start-up delay,
// entries re-enter the issue queue at a configurable width per cycle,
// oldest first ("linearly from one point", as the paper puts it).
//
// Entries recycle through an internal free list and the trigger index is
// a slice over the physical-register space, so steady-state inserts and
// trigger writes allocate nothing.
type SLIQ[P any] struct {
	capacity int
	delay    int64
	width    int

	occupied int
	// waiting[reg] holds the not-yet-woken entries tagged with reg.
	waiting [][]*sliqEntry[P]
	// wakeable orders woken entries by sequence number (min-heap).
	wakeable []*sliqEntry[P]
	// free recycles entry records (squash-on-rollback and drain both
	// feed it; Insert consumes it).
	free []*sliqEntry[P]

	stats SLIQStats
}

// SLIQStats counts slow-lane activity.
type SLIQStats struct {
	Inserted   uint64
	Woken      uint64 // re-inserted into the issue queue
	Squashed   uint64
	FullStalls uint64
	WakeStarts uint64 // wake processes begun (one per trigger write)
}

type sliqEntry[P any] struct {
	seq        uint64
	trigger    rename.PhysReg
	payload    P
	eligibleAt int64 // cycle from which it may re-enter the IQ; -1 = waiting
	squashed   bool
	heapIdx    int32
}

// NewSLIQ builds a slow lane queue. capacity is the entry count; delay
// is the start-up penalty in cycles between the trigger register write
// and the first re-insertion (the paper uses 4 and shows insensitivity
// from 1 to 12 in Figure 10); width is the re-insertion bandwidth per
// cycle (4 in the paper); nRegs bounds the trigger register name space
// (the physical register file size).
func NewSLIQ[P any](capacity, delay, width, nRegs int) *SLIQ[P] {
	if capacity < 1 {
		panic(fmt.Sprintf("queue: SLIQ capacity %d < 1", capacity))
	}
	if delay < 0 || width < 1 {
		panic(fmt.Sprintf("queue: SLIQ delay %d / width %d invalid", delay, width))
	}
	if nRegs < 1 {
		panic(fmt.Sprintf("queue: SLIQ register space %d < 1", nRegs))
	}
	return &SLIQ[P]{
		capacity: capacity,
		delay:    int64(delay),
		width:    width,
		waiting:  make([][]*sliqEntry[P], nRegs),
	}
}

// Cap returns the capacity.
func (s *SLIQ[P]) Cap() int { return s.capacity }

// Len returns the number of resident entries.
func (s *SLIQ[P]) Len() int { return s.occupied }

// Full reports whether no entry can be inserted.
func (s *SLIQ[P]) Full() bool { return s.occupied >= s.capacity }

// Insert moves an instruction into the slow lane, tagged with the
// physical register of the long-latency load it waits on. It returns
// false when the SLIQ is full (the instruction then stays in the issue
// queue, consuming a precious entry — the caller's fallback).
func (s *SLIQ[P]) Insert(seq uint64, trigger rename.PhysReg, payload P) bool {
	if s.Full() {
		s.stats.FullStalls++
		return false
	}
	var e *sliqEntry[P]
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = new(sliqEntry[P])
	}
	*e = sliqEntry[P]{seq: seq, trigger: trigger, payload: payload, eligibleAt: -1, heapIdx: -1}
	s.waiting[trigger] = append(s.waiting[trigger], e)
	s.occupied++
	s.stats.Inserted++
	return true
}

// recycle returns a no-longer-referenced entry to the free list.
func (s *SLIQ[P]) recycle(e *sliqEntry[P]) {
	var zero P
	e.payload = zero
	s.free = append(s.free, e)
}

// TriggerReady starts the wake process for every entry waiting on reg:
// they become eligible for re-insertion delay cycles after now.
func (s *SLIQ[P]) TriggerReady(reg rename.PhysReg, now int64) {
	if s.occupied == 0 {
		// Every waiting list is empty; skip the per-register index
		// probe (writeback calls this for every completed value).
		return
	}
	entries := s.waiting[reg]
	if len(entries) == 0 {
		return
	}
	s.waiting[reg] = entries[:0]
	started := false
	for i, e := range entries {
		entries[i] = nil
		if e.squashed {
			// Unreachable: SquashYounger removes waiting entries
			// eagerly (and recycles them there — recycling again here
			// would corrupt the free list).
			continue
		}
		e.eligibleAt = now + s.delay
		s.heapPush(e)
		started = true
	}
	if started {
		s.stats.WakeStarts++
	}
}

// Drain offers eligible entries to the pipeline oldest-first, up to the
// configured width per cycle. accept re-inserts the instruction into its
// issue queue (or issues it directly) and returns true; returning false
// retains the entry at the head and stops this cycle's pump — the walk
// is strictly in order, as in the paper.
func (s *SLIQ[P]) Drain(now int64, accept func(seq uint64, payload P) bool) int {
	drained := 0
	for drained < s.width && len(s.wakeable) > 0 {
		e := s.wakeable[0]
		if e.squashed {
			s.recycle(s.heapPop())
			continue
		}
		if e.eligibleAt > now {
			// The oldest wakeable entry is still in its start-up
			// delay; the pump walks in order, so younger entries
			// wait behind it (matches the paper's sequential walk).
			break
		}
		if !accept(e.seq, e.payload) {
			break
		}
		s.recycle(s.heapPop())
		s.occupied--
		s.stats.Woken++
		drained++
	}
	return drained
}

// NextWake returns the earliest cycle at which Drain could offer an
// entry to the pipeline, or -1 when no entry is woken (waiting entries
// become wakeable only through TriggerReady, an event the caller can
// see coming). The walk is strictly in order, so the head alone
// determines the answer; a squashed head is reported as "now" (0) —
// callers treating the result as a quiescence bound must then not skip,
// which is always safe. The event-driven clock skip uses this to bound
// its jump.
func (s *SLIQ[P]) NextWake() int64 {
	if len(s.wakeable) == 0 {
		return -1
	}
	if e := s.wakeable[0]; !e.squashed {
		return e.eligibleAt
	}
	return 0
}

// SquashYounger removes every entry with sequence number >= seq,
// calling onSquash for each removed payload. Entries already woken stay
// in the wake heap (marked dead) and are collected by Drain.
func (s *SLIQ[P]) SquashYounger(seq uint64, onSquash func(payload P)) {
	for trigger, entries := range s.waiting {
		if len(entries) == 0 {
			continue
		}
		kept := entries[:0]
		for _, e := range entries {
			if e.seq >= seq {
				s.occupied--
				s.stats.Squashed++
				onSquash(e.payload)
				s.recycle(e)
			} else {
				kept = append(kept, e)
			}
		}
		for i := len(kept); i < len(entries); i++ {
			entries[i] = nil
		}
		s.waiting[trigger] = kept
	}
	// Wakeable entries are lazily discarded in Drain; account for them
	// now so Len stays exact.
	for _, e := range s.wakeable {
		if !e.squashed && e.seq >= seq {
			e.squashed = true
			s.occupied--
			s.stats.Squashed++
			onSquash(e.payload)
		}
	}
}

// Clear empties the queue (total flush), invoking onSquash per entry.
func (s *SLIQ[P]) Clear(onSquash func(payload P)) {
	s.SquashYounger(0, onSquash)
	for _, e := range s.wakeable {
		s.recycle(e)
	}
	s.wakeable = s.wakeable[:0]
}

// WaitingOn returns the number of entries not yet triggered.
func (s *SLIQ[P]) WaitingOn() int {
	n := 0
	for _, entries := range s.waiting {
		for _, e := range entries {
			if !e.squashed {
				n++
			}
		}
	}
	return n
}

// Stats returns a copy of the counters.
func (s *SLIQ[P]) Stats() SLIQStats { return s.stats }

// The wake set is a typed min-heap over seq (see the IQ ready heap for
// the rationale).

func (s *SLIQ[P]) heapPush(e *sliqEntry[P]) {
	e.heapIdx = int32(len(s.wakeable))
	s.wakeable = append(s.wakeable, e)
	s.heapUp(len(s.wakeable) - 1)
}

func (s *SLIQ[P]) heapPop() *sliqEntry[P] {
	h := s.wakeable
	e := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h[0].heapIdx = 0
	h[last] = nil
	s.wakeable = h[:last]
	if last > 0 {
		s.heapDown(0)
	}
	e.heapIdx = -1
	return e
}

func (s *SLIQ[P]) heapUp(i int) {
	h := s.wakeable
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent].seq <= h[i].seq {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		h[parent].heapIdx = int32(parent)
		h[i].heapIdx = int32(i)
		i = parent
	}
}

func (s *SLIQ[P]) heapDown(i int) {
	h := s.wakeable
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		min := l
		if r := l + 1; r < n && h[r].seq < h[l].seq {
			min = r
		}
		if h[i].seq <= h[min].seq {
			break
		}
		h[i], h[min] = h[min], h[i]
		h[i].heapIdx = int32(i)
		h[min].heapIdx = int32(min)
		i = min
	}
}
