package service

import (
	"encoding/json"
	"fmt"
	"sync"
)

// flightGroup deduplicates concurrent work by key: the first caller of
// Do for a key runs fn, every concurrent caller for the same key waits
// for that one execution and shares its outcome. A minimal in-tree
// version of x/sync/singleflight (the module has no dependencies),
// specialised to the cache's value type.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	raw  json.RawMessage
	err  error
}

// Do runs fn once per key among concurrent callers. shared is true for
// callers that received another caller's execution.
func (g *flightGroup) Do(key string, fn func() (json.RawMessage, error)) (raw json.RawMessage, shared bool, err error) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*flightCall{}
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.raw, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.raw, c.err = runProtected(fn)
	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.raw, false, c.err
}

// runProtected converts a panicking fn into an error. The leader runs
// fn with followers parked on its done channel; an unrecovered panic
// would never close that channel (hanging every follower) and, one
// frame up, would kill the daemon — trace generation is the main risk,
// since it allocates client-controlled amounts and runs outside
// sim.Run's own recover.
func runProtected(fn func() (json.RawMessage, error)) (raw json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			raw, err = nil, fmt.Errorf("service: point panicked: %v", r)
		}
	}()
	return fn()
}
