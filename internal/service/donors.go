package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// donorSumHeader carries the hex SHA-256 of the snapshot body on
// GET /v1/donors/{key} responses. Snapshot validation in mem is
// structural (magic, lengths, bounds) and cannot detect bit flips
// inside the tag arrays, so the transport adds an end-to-end digest:
// a fetch whose body does not hash to the header is rejected (and
// retried, then degraded to a local warm-up — never silently adopted).
const donorSumHeader = "X-Ooosim-Snapshot-Sum"

// DonorExchange is the warm-donor shipping fabric of a worker fleet.
//
// Every snapshot group — a (trace recipe, warm-relevant cache shape)
// pair — has one *home node*, chosen by sharding the group's donor key
// over the fleet's canonical peer list. The home node warms the group's
// donor exactly once; every other node adopts it over HTTP
// (GET /v1/donors/{key}) instead of replaying the warm-up itself, so a
// fleet of N nodes sweeping G groups performs G donor warm-ups, not
// N*G. The endpoint builds on demand: a request carrying the group's
// spec (recipe + warm key) makes the home node warm the donor even
// before any of its own points need it, which is what makes the
// one-build guarantee deterministic rather than a race.
//
// Failure degrades, never blocks: a dead or misbehaving home node means
// the requester warms locally (exactly the pre-fleet behaviour), and a
// node with no peer list behaves like a single-node daemon.
//
// Donors ship as mem.Hierarchy snapshots (see mem.WriteSnapshot); the
// adopted donor forks bit-identically to a locally warmed one, so
// results are byte-identical whichever path produced the donor.
type DonorExchange struct {
	self   string   // this node's entry in peers ("" disables homing)
	peers  []string // all fleet workers, same canonical order on every node
	client *http.Client

	// materialise regenerates a trace from its recipe for on-demand
	// builds; the owning scheduler wires its trace memo here.
	materialise func(trace.Recipe) (*trace.Trace, error)

	mu  sync.Mutex
	reg map[string]*donorEntry

	adopted      atomic.Uint64 // donors fetched from a peer
	built        atomic.Uint64 // donors warmed on this node
	shipped      atomic.Uint64 // donors served to peers
	fetchRetries atomic.Uint64 // fetch attempts retried before success or fallback
	fetchFails   atomic.Uint64 // peer fetches that fell back to local warm-up
}

// donorRegistryLimit bounds the registry; donors are a few hundred KB
// each. Past the bound the whole memo drops (same policy as warmCache).
const donorRegistryLimit = 128

type donorEntry struct {
	once  sync.Once
	ready atomic.Bool
	donor *mem.Hierarchy
	err   error

	blobOnce sync.Once
	blob     []byte
	blobErr  error

	sumOnce sync.Once
	sum     string
}

// NewDonorExchange builds the exchange for a node. peers is the full
// fleet worker list — every node must pass the same URLs in the same
// order, or home selection diverges and the one-build guarantee decays
// to best-effort adoption. self is this node's own entry in peers; an
// empty or unlisted self disables homing (the node warms everything
// locally and only serves).
func NewDonorExchange(self string, peers []string) *DonorExchange {
	return &DonorExchange{
		self:  self,
		peers: append([]string(nil), peers...),
		// Donor fetches block a warm-up, not a request handler; the
		// timeout must cover an on-demand build (trace materialisation +
		// warm replay, well under a second at figure scale) plus shipping
		// a few hundred KB.
		client: &http.Client{Timeout: 30 * time.Second},
		reg:    map[string]*donorEntry{},
	}
}

// DonorSpec is the wire description of a snapshot group: everything a
// peer needs to build the donor on demand.
type DonorSpec struct {
	Trace trace.Recipe `json:"trace"`
	Warm  mem.WarmKey  `json:"warm"`
}

// DonorKey returns the group's content address: a hex SHA-256 over the
// canonical recipe string and the warm key. Peers address donors by it,
// and home selection shards it over the peer list.
func DonorKey(r trace.Recipe, key mem.WarmKey) string {
	keyJSON, err := json.Marshal(key)
	if err != nil {
		// WarmKey is a plain struct of plain structs; Marshal cannot fail.
		panic(fmt.Sprintf("service: marshal warm key: %v", err))
	}
	h := sha256.New()
	fmt.Fprintf(h, "ooosim-donor-v1\x00%s\x00", r.String())
	h.Write(keyJSON)
	return hex.EncodeToString(h.Sum(nil))
}

// home returns the node responsible for warming key, or "" when homing
// is disabled.
func (dx *DonorExchange) home(key string) string {
	if len(dx.peers) == 0 {
		return ""
	}
	return dx.peers[sim.ShardFor(key, len(dx.peers))]
}

// entry returns (creating if needed) the registry slot for key.
func (dx *DonorExchange) entry(key string) *donorEntry {
	dx.mu.Lock()
	defer dx.mu.Unlock()
	e, ok := dx.reg[key]
	if !ok {
		if len(dx.reg) >= donorRegistryLimit {
			dx.reg = map[string]*donorEntry{}
		}
		e = &donorEntry{}
		dx.reg[key] = e
	}
	return e
}

// Acquire returns the group's donor, adopting it from the group's home
// node when that is a peer and warming locally otherwise (or when the
// peer fails). A nil donor with nil error never happens; on error the
// caller degrades to the cold path.
func (dx *DonorExchange) Acquire(r trace.Recipe, key mem.WarmKey, tr *trace.Trace) (*mem.Hierarchy, error) {
	e := dx.entry(DonorKey(r, key))
	e.once.Do(func() {
		defer e.ready.Store(true)
		if home := dx.home(DonorKey(r, key)); home != "" && home != dx.self {
			if donor, err := dx.fetch(home, DonorSpec{Trace: r, Warm: key}); err == nil {
				dx.adopted.Add(1)
				e.donor = donor
				return
			}
			dx.fetchFails.Add(1)
		}
		e.donor, e.err = core.WarmDonor(key, tr)
		if e.err == nil {
			dx.built.Add(1)
		}
	})
	return e.donor, e.err
}

// UseTransport swaps the fetch client's transport (chaos injection).
func (dx *DonorExchange) UseTransport(rt http.RoundTripper) {
	dx.client = &http.Client{Timeout: dx.client.Timeout, Transport: rt}
}

// maxDonorSnapshot bounds how much body a fetch will buffer for digest
// verification; donors are a few hundred KB, so 64 MB is pathology.
const maxDonorSnapshot = 64 << 20

// fetch retrieves (building on demand) the donor for spec from peer,
// retrying transient transport failures and integrity mismatches a few
// times before the caller falls back to a local warm-up. The body is
// verified against the peer's snapshot digest header before a single
// byte of it is parsed.
func (dx *DonorExchange) fetch(peer string, spec DonorSpec) (*mem.Hierarchy, error) {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	url := fmt.Sprintf("%s/v1/donors/%s?spec=%s",
		peer, DonorKey(spec.Trace, spec.Warm), base64.RawURLEncoding.EncodeToString(specJSON))
	retrier := &faults.Retrier{
		MaxAttempts: 3,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    time.Second,
		OnRetry:     func(int, error, time.Duration) { dx.fetchRetries.Add(1) },
	}
	var donor *mem.Hierarchy
	err = retrier.Do(nil, func() error {
		resp, err := dx.client.Get(url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			err := fmt.Errorf("service: donor fetch: %s: %s", resp.Status, bytes.TrimSpace(body))
			if resp.StatusCode >= 500 {
				// A 5xx home may just be mid-hiccup; 404/400 are terminal
				// (unwarmed or mismatched — retrying won't change them).
				return faults.MarkTransient(err)
			}
			return err
		}
		blob, err := io.ReadAll(io.LimitReader(resp.Body, maxDonorSnapshot))
		if err != nil {
			return faults.MarkTransient(fmt.Errorf("service: donor fetch: %w", err))
		}
		if want := resp.Header.Get(donorSumHeader); want != "" {
			sum := sha256.Sum256(blob)
			if hex.EncodeToString(sum[:]) != want {
				// Damaged in transit; the peer's copy is fine, refetch.
				return faults.MarkTransient(fmt.Errorf("service: donor fetch: snapshot digest mismatch"))
			}
		}
		d, err := mem.ReadSnapshot(bytes.NewReader(blob))
		if err != nil {
			return faults.MarkTransient(fmt.Errorf("service: donor fetch: %w", err))
		}
		if d.WarmKey() != spec.Warm {
			return fmt.Errorf("service: donor fetch: peer returned warm key %+v, want %+v",
				d.WarmKey(), spec.Warm)
		}
		donor = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	return donor, nil
}

// ServeHTTP answers GET /v1/donors/{key}: the serialised donor for the
// group, built on demand when the request carries the group's spec.
// Without a spec only already-warmed donors are served (404 otherwise).
func (dx *DonorExchange) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	var spec *DonorSpec
	if raw := r.URL.Query().Get("spec"); raw != "" {
		specJSON, err := base64.RawURLEncoding.DecodeString(raw)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad spec encoding: " + err.Error()})
			return
		}
		var s DonorSpec
		if err := json.Unmarshal(specJSON, &s); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad spec: " + err.Error()})
			return
		}
		if err := s.Trace.Validate(); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
			return
		}
		if DonorKey(s.Trace, s.Warm) != key {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "spec does not hash to the requested donor key"})
			return
		}
		spec = &s
	}

	e := dx.entry(key)
	if spec != nil {
		e.once.Do(func() {
			defer e.ready.Store(true)
			if dx.materialise == nil {
				e.err = fmt.Errorf("service: donor exchange has no trace source")
				return
			}
			var tr *trace.Trace
			if tr, e.err = dx.materialise(spec.Trace); e.err != nil {
				return
			}
			e.donor, e.err = core.WarmDonor(spec.Warm, tr)
			if e.err == nil {
				dx.built.Add(1)
			}
		})
	}
	if !e.ready.Load() || e.donor == nil {
		// Not built here (and no spec to build from), or the build
		// failed: the requester warms locally.
		code := http.StatusNotFound
		msg := "donor not warmed on this node"
		if e.ready.Load() && e.err != nil {
			code, msg = http.StatusInternalServerError, e.err.Error()
		}
		writeJSON(w, code, apiError{Error: msg})
		return
	}
	e.blobOnce.Do(func() {
		var buf bytes.Buffer
		e.blobErr = e.donor.WriteSnapshot(&buf)
		e.blob = buf.Bytes()
	})
	if e.blobErr != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: e.blobErr.Error()})
		return
	}
	e.sumOnce.Do(func() {
		sum := sha256.Sum256(e.blob)
		e.sum = hex.EncodeToString(sum[:])
	})
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(e.blob)))
	w.Header().Set(donorSumHeader, e.sum)
	if _, err := w.Write(e.blob); err == nil {
		dx.shipped.Add(1)
	}
}

// writeMetrics renders the exchange counters (part of the scheduler's
// /metrics surface).
func (dx *DonorExchange) writeMetrics(w io.Writer) {
	counter(w, "ooosim_donors_adopted_total", "Warm donors adopted from a peer instead of warming locally.", dx.adopted.Load())
	counter(w, "ooosim_donors_shipped_total", "Warm donors served to peers.", dx.shipped.Load())
	counter(w, "ooosim_donor_fetch_retries_total", "Donor fetch attempts retried after a transient failure.", dx.fetchRetries.Load())
	counter(w, "ooosim_donor_fetch_failures_total", "Peer donor fetches that fell back to a local warm-up.", dx.fetchFails.Load())
}

// Stats reports the exchange counters (tests and operator tooling).
func (dx *DonorExchange) Stats() (adopted, built, shipped, fetchFails uint64) {
	return dx.adopted.Load(), dx.built.Load(), dx.shipped.Load(), dx.fetchFails.Load()
}
