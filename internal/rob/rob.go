// Package rob implements the conventional reorder buffer used by the
// baseline processor: a circular buffer that retires finished
// instructions strictly in program order, bounded by the commit width.
// It is the structure the paper's checkpointing mechanism replaces.
package rob

import "fmt"

// ROB is a generic circular reorder buffer. T is the pipeline's dynamic
// instruction record.
type ROB[T any] struct {
	buf        []T
	head, size int
	stats      Stats
}

// Stats counts reorder-buffer activity.
type Stats struct {
	Dispatched uint64
	Committed  uint64
	Squashed   uint64
	FullStalls uint64
}

// New builds a reorder buffer with the given capacity.
func New[T any](capacity int) *ROB[T] {
	if capacity < 1 {
		panic(fmt.Sprintf("rob: capacity %d < 1", capacity))
	}
	return &ROB[T]{buf: make([]T, capacity)}
}

// Cap returns the capacity.
func (r *ROB[T]) Cap() int { return len(r.buf) }

// wrap reduces an index in [0, 2*cap) onto the ring; a conditional
// subtract replaces the integer division % would cost per instruction.
func (r *ROB[T]) wrap(i int) int {
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	return i
}

// Len returns the number of in-flight entries.
func (r *ROB[T]) Len() int { return r.size }

// Full reports whether dispatch must stall.
func (r *ROB[T]) Full() bool { return r.size == len(r.buf) }

// Empty reports whether the buffer holds no instructions.
func (r *ROB[T]) Empty() bool { return r.size == 0 }

// Push appends an instruction at the tail. It returns false (and counts
// a stall) when the buffer is full.
func (r *ROB[T]) Push(v T) bool {
	if r.Full() {
		r.stats.FullStalls++
		return false
	}
	r.buf[r.wrap(r.head+r.size)] = v
	r.size++
	r.stats.Dispatched++
	return true
}

// Head returns the oldest instruction without removing it.
func (r *ROB[T]) Head() (T, bool) {
	var zero T
	if r.size == 0 {
		return zero, false
	}
	return r.buf[r.head], true
}

// Commit retires up to width instructions from the head, stopping at the
// first one for which done returns false. retire is called for each
// retired instruction in program order. It returns the retired count.
func (r *ROB[T]) Commit(width int, done func(T) bool, retire func(T)) int {
	var zero T
	n := 0
	for n < width && r.size > 0 {
		v := r.buf[r.head]
		if !done(v) {
			break
		}
		r.buf[r.head] = zero
		r.head = r.wrap(r.head + 1)
		r.size--
		retire(v)
		n++
		r.stats.Committed++
	}
	return n
}

// SquashTail removes instructions from the tail (youngest first) while
// keep returns false, invoking squash for each removed instruction. It
// is the ROB half of a branch-misprediction recovery: the walk proceeds
// youngest to oldest and stops at the first instruction to keep.
func (r *ROB[T]) SquashTail(keep func(T) bool, squash func(T)) int {
	var zero T
	n := 0
	for r.size > 0 {
		i := r.wrap(r.head + r.size - 1)
		v := r.buf[i]
		if keep(v) {
			break
		}
		r.buf[i] = zero
		r.size--
		squash(v)
		n++
		r.stats.Squashed++
	}
	return n
}

// ForEach visits entries oldest to youngest.
func (r *ROB[T]) ForEach(fn func(v T)) {
	for i := 0; i < r.size; i++ {
		fn(r.buf[r.wrap(r.head+i)])
	}
}

// Stats returns a copy of the counters.
func (r *ROB[T]) Stats() Stats { return r.stats }
