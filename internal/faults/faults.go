// Package faults makes failure a first-class, reproducible input to the
// simulation fleet — and supplies the self-healing primitives the rest
// of the system uses to survive it.
//
// Two halves:
//
//   - Injection: a Plan is a seed plus per-site rules for dropping,
//     delaying, erroring and corrupting operations. An Injector
//     instantiates the plan with one named PRNG stream per site, so the
//     decision sequence at every site is a pure function of (seed,
//     site) — a failing chaos run replays exactly from its seed, no
//     matter how goroutines interleave across sites. Wrappers apply the
//     decisions at the distributed seams: RoundTripper for HTTP
//     clients, ChaosFS for the disk result cache.
//
//   - Healing: Retrier (capped, jittered exponential backoff that
//     honours server Retry-After hints) and Breaker (a circuit breaker
//     with closed → open → half-open probation) are the reusable
//     policies the service client, donor exchange and fleet coordinator
//     build their fault handling from.
//
// The package deliberately knows nothing about the service layer; the
// service layer depends on it, not the other way around.
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"
)

// Action is the injector's decision for one operation at one site.
type Action uint8

const (
	// None lets the operation through untouched.
	None Action = iota
	// Drop fails the operation with a transient-looking transport error
	// before it executes (the request is never sent, the file never
	// touched — so retrying a dropped operation is always safe).
	Drop
	// Delay sleeps, then lets the operation through.
	Delay
	// Error lets the operation reach the other side's failure surface:
	// HTTP sites synthesize an error-status response, fs sites return a
	// read/write error.
	Error
	// Corrupt lets the operation through but flips bytes in its payload
	// — only meaningful at seams with an integrity check to catch it.
	Corrupt
)

// String names the action for stats and logs.
func (a Action) String() string {
	switch a {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Error:
		return "error"
	case Corrupt:
		return "corrupt"
	}
	return "none"
}

// Rule is one site's fault mix: independent probabilities per action
// (evaluated in Drop, Delay, Error, Corrupt order against a single
// uniform draw, so their sum must stay <= 1).
type Rule struct {
	// Drop, Delay, Error, Corrupt are per-operation probabilities.
	Drop    float64
	Delay   float64
	Error   float64
	Corrupt float64
	// MaxDelay bounds an injected delay; Delay decisions draw uniformly
	// from (0, MaxDelay]. Zero means 10ms.
	MaxDelay time.Duration
	// ErrorStatus is the HTTP status an Error decision synthesizes at
	// HTTP sites (fs sites ignore it). Zero means 500.
	ErrorStatus int
	// Limit caps the number of faults injected at the site; 0 is
	// unlimited. Useful for "break exactly once" scenarios.
	Limit int
}

// Plan is a complete, replayable chaos schedule: a seed plus rules
// keyed by site-name prefix (the longest matching prefix wins, so
// "donor:" can override a blanket "": rule).
type Plan struct {
	Seed  int64
	Rules map[string]Rule
}

// AggressivePlan is the canonical chaos mix used by `ooosimload -chaos`
// and the CI soak: drops, delays and 5xx on every HTTP seam, plus
// corrupt-bytes at the two seams that carry their own integrity checks
// (the disk result cache's checksum trailer and the donor exchange's
// snapshot digest). Corruption is deliberately absent from the generic
// HTTP rule: event-stream bytes have no application-level checksum, so
// corrupting them could alter results undetectably instead of
// exercising detection.
func AggressivePlan(seed int64) Plan {
	return Plan{
		Seed: seed,
		Rules: map[string]Rule{
			"http:":         {Drop: 0.08, Delay: 0.15, Error: 0.05, MaxDelay: 20 * time.Millisecond, ErrorStatus: 503},
			"donor:":        {Drop: 0.10, Delay: 0.10, Error: 0.05, Corrupt: 0.20, MaxDelay: 10 * time.Millisecond, ErrorStatus: 500},
			"cachefs:read":  {Error: 0.05, Corrupt: 0.25},
			"cachefs:write": {Drop: 0.05, Error: 0.05},
		},
	}
}

// Decision is one resolved injection: the action plus its parameters.
type Decision struct {
	Act Action
	// Sleep is the injected latency (Delay decisions).
	Sleep time.Duration
	// Status is the synthesized HTTP status (Error decisions at HTTP
	// sites).
	Status int
	// Pattern seeds the deterministic byte corruption (Corrupt
	// decisions); see CorruptBytes.
	Pattern uint64
}

// SiteStats counts one site's injected faults.
type SiteStats struct {
	Ops, Drops, Delays, Errors, Corrupts uint64
}

// Injector instantiates a Plan: every site gets its own PRNG stream
// seeded by (plan seed, site name), so per-site decision sequences are
// reproducible independent of cross-site interleaving. A nil *Injector
// is valid and injects nothing, so call sites need no guards.
type Injector struct {
	plan Plan

	mu      sync.Mutex
	streams map[string]*siteStream
}

type siteStream struct {
	rng      *rand.Rand
	rule     Rule
	ruled    bool
	injected int
	stats    SiteStats
}

// NewInjector instantiates plan. A plan with no rules yields an
// injector that decides None everywhere (still counting ops).
func NewInjector(plan Plan) *Injector {
	return &Injector{plan: plan, streams: map[string]*siteStream{}}
}

// stream returns (creating on first use) the named site's stream.
func (in *Injector) stream(site string) *siteStream {
	s, ok := in.streams[site]
	if !ok {
		h := fnv.New64a()
		h.Write([]byte(site))
		s = &siteStream{rng: rand.New(rand.NewSource(in.plan.Seed ^ int64(h.Sum64())))}
		s.rule, s.ruled = in.matchRule(site)
		in.streams[site] = s
	}
	return s
}

// matchRule finds the longest rule prefix matching site.
func (in *Injector) matchRule(site string) (Rule, bool) {
	best, found := Rule{}, false
	bestLen := -1
	for prefix, r := range in.plan.Rules {
		if strings.HasPrefix(site, prefix) && len(prefix) > bestLen {
			best, found, bestLen = r, true, len(prefix)
		}
	}
	return best, found
}

// Decide draws the next decision from site's stream. Exactly two PRNG
// draws per call (action selector + parameter), so the stream position
// — and therefore every later decision — is independent of which
// action fired.
func (in *Injector) Decide(site string) Decision {
	if in == nil {
		return Decision{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.stream(site)
	s.stats.Ops++
	u := s.rng.Float64()
	p := s.rng.Uint64()
	if !s.ruled || (s.rule.Limit > 0 && s.injected >= s.rule.Limit) {
		return Decision{}
	}
	r := s.rule
	d := Decision{Pattern: p}
	switch {
	case u < r.Drop:
		d.Act = Drop
		s.stats.Drops++
	case u < r.Drop+r.Delay:
		d.Act = Delay
		maxDelay := r.MaxDelay
		if maxDelay <= 0 {
			maxDelay = 10 * time.Millisecond
		}
		d.Sleep = 1 + time.Duration(p%uint64(maxDelay))
		s.stats.Delays++
	case u < r.Drop+r.Delay+r.Error:
		d.Act = Error
		d.Status = r.ErrorStatus
		if d.Status == 0 {
			d.Status = 500
		}
		s.stats.Errors++
	case u < r.Drop+r.Delay+r.Error+r.Corrupt:
		d.Act = Corrupt
		s.stats.Corrupts++
	default:
		return Decision{}
	}
	s.injected++
	return d
}

// Stats snapshots every site's injection counters.
func (in *Injector) Stats() map[string]SiteStats {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]SiteStats, len(in.streams))
	for site, s := range in.streams {
		out[site] = s.stats
	}
	return out
}

// StatsLine renders the injection counters as one sorted, stable log
// line ("site drop=N delay=N error=N corrupt=N; ...").
func (in *Injector) StatsLine() string {
	st := in.Stats()
	sites := make([]string, 0, len(st))
	for s := range st {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	parts := make([]string, 0, len(sites))
	for _, site := range sites {
		s := st[site]
		parts = append(parts, fmt.Sprintf("%s ops=%d drop=%d delay=%d error=%d corrupt=%d",
			site, s.Ops, s.Drops, s.Delays, s.Errors, s.Corrupts))
	}
	if len(parts) == 0 {
		return "no sites touched"
	}
	return strings.Join(parts, "; ")
}

// InjectedError is the transport-level failure a Drop decision raises.
// It reports itself transient (see Transient), since the dropped
// operation never executed and is always safe to retry.
type InjectedError struct {
	Site string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected drop at %s", e.Site)
}

// TransientFault marks the error safe to retry.
func (e *InjectedError) TransientFault() bool { return true }

// CorruptBytes deterministically flips bytes in a copy of b: always the
// first byte, plus a sparse pattern-seeded scatter (~1 in 256). The
// first-byte flip guarantees even a tiny payload is actually damaged,
// so integrity checks are exercised on every Corrupt decision.
func CorruptBytes(pattern uint64, b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	out := append([]byte(nil), b...)
	mask := byte(pattern>>8) | 1
	out[0] ^= mask
	for i := 1; i < len(out); i++ {
		if (uint64(i)*2654435761+pattern)%257 == 0 {
			out[i] ^= mask
		}
	}
	return out
}
