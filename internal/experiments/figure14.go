package experiments

import (
	"fmt"

	"repro/internal/config"
)

// Figure14 sweep axes.
var (
	Figure14Latencies = []int{100, 500, 1000}
	Figure14VTags     = []int{512, 1024, 2048}
	Figure14Phys      = []int{256, 512}
)

// Figure14Result holds the combination study: out-of-order commit plus
// SLIQ plus ephemeral/virtual registers, against the Limit (everything
// scaled to 4096) and Baseline-128 reference lines, per memory latency.
type Figure14Result struct {
	Latencies []int
	VTags     []int
	Phys      []int
	// IPC[lat][vtags][phys].
	IPC map[int]map[int]map[int]float64
	// Limit[lat] and Baseline128[lat] are the reference lines.
	Limit       map[int]float64
	Baseline128 map[int]float64
}

// Figure14 evaluates affordable kilo-instruction processors: with
// virtual tags standing in for rename capacity and late-allocated,
// early-released physical registers, a few hundred physical registers
// approach the unconstrained limit.
func Figure14(opt Options) Figure14Result {
	opt = opt.withDefaults()
	suite := opt.suite()
	res := Figure14Result{
		Latencies:   Figure14Latencies,
		VTags:       Figure14VTags,
		Phys:        Figure14Phys,
		IPC:         map[int]map[int]map[int]float64{},
		Limit:       map[int]float64{},
		Baseline128: map[int]float64{},
	}
	for _, lat := range res.Latencies {
		limit := config.BaselineSized(4096)
		limit.MemoryLatency = lat
		res.Limit[lat], _ = opt.averageIPC(limit, suite)

		b128 := config.BaselineSized(128)
		b128.MemoryLatency = lat
		res.Baseline128[lat], _ = opt.averageIPC(b128, suite)

		res.IPC[lat] = map[int]map[int]float64{}
		for _, vt := range res.VTags {
			res.IPC[lat][vt] = map[int]float64{}
			for _, ph := range res.Phys {
				cfg := config.CheckpointDefault(128, 2048)
				cfg.MemoryLatency = lat
				cfg.VirtualRegisters = true
				cfg.VirtualTags = vt
				cfg.PhysRegs = ph
				res.IPC[lat][vt][ph], _ = opt.averageIPC(cfg, suite)
			}
		}
	}
	return res
}

// String renders one block per memory latency.
func (r Figure14Result) String() string {
	header := []string{"mem", "vtags", "phys 256", "phys 512", "Baseline 128", "Limit 4096"}
	var rows [][]string
	for _, lat := range r.Latencies {
		for _, vt := range r.VTags {
			rows = append(rows, []string{
				fmt.Sprintf("%d", lat),
				fmt.Sprintf("%d", vt),
				f3(r.IPC[lat][vt][256]),
				f3(r.IPC[lat][vt][512]),
				f3(r.Baseline128[lat]),
				f3(r.Limit[lat]),
			})
		}
	}
	return renderTable("Figure 14: out-of-order commit + SLIQ + virtual registers", header, rows)
}
