// Package lsq models the load/store queue: program-ordered tracking of
// in-flight memory operations, store-to-load forwarding, and draining of
// committed stores to the memory hierarchy.
//
// Following the paper, the LSQ is treated as a pseudo-perfect resource
// (4096 entries in Table 1) except that its occupancy rules matter: in
// checkpoint mode, entries are held until the owning checkpoint commits,
// which is why the paper bounds stores per checkpoint (64) to avoid
// deadlock.
//
// Disambiguation is indexed: resident stores chain per effective
// address (youngest first, intrusively through the entries), so
// LookupForward is one map probe plus a short chain walk instead of the
// former backward scan of the whole queue — the scan was the single
// hottest path in the simulator at kilo-instruction windows. Entries
// recycle through an internal free list; steady-state inserts allocate
// nothing.
package lsq

import (
	"fmt"

	"repro/internal/isa"
)

// Kind distinguishes queue entries.
type Kind uint8

// Entry kinds.
const (
	KindLoad Kind = iota
	KindStore
)

// Entry is one memory operation in the queue. Entries are owned by the
// LSQ and recycled after removal: the pipeline must drop its handle when
// it retires or squashes the instruction and must not dereference it
// afterwards.
type Entry struct {
	Seq  uint64
	Kind Kind
	Addr uint64
	// Executed marks address (and data, for stores) availability.
	Executed bool
	// Payload is the pipeline's record for this instruction.
	Payload any
	// waiters are loads blocked on this store's data (forwarding).
	waiters []func(storeSeq uint64)
	// olderSame chains stores to the same address, newest first (the
	// forwarding index; intrusive so indexing allocates nothing).
	olderSame *Entry
}

// Stats counts queue activity.
type Stats struct {
	Loads         uint64
	Stores        uint64
	Forwards      uint64 // loads satisfied by an older store
	ForwardStalls uint64 // loads that had to wait for store data
	StoresDrained uint64
	FullStalls    uint64
}

// LSQ is the load/store queue. Entries are kept in program (sequence)
// order.
type LSQ struct {
	capacity int
	entries  []*Entry // seq-ordered
	// stores maps an effective address to its youngest resident store;
	// older stores to the same address chain behind it via olderSame.
	stores storeIndex
	free   []*Entry
	stats  Stats
}

// New builds a load/store queue with the given capacity.
func New(capacity int) *LSQ {
	if capacity < 1 {
		panic(fmt.Sprintf("lsq: capacity %d < 1", capacity))
	}
	return &LSQ{capacity: capacity}
}

// Cap returns the capacity.
func (q *LSQ) Cap() int { return q.capacity }

// Len returns the number of resident entries.
func (q *LSQ) Len() int { return len(q.entries) }

// Full reports whether the queue is at capacity.
func (q *LSQ) Full() bool { return len(q.entries) >= q.capacity }

// Insert allocates an entry at dispatch. Entries must be inserted in
// increasing sequence order. Returns nil when the queue is full.
func (q *LSQ) Insert(seq uint64, op isa.Op, addr uint64, payload any) *Entry {
	if q.Full() {
		q.stats.FullStalls++
		return nil
	}
	if n := len(q.entries); n > 0 && q.entries[n-1].Seq >= seq {
		panic(fmt.Sprintf("lsq: out-of-order insert seq %d after %d", seq, q.entries[n-1].Seq))
	}
	var k Kind
	switch op {
	case isa.Load:
		k = KindLoad
		q.stats.Loads++
	case isa.Store:
		k = KindStore
		q.stats.Stores++
	default:
		panic(fmt.Sprintf("lsq: non-memory op %v", op))
	}
	var e *Entry
	if n := len(q.free); n > 0 {
		e = q.free[n-1]
		q.free[n-1] = nil
		q.free = q.free[:n-1]
	} else {
		e = new(Entry)
	}
	e.Seq, e.Kind, e.Addr, e.Executed, e.Payload = seq, k, addr, false, payload
	q.entries = append(q.entries, e)
	if k == KindStore {
		// Inserts arrive in seq order, so the new store is the
		// youngest at its address: it heads the chain.
		e.olderSame = q.stores.get(addr)
		q.stores.put(addr, e)
	}
	return e
}

// recycle returns a removed entry to the free list. The entry's waiter
// backing array is kept for reuse.
func (q *LSQ) recycle(e *Entry) {
	for i := range e.waiters {
		e.waiters[i] = nil
	}
	e.waiters = e.waiters[:0]
	e.Payload = nil
	e.olderSame = nil
	q.free = append(q.free, e)
}

// dropStore unlinks a store from the forwarding index. Chains are short
// (stores resident at one address), so the walk is cheap.
func (q *LSQ) dropStore(e *Entry) {
	head := q.stores.get(e.Addr)
	if head == e {
		if e.olderSame == nil {
			q.stores.del(e.Addr)
		} else {
			q.stores.put(e.Addr, e.olderSame)
		}
		return
	}
	for x := head; x != nil; x = x.olderSame {
		if x.olderSame == e {
			x.olderSame = e.olderSame
			return
		}
	}
	panic(fmt.Sprintf("lsq: store seq %d missing from the forwarding index", e.Seq))
}

// MarkExecuted records that the entry's address (and data for stores)
// has been computed. For stores this releases any loads waiting to
// forward from it.
func (q *LSQ) MarkExecuted(e *Entry) {
	e.Executed = true
	if e.Kind == KindStore {
		for i, w := range e.waiters {
			e.waiters[i] = nil
			w(e.Seq)
		}
		e.waiters = e.waiters[:0]
	}
}

// ForwardResult describes the disambiguation outcome for a load.
type ForwardResult int

// Forwarding outcomes.
const (
	// NoConflict: no older store to the same address; access memory.
	NoConflict ForwardResult = iota
	// ForwardReady: an older executed store matches; forward its data.
	ForwardReady
	// ForwardWait: an older store matches but its data is not ready;
	// the load must wait (register a callback via AddWaiter).
	ForwardWait
)

// LookupForward finds the youngest store older than loadSeq with a
// matching address. On ForwardWait it returns the blocking store so the
// caller can register a wake callback with AddWaiter. Unresolved store
// addresses are compared against the architectural address the generator
// provided, per the paper's pseudo-perfect disambiguation.
func (q *LSQ) LookupForward(loadSeq uint64, addr uint64) (ForwardResult, *Entry) {
	// The chain is youngest-first: the first store older than the load
	// is the youngest matching one.
	e := q.stores.get(addr)
	for e != nil && e.Seq >= loadSeq {
		e = e.olderSame
	}
	if e == nil {
		return NoConflict, nil
	}
	if !e.Executed {
		q.stats.ForwardStalls++
		return ForwardWait, e
	}
	q.stats.Forwards++
	return ForwardReady, nil
}

// AddWaiter registers a callback invoked when the (unexecuted) store's
// data becomes available; callers obtain store from a ForwardWait
// lookup. Waiters of squashed stores are dropped without being invoked.
func (q *LSQ) AddWaiter(store *Entry, onReady func(storeSeq uint64)) {
	if store.Executed {
		panic(fmt.Sprintf("lsq: waiter on executed store seq %d", store.Seq))
	}
	store.waiters = append(store.waiters, onReady)
}

// DrainStoresBefore removes every store with Seq < endSeq, invoking
// write for each in program order (checkpoint-commit draining). Loads
// older than endSeq are retired from the queue at the same time.
func (q *LSQ) DrainStoresBefore(endSeq uint64, write func(addr uint64)) int {
	// Entries are seq-ordered, so the drain is a strict prefix: retire
	// it, then slide the survivors forward once instead of walking and
	// re-appending the whole queue.
	cut := 0
	n := 0
	for ; cut < len(q.entries); cut++ {
		e := q.entries[cut]
		if e.Seq >= endSeq {
			break
		}
		if e.Kind == KindStore {
			if !e.Executed {
				panic(fmt.Sprintf("lsq: draining unexecuted store seq %d", e.Seq))
			}
			write(e.Addr)
			q.dropStore(e)
			q.stats.StoresDrained++
			n++
		}
		q.recycle(e)
	}
	if cut == 0 {
		return 0
	}
	m := copy(q.entries, q.entries[cut:])
	for i := m; i < len(q.entries); i++ {
		q.entries[i] = nil
	}
	q.entries = q.entries[:m]
	return n
}

// Retire removes a single entry (ROB-mode per-instruction commit),
// invoking write for stores.
func (q *LSQ) Retire(e *Entry, write func(addr uint64)) {
	for i, x := range q.entries {
		if x == e {
			if e.Kind == KindStore {
				if !e.Executed {
					panic(fmt.Sprintf("lsq: retiring unexecuted store seq %d", e.Seq))
				}
				write(e.Addr)
				q.dropStore(e)
				q.stats.StoresDrained++
			}
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			q.recycle(e)
			return
		}
	}
	panic(fmt.Sprintf("lsq: retire of unknown entry seq %d", e.Seq))
}

// SquashYounger removes every entry with Seq >= seq (rollback). Pending
// forward waiters of squashed stores are dropped unfired (their loads
// are younger than the store and therefore squashed too).
func (q *LSQ) SquashYounger(seq uint64) int {
	n := 0
	kept := q.entries[:0]
	for _, e := range q.entries {
		if e.Seq >= seq {
			if e.Kind == KindStore {
				q.dropStore(e)
			}
			q.recycle(e)
			n++
			continue
		}
		kept = append(kept, e)
	}
	for i := len(kept); i < len(q.entries); i++ {
		q.entries[i] = nil
	}
	q.entries = kept
	return n
}

// Stats returns a copy of the counters.
func (q *LSQ) Stats() Stats { return q.stats }

// CheckInvariants validates ordering for tests.
func (q *LSQ) CheckInvariants() error {
	for i := 1; i < len(q.entries); i++ {
		if q.entries[i-1].Seq >= q.entries[i].Seq {
			return fmt.Errorf("lsq: entries out of order at %d (%d then %d)",
				i, q.entries[i-1].Seq, q.entries[i].Seq)
		}
	}
	if len(q.entries) > q.capacity {
		return fmt.Errorf("lsq: %d entries exceed capacity %d", len(q.entries), q.capacity)
	}
	stores := 0
	var chainErr error
	q.stores.forEach(func(addr uint64, head *Entry) {
		prev := ^uint64(0)
		for e := head; e != nil; e = e.olderSame {
			if e.Addr != addr && chainErr == nil {
				chainErr = fmt.Errorf("lsq: store seq %d indexed under %#x, has addr %#x", e.Seq, addr, e.Addr)
			}
			if e.Seq >= prev && chainErr == nil {
				chainErr = fmt.Errorf("lsq: store chain for %#x out of order", addr)
			}
			prev = e.Seq
			stores++
		}
	})
	if chainErr != nil {
		return chainErr
	}
	resident := 0
	for _, e := range q.entries {
		if e.Kind == KindStore {
			resident++
		}
	}
	if stores != resident {
		return fmt.Errorf("lsq: forwarding index has %d stores, queue has %d", stores, resident)
	}
	return nil
}
