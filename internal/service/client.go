package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/stats"
)

// defaultHTTPClient is what Client uses when HTTPClient is unset. It
// bounds every phase that can hang on a dead peer — dialing, TLS, and
// waiting for response headers — but deliberately sets no overall
// request timeout: the /v1/batches/{id}/events stream stays open for
// as long as a batch runs, mirroring the ooosimd server side (which
// likewise uses ReadHeaderTimeout/IdleTimeout, never a whole-request
// deadline). A stuck stream is still bounded by TCP keep-alives and
// the caller's context.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   5 * time.Second,
		ResponseHeaderTimeout: 30 * time.Second,
		IdleConnTimeout:       90 * time.Second,
		MaxIdleConnsPerHost:   16,
	},
}

// defaultRetrier backs Client requests when Retry is unset: a few
// attempts with fast jittered backoff, retrying transport faults and
// 429 backpressure (honouring Retry-After). 503 is deliberately NOT
// retried here — a draining node's 503 is a routing signal the fleet
// coordinator must see promptly, not absorb.
var defaultRetrier = &faults.Retrier{
	MaxAttempts: 3,
	BaseDelay:   100 * time.Millisecond,
	MaxDelay:    2 * time.Second,
	Retryable:   RetryableDefault,
}

// RetryableDefault is the client's stock retry classification:
// transport-level transient faults, plus 429 admission backpressure.
func RetryableDefault(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code == http.StatusTooManyRequests
	}
	return faults.Transient(err)
}

// Client talks to an ooosimd daemon.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8321".
	BaseURL string
	// HTTPClient overrides the package default (which carries dial and
	// response-header timeouts but no whole-request deadline, so event
	// streams run unbounded).
	HTTPClient *http.Client
	// Retry overrides the default retry policy (transient transport
	// faults and 429, with Retry-After honoured). Submit, Status and
	// Stream go through it; Ready does not — readiness probes must
	// report a node's state now, not after a backoff.
	Retry *faults.Retrier
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return defaultHTTPClient
}

func (c *Client) retrier() *faults.Retrier {
	if c.Retry != nil {
		return c.Retry
	}
	return defaultRetrier
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.BaseURL, "/") + path
}

// StatusError is a non-2xx server response, with the HTTP status code
// preserved so callers can react to backpressure (429) or drain (503)
// distinctly from hard failures, and the server's Retry-After carried
// through so backoff can honour it.
type StatusError struct {
	Code int
	Msg  string
	// RetryAfter is the server's Retry-After value, zero when absent.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("service: server: %s (HTTP %d)", e.Msg, e.Code)
	}
	return fmt.Sprintf("service: server returned HTTP %d", e.Code)
}

// RetryAfterHint implements faults.RetryAfterHinter, letting a Retrier
// sleep exactly as long as the server asked.
func (e *StatusError) RetryAfterHint() (time.Duration, bool) {
	if e.RetryAfter > 0 {
		return e.RetryAfter, true
	}
	return 0, false
}

// parseRetryAfter reads a Retry-After header (delta-seconds or
// HTTP-date), returning zero when absent or unparseable.
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// decodeError surfaces the server's JSON error body.
func decodeError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var ae apiError
	json.Unmarshal(body, &ae)
	return &StatusError{Code: resp.StatusCode, Msg: ae.Error, RetryAfter: parseRetryAfter(resp.Header)}
}

// Ready probes the daemon's readiness endpoint: nil means the node
// admits new batches; ErrNotReady (wrapping the server's reason) means
// it is alive but draining or over its admission bound. Transport
// errors return as-is — the node is not merely unready, it is gone.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/readyz"), nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return nil
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("%w: %s", ErrNotReady, strings.TrimSpace(string(body)))
}

// ErrNotReady reports a live node refusing new work (draining or over
// its admission bound); callers route elsewhere or back off.
var ErrNotReady = errors.New("service: node not ready")

// AwaitReady polls readiness until the node admits work or ctx expires.
// Transport errors keep polling (the node may still be booting).
func (c *Client) AwaitReady(ctx context.Context) error {
	for {
		if err := c.Ready(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("service: node %s never became ready: %w", c.BaseURL, ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// Submit posts a batch and returns its submission-time status (cache
// hits are already complete in it). Transient transport failures and
// 429 backpressure are retried per the client's retry policy. A retry
// after a response was lost in flight can resubmit a batch the server
// already admitted; that is safe by construction — results are
// content-addressed, so the duplicate dedupes against the cache and
// singleflight layers and converges to identical bytes.
func (c *Client) Submit(ctx context.Context, jobs []Job) (BatchStatus, error) {
	body, err := json.Marshal(submitRequest{Jobs: jobs})
	if err != nil {
		return BatchStatus{}, err
	}
	var st BatchStatus
	err = c.retrier().Do(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/batches"), bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.http().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return decodeError(resp)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			// The batch was admitted but its id never arrived intact;
			// resubmitting is safe (see above), so mark retryable.
			return faults.MarkTransient(fmt.Errorf("service: decode submit response: %w", err))
		}
		return nil
	})
	if err != nil {
		return BatchStatus{}, err
	}
	return st, nil
}

// Status polls a batch, retrying transient failures.
func (c *Client) Status(ctx context.Context, id string) (BatchStatus, error) {
	var st BatchStatus
	err := c.retrier().Do(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/batches/"+id), nil)
		if err != nil {
			return err
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return decodeError(resp)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return faults.MarkTransient(fmt.Errorf("service: decode status: %w", err))
		}
		return nil
	})
	if err != nil {
		return BatchStatus{}, err
	}
	return st, nil
}

// Stream consumes a batch's NDJSON progress stream from the beginning
// (the server replays history), invoking fn per event until the final
// "done" event, a callback error, or ctx expiry.
//
// A severed or garbled stream is healed by reconnecting: because the
// server replays full batch history on every stream open, the client
// counts events already delivered to fn and silently skips that prefix
// on reconnect, so fn sees each event exactly once no matter how many
// times the transport fails underneath. Errors returned by fn itself
// are never retried.
func (c *Client) Stream(ctx context.Context, id string, fn func(Event) error) error {
	delivered := 0
	return c.retrier().Do(ctx, func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/batches/"+id+"/events"), nil)
		if err != nil {
			return err
		}
		resp, err := c.http().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return decodeError(resp)
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 16<<20) // occupancy histograms are large
		seen := 0
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var ev Event
			if err := json.Unmarshal(line, &ev); err != nil {
				// A garbled line is a transport fault: reconnect and let
				// history replay deliver the event intact.
				return faults.MarkTransient(fmt.Errorf("service: decode event: %w", err))
			}
			seen++
			if seen <= delivered {
				continue // replayed history already delivered to fn
			}
			delivered = seen
			if err := fn(ev); err != nil {
				return err
			}
			if ev.Type == "done" {
				return nil
			}
		}
		if err := sc.Err(); err != nil {
			return faults.MarkTransient(fmt.Errorf("service: event stream: %w", err))
		}
		return faults.MarkTransient(fmt.Errorf("service: event stream ended before the batch finished"))
	})
}

// Run submits a batch, consumes its progress stream, and returns the
// decoded per-point results in submission order. onEvent, when
// non-nil, receives every event; for "result" events it also gets the
// decoded results (each point is decoded exactly once — occupancy
// histograms make Results expensive to re-parse). Any failed point
// fails the whole call.
func (c *Client) Run(ctx context.Context, jobs []Job, onEvent func(Event, *stats.Results)) ([]stats.Results, error) {
	st, err := c.Submit(ctx, jobs)
	if err != nil {
		return nil, err
	}
	out := make([]stats.Results, len(jobs))
	got := make([]bool, len(jobs))
	var pointErrs []string
	err = c.Stream(ctx, st.ID, func(ev Event) error {
		var res *stats.Results
		switch ev.Type {
		case "result":
			if ev.Index >= 0 && ev.Index < len(out) {
				if err := json.Unmarshal(ev.Results, &out[ev.Index]); err != nil {
					return fmt.Errorf("service: batch %s: decode point %d: %w", st.ID, ev.Index, err)
				}
				got[ev.Index] = true
				res = &out[ev.Index]
			}
		case "error":
			pointErrs = append(pointErrs, fmt.Sprintf("%s: %s", ev.Name, ev.Error))
		}
		if onEvent != nil {
			onEvent(ev, res)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(pointErrs) > 0 {
		return nil, fmt.Errorf("service: batch %s: %d point(s) failed: %s",
			st.ID, len(pointErrs), strings.Join(pointErrs, "; "))
	}
	for i := range got {
		if !got[i] {
			return nil, fmt.Errorf("service: batch %s: point %d produced no result", st.ID, i)
		}
	}
	return out, nil
}

// SweepRunner adapts the client to the sweep-engine signature
// (experiments.Options.Runner): the same figure code then executes
// against the remote daemon's warm cache instead of the in-process
// pool. Progress and OnResult callbacks fire per streamed event, with
// cache hits marked in the progress line.
func (c *Client) SweepRunner() func(ctx context.Context, specs []sim.RunSpec, opt sim.Options) ([]stats.Results, error) {
	return func(ctx context.Context, specs []sim.RunSpec, opt sim.Options) ([]stats.Results, error) {
		// Route on readiness: a draining or backlogged daemon answers
		// /readyz with 503/429 semantics, and a sweep is interactive work
		// that should wait for admission rather than bounce off it.
		if err := c.AwaitReady(ctx); err != nil {
			return nil, err
		}
		jobs := make([]Job, len(specs))
		for i, spec := range specs {
			j, err := JobFromSpec(spec)
			if err != nil {
				return nil, err
			}
			jobs[i] = j
		}
		var onEvent func(Event, *stats.Results)
		if opt.Progress != nil || opt.OnResult != nil {
			onEvent = func(ev Event, res *stats.Results) {
				if res == nil {
					return // not a result event
				}
				spec := specs[ev.Index]
				if opt.Progress != nil {
					line := sim.ProgressLine(spec, *res)
					if ev.Cached {
						line += "  (cached)"
					}
					opt.Progress(ev.Done, ev.Total, line)
				}
				if opt.OnResult != nil {
					opt.OnResult(spec, *res)
				}
			}
		}
		return c.Run(ctx, jobs, onEvent)
	}
}
