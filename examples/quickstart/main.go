// Quickstart: build a workload, configure the two processors the paper
// compares, run them, and read the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	// A workload is a deterministic dynamic instruction stream. FPMix
	// approximates the paper's SPEC2000fp average; see internal/trace
	// for the individual kernels.
	const insts = 120_000
	workload := trace.FPMix(insts+30_000, 1)

	// The conventional baseline: a 128-entry reorder buffer and
	// 128-entry issue queues (everything else per Table 1, including
	// the 1000-cycle memory).
	baseline := config.BaselineSized(128)

	// The paper's processor: no ROB — an 8-entry checkpoint table
	// commits out of order, a 128-entry pseudo-ROB delays criticality
	// decisions, and a 2048-entry SLIQ parks long-latency dependants.
	cooo := config.CheckpointDefault(128, 2048)

	for _, tc := range []struct {
		name string
		cfg  config.Config
	}{
		{"baseline-128", baseline},
		{"cooo-128/2048", cooo},
	} {
		cpu, err := core.New(tc.cfg, workload)
		if err != nil {
			log.Fatal(err)
		}
		res := cpu.Run(core.RunOptions{MaxInsts: insts})
		fmt.Printf("%-14s IPC=%.3f  cycles=%-8d avg in-flight=%.0f\n",
			tc.name, res.IPC(), res.Cycles, res.MeanInflight)
	}
	fmt.Println("\nWith 1000-cycle memory, checkpointed commit sustains thousands of")
	fmt.Println("in-flight instructions with an 8-entry checkpoint table, while the")
	fmt.Println("128-entry ROB stalls every time a miss reaches its head.")
}
