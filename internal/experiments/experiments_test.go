package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/stats"
)

// quickOpts keeps figure regeneration fast while preserving the
// streaming kernels' steady-state miss behaviour (see DESIGN.md §4).
func quickOpts() Options {
	return Options{Insts: 50_000, Seed: 42}
}

func ctx() context.Context { return context.Background() }

func TestSuiteBenchmarks(t *testing.T) {
	bs := SuiteBenchmarks(1)
	if len(bs) != 6 {
		t.Fatalf("suite has %d members, want 6", len(bs))
	}
	names := map[string]bool{}
	for _, b := range bs {
		if names[b.Name] {
			t.Fatalf("duplicate benchmark %q", b.Name)
		}
		names[b.Name] = true
		tr := b.Gen(2000)
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
	}
}

func TestTraceCacheSharesSuite(t *testing.T) {
	opt := quickOpts().WithTraceCache()
	a, err := opt.suite()
	if err != nil {
		t.Fatal(err)
	}
	b, err := opt.suite()
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("suite sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].tr != b[i].tr {
			t.Errorf("benchmark %s regenerated instead of cached", a[i].name)
		}
	}
	// Without the cache each call generates fresh traces.
	plain := quickOpts()
	p1, err := plain.suite()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := plain.suite()
	if err != nil {
		t.Fatal(err)
	}
	if p1[0].tr == p2[0].tr {
		t.Error("uncached suites unexpectedly share trace pointers")
	}
}

// TestRemoteSuiteSkipsMaterialisation: with a Runner installed the
// suite carries recipe-only traces (identity without the instruction
// stream), matching what the suite's Gen would have produced.
func TestRemoteSuiteSkipsMaterialisation(t *testing.T) {
	opt := quickOpts()
	opt.Runner = func(_ context.Context, _ []sim.RunSpec, _ sim.Options) ([]stats.Results, error) {
		return nil, nil
	}
	remote, err := opt.suite()
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range remote {
		if st.tr.Len() != 0 {
			t.Errorf("%s: remote suite materialised %d instructions", st.name, st.tr.Len())
		}
		if _, ok := st.tr.Recipe(); !ok {
			t.Errorf("%s: remote suite trace has no recipe", st.name)
		}
	}
	// Recipe and Gen must describe the same workload.
	for _, b := range SuiteBenchmarks(1) {
		r, ok := b.Gen(2000).Recipe()
		if !ok {
			t.Fatalf("%s: generated trace has no recipe", b.Name)
		}
		if want := b.Recipe(2000); r != want {
			t.Errorf("%s: Gen recipe %+v != declared recipe %+v", b.Name, r, want)
		}
	}
}

func TestTable1(t *testing.T) {
	s := Table1()
	for _, want := range []string{"gshare", "1000 cycles", "4096 entries"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestRunPointsPropagatesErrors(t *testing.T) {
	opt := quickOpts()
	suite, err := opt.suite()
	if err != nil {
		t.Fatal(err)
	}
	// The zero config is invalid; the engine must surface the
	// validation error instead of panicking.
	_, err = opt.runPoints(ctx(), []point{{}}, suite)
	if err == nil {
		t.Fatal("invalid configuration did not produce an error")
	}
}

func TestFigure1Shape(t *testing.T) {
	r, err := Figure1(ctx(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Windows) - 1
	// Larger windows tolerate latency (the paper's core observation).
	if r.ByLatency[1000][last] <= r.ByLatency[1000][0] {
		t.Errorf("window scaling did not help at 1000 cycles: %v", r.ByLatency[1000])
	}
	// Perfect L2 dominates every finite-latency series.
	for i := range r.Windows {
		if r.PerfectL2[i] < r.ByLatency[1000][i] {
			t.Errorf("window %d: perfect L2 (%.3f) below 1000-cycle (%.3f)",
				r.Windows[i], r.PerfectL2[i], r.ByLatency[1000][i])
		}
	}
	// Lower latency is never worse at the same window size.
	for i := range r.Windows {
		if r.ByLatency[100][i] < r.ByLatency[1000][i]*0.98 {
			t.Errorf("window %d: 100-cycle IPC below 1000-cycle", r.Windows[i])
		}
	}
	if !strings.Contains(r.String(), "Figure 1") {
		t.Error("rendering must identify the figure")
	}
}

func TestFigure7Shape(t *testing.T) {
	r, err := Figure7(ctx(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != len(Figure7Percentiles) {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Percentile occupancies are non-decreasing.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].Inflight < r.Points[i-1].Inflight {
			t.Errorf("percentile occupancies must be monotone: %+v", r.Points)
		}
	}
	// The paper's observation: live instructions are a small minority
	// of in-flight instructions at the high percentiles.
	top := r.Points[len(r.Points)-1]
	live := top.BlockedLong + top.BlockedShort
	if top.Inflight > 0 && live > float64(top.Inflight) {
		t.Errorf("live (%.0f) cannot exceed in-flight (%d)", live, top.Inflight)
	}
	if r.PerBenchmark["stream"] == nil {
		t.Error("per-benchmark distributions missing")
	}
}

func TestFigure9And11Shape(t *testing.T) {
	r, err := Figure9(ctx(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// COoO must beat the small baseline and trail close behind the
	// unrealisable big one.
	best := r.IPC[2048][128]
	if best <= r.Baseline128IPC {
		t.Errorf("COoO 128/2048 (%.3f) must beat baseline-128 (%.3f)", best, r.Baseline128IPC)
	}
	if best > r.Baseline4096IPC*1.15 {
		t.Errorf("COoO 128/2048 (%.3f) implausibly above baseline-4096 (%.3f)", best, r.Baseline4096IPC)
	}
	// Bigger IQ never hurts at fixed SLIQ (within noise).
	for _, sliq := range r.SLIQs {
		if r.IPC[sliq][128] < r.IPC[sliq][32]*0.95 {
			t.Errorf("SLIQ %d: IQ scaling regressed: %v", sliq, r.IPC[sliq])
		}
	}
	// Figure 11: the COoO sustains far more in flight than baseline-128.
	if r.Inflight[2048][128] < 4*r.Baseline128Inflight {
		t.Errorf("COoO in-flight (%.0f) should dwarf baseline-128 (%.0f)",
			r.Inflight[2048][128], r.Baseline128Inflight)
	}
	if !strings.Contains(r.Figure11String(), "Figure 11") {
		t.Error("figure 11 rendering broken")
	}
}

func TestFigure10Shape(t *testing.T) {
	r, err := Figure10(ctx(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's point: near-total insensitivity to the wake delay.
	if slow := r.MaxSlowdown(); slow > 0.08 {
		t.Errorf("re-insertion delay slowdown %.1f%% too large (paper ~1%%)", 100*slow)
	}
	if !strings.Contains(r.String(), "Figure 10") {
		t.Error("rendering broken")
	}
}

func TestFigure12Shape(t *testing.T) {
	r, err := Figure12(ctx(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	b := r.Breakdown[2048][128]
	if b.Total() == 0 {
		t.Fatal("empty breakdown")
	}
	// Paper bands (loosely): stores ~10%, moved is the dominant
	// movable class, long-latency loads are a visible minority.
	if f := b.Fraction(stats.RetireStore); f < 0.04 || f > 0.2 {
		t.Errorf("store fraction %.2f outside [0.04, 0.2]", f)
	}
	if f := b.Fraction(stats.RetireMoved); f < 0.1 || f > 0.6 {
		t.Errorf("moved fraction %.2f outside [0.1, 0.6]", f)
	}
	if f := b.Fraction(stats.RetireLongLatLoad); f < 0.02 {
		t.Errorf("long-latency load fraction %.2f implausibly low", f)
	}
}

func TestFigure13Shape(t *testing.T) {
	r, err := Figure13(ctx(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// More checkpoints monotonically approach the limit (within noise).
	for i := 1; i < len(r.Checkpoints); i++ {
		a, b := r.IPC[r.Checkpoints[i-1]], r.IPC[r.Checkpoints[i]]
		if b < a*0.97 {
			t.Errorf("checkpoints %d -> %d regressed: %.3f -> %.3f",
				r.Checkpoints[i-1], r.Checkpoints[i], a, b)
		}
	}
	// 4 checkpoints must hurt more than 32.
	if r.Slowdown(4) < r.Slowdown(32) {
		t.Errorf("slowdown(4)=%.2f should exceed slowdown(32)=%.2f",
			r.Slowdown(4), r.Slowdown(32))
	}
}

func TestFigure14Shape(t *testing.T) {
	r, err := Figure14(ctx(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, lat := range r.Latencies {
		// More tags never hurt at fixed physical registers.
		if r.IPC[lat][2048][512] < r.IPC[lat][512][512]*0.95 {
			t.Errorf("lat %d: virtual tag scaling regressed", lat)
		}
		// The combined mechanism beats the 128-entry baseline.
		if r.IPC[lat][2048][512] <= r.Baseline128[lat] {
			t.Errorf("lat %d: combined mechanism (%.3f) not above baseline-128 (%.3f)",
				lat, r.IPC[lat][2048][512], r.Baseline128[lat])
		}
	}
}

func TestAblationCheckpointStrategy(t *testing.T) {
	r, err := AblationCheckpointStrategy(ctx(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Labels) != 6 {
		t.Fatalf("variants = %d", len(r.Labels))
	}
	// Coarse periodic windows must beat very fine ones (more in-flight
	// instructions per checkpoint slot).
	if r.IPC["periodic 512"] <= r.IPC["periodic 64"] {
		t.Errorf("coarser periodic checkpointing should win: %v", r.IPC)
	}
	if !strings.Contains(r.String(), "Ablation") {
		t.Error("rendering broken")
	}
}

func TestAblationWakeWidth(t *testing.T) {
	r, err := AblationWakeWidth(ctx(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Width 8 never loses to width 1 (more bandwidth can't hurt).
	if r.IPC["wake width 8/cycle"] < r.IPC["wake width 1/cycle"]*0.97 {
		t.Errorf("wider wake pump regressed: %v", r.IPC)
	}
}

func TestAblationMemoryPorts(t *testing.T) {
	r, err := AblationMemoryPorts(ctx(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC["4 ports"] < r.IPC["1 ports"] {
		t.Errorf("more ports regressed: %v", r.IPC)
	}
	// One port must visibly throttle the load-heavy suite.
	if r.IPC["1 ports"] > r.IPC["2 ports"]*0.99 {
		t.Errorf("single port should cost something: %v", r.IPC)
	}
}

func TestAblationBranchPrediction(t *testing.T) {
	r, err := AblationBranchPrediction(ctx(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Perfect prediction never loses at equal pseudo-ROB size.
	if r.IPC["perfect, pseudo-ROB 128"] < r.IPC["gshare, pseudo-ROB 128"]*0.99 {
		t.Errorf("perfect prediction regressed: %v", r.IPC)
	}
}

func TestAblationPrefetch(t *testing.T) {
	r, err := AblationPrefetch(ctx(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Prefetching helps the small window...
	if r.IPC["baseline-128 + prefetch 8"] <= r.IPC["baseline-128"] {
		t.Errorf("prefetching should help streams: %v", r.IPC)
	}
	// ...but does not reach the kilo-instruction alternatives (the
	// introduction's claim).
	if r.IPC["baseline-128 + prefetch 8"] >= r.IPC["COoO-128/2048 (no prefetch)"] {
		t.Errorf("prefetch alone should not match the checkpointed window: %v", r.IPC)
	}
}

func TestAblationCommitPolicies(t *testing.T) {
	r, err := AblationCommitPolicies(ctx(), quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Labels) != 5 {
		t.Fatalf("variants = %d, want 5 (four policies + the 4096 baseline)", len(r.Labels))
	}
	for _, l := range r.Labels {
		if r.IPC[l] <= 0 {
			t.Errorf("%s: IPC %.3f", l, r.IPC[l])
		}
	}
	// The ordering the sweep exists to show: small baseline at the
	// bottom, the checkpointed policies well above it, the unbounded
	// oracle on top of everything (within noise).
	if r.IPC["checkpoint-128/2048"] <= r.IPC["rob-128"] {
		t.Errorf("checkpoint commit should beat the small baseline: %v", r.IPC)
	}
	if r.IPC["adaptive-128/2048"] <= r.IPC["rob-128"] {
		t.Errorf("adaptive commit should beat the small baseline: %v", r.IPC)
	}
	for _, l := range r.Labels {
		if r.IPC[l] > r.IPC["oracle-unbounded"]*1.02 {
			t.Errorf("%s (%.3f) above the oracle limit (%.3f)", l, r.IPC[l], r.IPC["oracle-unbounded"])
		}
	}

	// The -commit filter restricts the sweep and rejects empty matches.
	sub, err := AblationCommitPolicies(ctx(), quickOpts(), config.CommitOracle)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Labels) != 1 || sub.Labels[0] != "oracle-unbounded" {
		t.Fatalf("filtered labels: %v", sub.Labels)
	}
	if _, err := AblationCommitPolicies(ctx(), quickOpts(), config.CommitMode("warp")); err == nil {
		t.Fatal("an unmatched filter must error, not run an empty sweep")
	}
}
