// Command ooosim runs a single processor configuration over one
// workload and prints the detailed results — the quick way to explore
// the simulator outside the paper's fixed sweeps.
//
// Examples:
//
//	ooosim -commit checkpoint -iq 64 -sliq 1024 -workload fpmix -mem 1000
//	ooosim -commit rob -rob 128 -workload stream -mem 500 -insts 200000
//	ooosim -commit checkpoint -program isort -insts 100000
//
// -dump-config prints the flag-built configuration as canonical JSON
// (the ooosimd batch-API wire form) and exits; -config FILE loads a
// complete configuration from such a file instead of the flags.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/config"
	"repro/internal/isa/programs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	commit := flag.String("commit", "checkpoint", "commit policy: rob, checkpoint, adaptive or oracle")
	robEntries := flag.Int("rob", 4096, "ROB entries (rob mode); also sizes queues")
	iq := flag.Int("iq", 128, "issue-queue and pseudo-ROB entries (checkpoint/adaptive modes)")
	sliq := flag.Int("sliq", 2048, "SLIQ entries (checkpoint/adaptive modes; 0 disables)")
	ckpts := flag.Int("checkpoints", 8, "checkpoint-table entries (checkpoint/adaptive modes)")
	confThreshold := flag.Int("conf-threshold", 8, "adaptive mode: a branch below this confidence gets a checkpoint (1..15)")
	mem := flag.Int("mem", 1000, "memory latency in cycles")
	perfectL2 := flag.Bool("perfect-l2", false, "make every L2 access hit")
	workload := flag.String("workload", "fpmix", "stream|strided|stencil|reduction|blocked|pointerchase|fpmix")
	program := flag.String("program", "", "run a real RV32 program instead of a synthetic workload: "+strings.Join(programs.Names(), "|"))
	input := flag.Int("input", 0, "program input size (-program only; 0 sizes it from -insts)")
	insts := flag.Uint64("insts", 300000, "committed instructions to simulate")
	sample := flag.String("sample", "", "SMARTS sampled simulation as warmup:detail:period (e.g. 10000:10000:200000); -insts then bounds the streamed budget")
	seed := flag.Uint64("seed", 42, "workload seed (fpmix and programs)")
	vregs := flag.Int("vtags", 0, "enable virtual registers with this many tags (0 = off)")
	phys := flag.Int("phys", 4096, "physical registers")
	configFile := flag.String("config", "", "load the complete configuration from a canonical-JSON file (config flags are then ignored)")
	dumpConfig := flag.Bool("dump-config", false, "print the configuration as canonical JSON and exit (the ooosimd batch wire form)")
	flag.Parse()

	var cfg config.Config
	if *configFile != "" {
		data, err := os.ReadFile(*configFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg, err = config.ParseJSON(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *configFile, err)
			os.Exit(1)
		}
	} else {
		mode, err := config.ParseCommitMode(*commit)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// A flag only some policies read must not be silently dropped
		// for the others (the CLI mirror of config.Validate's
		// ignored-parameter-block rule): an explicitly passed flag that
		// the selected policy ignores is an error, not a no-op.
		ckptFamily := []config.CommitMode{config.CommitCheckpoint, config.CommitAdaptive}
		flagModes := map[string][]config.CommitMode{
			"rob":            {config.CommitROB},
			"iq":             ckptFamily,
			"sliq":           ckptFamily,
			"checkpoints":    ckptFamily,
			"vtags":          ckptFamily,
			"conf-threshold": {config.CommitAdaptive},
		}
		flag.Visit(func(f *flag.Flag) {
			allowed, restricted := flagModes[f.Name]
			if !restricted {
				return
			}
			for _, m := range allowed {
				if m == mode {
					return
				}
			}
			fmt.Fprintf(os.Stderr, "-%s does not apply to -commit %s\n", f.Name, mode)
			os.Exit(2)
		})
		switch mode {
		case config.CommitROB:
			cfg = config.BaselineSized(*robEntries)
		case config.CommitCheckpoint:
			cfg = config.CheckpointDefault(*iq, *sliq)
			cfg.Checkpoints = *ckpts
		case config.CommitAdaptive:
			cfg = config.AdaptiveDefault(*iq, *sliq)
			cfg.Checkpoints = *ckpts
			cfg.AdaptiveConfidenceThreshold = *confThreshold
		case config.CommitOracle:
			cfg = config.OracleDefault()
		default:
			// A policy registered without CLI wiring: surface it rather
			// than silently building the wrong machine.
			fmt.Fprintf(os.Stderr, "commit policy %q has no flag mapping; use -config FILE\n", mode)
			os.Exit(2)
		}
		cfg.MemoryLatency = *mem
		cfg.PerfectL2 = *perfectL2
		cfg.PhysRegs = *phys
		if *vregs > 0 {
			cfg.VirtualRegisters = true
			cfg.VirtualTags = *vregs
		}
	}

	if *dumpConfig {
		data, err := cfg.CanonicalJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		return
	}

	// The workload flags build a trace recipe: the same declarative
	// identity a service batch ships, so the kernel dispatch (and its
	// validation) lives in one place.
	var recipe trace.Recipe
	if *program != "" {
		// -program replaces -workload; saying both is a contradiction,
		// not a precedence question.
		workloadSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "workload" {
				workloadSet = true
			}
		})
		if workloadSet {
			fmt.Fprintln(os.Stderr, "-program and -workload are mutually exclusive")
			os.Exit(2)
		}
		spec, ok := programs.Lookup(*program)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown program %q; available: %s\n", *program, strings.Join(programs.Names(), ", "))
			os.Exit(2)
		}
		in := *input
		if in == 0 {
			in = spec.InputFor(*insts)
		}
		recipe = trace.Recipe{Kernel: trace.KernelProgram, Program: *program, Input: in, Seed: *seed}
	} else {
		if *input != 0 {
			fmt.Fprintln(os.Stderr, "-input applies only with -program")
			os.Exit(2)
		}
		recipe = trace.Recipe{Kernel: *workload, N: trace.LenFor(*insts)}
		switch *workload {
		case trace.KernelStrided:
			recipe.Stride = 8
		case trace.KernelFPMix:
			recipe.Seed = *seed
		}
	}
	// Sampled runs stream the recipe (no materialisation, and the
	// per-allocation recipe cap does not apply); full-detail runs
	// materialise as before.
	var sampleSpec trace.SampleSpec
	if *sample != "" {
		var err error
		if sampleSpec, err = parseSample(*sample); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	var tr *trace.Trace
	var err error
	if sampleSpec.Enabled() {
		tr, err = trace.StreamOnly(recipe)
	} else {
		tr, err = recipe.Materialise()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	res, err := sim.Run(sim.RunSpec{
		Name:   recipe.WorkloadName(),
		Config: cfg,
		Trace:  tr,
		Insts:  *insts,
		Sample: sampleSpec,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printResults(cfg, res)
}

// parseSample parses the -sample flag's warmup:detail:period form.
func parseSample(s string) (trace.SampleSpec, error) {
	var spec trace.SampleSpec
	if _, err := fmt.Sscanf(s, "%d:%d:%d", &spec.Warmup, &spec.Detail, &spec.Period); err != nil {
		return trace.SampleSpec{}, fmt.Errorf("-sample wants warmup:detail:period instruction counts, got %q", s)
	}
	return spec, spec.Validate()
}

func printResults(cfg config.Config, r stats.Results) {
	fmt.Println("Configuration")
	fmt.Println(strings.Repeat("-", 60))
	fmt.Print(cfg)
	fmt.Println()
	fmt.Println("Results")
	fmt.Println(strings.Repeat("-", 60))
	row := func(k string, format string, args ...any) {
		fmt.Printf("%-28s %s\n", k, fmt.Sprintf(format, args...))
	}
	row("IPC", "%.3f", r.IPC())
	if s := r.Sampled; s != nil {
		row("Sampled IPC (95% CI)", "%.3f ± %.3f over %d windows", s.IPCMean(), s.IPCCI95(), s.Windows)
		row("Sampling coverage", "%d measured + %d warmup of %d insts (%.1f%% detail)",
			s.SampledInsts, s.WarmupInsts, s.TotalInsts, 100*s.DetailFraction())
		row("Fast-forwarded", "%d insts (functional warming only)", s.FastForwardInsts)
	}
	row("Cycles", "%d", r.Cycles)
	row("Committed", "%d", r.Committed)
	row("Fetched", "%d", r.Fetched)
	row("Replayed (rollback waste)", "%d (%.2f per committed)", r.Replayed, r.ReplayRate())
	row("Avg in-flight", "%.0f (max %d)", r.MeanInflight, r.MaxInflight)
	row("Branch mispredict rate", "%.2f%%", 100*r.Branch.MispredictRate())
	if r.BTB != nil {
		row("BTB hit rate", "%.1f%% (%d lookups, %d bad targets)", 100*r.BTB.HitRate(), r.BTB.Lookups, r.BTB.BadTargets)
	}
	if r.LSQ != nil {
		row("LSQ forwards", "%d (of %d loads; %d forward stalls)", r.LSQ.Forwards, r.LSQ.Loads, r.LSQ.ForwardStalls)
	}
	row("DL1 miss rate", "%.1f%%", 100*r.Mem.DL1.MissRate())
	row("L2 miss rate", "%.1f%%", 100*r.Mem.L2.MissRate())
	row("Memory line fetches", "%d (+%d merged)", r.Mem.MemAccesses, r.Mem.MergedMisses)
	if r.CheckpointsTaken > 0 {
		row("Checkpoints taken", "%d (committed %d)", r.CheckpointsTaken, r.CheckpointsCommitted)
		row("Checkpoint-full stalls", "%d cycles", r.CheckpointStallCycles)
		row("Rollbacks", "%d (pseudo-ROB recoveries %d)", r.Rollbacks, r.PseudoROBRecoveries)
		row("SLIQ moved/woken", "%d / %d", r.SLIQMoved, r.SLIQWoken)
		if r.Retire.Total() > 0 {
			row("Pseudo-ROB breakdown", "%s", r.Retire.String())
		}
	}
}
