package programs_test

import (
	"sort"
	"testing"

	"repro/internal/isa"
	"repro/internal/isa/programs"
	"repro/internal/isa/rv32"
)

// TestEveryProgramBuildsAndHalts is the registry's contract test: for
// every registered program, an InputFor-suggested input builds, executes
// to a halt, and maps to a well-formed dynamic pipeline stream (real
// text-range PCs, data-range effective addresses, resolved branch
// targets) plus a static image covering the whole text.
func TestEveryProgramBuildsAndHalts(t *testing.T) {
	names := programs.Names()
	if len(names) < 4 {
		t.Fatalf("registry too small: %v", names)
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			spec, ok := programs.Lookup(name)
			if !ok {
				t.Fatalf("Lookup(%q) missed a listed program", name)
			}
			input := spec.InputFor(30_000)
			if input < 1 || input > spec.MaxInput {
				t.Fatalf("InputFor suggestion %d outside [1, %d]", input, spec.MaxInput)
			}
			p, err := spec.Build(input, 42)
			if err != nil {
				t.Fatal(err)
			}
			stream, img, err := rv32.BuildTrace(p, 4<<20)
			if err != nil {
				t.Fatal(err)
			}
			if len(stream) == 0 {
				t.Fatal("empty dynamic stream")
			}
			if img.Len() != len(p.Text) {
				t.Fatalf("image covers %d words, text has %d", img.Len(), len(p.Text))
			}
			textBase := uint64(rv32.TextBase)
			textEnd := textBase + 4*uint64(len(p.Text))
			var branches, memOps int
			for i, in := range stream {
				if in.PC < textBase || in.PC >= textEnd {
					t.Fatalf("inst %d: pc %#x outside text [%#x, %#x)", i, in.PC, textBase, textEnd)
				}
				switch in.Op {
				case isa.Branch:
					branches++
					if in.Taken && (in.Target < textBase || in.Target >= textEnd) {
						t.Fatalf("inst %d: taken branch targets %#x outside text", i, in.Target)
					}
				case isa.Load, isa.Store:
					memOps++
					if in.Addr < textBase {
						t.Fatalf("inst %d: %v effective address %#x below the address floor", i, in.Op, in.Addr)
					}
				}
			}
			if branches == 0 || memOps == 0 {
				t.Fatalf("stream has %d branches and %d memory ops; every kernel must exercise both", branches, memOps)
			}
			t.Logf("%s(input=%d): %d insts, %d branches, %d mem ops", name, input, len(stream), branches, memOps)
		})
	}

	if _, ok := programs.Lookup("no-such-program"); ok {
		t.Error("Lookup accepted an unregistered name")
	}
}

// TestBuildRejectsOutOfRangeInput pins the input validation every
// program shares.
func TestBuildRejectsOutOfRangeInput(t *testing.T) {
	for _, name := range programs.Names() {
		spec, _ := programs.Lookup(name)
		if _, err := spec.Build(0, 42); err == nil {
			t.Errorf("%s: Build(0) succeeded", name)
		}
		if _, err := spec.Build(spec.MaxInput+1, 42); err == nil {
			t.Errorf("%s: Build(MaxInput+1) succeeded", name)
		}
	}
}

// TestISortSortsMemory checks the flagship kernel architecturally: after
// execution the seeded array at DataBase really is sorted (signed
// ascending — the kernel compares with BGE), so the pipeline stream
// downstream reflects a genuine algorithm, not just plausible-looking
// address traffic.
func TestISortSortsMemory(t *testing.T) {
	spec, _ := programs.Lookup("isort")
	const n = 100
	p, err := spec.Build(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := rv32.Execute(p, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	prev := int32(-1 << 31)
	for i := 0; i < n; i++ {
		v := int32(m.ReadWord(rv32.DataBase + uint32(4*i)))
		if v < prev {
			t.Fatalf("a[%d]=%#x < a[%d]=%#x: not sorted", i, v, i-1, prev)
		}
		prev = v
	}
}

// TestMemcpyCopies checks memcpy architecturally, including the byte
// tail: dst must equal src for a length that is not word-aligned.
func TestMemcpyCopies(t *testing.T) {
	spec, _ := programs.Lookup("memcpy")
	const n = 259 // 64 words + 3 tail bytes
	p, err := spec.Build(n, 9)
	if err != nil {
		t.Fatal(err)
	}
	m, err := rv32.Execute(p, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	const srcBase, dstBase = 0x100000, 0x200000
	for off := uint32(0); off < n; off += 4 {
		// ReadWord is fine even over the tail: both sides see the same
		// untouched bytes past n.
		if off+4 <= n {
			if s, d := m.ReadWord(srcBase+off), m.ReadWord(dstBase+off); s != d {
				t.Fatalf("dst[%#x]=%#x != src=%#x", off, d, s)
			}
		}
	}
	// The tail bytes, via shifted word reads on the last aligned word.
	last := uint32(n &^ 3)
	s, d := m.ReadWord(srcBase+last), m.ReadWord(dstBase+last)
	mask := uint32(1)<<(8*(n-last)) - 1
	if s&mask != d&mask {
		t.Fatalf("tail bytes differ: src=%#x dst=%#x mask=%#x", s, d, mask)
	}
}

// TestBuildIsDeterministic: the same (input, seed) pair must yield a
// byte-identical program — data layout, init state and text — because
// the trace layer's fingerprint cache assumes recipes are pure.
func TestBuildIsDeterministic(t *testing.T) {
	for _, name := range programs.Names() {
		spec, _ := programs.Lookup(name)
		input := spec.InputFor(20_000)
		p1, err1 := spec.Build(input, 1234)
		p2, err2 := spec.Build(input, 1234)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v / %v", name, err1, err2)
		}
		if len(p1.Text) != len(p2.Text) {
			t.Fatalf("%s: text lengths differ", name)
		}
		for i := range p1.Text {
			if p1.Text[i] != p2.Text[i] {
				t.Fatalf("%s: text word %d differs", name, i)
			}
		}
		if len(p1.Data) != len(p2.Data) {
			t.Fatalf("%s: segment counts differ", name)
		}
		for i := range p1.Data {
			if p1.Data[i].Addr != p2.Data[i].Addr || string(p1.Data[i].Data) != string(p2.Data[i].Data) {
				t.Fatalf("%s: segment %d differs", name, i)
			}
		}
		for r, v := range p1.Init {
			if p2.Init[r] != v {
				t.Fatalf("%s: init x%d differs", name, r)
			}
		}
		// A different seed must actually change the data (all kernels are
		// seeded except the fixed-layout parts of dhry's function table).
		p3, err := spec.Build(input, 99)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := range p1.Data {
			if string(p1.Data[i].Data) != string(p3.Data[i].Data) {
				same = false
			}
		}
		if same && name != "dhry" {
			t.Errorf("%s: seed change did not alter the data layout", name)
		}
	}
}
