package service

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// openTestJournal opens a journal under a temp dir.
func openTestJournal(t *testing.T, dir string) *Journal {
	t.Helper()
	j, err := OpenJournal(filepath.Join(dir, "journal.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	jobsA := []Job{testJob("a0", 32), testJob("a1", 48)}
	jobsB := []Job{testJob("b0", 64)}

	if err := j.AppendBatch("b1", jobsA); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendPoint(fakeKey(0)); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendBatch("b2", jobsB); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendBatchDone("b2"); err != nil {
		t.Fatal(err)
	}

	pending, completed, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].ID != "b1" {
		t.Fatalf("pending = %+v, want just b1", pending)
	}
	if len(pending[0].Jobs) != 2 || pending[0].Jobs[0].Name != "a0" {
		t.Fatalf("recovered jobs wrong: %+v", pending[0].Jobs)
	}
	if !completed[fakeKey(0)] || len(completed) != 1 {
		t.Fatalf("completed = %v", completed)
	}

	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	pending, completed, err = j.Replay()
	if err != nil || len(pending) != 0 || len(completed) != 0 {
		t.Fatalf("post-reset replay not empty: %v %v %v", pending, completed, err)
	}
}

// TestJournalTornFinalRecord: a crash mid-append leaves a torn last
// line; replay drops it and keeps everything before it.
func TestJournalTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	if err := j.AppendBatch("b1", []Job{testJob("a", 32)}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendPoint(fakeKey(1)); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn write: a prefix of a valid record, no newline.
	path := filepath.Join(dir, "journal.ndjson")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"point","fp":"deadbe`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	pending, completed, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 1 || pending[0].ID != "b1" {
		t.Fatalf("torn record corrupted replay: pending=%+v", pending)
	}
	if !completed[fakeKey(1)] || len(completed) != 1 {
		t.Fatalf("torn record corrupted completed set: %v", completed)
	}
}

// TestRestartRecovery is the satellite's crash contract: a daemon dies
// mid-batch with the journal partially written (one point completed and
// journaled, plus a torn final record), a fresh scheduler over the same
// cache dir recovers, and the resumed batch completes byte-identical
// with zero duplicate simulator calls for the already-journaled point.
func TestRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	jobs := []Job{testJob("p0", 32), testJob("p1", 48), testJob("p2", 64)}

	// Reference bytes from an isolated scheduler (no cache dir shared).
	ref := NewScheduler(SchedulerOptions{Workers: 2})
	refBatch, err := ref.Submit(jobs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	refStatus, err := refBatch.Wait(ctx)
	if err != nil || len(refStatus.Errors) != 0 {
		t.Fatalf("reference run failed: %v %v", err, refStatus.Errors)
	}

	// "Crashing" daemon: run the full batch so its journal and cache
	// fill, then fabricate the crash state by rewriting the journal as
	// if only p0's point record (and no batchdone) made it to disk —
	// plus a torn final record — and evicting p1/p2 from the disk cache.
	cache1, err := NewCache(4, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	j1 := openTestJournal(t, dir)
	s1, _ := countingScheduler(t, SchedulerOptions{Workers: 2, Cache: cache1, Journal: j1}, 0)
	b1, err := s1.Submit(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b1.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	fps := b1.Fingerprints()
	for _, fp := range fps[1:] {
		if err := os.Remove(filepath.Join(cacheDir, fp[:2], fp+".json")); err != nil {
			t.Fatalf("evict %s: %v", fp, err)
		}
	}
	jpath := filepath.Join(dir, "journal.ndjson")
	if err := os.WriteFile(jpath, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if err := j2.AppendBatch("b1", jobs); err != nil {
		t.Fatal(err)
	}
	if err := j2.AppendPoint(fps[0]); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":"point","fp":"torn`)
	f.Close()

	// Restarted daemon over the same cache dir and journal.
	cache2, err := NewCache(4, cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	s2, runs2 := countingScheduler(t, SchedulerOptions{Workers: 2, Cache: cache2, Journal: j2}, 0)
	requeued, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 1 {
		t.Fatalf("requeued = %d, want 1", requeued)
	}
	if got := s2.metrics.RecoveredBatches.Load(); got != 1 {
		t.Fatalf("RecoveredBatches = %d, want 1", got)
	}

	// The recovered batch is addressable through the normal API.
	s2.mu.Lock()
	if len(s2.order) != 1 {
		s2.mu.Unlock()
		t.Fatalf("recovered scheduler has %d batches", len(s2.order))
	}
	id := s2.order[0]
	s2.mu.Unlock()
	b2, ok := s2.Batch(id)
	if !ok {
		t.Fatalf("recovered batch %s not addressable", id)
	}
	st, err := b2.Wait(ctx)
	if err != nil || len(st.Errors) != 0 {
		t.Fatalf("recovered batch failed: %v %v", err, st.Errors)
	}

	// Zero duplicate simulator calls for the journaled-and-cached point:
	// only the two evicted points re-ran.
	if got := runs2.Load(); got != 2 {
		t.Fatalf("restart re-simulated %d points, want 2", got)
	}
	// Byte-identical to the fault-free reference.
	for i := range refStatus.Results {
		if !bytes.Equal(refStatus.Results[i], st.Results[i]) {
			t.Fatalf("point %d diverged after recovery:\nref: %s\ngot: %s",
				i, refStatus.Results[i], st.Results[i])
		}
	}

	// Recovery truncated and re-journaled: a third replay sees the
	// re-admitted batch marked done, nothing pending.
	pending, _, err := j2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("journal still carries pending batches after completion: %+v", pending)
	}
}

// TestSchedulerJournalsBatchLifecycle: a journaled scheduler writes
// batch, per-miss point, and batchdone records; an all-hit batch
// writes nothing.
func TestSchedulerJournalsBatchLifecycle(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir)
	s := NewScheduler(SchedulerOptions{Workers: 2, Journal: j})
	jobs := []Job{testJob("x", 32), testJob("y", 48)}
	b, err := s.Submit(jobs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if _, err := b.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// Wait's return races the post-Complete journal appends by a hair;
	// poll briefly for the batchdone record.
	deadline := time.Now().Add(5 * time.Second)
	for {
		raw, err := os.ReadFile(filepath.Join(dir, "journal.ndjson"))
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(raw, []byte(`"batchdone"`)) {
			if !bytes.Contains(raw, []byte(`"t":"batch"`)) || !bytes.Contains(raw, []byte(`"t":"point"`)) {
				t.Fatalf("journal missing records: %s", raw)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batchdone never journaled: %s", raw)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Resubmitting the same jobs is now all hits: no new batch record.
	before, _ := os.ReadFile(filepath.Join(dir, "journal.ndjson"))
	b2, err := s.Submit(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(filepath.Join(dir, "journal.ndjson"))
	if !bytes.Equal(before, after) {
		t.Fatalf("all-hit batch appended journal records:\nbefore: %s\nafter: %s", before, after)
	}
}
