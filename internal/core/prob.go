package core

import (
	"repro/internal/isa"
	"repro/internal/rename"
	"repro/internal/stats"
)

// extractPseudoROB retires the oldest pseudo-ROB entry to make room for
// a dispatching instruction. This is the paper's delayed criticality
// decision (section 3): only now — when the instruction is the oldest in
// the FIFO — is it classified, and not-yet-issued instructions that
// transitively depend on an L2-missing load are moved from the precious
// issue queue into the SLIQ. Records whose window already committed are
// recycled once classified (see retireWindow).
func (p *checkpointPolicy) extractPseudoROB() {
	d, ok := p.prob.PopFront()
	if !ok {
		return
	}
	d.inProb = false
	p.classifyExtract(d)
	if d.Retired {
		p.c.pool.release(d)
	}
}

// note records the classification on the instruction for debugging.
func (p *checkpointPolicy) note(d *DynInst, cl stats.RetireClass) {
	p.c.retire[cl]++
	d.retireClass = int8(cl)
}

// classifyExtract buckets the retired entry into Figure 12's classes and
// maintains the logical-register dependence mask.
func (p *checkpointPolicy) classifyExtract(d *DynInst) {
	op := d.Inst.Op
	switch {
	case op == isa.Store:
		p.note(d, stats.RetireStore)
		// Stores have no destination: the mask is unaffected.

	case op == isa.Load:
		switch {
		case d.Done:
			p.note(d, stats.RetireFinishedLoad)
			p.maskRedefine(d, false, rename.PhysNone)
		case d.Issued && d.MissedL2:
			// The problem makers: seed the dependence mask with the
			// load's destination.
			p.note(d, stats.RetireLongLatLoad)
			p.maskSeed(d)
		case d.Issued:
			// In flight but hit in L1/L2 — the paper counts these
			// with the finished loads.
			p.note(d, stats.RetireFinishedLoad)
			p.maskRedefine(d, false, rename.PhysNone)
		default:
			// Not yet issued: per the paper's t0 example, a load that
			// "has not yet finished its execution" at extraction is
			// treated as long latency — its destination seeds the
			// mask so consumers move to the SLIQ rather than clog the
			// issue queue. The load itself moves too if its address
			// hangs off another long-latency chain.
			dep, root, rootSeq := p.maskDependence(d)
			if dep {
				_ = rootSeq
				if p.moveToSLIQ(d, root) {
					p.note(d, stats.RetireMoved)
				} else {
					p.note(d, stats.RetireShortLat)
				}
			} else {
				p.note(d, stats.RetireShortLat)
			}
			p.maskSeed(d)
		}

	default:
		switch {
		case d.Done || d.Issued:
			p.note(d, stats.RetireFinished)
			p.maskRedefine(d, false, rename.PhysNone)
		default:
			p.classifyWaiting(d)
		}
	}
}

// classifyWaiting handles a not-yet-issued instruction at extraction:
// mask-dependent ones move to the SLIQ (freeing their issue-queue entry),
// independent ones stay and are expected to issue shortly.
func (p *checkpointPolicy) classifyWaiting(d *DynInst) {
	dep, root, rootSeq := p.maskDependence(d)
	if dep {
		p.maskPropagate(d, root, rootSeq)
		if p.moveToSLIQ(d, root) {
			p.note(d, stats.RetireMoved)
			return
		}
		// SLIQ full or absent: the instruction keeps its issue-queue
		// entry; account it as short-latency residue.
		p.note(d, stats.RetireShortLat)
		return
	}
	p.note(d, stats.RetireShortLat)
	p.maskRedefine(d, false, rename.PhysNone)
}

// maskDependence reports whether any source of d is covered by the
// dependence mask, returning the physical register (and owning dynamic
// instruction sequence) of the long-latency load at the root of the
// chain.
func (p *checkpointPolicy) maskDependence(d *DynInst) (bool, rename.PhysReg, uint64) {
	for _, s := range [2]isa.Reg{d.Inst.Src1, d.Inst.Src2} {
		if s == isa.RegNone || !p.depMask[s] {
			continue
		}
		root := p.maskOwner[s]
		if !p.triggerLive(root, p.maskOwnerSeq[s]) {
			// The root already produced its value (or was squashed);
			// the mask bit is stale and will be cleared by the next
			// redefinition.
			continue
		}
		return true, root, p.maskOwnerSeq[s]
	}
	return false, rename.PhysNone, 0
}

// triggerLive reports whether a SLIQ trigger register is still awaiting
// a write from the producer recorded in the mask — the condition under
// which waiting on it is guaranteed to end with a TriggerReady. The
// sequence check rejects registers freed and reallocated since the mask
// bit was set (and, with recycled records, producers whose slot was
// reused by a younger instruction).
func (p *checkpointPolicy) triggerLive(root rename.PhysReg, rootSeq uint64) bool {
	c := p.c
	if root == rename.PhysNone || c.regReady[root] {
		return false
	}
	pr := c.producer[root]
	return pr != nil && !pr.Squashed && pr.Seq == rootSeq
}

// maskSeed marks a long-latency load's destination in the mask.
func (p *checkpointPolicy) maskSeed(d *DynInst) {
	p.depMask[d.Inst.Dest] = true
	p.maskOwner[d.Inst.Dest] = d.DestPhys
	p.maskOwnerSeq[d.Inst.Dest] = d.Seq
}

// maskPropagate extends the mask to a dependent instruction's
// destination, carrying the root's identity.
func (p *checkpointPolicy) maskPropagate(d *DynInst, root rename.PhysReg, rootSeq uint64) {
	if d.Inst.Dest == isa.RegNone {
		return
	}
	p.depMask[d.Inst.Dest] = true
	p.maskOwner[d.Inst.Dest] = root
	p.maskOwnerSeq[d.Inst.Dest] = rootSeq
}

// maskRedefine clears the mask for d's destination ("registers get
// cleared when non-dependent instructions redefine those registers").
func (p *checkpointPolicy) maskRedefine(d *DynInst, dependent bool, root rename.PhysReg) {
	if d.Inst.Dest == isa.RegNone {
		return
	}
	p.depMask[d.Inst.Dest] = dependent
	p.maskOwner[d.Inst.Dest] = root
	p.maskOwnerSeq[d.Inst.Dest] = 0
}

// moveToSLIQ transfers a waiting instruction from its issue queue to the
// slow lane. It returns false when no SLIQ is configured, it is full, or
// the trigger register already produced its value.
func (p *checkpointPolicy) moveToSLIQ(d *DynInst, root rename.PhysReg) bool {
	c := p.c
	if c.sliq == nil || !d.iqe.Resident() {
		return false
	}
	if d.iqe.Pending() == 0 {
		// Already ready to issue; moving it would only delay it.
		return false
	}
	if root == rename.PhysNone || c.regReady[root] {
		return false
	}
	if !c.sliq.Insert(d.Seq, root, d) {
		return false
	}
	c.iqFor(d.Inst.Op).Remove(&d.iqe)
	d.inSLIQ = true
	return true
}
