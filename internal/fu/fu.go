// Package fu models the functional units of the simulated processor as
// latency/repeat pipelines, following Table 1 of the paper: 4 integer
// ALUs (1/1), 2 integer multiply/divide units (3/1 multiply, 20/20
// divide, sharing hardware), and 4 FP units (2/1).
//
// Each unit tracks the cycle at which it can next initiate an operation.
// A fully pipelined unit (repeat 1) can start one operation per cycle; an
// unpipelined divider blocks for its full latency.
package fu

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/isa"
)

// Class identifies a functional-unit class.
type Class uint8

// Functional-unit classes. Mul and Div are distinct classes that share
// the same physical units.
const (
	ClassIntAlu Class = iota
	ClassIntMulDiv
	ClassFP
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassIntAlu:
		return "intalu"
	case ClassIntMulDiv:
		return "intmuldiv"
	case ClassFP:
		return "fp"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ClassFor maps an operation to the functional-unit class that executes
// it. Loads and stores use an integer ALU for address generation;
// branches resolve on an integer ALU; nops also pass through an ALU slot.
func ClassFor(op isa.Op) Class {
	switch op {
	case isa.IntMul, isa.IntDiv:
		return ClassIntMulDiv
	case isa.FPAlu:
		return ClassFP
	default:
		return ClassIntAlu
	}
}

// opTiming is the latency/repeat pair for one operation on its unit.
type opTiming struct {
	latency int64
	repeat  int64
}

// Pool is a set of functional units. It is not safe for concurrent use;
// the simulator is single-threaded by design.
type Pool struct {
	// nextFree[c][u] is the first cycle unit u of class c can start a
	// new operation.
	nextFree [numClasses][]int64
	timing   [isa.NumOps]opTiming
	stats    Stats
}

// Stats counts issue activity per class.
type Stats struct {
	Issued     [numClasses]uint64
	StructHaz  [numClasses]uint64 // issue attempts rejected: all units busy
	BusyCycles [numClasses]uint64
}

// NewPool builds the functional units from the architectural config.
func NewPool(cfg config.Config) *Pool {
	p := &Pool{}
	p.nextFree[ClassIntAlu] = make([]int64, cfg.IntAlu.Count)
	p.nextFree[ClassIntMulDiv] = make([]int64, cfg.IntMul.Count)
	p.nextFree[ClassFP] = make([]int64, cfg.FPAlu.Count)

	set := func(op isa.Op, f config.FUConfig) {
		p.timing[op] = opTiming{latency: int64(f.Latency), repeat: int64(f.Repeat)}
	}
	set(isa.IntAlu, cfg.IntAlu)
	set(isa.IntMul, cfg.IntMul)
	set(isa.IntDiv, cfg.IntDiv)
	set(isa.FPAlu, cfg.FPAlu)
	// Memory ops and branches use an ALU slot for address generation /
	// resolution; loads add memory latency on top (handled by the core).
	set(isa.Load, cfg.IntAlu)
	set(isa.Store, cfg.IntAlu)
	set(isa.Branch, cfg.IntAlu)
	set(isa.Nop, cfg.IntAlu)
	return p
}

// Latency returns the execution latency of op on its unit, excluding any
// memory time.
func (p *Pool) Latency(op isa.Op) int64 { return p.timing[op].latency }

// TryIssue attempts to start op at cycle now. On success it reserves a
// unit and returns the cycle the result is produced. On failure (all
// units of the class busy this cycle) it returns ok=false; the caller
// should retry next cycle.
func (p *Pool) TryIssue(op isa.Op, now int64) (done int64, ok bool) {
	class := ClassFor(op)
	units := p.nextFree[class]
	for i, free := range units {
		if free <= now {
			t := p.timing[op]
			units[i] = now + t.repeat
			p.stats.Issued[class]++
			return now + t.latency, true
		}
	}
	p.stats.StructHaz[class]++
	return 0, false
}

// Flush releases every unit, as after a pipeline squash. In-flight
// results from squashed instructions are discarded by the core; the units
// themselves become available immediately (checkpoint recovery restarts
// the pipeline cleanly).
func (p *Pool) Flush(now int64) {
	for c := range p.nextFree {
		for i := range p.nextFree[c] {
			if p.nextFree[c][i] > now {
				p.nextFree[c][i] = now
			}
		}
	}
}

// Stats returns a copy of the counters.
func (p *Pool) Stats() Stats { return p.stats }

// Units returns the number of units in class c.
func (p *Pool) Units(c Class) int { return len(p.nextFree[c]) }
