package trace

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/isa/programs"
	"repro/internal/isa/rv32"
)

// InstStream produces a workload's dynamic instruction stream lazily,
// in segments, instead of as one materialised slice. Synthetic kernels
// stream by construction (their generators emit an infinite sequence of
// which Materialise keeps a prefix), and programs stream through the
// incremental RV32 executor, so only the instructions near the cursor
// ever exist in memory. This is what lifts MaxRecipeInsts for sampled
// runs: a sampled point's budget is bounded by MaxStreamInsts, not by
// what fits in one allocation.
//
// Prefix contract: for any recipe, the streamed sequence's first N
// elements equal Recipe{..., N}.Materialise()'s instructions
// element-for-element (enforced by TestStreamedMatchesMaterialised).
type InstStream struct {
	name string
	code StaticCode
	src  streamSource // nil once exhausted
	buf  []isa.Inst
	off  int   // consumed prefix of buf
	base int64 // absolute stream position of buf[off]
	// borrowed marks buf as a view of a materialised trace's storage:
	// never compact (compaction writes into the shared array).
	borrowed bool
}

// streamSource appends the next segment of the stream to dst. Returning
// dst unchanged signals exhaustion.
type streamSource interface {
	emit(dst []isa.Inst) ([]isa.Inst, error)
}

// Name returns the workload name (matches the materialised trace's).
func (s *InstStream) Name() string { return s.name }

// Code returns the static code image for program streams, nil otherwise.
func (s *InstStream) Code() StaticCode { return s.code }

// Pos returns the absolute stream position of the cursor: the number of
// instructions consumed by Skip so far.
func (s *InstStream) Pos() int64 { return s.base }

// Peek returns the next n instructions without consuming them (fewer
// only at end of stream). The returned slice aliases the stream's
// buffer and is valid until the next Peek/Skip/Window call.
func (s *InstStream) Peek(n int) ([]isa.Inst, error) {
	if s.off > 0 && !s.borrowed && s.off >= len(s.buf)-s.off {
		s.buf = s.buf[:copy(s.buf, s.buf[s.off:])]
		s.off = 0
	}
	for len(s.buf)-s.off < n && s.src != nil {
		if s.base+int64(len(s.buf)-s.off) > MaxStreamInsts {
			return nil, fmt.Errorf("trace: stream %s exceeds %d instructions", s.name, MaxStreamInsts)
		}
		before := len(s.buf)
		buf, err := s.src.emit(s.buf)
		if err != nil {
			return nil, err
		}
		s.buf = buf
		if len(s.buf) == before {
			s.src = nil
		}
	}
	if avail := len(s.buf) - s.off; n > avail {
		n = avail
	}
	return s.buf[s.off : s.off+n], nil
}

// Skip consumes n instructions; n must not exceed what Peek has shown
// to be available.
func (s *InstStream) Skip(n int) {
	if n < 0 || n > len(s.buf)-s.off {
		panic(fmt.Sprintf("trace: stream %s: skip %d beyond buffered %d", s.name, n, len(s.buf)-s.off))
	}
	s.off += n
	s.base += int64(n)
}

// Window copies the next n instructions (fewer at end of stream) into a
// materialised Trace without consuming them: the detailed-simulation
// view of one sampling window. The window trace carries the stream's
// name and static code, so window runs exercise the same BTB/wrong-path
// machinery as full runs.
func (s *InstStream) Window(n int) (*Trace, error) {
	w, err := s.Peek(n)
	if err != nil {
		return nil, err
	}
	return &Trace{name: s.name, insts: append([]isa.Inst(nil), w...), code: s.code}, nil
}

// OpenStream returns a stream over an already-materialised trace (a
// borrowed, zero-copy view; the trace must not be mutated, which Trace
// never is after construction).
func (t *Trace) OpenStream() *InstStream {
	return &InstStream{name: t.name, code: t.code, buf: t.insts, borrowed: true}
}

// OpenStream opens the recipe's dynamic stream at position zero.
// Synthetic streams are unbounded (the run's instruction budget decides
// how far to read); program streams end when the program halts.
func (r Recipe) OpenStream() (*InstStream, error) {
	if err := r.ValidateStreamed(); err != nil {
		return nil, err
	}
	if r.Kernel == KernelProgram {
		return r.openProgramStream()
	}
	round, err := synthRound(r)
	if err != nil {
		return nil, err
	}
	return &InstStream{name: r.WorkloadName(), src: &synthSource{round: round}}, nil
}

// synthRound builds the kernel instances a synthetic recipe's stream
// replays, mirroring each public generator's construction exactly —
// same windows, regions, seeds and emission order — so the stream is
// bit-identical to the materialised trace (the generators' emitters are
// deterministic and truncation-free until fill cuts the tail).
func synthRound(r Recipe) ([]iterSource, error) {
	switch r.Kernel {
	case KernelStream:
		return []iterSource{newStreamKernel(fullWindow, 0, 0x1000, 1, newPRNG(1))}, nil
	case KernelStrided:
		return []iterSource{newStreamKernel(fullWindow, 0, 0x1000, r.Stride, newPRNG(1))}, nil
	case KernelStencil:
		return []iterSource{newStencilKernel(fullWindow, 1, 0x2000)}, nil
	case KernelReduction:
		return []iterSource{newReductionKernel(fullWindow, 2, 0x3000)}, nil
	case KernelBlocked:
		return []iterSource{newBlockedKernel(fullWindow, 3, 0x4000)}, nil
	case KernelPointerChase:
		return []iterSource{newChaseKernel(fullWindow, 4, 0x5000, newPRNG(7))}, nil
	case KernelFPMix:
		return mixRound(r.Seed, DefaultWeights())
	}
	return nil, fmt.Errorf("trace: recipe %s cannot stream", r.Kernel)
}

// synthSource emits one full scheduling round per call. Mix's
// materialiser may stop mid-round at the length cut, but everything it
// kept is a prefix of the whole-round sequence, so streaming whole
// rounds reproduces it exactly.
type synthSource struct {
	round []iterSource
}

func (s *synthSource) emit(dst []isa.Inst) ([]isa.Inst, error) {
	b := builder{insts: dst}
	for _, k := range s.round {
		k.emitIter(&b)
	}
	return b.insts, nil
}

// openProgramStream wires the incremental RV32 executor to the stream.
func (r Recipe) openProgramStream() (*InstStream, error) {
	spec, ok := programs.Lookup(r.Program)
	if !ok {
		return nil, fmt.Errorf("trace: recipe: unknown program %q", r.Program)
	}
	p, err := spec.Build(r.Input, r.Seed)
	if err != nil {
		return nil, fmt.Errorf("trace: recipe %s: %w", r, err)
	}
	st, err := rv32.NewStreamer(p)
	if err != nil {
		return nil, fmt.Errorf("trace: recipe %s: %w", r, err)
	}
	img, err := rv32.NewImage(p)
	if err != nil {
		return nil, fmt.Errorf("trace: recipe %s: %w", r, err)
	}
	return &InstStream{name: r.Program, code: img, src: &programSource{st: st}}, nil
}

type programSource struct {
	st *rv32.Streamer
}

func (p *programSource) emit(dst []isa.Inst) ([]isa.Inst, error) {
	if p.st.Halted() {
		return dst, nil
	}
	return p.st.Emit(dst)
}
