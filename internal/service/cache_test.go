package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeKey fabricates a well-formed fingerprint (64 hex chars).
func fakeKey(i int) string {
	return fmt.Sprintf("%064x", i+1)
}

func fakeVal(i int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"Cycles":%d}`, i))
}

// TestCacheLRUEviction: a memory-only cache holds exactly cap entries;
// the least recently used one falls out, and touching an entry
// protects it.
func TestCacheLRUEviction(t *testing.T) {
	c, err := NewCache(2, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := c.Put(fakeKey(i), fakeVal(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch key 0 so key 1 is the LRU victim.
	if _, ok := c.Get(fakeKey(0)); !ok {
		t.Fatal("fresh entry missing")
	}
	if err := c.Put(fakeKey(2), fakeVal(2)); err != nil {
		t.Fatal(err)
	}
	if c.MemLen() != 2 {
		t.Errorf("memory tier holds %d entries, want 2", c.MemLen())
	}
	if _, ok := c.Get(fakeKey(1)); ok {
		t.Error("LRU entry survived eviction")
	}
	for _, i := range []int{0, 2} {
		raw, ok := c.Get(fakeKey(i))
		if !ok || !bytes.Equal(raw, fakeVal(i)) {
			t.Errorf("entry %d lost or corrupted: %s", i, raw)
		}
	}
}

// TestCacheDiskRoundTrip: entries survive process restart (a new Cache
// over the same dir), evicted entries re-load from disk, and a disk
// hit promotes back into the memory tier.
func TestCacheDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(fakeKey(0), fakeVal(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(fakeKey(1), fakeVal(1)); err != nil {
		t.Fatal(err) // evicts key 0 from memory; disk keeps it
	}
	if raw, ok := c.Get(fakeKey(0)); !ok || !bytes.Equal(raw, fakeVal(0)) {
		t.Errorf("evicted entry did not reload from disk: %s", raw)
	}

	// A fresh cache over the same directory sees every entry.
	c2, err := NewCache(8, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		raw, ok := c2.Get(fakeKey(i))
		if !ok || !bytes.Equal(raw, fakeVal(i)) {
			t.Errorf("restart lost entry %d: %s", i, raw)
		}
	}
	if c2.MemLen() != 2 {
		t.Errorf("disk hits did not promote: memory tier holds %d, want 2", c2.MemLen())
	}

	// Layout: sharded by fingerprint prefix.
	want := filepath.Join(dir, fakeKey(0)[:2], fakeKey(0)+".json")
	if _, err := os.Stat(want); err != nil {
		t.Errorf("expected disk layout %s: %v", want, err)
	}
	// No stray temp files left behind.
	var stray []string
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() && strings.Contains(filepath.Base(path), ".tmp") {
			stray = append(stray, path)
		}
		return nil
	})
	if len(stray) > 0 {
		t.Errorf("temp files left behind: %v", stray)
	}
}

// TestCacheCorruptDiskEntry: a corrupt file is never served — it is
// quarantined (metric bumped, file moved out of the serving tree), and
// the read reports a miss so the point recomputes.
func TestCacheCorruptDiskEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := fakeKey(0)
	if err := c.Put(key, fakeVal(0)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")
	if err := os.WriteFile(path, []byte(`{"Cycles":`), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(key); ok {
		t.Error("corrupt disk entry served as a hit")
	}
	if got := c2.Quarantined(); got != 1 {
		t.Errorf("quarantined counter = %d, want 1", got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt entry still in the serving tree: %v", err)
	}
	qpath := filepath.Join(dir, "quarantine", key+".json")
	if _, err := os.Stat(qpath); err != nil {
		t.Errorf("corrupt entry not preserved in quarantine: %v", err)
	}
	// Recompute-and-Put heals the slot; the healed entry serves again.
	if err := c2.Put(key, fakeVal(0)); err != nil {
		t.Fatal(err)
	}
	c3, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if raw, ok := c3.Get(key); !ok || !bytes.Equal(raw, fakeVal(0)) {
		t.Errorf("healed entry not served: %s", raw)
	}
}

// TestCacheChecksumTrailer: disk entries are sealed (payload + checksum
// trailer in one file) and Get returns exactly the original payload
// bytes. A single flipped bit anywhere in the file — payload or
// trailer — quarantines the entry.
func TestCacheChecksumTrailer(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(1, dir)
	if err != nil {
		t.Fatal(err)
	}
	key := fakeKey(7)
	val := fakeVal(7)
	if err := c.Put(key, val); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".json")
	sealed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sealed), "ooosum1:") {
		t.Fatalf("disk entry missing checksum trailer: %q", sealed)
	}
	if !bytes.HasPrefix(sealed, val) {
		t.Fatalf("payload not stored verbatim before trailer: %q", sealed)
	}

	for _, flip := range []int{0, len(val) / 2, len(sealed) - 2} {
		bad := append([]byte(nil), sealed...)
		bad[flip] ^= 0x40
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		c2, err := NewCache(1, dir)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := c2.Get(key); ok {
			t.Errorf("flip at %d served as a hit", flip)
		}
		if c2.Quarantined() != 1 {
			t.Errorf("flip at %d: quarantined = %d, want 1", flip, c2.Quarantined())
		}
		// Restore for the next round (quarantine moved the file away).
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, sealed, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCacheLegacyEntryQuarantined: a pre-trailer entry (valid JSON, no
// checksum) is not trusted — it quarantines rather than serving bytes
// that can no longer be verified.
func TestCacheLegacyEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	key := fakeKey(3)
	path := filepath.Join(dir, key[:2], key+".json")
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, fakeVal(3), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("unverifiable legacy entry served as a hit")
	}
	if c.Quarantined() != 1 {
		t.Errorf("quarantined = %d, want 1", c.Quarantined())
	}
}

// TestCacheMemoryOnly: without a dir, eviction is final.
func TestCacheMemoryOnly(t *testing.T) {
	c, err := NewCache(1, "")
	if err != nil {
		t.Fatal(err)
	}
	c.Put(fakeKey(0), fakeVal(0))
	c.Put(fakeKey(1), fakeVal(1))
	if _, ok := c.Get(fakeKey(0)); ok {
		t.Error("memory-only cache resurrected an evicted entry")
	}
}
