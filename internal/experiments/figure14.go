package experiments

import (
	"context"
	"fmt"

	"repro/internal/config"
)

// Figure14 sweep axes.
var (
	Figure14Latencies = []int{100, 500, 1000}
	Figure14VTags     = []int{512, 1024, 2048}
	Figure14Phys      = []int{256, 512}
)

// Figure14Result holds the combination study: out-of-order commit plus
// SLIQ plus ephemeral/virtual registers, against the Limit (everything
// scaled to 4096) and Baseline-128 reference lines, per memory latency.
type Figure14Result struct {
	Latencies []int
	VTags     []int
	Phys      []int
	// IPC[lat][vtags][phys].
	IPC map[int]map[int]map[int]float64
	// Limit[lat] and Baseline128[lat] are the reference lines.
	Limit       map[int]float64
	Baseline128 map[int]float64
}

// Figure14 evaluates affordable kilo-instruction processors: with
// virtual tags standing in for rename capacity and late-allocated,
// early-released physical registers, a few hundred physical registers
// approach the unconstrained limit.
func Figure14(ctx context.Context, opt Options) (Figure14Result, error) {
	opt = opt.withDefaults()
	suite, err := opt.suite()
	if err != nil {
		return Figure14Result{}, err
	}

	var points []point
	for _, lat := range Figure14Latencies {
		limit := config.BaselineSized(4096)
		limit.MemoryLatency = lat
		points = append(points, point{cfg: limit})

		b128 := config.BaselineSized(128)
		b128.MemoryLatency = lat
		points = append(points, point{cfg: b128})

		for _, vt := range Figure14VTags {
			for _, ph := range Figure14Phys {
				cfg := config.CheckpointDefault(128, 2048)
				cfg.MemoryLatency = lat
				cfg.VirtualRegisters = true
				cfg.VirtualTags = vt
				cfg.PhysRegs = ph
				points = append(points, point{cfg: cfg})
			}
		}
	}
	groups, err := opt.runPoints(ctx, points, suite)
	if err != nil {
		return Figure14Result{}, err
	}

	res := Figure14Result{
		Latencies:   Figure14Latencies,
		VTags:       Figure14VTags,
		Phys:        Figure14Phys,
		IPC:         map[int]map[int]map[int]float64{},
		Limit:       map[int]float64{},
		Baseline128: map[int]float64{},
	}
	k := 0
	for _, lat := range res.Latencies {
		res.Limit[lat] = meanIPC(groups[k])
		k++
		res.Baseline128[lat] = meanIPC(groups[k])
		k++
		res.IPC[lat] = map[int]map[int]float64{}
		for _, vt := range res.VTags {
			res.IPC[lat][vt] = map[int]float64{}
			for _, ph := range res.Phys {
				res.IPC[lat][vt][ph] = meanIPC(groups[k])
				k++
			}
		}
	}
	return res, nil
}

// String renders one block per memory latency.
func (r Figure14Result) String() string {
	header := []string{"mem", "vtags", "phys 256", "phys 512", "Baseline 128", "Limit 4096"}
	var rows [][]string
	for _, lat := range r.Latencies {
		for _, vt := range r.VTags {
			rows = append(rows, []string{
				fmt.Sprintf("%d", lat),
				fmt.Sprintf("%d", vt),
				f3(r.IPC[lat][vt][256]),
				f3(r.IPC[lat][vt][512]),
				f3(r.Baseline128[lat]),
				f3(r.Limit[lat]),
			})
		}
	}
	return renderTable("Figure 14: out-of-order commit + SLIQ + virtual registers", header, rows)
}
