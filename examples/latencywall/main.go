// Latencywall reproduces the paper's motivating observation (Figure 1):
// as memory latency grows, only a larger in-flight window sustains IPC —
// and scaling the conventional structures to thousands of entries is
// exactly what is impractical.
//
//	go run ./examples/latencywall
package main

import (
	"fmt"
	"log"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	const insts = 150_000
	workload := trace.Stream(insts + 40_000) // the unit-stride FP triad

	fmt.Println("IPC of the scaled baseline on the stream kernel")
	fmt.Printf("%-10s", "window")
	latencies := []int{100, 500, 1000}
	for _, lat := range latencies {
		fmt.Printf("  mem=%-5d", lat)
	}
	fmt.Println(" perfect-L2")

	for _, window := range []int{128, 512, 2048, 4096} {
		fmt.Printf("%-10d", window)
		for _, lat := range latencies {
			cfg := config.BaselineSized(window)
			cfg.MemoryLatency = lat
			fmt.Printf("  %-9.3f", run(cfg, workload, insts))
		}
		perfect := config.BaselineSized(window)
		perfect.PerfectL2 = true
		fmt.Printf(" %-9.3f\n", run(perfect, workload, insts))
	}

	fmt.Println("\nReading: at 1000-cycle memory the 128-entry machine runs an order")
	fmt.Println("of magnitude below its perfect-cache speed; by 4096 in-flight")
	fmt.Println("instructions the latency is almost fully hidden (paper, Figure 1).")
}

func run(cfg config.Config, tr *trace.Trace, insts uint64) float64 {
	cpu, err := core.New(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}
	return cpu.Run(core.RunOptions{MaxInsts: insts}).IPC()
}
