package service

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// API wire types.
type submitRequest struct {
	Jobs []Job `json:"jobs"`
}

type apiError struct {
	Error string `json:"error"`
}

// NewHandler returns the daemon's HTTP API over the scheduler:
//
//	POST /v1/batches             submit a batch ({"jobs":[...]}),
//	                             202 + BatchStatus (hits already done)
//	GET  /v1/batches/{id}        poll a batch, 200 + BatchStatus
//	GET  /v1/batches/{id}/events NDJSON progress stream: full history
//	                             replayed, then live events, closed
//	                             after the final "done" event
//	GET  /healthz                liveness probe
func NewHandler(s *Scheduler) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})

	mux.HandleFunc("POST /v1/batches", func(w http.ResponseWriter, r *http.Request) {
		var req submitRequest
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad request body: " + err.Error()})
			return
		}
		b, err := s.Submit(req.Jobs)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusAccepted, b.Status())
	})

	mux.HandleFunc("GET /v1/batches/{id}", func(w http.ResponseWriter, r *http.Request) {
		b, ok := s.Batch(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, apiError{Error: "no such batch"})
			return
		}
		writeJSON(w, http.StatusOK, b.Status())
	})

	mux.HandleFunc("GET /v1/batches/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		b, ok := s.Batch(r.PathValue("id"))
		if !ok {
			writeJSON(w, http.StatusNotFound, apiError{Error: "no such batch"})
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		rc := http.NewResponseController(w)
		enc := json.NewEncoder(w)
		for i := 0; ; i++ {
			ev, ok, err := b.WaitEvent(r.Context(), i)
			if err != nil || !ok {
				return // client went away, or stream complete
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			rc.Flush()
		}
	})

	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
