package lsq

import (
	"testing"

	"repro/internal/isa"
)

func TestInsertOrderAndKinds(t *testing.T) {
	q := New(8)
	l := q.Insert(1, isa.Load, 0x100, "l")
	s := q.Insert(2, isa.Store, 0x200, "s")
	if l.Kind != KindLoad || s.Kind != KindStore {
		t.Fatal("kinds wrong")
	}
	if q.Len() != 2 {
		t.Fatal("len wrong")
	}
	st := q.Stats()
	if st.Loads != 1 || st.Stores != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfOrderInsertPanics(t *testing.T) {
	q := New(8)
	q.Insert(5, isa.Load, 0x100, nil)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order insert must panic")
		}
	}()
	q.Insert(4, isa.Load, 0x100, nil)
}

func TestNonMemOpPanics(t *testing.T) {
	q := New(8)
	defer func() {
		if recover() == nil {
			t.Error("non-memory op must panic")
		}
	}()
	q.Insert(1, isa.IntAlu, 0x100, nil)
}

func TestCapacity(t *testing.T) {
	q := New(2)
	q.Insert(1, isa.Load, 0x10, nil)
	q.Insert(2, isa.Load, 0x20, nil)
	if !q.Full() {
		t.Fatal("should be full")
	}
	if q.Insert(3, isa.Load, 0x30, nil) != nil {
		t.Fatal("full queue must reject")
	}
	if q.Stats().FullStalls != 1 {
		t.Fatal("stall not counted")
	}
}

func TestForwardReady(t *testing.T) {
	q := New(8)
	s := q.Insert(1, isa.Store, 0x100, nil)
	q.MarkExecuted(s)
	got, blocking := q.LookupForward(2, 0x100)
	if got != ForwardReady || blocking != nil {
		t.Fatalf("got %v (store %v), want ForwardReady", got, blocking)
	}
	if q.Stats().Forwards != 1 {
		t.Fatal("forward not counted")
	}
}

func TestForwardWaitThenReady(t *testing.T) {
	q := New(8)
	s := q.Insert(1, isa.Store, 0x100, nil)
	got, blocking := q.LookupForward(2, 0x100)
	if got != ForwardWait || blocking != s {
		t.Fatalf("got %v (store %v), want ForwardWait on seq 1", got, blocking)
	}
	fired := uint64(0)
	q.AddWaiter(blocking, func(storeSeq uint64) { fired = storeSeq })
	q.MarkExecuted(s)
	if fired != 1 {
		t.Fatal("waiter must fire when the store executes")
	}
}

func TestForwardYoungestMatchingStore(t *testing.T) {
	q := New(8)
	s1 := q.Insert(1, isa.Store, 0x100, nil)
	s2 := q.Insert(2, isa.Store, 0x100, nil)
	q.MarkExecuted(s1)
	q.MarkExecuted(s2)
	// The load must see the youngest older store; both executed, so
	// ForwardReady — and critically, not a store younger than the load.
	q.Insert(3, isa.Load, 0x100, nil)
	if got, _ := q.LookupForward(3, 0x100); got != ForwardReady {
		t.Fatalf("got %v", got)
	}
	// A load older than every store must not forward.
	if got, _ := q.LookupForward(0, 0x100); got != NoConflict {
		t.Fatalf("older load forwarded: %v", got)
	}
}

func TestForwardWaitPicksYoungestOlderStore(t *testing.T) {
	q := New(8)
	s1 := q.Insert(1, isa.Store, 0x100, nil)
	s2 := q.Insert(2, isa.Store, 0x100, nil)
	q.MarkExecuted(s1)
	// s2 (younger, unexecuted) shadows the executed s1.
	got, blocking := q.LookupForward(3, 0x100)
	if got != ForwardWait || blocking != s2 {
		t.Fatalf("got %v (store %v), want ForwardWait on seq 2", got, blocking)
	}
}

func TestNoConflictDifferentAddress(t *testing.T) {
	q := New(8)
	q.Insert(1, isa.Store, 0x100, nil)
	if got, _ := q.LookupForward(2, 0x108); got != NoConflict {
		t.Fatalf("got %v, want NoConflict", got)
	}
}

func TestDrainStoresBefore(t *testing.T) {
	q := New(8)
	s1 := q.Insert(1, isa.Store, 0x10, nil)
	q.Insert(2, isa.Load, 0x20, nil)
	s2 := q.Insert(3, isa.Store, 0x30, nil)
	s3 := q.Insert(4, isa.Store, 0x40, nil)
	q.MarkExecuted(s1)
	q.MarkExecuted(s2)
	q.MarkExecuted(s3)
	var written []uint64
	n := q.DrainStoresBefore(4, func(addr uint64) { written = append(written, addr) })
	if n != 2 || len(written) != 2 || written[0] != 0x10 || written[1] != 0x30 {
		t.Fatalf("drained %v", written)
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d, want 1 (only seq 4 remains)", q.Len())
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainUnexecutedStorePanics(t *testing.T) {
	q := New(8)
	q.Insert(1, isa.Store, 0x10, nil)
	defer func() {
		if recover() == nil {
			t.Error("draining an unexecuted store must panic")
		}
	}()
	q.DrainStoresBefore(2, func(uint64) {})
}

func TestRetire(t *testing.T) {
	q := New(8)
	l := q.Insert(1, isa.Load, 0x10, nil)
	s := q.Insert(2, isa.Store, 0x20, nil)
	q.MarkExecuted(s)
	var wrote []uint64
	q.Retire(l, func(a uint64) { wrote = append(wrote, a) })
	if len(wrote) != 0 {
		t.Fatal("retiring a load writes nothing")
	}
	q.Retire(s, func(a uint64) { wrote = append(wrote, a) })
	if len(wrote) != 1 || wrote[0] != 0x20 {
		t.Fatalf("store write: %v", wrote)
	}
	if q.Len() != 0 {
		t.Fatal("entries must leave the queue")
	}
}

func TestSquashYounger(t *testing.T) {
	q := New(8)
	q.Insert(1, isa.Load, 0x10, nil)
	s := q.Insert(2, isa.Store, 0x20, nil)
	q.Insert(3, isa.Load, 0x30, nil)
	// A waiter on the store must be dropped with it.
	fired := false
	res, blocking := q.LookupForward(3, 0x20)
	if res != ForwardWait || blocking != s {
		t.Fatalf("got %v, want ForwardWait on the store", res)
	}
	q.AddWaiter(blocking, func(uint64) { fired = true })
	n := q.SquashYounger(2)
	if n != 2 || q.Len() != 1 {
		t.Fatalf("squashed %d, len %d", n, q.Len())
	}
	// Recycle the squashed records: a new store at the same address
	// (likely reusing the recycled entry) must not carry the dropped
	// waiter, and the old store must be gone from the forwarding index.
	s2 := q.Insert(4, isa.Store, 0x20, nil)
	q.MarkExecuted(s2)
	if fired {
		t.Fatal("squashed store's waiter leaked onto a recycled entry")
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestForwardIndexAfterChurn exercises the per-address store index
// through a drain/squash/reuse cycle and cross-checks it against the
// queue invariants.
func TestForwardIndexAfterChurn(t *testing.T) {
	q := New(16)
	seq := uint64(0)
	insert := func(op isa.Op, addr uint64) *Entry {
		seq++
		return q.Insert(seq, op, addr, nil)
	}
	a := insert(isa.Store, 0x10)
	b := insert(isa.Store, 0x10)
	c := insert(isa.Store, 0x20)
	q.MarkExecuted(a)
	q.MarkExecuted(b)
	q.MarkExecuted(c)
	q.DrainStoresBefore(2, func(uint64) {}) // drains a
	if got, _ := q.LookupForward(10, 0x10); got != ForwardReady {
		t.Fatalf("got %v, want forward from b", got)
	}
	q.SquashYounger(3) // squashes c
	if got, _ := q.LookupForward(10, 0x20); got != NoConflict {
		t.Fatalf("got %v, want NoConflict after squash", got)
	}
	d := insert(isa.Store, 0x20)
	q.MarkExecuted(d)
	if got, _ := q.LookupForward(10, 0x20); got != ForwardReady {
		t.Fatalf("got %v, want forward from reinserted store", got)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
