package core

import (
	"fmt"

	"repro/internal/branch"
	"repro/internal/checkpoint"
	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/stats"
)

// adaptivePolicy is checkpointed commit with confidence-driven
// checkpoint placement: instead of the paper's fixed branch-interval
// rule ("the first branch after 64 instructions"), a saturating-counter
// confidence estimator (branch.Confidence) marks branches that
// mispredicted recently, and a checkpoint is taken immediately before
// each low-confidence branch — the likeliest rollback targets become
// the cheapest ones. The max-interval and max-stores safety rules
// remain (windows must close, and LSQ occupancy must stay bounded), as
// does every other checkpoint-family mechanism: pseudo-ROB, SLIQ,
// window commit, both recovery paths and the exception protocol.
//
// This explores the direction the paper defers to future work ("we
// expect to analyze a whole set of different strategies as to when
// checkpoints should be taken").
type adaptivePolicy struct {
	*checkpointPolicy
	conf      *branch.Confidence
	threshold uint8

	// Counters surfaced through stats.Results.Policy.
	lowConfBranches  uint64 // branches dispatched below the threshold
	highConfBranches uint64
	branchCkpts      uint64 // checkpoints placed immediately before a branch
}

func init() {
	RegisterCommitPolicy(config.CommitAdaptive, func(c *CPU) CommitPolicy {
		base := newCheckpointPolicy(c, checkpoint.Policy{
			// The fixed branch-interval rule is replaced by the
			// confidence rule; setting it to the max interval makes the
			// table's branch clause redundant with the unconditional one.
			BranchInterval: c.cfg.CheckpointMaxInterval,
			MaxInterval:    c.cfg.CheckpointMaxInterval,
			MaxStores:      c.cfg.CheckpointMaxStores,
		})
		// Sampled runs thread one confidence estimator through every
		// window (c.sampleConf); outside them each CPU builds its own.
		conf := c.sampleConf
		if conf == nil {
			conf = branch.NewConfidence(c.cfg.AdaptiveConfidenceBits, c.cfg.AdaptiveConfidenceMax)
		}
		a := &adaptivePolicy{
			checkpointPolicy: base,
			conf:             conf,
			threshold:        uint8(c.cfg.AdaptiveConfidenceThreshold),
		}
		base.takeRule = a.shouldTakeAdaptive
		return a
	})
}

// shouldTakeAdaptive is the confidence-driven taking rule. It keeps the
// table's safety heuristics (empty table, max interval, max stores) and
// adds: checkpoint before any branch whose confidence counter is below
// the threshold. The non-empty-window guard makes retries converge — a
// checkpoint taken for this branch on an earlier stalled attempt left
// the young window empty, so the rule does not fire twice (mirroring
// how the interval thresholds self-limit in the base policy).
func (a *adaptivePolicy) shouldTakeAdaptive(inst isa.Inst) bool {
	if a.ckpts.ShouldTake(inst.Op) {
		return true
	}
	if inst.Op != isa.Branch {
		return false
	}
	y := a.ckpts.Youngest()
	if y == nil || y.Insts == 0 {
		return false
	}
	return a.conf.Value(inst.PC) < a.threshold
}

// Dispatched extends the base bookkeeping with estimator training: a
// correctly predicted branch saturates its counter upward, a
// misprediction resets it. Branches replayed with a rollback-resolved
// direction (branchKnown) cannot mispredict and train as correct — the
// recovery hardware really does know them. Wrong-path fetch never
// synthesises branches, so every branch seen here is a real one.
func (a *adaptivePolicy) Dispatched(d *DynInst) {
	a.checkpointPolicy.Dispatched(d)
	if d.Inst.Op != isa.Branch || d.WrongPath {
		return
	}
	if a.conf.Value(d.Inst.PC) < a.threshold {
		a.lowConfBranches++
	} else {
		a.highConfBranches++
	}
	if d.ckpt != nil && d.ckpt.StartSeq == d.Seq {
		a.branchCkpts++
	}
	a.conf.Update(d.Inst.PC, !d.Mispredicted)
}

// AddStats extends the checkpoint counters with the estimator's view.
func (a *adaptivePolicy) AddStats(r *stats.Results) {
	a.checkpointPolicy.AddStats(r)
	if r.Policy == nil {
		r.Policy = make(map[string]uint64, 3)
	}
	r.Policy["adaptive.low_confidence_branches"] = a.lowConfBranches
	r.Policy["adaptive.high_confidence_branches"] = a.highConfBranches
	r.Policy["adaptive.branch_checkpoints"] = a.branchCkpts
}

// DebugState tags the base rendering with the estimator threshold.
func (a *adaptivePolicy) DebugState() string {
	return a.checkpointPolicy.DebugState() + fmt.Sprintf(" conf<%d", a.threshold)
}
