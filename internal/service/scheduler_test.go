package service

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// testJob is a small, real simulation point (a few ms of work).
func testJob(name string, iq int) Job {
	return Job{
		Name:   name,
		Config: config.CheckpointDefault(iq, 512),
		Trace:  trace.Recipe{Kernel: trace.KernelStream, N: 6000},
		Insts:  1500,
	}
}

// countingScheduler wires a scheduler whose simulation calls are
// counted (and optionally slowed, to widen concurrency windows).
func countingScheduler(t *testing.T, opt SchedulerOptions, delay time.Duration) (*Scheduler, *atomic.Int64) {
	t.Helper()
	s := NewScheduler(opt)
	var runs atomic.Int64
	inner := s.run
	s.run = func(spec sim.RunSpec, donor *mem.Hierarchy) (stats.Results, error) {
		runs.Add(1)
		if delay > 0 {
			time.Sleep(delay)
		}
		return inner(spec, donor)
	}
	return s, &runs
}

// TestSingleflightDedupe is the satellite's concurrency contract: 32
// concurrent identical submissions simulate exactly once and all
// receive byte-identical results. Run under -race in CI.
func TestSingleflightDedupe(t *testing.T) {
	s, runs := countingScheduler(t, SchedulerOptions{Workers: 4}, 10*time.Millisecond)
	job := testJob("dedupe", 64)

	const n = 32
	var wg sync.WaitGroup
	statuses := make([]BatchStatus, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := s.Submit([]Job{job})
			if err != nil {
				errs[i] = err
				return
			}
			st, err := b.Wait(context.Background())
			statuses[i], errs[i] = st, err
		}(i)
	}
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Errorf("32 identical submissions ran the simulator %d times, want 1", got)
	}
	var ref string
	hits := 0
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		st := statuses[i]
		if st.State != StateDone || st.Done != 1 || len(st.Errors) != 0 {
			t.Fatalf("submission %d: unexpected status %+v", i, st)
		}
		hits += st.CacheHits
		if st.Results[0] == nil {
			t.Fatalf("submission %d: no result", i)
		}
		if ref == "" {
			ref = string(st.Results[0])
		} else if string(st.Results[0]) != ref {
			t.Errorf("submission %d: result bytes differ from the first submission", i)
		}
	}
	// Exactly one submission simulated; every other one must report
	// its point as needing no simulation (cache or dedupe hit).
	if hits != n-1 {
		t.Errorf("%d of %d submissions reported cache hits, want %d", hits, n, n-1)
	}
}

// TestSchedulerHitMissSplit: a resubmitted batch is all cache hits and
// never touches the simulator.
func TestSchedulerHitMissSplit(t *testing.T) {
	s, runs := countingScheduler(t, SchedulerOptions{Workers: 2}, 0)
	jobs := []Job{testJob("a", 32), testJob("b", 64), testJob("c", 128)}

	b, err := s.Submit(jobs)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := b.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 || runs.Load() != 3 {
		t.Fatalf("cold run: %d hits, %d simulator calls; want 0 and 3", cold.CacheHits, runs.Load())
	}

	b2, err := s.Submit(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// All hits complete synchronously inside Submit.
	warm := b2.Status()
	if warm.State != StateDone || warm.CacheHits != 3 {
		t.Errorf("warm run: state %s with %d hits, want done with 3", warm.State, warm.CacheHits)
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("warm run performed %d extra simulator calls", got-3)
	}
	for i := range jobs {
		if string(warm.Results[i]) != string(cold.Results[i]) {
			t.Errorf("point %d: warm result bytes differ from cold", i)
		}
	}
}

// TestSchedulerRejectsInvalidBatch: one bad job rejects the whole
// batch before anything runs.
func TestSchedulerRejectsInvalidBatch(t *testing.T) {
	s, runs := countingScheduler(t, SchedulerOptions{}, 0)
	bad := testJob("bad", 64)
	bad.Trace.Kernel = "quicksort"
	if _, err := s.Submit([]Job{testJob("good", 64), bad}); err == nil {
		t.Fatal("invalid job accepted")
	}
	if _, err := s.Submit(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if runs.Load() != 0 {
		t.Errorf("rejected batch still simulated %d points", runs.Load())
	}
}

// TestSchedulerPointFailure: a point that fails at run time produces an
// error event and an errored status, while the rest of the batch
// completes normally.
func TestSchedulerPointFailure(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Workers: 2})
	s.run = func(spec sim.RunSpec, _ *mem.Hierarchy) (stats.Results, error) {
		if spec.Name == "boom" {
			return stats.Results{}, context.DeadlineExceeded
		}
		return sim.Run(spec)
	}
	b, err := s.Submit([]Job{testJob("ok", 64), testJob("boom", 128)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := b.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Errors) != 1 {
		t.Fatalf("status errors %v, want exactly one", st.Errors)
	}
	if st.Results[0] == nil || st.Results[1] != nil {
		t.Errorf("expected point 0 to succeed and point 1 to fail: %v", st.Results)
	}
}

// TestSchedulerSurvivesPanickingPoint: a panic anywhere in a point's
// execution path (trace materialisation is the realistic one — it
// allocates client-controlled amounts outside sim.Run's recover) must
// complete the point with an error, not kill the daemon or strand
// flight followers.
func TestSchedulerSurvivesPanickingPoint(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Workers: 2})
	s.run = func(sim.RunSpec, *mem.Hierarchy) (stats.Results, error) {
		panic("allocator blew up")
	}
	// Two concurrent identical submissions: the leader panics inside
	// the flight; the follower must still be released with the error.
	b1, err := s.Submit([]Job{testJob("p", 64)})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s.Submit([]Job{testJob("p", 64)})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []*Batch{b1, b2} {
		st, err := b.Wait(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone || len(st.Errors) != 1 {
			t.Fatalf("batch %s: status %+v, want done with one error", b.ID(), st)
		}
		if !strings.Contains(st.Errors[0], "panic") {
			t.Errorf("batch %s: error %q does not mention the panic", b.ID(), st.Errors[0])
		}
	}
}

// TestBatchEventStreamContract: events replay completely for late
// subscribers, completion counts are monotone, and the stream ends
// with a done event.
func TestBatchEventStreamContract(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Workers: 2})
	jobs := []Job{testJob("a", 32), testJob("b", 64), testJob("c", 128)}
	b, err := s.Submit(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Subscribe after completion: full history must replay.
	var evs []Event
	for i := 0; ; i++ {
		ev, ok, err := b.WaitEvent(context.Background(), i)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		evs = append(evs, ev)
	}
	if len(evs) != len(jobs)+1 {
		t.Fatalf("replayed %d events, want %d", len(evs), len(jobs)+1)
	}
	seen := map[int]bool{}
	for i, ev := range evs[:len(jobs)] {
		if ev.Type != "result" || ev.Done != i+1 || ev.Total != len(jobs) {
			t.Errorf("event %d malformed: %+v", i, ev)
		}
		seen[ev.Index] = true
	}
	if len(seen) != len(jobs) {
		t.Errorf("events covered indices %v, want all of 0..%d", seen, len(jobs)-1)
	}
	last := evs[len(evs)-1]
	if last.Type != "done" || last.Done != len(jobs) {
		t.Errorf("final event %+v, want done", last)
	}

	// A cancelled wait on a still-running batch returns the context
	// error (a distinct config guarantees a cache miss, so the batch
	// really is running).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b2, err := s.Submit([]Job{testJob("z", 256)})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := b2.WaitEvent(ctx, 99); err == nil {
		t.Error("cancelled WaitEvent returned no error")
	}
	if _, err := b2.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerBatchRetention: finished batches beyond the bound are
// forgotten oldest-first; running batches are never evicted.
func TestSchedulerBatchRetention(t *testing.T) {
	s := NewScheduler(SchedulerOptions{Workers: 1, MaxBatches: 2})
	var ids []string
	for i := 0; i < 3; i++ {
		b, err := s.Submit([]Job{testJob("r", 32)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, b.ID())
	}
	if _, ok := s.Batch(ids[0]); ok {
		t.Error("oldest finished batch still addressable past the retention bound")
	}
	for _, id := range ids[1:] {
		if _, ok := s.Batch(id); !ok {
			t.Errorf("batch %s evicted too early", id)
		}
	}
}
