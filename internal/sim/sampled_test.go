package sim

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/isa/programs"
	"repro/internal/trace"
)

// testSample is the accuracy-harness sampling regime: a 400k budget at
// 50k periods gives 8 windows — enough for a meaningful CLT interval at
// a pace the race detector tolerates.
var testSample = trace.SampleSpec{Warmup: 2000, Detail: 8000, Period: 50_000}

const testSampleBudget = 400_000

func programRecipe(t *testing.T, name string, budget uint64) trace.Recipe {
	t.Helper()
	spec, ok := programs.Lookup(name)
	if !ok {
		t.Fatalf("unknown program %q", name)
	}
	return trace.Recipe{Kernel: trace.KernelProgram, Program: name, Input: spec.InputFor(budget), Seed: 42}
}

// TestSampledAccuracy is the sampling accuracy harness: for every
// registered program under both a conventional ROB baseline and the
// checkpointed COoO machine, the sampled run's 95% confidence interval
// must cover the full-detail IPC at the same budget. This is the
// statistical contract sampled figures rest on — if it breaks, either
// the functional warming lost state the windows depend on, or the
// window protocol is biased.
func TestSampledAccuracy(t *testing.T) {
	cfgs := []struct {
		label string
		cfg   config.Config
	}{
		{"rob-128", config.BaselineSized(128)},
		{"checkpoint-128/2048", config.CheckpointDefault(128, 2048)},
	}
	for _, name := range programs.Names() {
		for _, c := range cfgs {
			t.Run(name+"/"+c.label, func(t *testing.T) {
				r := programRecipe(t, name, testSampleBudget)
				tr, err := r.Materialise()
				if err != nil {
					t.Fatalf("Materialise: %v", err)
				}
				full, err := Run(RunSpec{Name: name, Config: c.cfg, Trace: tr, Insts: testSampleBudget})
				if err != nil {
					t.Fatalf("full run: %v", err)
				}
				handle, err := trace.StreamOnly(r)
				if err != nil {
					t.Fatalf("StreamOnly: %v", err)
				}
				sampled, err := Run(RunSpec{
					Name: name, Config: c.cfg, Trace: handle,
					Insts: testSampleBudget, Sample: testSample,
				})
				if err != nil {
					t.Fatalf("sampled run: %v", err)
				}
				s := sampled.Sampled
				if s == nil {
					t.Fatal("sampled run returned no Sampled block")
				}
				if s.Windows < 4 {
					t.Fatalf("only %d windows; the harness needs enough for a CI", s.Windows)
				}
				if s.SampledInsts == 0 || s.FastForwardInsts == 0 {
					t.Fatalf("degenerate sampling: %+v", *s)
				}
				gap := math.Abs(full.IPC() - s.IPCMean())
				if ci := s.IPCCI95(); gap > ci {
					t.Errorf("sampled IPC %.4f ± %.4f misses full-detail IPC %.4f (gap %.4f)",
						s.IPCMean(), ci, full.IPC(), gap)
				}
			})
		}
	}
}

// TestSampledDeterministic pins the service contract: two sampled runs
// of one point are byte-identically equal, so cached sampled results
// can answer replays.
func TestSampledDeterministic(t *testing.T) {
	r := programRecipe(t, "isort", 100_000)
	run := func() string {
		handle, err := trace.StreamOnly(r)
		if err != nil {
			t.Fatalf("StreamOnly: %v", err)
		}
		res, err := Run(RunSpec{
			Name: "isort", Config: config.CheckpointDefault(128, 2048), Trace: handle,
			Insts: 100_000, Sample: trace.SampleSpec{Warmup: 500, Detail: 2000, Period: 10_000},
		})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("sampled runs diverge:\n%s\nvs\n%s", a, b)
	}
}
