package core
