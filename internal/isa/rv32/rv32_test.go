package rv32_test

import (
	"testing"

	"repro/internal/isa/rv32"
)

// goldenEncodings pins one hand-checkable encode/decode pair per
// supported opcode. The words are the standard RV32I/M encodings (e.g.
// addi x5, x5, -1 is the well-known 0xFFF28293), so a codec bug cannot
// hide behind a self-consistent round trip.
var goldenEncodings = []struct {
	d    rv32.Decoded
	word uint32
}{
	{rv32.Decoded{Op: rv32.LUI, Rd: 5, Imm: 0x12345000}, 0x123452B7},
	{rv32.Decoded{Op: rv32.AUIPC, Rd: 6, Imm: -4096}, 0xFFFFF317},
	{rv32.Decoded{Op: rv32.JAL, Rd: 1, Imm: -2048}, 0x801FF0EF},
	{rv32.Decoded{Op: rv32.JALR, Rd: 1, Rs1: 5, Imm: 16}, 0x010280E7},
	{rv32.Decoded{Op: rv32.BEQ, Rs1: 1, Rs2: 2, Imm: -8}, 0xFE208CE3},
	{rv32.Decoded{Op: rv32.BNE, Rs1: 3, Rs2: 4, Imm: 12}, 0x00419663},
	{rv32.Decoded{Op: rv32.BLT, Rs1: 5, Rs2: 6, Imm: -4096}, 0x8062C063},
	{rv32.Decoded{Op: rv32.BGE, Rs1: 7, Rs2: 8, Imm: 4094}, 0x7E83DFE3},
	{rv32.Decoded{Op: rv32.BLTU, Rs1: 9, Rs2: 10, Imm: 2}, 0x00A4E163},
	{rv32.Decoded{Op: rv32.BGEU, Rs1: 11, Rs2: 12, Imm: -2}, 0xFEC5FFE3},
	{rv32.Decoded{Op: rv32.LB, Rd: 1, Rs1: 2, Imm: -1}, 0xFFF10083},
	{rv32.Decoded{Op: rv32.LH, Rd: 3, Rs1: 4, Imm: 2}, 0x00221183},
	{rv32.Decoded{Op: rv32.LW, Rd: 5, Rs1: 6, Imm: -2048}, 0x80032283},
	{rv32.Decoded{Op: rv32.LBU, Rd: 7, Rs1: 8, Imm: 2047}, 0x7FF44383},
	{rv32.Decoded{Op: rv32.LHU, Rd: 9, Rs1: 10, Imm: 0}, 0x00055483},
	{rv32.Decoded{Op: rv32.SB, Rs1: 1, Rs2: 2, Imm: -1}, 0xFE208FA3},
	{rv32.Decoded{Op: rv32.SH, Rs1: 3, Rs2: 4, Imm: 100}, 0x06419223},
	{rv32.Decoded{Op: rv32.SW, Rs1: 5, Rs2: 6, Imm: -4}, 0xFE62AE23},
	{rv32.Decoded{Op: rv32.ADDI, Rd: 5, Rs1: 5, Imm: -1}, 0xFFF28293},
	{rv32.Decoded{Op: rv32.SLTI, Rd: 1, Rs1: 2, Imm: 3}, 0x00312093},
	{rv32.Decoded{Op: rv32.SLTIU, Rd: 4, Rs1: 5, Imm: 6}, 0x0062B213},
	{rv32.Decoded{Op: rv32.XORI, Rd: 7, Rs1: 8, Imm: -256}, 0xF0044393},
	{rv32.Decoded{Op: rv32.ORI, Rd: 9, Rs1: 10, Imm: 255}, 0x0FF56493},
	{rv32.Decoded{Op: rv32.ANDI, Rd: 11, Rs1: 12, Imm: 15}, 0x00F67593},
	{rv32.Decoded{Op: rv32.SLLI, Rd: 13, Rs1: 14, Imm: 1}, 0x00171693},
	{rv32.Decoded{Op: rv32.SRLI, Rd: 15, Rs1: 16, Imm: 31}, 0x01F85793},
	{rv32.Decoded{Op: rv32.SRAI, Rd: 17, Rs1: 18, Imm: 4}, 0x40495893},
	{rv32.Decoded{Op: rv32.ADD, Rd: 1, Rs1: 2, Rs2: 3}, 0x003100B3},
	{rv32.Decoded{Op: rv32.SUB, Rd: 4, Rs1: 5, Rs2: 6}, 0x40628233},
	{rv32.Decoded{Op: rv32.SLL, Rd: 7, Rs1: 8, Rs2: 9}, 0x009413B3},
	{rv32.Decoded{Op: rv32.SLT, Rd: 10, Rs1: 11, Rs2: 12}, 0x00C5A533},
	{rv32.Decoded{Op: rv32.SLTU, Rd: 13, Rs1: 14, Rs2: 15}, 0x00F736B3},
	{rv32.Decoded{Op: rv32.XOR, Rd: 16, Rs1: 17, Rs2: 18}, 0x0128C833},
	{rv32.Decoded{Op: rv32.SRL, Rd: 19, Rs1: 20, Rs2: 21}, 0x015A59B3},
	{rv32.Decoded{Op: rv32.SRA, Rd: 22, Rs1: 23, Rs2: 24}, 0x418BDB33},
	{rv32.Decoded{Op: rv32.OR, Rd: 25, Rs1: 26, Rs2: 27}, 0x01BD6CB3},
	{rv32.Decoded{Op: rv32.AND, Rd: 28, Rs1: 29, Rs2: 30}, 0x01EEFE33},
	{rv32.Decoded{Op: rv32.MUL, Rd: 1, Rs1: 2, Rs2: 3}, 0x023100B3},
	{rv32.Decoded{Op: rv32.MULH, Rd: 4, Rs1: 5, Rs2: 6}, 0x02629233},
	{rv32.Decoded{Op: rv32.MULHSU, Rd: 7, Rs1: 8, Rs2: 9}, 0x029423B3},
	{rv32.Decoded{Op: rv32.MULHU, Rd: 10, Rs1: 11, Rs2: 12}, 0x02C5B533},
	{rv32.Decoded{Op: rv32.DIV, Rd: 13, Rs1: 14, Rs2: 15}, 0x02F746B3},
	{rv32.Decoded{Op: rv32.DIVU, Rd: 16, Rs1: 17, Rs2: 18}, 0x0328D833},
	{rv32.Decoded{Op: rv32.REM, Rd: 19, Rs1: 20, Rs2: 21}, 0x035A69B3},
	{rv32.Decoded{Op: rv32.REMU, Rd: 22, Rs1: 23, Rs2: 24}, 0x038BFB33},
	{rv32.Decoded{Op: rv32.ECALL}, 0x00000073},
	{rv32.Decoded{Op: rv32.EBREAK, Imm: 1}, 0x00100073},
}

// TestGoldenEncodeDecodeRoundTrip checks, per opcode: Encode produces
// the golden word, Decode recovers the exact Decoded, and — via the
// coverage check over Ops() — no instruction can be added to the subset
// without extending the golden table.
func TestGoldenEncodeDecodeRoundTrip(t *testing.T) {
	covered := map[rv32.Op]bool{}
	for _, tc := range goldenEncodings {
		covered[tc.d.Op] = true
		w, err := tc.d.Encode()
		if err != nil {
			t.Errorf("%v: encode: %v", tc.d, err)
			continue
		}
		if w != tc.word {
			t.Errorf("%v: encoded %#08x, golden %#08x", tc.d, w, tc.word)
		}
		got, err := rv32.Decode(tc.word)
		if err != nil {
			t.Errorf("%v: decode %#08x: %v", tc.d, tc.word, err)
			continue
		}
		if got != tc.d {
			t.Errorf("decode %#08x: got %+v, want %+v", tc.word, got, tc.d)
		}
	}
	for _, op := range rv32.Ops() {
		if !covered[op] {
			t.Errorf("op %v has no golden encoding; extend the table", op)
		}
	}
}

// TestDecodeRejectsMalformed pins descriptive errors (not panics, not
// silent misdecodes) on representative malformed words.
func TestDecodeRejectsMalformed(t *testing.T) {
	for _, w := range []uint32{
		0x00000000,          // all zeros: unknown opcode 0
		0xFFFFFFFF,          // all ones
		0x0000000F,          // FENCE: deliberately unsupported
		0x00001073,          // CSRRW: deliberately unsupported
		0x00002063,          // branch funct3 2
		0x00003003,          // load funct3 3
		0x00003023,          // store funct3 3
		0x02001013,          // slli with funct7 != 0
		0x10005013,          // shift funct7 0x10
		0x04000033,          // op funct7 0x04
		0x40001033,          // funct7 0x20 with funct3 1 (no such op)
		0x00001067,          // jalr funct3 1
		0x00200073,          // system: URET-like, unsupported
		0b1010101_00000_000, // truncated garbage in the low bits
	} {
		if d, err := rv32.Decode(w); err == nil {
			t.Errorf("Decode(%#08x) accepted as %+v; want error", w, d)
		}
	}
}

// TestEncodeRejectsOutOfRange pins Encode's operand validation.
func TestEncodeRejectsOutOfRange(t *testing.T) {
	for _, d := range []rv32.Decoded{
		{Op: rv32.ADDI, Rd: 32, Rs1: 1, Imm: 0},        // register out of range
		{Op: rv32.ADDI, Rd: 1, Rs1: 1, Imm: 2048},      // I-type imm too big
		{Op: rv32.SW, Rs1: 1, Rs2: 2, Imm: -2049},      // S-type imm too small
		{Op: rv32.BEQ, Rs1: 1, Rs2: 2, Imm: 3},         // odd branch offset
		{Op: rv32.BEQ, Rs1: 1, Rs2: 2, Imm: 4096},      // branch offset too big
		{Op: rv32.JAL, Rd: 1, Imm: 1 << 20},            // jump offset too big
		{Op: rv32.LUI, Rd: 1, Imm: 0x1001},             // nonzero low bits
		{Op: rv32.SLLI, Rd: 1, Rs1: 1, Imm: 32},        // shift amount too big
		{Op: rv32.SRAI, Rd: 1, Rs1: 1, Imm: -1},        // negative shift
		{Op: 0 /* opInvalid */, Rd: 1, Rs1: 1, Rs2: 1}, // unknown op
		{Op: 200 /* out of range */, Rd: 1, Rs1: 1},    // unknown op
	} {
		if w, err := d.Encode(); err == nil {
			t.Errorf("Encode(%+v) produced %#08x; want error", d, w)
		}
	}
}

// FuzzDecode pins totality (no panic on any word) and round-trip
// consistency: whatever Decode accepts must re-encode to a word that
// decodes to the same instruction. (Re-encoding may legitimately pick a
// different word — e.g. the shift-amount bits of a malformed-but-
// accepted encoding — so the invariant is decode∘encode∘decode = decode,
// not encode∘decode = id.)
func FuzzDecode(f *testing.F) {
	for _, tc := range goldenEncodings {
		f.Add(tc.word)
	}
	f.Add(uint32(0))
	f.Add(^uint32(0))
	f.Fuzz(func(t *testing.T, w uint32) {
		d, err := rv32.Decode(w)
		if err != nil {
			return
		}
		w2, err := d.Encode()
		if err != nil {
			t.Fatalf("Decode(%#08x) = %+v does not re-encode: %v", w, d, err)
		}
		d2, err := rv32.Decode(w2)
		if err != nil {
			t.Fatalf("re-encoded %#08x -> %#08x fails to decode: %v", w, w2, err)
		}
		if d2 != d {
			t.Fatalf("round trip drifted: %#08x -> %+v -> %#08x -> %+v", w, d, w2, d2)
		}
	})
}
