package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRegConstructors(t *testing.T) {
	if r := IntReg(0); r != 0 || r.IsFP() {
		t.Errorf("IntReg(0) = %v, IsFP=%v", r, r.IsFP())
	}
	if r := IntReg(NumIntRegs - 1); !r.Valid() || r.IsFP() {
		t.Errorf("last int reg invalid: %v", r)
	}
	if r := FPReg(0); !r.IsFP() || !r.Valid() {
		t.Errorf("FPReg(0) = %v not FP", r)
	}
	if r := FPReg(NumFPRegs - 1); int(r) != NumLogical-1 {
		t.Errorf("last fp reg = %d, want %d", r, NumLogical-1)
	}
}

func TestRegConstructorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { IntReg(-1) },
		func() { IntReg(NumIntRegs) },
		func() { FPReg(-1) },
		func() { FPReg(NumFPRegs) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range register")
				}
			}()
			fn()
		}()
	}
}

func TestRegString(t *testing.T) {
	cases := map[Reg]string{
		RegNone:   "-",
		IntReg(3): "r3",
		FPReg(7):  "f7",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
}

func TestRegValidity(t *testing.T) {
	if RegNone.Valid() {
		t.Error("RegNone must not be valid")
	}
	if Reg(NumLogical).Valid() {
		t.Error("register beyond the name space must not be valid")
	}
	// Property: every constructed register is valid.
	if err := quick.Check(func(i uint8) bool {
		return IntReg(int(i)%NumIntRegs).Valid() && FPReg(int(i)%NumFPRegs).Valid()
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestOpProperties(t *testing.T) {
	cases := []struct {
		op      Op
		mem     bool
		hasDest bool
	}{
		{Nop, false, false},
		{IntAlu, false, true},
		{IntMul, false, true},
		{IntDiv, false, true},
		{FPAlu, false, true},
		{Load, true, true},
		{Store, true, false},
		{Branch, false, false},
	}
	for _, c := range cases {
		if got := c.op.IsMem(); got != c.mem {
			t.Errorf("%v.IsMem() = %v, want %v", c.op, got, c.mem)
		}
		if got := c.op.HasDest(); got != c.hasDest {
			t.Errorf("%v.HasDest() = %v, want %v", c.op, got, c.hasDest)
		}
	}
}

func TestOpString(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		if s := op.String(); s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("missing name for op %d", op)
		}
	}
	if s := Op(200).String(); !strings.HasPrefix(s, "op(") {
		t.Errorf("unknown op should render numerically, got %q", s)
	}
}

func TestInstSources(t *testing.T) {
	in := Inst{Op: FPAlu, Dest: FPReg(0), Src1: FPReg(1), Src2: FPReg(2)}
	if got := in.Sources(nil); len(got) != 2 {
		t.Fatalf("want 2 sources, got %v", got)
	}
	in.Src2 = RegNone
	if got := in.Sources(nil); len(got) != 1 || got[0] != FPReg(1) {
		t.Fatalf("want [f1], got %v", got)
	}
	in.Src1 = RegNone
	if got := in.Sources(nil); len(got) != 0 {
		t.Fatalf("want no sources, got %v", got)
	}
}

func TestInstValidate(t *testing.T) {
	valid := []Inst{
		{Op: IntAlu, Dest: IntReg(1), Src1: IntReg(2), Src2: RegNone},
		{Op: Load, Dest: FPReg(0), Src1: IntReg(0), Src2: RegNone, Addr: 0x1000},
		{Op: Store, Dest: RegNone, Src1: IntReg(0), Src2: FPReg(1), Addr: 0x1000},
		{Op: Branch, Dest: RegNone, Src1: IntReg(0), Src2: RegNone, PC: 4},
		{Op: Nop, Dest: RegNone, Src1: RegNone, Src2: RegNone},
	}
	for _, in := range valid {
		if err := in.Validate(); err != nil {
			t.Errorf("%v: unexpected error %v", in, err)
		}
	}
	invalid := []Inst{
		{Op: Op(99)},
		{Op: IntAlu, Dest: RegNone},                          // missing dest
		{Op: Branch, Dest: IntReg(0)},                        // branch with dest
		{Op: Load, Dest: FPReg(0), Src1: IntReg(0), Addr: 0}, // zero address
		{Op: Store, Dest: RegNone, Src1: IntReg(0), Src2: RegNone, Addr: 8}, // no data
		{Op: IntAlu, Dest: IntReg(0), Src1: Reg(99)},                        // bad source
	}
	for _, in := range invalid {
		if err := in.Validate(); err == nil {
			t.Errorf("%v: expected validation error", in)
		}
	}
}

func TestInstString(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: Load, Dest: FPReg(3), Src1: IntReg(1), Addr: 0x10040}, "load f3 <- [0x10040] (r1)"},
		{Inst{Op: Nop}, "nop"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
	br := Inst{Op: Branch, Src1: IntReg(0), Src2: RegNone, PC: 0x40, Taken: true}
	if !strings.Contains(br.String(), " t") {
		t.Errorf("taken branch should render outcome: %q", br.String())
	}
}
