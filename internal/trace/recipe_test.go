package trace

import (
	"testing"
)

// TestGeneratorsRecordRecipes checks every public generator stamps its
// trace with a recipe that regenerates an identical stream.
func TestGeneratorsRecordRecipes(t *testing.T) {
	const n = 3000
	for _, tc := range []struct {
		tr   *Trace
		want Recipe
	}{
		{Stream(n), Recipe{Kernel: KernelStream, N: n}},
		{StridedStream(n, 8), Recipe{Kernel: KernelStrided, N: n, Stride: 8}},
		{Stencil(n), Recipe{Kernel: KernelStencil, N: n}},
		{Reduction(n), Recipe{Kernel: KernelReduction, N: n}},
		{Blocked(n), Recipe{Kernel: KernelBlocked, N: n}},
		{PointerChase(n), Recipe{Kernel: KernelPointerChase, N: n}},
		{FPMix(n, 42), Recipe{Kernel: KernelFPMix, N: n, Seed: 42}},
	} {
		got, ok := tc.tr.Recipe()
		if !ok {
			t.Errorf("%s: generator recorded no recipe", tc.tr.Name())
			continue
		}
		if got != tc.want {
			t.Errorf("%s: recipe %+v, want %+v", tc.tr.Name(), got, tc.want)
			continue
		}
		re, err := got.Materialise()
		if err != nil {
			t.Errorf("%s: materialise: %v", tc.tr.Name(), err)
			continue
		}
		if re.Len() != tc.tr.Len() {
			t.Errorf("%s: rematerialised length %d, want %d", tc.tr.Name(), re.Len(), tc.tr.Len())
			continue
		}
		for i := int64(0); i < tc.tr.Len(); i++ {
			if re.At(i) != tc.tr.At(i) {
				t.Errorf("%s: rematerialised trace diverges at %d", tc.tr.Name(), i)
				break
			}
		}
	}
}

// TestCustomMixHasNoRecipe: non-default weights cannot be regenerated
// from a Recipe, so the trace must stay anonymous.
func TestCustomMixHasNoRecipe(t *testing.T) {
	w := DefaultWeights()
	w.Stream++
	if _, ok := Mix(2000, 1, w).Recipe(); ok {
		t.Error("custom mix weights produced a recipe")
	}
}

// TestRecipeValidate covers the rejection paths: unknown kernels, out
// of bounds instruction counts (recipes arrive over the wire and N is
// an allocation size), and parameters the kernel ignores — a seed on
// "stream" would generate the identical trace under a different
// fingerprint, silently defeating the content-addressed cache.
func TestRecipeValidate(t *testing.T) {
	for _, bad := range []Recipe{
		{Kernel: KernelStream, N: 0},
		{Kernel: KernelStream, N: MaxRecipeInsts + 1},
		{Kernel: "quicksort", N: 100},
		{Kernel: KernelStrided, N: 100, Stride: 0},
		{Kernel: KernelStream, N: 100, Seed: 7},
		{Kernel: KernelFPMix, N: 100, Stride: 2},
		{Kernel: KernelStrided, N: 100, Stride: 8, Seed: 7},
	} {
		if bad.Validate() == nil {
			t.Errorf("recipe %+v validated", bad)
		}
		if _, err := bad.Materialise(); err == nil {
			t.Errorf("recipe %+v materialised", bad)
		}
	}
}

// TestRecipeOnly: a recipe-only trace carries identity without the
// stream.
func TestRecipeOnly(t *testing.T) {
	r := Recipe{Kernel: KernelFPMix, N: 5000, Seed: 3}
	tr, err := RecipeOnly(r)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Errorf("recipe-only trace has %d instructions", tr.Len())
	}
	if got, ok := tr.Recipe(); !ok || got != r {
		t.Errorf("recipe-only trace recipe %+v, want %+v", got, r)
	}
	if _, err := RecipeOnly(Recipe{Kernel: "quicksort", N: 1}); err == nil {
		t.Error("invalid recipe produced a recipe-only trace")
	}
}

// TestRecipeStringCanonical pins the canonical fingerprint form: if this
// changes, every content-addressed cache entry is invalidated, which
// must be a deliberate decision.
func TestRecipeStringCanonical(t *testing.T) {
	r := Recipe{Kernel: KernelFPMix, N: 360000, Seed: 42}
	const want = "fpmix/n=360000/seed=42/stride=0"
	if got := r.String(); got != want {
		t.Errorf("canonical recipe string %q, want %q", got, want)
	}
}
