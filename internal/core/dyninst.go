// Package core implements the simulated processors: the conventional
// ROB-commit baseline and the paper's checkpointed out-of-order commit
// processor with pseudo-ROB and Slow Lane Instruction Queuing. See
// DESIGN.md for the modelling contract.
package core

import (
	"container/heap"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/isa"
	"repro/internal/lsq"
	"repro/internal/queue"
	"repro/internal/rename"
)

// DynInst is the pipeline's record of one in-flight dynamic instruction.
// Fields are managed by the CPU; tests inspect them read-only.
type DynInst struct {
	// Seq is the dynamic sequence number: unique and monotonically
	// increasing across fetches, including wrong-path and replayed
	// instructions. All age comparisons use Seq.
	Seq uint64
	// Pos is the trace position this instruction came from; -1 for
	// wrong-path instructions.
	Pos int64
	// Inst is the architectural instruction.
	Inst isa.Inst

	// Rename state.
	DestPhys rename.PhysReg
	PrevPhys rename.PhysReg // previous mapping of Inst.Dest
	SrcPhys  [2]rename.PhysReg
	NumSrcs  int

	// Execution state.
	Issued    bool
	Done      bool
	DoneCycle int64
	// MissedL2 marks loads that went to main memory.
	MissedL2 bool
	// Mispredicted marks branches whose fetch-time prediction was wrong.
	Mispredicted bool
	// WrongPath marks synthetic instructions fetched past an unresolved
	// mispredicted branch; they never commit.
	WrongPath bool
	// Squashed instructions are dead; late completion events ignore them.
	Squashed bool
	// LiveLong records the blocked-long/blocked-short classification
	// made at dispatch (Figure 7's live-instruction split); countedLive
	// marks that the instruction is in the live FP counters.
	LiveLong    bool
	countedLive bool
	// ExceptAt requests a precise exception when this instruction
	// completes (exception-replay tests inject it).
	ExceptAt bool
	// Replayed marks the second-pass execution of an instruction after
	// an exception rollback.
	Replayed bool

	// Structure handles.
	iqe  *queue.IQEntry
	lsqe *lsq.Entry
	ckpt *checkpoint.Entry
	// inSLIQ marks residence in the slow lane; inProb marks residence
	// in the pseudo-ROB.
	inSLIQ bool
	inProb bool
	// heapIdx is this instruction's position in the completion heap.
	heapIdx int

	// Virtual-register extension state (Figure 14).
	// prevProd is the producer of the value this instruction redefines.
	prevProd *DynInst
	// fusedRelease: the redefiner completed first, so binding this
	// value consumes no physical register (bind and release fuse).
	fusedRelease bool
	// boundPhys: this value's bind consumed a physical register.
	boundPhys bool
	// prevReleased: the superseded value has been released (release
	// precedes binding and must be idempotent across deferred retries).
	prevReleased bool
	// forwardWait: a load blocked on an older store's data.
	forwardWait bool
	// pendingSrcs counts unready sources for LSQ-resident stores,
	// which wait on the scoreboard instead of occupying an issue-queue
	// entry (the paper keeps stores in the Load/Store queue).
	pendingSrcs int
	// retireClass records the pseudo-ROB classification (debugging);
	// -1 before extraction.
	retireClass int8
}

// String renders a debug line.
func (d *DynInst) String() string {
	state := "waiting"
	switch {
	case d.Squashed:
		state = "squashed"
	case d.Done:
		state = "done"
	case d.Issued:
		state = "issued"
	case d.inSLIQ:
		state = "sliq"
	}
	return fmt.Sprintf("#%d pos=%d %v [%s]", d.Seq, d.Pos, d.Inst, state)
}

// completionHeap orders in-flight completions by DoneCycle (ties by Seq
// for determinism).
type completionHeap struct {
	entries []*DynInst
}

func (h *completionHeap) Len() int { return len(h.entries) }
func (h *completionHeap) Less(i, j int) bool {
	a, b := h.entries[i], h.entries[j]
	if a.DoneCycle != b.DoneCycle {
		return a.DoneCycle < b.DoneCycle
	}
	return a.Seq < b.Seq
}
func (h *completionHeap) Swap(i, j int) {
	h.entries[i], h.entries[j] = h.entries[j], h.entries[i]
	h.entries[i].heapIdx = i
	h.entries[j].heapIdx = j
}
func (h *completionHeap) Push(x any) {
	d := x.(*DynInst)
	d.heapIdx = len(h.entries)
	h.entries = append(h.entries, d)
}
func (h *completionHeap) Pop() any {
	n := len(h.entries)
	d := h.entries[n-1]
	h.entries[n-1] = nil
	h.entries = h.entries[:n-1]
	d.heapIdx = -1
	return d
}

// push schedules a completion.
func (h *completionHeap) push(d *DynInst) { heap.Push(h, d) }

// peek returns the earliest completion without removing it.
func (h *completionHeap) peek() *DynInst {
	if len(h.entries) == 0 {
		return nil
	}
	return h.entries[0]
}

// pop removes and returns the earliest completion.
func (h *completionHeap) pop() *DynInst { return heap.Pop(h).(*DynInst) }
