package trace

import (
	"fmt"

	"repro/internal/isa/programs"
	"repro/internal/isa/rv32"
)

// Kernel names accepted by Recipe. Each maps to one public generator.
const (
	KernelStream       = "stream"
	KernelStrided      = "strided"
	KernelStencil      = "stencil"
	KernelReduction    = "reduction"
	KernelBlocked      = "blocked"
	KernelPointerChase = "pointerchase"
	KernelFPMix        = "fpmix"

	// KernelProgram selects a real RV32 program workload instead of a
	// synthetic generator: the recipe names a registered program
	// (internal/isa/programs) plus its input size, and materialisation
	// functionally executes it into the dynamic stream.
	KernelProgram = "program"
)

// Recipe is the declarative identity of a generated trace: enough
// information to regenerate it bit-for-bit anywhere. It is the workload
// half of a simulation fingerprint (sim.Fingerprint) and the wire form
// a service client ships instead of the materialised instruction
// stream — a few dozen bytes standing in for megabytes of trace.
//
// Length contract: synthetic kernels generate exactly N instructions,
// and callers size N from a committed-instruction budget via LenFor —
// never by hand. Program recipes (KernelProgram) carry no N at all:
// their dynamic length is whatever the program executes before halting,
// a property of the program and its input, not a budget guess.
type Recipe struct {
	// Kernel names the generator (Kernel* constants).
	Kernel string `json:"kernel"`
	// N is the dynamic instruction count to generate (synthetic kernels
	// only; must be zero for KernelProgram, whose length is derived by
	// executing the program).
	N int `json:"n,omitempty"`
	// Seed parameterises KernelFPMix and the program kernels' data
	// layouts; other kernels ignore it.
	Seed uint64 `json:"seed,omitempty"`
	// Stride is the element stride of KernelStrided; other kernels
	// ignore it.
	Stride int `json:"stride,omitempty"`
	// Program names the registered program of a KernelProgram recipe.
	Program string `json:"program,omitempty"`
	// Input is the program's input size (KernelProgram only).
	Input int `json:"input,omitempty"`
}

// LenFor returns the trace length to generate for a run with the given
// committed-instruction budget: the budget plus 20% headroom (rollback
// replays, wrong-path fetch) plus a constant tail, so the run never
// exhausts its trace. Every surface that sizes a synthetic workload
// from a budget must use this one function: the length goes into trace
// recipes and therefore into cache fingerprints, so a drifted copy
// would key the same logical point differently and silently break
// cross-client cache sharing. The 20%+4096 headroom is part of the
// recipe contract, not folklore individual generators may adjust.
//
// Program recipes never use LenFor: a program's dynamic length comes
// from executing it (see Recipe.N).
func LenFor(insts uint64) int {
	return int(insts) + int(insts)/5 + 4096
}

// MaxRecipeInsts bounds Recipe.N. Recipes arrive over the wire and
// materialisation allocates the whole stream up front, so an absurd
// count must be rejected before it reaches the allocator. The bound is
// ~25x the paper's figure scale (364k instructions per point).
const MaxRecipeInsts = 8 << 20

// MaxStreamInsts bounds the dynamic length of a streamed (sampled) run.
// Streaming never materialises the whole trace, so the bound only caps
// runaway requests, not memory — hence ~128x the materialisation cap.
const MaxStreamInsts = 1 << 30

// Validate reports unknown kernels and nonsensical parameters. It also
// rejects parameters the kernel ignores (a seed on "stream", a stride
// on "fpmix"): two recipes that generate identical traces must render
// identical canonical strings, or equal simulations would get distinct
// fingerprints and defeat the content-addressed cache.
func (r Recipe) Validate() error { return r.validate(MaxRecipeInsts) }

// ValidateStreamed is Validate with the N bound lifted to
// MaxStreamInsts: streamed consumers (sampled runs) hold only a window
// in memory, so the materialisation cap does not apply.
func (r Recipe) ValidateStreamed() error { return r.validate(MaxStreamInsts) }

func (r Recipe) validate(maxN int) error {
	if r.Kernel == KernelProgram {
		return r.validateProgram()
	}
	if r.Program != "" || r.Input != 0 {
		return fmt.Errorf("trace: recipe %s: program parameters on a synthetic kernel", r.Kernel)
	}
	if r.N < 1 || r.N > maxN {
		return fmt.Errorf("trace: recipe %s: instruction count %d outside [1,%d]",
			r.Kernel, r.N, maxN)
	}
	switch r.Kernel {
	case KernelStrided:
		if r.Stride < 1 {
			return fmt.Errorf("trace: recipe %s: stride %d < 1", r.Kernel, r.Stride)
		}
	case KernelStream, KernelStencil, KernelReduction, KernelBlocked,
		KernelPointerChase, KernelFPMix:
		if r.Stride != 0 {
			return fmt.Errorf("trace: recipe %s: stride %d on a kernel that ignores it", r.Kernel, r.Stride)
		}
	default:
		return fmt.Errorf("trace: recipe: unknown kernel %q", r.Kernel)
	}
	if r.Seed != 0 && r.Kernel != KernelFPMix {
		return fmt.Errorf("trace: recipe %s: seed %d on a kernel that ignores it", r.Kernel, r.Seed)
	}
	return nil
}

// validateProgram checks a KernelProgram recipe against the program
// registry. N must be zero: program lengths are derived by execution,
// not declared (see the Recipe length contract).
func (r Recipe) validateProgram() error {
	spec, ok := programs.Lookup(r.Program)
	if !ok {
		return fmt.Errorf("trace: recipe: unknown program %q (have %v)", r.Program, programs.Names())
	}
	if r.N != 0 {
		return fmt.Errorf("trace: recipe program/%s: N %d set; program lengths are derived from execution", r.Program, r.N)
	}
	if r.Stride != 0 {
		return fmt.Errorf("trace: recipe program/%s: stride %d on a program recipe", r.Program, r.Stride)
	}
	if r.Input < 1 || r.Input > spec.MaxInput {
		return fmt.Errorf("trace: recipe program/%s: input %d outside [1,%d]", r.Program, r.Input, spec.MaxInput)
	}
	return nil
}

// String renders the canonical form used inside fingerprints. Every
// field is always present so the encoding cannot drift with omission
// rules; changing this string invalidates every content-addressed
// cache entry, which is exactly the intent.
//
// Program recipes render a distinct form no synthetic recipe can
// produce ("program" is not a synthetic kernel name), so adding the
// program extension shifted no existing fingerprint — the zero-drift
// property sim.FingerprintVersion's history relies on.
func (r Recipe) String() string {
	if r.Kernel == KernelProgram {
		return fmt.Sprintf("%s/%s/input=%d/seed=%d", r.Kernel, r.Program, r.Input, r.Seed)
	}
	return fmt.Sprintf("%s/n=%d/seed=%d/stride=%d", r.Kernel, r.N, r.Seed, r.Stride)
}

// Materialise regenerates the trace the recipe describes. Generation is
// deterministic: two Materialise calls of equal recipes produce
// instruction-identical traces.
func (r Recipe) Materialise() (*Trace, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	switch r.Kernel {
	case KernelStream:
		return Stream(r.N), nil
	case KernelStrided:
		return StridedStream(r.N, r.Stride), nil
	case KernelStencil:
		return Stencil(r.N), nil
	case KernelReduction:
		return Reduction(r.N), nil
	case KernelBlocked:
		return Blocked(r.N), nil
	case KernelPointerChase:
		return PointerChase(r.N), nil
	case KernelFPMix:
		return FPMix(r.N, r.Seed), nil
	case KernelProgram:
		return r.materialiseProgram()
	}
	panic("unreachable: Validate accepted kernel " + r.Kernel)
}

// materialiseProgram builds and functionally executes the program into
// its dynamic stream. Execution is deterministic, so program traces are
// bit-identical across materialisations, hosts, and fleet nodes — the
// same contract the synthetic generators give the content-addressed
// cache.
func (r Recipe) materialiseProgram() (*Trace, error) {
	spec, ok := programs.Lookup(r.Program)
	if !ok {
		return nil, fmt.Errorf("trace: recipe: unknown program %q", r.Program)
	}
	p, err := spec.Build(r.Input, r.Seed)
	if err != nil {
		return nil, fmt.Errorf("trace: recipe %s: %w", r, err)
	}
	insts, img, err := rv32.BuildTrace(p, MaxRecipeInsts)
	if err != nil {
		return nil, fmt.Errorf("trace: recipe %s: %w", r, err)
	}
	t := &Trace{name: r.Program, insts: insts, code: img}
	return t.withRecipe(r), nil
}

// WorkloadName returns the human-facing workload label: the program
// name for program recipes, the kernel name otherwise.
func (r Recipe) WorkloadName() string {
	if r.Kernel == KernelProgram {
		return r.Program
	}
	return r.Kernel
}

// Recipe returns the trace's generation recipe. ok is false for traces
// without a declarative identity (custom Mix weights); such traces run
// fine locally but cannot be fingerprinted or shipped to a service.
func (t *Trace) Recipe() (Recipe, bool) {
	return t.recipe, t.hasRecipe
}

// RecipeOnly returns an empty trace carrying just the recipe: a handle
// for callers that only need the workload's identity — a client
// shipping specs to a remote service — without paying materialisation.
// It must never be simulated directly (Len is 0; the core would fail
// immediately); Materialise the recipe for that.
func RecipeOnly(r Recipe) (*Trace, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return (&Trace{name: r.WorkloadName()}).withRecipe(r), nil
}

// StreamOnly is RecipeOnly under the streamed validation rules: the
// handle for sampled points, whose synthetic N may exceed the
// materialisation cap because only a window ever exists in memory.
func StreamOnly(r Recipe) (*Trace, error) {
	if err := r.ValidateStreamed(); err != nil {
		return nil, err
	}
	return (&Trace{name: r.WorkloadName()}).withRecipe(r), nil
}

// withRecipe records the generation recipe on a freshly built trace.
func (t *Trace) withRecipe(r Recipe) *Trace {
	t.recipe = r
	t.hasRecipe = true
	return t
}
