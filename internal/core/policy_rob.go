package core

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/rename"
	"repro/internal/rob"
	"repro/internal/stats"
)

// robPolicy is the conventional baseline: a reorder buffer retires
// finished instructions strictly in program order, bounded by the
// commit width — the discipline the paper replaces.
type robPolicy struct {
	c       *CPU
	reorder *rob.ROB[*DynInst]
}

func init() {
	RegisterCommitPolicy(config.CommitROB, func(c *CPU) CommitPolicy {
		return &robPolicy{c: c, reorder: rob.New[*DynInst](c.cfg.ROBEntries)}
	})
}

// Admit stalls dispatch while the reorder buffer is full.
func (p *robPolicy) Admit(isa.Inst, int64) bool {
	if p.reorder.Full() {
		p.c.stalls.ROB++
		return false
	}
	return true
}

// MakeRoom is a no-op: ROB space was checked in Admit.
func (p *robPolicy) MakeRoom() {}

// AllocateDest uses the conventional discipline: the previous mapping
// is freed when the redefining instruction commits.
func (p *robPolicy) AllocateDest(dest isa.Reg) (rename.PhysReg, rename.PhysReg, bool) {
	return p.c.rt.AllocateROB(dest)
}

// UnwindDest reverses one conventional allocation.
func (p *robPolicy) UnwindDest(d *DynInst) {
	p.c.rt.UnwindROB(d.Inst.Dest, d.DestPhys, d.PrevPhys)
}

// Dispatched appends the instruction at the reorder-buffer tail.
func (p *robPolicy) Dispatched(d *DynInst) {
	if !p.reorder.Push(d) {
		panic("core: ROB full after Full() check")
	}
}

// Completed is a no-op: the head walk in Commit polls Done.
func (p *robPolicy) Completed(*DynInst) {}

// Squashed is a no-op: the ROB has no per-instruction counters.
func (p *robPolicy) Squashed(*DynInst) {}

// Commit retires up to CommitWidth finished instructions from the
// reorder-buffer head, freeing superseded physical registers and
// draining stores.
func (p *robPolicy) Commit() {
	c := p.c
	p.reorder.Commit(c.cfg.CommitWidth,
		func(d *DynInst) bool { return d.Done },
		func(d *DynInst) {
			if d.WrongPath || d.Squashed {
				panic(fmt.Sprintf("core: committing dead instruction %v", d))
			}
			if d.PrevPhys != rename.PhysNone {
				c.rt.Free(d.PrevPhys)
				c.producer[d.PrevPhys] = nil
			}
			if d.lsqe != nil {
				c.lq.Retire(d.lsqe, c.hier.StoreCommit)
				d.lsqe = nil
			}
			c.committed++
			c.inflight--
			c.lastCommitCycle = c.now
			c.pool.release(d)
		})
}

// DispatchStalled is a no-op: a full ROB clears itself as heads retire.
func (p *robPolicy) DispatchStalled() {}

// NextRetireEvent reports "now" while the reorder-buffer head is
// finished (Commit would retire it this cycle) and -1 otherwise: an
// unfinished head can only become retirable through a completion event,
// which the clock skip already bounds by the event wheel.
func (p *robPolicy) NextRetireEvent(now int64) int64 {
	if d, ok := p.reorder.Head(); ok && d.Done {
		return now
	}
	return -1
}

// ResolveMispredict squashes everything younger than the branch from
// the ROB tail (all of it wrong-path, since fetch diverged at the
// branch).
func (p *robPolicy) ResolveMispredict(b *DynInst) {
	c := p.c
	p.reorder.SquashTail(
		func(d *DynInst) bool { return d.Seq <= b.Seq },
		func(d *DynInst) { c.squashInst(d, true) },
	)
	c.lq.SquashYounger(b.Seq + 1)
}

// RaiseException is a no-op: the baseline models no exception replay
// (exceptions are only armed under the checkpoint family).
func (p *robPolicy) RaiseException(*DynInst) {}

// OccupancyBound is the reorder-buffer capacity.
func (p *robPolicy) OccupancyBound() int { return p.c.cfg.ROBEntries }

// AddStats adds nothing: the baseline defines no policy counters.
func (p *robPolicy) AddStats(*stats.Results) {}

// DebugState renders the buffer occupancy.
func (p *robPolicy) DebugState() string {
	return fmt.Sprintf(" rob=%d/%d", p.reorder.Len(), p.reorder.Cap())
}
