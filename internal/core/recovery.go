package core

import (
	"repro/internal/rename"
)

// resolveMispredict handles a mispredicted branch at resolution time:
// the policy-specific recovery (ROB/oracle tail squash, pseudo-ROB
// recovery or checkpoint rollback) runs between clearing the wrong-path
// fetch state and charging the front-end redirect penalty.
func (c *CPU) resolveMispredict(b *DynInst) {
	c.divergedAt = nil
	c.policy.ResolveMispredict(b)
	c.fetchResumeAt = c.now + int64(c.cfg.BranchMispredictPenalty)
}

// squashInst removes one instruction from the pipeline. unwindRename
// selects per-instruction CAM unwinding (tail-squash recoveries, which
// walk in reverse program order); full rollbacks restore a snapshot
// instead and pass false. The caller removes the instruction from the
// retirement structure (ROB/pseudo-ROB/master/window) and the LSQ; this
// handles everything else, and finally releases the record to the free
// list (quarantined until the next dispatch stage — see instPool).
func (c *CPU) squashInst(d *DynInst, unwindRename bool) {
	if d.Squashed {
		return
	}
	d.Squashed = true

	if d.countedLive {
		d.countedLive = false
		if d.LiveLong {
			c.liveFPLong--
		} else {
			c.liveFPShort--
		}
	}
	if d.iqe.Resident() {
		c.iqFor(d.Inst.Op).Remove(&d.iqe)
	}
	// Unschedule any pending completion so the event wheel never holds
	// a released record.
	c.completions.remove(d)
	d.lsqe = nil

	// Policy-side accounting (checkpoint pending/instruction counters).
	c.policy.Squashed(d)

	if c.vt != nil && d.DestPhys != rename.PhysNone {
		if d.Done {
			if d.boundPhys {
				d.boundPhys = false
				c.vt.SquashBound()
			}
		} else {
			// Covers both queued and deferred-bind instructions: the
			// tag is still held until binding succeeds.
			c.vt.UnRename()
		}
	}

	if d.DestPhys != rename.PhysNone {
		// Wake any slow-lane instructions waiting on this dying
		// register so no trigger is lost; they re-evaluate their real
		// source readiness on re-insertion.
		if c.sliq != nil {
			c.sliq.TriggerReady(d.DestPhys, c.now)
		}
		if unwindRename {
			c.policy.UnwindDest(d)
		}
		c.regReady[d.DestPhys] = false
		c.longTaint[d.DestPhys] = false
		c.consumers[d.DestPhys] = c.consumers[d.DestPhys][:0]
		if c.producer[d.DestPhys] == d {
			c.producer[d.DestPhys] = nil
		}
	}

	c.inflight--
	if !d.WrongPath {
		c.replayed++
	}
	c.pool.release(d)
}
