// Package fleet shards simulation batches across a set of ooosimd
// workers behind the single-node batch API.
//
// The coordinator fronts N workers with exactly the HTTP surface one
// worker exposes (service.BatchAPI), so clients — the CLI, the sweep
// runner, the load generator — cannot tell a fleet from a node. Inside,
// each point routes to the worker owning its fingerprint's shard
// (sim.ShardFor over the currently-ready node list), which makes the
// fleet's caches partition cleanly: identical points always land on
// the same node, so no result is computed or stored twice.
//
// Three mechanisms keep that guarantee under churn:
//
//   - Coordinator singleflight: concurrent batches sharing a
//     fingerprint elect one leader submission per point; followers
//     adopt the leader's bytes and report cached, so not even the
//     routing layer sends a duplicate downstream.
//   - Health routing: a pinger tracks each worker's /readyz, and a
//     worker that fails a submission or severs an event stream is
//     marked down immediately. Unfinished points re-bucket over the
//     survivors in a fresh routing pass; the simulation is
//     deterministic, so a re-routed point's bytes match what the dead
//     node would have produced.
//   - Admission and drain mirror the worker semantics: a bounded
//     point queue rejects with service.ErrOverloaded (HTTP 429), and
//     drain stops admission while in-flight batches run dry.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/service"
	"repro/internal/sim"
)

// Options configures a Coordinator.
type Options struct {
	// Workers lists the worker base URLs (e.g. "http://127.0.0.1:8321").
	// At least one is required.
	Workers []string
	// MaxQueue bounds admitted-but-unfinished points across all batches;
	// <= 0 admits everything.
	MaxQueue int
	// PingInterval spaces the health pinger's /readyz probes; <= 0 uses
	// one second.
	PingInterval time.Duration
	// MaxBatches bounds how many finished batches stay pollable; <= 0
	// uses 256.
	MaxBatches int
	// HTTPClient overrides the default worker transport (tests,
	// timeouts).
	HTTPClient *http.Client
	// Log, when non-nil, receives routing events: node mark-downs,
	// re-route passes, batch completion lines.
	Log func(format string, args ...any)
}

// node is one worker and its health state.
type node struct {
	url    string
	client *service.Client
	up     atomic.Bool
}

// Coordinator shards batches over a worker fleet. It implements
// service.BatchAPI; serve it with service.NewAPIHandler (or
// fleet.NewHandler for the full production surface).
type Coordinator struct {
	nodes    []*node
	maxQueue int
	log      func(format string, args ...any)

	metrics  metrics
	draining atomic.Bool

	// flight deduplicates in-flight points across batches by
	// fingerprint: one leader submission per point fleet-wide.
	flightMu sync.Mutex
	flight   map[string]*flightEntry

	mu         sync.Mutex
	batches    map[string]*service.Batch
	order      []string
	nextID     int
	maxBatches int

	pingStop chan struct{}
	pingDone chan struct{}
}

type flightEntry struct {
	done   chan struct{}
	raw    json.RawMessage
	cached bool
	err    error
}

// New builds a coordinator and starts its health pinger. Call Close to
// stop the pinger.
func New(opt Options) (*Coordinator, error) {
	if len(opt.Workers) == 0 {
		return nil, fmt.Errorf("fleet: no workers configured")
	}
	maxBatches := opt.MaxBatches
	if maxBatches <= 0 {
		maxBatches = 256
	}
	interval := opt.PingInterval
	if interval <= 0 {
		interval = time.Second
	}
	c := &Coordinator{
		maxQueue:   opt.MaxQueue,
		log:        opt.Log,
		flight:     map[string]*flightEntry{},
		batches:    map[string]*service.Batch{},
		maxBatches: maxBatches,
		pingStop:   make(chan struct{}),
		pingDone:   make(chan struct{}),
	}
	for _, u := range opt.Workers {
		n := &node{url: u, client: &service.Client{BaseURL: u, HTTPClient: opt.HTTPClient}}
		// Optimistic start: nodes are assumed ready until a probe or a
		// dispatch failure says otherwise, so the first batch never waits
		// for a ping cycle.
		n.up.Store(true)
		c.nodes = append(c.nodes, n)
	}
	go c.pingLoop(interval)
	return c, nil
}

// Close stops the health pinger. In-flight batches keep running.
func (c *Coordinator) Close() {
	select {
	case <-c.pingStop:
	default:
		close(c.pingStop)
	}
	<-c.pingDone
}

// pingLoop probes every worker's readiness on a fixed cadence. A probe
// result overrides dispatch-time mark-downs in both directions: a
// recovered (restarted or drained-and-returned) worker rejoins the
// routing set without operator action.
func (c *Coordinator) pingLoop(interval time.Duration) {
	defer close(c.pingDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-c.pingStop:
			return
		case <-ticker.C:
			c.pingOnce()
		}
	}
}

// pingOnce probes every node once (also a test seam).
func (c *Coordinator) pingOnce() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for _, n := range c.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			ready := n.client.Ready(ctx) == nil
			if n.up.Swap(ready) != ready && c.log != nil {
				state := "down"
				if ready {
					state = "up"
				}
				c.log("fleet: node %s is %s", n.url, state)
			}
		}(n)
	}
	wg.Wait()
}

// readyNodes returns the nodes currently accepting work.
func (c *Coordinator) readyNodes() []*node {
	var out []*node
	for _, n := range c.nodes {
		if n.up.Load() {
			out = append(out, n)
		}
	}
	return out
}

// StartDrain stops admitting new batches. Idempotent.
func (c *Coordinator) StartDrain() { c.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (c *Coordinator) Draining() bool { return c.draining.Load() }

// Drain starts draining and blocks until every admitted point finished
// (or ctx expires).
func (c *Coordinator) Drain(ctx context.Context) error {
	c.StartDrain()
	for c.metrics.QueueDepth.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
	return nil
}

// Ready reports why the coordinator should not receive new work:
// draining, queue over the bound, or no live workers.
func (c *Coordinator) Ready() error {
	if c.draining.Load() {
		return service.ErrDraining
	}
	if q := c.metrics.QueueDepth.Load(); c.maxQueue > 0 && q >= int64(c.maxQueue) {
		return fmt.Errorf("%w: %d queued >= bound %d", service.ErrOverloaded, q, c.maxQueue)
	}
	if len(c.readyNodes()) == 0 {
		return errors.New("fleet: no workers ready")
	}
	return nil
}

// Submit validates and fingerprints the batch, admits it against the
// queue bound, and dispatches it across the fleet asynchronously.
func (c *Coordinator) Submit(jobs []service.Job) (*service.Batch, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("fleet: empty batch")
	}
	if c.draining.Load() {
		c.metrics.BatchesRejected.Add(1)
		return nil, service.ErrDraining
	}
	fps := make([]string, len(jobs))
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: job %d: %w", i, err)
		}
		fp, err := j.Fingerprint()
		if err != nil {
			return nil, fmt.Errorf("fleet: job %d: %w", i, err)
		}
		fps[i] = fp
	}
	if c.maxQueue > 0 {
		if q := c.metrics.QueueDepth.Load(); q+int64(len(jobs)) > int64(c.maxQueue) {
			c.metrics.BatchesRejected.Add(1)
			return nil, fmt.Errorf("%w: %d queued + %d new points > bound %d",
				service.ErrOverloaded, q, len(jobs), c.maxQueue)
		}
	}
	c.metrics.BatchesSubmitted.Add(1)
	c.metrics.Points.Add(uint64(len(jobs)))
	c.metrics.QueueDepth.Add(int64(len(jobs)))

	c.mu.Lock()
	c.nextID++
	b := service.NewBatch(fmt.Sprintf("f%d", c.nextID), append([]service.Job(nil), jobs...), fps)
	c.batches[b.ID()] = b
	c.order = append(c.order, b.ID())
	for len(c.order) > c.maxBatches {
		victim := c.batches[c.order[0]]
		if victim != nil && victim.Status().State == service.StateRunning {
			break
		}
		delete(c.batches, c.order[0])
		c.order = c.order[1:]
	}
	c.mu.Unlock()

	go c.dispatch(b)
	return b, nil
}

// Batch returns a previously submitted batch by ID.
func (c *Coordinator) Batch(id string) (*service.Batch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.batches[id]
	return b, ok
}

// pointResult is one point's outcome arriving at the dispatch loop.
type pointResult struct {
	i      int
	raw    json.RawMessage
	cached bool
	err    error
}

// dispatch routes a batch's points across the fleet until every point
// completes, re-routing around node failures. It is the only completer
// of b, so the exactly-once Complete contract holds by construction:
// results from every source (worker streams, flight followers, terminal
// errors) funnel through one loop that drops duplicates.
func (c *Coordinator) dispatch(b *service.Batch) {
	jobs, fps := b.Jobs(), b.Fingerprints()
	results := make(chan pointResult, len(jobs))

	// Split points into flight leaders (we submit them) and followers
	// (an earlier batch is already computing the same fingerprint; adopt
	// its bytes when it lands). Duplicate fingerprints within this batch
	// follow their first occurrence the same way.
	var lead []int
	leaders := map[string]bool{}
	for i, fp := range fps {
		c.flightMu.Lock()
		e, inFlight := c.flight[fp]
		if !inFlight {
			e = &flightEntry{done: make(chan struct{})}
			c.flight[fp] = e
		}
		c.flightMu.Unlock()
		if !inFlight && !leaders[fp] {
			leaders[fp] = true
			lead = append(lead, i)
			continue
		}
		c.metrics.PointsDeduped.Add(1)
		go func(i int, e *flightEntry) {
			<-e.done
			// A shared result is cached by definition: this submission
			// ran nothing for it.
			results <- pointResult{i: i, raw: e.raw, cached: e.err == nil, err: e.err}
		}(i, e)
	}

	go c.route(b, lead, results)

	done := make([]bool, len(jobs))
	for range jobs {
		r := <-results
		if done[r.i] {
			continue
		}
		done[r.i] = true
		if leaders[fps[r.i]] {
			c.resolveFlight(fps[r.i], r)
			leaders[fps[r.i]] = false // resolve once per fingerprint
		}
		if r.err != nil {
			c.metrics.PointErrors.Add(1)
		}
		b.Complete(r.i, r.raw, r.cached, r.err)
		c.metrics.QueueDepth.Add(-1)
	}
	if c.log != nil {
		if line, ok := b.TakeDoneLine(); ok {
			c.log("%s", line)
		}
	}
}

// resolveFlight publishes a leader point's outcome to its followers.
func (c *Coordinator) resolveFlight(fp string, r pointResult) {
	c.flightMu.Lock()
	e := c.flight[fp]
	delete(c.flight, fp)
	c.flightMu.Unlock()
	if e == nil {
		return
	}
	e.raw, e.cached, e.err = r.raw, r.cached, r.err
	close(e.done)
}

// route drives the leader points to completion: shard over the ready
// nodes, run the per-node sub-batches, re-bucket whatever a failed node
// left unfinished. Every pass excludes the nodes that just failed, so
// the pass count is bounded by the fleet size; when no nodes remain the
// leftovers complete with a routing error.
func (c *Coordinator) route(b *service.Batch, lead []int, results chan<- pointResult) {
	jobs, fps := b.Jobs(), b.Fingerprints()
	pending := lead
	for pass := 0; len(pending) > 0 && pass <= len(c.nodes)+1; pass++ {
		ready := c.readyNodes()
		if len(ready) == 0 {
			break
		}
		if pass > 0 {
			c.metrics.Reroutes.Add(uint64(len(pending)))
			if c.log != nil {
				c.log("fleet: re-routing %d point(s) over %d node(s) (pass %d)", len(pending), len(ready), pass)
			}
		}
		// Shard by fingerprint over the ready nodes: identical points
		// land on identical nodes, so per-node caches stay partitioned.
		buckets := make([][]int, len(ready))
		for _, i := range pending {
			s := sim.ShardFor(fps[i], len(ready))
			buckets[s] = append(buckets[s], i)
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var unfinished []int
		for s, idxs := range buckets {
			if len(idxs) == 0 {
				continue
			}
			wg.Add(1)
			go func(n *node, idxs []int) {
				defer wg.Done()
				left := c.runOn(n, jobs, idxs, results)
				if len(left) > 0 {
					mu.Lock()
					unfinished = append(unfinished, left...)
					mu.Unlock()
				}
			}(ready[s], idxs)
		}
		wg.Wait()
		pending = unfinished
	}
	for _, i := range pending {
		results <- pointResult{i: i, err: errors.New("fleet: no workers available to run this point")}
	}
}

// runOn submits idxs' jobs to one worker and streams completions into
// results. On worker failure it marks the node down and returns the
// points that did not complete, for the caller to re-route. Per-point
// simulation errors are final (the simulator is deterministic; another
// node would fail identically) and do not count as unfinished.
func (c *Coordinator) runOn(n *node, jobs []service.Job, idxs []int, results chan<- pointResult) (unfinished []int) {
	sub := make([]service.Job, len(idxs))
	for k, i := range idxs {
		sub[k] = jobs[i]
	}
	got := make([]bool, len(idxs))
	defer func() {
		for k, ok := range got {
			if !ok {
				unfinished = append(unfinished, idxs[k])
			}
		}
	}()

	// A batch is open-ended work; the only timeout that makes sense is
	// per-connection (the client's transport), not end-to-end.
	ctx := context.Background()
	st, err := n.client.Submit(ctx, sub)
	if err != nil {
		c.markDown(n, err)
		return
	}
	err = n.client.Stream(ctx, st.ID, func(ev service.Event) error {
		switch ev.Type {
		case "result":
			if ev.Index >= 0 && ev.Index < len(idxs) {
				got[ev.Index] = true
				results <- pointResult{i: idxs[ev.Index], raw: ev.Results, cached: ev.Cached}
			}
		case "error":
			if ev.Index >= 0 && ev.Index < len(idxs) {
				got[ev.Index] = true
				results <- pointResult{i: idxs[ev.Index], err: errors.New(ev.Error)}
			}
		}
		return nil
	})
	if err != nil {
		c.markDown(n, err)
	}
	return
}

// markDown records a dispatch-time worker failure; the pinger re-admits
// the node when it answers /readyz again.
func (c *Coordinator) markDown(n *node, err error) {
	if n.up.Swap(false) {
		c.metrics.NodeFailures.Add(1)
		if c.log != nil {
			c.log("fleet: node %s marked down: %v", n.url, err)
		}
	}
}
