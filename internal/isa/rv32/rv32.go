// Package rv32 implements the small RV32I(+M) subset behind the
// simulator's program workloads: a binary instruction codec, a
// label-resolving assembler, and an architectural executor that runs an
// encoded Program to produce the dynamic instruction stream the
// pipeline consumes (see BuildTrace).
//
// The subset is RV32I minus FENCE/CSR plus the M-extension multiply and
// divide group. EBREAK halts a program; ECALL is decodable but has no
// semantics here and faults the executor. Decode is total over 32-bit
// words — malformed encodings return an error, never a panic — which
// the FuzzDecode target pins.
package rv32

import "fmt"

// Op names one RV32 instruction of the supported subset.
type Op uint8

// Supported instructions.
const (
	opInvalid Op = iota

	LUI
	AUIPC
	JAL
	JALR

	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU

	LB
	LH
	LW
	LBU
	LHU
	SB
	SH
	SW

	ADDI
	SLTI
	SLTIU
	XORI
	ORI
	ANDI
	SLLI
	SRLI
	SRAI

	ADD
	SUB
	SLL
	SLT
	SLTU
	XOR
	SRL
	SRA
	OR
	AND

	MUL
	MULH
	MULHSU
	MULHU
	DIV
	DIVU
	REM
	REMU

	ECALL
	EBREAK

	numOps
)

var opNames = [numOps]string{
	LUI: "lui", AUIPC: "auipc", JAL: "jal", JALR: "jalr",
	BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu",
	LB: "lb", LH: "lh", LW: "lw", LBU: "lbu", LHU: "lhu",
	SB: "sb", SH: "sh", SW: "sw",
	ADDI: "addi", SLTI: "slti", SLTIU: "sltiu", XORI: "xori", ORI: "ori",
	ANDI: "andi", SLLI: "slli", SRLI: "srli", SRAI: "srai",
	ADD: "add", SUB: "sub", SLL: "sll", SLT: "slt", SLTU: "sltu",
	XOR: "xor", SRL: "srl", SRA: "sra", OR: "or", AND: "and",
	MUL: "mul", MULH: "mulh", MULHSU: "mulhsu", MULHU: "mulhu",
	DIV: "div", DIVU: "divu", REM: "rem", REMU: "remu",
	ECALL: "ecall", EBREAK: "ebreak",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("rv32op(%d)", uint8(o))
}

// Ops returns every supported instruction, in a stable order. The
// decoder round-trip test iterates it so new instructions cannot be
// added without golden coverage.
func Ops() []Op {
	ops := make([]Op, 0, int(numOps)-1)
	for o := opInvalid + 1; o < numOps; o++ {
		ops = append(ops, o)
	}
	return ops
}

// Decoded is one decoded instruction. Rd/Rs1/Rs2 are register numbers
// (x0..x31); Imm is the sign-extended immediate — for LUI/AUIPC it
// holds the full shifted value (low 12 bits zero), for shifts the
// shift amount, for branches and jumps the byte offset from the
// instruction's own address.
type Decoded struct {
	Op  Op
	Rd  uint8
	Rs1 uint8
	Rs2 uint8
	Imm int32
}

// String renders a debug form, e.g. "addi x5, x5, -1".
func (d Decoded) String() string {
	switch fmtOf(d.Op) {
	case fmtU, fmtJ:
		return fmt.Sprintf("%v x%d, %d", d.Op, d.Rd, d.Imm)
	case fmtI:
		if d.Op == ECALL || d.Op == EBREAK {
			return d.Op.String()
		}
		return fmt.Sprintf("%v x%d, x%d, %d", d.Op, d.Rd, d.Rs1, d.Imm)
	case fmtS:
		return fmt.Sprintf("%v x%d, %d(x%d)", d.Op, d.Rs2, d.Imm, d.Rs1)
	case fmtB:
		return fmt.Sprintf("%v x%d, x%d, %d", d.Op, d.Rs1, d.Rs2, d.Imm)
	default:
		return fmt.Sprintf("%v x%d, x%d, x%d", d.Op, d.Rd, d.Rs1, d.Rs2)
	}
}

// Instruction formats.
const (
	fmtR = iota
	fmtI
	fmtS
	fmtB
	fmtU
	fmtJ
)

func fmtOf(op Op) int {
	switch op {
	case LUI, AUIPC:
		return fmtU
	case JAL:
		return fmtJ
	case JALR, LB, LH, LW, LBU, LHU,
		ADDI, SLTI, SLTIU, XORI, ORI, ANDI, SLLI, SRLI, SRAI,
		ECALL, EBREAK:
		return fmtI
	case SB, SH, SW:
		return fmtS
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return fmtB
	default:
		return fmtR
	}
}

// Major opcodes.
const (
	opcLui    = 0x37
	opcAuipc  = 0x17
	opcJal    = 0x6F
	opcJalr   = 0x67
	opcBranch = 0x63
	opcLoad   = 0x03
	opcStore  = 0x23
	opcOpImm  = 0x13
	opcOp     = 0x33
	opcSystem = 0x73
)

// Decode decodes one 32-bit instruction word. Every unsupported or
// malformed encoding returns a descriptive error; Decode never panics.
func Decode(w uint32) (Decoded, error) {
	opc := w & 0x7F
	rd := uint8((w >> 7) & 0x1F)
	f3 := (w >> 12) & 0x7
	rs1 := uint8((w >> 15) & 0x1F)
	rs2 := uint8((w >> 20) & 0x1F)
	f7 := w >> 25
	bad := func(what string) (Decoded, error) {
		return Decoded{}, fmt.Errorf("rv32: decode %#08x: %s", w, what)
	}
	switch opc {
	case opcLui:
		return Decoded{Op: LUI, Rd: rd, Imm: int32(w & 0xFFFFF000)}, nil
	case opcAuipc:
		return Decoded{Op: AUIPC, Rd: rd, Imm: int32(w & 0xFFFFF000)}, nil
	case opcJal:
		return Decoded{Op: JAL, Rd: rd, Imm: immJ(w)}, nil
	case opcJalr:
		if f3 != 0 {
			return bad(fmt.Sprintf("jalr funct3 %d", f3))
		}
		return Decoded{Op: JALR, Rd: rd, Rs1: rs1, Imm: immI(w)}, nil
	case opcBranch:
		var op Op
		switch f3 {
		case 0:
			op = BEQ
		case 1:
			op = BNE
		case 4:
			op = BLT
		case 5:
			op = BGE
		case 6:
			op = BLTU
		case 7:
			op = BGEU
		default:
			return bad(fmt.Sprintf("branch funct3 %d", f3))
		}
		return Decoded{Op: op, Rs1: rs1, Rs2: rs2, Imm: immB(w)}, nil
	case opcLoad:
		var op Op
		switch f3 {
		case 0:
			op = LB
		case 1:
			op = LH
		case 2:
			op = LW
		case 4:
			op = LBU
		case 5:
			op = LHU
		default:
			return bad(fmt.Sprintf("load funct3 %d", f3))
		}
		return Decoded{Op: op, Rd: rd, Rs1: rs1, Imm: immI(w)}, nil
	case opcStore:
		var op Op
		switch f3 {
		case 0:
			op = SB
		case 1:
			op = SH
		case 2:
			op = SW
		default:
			return bad(fmt.Sprintf("store funct3 %d", f3))
		}
		return Decoded{Op: op, Rs1: rs1, Rs2: rs2, Imm: immS(w)}, nil
	case opcOpImm:
		var op Op
		switch f3 {
		case 0:
			op = ADDI
		case 2:
			op = SLTI
		case 3:
			op = SLTIU
		case 4:
			op = XORI
		case 6:
			op = ORI
		case 7:
			op = ANDI
		case 1:
			if f7 != 0 {
				return bad(fmt.Sprintf("slli funct7 %#x", f7))
			}
			return Decoded{Op: SLLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
		case 5:
			switch f7 {
			case 0:
				return Decoded{Op: SRLI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
			case 0x20:
				return Decoded{Op: SRAI, Rd: rd, Rs1: rs1, Imm: int32(rs2)}, nil
			default:
				return bad(fmt.Sprintf("shift funct7 %#x", f7))
			}
		}
		return Decoded{Op: op, Rd: rd, Rs1: rs1, Imm: immI(w)}, nil
	case opcOp:
		var op Op
		switch f7 {
		case 0:
			op = [8]Op{ADD, SLL, SLT, SLTU, XOR, SRL, OR, AND}[f3]
		case 0x20:
			switch f3 {
			case 0:
				op = SUB
			case 5:
				op = SRA
			default:
				return bad(fmt.Sprintf("op funct7 0x20 funct3 %d", f3))
			}
		case 1:
			op = [8]Op{MUL, MULH, MULHSU, MULHU, DIV, DIVU, REM, REMU}[f3]
		default:
			return bad(fmt.Sprintf("op funct7 %#x", f7))
		}
		return Decoded{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
	case opcSystem:
		switch w {
		case 0x00000073:
			return Decoded{Op: ECALL}, nil
		case 0x00100073:
			return Decoded{Op: EBREAK, Imm: 1}, nil
		default:
			return bad("unsupported system instruction")
		}
	default:
		return bad(fmt.Sprintf("unknown opcode %#02x", opc))
	}
}

// funct3/funct7 encodings per op, for Encode.
var encTable = map[Op]struct {
	opc uint32
	f3  uint32
	f7  uint32
}{
	LUI: {opcLui, 0, 0}, AUIPC: {opcAuipc, 0, 0},
	JAL: {opcJal, 0, 0}, JALR: {opcJalr, 0, 0},
	BEQ: {opcBranch, 0, 0}, BNE: {opcBranch, 1, 0}, BLT: {opcBranch, 4, 0},
	BGE: {opcBranch, 5, 0}, BLTU: {opcBranch, 6, 0}, BGEU: {opcBranch, 7, 0},
	LB: {opcLoad, 0, 0}, LH: {opcLoad, 1, 0}, LW: {opcLoad, 2, 0},
	LBU: {opcLoad, 4, 0}, LHU: {opcLoad, 5, 0},
	SB: {opcStore, 0, 0}, SH: {opcStore, 1, 0}, SW: {opcStore, 2, 0},
	ADDI: {opcOpImm, 0, 0}, SLTI: {opcOpImm, 2, 0}, SLTIU: {opcOpImm, 3, 0},
	XORI: {opcOpImm, 4, 0}, ORI: {opcOpImm, 6, 0}, ANDI: {opcOpImm, 7, 0},
	SLLI: {opcOpImm, 1, 0}, SRLI: {opcOpImm, 5, 0}, SRAI: {opcOpImm, 5, 0x20},
	ADD: {opcOp, 0, 0}, SUB: {opcOp, 0, 0x20}, SLL: {opcOp, 1, 0},
	SLT: {opcOp, 2, 0}, SLTU: {opcOp, 3, 0}, XOR: {opcOp, 4, 0},
	SRL: {opcOp, 5, 0}, SRA: {opcOp, 5, 0x20}, OR: {opcOp, 6, 0}, AND: {opcOp, 7, 0},
	MUL: {opcOp, 0, 1}, MULH: {opcOp, 1, 1}, MULHSU: {opcOp, 2, 1}, MULHU: {opcOp, 3, 1},
	DIV: {opcOp, 4, 1}, DIVU: {opcOp, 5, 1}, REM: {opcOp, 6, 1}, REMU: {opcOp, 7, 1},
	ECALL: {opcSystem, 0, 0}, EBREAK: {opcSystem, 0, 0},
}

// Encode encodes d into its 32-bit instruction word, validating
// register numbers and immediate ranges. Decode(Encode(d)) == d for
// every valid d (the golden round-trip test pins this per opcode).
func (d Decoded) Encode() (uint32, error) {
	e, ok := encTable[d.Op]
	if !ok {
		return 0, fmt.Errorf("rv32: encode: unknown op %v", d.Op)
	}
	if d.Rd > 31 || d.Rs1 > 31 || d.Rs2 > 31 {
		return 0, fmt.Errorf("rv32: encode %v: register out of range", d.Op)
	}
	rd, rs1, rs2 := uint32(d.Rd), uint32(d.Rs1), uint32(d.Rs2)
	imm := d.Imm
	switch d.Op {
	case ECALL:
		return 0x00000073, nil
	case EBREAK:
		return 0x00100073, nil
	case LUI, AUIPC:
		if imm&0xFFF != 0 {
			return 0, fmt.Errorf("rv32: encode %v: immediate %d has nonzero low bits", d.Op, imm)
		}
		return uint32(imm) | rd<<7 | e.opc, nil
	case JAL:
		if imm < -(1<<20) || imm >= 1<<20 || imm&1 != 0 {
			return 0, fmt.Errorf("rv32: encode jal: offset %d out of range", imm)
		}
		u := uint32(imm)
		w := (u>>20&1)<<31 | (u>>1&0x3FF)<<21 | (u>>11&1)<<20 | (u >> 12 & 0xFF << 12)
		return w | rd<<7 | e.opc, nil
	case SLLI, SRLI, SRAI:
		if imm < 0 || imm > 31 {
			return 0, fmt.Errorf("rv32: encode %v: shift amount %d out of range", d.Op, imm)
		}
		return e.f7<<25 | uint32(imm)<<20 | rs1<<15 | e.f3<<12 | rd<<7 | e.opc, nil
	}
	switch fmtOf(d.Op) {
	case fmtI:
		if imm < -2048 || imm > 2047 {
			return 0, fmt.Errorf("rv32: encode %v: immediate %d out of range", d.Op, imm)
		}
		return uint32(imm)&0xFFF<<20 | rs1<<15 | e.f3<<12 | rd<<7 | e.opc, nil
	case fmtS:
		if imm < -2048 || imm > 2047 {
			return 0, fmt.Errorf("rv32: encode %v: immediate %d out of range", d.Op, imm)
		}
		u := uint32(imm) & 0xFFF
		return (u>>5)<<25 | rs2<<20 | rs1<<15 | e.f3<<12 | (u&0x1F)<<7 | e.opc, nil
	case fmtB:
		if imm < -4096 || imm > 4095 || imm&1 != 0 {
			return 0, fmt.Errorf("rv32: encode %v: offset %d out of range", d.Op, imm)
		}
		u := uint32(imm)
		w := (u>>12&1)<<31 | (u>>5&0x3F)<<25 | (u>>1&0xF)<<8 | (u >> 11 & 1 << 7)
		return w | rs2<<20 | rs1<<15 | e.f3<<12 | e.opc, nil
	default: // fmtR
		return e.f7<<25 | rs2<<20 | rs1<<15 | e.f3<<12 | rd<<7 | e.opc, nil
	}
}

// immI extracts the sign-extended I-type immediate.
func immI(w uint32) int32 { return int32(w) >> 20 }

// immS extracts the sign-extended S-type immediate.
func immS(w uint32) int32 {
	return int32(w)>>25<<5 | int32(w>>7&0x1F)
}

// immB extracts the sign-extended B-type branch offset.
func immB(w uint32) int32 {
	u := (w>>31&1)<<12 | (w>>7&1)<<11 | (w>>25&0x3F)<<5 | (w >> 8 & 0xF << 1)
	return int32(u<<19) >> 19
}

// immJ extracts the sign-extended J-type jump offset.
func immJ(w uint32) int32 {
	u := (w>>31&1)<<20 | (w>>12&0xFF)<<12 | (w>>20&1)<<11 | (w >> 21 & 0x3FF << 1)
	return int32(u<<11) >> 11
}
