package rob

import "testing"

type inst struct {
	seq  uint64
	done bool
}

func TestPushCommitOrder(t *testing.T) {
	r := New[*inst](4)
	a, b, c := &inst{seq: 1, done: true}, &inst{seq: 2, done: true}, &inst{seq: 3}
	r.Push(a)
	r.Push(b)
	r.Push(c)
	var retired []uint64
	n := r.Commit(4,
		func(i *inst) bool { return i.done },
		func(i *inst) { retired = append(retired, i.seq) })
	if n != 2 || len(retired) != 2 || retired[0] != 1 || retired[1] != 2 {
		t.Fatalf("retired %v", retired)
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
	// The unfinished head blocks everything behind it.
	d := &inst{seq: 4, done: true}
	r.Push(d)
	if n := r.Commit(4, func(i *inst) bool { return i.done }, func(*inst) {}); n != 0 {
		t.Fatal("unfinished head must block commit (in-order retirement)")
	}
}

func TestCommitWidthBound(t *testing.T) {
	r := New[*inst](8)
	for i := uint64(1); i <= 8; i++ {
		r.Push(&inst{seq: i, done: true})
	}
	if n := r.Commit(4, func(i *inst) bool { return i.done }, func(*inst) {}); n != 4 {
		t.Fatalf("commit width not honoured: %d", n)
	}
}

func TestFullAndStalls(t *testing.T) {
	r := New[*inst](2)
	r.Push(&inst{seq: 1})
	r.Push(&inst{seq: 2})
	if !r.Full() {
		t.Fatal("should be full")
	}
	if r.Push(&inst{seq: 3}) {
		t.Fatal("push into full ROB must fail")
	}
	if r.Stats().FullStalls != 1 {
		t.Fatal("stall not counted")
	}
}

func TestSquashTail(t *testing.T) {
	r := New[*inst](8)
	for i := uint64(1); i <= 5; i++ {
		r.Push(&inst{seq: i})
	}
	var squashed []uint64
	n := r.SquashTail(
		func(i *inst) bool { return i.seq <= 2 },
		func(i *inst) { squashed = append(squashed, i.seq) })
	if n != 3 {
		t.Fatalf("squashed %d, want 3", n)
	}
	// Youngest-first order is required for rename unwinding.
	want := []uint64{5, 4, 3}
	for i := range want {
		if squashed[i] != want[i] {
			t.Fatalf("squash order %v, want %v", squashed, want)
		}
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestHeadAndForEach(t *testing.T) {
	r := New[*inst](4)
	if _, ok := r.Head(); ok {
		t.Fatal("empty head")
	}
	r.Push(&inst{seq: 7})
	r.Push(&inst{seq: 8})
	h, ok := r.Head()
	if !ok || h.seq != 7 {
		t.Fatal("head wrong")
	}
	var seen []uint64
	r.ForEach(func(i *inst) { seen = append(seen, i.seq) })
	if len(seen) != 2 || seen[0] != 7 || seen[1] != 8 {
		t.Fatalf("ForEach %v", seen)
	}
}

func TestWraparound(t *testing.T) {
	r := New[*inst](3)
	seq := uint64(0)
	retire := func(*inst) {}
	done := func(i *inst) bool { return true }
	for round := 0; round < 7; round++ {
		for r.Len() < 3 {
			seq++
			r.Push(&inst{seq: seq, done: true})
		}
		r.Commit(2, done, retire)
	}
	// Entries must still come out in order after many wraps.
	var got []uint64
	r.ForEach(func(i *inst) { got = append(got, i.seq) })
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("order broken after wraparound: %v", got)
		}
	}
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero capacity")
		}
	}()
	New[int](0)
}
