// Package experiments regenerates every table and figure of the paper's
// evaluation (section 4). Each FigureN function sweeps the paper's
// parameters over the synthetic SPEC2000fp-stand-in suite and reports
// suite averages, mirroring the paper's "averaging over all the
// applications in the set". See DESIGN.md §5 for the experiment index
// and EXPERIMENTS.md for recorded paper-vs-measured results.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options bounds every experiment run.
type Options struct {
	// Insts is the committed-instruction target per configuration
	// point. It must be large enough that each workload's touched
	// footprint exceeds the L2 capacity (see DESIGN.md §4); DefaultInsts
	// satisfies that with margin.
	Insts uint64
	// Seed parameterises the mixed workload.
	Seed uint64
	// Progress, when non-nil, receives one line per completed run.
	Progress func(line string)
}

// DefaultInsts is the per-point instruction budget used by the paper
// reproduction runs (the paper used 300M-instruction SimPoint regions;
// our stationary kernels converge far faster).
const DefaultInsts = 300_000

// Defaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Insts == 0 {
		o.Insts = DefaultInsts
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// traceMargin is the extra trace length beyond the committed-instruction
// target so runs never exhaust the trace.
func traceMargin(insts uint64) int {
	return int(insts) + int(insts)/5 + 4096
}

// Benchmark is one suite member: a named workload generator.
type Benchmark struct {
	Name string
	Gen  func(n int) *trace.Trace
}

// SuiteBenchmarks returns the evaluation suite, the synthetic stand-in
// for SPEC2000fp (DESIGN.md §4): two latency-wall streams, a moderately
// memory-bound stencil, an ILP-limited reduction, a cache-resident
// blocked kernel, and the mixed composite.
func SuiteBenchmarks(seed uint64) []Benchmark {
	return []Benchmark{
		{"stream", trace.Stream},
		{"strided", func(n int) *trace.Trace { return trace.StridedStream(n, 8) }},
		{"stencil", trace.Stencil},
		{"reduction", trace.Reduction},
		{"blocked", trace.Blocked},
		{"fpmix", func(n int) *trace.Trace { return trace.FPMix(n, seed) }},
	}
}

// suite materialises the benchmark traces once per experiment.
func (o Options) suite() []suiteTrace {
	bs := SuiteBenchmarks(o.Seed)
	out := make([]suiteTrace, len(bs))
	n := traceMargin(o.Insts)
	for i, b := range bs {
		out[i] = suiteTrace{name: b.Name, tr: b.Gen(n)}
	}
	return out
}

type suiteTrace struct {
	name string
	tr   *trace.Trace
}

// runOne simulates one configuration over one workload.
func (o Options) runOne(cfg config.Config, st suiteTrace, collectOcc bool) stats.Results {
	cpu, err := core.New(cfg, st.tr)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s: %v", st.name, err))
	}
	res := cpu.Run(core.RunOptions{MaxInsts: o.Insts, CollectOccupancy: collectOcc})
	if o.Progress != nil {
		o.Progress(fmt.Sprintf("  %-10s %-34s IPC=%.3f", st.name, cfg.Summary(), res.IPC()))
	}
	return res
}

// averageIPC runs a configuration across the whole suite and returns the
// arithmetic-mean IPC together with the per-benchmark results.
func (o Options) averageIPC(cfg config.Config, suite []suiteTrace) (float64, []stats.Results) {
	results := make([]stats.Results, len(suite))
	sum := 0.0
	for i, st := range suite {
		results[i] = o.runOne(cfg, st, false)
		sum += results[i].IPC()
	}
	return sum / float64(len(suite)), results
}

// Table1 returns the baseline architectural parameters, rendered like
// the paper's Table 1.
func Table1() string {
	return config.Default().String()
}

// renderTable formats a simple aligned table.
func renderTable(title string, header []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(title)
	b.WriteString("\n")
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
