package core

import (
	"repro/internal/isa"
	"repro/internal/queue"
	"repro/internal/rename"
)

// dispatchStage models the front end: SLIQ re-insertion, instruction
// fetch (correct path or wrong path), renaming, checkpoint taking,
// pseudo-ROB insertion/extraction and dispatch into the issue queues.
func (c *CPU) dispatchStage() {
	// Records released last cycle (and earlier this cycle by commit/
	// writeback) become reusable now; dispatch is the only acquirer.
	c.pool.recycleDead()
	if c.sliq != nil {
		c.drainSLIQ()
	}
	if c.now < c.fetchResumeAt {
		c.stalls.FetchGate++
		return
	}

	c.resourceStalled = false
	// A cycle that admitted nothing hands the policy its
	// deadlock-avoidance window (pressure extraction, emergency
	// checkpoints — see checkpointPolicy.DispatchStalled). An explicit
	// call at each exit keeps the per-cycle loop defer-free.
	if c.dispatchInsts() == 0 {
		c.policy.DispatchStalled()
	}
}

// dispatchInsts fetches and dispatches up to FetchWidth instructions,
// returning how many were admitted.
func (c *CPU) dispatchInsts() int {
	dispatched := 0
	for n := 0; n < c.cfg.FetchWidth; n++ {
		var inst isa.Inst
		var pos int64
		wrongPath := c.divergedAt != nil
		if wrongPath {
			inst = c.nextWrongPathInst()
			pos = -1
		} else {
			if c.fetchPos >= c.tr.Len() {
				return dispatched
			}
			inst = c.tr.At(c.fetchPos)
			pos = c.fetchPos
			if n == 0 {
				// Model the instruction fetch: an IL1 miss stalls
				// the front end until the line arrives.
				ready := c.hier.FetchLatency(c.now, inst.PC)
				if ready > c.now+int64(c.cfg.IL1.LatencyCycles) {
					c.fetchResumeAt = ready
					return dispatched
				}
			}
		}
		if !c.tryDispatch(inst, pos, wrongPath) {
			return dispatched
		}
		dispatched++
		if !wrongPath {
			// On a mispredicted branch, divergedAt is now set and the
			// next loop iteration fetches wrong-path instructions.
			c.fetchPos++
		}
	}
	return dispatched
}

// tryDispatch checks every structural resource the instruction needs
// and, if all are available, renames and dispatches it. It returns
// false when the front end must stall this cycle.
func (c *CPU) tryDispatch(inst isa.Inst, pos int64, wrongPath bool) bool {
	// The commit policy goes first: checkpoint-family policies take any
	// required checkpoint before the instruction, so the window closes
	// even if the instruction then stalls on another resource
	// (otherwise an open window could never commit and the stalled
	// resource would never recycle); the ROB baseline gates on buffer
	// space here.
	if !c.policy.Admit(inst, pos) {
		return false
	}
	if inst.Op.HasDest() {
		if c.vt != nil {
			if !c.vt.TryRename() {
				c.renameStallCycles++
				c.stalls.VTag++
				c.resourceStalled = true
				return false
			}
		}
		if c.rt.FreeCount() == 0 {
			if c.vt != nil {
				c.vt.UnRename()
			}
			c.renameStallCycles++
			c.stalls.Rename++
			c.resourceStalled = true
			return false
		}
	}
	// Stores live in the LSQ, not the general-purpose queues (paper
	// section 2, "Committing Store Instructions").
	var iq *queue.IQ[*DynInst]
	if inst.Op != isa.Store {
		iq = c.iqFor(inst.Op)
		if iq.Full() {
			if inst.Op.HasDest() && c.vt != nil {
				c.vt.UnRename()
			}
			c.stalls.IQ++
			return false
		}
	}
	if inst.Op.IsMem() && c.lq.Full() {
		if inst.Op.HasDest() && c.vt != nil {
			c.vt.UnRename()
		}
		c.stalls.LSQ++
		c.resourceStalled = true
		return false
	}
	// Every shared resource is available: let the policy free its own
	// space (pseudo-ROB extraction) before the record is built.
	c.policy.MakeRoom()

	// All resources available: build and dispatch.
	d := c.pool.acquire()
	d.Seq = c.nextSeq
	d.Pos = pos
	d.Inst = inst
	d.WrongPath = wrongPath
	c.nextSeq++
	c.fetched++

	// Rename sources before the destination (an instruction may read
	// the register it overwrites).
	if inst.Src1 != isa.RegNone {
		d.SrcPhys[0] = c.rt.Lookup(inst.Src1)
		d.NumSrcs = 1
	}
	if inst.Src2 != isa.RegNone {
		d.SrcPhys[d.NumSrcs] = c.rt.Lookup(inst.Src2)
		d.NumSrcs++
	}
	if inst.Op.HasDest() {
		var ok bool
		d.DestPhys, d.PrevPhys, ok = c.policy.AllocateDest(inst.Dest)
		if !ok {
			panic("core: rename failed after FreeCount check")
		}
		c.regReady[d.DestPhys] = false
		c.longTaint[d.DestPhys] = false
		if c.vt != nil && d.PrevPhys != rename.PhysNone {
			d.prevProd = c.producer[d.PrevPhys]
		}
		c.producer[d.DestPhys] = d
	}

	// Source readiness, consumer registration and the blocked-long
	// taint used for Figure 7's live-instruction split.
	pending := 0
	long := false
	for i := 0; i < d.NumSrcs; i++ {
		p := d.SrcPhys[i]
		if !c.regReady[p] {
			pending++
			c.consumers[p] = append(c.consumers[p], consumerRef{d: d, seq: d.Seq})
			if c.longTaint[p] {
				long = true
			}
		}
	}
	if long && d.DestPhys != rename.PhysNone {
		c.longTaint[d.DestPhys] = true
	}
	if inst.Op == isa.FPAlu && pending > 0 {
		d.LiveLong = long
		d.countedLive = true
		if long {
			c.liveFPLong++
		} else {
			c.liveFPShort++
		}
	}

	if inst.Op == isa.Store {
		d.pendingSrcs = pending
		if pending == 0 {
			// Address and data already available: the store executes
			// (writes its LSQ entry) immediately.
			d.Issued = true
			d.DoneCycle = c.now + 1
			c.completions.push(d)
		}
	} else {
		if !iq.Insert(&d.iqe, d.Seq, pending) {
			panic("core: issue queue full after Full() check")
		}
	}
	if inst.Op.IsMem() {
		d.lsqe = c.lq.Insert(d.Seq, inst.Op, inst.Addr, d)
		if d.lsqe == nil {
			panic("core: LSQ full after Full() check")
		}
	}

	// Branch prediction happens at fetch; history and counters are
	// trained immediately (see DESIGN.md for the modelling argument).
	// A branch whose misprediction already caused a checkpoint rollback
	// is known-resolved on its replay: the recovery state carries its
	// direction, which also guarantees forward progress when gshare
	// aliasing would otherwise ping-pong two opposite-biased branches
	// inside one window (a livelock the stress suite exposed).
	if inst.Op == isa.Branch && !wrongPath {
		mispredict := false
		redirect := inst.PC + 4
		if !c.cfg.PerfectBranchPrediction && !c.branchResolved(pos, inst.PC) {
			if c.btb != nil {
				// Program-backed trace: the direction predictor alone
				// cannot redirect fetch — a taken prediction is only
				// effective when the BTB supplies a target, and a hit
				// with a stale target is a misfetch even when the
				// direction was right.
				dirPred := c.pred.Predict(inst.PC)
				target, hit := c.btb.Lookup(inst.PC)
				predTaken := dirPred && hit
				switch {
				case predTaken != inst.Taken:
					mispredict = true
					if predTaken {
						redirect = target
					}
				case inst.Taken && target != inst.Target:
					c.btb.CountBadTarget()
					mispredict = true
					redirect = target
				}
			} else {
				mispredict = c.pred.Predict(inst.PC) != inst.Taken
			}
		}
		c.pred.Update(inst.PC, inst.Taken)
		if c.btb != nil && inst.Taken {
			// Train the BTB with the resolved target; any resolution
			// knowledge an eviction displaces falls back to the
			// positional table (see markBranchKnown).
			if displaced, ok := c.btb.Install(inst.PC, inst.Target); ok {
				c.knownAt(displaced)
			}
		}
		if mispredict {
			d.Mispredicted = true
			c.divergedAt = d
			if c.code != nil {
				c.setWrongPathStart(redirect)
			}
		}
	}

	// Hand the finished record to the retirement structure (checkpoint
	// association and pseudo-ROB/ROB/window entry, plus the exception
	// protocol's first pass where the policy supports it). This runs
	// after branch resolution so policies see d.Mispredicted — the
	// adaptive policy trains its confidence estimator here.
	c.policy.Dispatched(d)

	c.dispatched++
	c.inflight++
	return true
}

// setWrongPathStart records where a mispredicted fetch diverged to in
// the program image: the static index of the (wrong) redirect target
// and the wpCounter value at divergence. nextWrongPathInst is then a
// pure function of wpCounter, which keeps the clock skip's footprint
// replication exact. A redirect outside the text (a stale BTB target,
// or falling through past the last instruction) wraps to the image
// start — wrong-path fetch only needs a deterministic stream, not a
// meaningful one.
func (c *CPU) setWrongPathStart(pc uint64) {
	idx, ok := c.code.IndexOf(pc)
	if !ok {
		idx = 0
	}
	c.wpStart = idx
	c.wpBase = c.wpCounter
}

// nextWrongPathInst fetches an instruction for the wrong path after a
// mispredicted branch. Program-backed traces fetch the real static
// instructions at the mispredicted target (side-effecting classes are
// neutralised to Nops in the image; wrong-path loads get a synthetic
// address near recent traffic, as the core cannot know what a wrong
// path would really compute). Synthetic traces synthesise a
// deterministic mix of ALU, FP and load operations. Either way the
// stream consumes rename, queue, functional-unit and memory bandwidth
// until the branch resolves (see DESIGN.md §3).
func (c *CPU) nextWrongPathInst() isa.Inst {
	k := c.wpCounter
	c.wpCounter++
	if c.code != nil {
		idx := (c.wpStart + int((k-c.wpBase)%uint64(c.code.Len()))) % c.code.Len()
		in := c.code.At(idx)
		if in.Op == isa.Load {
			in.Addr = c.lastLoadAddr + 64*(1+k%32)
		}
		return in
	}
	// Wrong-path instructions live in their own PC region.
	pc := uint64(0xF0000000) + (k%64)*4
	switch k % 8 {
	case 0:
		// A wrong-path load polluting lines near recent traffic.
		addr := c.lastLoadAddr + 64*(1+k%32)
		return isa.Inst{Op: isa.Load, Dest: isa.IntReg(int(k % 4)), Src1: isa.IntReg(4), Addr: addr, PC: pc}
	case 1, 2, 3:
		return isa.Inst{Op: isa.FPAlu, Dest: isa.FPReg(int(k % 8)), Src1: isa.FPReg(int((k + 1) % 8)), Src2: isa.RegNone, PC: pc}
	case 4:
		return isa.Inst{Op: isa.IntMul, Dest: isa.IntReg(int(k%4) + 4), Src1: isa.IntReg(int(k % 4)), Src2: isa.RegNone, PC: pc}
	default:
		return isa.Inst{Op: isa.IntAlu, Dest: isa.IntReg(int(k % 8)), Src1: isa.IntReg(int((k + 3) % 8)), Src2: isa.RegNone, PC: pc}
	}
}

// drainSLIQ re-inserts woken slow-lane instructions into their issue
// queues, oldest first, bounded by the wake width. When the target queue
// is full, a fully-ready instruction may instead issue directly from the
// pump (bounded by the same width and functional-unit availability) —
// the bypass that keeps the two-level queue hierarchy deadlock-free when
// the small queues are saturated with dependants of slow-lane residents.
func (c *CPU) drainSLIQ() {
	c.sliq.Drain(c.now, c.sliqAccept)
}

// acceptFromSLIQ is the SLIQ drain callback (bound once in New).
func (c *CPU) acceptFromSLIQ(seq uint64, d *DynInst) bool {
	if d.Squashed {
		return true // consume and continue
	}
	// Re-compute source availability, as the paper requires.
	pending := 0
	for i := 0; i < d.NumSrcs; i++ {
		if !c.regReady[d.SrcPhys[i]] {
			pending++
		}
	}
	iq := c.iqFor(d.Inst.Op)
	if !iq.Full() {
		d.inSLIQ = false
		if !iq.Insert(&d.iqe, seq, pending) {
			panic("core: issue queue full after Full() check")
		}
		return true
	}
	if pending > 0 {
		return false // must wait in order for queue space
	}
	// Bypass: issue directly from the wake pump.
	if d.Inst.Op == isa.Load && c.portsUsed >= c.cfg.MemoryPorts {
		return false
	}
	aluDone, ok := c.fus.TryIssue(d.Inst.Op, c.now)
	if !ok {
		return false
	}
	d.inSLIQ = false
	c.startExecution(d, aluDone)
	return true
}
