package branch

import "fmt"

// BTB is a set-associative branch-target buffer keyed by fetch PC. It
// serves two roles for program-backed workloads:
//
//   - Target prediction: a direction predictor alone cannot redirect
//     fetch; a taken prediction needs a target, and a BTB miss or a
//     stale target is a misfetch even when the direction was right.
//
//   - Resolution tracking: after a rollback, the entry of the branch
//     that caused it records which dynamic instance (trace position)
//     was resolved, so the replayed branch predicts correctly instead
//     of ping-ponging — this replaces the positional knownBranch
//     shortcut synthetic traces use (their branches have no targets,
//     only positions). Displacement of a resolved entry — by same-PC
//     re-resolution or set eviction — is reported to the caller, which
//     preserves the displaced position in its positional fallback:
//     resolution knowledge is monotone, which is what guarantees
//     forward progress against mispredict livelock.
//
// The BTB is deterministic: lookup order, LRU updates, and eviction
// choices are pure functions of the access sequence.
type BTB struct {
	sets    int
	ways    int
	entries []btbEntry
	clock   uint64
	stats   BTBStats
}

type btbEntry struct {
	valid       bool
	pc          uint64
	target      uint64
	resolvedPos int64
	lru         uint64
}

// BTBStats counts target-buffer performance.
type BTBStats struct {
	// Lookups and Hits count fetch-time target queries.
	Lookups uint64
	Hits    uint64
	// BadTargets counts taken branches whose hit supplied a stale
	// target: a misfetch despite a correct direction prediction. The
	// core classifies these (the BTB cannot know the true target).
	BadTargets uint64
}

// HitRate returns Hits/Lookups, or 0 if unused.
func (s BTBStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Lookups)
}

// NewBTB builds a BTB with the given geometry; sets must be a power of
// two.
func NewBTB(sets, ways int) *BTB {
	if sets < 1 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("branch: btb sets %d not a power of two", sets))
	}
	if ways < 1 {
		panic(fmt.Sprintf("branch: btb ways %d < 1", ways))
	}
	b := &BTB{sets: sets, ways: ways, entries: make([]btbEntry, sets*ways)}
	for i := range b.entries {
		b.entries[i].resolvedPos = -1
	}
	return b
}

func (b *BTB) setBase(pc uint64) int {
	// Drop the low two bits: instructions are 4-byte aligned.
	return int((pc>>2)&uint64(b.sets-1)) * b.ways
}

func (b *BTB) find(pc uint64) *btbEntry {
	base := b.setBase(pc)
	for i := 0; i < b.ways; i++ {
		e := &b.entries[base+i]
		if e.valid && e.pc == pc {
			return e
		}
	}
	return nil
}

// Lookup queries the predicted target for the branch at pc, refreshing
// its recency on a hit.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	b.stats.Lookups++
	if e := b.find(pc); e != nil {
		b.stats.Hits++
		b.clock++
		e.lru = b.clock
		return e.target, true
	}
	return 0, false
}

// CountBadTarget records one taken branch whose BTB hit supplied the
// wrong target.
func (b *BTB) CountBadTarget() { b.stats.BadTargets++ }

// install inserts or updates the entry for pc. pos >= 0 additionally
// marks the entry resolved at that trace position. The returned
// position, when reported, is resolution knowledge this call displaced
// — a different position re-resolved at the same pc, or an evicted
// resolved entry — which the caller must preserve elsewhere.
func (b *BTB) install(pc, target uint64, pos int64) (displaced int64, hasDisplaced bool) {
	b.clock++
	if e := b.find(pc); e != nil {
		e.target = target
		e.lru = b.clock
		if pos >= 0 {
			if e.resolvedPos >= 0 && e.resolvedPos != pos {
				displaced, hasDisplaced = e.resolvedPos, true
			}
			e.resolvedPos = pos
		}
		return displaced, hasDisplaced
	}
	base := b.setBase(pc)
	var victim *btbEntry
	for i := 0; i < b.ways; i++ {
		e := &b.entries[base+i]
		if !e.valid {
			victim = e
			break
		}
		if victim == nil || e.lru < victim.lru {
			victim = e
		}
	}
	if victim.valid && victim.resolvedPos >= 0 {
		displaced, hasDisplaced = victim.resolvedPos, true
	}
	*victim = btbEntry{valid: true, pc: pc, target: target, resolvedPos: pos, lru: b.clock}
	return displaced, hasDisplaced
}

// Install records the resolved target of a taken branch at pc.
func (b *BTB) Install(pc, target uint64) (displaced int64, hasDisplaced bool) {
	return b.install(pc, target, -1)
}

// MarkResolved records that the dynamic branch instance at trace
// position pos (fetch PC pc, actual target target) has been resolved by
// a rollback, so its replay must not mispredict again.
func (b *BTB) MarkResolved(pc uint64, pos int64, target uint64) (displaced int64, hasDisplaced bool) {
	return b.install(pc, target, pos)
}

// ResolvedAt returns the trace position the entry at pc was resolved
// for, or -1.
func (b *BTB) ResolvedAt(pc uint64) int64 {
	if e := b.find(pc); e != nil {
		return e.resolvedPos
	}
	return -1
}

// Stats returns the accumulated counters.
func (b *BTB) Stats() BTBStats { return b.stats }

// ClearResolutions forgets every per-instance resolution mark while
// keeping targets, validity and recency. Sampled runs call it between
// detailed windows: resolution positions index into one window's trace
// and would be dangling (or worse, falsely valid) in the next, whereas
// targets are genuine long-lived state the fast-forward warming is
// meant to preserve.
func (b *BTB) ClearResolutions() {
	for i := range b.entries {
		b.entries[i].resolvedPos = -1
	}
}
