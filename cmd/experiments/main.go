// Command experiments regenerates the paper's evaluation: every figure
// of "Out-of-Order Commit Processors" (HPCA 2004), computed on the
// synthetic SPEC2000fp-stand-in suite.
//
// Usage:
//
//	experiments [-figure all|table1|1|7|9|10|11|12|13|14|figure9-programs|figure9-programs-sampled|commit-policies|commit-policies-programs|ablations]
//	            [-commit policy,...] [-insts N] [-seed S] [-parallel N]
//	            [-json FILE] [-server URL] [-no-skip] [-cpuprofile FILE]
//	            [-memprofile FILE] [-list] [-v]
//
// -list prints every valid -figure name with a one-line description and
// exits. -commit restricts the commit-policies ablation to a subset of
// the registered policies (rob, checkpoint, adaptive, oracle).
//
// Figures 9 and 11 share their simulation runs, as in the paper. Every
// figure executes through the internal/sim worker pool: -parallel N
// bounds the pool (default GOMAXPROCS), and the rendered tables are
// identical for every worker count because results are ordered by spec,
// not by completion. -json FILE additionally dumps every run's raw
// results for machine consumption.
//
// -server URL routes every simulation point to an ooosimd daemon
// instead of the in-process pool: previously computed points return
// from the daemon's content-addressed cache without simulation, so a
// warm rerun of a figure costs trace generation plus network only.
//
// -no-skip disables the simulator's event-driven clock skip, forcing
// cycle-by-cycle execution. Results are bit-identical either way (the
// skip is a pure simulator-speed optimisation); the flag exists for A/B
// debugging and timing comparisons against the event-driven engine. It
// is local-only: points routed to -server always run with skipping on.
//
// -cpuprofile and -memprofile write pprof profiles covering the
// requested figures, so profile-guided optimisation passes can target
// real sweeps instead of ad-hoc test rigs (see README "Performance").
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/config"
	"repro/internal/experiments"
	"repro/internal/service"
)

// sections is the single source of truth for valid -figure names, in
// presentation order; -list prints it, validation checks against it.
var sections = []struct{ name, desc string }{
	{"all", "every section below"},
	{"table1", "Table 1: architectural parameters"},
	{"1", "Figure 1: IPC vs in-flight instructions and memory latency (baseline)"},
	{"7", "Figure 7: live instructions inside the window (occupancy percentiles)"},
	{"9", "Figure 9: main performance results (COoO vs baselines)"},
	{"10", "Figure 10: SLIQ re-insertion delay sensitivity"},
	{"11", "Figure 11: average in-flight instructions (same runs as figure 9)"},
	{"12", "Figure 12: pseudo-ROB retirement breakdown"},
	{"13", "Figure 13: checkpoint-count sensitivity"},
	{"14", "Figure 14: virtual registers combined with checkpointed commit"},
	{"figure9-programs", "figure-9 grid over the real-program (RV32) suite"},
	{"figure9-programs-sampled", "figure-9 program grid under SMARTS sampling (defaults to a 4M-inst streamed budget; not part of 'all')"},
	{"commit-policies", "ablation: rob vs checkpoint vs adaptive vs oracle on the figure-9 workloads"},
	{"commit-policies-programs", "ablation: commit policies over the real-program suite"},
	{"ablations", "every ablation sweep (includes commit-policies)"},
}

func sectionNames() string {
	names := make([]string, len(sections))
	for i, s := range sections {
		names[i] = s.name
	}
	return strings.Join(names, ", ")
}

// jsonRecord is one run in the -json dump, labelled with the figure
// whose sweep produced it.
type jsonRecord struct {
	Figure    string `json:"figure"`
	Benchmark string `json:"benchmark"`
	Config    string `json:"config"`
	Results   any    `json:"results"`
}

func main() {
	figure := flag.String("figure", "all", "which figure to regenerate (see -list)")
	commit := flag.String("commit", "", "comma-separated commit policies for the commit-policies ablation (default: all registered)")
	insts := flag.Uint64("insts", experiments.DefaultInsts, "committed instructions per configuration point")
	seed := flag.Uint64("seed", 42, "workload seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "simulation worker-pool size")
	server := flag.String("server", "", "run every point against an ooosimd daemon at URL")
	jsonOut := flag.String("json", "", "write every run's raw results as JSON to FILE")
	noSkip := flag.Bool("no-skip", false, "disable the event-driven clock skip (bit-identical results, slower)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the requested figures to FILE")
	memProfile := flag.String("memprofile", "", "write an allocation profile (all allocations since start) to FILE")
	list := flag.Bool("list", false, "print every valid -figure name with a description and exit")
	verbose := flag.Bool("v", false, "print per-run progress")
	flag.Parse()

	if *list {
		for _, s := range sections {
			fmt.Printf("%-26s %s\n", s.name, s.desc)
		}
		return
	}

	// Resolve -commit up front: a typo must fail fast, not after an
	// hours-long sweep reaches the ablation. (Whether the flag applies
	// to anything requested is checked after -figure is parsed below.)
	var commitModes []config.CommitMode
	for _, name := range strings.Split(*commit, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		mode, err := config.ParseCommitMode(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "-commit: %v\n", err)
			os.Exit(2)
		}
		commitModes = append(commitModes, mode)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// stopProfiles flushes the pprof outputs; every exit path (success,
	// figure failure, -json failure) must call it — os.Exit skips defers.
	stopProfiles := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		stopProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if *memProfile != "" {
		inner := stopProfiles
		stopProfiles = func() {
			inner()
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush accurate allocation stats
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
			}
		}
	}
	defer stopProfiles()

	opt := experiments.Options{Insts: *insts, Seed: *seed, Workers: *parallel, DisableSkip: *noSkip}.WithTraceCache()
	if *server != "" {
		opt.Runner = (&service.Client{BaseURL: *server}).SweepRunner()
	}
	if *verbose {
		opt.Progress = func(done, total int, line string) {
			fmt.Fprintf(os.Stderr, "[%*d/%d]%s\n", len(fmt.Sprint(total)), done, total, line)
		}
	}

	records := []jsonRecord{}
	currentFigure := ""
	if *jsonOut != "" {
		// Record is invoked serially by the engine; currentFigure is
		// only written between sweeps.
		opt.Record = func(r experiments.RunRecord) {
			records = append(records, jsonRecord{
				Figure:    currentFigure,
				Benchmark: r.Benchmark,
				Config:    r.Config,
				Results:   r.Results,
			})
		}
	}

	writeJSON := func() error {
		if *jsonOut == "" {
			return nil
		}
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d run records to %s\n", len(records), *jsonOut)
		return nil
	}

	fail := func(name string, err error) {
		// Flush whatever completed before the failure (or interrupt):
		// partial sweep output is still hours of simulation, and a
		// partial profile still points at the hot paths.
		if jerr := writeJSON(); jerr != nil {
			fmt.Fprintf(os.Stderr, "experiments: -json: %v\n", jerr)
		}
		stopProfiles()
		fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
		os.Exit(1)
	}

	// Validate every requested figure name before running anything: a
	// typo in a comma-separated list must not silently vanish next to
	// valid names ("-figure 9,typo" used to run figure 9 and say
	// nothing about "typo").
	known := map[string]bool{}
	for _, s := range sections {
		known[s.name] = true
	}
	want := map[string]bool{}
	bad := []string{}
	for _, f := range strings.Split(*figure, ",") {
		name := strings.TrimSpace(f)
		if name == "" {
			continue // tolerate trailing/doubled commas
		}
		if !known[name] {
			bad = append(bad, fmt.Sprintf("%q", name))
			continue
		}
		want[name] = true
	}
	if len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "unknown figure %s (valid: %s; try -list)\n",
			strings.Join(bad, ", "), sectionNames())
		flag.Usage()
		os.Exit(2)
	}
	if len(want) == 0 {
		fmt.Fprintln(os.Stderr, "no figure requested")
		flag.Usage()
		os.Exit(2)
	}
	all := want["all"]

	// -commit only shapes the commit-policies sweep (standalone or
	// inside the ablation run); setting it for any other selection
	// would be silently ignored — reject it instead.
	if len(commitModes) > 0 && !all && !want["commit-policies"] && !want["ablations"] {
		fmt.Fprintln(os.Stderr, "-commit only applies to the commit-policies ablation; add -figure commit-policies (or ablations)")
		os.Exit(2)
	}

	// runSection labels, times and error-wraps one section; include
	// decides whether it runs at all.
	runSection := func(name string, include bool, fn func() error) {
		if !include {
			return
		}
		currentFigure = name
		start := time.Now()
		if err := fn(); err != nil {
			fail("figure "+name, err)
		}
		fmt.Printf("(%s: %.1fs, %d workers)\n\n", name, time.Since(start).Seconds(), *parallel)
	}
	section := func(name string, fn func() error) {
		runSection(name, all || want[name], fn)
	}

	section("table1", func() error {
		fmt.Println("Table 1: architectural parameters")
		fmt.Println(experiments.Table1())
		return nil
	})
	section("1", func() error {
		r, err := experiments.Figure1(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	section("7", func() error {
		r, err := experiments.Figure7(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	if all || want["9"] || want["11"] {
		// The two figures share one sweep; label its records by what
		// was actually requested ("-figure 11 -json" must not file
		// results under a figure the user never asked for).
		switch {
		case all || (want["9"] && want["11"]):
			currentFigure = "9+11"
		case want["11"]:
			currentFigure = "11"
		default:
			currentFigure = "9"
		}
		start := time.Now()
		r, err := experiments.Figure9(ctx, opt)
		if err != nil {
			fail("figure "+currentFigure, err)
		}
		if all || want["9"] {
			fmt.Println(r)
		}
		if all || want["11"] {
			fmt.Println(r.Figure11String())
		}
		fmt.Printf("(%s: %.1fs, %d workers)\n\n", currentFigure, time.Since(start).Seconds(), *parallel)
	}
	section("10", func() error {
		r, err := experiments.Figure10(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	section("12", func() error {
		r, err := experiments.Figure12(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	section("13", func() error {
		r, err := experiments.Figure13(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	section("14", func() error {
		r, err := experiments.Figure14(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	section("figure9-programs", func() error {
		r, err := experiments.Figure9Programs(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		fmt.Println(r.Figure11String())
		return nil
	})
	// Explicit-request only: the sampled figure defaults to a 4M-inst
	// streamed budget per point (experiments.DefaultSampledInsts), an
	// order of magnitude above the other sections' budgets — folding it
	// into "all" would dominate the whole run's wall time.
	runSection("figure9-programs-sampled", want["figure9-programs-sampled"], func() error {
		r, err := experiments.Figure9ProgramsSampled(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		fmt.Println(r.Figure11String())
		return nil
	})
	// Standalone only when the ablation run below will not already
	// cover the sweep — "-figure commit-policies,ablations" must not
	// simulate it twice (or record it twice in -json).
	runSection("commit-policies", want["commit-policies"] && !all && !want["ablations"], func() error {
		r, err := experiments.AblationCommitPolicies(ctx, opt, commitModes...)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	section("commit-policies-programs", func() error {
		r, err := experiments.AblationCommitPoliciesPrograms(ctx, opt)
		if err != nil {
			return err
		}
		fmt.Println(r)
		return nil
	})
	// The usage string has always advertised ablations as part of
	// "all"; honour it (it used to be silently skipped).
	section("ablations", func() error {
		s, err := experiments.Ablations(ctx, opt, commitModes...)
		if err != nil {
			return err
		}
		fmt.Println(s)
		return nil
	})

	if err := writeJSON(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: -json: %v\n", err)
		stopProfiles()
		os.Exit(1)
	}
}
