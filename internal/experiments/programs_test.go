package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/stats"
)

// programQuickOpts keeps the program sweeps fast: InputFor sizes each
// program's input so its dynamic stream lands near this budget.
func programQuickOpts() Options {
	return Options{Insts: 20_000, Seed: 42}
}

func TestProgramSuiteBuilds(t *testing.T) {
	names := ProgramSuiteNames()
	if len(names) < 4 {
		t.Fatalf("program suite too small: %v", names)
	}
	opt := programQuickOpts().withDefaults()
	suite, err := opt.programSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) != len(names) {
		t.Fatalf("suite has %d members, want %d", len(suite), len(names))
	}
	for i, st := range suite {
		if st.name != names[i] {
			t.Errorf("member %d is %q, want %q", i, st.name, names[i])
		}
		if st.tr.Len() == 0 {
			t.Errorf("%s: empty trace", st.name)
		}
		if st.tr.Code() == nil {
			t.Errorf("%s: program trace exposes no static code", st.name)
		}
		if err := st.tr.Validate(); err != nil {
			t.Errorf("%s: %v", st.name, err)
		}
	}

	// The trace cache must keep the program and synthetic suites
	// disjoint while sharing each across calls.
	cached := programQuickOpts().WithTraceCache()
	a, err := cached.programSuite()
	if err != nil {
		t.Fatal(err)
	}
	b, err := cached.programSuite()
	if err != nil {
		t.Fatal(err)
	}
	if a[0].tr != b[0].tr {
		t.Error("program suite regenerated instead of cached")
	}
	syn, err := cached.suite()
	if err != nil {
		t.Fatal(err)
	}
	if syn[0].tr == a[0].tr {
		t.Error("synthetic and program suites alias in the cache")
	}

	if _, err := ProgramRecipe("quicksort", 1000, 42); err == nil {
		t.Error("ProgramRecipe accepted an unknown program")
	}
}

// TestFigure9ProgramsShape runs the program figure-9 grid cold through
// sim.Sweep and checks the same qualitative shape as the synthetic
// variant plus the program-only observability: every recorded result
// carries nonzero BTB and LSQ counters.
func TestFigure9ProgramsShape(t *testing.T) {
	opt := programQuickOpts()
	var records []RunRecord
	opt.Record = func(rec RunRecord) { records = append(records, rec) }
	r, err := Figure9Programs(ctx(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Suite != "program" {
		t.Errorf("Suite = %q", r.Suite)
	}
	if r.IPC[2048][128] <= 0 || r.Baseline128IPC <= 0 {
		t.Fatalf("degenerate IPCs: %+v", r.IPC)
	}
	// The program kernels are cache-resident integer codes, not the
	// latency-wall FP streams the paper's headline depends on, so the
	// kilo-instruction window buys little here and checkpointed commit
	// may trail the ROB baseline slightly (rollback replay has a cost
	// and there are no 1000-cycle misses to hide). What the grid must
	// show: no configuration collapses, and the two baselines agree
	// (window size is irrelevant without memory stalls — the very
	// contrast that makes the synthetic suite's +200% meaningful).
	if r.IPC[2048][128] < 0.6*r.Baseline128IPC {
		t.Errorf("COoO 128/2048 (%.3f) collapsed against baseline-128 (%.3f)",
			r.IPC[2048][128], r.Baseline128IPC)
	}
	if r.Baseline4096IPC < r.Baseline128IPC*0.98 {
		t.Errorf("bigger ROB regressed on cache-resident programs: %.3f vs %.3f",
			r.Baseline4096IPC, r.Baseline128IPC)
	}
	for _, s := range []string{r.String(), r.Figure11String()} {
		if !strings.Contains(s, "program suite") {
			t.Errorf("program rendering must be distinguishable from the synthetic figure:\n%s", s)
		}
	}

	if len(records) == 0 {
		t.Fatal("Record hook never fired")
	}
	for _, rec := range records {
		if rec.Results.BTB == nil || rec.Results.BTB.Lookups == 0 {
			t.Fatalf("%s/%s: program run recorded no BTB activity", rec.Benchmark, rec.Config)
		}
		if rec.Results.LSQ == nil || rec.Results.LSQ.Loads == 0 {
			t.Fatalf("%s/%s: program run recorded no LSQ activity", rec.Benchmark, rec.Config)
		}
	}
}

// TestAblationCommitPoliciesPrograms: on cache-resident integer
// programs the window-size story flattens (see TestFigure9ProgramsShape),
// but the oracle must still bound every policy and no policy may
// collapse.
func TestAblationCommitPoliciesPrograms(t *testing.T) {
	r, err := AblationCommitPoliciesPrograms(ctx(), programQuickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Labels) != 5 {
		t.Fatalf("variants = %d", len(r.Labels))
	}
	if !strings.Contains(r.Title, "program suite") {
		t.Errorf("title %q must name the suite", r.Title)
	}
	for _, l := range r.Labels {
		if r.IPC[l] <= 0 {
			t.Errorf("%s: IPC %.3f", l, r.IPC[l])
		}
		if r.IPC[l] > r.IPC["oracle-unbounded"]*1.02 {
			t.Errorf("%s (%.3f) above the oracle limit (%.3f)", l, r.IPC[l], r.IPC["oracle-unbounded"])
		}
		if r.IPC[l] < 0.6*r.IPC["oracle-unbounded"] {
			t.Errorf("%s (%.3f) collapsed against the oracle (%.3f)", l, r.IPC[l], r.IPC["oracle-unbounded"])
		}
	}
}

// TestProgramRemoteSuiteSkipsMaterialisation mirrors the synthetic
// remote contract: with a Runner installed the program suite ships
// recipe-only traces.
func TestProgramRemoteSuiteSkipsMaterialisation(t *testing.T) {
	opt := programQuickOpts()
	opt.Runner = func(_ context.Context, _ []sim.RunSpec, _ sim.Options) ([]stats.Results, error) {
		return nil, nil
	}
	opt = opt.withDefaults()
	suite, err := opt.programSuite()
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range suite {
		if st.tr.Len() != 0 {
			t.Errorf("%s: remote program suite materialised %d instructions", st.name, st.tr.Len())
		}
		r, ok := st.tr.Recipe()
		if !ok {
			t.Errorf("%s: no recipe", st.name)
			continue
		}
		if r.Kernel != "program" || r.Program != st.name {
			t.Errorf("%s: recipe %+v", st.name, r)
		}
	}
}
