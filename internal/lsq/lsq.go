// Package lsq models the load/store queue: program-ordered tracking of
// in-flight memory operations, store-to-load forwarding, and draining of
// committed stores to the memory hierarchy.
//
// Following the paper, the LSQ is treated as a pseudo-perfect resource
// (4096 entries in Table 1) except that its occupancy rules matter: in
// checkpoint mode, entries are held until the owning checkpoint commits,
// which is why the paper bounds stores per checkpoint (64) to avoid
// deadlock.
package lsq

import (
	"fmt"

	"repro/internal/isa"
)

// Kind distinguishes queue entries.
type Kind uint8

// Entry kinds.
const (
	KindLoad Kind = iota
	KindStore
)

// Entry is one memory operation in the queue.
type Entry struct {
	Seq  uint64
	Kind Kind
	Addr uint64
	// Executed marks address (and data, for stores) availability.
	Executed bool
	// Payload is the pipeline's record for this instruction.
	Payload any
	// waiters are loads blocked on this store's data (forwarding).
	waiters []func(storeSeq uint64)
}

// Stats counts queue activity.
type Stats struct {
	Loads         uint64
	Stores        uint64
	Forwards      uint64 // loads satisfied by an older store
	ForwardStalls uint64 // loads that had to wait for store data
	StoresDrained uint64
	FullStalls    uint64
}

// LSQ is the load/store queue. Entries are kept in program (sequence)
// order.
type LSQ struct {
	capacity int
	entries  []*Entry // seq-ordered
	stats    Stats
}

// New builds a load/store queue with the given capacity.
func New(capacity int) *LSQ {
	if capacity < 1 {
		panic(fmt.Sprintf("lsq: capacity %d < 1", capacity))
	}
	return &LSQ{capacity: capacity}
}

// Cap returns the capacity.
func (q *LSQ) Cap() int { return q.capacity }

// Len returns the number of resident entries.
func (q *LSQ) Len() int { return len(q.entries) }

// Full reports whether the queue is at capacity.
func (q *LSQ) Full() bool { return len(q.entries) >= q.capacity }

// Insert allocates an entry at dispatch. Entries must be inserted in
// increasing sequence order. Returns nil when the queue is full.
func (q *LSQ) Insert(seq uint64, op isa.Op, addr uint64, payload any) *Entry {
	if q.Full() {
		q.stats.FullStalls++
		return nil
	}
	if n := len(q.entries); n > 0 && q.entries[n-1].Seq >= seq {
		panic(fmt.Sprintf("lsq: out-of-order insert seq %d after %d", seq, q.entries[n-1].Seq))
	}
	var k Kind
	switch op {
	case isa.Load:
		k = KindLoad
		q.stats.Loads++
	case isa.Store:
		k = KindStore
		q.stats.Stores++
	default:
		panic(fmt.Sprintf("lsq: non-memory op %v", op))
	}
	e := &Entry{Seq: seq, Kind: k, Addr: addr, Payload: payload}
	q.entries = append(q.entries, e)
	return e
}

// MarkExecuted records that the entry's address (and data for stores)
// has been computed. For stores this releases any loads waiting to
// forward from it.
func (q *LSQ) MarkExecuted(e *Entry) {
	e.Executed = true
	if e.Kind == KindStore {
		for _, w := range e.waiters {
			w(e.Seq)
		}
		e.waiters = nil
	}
}

// ForwardResult describes the disambiguation outcome for a load.
type ForwardResult int

// Forwarding outcomes.
const (
	// NoConflict: no older store to the same address; access memory.
	NoConflict ForwardResult = iota
	// ForwardReady: an older executed store matches; forward its data.
	ForwardReady
	// ForwardWait: an older store matches but its data is not ready;
	// the load must wait (the callback fires when it is).
	ForwardWait
)

// LookupForward finds the youngest store older than loadSeq with a
// matching address. When the store is not yet executed, onReady is
// retained and invoked at MarkExecuted time so the pipeline can complete
// the forwarded load.
func (q *LSQ) LookupForward(loadSeq uint64, addr uint64, onReady func(storeSeq uint64)) ForwardResult {
	for i := len(q.entries) - 1; i >= 0; i-- {
		e := q.entries[i]
		if e.Seq >= loadSeq {
			continue
		}
		if e.Kind != KindStore {
			continue
		}
		if e.Kind == KindStore && !e.Executed {
			// Unresolved store address: a conservative design would
			// stall, but following the paper's pseudo-perfect
			// disambiguation we compare against the architectural
			// address the generator provided.
			if e.Addr == addr {
				e.waiters = append(e.waiters, onReady)
				q.stats.ForwardStalls++
				return ForwardWait
			}
			continue
		}
		if e.Addr == addr {
			q.stats.Forwards++
			return ForwardReady
		}
	}
	return NoConflict
}

// DrainStoresBefore removes every store with Seq < endSeq, invoking
// write for each in program order (checkpoint-commit draining). Loads
// older than endSeq are retired from the queue at the same time.
func (q *LSQ) DrainStoresBefore(endSeq uint64, write func(addr uint64)) int {
	n := 0
	kept := q.entries[:0]
	for _, e := range q.entries {
		if e.Seq >= endSeq {
			kept = append(kept, e)
			continue
		}
		if e.Kind == KindStore {
			if !e.Executed {
				panic(fmt.Sprintf("lsq: draining unexecuted store seq %d", e.Seq))
			}
			write(e.Addr)
			q.stats.StoresDrained++
			n++
		}
	}
	// Zero the tail so removed entries can be collected.
	for i := len(kept); i < len(q.entries); i++ {
		q.entries[i] = nil
	}
	q.entries = kept
	return n
}

// Retire removes a single entry (ROB-mode per-instruction commit),
// invoking write for stores.
func (q *LSQ) Retire(e *Entry, write func(addr uint64)) {
	for i, x := range q.entries {
		if x == e {
			if e.Kind == KindStore {
				if !e.Executed {
					panic(fmt.Sprintf("lsq: retiring unexecuted store seq %d", e.Seq))
				}
				write(e.Addr)
				q.stats.StoresDrained++
			}
			q.entries = append(q.entries[:i], q.entries[i+1:]...)
			return
		}
	}
	panic(fmt.Sprintf("lsq: retire of unknown entry seq %d", e.Seq))
}

// SquashYounger removes every entry with Seq >= seq (rollback).
func (q *LSQ) SquashYounger(seq uint64) int {
	n := 0
	kept := q.entries[:0]
	for _, e := range q.entries {
		if e.Seq >= seq {
			e.waiters = nil
			n++
			continue
		}
		kept = append(kept, e)
	}
	for i := len(kept); i < len(q.entries); i++ {
		q.entries[i] = nil
	}
	q.entries = kept
	return n
}

// Stats returns a copy of the counters.
func (q *LSQ) Stats() Stats { return q.stats }

// CheckInvariants validates ordering for tests.
func (q *LSQ) CheckInvariants() error {
	for i := 1; i < len(q.entries); i++ {
		if q.entries[i-1].Seq >= q.entries[i].Seq {
			return fmt.Errorf("lsq: entries out of order at %d (%d then %d)",
				i, q.entries[i-1].Seq, q.entries[i].Seq)
		}
	}
	if len(q.entries) > q.capacity {
		return fmt.Errorf("lsq: %d entries exceed capacity %d", len(q.entries), q.capacity)
	}
	return nil
}
