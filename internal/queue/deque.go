package queue

import "fmt"

// Deque is a fixed-capacity ring-buffer double-ended queue. The
// pseudo-ROB uses it as a FIFO that also supports tail removal (squashing
// the youngest instructions on a branch recovery).
type Deque[T any] struct {
	buf        []T
	head, size int
}

// NewDeque builds a deque with the given capacity.
func NewDeque[T any](capacity int) *Deque[T] {
	if capacity < 1 {
		panic(fmt.Sprintf("queue: deque capacity %d < 1", capacity))
	}
	return &Deque[T]{buf: make([]T, capacity)}
}

// Cap returns the capacity.
func (d *Deque[T]) Cap() int { return len(d.buf) }

// Len returns the number of elements.
func (d *Deque[T]) Len() int { return d.size }

// Full reports whether the deque is at capacity.
func (d *Deque[T]) Full() bool { return d.size == len(d.buf) }

// Empty reports whether the deque has no elements.
func (d *Deque[T]) Empty() bool { return d.size == 0 }

// wrap reduces an index in [0, 2*cap) onto the ring; head+offset sums
// never exceed that, so a conditional subtract replaces the integer
// division a % would cost on the per-instruction paths.
func (d *Deque[T]) wrap(i int) int {
	if i >= len(d.buf) {
		i -= len(d.buf)
	}
	return i
}

// PushBack appends v at the tail (youngest). It returns false when full.
func (d *Deque[T]) PushBack(v T) bool {
	if d.Full() {
		return false
	}
	d.buf[d.wrap(d.head+d.size)] = v
	d.size++
	return true
}

// PopFront removes and returns the head (oldest) element.
func (d *Deque[T]) PopFront() (T, bool) {
	var zero T
	if d.size == 0 {
		return zero, false
	}
	v := d.buf[d.head]
	d.buf[d.head] = zero
	d.head = d.wrap(d.head + 1)
	d.size--
	return v, true
}

// PopBack removes and returns the tail (youngest) element.
func (d *Deque[T]) PopBack() (T, bool) {
	var zero T
	if d.size == 0 {
		return zero, false
	}
	i := d.wrap(d.head + d.size - 1)
	v := d.buf[i]
	d.buf[i] = zero
	d.size--
	return v, true
}

// Front returns the head element without removing it.
func (d *Deque[T]) Front() (T, bool) {
	var zero T
	if d.size == 0 {
		return zero, false
	}
	return d.buf[d.head], true
}

// Back returns the tail element without removing it.
func (d *Deque[T]) Back() (T, bool) {
	var zero T
	if d.size == 0 {
		return zero, false
	}
	return d.buf[d.wrap(d.head+d.size-1)], true
}

// At returns the i'th element from the head (0 = oldest).
func (d *Deque[T]) At(i int) T {
	if i < 0 || i >= d.size {
		panic(fmt.Sprintf("queue: deque index %d out of range [0,%d)", i, d.size))
	}
	return d.buf[d.wrap(d.head+i)]
}

// ForEach calls fn on each element from oldest to youngest.
func (d *Deque[T]) ForEach(fn func(v T)) {
	for i := 0; i < d.size; i++ {
		fn(d.buf[d.wrap(d.head+i)])
	}
}

// Clear removes all elements.
func (d *Deque[T]) Clear() {
	var zero T
	for i := 0; i < d.size; i++ {
		d.buf[d.wrap(d.head+i)] = zero
	}
	d.head, d.size = 0, 0
}
