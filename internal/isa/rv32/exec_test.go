package rv32_test

import (
	"strings"
	"testing"

	"repro/internal/isa/rv32"
)

// asmProgram assembles a program built by fill.
func asmProgram(t *testing.T, name string, init map[int]uint32, data []rv32.Segment, fill func(a *rv32.Asm)) *rv32.Program {
	t.Helper()
	a := rv32.NewAsm()
	fill(a)
	text, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return &rv32.Program{Name: name, Text: text, Data: data, Init: init}
}

// TestExecuteArithmetic runs a straight-line program exercising the ALU,
// M-extension and RISC-V division edge semantics, then checks the
// architectural register results.
func TestExecuteArithmetic(t *testing.T) {
	p := asmProgram(t, "arith", nil, nil, func(a *rv32.Asm) {
		a.Li(rv32.T0, 7)
		a.Li(rv32.T1, -3)
		a.Mul(rv32.T2, rv32.T0, rv32.T1)  // t2 = -21
		a.Div(rv32.T3, rv32.T0, rv32.T1)  // t3 = -2 (truncated)
		a.Rem(rv32.T4, rv32.T0, rv32.T1)  // t4 = 1
		a.Div(rv32.T5, rv32.T0, rv32.X0)  // div by zero -> -1
		a.Rem(rv32.T6, rv32.T0, rv32.X0)  // rem by zero -> rs1
		a.Li(rv32.S2, 0x12345000-0x800)   // lui+addi path of Li
		a.Srai(rv32.S3, rv32.T1, 1)       // -3>>1 = -2 arithmetic
		a.Sltu(rv32.S4, rv32.X0, rv32.T0) // unsigned 0<7 = 1
		a.Ebreak()
	})
	m, err := rv32.Execute(p, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		reg  int
		want uint32
	}{
		{rv32.T2, uint32(0xFFFFFFEB)}, // -21
		{rv32.T3, uint32(0xFFFFFFFE)}, // -2
		{rv32.T4, 1},
		{rv32.T5, ^uint32(0)},
		{rv32.T6, 7},
		{rv32.S2, 0x12345000 - 0x800},
		{rv32.S3, uint32(0xFFFFFFFE)},
		{rv32.S4, 1},
	} {
		if got := m.Reg(tc.reg); got != tc.want {
			t.Errorf("x%d = %#x, want %#x", tc.reg, got, tc.want)
		}
	}
}

// TestExecuteControlAndMemory exercises labels, a loop, a call/return
// pair and byte/word memory traffic: sum the bytes 1..5 via a subroutine
// and store the result.
func TestExecuteControlAndMemory(t *testing.T) {
	data := []rv32.Segment{{Addr: rv32.DataBase, Data: []byte{1, 2, 3, 4, 5}}}
	p := asmProgram(t, "sum", map[int]uint32{rv32.SP: rv32.StackTop}, data, func(a *rv32.Asm) {
		a.Li(rv32.A0, int32(rv32.DataBase))
		a.Li(rv32.A1, 5)
		a.Jal(rv32.RA, "sum")
		a.Li(rv32.T0, int32(rv32.DataBase+0x100))
		a.Sw(rv32.A0, 0, rv32.T0)
		a.Ebreak()

		a.Label("sum") // a0 = sum of a1 bytes at a0
		a.Li(rv32.T1, 0)
		a.Label("loop")
		a.Beq(rv32.A1, rv32.X0, "done")
		a.Lbu(rv32.T2, 0, rv32.A0)
		a.Add(rv32.T1, rv32.T1, rv32.T2)
		a.Addi(rv32.A0, rv32.A0, 1)
		a.Addi(rv32.A1, rv32.A1, -1)
		a.J("loop")
		a.Label("done")
		a.Mv(rv32.A0, rv32.T1)
		a.Ret()
	})
	m, err := rv32.Execute(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ReadWord(rv32.DataBase + 0x100); got != 15 {
		t.Fatalf("stored sum = %d, want 15", got)
	}
}

// TestExecuteFaults pins the executor's guard rails: null/low pointers,
// misalignment, ecall, runaway programs and stepping past halt all
// error without panicking.
func TestExecuteFaults(t *testing.T) {
	build := func(fill func(a *rv32.Asm)) *rv32.Program {
		return asmProgram(t, "fault", nil, nil, fill)
	}
	for _, tc := range []struct {
		name string
		p    *rv32.Program
		want string
	}{
		{"null-load", build(func(a *rv32.Asm) { a.Lw(rv32.T0, 0, rv32.X0); a.Ebreak() }), "below"},
		{"misaligned", build(func(a *rv32.Asm) {
			a.Li(rv32.T0, int32(rv32.DataBase+2))
			a.Lw(rv32.T1, 0, rv32.T0)
			a.Ebreak()
		}), "misaligned"},
		{"ecall", &rv32.Program{Name: "fault", Text: []uint32{0x00000073}}, "ecall"},
		{"runaway", build(func(a *rv32.Asm) { a.Label("x"); a.J("x") }), "did not halt"},
		{"pc-off-text", build(func(a *rv32.Asm) { a.Nop() }), "outside text"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := rv32.Execute(tc.p, 100)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Execute error = %v, want substring %q", err, tc.want)
			}
		})
	}

	if _, err := rv32.NewMachine(&rv32.Program{Name: "empty"}); err == nil {
		t.Error("NewMachine accepted an empty text")
	}
	if _, err := rv32.NewMachine(&rv32.Program{Name: "x0", Text: []uint32{0x00100073}, Init: map[int]uint32{0: 1}}); err == nil {
		t.Error("NewMachine accepted an x0 initialiser")
	}

	// Step after halt is an explicit error.
	m, err := rv32.Execute(&rv32.Program{Name: "halt", Text: []uint32{0x00100073}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(); err == nil {
		t.Error("Step on a halted machine succeeded")
	}
}

// TestAsmErrors pins the assembler's accumulate-and-report contract.
func TestAsmErrors(t *testing.T) {
	a := rv32.NewAsm()
	a.Addi(rv32.T0, 99, 0) // bad register
	if _, err := a.Assemble(); err == nil {
		t.Error("Assemble accepted a bad register")
	}

	a = rv32.NewAsm()
	a.J("nowhere")
	if _, err := a.Assemble(); err == nil {
		t.Error("Assemble accepted an undefined label")
	}

	a = rv32.NewAsm()
	a.Label("dup")
	a.Nop()
	a.Label("dup")
	if _, err := a.Assemble(); err == nil {
		t.Error("Assemble accepted a duplicate label")
	}

	a = rv32.NewAsm()
	a.Label("here")
	if _, err := a.AddrOf("missing", rv32.TextBase); err == nil {
		t.Error("AddrOf resolved a missing label")
	}
	if got, err := a.AddrOf("here", rv32.TextBase); err != nil || got != rv32.TextBase {
		t.Errorf("AddrOf(here) = %#x, %v; want %#x", got, err, rv32.TextBase)
	}
}
