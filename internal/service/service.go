// Package service turns the simulator into a simulation-as-a-service
// subsystem layered on internal/sim: clients submit batches of
// declarative simulation points, a shared bounded worker pool executes
// the cache misses, and a content-addressed result cache returns every
// previously computed point without simulation.
//
// The pieces, bottom to top:
//
//   - Cache: a two-tier (in-memory LRU + on-disk JSON) store keyed by
//     sim.Fingerprint content addresses.
//   - Scheduler: splits submitted batches into cache hits and misses,
//     runs misses through the simulator on one bounded pool shared by
//     all in-flight batches (with singleflight dedupe of identical
//     points), and publishes per-point completion events.
//   - NewHandler / Client: the HTTP daemon surface (cmd/ooosimd) and
//     the Go client used by cmd/experiments -server.
//
// Batches are declarative: a Job carries a config.Config and a
// trace.Recipe, never a materialised trace, so a cache hit skips both
// the simulation and the workload generation. Recipes are bounded
// (trace.MaxRecipeInsts), which caps the per-point budget a remote
// batch can request.
//
// Submitted points are not cancellable: once a batch is accepted its
// misses run to completion even if every client disconnects. That is
// deliberate — simulation is deterministic and results land in the
// content-addressed cache, so finished work is never wasted; it
// answers the next identical submission for free.
package service

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Job is one simulation point in wire form: the declarative equivalent
// of a sim.RunSpec, with the trace replaced by its generation recipe.
type Job struct {
	// Name labels the point in progress events; defaults to the
	// recipe's workload name (the kernel, or the program name for
	// program recipes).
	Name string `json:"name,omitempty"`
	// Config is the processor configuration.
	Config config.Config `json:"config"`
	// Trace is the workload's generation recipe.
	Trace trace.Recipe `json:"trace"`
	// Insts is the committed-instruction target (0 runs the full
	// trace).
	Insts uint64 `json:"insts,omitempty"`
	// CollectOccupancy enables the full occupancy distribution.
	CollectOccupancy bool `json:"collect_occupancy,omitempty"`
	// Sample requests SMARTS sampled simulation over the recipe's
	// segment stream (see sim.RunSpec.Sample). omitzero keeps
	// non-sampled wire forms byte-identical to the pre-sampling ones.
	Sample trace.SampleSpec `json:"sample,omitzero"`
}

// Validate reports an unusable job. Sampled jobs validate under the
// streamed recipe rules (the materialisation cap does not apply — only
// a window is ever in memory) and must carry an instruction budget,
// since a synthetic stream has no natural end.
func (j Job) Validate() error {
	if err := j.Config.Validate(); err != nil {
		return err
	}
	if j.Sample.Enabled() {
		if err := j.Sample.Validate(); err != nil {
			return err
		}
		if j.CollectOccupancy {
			return fmt.Errorf("service: job %s: occupancy collection cannot be sampled", j.label())
		}
		if j.Insts == 0 {
			return fmt.Errorf("service: job %s: sampled jobs need an instruction budget", j.label())
		}
		return j.Trace.ValidateStreamed()
	}
	return j.Trace.Validate()
}

// Fingerprint returns the job's content address (see sim.Fingerprint).
// Sampled jobs extend the canonical trace string with the sample spec
// (trace.PointString), so they occupy keys disjoint from every
// full-detail point while non-sampled jobs hash unchanged bytes.
func (j Job) Fingerprint() (string, error) {
	return sim.Fingerprint(j.Config, trace.PointString(j.Trace, j.Sample), j.Insts, j.CollectOccupancy)
}

// label names the job in events and errors.
func (j Job) label() string {
	if j.Name != "" {
		return j.Name
	}
	return j.Trace.WorkloadName()
}

// JobFromSpec converts an in-process sweep spec to wire form. It fails
// for specs whose trace carries no generation recipe (custom trace.Mix
// weights), which cannot be described remotely.
func JobFromSpec(spec sim.RunSpec) (Job, error) {
	if spec.Trace == nil {
		return Job{}, fmt.Errorf("service: spec %q has no trace", spec.Name)
	}
	r, ok := spec.Trace.Recipe()
	if !ok {
		return Job{}, fmt.Errorf("service: spec %q: trace %q has no generation recipe, cannot run remotely",
			spec.Name, spec.Trace.Name())
	}
	return Job{
		Name:             spec.Name,
		Config:           spec.Config,
		Trace:            r,
		Insts:            spec.Insts,
		CollectOccupancy: spec.CollectOccupancy,
		Sample:           spec.Sample,
	}, nil
}
