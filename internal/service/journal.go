package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Journal is the scheduler's batch recovery log: an append-only NDJSON
// file recording which batches were admitted and which fingerprints
// have since completed into the durable cache. A restarted ooosimd
// replays it (see Scheduler.Recover) and re-admits every batch that
// was in flight at the crash — already-completed points come back as
// disk-cache hits, so only the genuinely missing points re-simulate,
// and determinism pins the resumed batch byte-identical to what the
// original would have produced.
//
// Record types, one JSON object per line:
//
//	{"t":"batch","id":"b12","jobs":[...]}   batch admitted with >=1 miss
//	{"t":"point","fp":"<64 hex>"}           miss completed and cached
//	{"t":"batchdone","id":"b12"}            every point of b12 landed
//
// Appends are single-writer under a mutex onto an O_APPEND file, so a
// crash can tear at most the final record; Replay tolerates (and
// drops) a torn last line. The file is truncated after a successful
// recovery, bounding growth to one daemon lifetime's in-flight work.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
}

type journalRecord struct {
	T    string `json:"t"`
	ID   string `json:"id,omitempty"`
	Jobs []Job  `json:"jobs,omitempty"`
	FP   string `json:"fp,omitempty"`
}

// OpenJournal opens (creating if needed) the journal at path.
func OpenJournal(path string) (*Journal, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("service: journal dir: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	return &Journal{path: path, f: f}, nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// append writes one record as a single line. Failures are returned but
// callers treat them as non-fatal: a journal that cannot be written
// degrades recovery, never correctness of the running daemon.
func (j *Journal) append(rec journalRecord) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	_, err = j.f.Write(b)
	return err
}

// AppendBatch records an admitted batch (only batches with misses are
// worth journaling — all-hit batches complete synchronously).
func (j *Journal) AppendBatch(id string, jobs []Job) error {
	return j.append(journalRecord{T: "batch", ID: id, Jobs: jobs})
}

// AppendPoint records a completed-and-cached fingerprint.
func (j *Journal) AppendPoint(fp string) error {
	return j.append(journalRecord{T: "point", FP: fp})
}

// AppendBatchDone records that every point of a journaled batch landed.
func (j *Journal) AppendBatchDone(id string) error {
	return j.append(journalRecord{T: "batchdone", ID: id})
}

// RecoveredBatch is one batch Replay found admitted but unfinished.
type RecoveredBatch struct {
	ID   string
	Jobs []Job
}

// Replay reads the journal and returns the batches still in flight at
// the last shutdown (admitted, no batchdone) plus the set of
// fingerprints known completed. Unparseable lines — the torn final
// record an O_APPEND crash can leave — are skipped, not fatal; at
// worst a torn "point" record re-runs one point, and determinism makes
// the re-run byte-identical.
func (j *Journal) Replay() (pending []RecoveredBatch, completed map[string]bool, err error) {
	f, err := os.Open(j.path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, map[string]bool{}, nil
		}
		return nil, nil, fmt.Errorf("service: journal replay: %w", err)
	}
	defer f.Close()

	batches := map[string]*RecoveredBatch{}
	var order []string
	completed = map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), 16<<20) // batch records carry full job lists
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue // torn or damaged record
		}
		switch rec.T {
		case "batch":
			if rec.ID == "" || len(rec.Jobs) == 0 {
				continue
			}
			if _, ok := batches[rec.ID]; !ok {
				order = append(order, rec.ID)
			}
			batches[rec.ID] = &RecoveredBatch{ID: rec.ID, Jobs: rec.Jobs}
		case "point":
			if rec.FP != "" {
				completed[rec.FP] = true
			}
		case "batchdone":
			delete(batches, rec.ID)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("service: journal replay: %w", err)
	}
	for _, id := range order {
		if rb, ok := batches[id]; ok {
			pending = append(pending, *rb)
		}
	}
	return pending, completed, nil
}

// Reset truncates the journal. Called after recovery has re-admitted
// the pending batches (whose fresh "batch" records re-append), so the
// file stays bounded by in-flight work rather than daemon history.
func (j *Journal) Reset() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Truncate(0)
}
