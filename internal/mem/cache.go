// Package mem models the memory hierarchy of the simulated processor:
// set-associative LRU caches, an MSHR-style miss tracker that merges
// requests to in-flight lines, and the main-memory latency model.
//
// Timing contract: all methods take and return absolute cycle numbers.
// The hierarchy is a passive timing oracle — the pipeline asks "if this
// load starts now, when is its value ready, and did it miss in L2?" and
// the hierarchy updates its replacement state as a side effect.
package mem

import (
	"fmt"

	"repro/internal/config"
)

// CacheStats counts accesses for one cache level.
type CacheStats struct {
	Accesses uint64
	Misses   uint64
}

// Hits returns the number of hits.
func (s CacheStats) Hits() uint64 { return s.Accesses - s.Misses }

// MissRate returns misses/accesses, or 0 for an untouched cache.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative cache with true-LRU replacement. It tracks
// only tags (the simulator never needs data values from memory).
type Cache struct {
	lineShift uint
	setMask   uint64
	latency   int
	// ways holds, per set, the resident tags in LRU order: index 0 is
	// the most recently used way.
	ways  [][]uint64
	stats CacheStats
}

// NewCache builds a cache from its configuration. It panics on invalid
// geometry; validate configurations with config.CacheConfig.Validate first.
func NewCache(cc config.CacheConfig) *Cache {
	if err := cc.Validate(); err != nil {
		panic(err)
	}
	sets := cc.Sets()
	c := &Cache{
		lineShift: uint(log2(cc.LineBytes)),
		setMask:   uint64(sets - 1),
		latency:   cc.LatencyCycles,
		ways:      make([][]uint64, sets),
	}
	for i := range c.ways {
		c.ways[i] = make([]uint64, 0, cc.Assoc)
	}
	return c
}

func log2(v int) int {
	n := 0
	for 1<<n < v {
		n++
	}
	if 1<<n != v {
		panic(fmt.Sprintf("mem: %d is not a power of two", v))
	}
	return n
}

// Latency returns the hit latency in cycles.
func (c *Cache) Latency() int { return c.latency }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift << c.lineShift }

// Access looks up addr, updates LRU state and statistics, and reports
// whether it hit. On a miss the line is allocated (fetch-on-miss,
// write-allocate) evicting the LRU way if needed.
func (c *Cache) Access(addr uint64) bool {
	c.stats.Accesses++
	tag := addr >> c.lineShift
	set := c.ways[tag&c.setMask]
	for i, t := range set {
		if t == tag {
			// Move to front (most recently used).
			copy(set[1:i+1], set[:i])
			set[0] = tag
			return true
		}
	}
	c.stats.Misses++
	c.insert(tag)
	return false
}

// Probe reports whether addr is resident without updating LRU state or
// statistics. Tests and invariant checks use it.
func (c *Cache) Probe(addr uint64) bool {
	tag := addr >> c.lineShift
	for _, t := range c.ways[tag&c.setMask] {
		if t == tag {
			return true
		}
	}
	return false
}

// insert allocates tag as the MRU way of its set, evicting LRU if full.
func (c *Cache) insert(tag uint64) {
	idx := tag & c.setMask
	set := c.ways[idx]
	if len(set) < cap(set) {
		set = append(set, 0)
	}
	copy(set[1:], set[:len(set)-1])
	set[0] = tag
	c.ways[idx] = set
}

// Stats returns a copy of the access counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Reset empties the cache and zeroes its statistics.
func (c *Cache) Reset() {
	for i := range c.ways {
		c.ways[i] = c.ways[i][:0]
	}
	c.stats = CacheStats{}
}
