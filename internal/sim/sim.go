// Package sim is the run engine underneath the experiment harness: it
// executes declarative simulation points over a bounded worker pool and
// returns results in submission order with real error propagation.
//
// Every figure of the paper's evaluation is a grid of (mechanism ×
// window size × L2 latency × workload) points; each figure flattens its
// grid into a []RunSpec and submits it to Sweep once. Traces are
// immutable (core.CPU.Run never writes to its *trace.Trace, guarded by
// a test), so a single generated trace is shared read-only by every
// concurrently running CPU that sweeps over it.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// RunSpec is one declarative simulation point: a configuration bound to
// a workload trace and an instruction budget.
type RunSpec struct {
	// Name labels the workload (progress lines and run records).
	Name string
	// Config is the processor configuration; validated by core.New.
	Config config.Config
	// Trace is the workload. It is shared read-only across concurrent
	// runs — generate once, submit many.
	Trace *trace.Trace
	// Insts is the committed-instruction target (0 runs the full trace).
	Insts uint64
	// CollectOccupancy enables the full occupancy distribution
	// (Figure 7).
	CollectOccupancy bool
	// DisableSkip forces cycle-by-cycle simulation (see
	// core.RunOptions.DisableSkip). Results are bit-identical either
	// way, so the knob never enters result fingerprints or the remote
	// job encoding — it is a local A/B debugging aid only.
	DisableSkip bool
	// Sample, when enabled, runs the point under the SMARTS sampling
	// protocol (core.RunSampled) over the workload's segment stream
	// instead of simulating every instruction. Insts then bounds the
	// total stream coverage (and is mandatory for synthetic workloads,
	// whose streams are unbounded). Sampling changes what is measured,
	// so it is part of the point's fingerprint identity — unlike
	// DisableSkip (see Fingerprint).
	Sample trace.SampleSpec
}

// Options tunes a Sweep.
type Options struct {
	// Workers bounds the worker pool; <= 0 uses GOMAXPROCS.
	Workers int
	// Progress, when non-nil, receives one line per completed run
	// together with the sweep's completion count: done runs out of
	// total (done counts this run). Calls are serialised but arrive in
	// completion order, not spec order.
	Progress func(done, total int, line string)
	// OnResult, when non-nil, receives every completed run. Calls are
	// serialised; order follows completion, not spec order.
	OnResult func(spec RunSpec, res stats.Results)
}

// ProgressLine renders the one-line completion report for a finished
// spec. The local sweep and the remote service client both use it, so
// -server progress output matches in-process output byte for byte.
func ProgressLine(spec RunSpec, res stats.Results) string {
	return fmt.Sprintf("  %-10s %-34s IPC=%.3f", spec.Name, spec.Config.Summary(), res.IPC())
}

// Run executes a single spec synchronously. Construction failures and
// simulator panics (e.g. the commit watchdog) come back as errors
// labelled with the spec, never as process-killing panics — a worker
// pool must survive one bad point.
func Run(spec RunSpec) (stats.Results, error) {
	return runSpec(spec, nil, nil)
}

// RunForked executes one spec against a fork of donor's warmed cache
// state instead of replaying the warm-up footprint (see core.WarmDonor
// and core.NewForked). The donor is only read; it may serve concurrent
// RunForked calls. Error handling matches Run.
func RunForked(spec RunSpec, donor *mem.Hierarchy) (stats.Results, error) {
	return runSpec(spec, func() (*mem.Hierarchy, error) { return donor, nil }, nil)
}

// runSpec is the worker body shared by the cold and forked paths: a nil
// getDonor runs cold (build and warm a private hierarchy), otherwise
// the CPU forks the donor's warmed cache state. arena, when non-nil, is
// the calling worker's record arena (single-owner).
func runSpec(spec RunSpec, getDonor func() (*mem.Hierarchy, error), arena *core.Arena) (res stats.Results, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: %s (%s): panic: %v", spec.Name, spec.Config.Summary(), r)
		}
	}()
	if spec.Sample.Enabled() {
		// Sampled points stream; they neither need nor use a warm donor
		// (the persistent substrate is warmed by fast-forwarding the
		// stream itself, not by a footprint replay).
		res, err = runSampled(spec)
		if err != nil {
			err = fmt.Errorf("sim: %s (%s): %w", spec.Name, spec.Config.Summary(), err)
		}
		return res, err
	}
	var cpu *core.CPU
	if getDonor == nil {
		cpu, err = core.New(spec.Config, spec.Trace)
	} else {
		var donor *mem.Hierarchy
		if donor, err = getDonor(); err == nil {
			cpu, err = core.NewForked(spec.Config, spec.Trace, donor, arena)
		}
	}
	if err != nil {
		return stats.Results{}, fmt.Errorf("sim: %s (%s): %w", spec.Name, spec.Config.Summary(), err)
	}
	res = cpu.Run(core.RunOptions{
		MaxInsts:         spec.Insts,
		CollectOccupancy: spec.CollectOccupancy,
		DisableSkip:      spec.DisableSkip,
	})
	cpu.Recycle(arena)
	return res, nil
}

// runSampled executes a sampled point: open the workload's segment
// stream — from the recipe when the trace is a recipe-only handle (the
// normal sampled path, which never materialises), or over the slice of
// an already-materialised trace — and drive it through core.RunSampled.
func runSampled(spec RunSpec) (stats.Results, error) {
	if err := spec.Sample.Validate(); err != nil {
		return stats.Results{}, err
	}
	if spec.CollectOccupancy {
		return stats.Results{}, fmt.Errorf("occupancy collection cannot be sampled")
	}
	if spec.Trace == nil {
		return stats.Results{}, fmt.Errorf("no trace")
	}
	// Two independent streams over the same workload: one the sampling
	// loop consumes, one the whole-footprint cache warm consumes (the
	// sampled equivalent of warmHierarchy replaying the materialised
	// trace's WarmFootprint).
	var st, warm *trace.InstStream
	if spec.Trace.Len() > 0 {
		st = spec.Trace.OpenStream()
		warm = spec.Trace.OpenStream()
	} else if r, ok := spec.Trace.Recipe(); ok {
		var err error
		if st, err = r.OpenStream(); err != nil {
			return stats.Results{}, err
		}
		if warm, err = r.OpenStream(); err != nil {
			return stats.Results{}, err
		}
	} else {
		return stats.Results{}, fmt.Errorf("empty trace")
	}
	return core.RunSampled(spec.Config, st, warm, spec.Sample, core.RunOptions{
		MaxInsts:    spec.Insts,
		DisableSkip: spec.DisableSkip,
	})
}

// warmGroup shares one warmed donor hierarchy across every spec with
// the same (trace, warm shape): the first member to need it warms the
// donor once, every member forks it. The once makes donor warming safe
// and single under concurrent workers.
type warmGroup struct {
	tr  *trace.Trace
	key mem.WarmKey

	once  sync.Once
	donor *mem.Hierarchy
	err   error
}

func (g *warmGroup) get() (*mem.Hierarchy, error) {
	g.once.Do(func() { g.donor, g.err = core.WarmDonor(g.key, g.tr) })
	return g.donor, g.err
}

// groupSpecs assigns every spec its warm group and returns a
// group-clustered execution order: members of one group run adjacently
// (groups in first-appearance order, members in spec order), so the
// donor a worker forks is the one most recently touched. Results are
// still reported by spec index, so the reordering is invisible in the
// output.
func groupSpecs(specs []RunSpec) (bySpec []*warmGroup, order []int) {
	type groupKey struct {
		tr  *trace.Trace
		key mem.WarmKey
	}
	groups := make(map[groupKey]int)
	bySpec = make([]*warmGroup, len(specs))
	var members [][]int
	var list []*warmGroup
	for i, s := range specs {
		k := groupKey{s.Trace, mem.WarmKeyFor(s.Config)}
		gi, ok := groups[k]
		if !ok {
			gi = len(list)
			groups[k] = gi
			list = append(list, &warmGroup{tr: k.tr, key: k.key})
			members = append(members, nil)
		}
		bySpec[i] = list[gi]
		members[gi] = append(members[gi], i)
	}
	order = make([]int, 0, len(specs))
	for _, m := range members {
		order = append(order, m...)
	}
	return bySpec, order
}

// Sweep executes every spec over a bounded worker pool and returns the
// results in spec order: results[i] belongs to specs[i] regardless of
// which worker finished it when, so sweep output is deterministic for
// any worker count. The first failing spec cancels the remaining work
// and its error is returned; ctx cancellation stops the sweep early
// with ctx's error.
//
// Specs are grouped by (trace, warm-relevant cache shape) under the
// snapshot-fork kernel: each group warms one donor hierarchy via the
// trace's warm-up footprint and every member forks the donor's cache
// state, so a figure-9-style sweep replays each workload's warm-up once
// per cache geometry instead of once per point. Execution order is
// group-clustered for donor locality; results stay in spec order.
func Sweep(ctx context.Context, specs []RunSpec, opt Options) ([]stats.Results, error) {
	if len(specs) == 0 {
		return nil, ctx.Err()
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]stats.Results, len(specs))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	bySpec, order := groupSpecs(specs)

	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each worker owns a record arena: DynInst blocks grown for
			// one point are reused by every later point it runs.
			arena := core.NewArena()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain remaining indices after cancellation
				}
				res, err := runSpec(specs[i], bySpec[i].get, arena)
				if err != nil {
					fail(err)
					continue
				}
				results[i] = res
				if opt.Progress != nil || opt.OnResult != nil {
					mu.Lock()
					done++
					if opt.Progress != nil {
						opt.Progress(done, len(specs), ProgressLine(specs[i], res))
					}
					if opt.OnResult != nil {
						opt.OnResult(specs[i], res)
					}
					mu.Unlock()
				}
			}
		}()
	}

feed:
	for _, i := range order {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}
