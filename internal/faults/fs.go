package faults

import (
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// FS is the small filesystem surface the disk result cache needs.
// Production code uses OSFS; chaos runs wrap it in ChaosFS so reads
// and writes can be dropped, delayed, failed, or corrupted on a
// deterministic schedule.
type FS interface {
	ReadFile(name string) ([]byte, error)
	// WriteFile must be atomic: readers see either the whole file or
	// nothing, never a torn prefix.
	WriteFile(name string, data []byte, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	MkdirAll(path string, perm os.FileMode) error
}

// OSFS is the real filesystem. WriteFile is atomic (temp file in the
// target directory, then rename), matching what a crash-consistent
// result cache requires.
type OSFS struct{}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OSFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(name)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), name)
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// ChaosFS wraps an FS with fault injection. Each operation consults
// the injector at Site+":read" / ":write" / ":rename" / ":mkdir".
// Semantics per action:
//
//	Drop    — reads fail with an injected error; writes silently
//	          succeed without persisting (a lost write, healed later
//	          by a cache miss and recompute).
//	Delay   — sleep, then proceed.
//	Error   — the operation returns an error.
//	Corrupt — reads return deterministically flipped bytes; writes
//	          persist flipped bytes.
type ChaosFS struct {
	Base   FS
	Inject *Injector
	// Site prefixes the per-operation site names; empty means "fs".
	Site string
}

func (c ChaosFS) site(op string) string {
	s := c.Site
	if s == "" {
		s = "fs"
	}
	return s + ":" + op
}

func (c ChaosFS) ReadFile(name string) ([]byte, error) {
	site := c.site("read")
	d := c.Inject.Decide(site)
	switch d.Act {
	case Drop:
		return nil, &InjectedError{Site: site}
	case Delay:
		time.Sleep(d.Sleep)
	case Error:
		return nil, fmt.Errorf("faults: injected read error at %s", site)
	}
	b, err := c.Base.ReadFile(name)
	if err == nil && d.Act == Corrupt {
		b = CorruptBytes(d.Pattern, b)
	}
	return b, err
}

func (c ChaosFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	site := c.site("write")
	d := c.Inject.Decide(site)
	switch d.Act {
	case Drop:
		return nil // lost write: caller believes it persisted
	case Delay:
		time.Sleep(d.Sleep)
	case Error:
		return fmt.Errorf("faults: injected write error at %s", site)
	case Corrupt:
		data = CorruptBytes(d.Pattern, data)
	}
	return c.Base.WriteFile(name, data, perm)
}

func (c ChaosFS) Rename(oldpath, newpath string) error {
	site := c.site("rename")
	d := c.Inject.Decide(site)
	switch d.Act {
	case Drop, Error:
		return fmt.Errorf("faults: injected rename error at %s", site)
	case Delay:
		time.Sleep(d.Sleep)
	}
	return c.Base.Rename(oldpath, newpath)
}

func (c ChaosFS) MkdirAll(path string, perm os.FileMode) error {
	site := c.site("mkdir")
	d := c.Inject.Decide(site)
	switch d.Act {
	case Drop, Error:
		return fmt.Errorf("faults: injected mkdir error at %s", site)
	case Delay:
		time.Sleep(d.Sleep)
	}
	return c.Base.MkdirAll(path, perm)
}
