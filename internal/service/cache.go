package service

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// DefaultCacheEntries is the in-memory tier's default capacity.
const DefaultCacheEntries = 4096

// Cache is the two-tier content-addressed result store: an in-memory
// LRU over the marshalled stats.Results of recently touched points, and
// an optional on-disk JSON store holding every point ever computed.
// Keys are sim.Fingerprint addresses, so a hit is exactly "this point
// was simulated before, under identical semantics" — simulation is
// deterministic, and the cache returns the stored bytes verbatim, so a
// hit is byte-identical to recomputation.
//
// Values are raw JSON messages rather than decoded structs: the HTTP
// layer streams them without re-encoding, and byte-identity is trivial
// to preserve. Callers must treat returned messages as immutable.
//
// Disk layout under dir (see NewCache): one file per point at
// <dir>/<fp[:2]>/<fp>.json, sharded by fingerprint prefix so no single
// directory grows unboundedly. Files are written via temp-and-rename,
// so a crashed daemon never leaves a torn entry behind.
type Cache struct {
	dir string

	mu    sync.Mutex
	cap   int
	lru   *list.List // of *cacheItem; front = most recently used
	items map[string]*list.Element
}

type cacheItem struct {
	key string
	raw json.RawMessage
}

// NewCache builds a cache whose memory tier holds up to memEntries
// results (<= 0 uses DefaultCacheEntries). dir is the disk tier's root;
// empty disables the disk tier (memory-only, evicted results are
// recomputed on next miss).
func NewCache(memEntries int, dir string) (*Cache, error) {
	if memEntries <= 0 {
		memEntries = DefaultCacheEntries
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("service: cache dir: %w", err)
		}
	}
	return &Cache{
		dir:   dir,
		cap:   memEntries,
		lru:   list.New(),
		items: map[string]*list.Element{},
	}, nil
}

// Get returns the stored result bytes for the fingerprint, promoting a
// disk hit into the memory tier.
func (c *Cache) Get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	if e, ok := c.items[key]; ok {
		c.lru.MoveToFront(e)
		raw := e.Value.(*cacheItem).raw
		c.mu.Unlock()
		return raw, true
	}
	c.mu.Unlock()

	if c.dir == "" {
		return nil, false
	}
	raw, err := os.ReadFile(c.path(key))
	if err != nil || !json.Valid(raw) {
		// A missing file is the common miss; an unreadable or corrupt
		// one is treated the same — the point just recomputes.
		return nil, false
	}
	c.putMem(key, raw)
	return raw, true
}

// Put stores a computed result under its fingerprint in both tiers.
func (c *Cache) Put(key string, raw json.RawMessage) error {
	c.putMem(key, raw)
	if c.dir == "" {
		return nil
	}
	path := c.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("service: cache put: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+key[:8]+".tmp*")
	if err != nil {
		return fmt.Errorf("service: cache put: %w", err)
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("service: cache put: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: cache put: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("service: cache put: %w", err)
	}
	return nil
}

// MemLen returns the number of entries resident in the memory tier.
func (c *Cache) MemLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

func (c *Cache) putMem(key string, raw json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		c.lru.MoveToFront(e)
		e.Value.(*cacheItem).raw = raw
		return
	}
	c.items[key] = c.lru.PushFront(&cacheItem{key: key, raw: raw})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheItem).key)
	}
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}
