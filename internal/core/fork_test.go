package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TestForkedWarmMatchesCold is the snapshot-fork kernel's determinism
// contract at the core level: a CPU built from a forked warm donor must
// be bit-identical to a cold-started one through the hardest control
// flow we can throw at it — branch rollbacks, pseudo-ROB recoveries and
// the two-pass exception protocol — for every commit-policy family.
func TestForkedWarmMatchesCold(t *testing.T) {
	tr := rollbackHeavyTrace(90000)
	for _, tc := range []struct {
		name       string
		cfg        config.Config
		exceptions bool // checkpoint family only: inject precise exceptions
	}{
		{"rob", config.BaselineSized(128), false},
		{"checkpoint", config.CheckpointDefault(32, 1024), true},
		{"adaptive", config.AdaptiveDefault(32, 1024), true},
		{"oracle", config.OracleDefault(), false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(forked bool) stats.Results {
				var cpu *CPU
				var err error
				if forked {
					donor, derr := WarmDonor(mem.WarmKeyFor(tc.cfg), tr)
					if derr != nil {
						t.Fatal(derr)
					}
					cpu, err = NewForked(tc.cfg, tr, donor, NewArena())
				} else {
					cpu, err = New(tc.cfg, tr)
				}
				if err != nil {
					t.Fatal(err)
				}
				if tc.exceptions {
					cpu.InjectExceptionAt(4000)
					cpu.InjectExceptionAt(21000)
				}
				res := cpu.Run(RunOptions{MaxInsts: 50000})
				if tc.exceptions && cpu.Exceptions() != 2 {
					t.Fatalf("delivered %d exceptions, want 2", cpu.Exceptions())
				}
				return res
			}
			cold, fork := run(false), run(true)
			if tc.name != "oracle" && cold.Rollbacks+cold.PseudoROBRecoveries+cold.Branch.Mispredicts == 0 {
				t.Fatal("workload must exercise recovery for the comparison to mean anything")
			}
			if !cold.Equal(fork) {
				t.Fatalf("forked-warm run diverged from cold-started run:\ncold: %+v\nfork: %+v", cold, fork)
			}
		})
	}
}

// TestForkedCPUsShareDonorConcurrently: one donor serves many
// concurrently constructed forks (the donor is only read). Run under
// -race in CI.
func TestForkedCPUsShareDonorConcurrently(t *testing.T) {
	const insts = 20000
	tr := trace.FPMix(trace.LenFor(insts), 42)
	cfg := config.CheckpointDefault(64, 512)
	donor, err := WarmDonor(mem.WarmKeyFor(cfg), tr)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	results := make([]stats.Results, workers)
	done := make(chan int, workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer func() { done <- i }()
			cpu, err := NewForked(cfg, tr, donor, NewArena())
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = cpu.Run(RunOptions{MaxInsts: insts})
		}(i)
	}
	for i := 0; i < workers; i++ {
		<-done
	}
	serial := mustRun(t, cfg, tr, insts)
	for i, r := range results {
		if !r.Equal(serial) {
			t.Fatalf("concurrent fork %d diverged from the cold serial run:\n%+v\nvs\n%+v", i, r, serial)
		}
	}
}

// TestArenaReuseStaysDeterministic: running a sequence of points
// through one arena (records and chassis recycled across points) gives
// the same results as fresh CPUs.
func TestArenaReuseStaysDeterministic(t *testing.T) {
	tr := rollbackHeavyTrace(60000)
	cfgs := []config.Config{
		config.CheckpointDefault(32, 1024),
		config.BaselineSized(128),
		config.CheckpointDefault(64, 512),
		config.BaselineSized(128), // repeat: adopts the recycled chassis
		config.CheckpointDefault(32, 1024),
	}
	arena := NewArena()
	for i, cfg := range cfgs {
		donor, err := WarmDonor(mem.WarmKeyFor(cfg), tr)
		if err != nil {
			t.Fatal(err)
		}
		cpu, err := NewForked(cfg, tr, donor, arena)
		if err != nil {
			t.Fatal(err)
		}
		got := cpu.Run(RunOptions{MaxInsts: 40000})
		cpu.Recycle(arena)
		want := mustRun(t, cfg, tr, 40000)
		if !got.Equal(want) {
			t.Fatalf("point %d through the shared arena diverged:\n%+v\nvs\n%+v", i, got, want)
		}
	}
}
