package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Any() || s.Count() != 0 {
		t.Fatal("new set must be empty")
	}
	s.Set(0)
	s.Set(64)
	s.Set(129)
	if s.Count() != 3 || !s.Any() {
		t.Fatalf("Count = %d", s.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !s.Get(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if s.Get(1) || s.Get(63) || s.Get(128) {
		t.Error("unexpected bits set")
	}
	s.Clear(64)
	if s.Get(64) || s.Count() != 2 {
		t.Error("Clear failed")
	}
	s.SetTo(64, true)
	s.SetTo(0, false)
	if !s.Get(64) || s.Get(0) {
		t.Error("SetTo failed")
	}
	s.Reset()
	if s.Any() {
		t.Error("Reset left bits set")
	}
}

func TestFirstSetFirstClear(t *testing.T) {
	s := New(100)
	if s.FirstSet() != -1 {
		t.Error("empty set has no first set bit")
	}
	if s.FirstClear() != 0 {
		t.Error("empty set: first clear should be 0")
	}
	s.Set(70)
	if got := s.FirstSet(); got != 70 {
		t.Errorf("FirstSet = %d, want 70", got)
	}
	for i := 0; i < 100; i++ {
		s.Set(i)
	}
	if s.FirstClear() != -1 {
		t.Error("full set has no clear bit")
	}
	if s.FirstSet() != 0 {
		t.Error("full set: first set should be 0")
	}
	// FirstClear must not report a phantom bit beyond Len.
	s65 := New(65)
	for i := 0; i < 65; i++ {
		s65.Set(i)
	}
	if got := s65.FirstClear(); got != -1 {
		t.Errorf("FirstClear beyond capacity: %d", got)
	}
}

func TestCopyCloneEqual(t *testing.T) {
	a := New(77)
	a.Set(5)
	a.Set(76)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone must equal original")
	}
	b.Clear(5)
	if a.Equal(b) {
		t.Fatal("diverged sets must differ")
	}
	if !a.Get(5) {
		t.Fatal("clone must be independent")
	}
	c := New(77)
	c.CopyFrom(a)
	if !c.Equal(a) {
		t.Fatal("CopyFrom mismatch")
	}
	if a.Equal(New(78)) {
		t.Fatal("different sizes are never equal")
	}
}

func TestSizeMismatchPanics(t *testing.T) {
	a, b := New(64), New(65)
	for name, fn := range map[string]func(){
		"CopyFrom":   func() { a.CopyFrom(b) },
		"OrWith":     func() { a.OrWith(b) },
		"AndNotWith": func() { a.AndNotWith(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on size mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestOrAndNot(t *testing.T) {
	a, b := New(128), New(128)
	a.Set(1)
	a.Set(100)
	b.Set(100)
	b.Set(101)
	a.OrWith(b)
	for _, i := range []int{1, 100, 101} {
		if !a.Get(i) {
			t.Errorf("or: bit %d missing", i)
		}
	}
	a.AndNotWith(b)
	if !a.Get(1) || a.Get(100) || a.Get(101) {
		t.Error("andnot result wrong")
	}
}

func TestForEach(t *testing.T) {
	s := New(200)
	want := []int{3, 64, 65, 199}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: %v, want ascending %v", got, want)
		}
	}
}

// TestQuickModel checks the bitset against a map-based model under
// random operation sequences.
func TestQuickModel(t *testing.T) {
	f := func(ops []uint16, size uint8) bool {
		n := int(size)%256 + 1
		s := New(n)
		model := map[int]bool{}
		for _, op := range ops {
			i := int(op>>2) % n
			switch op & 3 {
			case 0:
				s.Set(i)
				model[i] = true
			case 1:
				s.Clear(i)
				delete(model, i)
			case 2:
				if s.Get(i) != model[i] {
					return false
				}
			case 3:
				if s.Count() != len(model) {
					return false
				}
			}
		}
		count := 0
		s.ForEach(func(i int) {
			if !model[i] {
				count = -1 << 30
			}
			count++
		})
		return count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Error(err)
	}
}

// TestQuickFirstSet: FirstSet agrees with a linear scan.
func TestQuickFirstSet(t *testing.T) {
	f := func(bits []uint16) bool {
		s := New(300)
		for _, b := range bits {
			s.Set(int(b) % 300)
		}
		want := -1
		for i := 0; i < 300; i++ {
			if s.Get(i) {
				want = i
				break
			}
		}
		return s.FirstSet() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSetAll covers the word-fill fast path, including the partial tail
// word and interaction with the derived queries.
func TestSetAll(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 130, 4096} {
		s := New(n)
		s.SetAll()
		if got := s.Count(); got != n {
			t.Errorf("n=%d: SetAll count = %d", n, got)
		}
		if s.FirstClear() != -1 {
			t.Errorf("n=%d: FirstClear after SetAll = %d", n, s.FirstClear())
		}
		if s.FirstSet() != 0 {
			t.Errorf("n=%d: FirstSet after SetAll = %d", n, s.FirstSet())
		}
		s.Clear(n - 1)
		if got := s.Count(); got != n-1 {
			t.Errorf("n=%d: count after Clear = %d", n, got)
		}
		if got := s.FirstClear(); got != n-1 {
			t.Errorf("n=%d: FirstClear = %d, want %d", n, got, n-1)
		}
	}
}
