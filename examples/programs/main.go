// Real-program workload walkthrough: decode and architecturally
// execute an RV32 program, materialise it into the pipeline's dynamic
// instruction stream through the same trace.Recipe machinery the
// synthetic kernels use, then run a program sweep through an
// in-process ooosimd daemon — cold (each program executes once,
// server-side) and warm (every point answered by the content-addressed
// cache without simulation).
//
//	go run ./examples/programs
//
// Against a long-running daemon the flow is identical — start
// `go run ./cmd/ooosimd -cache-dir /tmp/ooosim-cache` and point
// service.Client at it.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/config"
	"repro/internal/isa/programs"
	"repro/internal/isa/rv32"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	// 1. A program is encoded RV32 machine words, not a recipe of
	// statistical op frequencies. Build one and look at its text.
	spec, _ := programs.Lookup("isort")
	const input, seed = 200, 42
	prog, err := spec.Build(input, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s\n", spec.Name, spec.Desc)
	fmt.Printf("  %d text words at %#x; first instructions:\n", len(prog.Text), rv32.TextBase)
	for i, w := range prog.Text[:4] {
		d, err := rv32.Decode(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    %#x: %08x  %s\n", rv32.TextBase+uint32(4*i), w, d)
	}

	// 2. The architectural executor runs it to completion (EBREAK) —
	// the dynamic instruction count is a property of the program.
	m, err := rv32.Execute(prog, 4<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  executed %d dynamic instructions; sorted array at %#x\n\n",
		m.Steps(), m.Reg(rv32.A0))

	// 3. The same execution, shipped as a declarative recipe: program
	// recipes materialise, validate, fingerprint and cache exactly like
	// synthetic ones, so everything built on trace.Recipe — local
	// sweeps, the daemon, the fleet — takes program workloads unchanged.
	recipe := trace.Recipe{Kernel: trace.KernelProgram, Program: spec.Name, Input: input, Seed: seed}
	tr, err := recipe.Materialise()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recipe %s -> %d-instruction trace with real PCs (static code: %d words)\n\n",
		recipe, tr.Len(), tr.Code().Len())

	// 4. A program sweep through the service: an in-process daemon on a
	// loopback port, as in examples/service.
	sched := service.NewScheduler(service.SchedulerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, service.NewHandler(sched))
	client := &service.Client{BaseURL: "http://" + ln.Addr().String()}
	ctx := context.Background()

	// Two programs, two checkpointed-commit window sizes. Jobs carry
	// the recipe (a few bytes); the server executes each program once
	// and shares the trace across its points.
	const insts = 20_000
	var jobs []service.Job
	for _, name := range []string{"isort", "chase"} {
		s, _ := programs.Lookup(name)
		r := trace.Recipe{Kernel: trace.KernelProgram, Program: name, Input: s.InputFor(insts), Seed: seed}
		for _, iq := range []int{64, 128} {
			jobs = append(jobs, service.Job{
				Name:   fmt.Sprintf("%s/cooo-%d", name, iq),
				Config: config.CheckpointDefault(iq, 1024),
				Trace:  r,
				Insts:  insts,
			})
		}
	}

	run := func(label string) {
		start := time.Now()
		hits := 0
		results, err := client.Run(ctx, jobs, func(ev service.Event, _ *stats.Results) {
			if ev.Type == "result" && ev.Cached {
				hits++
			}
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d points, %d cache hits, %.2fs\n", label, len(results), hits, time.Since(start).Seconds())
		for i, res := range results {
			// Program runs surface counters synthetic traces cannot:
			// BTB hit rates over real branch targets and LSQ
			// store-to-load forwards over real effective addresses.
			fmt.Printf("  %-14s IPC=%.3f  BTB=%.1f%%  forwards=%d\n",
				jobs[i].Name, res.IPC(), 100*res.BTB.HitRate(), res.LSQ.Forwards)
		}
		fmt.Println()
	}

	fmt.Println("cold submission (server executes each program once):")
	run("cold")
	fmt.Println("warm submission (identical batch, content-addressed hits):")
	run("warm")
}
