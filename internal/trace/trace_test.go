package trace

import (
	"testing"

	"repro/internal/isa"
)

func generators() map[string]func(n int) *Trace {
	return map[string]func(n int) *Trace{
		"stream":       Stream,
		"strided":      func(n int) *Trace { return StridedStream(n, 8) },
		"stencil":      Stencil,
		"reduction":    Reduction,
		"blocked":      Blocked,
		"pointerchase": PointerChase,
		"fpmix":        func(n int) *Trace { return FPMix(n, 7) },
	}
}

func TestGeneratorsProduceValidTraces(t *testing.T) {
	for name, gen := range generators() {
		t.Run(name, func(t *testing.T) {
			tr := gen(5000)
			if tr.Len() != 5000 {
				t.Fatalf("len = %d, want exactly 5000", tr.Len())
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if tr.Name() == "" {
				t.Fatal("trace must be named")
			}
		})
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for name, gen := range generators() {
		t.Run(name, func(t *testing.T) {
			a, b := gen(3000), gen(3000)
			for i := int64(0); i < a.Len(); i++ {
				if a.At(i) != b.At(i) {
					t.Fatalf("instruction %d differs between identical generations", i)
				}
			}
		})
	}
}

func TestFPMixSeedChangesOutcomes(t *testing.T) {
	a, b := FPMix(20000, 1), FPMix(20000, 2)
	diff := false
	for i := int64(0); i < a.Len(); i++ {
		if a.At(i).Taken != b.At(i).Taken {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds should change branch outcomes")
	}
}

func TestFPMixInstructionMix(t *testing.T) {
	tr := FPMix(100000, 42)
	counts := tr.OpCounts()
	total := float64(tr.Len())
	frac := func(op isa.Op) float64 { return float64(counts[op]) / total }

	// SPECfp-like bands (DESIGN.md §4).
	if f := frac(isa.Load); f < 0.20 || f > 0.45 {
		t.Errorf("load fraction %.2f outside [0.20, 0.45]", f)
	}
	if f := frac(isa.Store); f < 0.05 || f > 0.15 {
		t.Errorf("store fraction %.2f outside [0.05, 0.15]", f)
	}
	if f := frac(isa.FPAlu); f < 0.25 || f > 0.60 {
		t.Errorf("FP fraction %.2f outside [0.25, 0.60]", f)
	}
	if f := frac(isa.Branch); f <= 0 || f > 0.05 {
		t.Errorf("branch fraction %.2f outside (0, 0.05]", f)
	}
}

func TestMixRegisterWindowsDisjoint(t *testing.T) {
	// No FP register may be written by two different kernels; the
	// shared constant register must never be written.
	tr := FPMix(100000, 42)
	writerPC := map[isa.Reg]uint64{} // reg -> PC region (high bits)
	for i := int64(0); i < tr.Len(); i++ {
		in := tr.At(i)
		if in.Dest == isa.RegNone || !in.Dest.IsFP() {
			continue
		}
		if in.Dest == constFP {
			t.Fatalf("constant register written at pos %d: %v", i, in)
		}
		region := in.PC >> 12
		if prev, ok := writerPC[in.Dest]; ok && prev != region {
			t.Fatalf("register %v written from PC regions %#x and %#x", in.Dest, prev, region)
		}
		writerPC[in.Dest] = region
	}
}

func TestMixWeightsValidate(t *testing.T) {
	if err := DefaultWeights().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (MixWeights{}).Validate(); err == nil {
		t.Error("zero weights must be invalid")
	}
	if err := (MixWeights{Stream: -1, Strided: 2}).Validate(); err == nil {
		t.Error("negative weight must be invalid")
	}
}

func TestStridedStreamTouchesDistinctLines(t *testing.T) {
	tr := StridedStream(8000, 8)
	lines := map[uint64]bool{}
	loads := 0
	for i := int64(0); i < tr.Len(); i++ {
		in := tr.At(i)
		if in.Op == isa.Load {
			loads++
			lines[in.Addr>>6] = true
		}
	}
	// Stride 8 on 8-byte elements = one 64-byte line per element per
	// array: lines should be nearly as numerous as loads.
	if float64(len(lines)) < 0.9*float64(loads) {
		t.Errorf("strided stream reuses lines: %d lines for %d loads", len(lines), loads)
	}
}

func TestPointerChaseIsSerial(t *testing.T) {
	tr := PointerChase(1000)
	for i := int64(0); i < tr.Len(); i++ {
		in := tr.At(i)
		if in.Op == isa.Load && (in.Dest != in.Src1) {
			t.Fatalf("pointer chase load must chain through one register: %v", in)
		}
	}
}

func TestBranchOutcomesMostlyTaken(t *testing.T) {
	tr := FPMix(100000, 42)
	taken, total := 0, 0
	for i := int64(0); i < tr.Len(); i++ {
		in := tr.At(i)
		if in.Op == isa.Branch {
			total++
			if in.Taken {
				taken++
			}
		}
	}
	if total == 0 {
		t.Fatal("mix must contain branches")
	}
	if f := float64(taken) / float64(total); f < 0.7 {
		t.Errorf("loop-dominated code should be mostly taken: %.2f", f)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := Stream(100)
	tr.insts[50].Dest = isa.Reg(99)
	if err := tr.Validate(); err == nil {
		t.Error("corrupted trace must fail validation")
	}
}

func TestPRNGDeterminism(t *testing.T) {
	a, b := newPRNG(5), newPRNG(5)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("prng must be deterministic")
		}
	}
	if newPRNG(0).next() == 0 {
		t.Error("zero seed must be remapped")
	}
	p := newPRNG(9)
	for i := 0; i < 100; i++ {
		if f := p.float(); f < 0 || f >= 1 {
			t.Fatalf("float out of range: %v", f)
		}
		if v := p.intn(10); v < 0 || v >= 10 {
			t.Fatalf("intn out of range: %v", v)
		}
	}
}

func TestRegWindowPanics(t *testing.T) {
	w := regWindow{intBase: 0, intN: 2, fpBase: 0, fpN: 2}
	for _, fn := range []func(){
		func() { w.r(2) },
		func() { w.r(-1) },
		func() { w.f(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
