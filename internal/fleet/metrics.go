package fleet

import (
	"fmt"
	"io"
	"sync/atomic"
)

// metrics is the coordinator's counter set, exposed in Prometheus text
// format at /metrics (names prefixed ooosim_fleet_ to keep worker and
// coordinator scrapes distinguishable on one dashboard).
type metrics struct {
	BatchesSubmitted atomic.Uint64
	BatchesRejected  atomic.Uint64
	Points           atomic.Uint64
	PointsDeduped    atomic.Uint64 // cross-batch singleflight shares
	PointErrors      atomic.Uint64
	Reroutes         atomic.Uint64 // points re-bucketed after a node failure
	NodeFailures     atomic.Uint64 // dispatch-time worker failures
	BreakerTrips     atomic.Uint64 // closed→open breaker transitions
	ProbeFailures    atomic.Uint64 // failed health probes, all nodes
	RetryExhausted   atomic.Uint64 // points that ran out of retry budget
	QueueDepth       atomic.Int64
}

func counter(w io.Writer, name, help string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func gauge(w io.Writer, name, help string, v int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

// WriteMetrics renders the coordinator's metric surface, including one
// liveness gauge per worker.
func (c *Coordinator) WriteMetrics(w io.Writer) {
	m := &c.metrics
	counter(w, "ooosim_fleet_batches_submitted_total", "Batches accepted by the coordinator.", m.BatchesSubmitted.Load())
	counter(w, "ooosim_fleet_batches_rejected_total", "Batches refused while draining or over the queue bound.", m.BatchesRejected.Load())
	counter(w, "ooosim_fleet_points_total", "Points admitted across all batches.", m.Points.Load())
	counter(w, "ooosim_fleet_points_deduped_total", "Points that adopted another in-flight submission's result.", m.PointsDeduped.Load())
	counter(w, "ooosim_fleet_point_errors_total", "Points that failed (simulation error or no workers left).", m.PointErrors.Load())
	counter(w, "ooosim_fleet_reroutes_total", "Points re-bucketed to a surviving node after a worker failure.", m.Reroutes.Load())
	counter(w, "ooosim_fleet_node_failures_total", "Worker dispatch failures (failed submission or severed stream).", m.NodeFailures.Load())
	counter(w, "ooosim_fleet_breaker_trips_total", "Worker circuit breakers tripped open.", m.BreakerTrips.Load())
	counter(w, "ooosim_fleet_retry_budget_exhausted_total", "Points that failed after exhausting their re-route budget.", m.RetryExhausted.Load())
	gauge(w, "ooosim_fleet_queue_depth", "Points admitted but not yet finished.", m.QueueDepth.Load())
	gauge(w, "ooosim_fleet_nodes", "Workers configured.", int64(len(c.nodes)))
	ready := c.readyNodes()
	gauge(w, "ooosim_fleet_nodes_ready", "Workers currently accepting work.", int64(len(ready)))
	fmt.Fprintf(w, "# HELP ooosim_fleet_node_up Per-worker routability (1 breaker closed or half-open, 0 open).\n# TYPE ooosim_fleet_node_up gauge\n")
	for _, n := range c.nodes {
		v := 0
		if n.breaker.Allow() {
			v = 1
		}
		fmt.Fprintf(w, "ooosim_fleet_node_up{node=%q} %d\n", n.url, v)
	}
	fmt.Fprintf(w, "# HELP ooosim_fleet_node_probe_failures_total Failed health probes per worker.\n# TYPE ooosim_fleet_node_probe_failures_total counter\n")
	for _, n := range c.nodes {
		fmt.Fprintf(w, "ooosim_fleet_node_probe_failures_total{node=%q} %d\n", n.url, n.probeFails.Load())
	}
	drain := int64(0)
	if c.draining.Load() {
		drain = 1
	}
	gauge(w, "ooosim_fleet_draining", "1 while the coordinator is draining.", drain)
	readyV := int64(0)
	if c.Ready() == nil {
		readyV = 1
	}
	gauge(w, "ooosim_fleet_ready", "1 while the coordinator admits new batches.", readyV)
}
