package core

import (
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/config"
	"repro/internal/rename"
)

// resolveMispredict handles a mispredicted branch at resolution time.
//
//   - Baseline: squash everything younger than the branch from the ROB
//     (all of it wrong-path, since fetch diverged at the branch) and
//     redirect fetch after the front-end penalty.
//   - Checkpoint mode: if the branch is still inside the pseudo-ROB and
//     no younger checkpoint exists, recover from the pseudo-ROB exactly
//     like the baseline; otherwise roll back to the branch's checkpoint,
//     re-executing the (correct-path) instructions between the
//     checkpoint and the branch — the cost the paper's take-a-checkpoint-
//     at-branches heuristic minimises.
func (c *CPU) resolveMispredict(b *DynInst) {
	c.divergedAt = nil
	penalty := int64(c.cfg.BranchMispredictPenalty)

	if c.cfg.Commit == config.CommitROB {
		c.reorder.SquashTail(
			func(d *DynInst) bool { return d.Seq <= b.Seq },
			func(d *DynInst) { c.squashInst(d, true) },
		)
		c.lq.SquashYounger(b.Seq + 1)
		c.fetchResumeAt = c.now + penalty
		return
	}

	if b.inProb && c.ckpts.Youngest() != nil && c.ckpts.Youngest().StartSeq <= b.Seq {
		c.pseudoROBRecovery(b)
		c.fetchResumeAt = c.now + penalty
		return
	}
	// The rollback hardware knows this branch's direction; its replay
	// will not mispredict (see tryDispatch).
	if b.Pos >= 0 {
		c.markBranchKnown(b.Pos)
	}
	c.rollbackToCheckpoint(b.ckpt)
	c.fetchResumeAt = c.now + penalty
}

// pseudoROBRecovery squashes every instruction younger than the branch.
// All of them are wrong-path and, because the branch is still in the
// pseudo-ROB, all of them are too — the FIFO tail walk finds exactly the
// victims, and the CAM rename state unwinds per instruction.
func (c *CPU) pseudoROBRecovery(b *DynInst) {
	for {
		back, ok := c.prob.Back()
		if !ok || back.Seq <= b.Seq {
			break
		}
		d, _ := c.prob.PopBack()
		d.inProb = false
		m := c.master.popBack()
		if m != d {
			panic(fmt.Sprintf("core: pseudo-ROB/master desync: %v vs %v", d, m))
		}
		c.squashInst(d, true)
	}
	c.lq.SquashYounger(b.Seq + 1)
	c.fetchPos = b.Pos + 1
	c.probRecoveries++
	// Squashed wrong-path instructions may have seeded the SLIQ
	// dependence masks; drop them (conservative — the masks rebuild
	// from subsequent extractions).
	c.clearDepMasks()
}

// clearDepMasks resets the SLIQ dependence-tracking state.
func (c *CPU) clearDepMasks() {
	for i := range c.depMask {
		c.depMask[i] = false
		c.maskOwner[i] = rename.PhysNone
	}
}

// rollbackToCheckpoint restores the machine to the state captured by
// target: every instruction of its window and younger is squashed, the
// rename map snapshot is restored, and fetch resumes at the window
// start. Squashed correct-path instructions count as replayed work.
func (c *CPU) rollbackToCheckpoint(target *checkpoint.Entry) {
	startSeq := target.StartSeq

	if c.sliq != nil {
		c.sliq.SquashYounger(startSeq, func(d *DynInst) {
			d.inSLIQ = false
		})
	}
	for {
		back, ok := c.prob.Back()
		if !ok || back.Seq < startSeq {
			break
		}
		d, _ := c.prob.PopBack()
		d.inProb = false
	}
	for c.master.len() > 0 && c.master.back().Seq >= startSeq {
		d := c.master.popBack()
		c.squashInst(d, false)
	}
	c.lq.SquashYounger(startSeq)

	pendingFree := c.ckpts.Rollback(target)
	c.rt.Rollback(target.Snap, pendingFree)
	c.pred.RestoreHistory(target.History)
	c.fetchPos = target.FetchPos

	// The dependence masks refer to pre-rollback physical registers.
	c.clearDepMasks()
	if c.divergedAt != nil && c.divergedAt.Seq >= startSeq {
		c.divergedAt = nil
	}
	c.rollbacks++
}

// raiseException implements the paper's two-pass precise-exception
// protocol (section 2): roll back to the excepting instruction's
// checkpoint, then re-execute "in a stricter sense" with a checkpoint
// placed exactly before the excepting instruction, leaving the machine
// precise for the operating system.
func (c *CPU) raiseException(d *DynInst) {
	if c.cfg.Commit != config.CommitCheckpoint {
		return
	}
	if c.exceptArm == nil {
		c.exceptArm = make([]uint8, c.tr.Len())
	}
	c.exceptArm[d.Pos] = 2
	c.rollbackToCheckpoint(d.ckpt)
	c.fetchResumeAt = c.now + int64(c.cfg.BranchMispredictPenalty)
}

// squashInst removes one instruction from the pipeline. unwindRename
// selects per-instruction CAM unwinding (ROB and pseudo-ROB recoveries,
// which walk in reverse program order); full rollbacks restore a
// snapshot instead and pass false. The caller removes the instruction
// from ROB/pseudo-ROB/master/LSQ; this handles everything else, and
// finally releases the record to the free list (quarantined until the
// next dispatch stage — see instPool).
func (c *CPU) squashInst(d *DynInst, unwindRename bool) {
	if d.Squashed {
		return
	}
	d.Squashed = true

	if d.countedLive {
		d.countedLive = false
		if d.LiveLong {
			c.liveFPLong--
		} else {
			c.liveFPShort--
		}
	}
	if d.iqe.Resident() {
		c.iqFor(d.Inst.Op).Remove(&d.iqe)
	}
	// Unschedule any pending completion so the heap never holds a
	// released record.
	if d.heapIdx >= 0 {
		c.completions.remove(d)
	}
	d.lsqe = nil

	if d.ckpt != nil {
		if d.Done {
			c.ckpts.SquashedDone(d.ckpt, d.Inst.Op)
		} else {
			c.ckpts.Squashed(d.ckpt, d.Inst.Op)
		}
	}

	if c.vt != nil && d.DestPhys != rename.PhysNone {
		if d.Done {
			if d.boundPhys {
				d.boundPhys = false
				c.vt.SquashBound()
			}
		} else {
			// Covers both queued and deferred-bind instructions: the
			// tag is still held until binding succeeds.
			c.vt.UnRename()
		}
	}

	if d.DestPhys != rename.PhysNone {
		// Wake any slow-lane instructions waiting on this dying
		// register so no trigger is lost; they re-evaluate their real
		// source readiness on re-insertion.
		if c.sliq != nil {
			c.sliq.TriggerReady(d.DestPhys, c.now)
		}
		if unwindRename {
			if c.cfg.Commit == config.CommitROB {
				c.rt.UnwindROB(d.Inst.Dest, d.DestPhys, d.PrevPhys)
			} else {
				c.rt.UnwindCheckpointed(d.Inst.Dest, d.DestPhys, d.PrevPhys)
			}
		}
		c.regReady[d.DestPhys] = false
		c.longTaint[d.DestPhys] = false
		c.consumers[d.DestPhys] = c.consumers[d.DestPhys][:0]
		if c.producer[d.DestPhys] == d {
			c.producer[d.DestPhys] = nil
		}
	}

	c.inflight--
	if !d.WrongPath {
		c.replayed++
	}
	c.pool.release(d)
}
