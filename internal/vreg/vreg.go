// Package vreg models the ephemeral/virtual register mechanism the paper
// combines with out-of-order commit in Figure 14 (references [9], [19],
// [21] of the paper): renaming hands out cheap *virtual tags*; a real
// physical register is bound only when the value is produced (late
// allocation) and is released as soon as its redefining instruction has
// produced the replacement value (early release).
//
// The tracker is a pure admission-control state machine — the simulator
// asks it whether rename/writeback may proceed and informs it of
// redefinitions, completions and squashes. See DESIGN.md §3 for the
// fidelity argument and the approximations made on rollback.
package vreg

import "fmt"

// Tracker accounts virtual tags and physical registers.
type Tracker struct {
	vcap, pcap int
	vLive      int // tags: renamed destinations not yet bound
	pLive      int // bound physical registers not yet released
	stats      Stats
}

// Stats counts admission-control events.
type Stats struct {
	TagStalls  uint64 // rename stalled: no virtual tag
	BindStalls uint64 // writeback deferred: no physical register
	Binds      uint64
	Releases   uint64
}

// New builds a tracker with vcap virtual tags and pcap physical
// registers. initialValues is the architectural register count whose
// values occupy physical registers from the start (the logical register
// file size).
func New(vcap, pcap, initialValues int) *Tracker {
	if vcap < 1 || pcap < initialValues {
		panic(fmt.Sprintf("vreg: invalid capacities v=%d p=%d (initial %d)", vcap, pcap, initialValues))
	}
	return &Tracker{vcap: vcap, pcap: pcap, pLive: initialValues}
}

// TagsLive returns the live virtual tag count.
func (t *Tracker) TagsLive() int { return t.vLive }

// PhysLive returns the bound physical register count.
func (t *Tracker) PhysLive() int { return t.pLive }

// TryRename requests a virtual tag for a destination-producing
// instruction. It returns false (and counts a stall) when the tag space
// is exhausted; rename must retry next cycle.
func (t *Tracker) TryRename() bool {
	if t.vLive >= t.vcap {
		t.stats.TagStalls++
		return false
	}
	t.vLive++
	return true
}

// UnRename returns a tag during a squash of a not-yet-completed
// instruction.
func (t *Tracker) UnRename() {
	if t.vLive <= 0 {
		panic("vreg: tag underflow")
	}
	t.vLive--
}

// TryBind converts a tag to a physical register at writeback. fused
// reports that the value is released in the same event (its redefiner
// already completed), in which case no physical register is consumed.
// It returns false (and counts a stall) when the register file is full;
// the writeback must be deferred and retried after the next Release.
func (t *Tracker) TryBind(fused bool) bool {
	if !fused && t.pLive >= t.pcap {
		t.stats.BindStalls++
		return false
	}
	t.vLive--
	if t.vLive < 0 {
		panic("vreg: tag underflow at bind")
	}
	if !fused {
		t.pLive++
	}
	t.stats.Binds++
	return true
}

// Release frees one bound physical register (the redefiner of its value
// completed, and — under the early-release approximation — its readers
// are accounted done).
func (t *Tracker) Release() {
	if t.pLive <= 0 {
		panic("vreg: physical register underflow")
	}
	t.pLive--
	t.stats.Releases++
}

// SquashBound releases the register of a squashed instruction whose
// value had already been bound.
func (t *Tracker) SquashBound() { t.Release() }

// CanBind reports whether a bind would currently succeed, without
// counting a stall.
func (t *Tracker) CanBind() bool { return t.pLive < t.pcap }

// Stats returns a copy of the counters.
func (t *Tracker) Stats() Stats { return t.stats }
