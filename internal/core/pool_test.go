package core

import (
	"os"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

// TestMain switches on the free-list poison checks for the whole core
// suite: every run below then verifies the DynInst recycling discipline
// (no double release, no release while queue- or heap-resident, no
// acquisition of a live record) in addition to its own assertions.
func TestMain(m *testing.M) {
	debugPool = true
	os.Exit(m.Run())
}

// TestAllocsPerCommittedInstruction pins the simulator's steady-state
// allocation rate on both commit modes: at most one heap allocation per
// committed instruction, amortising CPU construction over the run. The
// hot path is designed to allocate nothing per instruction (pooled
// DynInsts, intrusive issue-queue entries, recycled LSQ/SLIQ entries);
// the budget of 1 leaves room for structure growth, checkpoint
// snapshots, and forward-wait closures. This is the PR-3 regression
// guard: a reintroduced per-dispatch allocation trips it immediately.
func TestAllocsPerCommittedInstruction(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under -race")
	}
	const insts = 20000
	tr := trace.FPMix(trace.LenFor(insts), 42)
	tr.WarmFootprint() // precomputed once per trace, not part of the budget
	for _, tc := range []struct {
		name string
		cfg  config.Config
	}{
		{"rob", config.BaselineSized(128)},
		{"checkpoint", config.CheckpointDefault(128, 2048)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var committed uint64
			allocs := testing.AllocsPerRun(3, func() {
				cpu, err := New(tc.cfg, tr)
				if err != nil {
					t.Fatal(err)
				}
				committed = cpu.Run(RunOptions{MaxInsts: insts}).Committed
			})
			if committed == 0 {
				t.Fatal("nothing committed; allocation budget is vacuous")
			}
			perInst := allocs / float64(committed)
			t.Logf("%s: %.0f allocs / %d committed = %.4f per instruction",
				tc.name, allocs, committed, perInst)
			if perInst > 1.0 {
				t.Errorf("%s: %.4f allocations per committed instruction, budget is 1",
					tc.name, perInst)
			}
		})
	}
}

// TestPooledDeterminismUnderRecovery re-runs a rollback- and
// exception-heavy workload and requires bit-equal statistics: record
// recycling must not perturb any architectural or timing state. The
// workload is chosen so both recovery paths (pseudo-ROB and checkpoint
// rollback) and the two-pass exception protocol all fire.
func TestPooledDeterminismUnderRecovery(t *testing.T) {
	tr := rollbackHeavyTrace(90000)
	run := func() stats.Results {
		cfg := config.CheckpointDefault(32, 1024)
		cpu, err := New(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		cpu.InjectExceptionAt(4000)
		cpu.InjectExceptionAt(21000)
		res := cpu.Run(RunOptions{MaxInsts: 50000})
		if cpu.Exceptions() != 2 {
			t.Fatalf("delivered %d exceptions, want 2", cpu.Exceptions())
		}
		return res
	}
	a, b := run(), run()
	if a.Rollbacks == 0 || a.PseudoROBRecoveries == 0 {
		t.Fatalf("workload must exercise both recovery paths: %+v", a)
	}
	if !a.Equal(b) {
		t.Fatalf("pooled runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestPooledCPUsShareTraceConcurrently is the recycled-DynInst sibling
// of TestRunNeverMutatesTrace: several CPUs — each with its own pool —
// run over one shared trace at once. Under -race this proves the pools
// are CPU-local and the lazily computed warm-up footprint is safely
// shared; the result comparison proves concurrency does not leak into
// simulated state.
func TestPooledCPUsShareTraceConcurrently(t *testing.T) {
	const insts = 20000
	tr := trace.FPMix(trace.LenFor(insts), 42)
	for _, tc := range []struct {
		name string
		cfg  config.Config
	}{
		{"rob", config.BaselineSized(128)},
		{"checkpoint", config.CheckpointDefault(64, 512)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const workers = 4
			results := make([]stats.Results, workers)
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					cpu, err := New(tc.cfg, tr)
					if err != nil {
						t.Error(err)
						return
					}
					results[i] = cpu.Run(RunOptions{MaxInsts: insts})
				}(i)
			}
			wg.Wait()
			serial := mustRun(t, tc.cfg, tr, insts)
			for i, r := range results {
				if !r.Equal(serial) {
					t.Fatalf("worker %d diverged from the serial run:\n%+v\nvs\n%+v", i, r, serial)
				}
			}
		})
	}
}

// TestPoolRecyclesRecords sanity-checks that the pool actually recycles:
// a long run must allocate far fewer records than it dispatches.
func TestPoolRecyclesRecords(t *testing.T) {
	const insts = 30000
	tr := trace.FPMix(trace.LenFor(insts), 7)
	cpu, err := New(config.CheckpointDefault(64, 1024), tr)
	if err != nil {
		t.Fatal(err)
	}
	res := cpu.Run(RunOptions{MaxInsts: insts})
	// Records still quarantined plus free ones are all that ever came
	// from the block allocator besides the live tail of the pipeline.
	pooled := len(cpu.pool.free) + len(cpu.pool.dead)
	if uint64(pooled) >= res.Dispatched/4 {
		t.Fatalf("pool holds %d records for %d dispatches; recycling is not happening",
			pooled, res.Dispatched)
	}
	if pooled == 0 {
		t.Fatal("no records ever recycled")
	}
}
