package trace

import (
	"fmt"
)

// Kernel names accepted by Recipe. Each maps to one public generator.
const (
	KernelStream       = "stream"
	KernelStrided      = "strided"
	KernelStencil      = "stencil"
	KernelReduction    = "reduction"
	KernelBlocked      = "blocked"
	KernelPointerChase = "pointerchase"
	KernelFPMix        = "fpmix"
)

// Recipe is the declarative identity of a generated trace: enough
// information to regenerate it bit-for-bit anywhere. It is the workload
// half of a simulation fingerprint (sim.Fingerprint) and the wire form
// a service client ships instead of the materialised instruction
// stream — a few dozen bytes standing in for megabytes of trace.
type Recipe struct {
	// Kernel names the generator (Kernel* constants).
	Kernel string `json:"kernel"`
	// N is the dynamic instruction count to generate.
	N int `json:"n"`
	// Seed parameterises KernelFPMix; other kernels ignore it.
	Seed uint64 `json:"seed,omitempty"`
	// Stride is the element stride of KernelStrided; other kernels
	// ignore it.
	Stride int `json:"stride,omitempty"`
}

// LenFor returns the trace length to generate for a run with the given
// committed-instruction budget: the budget plus 20% headroom (rollback
// replays, wrong-path fetch) plus a constant tail, so the run never
// exhausts its trace. Every surface that sizes a workload from a
// budget must use this one function: the length goes into trace
// recipes and therefore into cache fingerprints, so a drifted copy
// would key the same logical point differently and silently break
// cross-client cache sharing.
func LenFor(insts uint64) int {
	return int(insts) + int(insts)/5 + 4096
}

// MaxRecipeInsts bounds Recipe.N. Recipes arrive over the wire and
// materialisation allocates the whole stream up front, so an absurd
// count must be rejected before it reaches the allocator. The bound is
// ~25x the paper's figure scale (364k instructions per point).
const MaxRecipeInsts = 8 << 20

// Validate reports unknown kernels and nonsensical parameters. It also
// rejects parameters the kernel ignores (a seed on "stream", a stride
// on "fpmix"): two recipes that generate identical traces must render
// identical canonical strings, or equal simulations would get distinct
// fingerprints and defeat the content-addressed cache.
func (r Recipe) Validate() error {
	if r.N < 1 || r.N > MaxRecipeInsts {
		return fmt.Errorf("trace: recipe %s: instruction count %d outside [1,%d]",
			r.Kernel, r.N, MaxRecipeInsts)
	}
	switch r.Kernel {
	case KernelStrided:
		if r.Stride < 1 {
			return fmt.Errorf("trace: recipe %s: stride %d < 1", r.Kernel, r.Stride)
		}
	case KernelStream, KernelStencil, KernelReduction, KernelBlocked,
		KernelPointerChase, KernelFPMix:
		if r.Stride != 0 {
			return fmt.Errorf("trace: recipe %s: stride %d on a kernel that ignores it", r.Kernel, r.Stride)
		}
	default:
		return fmt.Errorf("trace: recipe: unknown kernel %q", r.Kernel)
	}
	if r.Seed != 0 && r.Kernel != KernelFPMix {
		return fmt.Errorf("trace: recipe %s: seed %d on a kernel that ignores it", r.Kernel, r.Seed)
	}
	return nil
}

// String renders the canonical form used inside fingerprints. Every
// field is always present so the encoding cannot drift with omission
// rules; changing this string invalidates every content-addressed
// cache entry, which is exactly the intent.
func (r Recipe) String() string {
	return fmt.Sprintf("%s/n=%d/seed=%d/stride=%d", r.Kernel, r.N, r.Seed, r.Stride)
}

// Materialise regenerates the trace the recipe describes. Generation is
// deterministic: two Materialise calls of equal recipes produce
// instruction-identical traces.
func (r Recipe) Materialise() (*Trace, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	switch r.Kernel {
	case KernelStream:
		return Stream(r.N), nil
	case KernelStrided:
		return StridedStream(r.N, r.Stride), nil
	case KernelStencil:
		return Stencil(r.N), nil
	case KernelReduction:
		return Reduction(r.N), nil
	case KernelBlocked:
		return Blocked(r.N), nil
	case KernelPointerChase:
		return PointerChase(r.N), nil
	case KernelFPMix:
		return FPMix(r.N, r.Seed), nil
	}
	panic("unreachable: Validate accepted kernel " + r.Kernel)
}

// Recipe returns the trace's generation recipe. ok is false for traces
// without a declarative identity (custom Mix weights); such traces run
// fine locally but cannot be fingerprinted or shipped to a service.
func (t *Trace) Recipe() (Recipe, bool) {
	return t.recipe, t.hasRecipe
}

// RecipeOnly returns an empty trace carrying just the recipe: a handle
// for callers that only need the workload's identity — a client
// shipping specs to a remote service — without paying materialisation.
// It must never be simulated directly (Len is 0; the core would fail
// immediately); Materialise the recipe for that.
func RecipeOnly(r Recipe) (*Trace, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return (&Trace{name: r.Kernel}).withRecipe(r), nil
}

// withRecipe records the generation recipe on a freshly built trace.
func (t *Trace) withRecipe(r Recipe) *Trace {
	t.recipe = r
	t.hasRecipe = true
	return t
}
