package config

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// MarshalJSON encodes the commit mode as its registry name ("rob",
// "checkpoint", "adaptive", "oracle"). Unregistered names are rejected
// so an invalid policy can never acquire a canonical form (and thus a
// cache fingerprint).
func (m CommitMode) MarshalJSON() ([]byte, error) {
	if !KnownCommitMode(m) {
		return nil, fmt.Errorf("config: cannot encode unknown commit policy %q", string(m))
	}
	return json.Marshal(string(m))
}

// UnmarshalJSON implements json.Unmarshaler for the string form,
// validated against the policy registry.
func (m *CommitMode) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("config: commit policy must be a string: %w", err)
	}
	mode, err := ParseCommitMode(s)
	if err != nil {
		return err
	}
	*m = mode
	return nil
}

// CanonicalJSON returns the canonical encoding of the configuration:
// compact JSON with fields in declaration order and the commit mode as
// a string. This is the config half of a simulation fingerprint
// (sim.Fingerprint) and the API wire format, so it must not drift — a
// golden-file test pins the encoding of Default().
//
// The configuration is validated first: an invalid configuration has no
// canonical form (it could never produce a result worth caching).
func (c Config) CanonicalJSON() ([]byte, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(c)
}

// ParseJSON decodes and validates a configuration. Unknown fields are
// rejected: a client sending a field this server does not model must
// hear about it, not silently get the default behaviour (and a wrong
// cache key).
func ParseJSON(data []byte) (Config, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("config: parse: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}
