package rename

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/isa"
)

func newTable(t *testing.T) *Table {
	t.Helper()
	tbl := New(128)
	if err := tbl.CheckInvariants(); err != nil {
		t.Fatalf("fresh table: %v", err)
	}
	return tbl
}

func TestInitialMapping(t *testing.T) {
	tbl := newTable(t)
	if tbl.FreeCount() != 128-isa.NumLogical {
		t.Fatalf("free count = %d", tbl.FreeCount())
	}
	for l := 0; l < isa.NumLogical; l++ {
		p := tbl.Lookup(isa.Reg(l))
		if p == PhysNone || !tbl.Valid(p) {
			t.Fatalf("logical %v unmapped", isa.Reg(l))
		}
		if tbl.Logical(p) != isa.Reg(l) {
			t.Fatalf("inverse map broken for %v", isa.Reg(l))
		}
	}
	if tbl.Lookup(isa.RegNone) != PhysNone {
		t.Error("Lookup(RegNone) must be PhysNone")
	}
}

func TestAllocateSetsFutureFree(t *testing.T) {
	tbl := newTable(t)
	dest := isa.IntReg(1)
	old := tbl.Lookup(dest)
	newP, prevP, ok := tbl.Allocate(dest)
	if !ok || prevP != old {
		t.Fatalf("allocate: new=%v prev=%v ok=%v", newP, prevP, ok)
	}
	if tbl.Lookup(dest) != newP {
		t.Error("mapping not updated")
	}
	if tbl.Valid(old) {
		t.Error("previous mapping must lose its valid bit")
	}
	if !tbl.FutureFreePending(old) {
		t.Error("previous mapping must be marked future-free (figure 4)")
	}
	if err := tbl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleRedefinition(t *testing.T) {
	// Figure 5: two live old mappings of the same logical register,
	// both awaiting the next checkpoint commit.
	tbl := newTable(t)
	dest := isa.IntReg(1)
	p0 := tbl.Lookup(dest)
	p1, _, _ := tbl.Allocate(dest)
	p2, prev, _ := tbl.Allocate(dest)
	if prev != p1 {
		t.Fatalf("second allocate prev = %v, want %v", prev, p1)
	}
	if !tbl.FutureFreePending(p0) || !tbl.FutureFreePending(p1) {
		t.Error("both superseded mappings must be future-free")
	}
	if tbl.Lookup(dest) != p2 {
		t.Error("current mapping wrong")
	}
}

func TestSnapshotClearsFutureFree(t *testing.T) {
	tbl := newTable(t)
	p0 := tbl.Lookup(isa.IntReg(2))
	tbl.Allocate(isa.IntReg(2))
	snap := tbl.TakeSnapshot()
	if tbl.FutureFreePending(p0) {
		t.Error("TakeSnapshot must clear the live future-free bits")
	}
	if !snap.FutureFree().Get(int(p0)) {
		t.Error("snapshot must capture the superseded mapping")
	}
}

func TestCommitFutureFree(t *testing.T) {
	tbl := newTable(t)
	p0 := tbl.Lookup(isa.IntReg(3))
	tbl.Allocate(isa.IntReg(3))
	snap := tbl.TakeSnapshot()
	free := tbl.FreeCount()
	tbl.CommitFutureFree(snap.FutureFree())
	if tbl.FreeCount() != free+1 {
		t.Fatalf("free count %d, want %d", tbl.FreeCount(), free+1)
	}
	if tbl.Logical(p0) != isa.RegNone {
		t.Error("freed register must forget its logical name")
	}
	if err := tbl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateROBAndFree(t *testing.T) {
	tbl := newTable(t)
	dest := isa.FPReg(4)
	old := tbl.Lookup(dest)
	newP, prevP, ok := tbl.AllocateROB(dest)
	if !ok || prevP != old {
		t.Fatalf("AllocateROB: %v %v %v", newP, prevP, ok)
	}
	if tbl.FutureFreePending(old) {
		t.Error("ROB mode must not set future-free bits")
	}
	free := tbl.FreeCount()
	tbl.Free(prevP)
	if tbl.FreeCount() != free+1 {
		t.Error("Free must return the register")
	}
	if err := tbl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFreePanics(t *testing.T) {
	tbl := newTable(t)
	p, _, _ := tbl.AllocateROB(isa.IntReg(0))
	func() {
		defer func() {
			if recover() == nil {
				t.Error("freeing a valid mapping must panic")
			}
		}()
		tbl.Free(p)
	}()
}

func TestUnwindROB(t *testing.T) {
	tbl := newTable(t)
	dest := isa.IntReg(5)
	old := tbl.Lookup(dest)
	n1, p1, _ := tbl.AllocateROB(dest)
	n2, p2, _ := tbl.AllocateROB(dest)
	// Unwind in reverse order.
	tbl.UnwindROB(dest, n2, p2)
	if tbl.Lookup(dest) != n1 {
		t.Fatal("first unwind should restore the middle mapping")
	}
	tbl.UnwindROB(dest, n1, p1)
	if tbl.Lookup(dest) != old {
		t.Fatal("second unwind should restore the original mapping")
	}
	if err := tbl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnwindCheckpointed(t *testing.T) {
	tbl := newTable(t)
	dest := isa.FPReg(6)
	old := tbl.Lookup(dest)
	n1, p1, _ := tbl.Allocate(dest)
	if !tbl.FutureFreePending(old) {
		t.Fatal("precondition: future-free set")
	}
	tbl.UnwindCheckpointed(dest, n1, p1)
	if tbl.Lookup(dest) != old {
		t.Fatal("mapping not restored")
	}
	if tbl.FutureFreePending(old) {
		t.Error("unwind must clear the future-free bit it set")
	}
	if !tbl.Valid(old) {
		t.Error("unwind must restore the valid bit")
	}
	if err := tbl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRollback(t *testing.T) {
	tbl := newTable(t)
	d1, d2 := isa.IntReg(1), isa.FPReg(2)
	tbl.Allocate(d1)
	snap := tbl.TakeSnapshot()
	mapped1 := tbl.Lookup(d1)

	// Post-snapshot work to be rolled back.
	tbl.Allocate(d1)
	tbl.Allocate(d2)
	tbl.Allocate(d2)

	tbl.Rollback(snap, nil)
	if tbl.Lookup(d1) != mapped1 {
		t.Error("d1 mapping not restored")
	}
	if err := tbl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRollbackWithPendingFrees(t *testing.T) {
	// Registers captured in a younger checkpoint's future-free set must
	// not return to the free list on rollback (an older window still
	// owes them a deferred free).
	tbl := newTable(t)
	p0 := tbl.Lookup(isa.IntReg(1))
	tbl.Allocate(isa.IntReg(1)) // p0 superseded in window 0
	snap1 := tbl.TakeSnapshot() // checkpoint 1 captures {p0}
	snapRB := tbl.TakeSnapshot()

	tbl.Allocate(isa.IntReg(2))
	tbl.Rollback(snapRB, []*bitset.Set{snap1.FutureFree()})
	if err := tbl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// p0 is invalid but pending a free: it must NOT be on the free list.
	if tbl.Valid(p0) {
		t.Fatal("p0 must not be valid")
	}
	free := tbl.FreeCount()
	tbl.CommitFutureFree(snap1.FutureFree())
	if tbl.FreeCount() != free+1 {
		t.Error("p0 should only free via the deferred commit")
	}
}

func TestExhaustion(t *testing.T) {
	tbl := New(isa.NumLogical + 2)
	if _, _, ok := tbl.Allocate(isa.IntReg(0)); !ok {
		t.Fatal("first allocate should succeed")
	}
	if _, _, ok := tbl.Allocate(isa.IntReg(1)); !ok {
		t.Fatal("second allocate should succeed")
	}
	if _, _, ok := tbl.Allocate(isa.IntReg(2)); ok {
		t.Fatal("third allocate must fail: free list empty")
	}
}

func TestNewPanicsOnTooFewRegisters(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(isa.NumLogical - 1)
}

// TestRandomizedCheckpointing drives the table through random
// allocate/snapshot/commit/rollback sequences, mimicking the processor's
// usage, and checks invariants throughout. This is the rename-level
// model of the paper's whole mechanism.
func TestRandomizedCheckpointing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		tbl := New(96)
		type ckpt struct {
			snap Snapshot
		}
		var live []ckpt
		live = append(live, ckpt{tbl.TakeSnapshot()})

		for step := 0; step < 400; step++ {
			switch r := rng.Intn(10); {
			case r < 6: // rename
				dest := isa.Reg(rng.Intn(isa.NumLogical))
				tbl.Allocate(dest)
			case r < 7: // take a checkpoint
				if len(live) < 8 {
					live = append(live, ckpt{tbl.TakeSnapshot()})
				}
			case r < 8: // commit the oldest window
				if len(live) >= 2 {
					tbl.CommitFutureFree(live[1].snap.FutureFree())
					live = live[1:]
				}
			default: // roll back to a random live checkpoint
				if len(live) >= 2 {
					k := 1 + rng.Intn(len(live)-1)
					var pending []*bitset.Set
					for i := 1; i <= k; i++ {
						pending = append(pending, live[i].snap.FutureFree())
					}
					tbl.Rollback(live[k].snap, pending)
					live = live[:k+1]
				}
			}
			if tbl.FreeCount() == 0 {
				// Out of registers: commit or stop, like the pipeline.
				if len(live) >= 2 {
					tbl.CommitFutureFree(live[1].snap.FutureFree())
					live = live[1:]
				} else {
					break
				}
			}
			if err := tbl.CheckInvariants(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
		}
	}
}
