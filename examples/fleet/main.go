// Fleet walkthrough: boot a three-worker simulation fleet behind a
// coordinator, all in-process on loopback, then drive the full fleet
// story through the plain service client:
//
//  1. a sharded batch — points route to workers by fingerprint, warm
//     donor snapshots ship between workers so each snapshot group is
//     warmed once fleet-wide;
//
//  2. a warm resubmission — every point answers from the workers'
//     partitioned caches, zero simulation;
//
//  3. a mid-batch worker kill — the coordinator marks the node down
//     and re-routes its unfinished points, and the results are still
//     byte-identical (the simulator is deterministic, so it does not
//     matter which node computes a point).
//
// Run with "go run ./examples/fleet".
//
// Against real daemons the flow is identical: start N `ooosimd`
// processes with a shared -peers list, front them with `ooosimfleet`,
// and point service.Client (or cmd/experiments -server, or
// cmd/ooosimload) at the coordinator.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"repro/internal/config"
	"repro/internal/fleet"
	"repro/internal/service"
	"repro/internal/trace"
)

func main() {
	// --- Boot three workers wired as a fleet. Every worker gets the
	// same canonical peer list plus its own URL, which is what turns on
	// donor shipping: each snapshot group has one home worker that warms
	// the donor, and the others adopt the serialized snapshot over
	// GET /v1/donors/{key} instead of replaying the warm-up.
	const nWorkers = 3
	urls := make([]string, nWorkers)
	lns := make([]net.Listener, nWorkers)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	scheds := make([]*service.Scheduler, nWorkers)
	servers := make([]*http.Server, nWorkers)
	for i := range lns {
		scheds[i] = service.NewScheduler(service.SchedulerOptions{
			Workers: 1,
			Donors:  service.NewDonorExchange(urls[i], urls),
		})
		servers[i] = &http.Server{Handler: service.NewHandler(scheds[i])}
		go servers[i].Serve(lns[i])
	}

	// --- Front them with a coordinator. Its HTTP surface is the worker
	// API, so the ordinary client drives it unchanged.
	coord, err := fleet.New(fleet.Options{Workers: urls, PingInterval: 200 * time.Millisecond})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(fln, fleet.NewHandler(coord))
	client := &service.Client{BaseURL: "http://" + fln.Addr().String()}
	ctx := context.Background()

	// --- A four-policy slice of the paper's sweep space: the rob
	// baseline, checkpoint COoO at two queue sizes, adaptive, oracle —
	// each over three workloads.
	const insts = 20_000
	n := trace.LenFor(insts)
	recipes := []trace.Recipe{
		{Kernel: trace.KernelStream, N: n},
		{Kernel: trace.KernelStencil, N: n},
		{Kernel: trace.KernelFPMix, N: n, Seed: 42},
	}
	cfgs := map[string]config.Config{
		"rob-128":  config.BaselineSized(128),
		"cooo-32":  config.CheckpointDefault(32, 1024),
		"cooo-128": config.CheckpointDefault(128, 1024),
		"adaptive": config.AdaptiveDefault(64, 1024),
		"oracle":   config.OracleDefault(),
	}
	var jobs []service.Job
	for name, cfg := range cfgs {
		for _, r := range recipes {
			jobs = append(jobs, service.Job{Name: name + "/" + r.Kernel, Config: cfg, Trace: r, Insts: insts})
		}
	}

	// --- 1. Cold: the batch shards across all three workers, donors
	// ship between them.
	fmt.Printf("== cold batch: %d points over %d workers\n", len(jobs), nWorkers)
	start := time.Now()
	cold := runBatch(ctx, client, jobs)
	fmt.Printf("   done in %v\n", time.Since(start))
	for i, s := range scheds {
		adopted, built, shipped, _ := s.Donors().Stats()
		fmt.Printf("   worker %d: donors built=%d adopted=%d shipped=%d\n", i, built, adopted, shipped)
	}

	// --- 2. Warm: identical bytes, no simulation anywhere.
	fmt.Printf("== warm resubmission\n")
	start = time.Now()
	warm := runBatch(ctx, client, jobs)
	fmt.Printf("   done in %v (cache hits on the workers)\n", time.Since(start))
	mustMatch(cold, warm, "warm")

	// --- 3. Kill a worker mid-batch. A fresh sweep (new instruction
	// budget, so nothing is cached) starts, one worker dies, and the
	// coordinator re-routes its unfinished points to the survivors.
	fmt.Printf("== kill a worker mid-batch\n")
	for i := range jobs {
		jobs[i].Insts = insts + 1 // new fingerprints: force simulation
	}
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(30 * time.Millisecond) // let the batch get rolling
		servers[2].Close()                // severs its event streams mid-flight
		fmt.Printf("   worker 2 killed\n")
	}()
	reference := runLocal(jobs) // single plain scheduler, for comparison
	rerouted := runBatch(ctx, client, jobs)
	<-killed
	mustMatch(reference, rerouted, "re-routed")
	fmt.Printf("   all %d points byte-identical to a single-node run\n", len(jobs))
}

// runBatch submits jobs through the coordinator and returns the raw
// result bytes per point.
func runBatch(ctx context.Context, client *service.Client, jobs []service.Job) [][]byte {
	st, err := client.Submit(ctx, jobs)
	if err != nil {
		log.Fatal(err)
	}
	out := make([][]byte, len(jobs))
	err = client.Stream(ctx, st.ID, func(ev service.Event) error {
		switch ev.Type {
		case "error":
			return fmt.Errorf("point %d (%s): %s", ev.Index, ev.Name, ev.Error)
		case "result":
			out[ev.Index] = append([]byte(nil), ev.Results...)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	return out
}

// runLocal executes jobs on one plain in-process scheduler — the
// reference bytes a fleet of any shape must reproduce.
func runLocal(jobs []service.Job) [][]byte {
	s := service.NewScheduler(service.SchedulerOptions{})
	b, err := s.Submit(jobs)
	if err != nil {
		log.Fatal(err)
	}
	st, err := b.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	out := make([][]byte, len(jobs))
	for i, raw := range st.Results {
		out[i] = raw
	}
	return out
}

func mustMatch(want, got [][]byte, label string) {
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			log.Fatalf("%s point %d: bytes differ", label, i)
		}
	}
}
