// Command ooosimload is the fleet load generator: it drives batch
// traffic at a daemon or coordinator and reports throughput, tail
// latency and backpressure behaviour.
//
// Usage:
//
//	ooosimload [-url URL | -inprocess N] [-duration D] [-concurrency N]
//	           [-batch-size N] [-distinct N] [-insts N] [-seed N]
//	           [-chaos SEED [-chaos-batches N]]
//
// With -url it targets a running ooosimd or ooosimfleet. With
// -inprocess N it boots a self-contained fleet first — N workers with
// donor shipping wired plus a coordinator, all on loopback — which is
// the one-command way to measure fleet behaviour (and what the CI
// fleet-e2e job uses).
//
// Each of -concurrency clients loops for -duration: draw -batch-size
// points from a space of -distinct distinct simulation points (the
// ratio of the two sets the cache-hit rate), submit, stream to
// completion, record the submit-to-done latency. A 429 (admission
// control) is counted, honoured by backing off for the server's
// Retry-After, and retried — backpressure is a result here, not an
// error.
//
// The report: batches, points, point errors, 429s, points/s, and
// latency p50/p90/p99.
//
// Chaos mode (-chaos SEED, requires -inprocess): instead of measuring
// throughput, run the self-healing acceptance soak. Pass one computes
// fault-free reference bytes on a local scheduler; pass two boots the
// in-process fleet with the seed's aggressive fault plan injected at
// every distributed seam (client and coordinator HTTP, donor fetches,
// worker disk caches), kills one worker after the first batch, and
// drives -chaos-batches batches through the fray. The run fails unless
// every point completes with bytes identical to the reference — zero
// lost points, zero divergence. The same seed replays the same faults.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/config"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/isa/programs"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	url := flag.String("url", "", "target daemon or coordinator base URL")
	inprocess := flag.Int("inprocess", 0, "boot an in-process fleet with this many workers (alternative to -url)")
	duration := flag.Duration("duration", 10*time.Second, "how long to generate load")
	concurrency := flag.Int("concurrency", 4, "concurrent client loops")
	batchSize := flag.Int("batch-size", 8, "points per batch")
	distinct := flag.Int("distinct", 64, "distinct points to draw batches from")
	insts := flag.Uint64("insts", 1500, "instructions per point")
	seed := flag.Int64("seed", 1, "workload draw seed")
	maxQueue := flag.Int("max-queue", 256, "admission bound for the in-process fleet's coordinator")
	chaosSeed := flag.Int64("chaos", 0, "run the chaos soak with this fault-plan seed (requires -inprocess)")
	chaosBatches := flag.Int("chaos-batches", 8, "batches the chaos soak drives")
	flag.Parse()

	if (*url == "") == (*inprocess == 0) {
		log.Fatalf("ooosimload: exactly one of -url or -inprocess is required")
	}
	if *chaosSeed != 0 {
		if *inprocess <= 0 {
			log.Fatalf("ooosimload: -chaos requires -inprocess")
		}
		if err := runChaos(*chaosSeed, *inprocess, *distinct, *batchSize, *chaosBatches, *insts); err != nil {
			log.Fatalf("ooosimload: chaos soak FAILED: %v", err)
		}
		fmt.Println("chaos soak PASSED: zero lost points, all bytes identical to the fault-free reference")
		return
	}
	target := *url
	if *inprocess > 0 {
		var stop func()
		var err error
		target, stop, err = bootFleet(*inprocess, *maxQueue)
		if err != nil {
			log.Fatalf("ooosimload: %v", err)
		}
		defer stop()
		log.Printf("ooosimload: booted %d-worker in-process fleet at %s", *inprocess, target)
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	client := &service.Client{BaseURL: target}
	if err := client.AwaitReady(ctx); err != nil {
		log.Fatalf("ooosimload: target never became ready: %v", err)
	}

	points := makePoints(*distinct, *insts)
	deadline := time.Now().Add(*duration)

	var (
		mu        sync.Mutex
		latencies []time.Duration
		batches   atomic.Uint64
		npoints   atomic.Uint64
		rejected  atomic.Uint64
		failures  atomic.Uint64
	)
	// Admission control working as designed is not an error: 429s are
	// counted and retried with the server's Retry-After honoured (capped
	// jittered backoff when the server gives no hint), for as long as
	// the load window is open.
	backoff := &faults.Retrier{
		MaxAttempts: 1 << 20,
		BaseDelay:   200 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		Retryable: func(err error) bool {
			var se *service.StatusError
			return errors.As(err, &se) && se.Code == http.StatusTooManyRequests &&
				time.Now().Before(deadline)
		},
		OnRetry: func(int, error, time.Duration) { rejected.Add(1) },
	}
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			for time.Now().Before(deadline) && ctx.Err() == nil {
				jobs := make([]service.Job, *batchSize)
				for i := range jobs {
					jobs[i] = points[rng.Intn(len(points))]
				}
				start := time.Now()
				err := backoff.Do(ctx, func() error {
					_, err := client.Run(ctx, jobs, nil)
					return err
				})
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					var se *service.StatusError
					if errors.As(err, &se) && se.Code == http.StatusTooManyRequests {
						continue // load window closed mid-backoff; not a failure
					}
					failures.Add(1)
					log.Printf("ooosimload: batch failed: %v", err)
					continue
				}
				batches.Add(1)
				npoints.Add(uint64(len(jobs)))
				mu.Lock()
				latencies = append(latencies, time.Since(start))
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	elapsed := *duration
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	fmt.Printf("target:      %s\n", target)
	fmt.Printf("duration:    %s  concurrency: %d  batch-size: %d  distinct: %d\n",
		elapsed, *concurrency, *batchSize, *distinct)
	fmt.Printf("batches:     %d (%d failed, %d rejected with 429)\n",
		batches.Load(), failures.Load(), rejected.Load())
	fmt.Printf("points:      %d (%.1f points/s)\n",
		npoints.Load(), float64(npoints.Load())/elapsed.Seconds())
	if len(latencies) > 0 {
		fmt.Printf("latency:     p50=%s p90=%s p99=%s max=%s\n",
			percentile(latencies, 50), percentile(latencies, 90),
			percentile(latencies, 99), latencies[len(latencies)-1])
	}
	if failures.Load() > 0 {
		os.Exit(1)
	}
}

// percentile reads the p'th percentile from sorted latencies.
func percentile(sorted []time.Duration, p int) time.Duration {
	idx := len(sorted) * p / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// makePoints enumerates n distinct simulation points spanning the four
// commit policies, the benchmark kernels, the real RV32 programs and a
// range of queue sizes — a miniature of the paper's sweep space. When
// the per-point budget permits, every fifth point runs under SMARTS
// sampling, so load tests also exercise the streamed sampled path
// through the service (distinct fingerprints, no donor warming).
func makePoints(n int, insts uint64) []service.Job {
	tlen := trace.LenFor(insts)
	recipes := []trace.Recipe{
		{Kernel: trace.KernelStream, N: tlen},
		{Kernel: trace.KernelStrided, N: tlen, Stride: 8},
		{Kernel: trace.KernelStencil, N: tlen},
		{Kernel: trace.KernelReduction, N: tlen},
		{Kernel: trace.KernelBlocked, N: tlen},
		{Kernel: trace.KernelFPMix, N: tlen, Seed: 42},
	}
	for _, name := range programs.Names() {
		spec, _ := programs.Lookup(name)
		recipes = append(recipes, trace.Recipe{
			Kernel:  trace.KernelProgram,
			Program: name,
			Input:   spec.InputFor(insts),
			Seed:    42,
		})
	}
	var sample trace.SampleSpec
	if p := insts / 2; p >= 260 {
		sample = trace.SampleSpec{Warmup: p / 8, Detail: p / 4, Period: p}
	}
	var cfgs []config.Config
	for _, sliq := range []int{512, 1024, 2048} {
		for _, iq := range []int{32, 48, 64, 96, 128} {
			cfgs = append(cfgs, config.CheckpointDefault(iq, sliq))
			cfgs = append(cfgs, config.AdaptiveDefault(iq, sliq))
		}
	}
	cfgs = append(cfgs, config.OracleDefault(), config.BaselineSized(128), config.BaselineSized(4096))

	var out []service.Job
	for i := 0; len(out) < n; i++ {
		cfg := cfgs[i%len(cfgs)]
		r := recipes[(i/len(cfgs))%len(recipes)]
		// Wrap-around past cfgs x recipes would repeat points; vary the
		// instruction budget instead to stay distinct.
		job := service.Job{
			Name:   fmt.Sprintf("load-%d", i),
			Config: cfg,
			Trace:  r,
			Insts:  insts + uint64(i/(len(cfgs)*len(recipes))),
		}
		if sample.Enabled() && i%5 == 4 {
			job.Sample = sample
		}
		out = append(out, job)
	}
	return out
}

// runChaos is the self-healing acceptance soak: reference bytes from a
// fault-free local scheduler, then the same points through an
// in-process fleet with the seeded aggressive fault plan injected at
// every distributed seam and one worker killed after the first batch.
// Returns an error unless every point completes byte-identical to the
// reference.
func runChaos(seed int64, workers, distinct, batchSize, nbatches int, insts uint64) error {
	points := makePoints(distinct, insts)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()

	// Pass 1: fault-free reference bytes, no HTTP anywhere.
	log.Printf("chaos: pass 1 — fault-free reference over %d distinct points", len(points))
	refSched := service.NewScheduler(service.SchedulerOptions{Workers: runtime.GOMAXPROCS(0)})
	rb, err := refSched.Submit(points)
	if err != nil {
		return fmt.Errorf("reference submit: %w", err)
	}
	rst, err := rb.Wait(ctx)
	if err != nil {
		return fmt.Errorf("reference wait: %w", err)
	}
	if len(rst.Errors) > 0 {
		return fmt.Errorf("reference run failed: %v", rst.Errors)
	}
	refBytes := make([]string, len(points))
	for i := range points {
		refBytes[i] = string(rst.Results[i])
	}

	// Pass 2: the same points through the fray.
	inj := faults.NewInjector(faults.AggressivePlan(seed))
	cf, err := bootChaosFleet(workers, inj)
	if err != nil {
		return err
	}
	defer cf.stop()
	log.Printf("chaos: pass 2 — %d-worker fleet at %s under plan seed %d", workers, cf.target, seed)

	client := &service.Client{
		BaseURL:    cf.target,
		HTTPClient: &http.Client{Transport: &faults.RoundTripper{Inject: inj}},
		// The stock policy treats 503 as a routing signal and surfaces it;
		// in this harness nothing drains, so a 503 is always injected
		// noise and the soak client retries it alongside 429 and
		// transport faults.
		Retry: &faults.Retrier{
			MaxAttempts: 12,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    time.Second,
			Retryable: func(err error) bool {
				var se *service.StatusError
				if errors.As(err, &se) {
					return se.Code == http.StatusTooManyRequests || se.Code == http.StatusServiceUnavailable
				}
				return faults.Transient(err)
			},
		},
	}
	if err := client.AwaitReady(ctx); err != nil {
		return fmt.Errorf("chaos fleet never became ready: %w", err)
	}

	rng := rand.New(rand.NewSource(seed))
	diverged := 0
	for bi := 0; bi < nbatches; bi++ {
		idxs := make([]int, batchSize)
		jobs := make([]service.Job, batchSize)
		for i := range jobs {
			idxs[i] = rng.Intn(len(points))
			jobs[i] = points[idxs[i]]
		}
		raw := make([]string, len(jobs))
		// Run fails on any lost point, so a nil error means the batch is
		// complete: every point either simulated, hit a cache, or was
		// re-routed to a survivor.
		if _, err := client.Run(ctx, jobs, func(ev service.Event, _ *stats.Results) {
			if ev.Type == "result" && ev.Index >= 0 && ev.Index < len(raw) {
				raw[ev.Index] = string(ev.Results)
			}
		}); err != nil {
			return fmt.Errorf("batch %d lost points: %w", bi, err)
		}
		for i := range jobs {
			if raw[i] != refBytes[idxs[i]] {
				diverged++
				log.Printf("chaos: batch %d point %d (%s) diverged from the reference", bi, i, jobs[i].Name)
			}
		}
		log.Printf("chaos: batch %d/%d complete (%d points)", bi+1, nbatches, len(jobs))
		if bi == 0 {
			log.Printf("chaos: killing worker 0 (%s)", cf.urls[0])
			cf.kill()
		}
	}

	log.Printf("chaos: injector: %s", inj.StatsLine())
	for i, c := range cf.caches {
		log.Printf("chaos: worker %d quarantined %d corrupt cache entr(ies)", i, c.Quarantined())
	}
	for i, s := range cf.scheds {
		a, b, sh, f := s.Donors().Stats()
		log.Printf("chaos: worker %d donors: adopted=%d built=%d shipped=%d fetchFails=%d", i, a, b, sh, f)
	}
	if diverged > 0 {
		return fmt.Errorf("%d point(s) diverged from the fault-free reference", diverged)
	}
	return nil
}

// chaosFleet is the soak's in-process fleet plus the handles the report
// needs.
type chaosFleet struct {
	target string
	urls   []string
	caches []*service.Cache
	scheds []*service.Scheduler
	kill   func() // severs worker 0's HTTP server mid-soak
	stop   func()
}

// bootChaosFleet is bootFleet with the failure domain wired in: every
// worker gets a chaotic disk cache (tiny memory tier, so reads actually
// hit the faulty disk path), a recovery journal, and a chaos transport
// on its donor fetches; the coordinator and its health probes run
// through the chaos transport too, with fast breaker settings so the
// soak exercises open/half-open/close cycles in seconds.
func bootChaosFleet(workers int, inj *faults.Injector) (*chaosFleet, error) {
	cf := &chaosFleet{urls: make([]string, workers)}
	lns := make([]net.Listener, workers)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		cf.urls[i] = "http://" + ln.Addr().String()
	}
	var stops []func()
	cf.stop = func() {
		for _, s := range stops {
			s()
		}
	}
	slots := runtime.GOMAXPROCS(0)/workers + 1
	for i := range lns {
		dir, err := os.MkdirTemp("", "ooosim-chaos-")
		if err != nil {
			cf.stop()
			return nil, err
		}
		stops = append(stops, func() { os.RemoveAll(dir) })
		cache, err := service.NewCacheFS(2, dir, faults.ChaosFS{Base: faults.OSFS{}, Inject: inj, Site: "cachefs"})
		if err != nil {
			cf.stop()
			return nil, err
		}
		journal, err := service.OpenJournal(filepath.Join(dir, "journal.ndjson"))
		if err != nil {
			cf.stop()
			return nil, err
		}
		stops = append(stops, func() { journal.Close() })
		donors := service.NewDonorExchange(cf.urls[i], cf.urls)
		donors.UseTransport(&faults.RoundTripper{Inject: inj, Site: func(r *http.Request) string {
			return "donor:" + r.URL.Host
		}})
		sched := service.NewScheduler(service.SchedulerOptions{
			Workers: slots,
			Cache:   cache,
			Donors:  donors,
			Journal: journal,
		})
		cf.caches = append(cf.caches, cache)
		cf.scheds = append(cf.scheds, sched)
		srv := &http.Server{Handler: service.NewHandler(sched)}
		go srv.Serve(lns[i])
		stops = append(stops, func() { srv.Close() })
		if i == 0 {
			cf.kill = func() { srv.Close() }
		}
	}

	coord, err := fleet.New(fleet.Options{
		Workers:         cf.urls,
		PingInterval:    200 * time.Millisecond,
		PingTimeout:     time.Second,
		BreakerCooldown: 500 * time.Millisecond,
		RetryBudget:     10,
		NoNodesGrace:    5 * time.Second,
		HTTPClient:      &http.Client{Transport: &faults.RoundTripper{Inject: inj}},
		Log:             log.Printf,
	})
	if err != nil {
		cf.stop()
		return nil, err
	}
	stops = append(stops, coord.Close)
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cf.stop()
		return nil, err
	}
	fsrv := &http.Server{Handler: fleet.NewHandler(coord)}
	go fsrv.Serve(fln)
	stops = append(stops, func() { fsrv.Close() })
	cf.target = "http://" + fln.Addr().String()
	return cf, nil
}

// bootFleet starts workers+coordinator on loopback listeners and
// returns the coordinator URL and a shutdown func.
func bootFleet(workers, maxQueue int) (string, func(), error) {
	urls := make([]string, workers)
	lns := make([]net.Listener, workers)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	var stops []func()
	stop := func() {
		for _, s := range stops {
			s()
		}
	}
	slots := runtime.GOMAXPROCS(0)/workers + 1
	for i := range lns {
		sched := service.NewScheduler(service.SchedulerOptions{
			Workers: slots,
			Donors:  service.NewDonorExchange(urls[i], urls),
		})
		srv := &http.Server{Handler: service.NewHandler(sched)}
		go srv.Serve(lns[i])
		stops = append(stops, func() { srv.Close() })
	}

	coord, err := fleet.New(fleet.Options{
		Workers:      urls,
		MaxQueue:     maxQueue,
		PingInterval: 500 * time.Millisecond,
	})
	if err != nil {
		stop()
		return "", nil, err
	}
	stops = append(stops, coord.Close)
	fln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		stop()
		return "", nil, err
	}
	fsrv := &http.Server{Handler: fleet.NewHandler(coord)}
	go fsrv.Serve(fln)
	stops = append(stops, func() { fsrv.Close() })
	return "http://" + fln.Addr().String(), stop, nil
}
